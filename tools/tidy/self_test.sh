#!/usr/bin/env bash
# Self-test for ghba-tidy: each check must fire on testdata/bad.cpp and
# stay silent on testdata/good.cpp. Run after building the tool:
#
#   tools/tidy/self_test.sh <path-to-ghba-tidy>
#
# Exits nonzero (and CI fails) if a check stops firing or over-triggers.
set -u

TOOL="${1:?usage: self_test.sh <path-to-ghba-tidy>}"
HERE="$(cd "$(dirname "$0")" && pwd)"
ROOT="$(cd "${HERE}/../.." && pwd)"
FLAGS=(-- -std=c++20 "-I${ROOT}/src")

fail=0

echo "== ghba-tidy self-test: bad.cpp must trip every check =="
bad_out="$("${TOOL}" "${HERE}/testdata/bad.cpp" "${FLAGS[@]}" 2>&1)"
bad_rc=$?
echo "${bad_out}"
if [ "${bad_rc}" -ne 1 ]; then
  echo "FAIL: expected exit 1 on bad.cpp, got ${bad_rc}" >&2
  fail=1
fi
for check in ghba-unchecked-status ghba-mutex-rank ghba-blocking-on-event-thread; do
  if ! grep -q "\[${check}\]" <<<"${bad_out}"; then
    echo "FAIL: check ${check} did not fire on bad.cpp" >&2
    fail=1
  fi
done
# bad.cpp encodes 6 numbered findings; a drop means a check regressed.
count="$(grep -c 'error:' <<<"${bad_out}")"
if [ "${count}" -lt 6 ]; then
  echo "FAIL: expected >= 6 diagnostics on bad.cpp, got ${count}" >&2
  fail=1
fi

echo "== ghba-tidy self-test: good.cpp must be clean =="
good_out="$("${TOOL}" "${HERE}/testdata/good.cpp" "${FLAGS[@]}" 2>&1)"
good_rc=$?
if [ "${good_rc}" -ne 0 ]; then
  echo "${good_out}"
  echo "FAIL: expected exit 0 on good.cpp, got ${good_rc}" >&2
  fail=1
fi

if [ "${fail}" -eq 0 ]; then
  echo "ghba-tidy self-test: OK"
fi
exit "${fail}"
