// Deliberate violations for ghba-tidy's self-test. Every numbered block
// below must produce exactly the diagnostic named in its comment; the
// self-test greps for each check id and fails CI if one goes missing
// (i.e. if a check silently stops firing). This file must COMPILE clean —
// the checks catch rule violations, not syntax errors.
#include "common/status.hpp"
#include "common/sync.hpp"

namespace ghba {

Status MightFail() { return Status::Ok(); }
Result<int> MightFailValue() { return 7; }

// [1] ghba-unchecked-status: plain discard of a Status-returning call.
void DiscardPlain() {
  MightFail();
}

// [2] ghba-unchecked-status: (void) discard with no justifying comment.
void DiscardVoidNoComment() {
  (void)MightFailValue();
}

// [3] ghba-mutex-rank: rank forwarded through a parameter instead of a
// literal enumerator at the declaration.
struct ForwardedRank {
  explicit ForwardedRank(LockRank r) : mu(r) {}
  Mutex mu;  // no literal rank here
};

// [4] ghba-mutex-rank: lexically nested MutexLocks violating acquire-down.
struct Inverted {
  Mutex low{LockRank::kLogging};
  Mutex high{LockRank::kCluster};
  void Oops() {
    MutexLock inner(&low);   // rank 0 held...
    MutexLock outer(&high);  // ...then rank 13 acquired: inversion
    (void)outer;             // self-test fixture: silence unused warning
  }
};

// [5] ghba-blocking-on-event-thread: direct blocking call from an
// event-thread function, and [6] one reachable through a helper.
struct EventThing {
  ThreadRole io_role_;
  void Helper() { ::sync(); }
  void OnReadable() GHBA_REQUIRES(io_role_) {
    ::sync();  // [5] direct
    Helper();  // [6] transitive
  }
};

}  // namespace ghba
