// Clean counterpart to bad.cpp: every pattern here is the approved version
// of a construct the checks police. ghba-tidy must emit ZERO diagnostics
// for this file; the self-test fails if a check over-triggers.
#include "common/status.hpp"
#include "common/sync.hpp"

namespace ghba {

Status MightFail() { return Status::Ok(); }
Result<int> MightFailValue() { return 7; }

// Consumed results: assignment, condition, return.
Status Consumed() {
  Status s = MightFail();
  if (!s.ok()) return s;
  if (!MightFail().ok()) return Status::Internal("nested");
  return MightFail();
}

// Deliberate discard, justified on the preceding line.
void JustifiedDiscard() {
  // Best-effort wakeup: a failure only delays the next poll cycle.
  (void)MightFail();
  (void)MightFailValue();  // fallback value used below covers the miss
}

// Literal ranks at the declaration; nesting follows acquire-down.
struct WellRanked {
  Mutex outer{LockRank::kCluster};
  Mutex inner{LockRank::kLogging};
  void Fine() {
    MutexLock hi(&outer);
    MutexLock lo(&inner);
    (void)lo;  // fixture: silence unused warning
  }
};

// Blocking is fine off the event thread: no GHBA_REQUIRES(io/event role).
struct WorkerThing {
  ThreadRole worker_role_;
  void Checkpoint() GHBA_REQUIRES(worker_role_) { ::sync(); }
  void AnyThread() { ::sync(); }
};

}  // namespace ghba
