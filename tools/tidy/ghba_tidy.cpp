// ghba-tidy: project-specific static checks for the GHBA codebase.
//
// A standalone clang libTooling tool (the container that builds the repo day
// to day ships only GCC; CI installs LLVM dev packages and builds this with
// -DGHBA_TIDY_PLUGIN=ON). It implements three checks, reported in the
// familiar clang-tidy one-line format and gated at zero diagnostics by
// .github/workflows/lint.yml:
//
//   ghba-unchecked-status
//     A call returning ghba::Status or ghba::Result<T> whose value is
//     discarded. `(void)call()` silences it ONLY when the same line or the
//     line directly above carries a comment justifying the discard.
//
//   ghba-mutex-rank
//     Every ghba::Mutex must be constructed from a literal ghba::LockRank
//     enumerator (no computed ranks — the deadlock proof needs a total
//     order readable off the declaration). Additionally, lexically nested
//     ghba::MutexLock scopes whose ranks violate the acquire-down rule
//     (inner rank must be strictly below every outer rank) are diagnosed
//     statically; dynamic nesting through calls is covered at runtime by
//     GHBA_LOCKDEP.
//
//   ghba-blocking-on-event-thread
//     Functions annotated GHBA_REQUIRES(<ThreadRole named io*/event*>) run
//     on the epoll event thread; any blocking primitive (fsync, sleep,
//     poll/select, TcpConnection::Connect/SendFrame/RecvFrame, ...)
//     reachable from one through same-TU calls stalls every connection and
//     is an error.
//
// Exit status: 0 when clean, 1 when any diagnostic fired, 2 on usage /
// parse errors — run_clang_tidy.sh treats a missing or non-loadable tool
// as a hard failure, never as "no findings".

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/raw_ostream.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace {

llvm::cl::OptionCategory GhbaTidyCategory("ghba-tidy options");

// ---------------------------------------------------------------------------
// Diagnostic sink: clang-tidy-style lines, deduped across TUs (headers are
// parsed once per including TU; without dedup every header finding would
// repeat once per source file).
// ---------------------------------------------------------------------------

int g_diag_count = 0;
std::set<std::string> g_seen;

void Report(const SourceManager& sm, SourceLocation loc, llvm::StringRef check,
            llvm::StringRef message) {
  PresumedLoc ploc = sm.getPresumedLoc(loc);
  if (ploc.isInvalid()) return;
  std::string key = std::string(ploc.getFilename()) + ":" +
                    std::to_string(ploc.getLine()) + ":" + check.str() + ":" +
                    message.str();
  if (!g_seen.insert(key).second) return;
  ++g_diag_count;
  llvm::errs() << ploc.getFilename() << ":" << ploc.getLine() << ":"
               << ploc.getColumn() << ": error: " << message << " [" << check
               << "]\n";
}

// True for locations inside system headers or outside the analyzed project;
// we never diagnose those.
bool InProjectCode(const SourceManager& sm, SourceLocation loc) {
  if (loc.isInvalid() || sm.isInSystemHeader(loc)) return false;
  if (loc.isMacroID()) loc = sm.getSpellingLoc(loc);
  return loc.isValid() && !sm.isInSystemHeader(loc);
}

// The source text of the line containing `loc` (spelling location).
llvm::StringRef LineText(const SourceManager& sm, SourceLocation loc,
                         int line_delta = 0) {
  loc = sm.getSpellingLoc(loc);
  FileID fid = sm.getFileID(loc);
  int line = static_cast<int>(sm.getSpellingLineNumber(loc)) + line_delta;
  if (line < 1) return {};
  bool invalid = false;
  llvm::StringRef buf = sm.getBufferData(fid, &invalid);
  if (invalid) return {};
  SourceLocation start = sm.translateLineCol(fid, line, 1);
  if (start.isInvalid()) return {};
  unsigned off = sm.getFileOffset(start);
  if (off >= buf.size()) return {};
  std::size_t end = buf.find('\n', off);
  return buf.slice(off, end == llvm::StringRef::npos ? buf.size() : end);
}

bool LineHasComment(const SourceManager& sm, SourceLocation loc) {
  return LineText(sm, loc).contains("//") || LineText(sm, loc).contains("/*") ||
         LineText(sm, loc, -1).contains("//") ||
         LineText(sm, loc, -1).contains("/*");
}

// ---------------------------------------------------------------------------
// Type helpers
// ---------------------------------------------------------------------------

const CXXRecordDecl* RecordOf(QualType qt) {
  return qt.getCanonicalType()->getAsCXXRecordDecl();
}

bool IsNamed(const CXXRecordDecl* rd, llvm::StringRef qualified) {
  return rd != nullptr && rd->getQualifiedNameAsString() == qualified;
}

bool IsFallibleType(QualType qt) {
  const CXXRecordDecl* rd = RecordOf(qt);
  if (rd == nullptr) return false;
  std::string name = rd->getQualifiedNameAsString();
  return name == "ghba::Status" || name == "ghba::Result";
}

// Finds the first ghba::LockRank enumerator referenced anywhere inside an
// expression (the Mutex constructor argument), or null.
const EnumConstantDecl* FindLockRankEnumerator(const Stmt* s) {
  if (s == nullptr) return nullptr;
  if (const auto* dre = dyn_cast<DeclRefExpr>(s)) {
    if (const auto* ecd = dyn_cast<EnumConstantDecl>(dre->getDecl())) {
      const auto* ed = dyn_cast<EnumDecl>(ecd->getDeclContext());
      if (ed != nullptr && ed->getQualifiedNameAsString() == "ghba::LockRank") {
        return ecd;
      }
    }
  }
  for (const Stmt* child : s->children()) {
    if (const EnumConstantDecl* found = FindLockRankEnumerator(child)) {
      return found;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Check 1: ghba-unchecked-status
// ---------------------------------------------------------------------------

class UncheckedStatusCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const auto* call = result.Nodes.getNodeAs<CallExpr>("call");
    ASTContext& ctx = *result.Context;
    const SourceManager& sm = ctx.getSourceManager();
    if (!InProjectCode(sm, call->getBeginLoc())) return;
    if (!IsFallibleType(call->getCallReturnType(ctx))) return;

    // Walk up through the implicit wrappers clang inserts around a
    // full-expression; what we find decides whether the value is consumed.
    DynTypedNode node = DynTypedNode::create(*call);
    const ExplicitCastExpr* void_cast = nullptr;
    for (int hops = 0; hops < 8; ++hops) {
      DynTypedNodeList parents = ctx.getParents(node);
      if (parents.empty()) return;
      DynTypedNode parent = parents[0];
      if (parent.get<ExprWithCleanups>() != nullptr ||
          parent.get<ConstantExpr>() != nullptr ||
          parent.get<MaterializeTemporaryExpr>() != nullptr ||
          parent.get<ImplicitCastExpr>() != nullptr ||
          parent.get<CXXBindTemporaryExpr>() != nullptr ||
          parent.get<ParenExpr>() != nullptr) {
        node = parent;
        continue;
      }
      if (const auto* cast = parent.get<ExplicitCastExpr>()) {
        if (cast->getTypeAsWritten()->isVoidType()) {
          void_cast = cast;
          node = parent;
          continue;
        }
        return;  // cast to a real type: value consumed
      }
      // Statement positions in which the full-expression result is dropped.
      bool discarded = false;
      if (parent.get<CompoundStmt>() != nullptr ||
          parent.get<CaseStmt>() != nullptr ||
          parent.get<DefaultStmt>() != nullptr ||
          parent.get<LabelStmt>() != nullptr) {
        discarded = true;
      } else if (const auto* fs = parent.get<ForStmt>()) {
        const Stmt* self = node.get<Stmt>();
        discarded = self == fs->getInc() || self == fs->getBody();
      } else if (const auto* is = parent.get<IfStmt>()) {
        const Stmt* self = node.get<Stmt>();
        discarded = self == is->getThen() || self == is->getElse();
      } else if (const auto* ws = parent.get<WhileStmt>()) {
        discarded = node.get<Stmt>() == ws->getBody();
      }
      if (!discarded) return;  // consumed (assignment, return, condition, ...)

      SourceLocation loc = call->getBeginLoc();
      if (void_cast == nullptr) {
        Report(sm, loc, "ghba-unchecked-status",
               "return value of fallible call is discarded; check it, or "
               "'(void)' it with a comment explaining why ignoring is sound");
      } else if (!LineHasComment(sm, void_cast->getBeginLoc())) {
        Report(sm, loc, "ghba-unchecked-status",
               "'(void)' discard of a fallible call without a justifying "
               "comment on the same or preceding line");
      }
      return;
    }
  }
};

// ---------------------------------------------------------------------------
// Check 2: ghba-mutex-rank
// ---------------------------------------------------------------------------

class MutexRankDeclCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const SourceManager& sm = result.Context->getSourceManager();
    const Expr* init = nullptr;
    SourceLocation loc;
    if (const auto* fd = result.Nodes.getNodeAs<FieldDecl>("field")) {
      init = fd->getInClassInitializer();
      loc = fd->getLocation();
    } else if (const auto* vd = result.Nodes.getNodeAs<VarDecl>("var")) {
      if (vd->isLocalVarDeclOrParm() && !vd->hasInit()) return;  // params
      init = vd->getInit();
      loc = vd->getLocation();
    } else {
      return;
    }
    if (!InProjectCode(sm, loc)) return;
    if (FindLockRankEnumerator(init) != nullptr) return;
    Report(sm, loc, "ghba-mutex-rank",
           "ghba::Mutex must be initialized with a literal ghba::LockRank "
           "enumerator (constructor-forwarded or computed ranks defeat the "
           "static lock order)");
  }
};

// Resolves the Mutex a MutexLock guards back to its declaration, then to
// its declared rank. Best-effort: unresolvable targets (pointers passed in
// from elsewhere) are skipped — the runtime lockdep covers those.
struct RankedLock {
  std::int64_t rank;
  std::string rank_name;
  const NamedDecl* mutex_decl;
  SourceLocation at;
};

class LockNestVisitor : public RecursiveASTVisitor<LockNestVisitor> {
 public:
  explicit LockNestVisitor(ASTContext& ctx) : ctx_(ctx) {}

  // MutexLock lifetime = enclosing compound statement: restore the held
  // stack when the scope closes.
  bool TraverseCompoundStmt(CompoundStmt* cs) {
    std::size_t depth = held_.size();
    bool keep_going = RecursiveASTVisitor::TraverseCompoundStmt(cs);
    held_.resize(depth);
    return keep_going;
  }

  bool VisitVarDecl(VarDecl* vd) {
    if (!IsNamed(RecordOf(vd->getType()), "ghba::MutexLock")) return true;
    const NamedDecl* target = GuardedMutexDecl(vd->getInit());
    if (target == nullptr) return true;
    const EnumConstantDecl* rank = DeclaredRank(target);
    if (rank == nullptr) return true;
    std::int64_t value = rank->getInitVal().getExtValue();
    const SourceManager& sm = ctx_.getSourceManager();
    if (!held_.empty() && value >= held_.back().rank &&
        InProjectCode(sm, vd->getLocation())) {
      Report(sm, vd->getLocation(), "ghba-mutex-rank",
             "lock acquired at rank " + rank->getNameAsString() +
                 " while already holding rank " + held_.back().rank_name +
                 "; ranks must strictly decrease inward (acquire-down rule)");
    }
    held_.push_back({value, rank->getNameAsString(), target, vd->getLocation()});
    return true;
  }

 private:
  // VarDecl init -> CXXConstructExpr(MutexLock, &<mutex>) -> decl of <mutex>.
  static const NamedDecl* GuardedMutexDecl(const Expr* init) {
    if (init == nullptr) return nullptr;
    init = init->IgnoreImplicit();
    const auto* ctor = dyn_cast<CXXConstructExpr>(init);
    if (ctor == nullptr || ctor->getNumArgs() < 1) return nullptr;
    const Expr* arg = ctor->getArg(0)->IgnoreParenImpCasts();
    const auto* addr = dyn_cast<UnaryOperator>(arg);
    if (addr == nullptr || addr->getOpcode() != UO_AddrOf) return nullptr;
    const Expr* target = addr->getSubExpr()->IgnoreParenImpCasts();
    if (const auto* me = dyn_cast<MemberExpr>(target)) {
      return dyn_cast<NamedDecl>(me->getMemberDecl());
    }
    if (const auto* dre = dyn_cast<DeclRefExpr>(target)) {
      return dyn_cast<NamedDecl>(dre->getDecl());
    }
    return nullptr;
  }

  static const EnumConstantDecl* DeclaredRank(const NamedDecl* mutex_decl) {
    if (const auto* fd = dyn_cast<FieldDecl>(mutex_decl)) {
      return FindLockRankEnumerator(fd->getInClassInitializer());
    }
    if (const auto* vd = dyn_cast<VarDecl>(mutex_decl)) {
      return FindLockRankEnumerator(vd->getInit());
    }
    return nullptr;
  }

  ASTContext& ctx_;
  std::vector<RankedLock> held_;
};

class MutexRankNestCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const auto* fn = result.Nodes.getNodeAs<FunctionDecl>("fn");
    if (fn == nullptr || !fn->doesThisDeclarationHaveABody()) return;
    if (!InProjectCode(result.Context->getSourceManager(), fn->getLocation()))
      return;
    LockNestVisitor visitor(*result.Context);
    visitor.TraverseStmt(fn->getBody());
  }
};

// ---------------------------------------------------------------------------
// Check 3: ghba-blocking-on-event-thread
// ---------------------------------------------------------------------------

// True when `fd` is annotated GHBA_REQUIRES(x) where x is a ghba::ThreadRole
// whose field/variable name marks it as the event/io thread.
bool IsEventThreadFunction(const FunctionDecl* fd) {
  for (const auto* attr : fd->specific_attrs<RequiresCapabilityAttr>()) {
    for (const Expr* arg : attr->args()) {
      arg = arg->IgnoreParenImpCasts();
      const ValueDecl* vd = nullptr;
      if (const auto* me = dyn_cast<MemberExpr>(arg)) {
        vd = me->getMemberDecl();
      } else if (const auto* dre = dyn_cast<DeclRefExpr>(arg)) {
        vd = dre->getDecl();
      }
      if (vd == nullptr) continue;
      if (!IsNamed(RecordOf(vd->getType()), "ghba::ThreadRole")) continue;
      std::string name = vd->getNameAsString();
      llvm::StringRef ref(name);
      if (ref.contains_insensitive("io") || ref.contains_insensitive("event")) {
        return true;
      }
    }
  }
  return false;
}

// Is `callee` a blocking primitive? POSIX names are matched only for
// global/extern-C functions so an unrelated method named e.g. sleep() is
// not flagged; project blockers are matched by qualified name.
bool IsBlockingCallee(const FunctionDecl* callee, std::string* label) {
  static const std::set<std::string> kPosix = {
      "fsync",  "fdatasync", "sync",    "sleep",  "usleep",
      "nanosleep", "poll",   "ppoll",   "select", "pselect",
      "connect", "accept",   "flock",   "msync",
  };
  static const std::set<std::string> kQualified = {
      "std::this_thread::sleep_for",
      "std::this_thread::sleep_until",
      "ghba::TcpConnection::Connect",
      "ghba::TcpConnection::SendFrame",
      "ghba::TcpConnection::RecvFrame",
      "ghba::TcpConnection::SendAll",
      "ghba::TcpConnection::RecvAll",
  };
  std::string qualified = callee->getQualifiedNameAsString();
  if (kQualified.count(qualified) != 0) {
    *label = qualified;
    return true;
  }
  const DeclContext* dc = callee->getDeclContext();
  bool global_or_extern_c =
      dc->isTranslationUnit() || dc->isExternCContext() ||
      (isa<NamespaceDecl>(dc) && callee->isExternC());
  if (global_or_extern_c && kPosix.count(callee->getNameAsString()) != 0) {
    *label = callee->getNameAsString();
    return true;
  }
  return false;
}

class BlockingCallScanner : public RecursiveASTVisitor<BlockingCallScanner> {
 public:
  BlockingCallScanner(ASTContext& ctx, const FunctionDecl* root,
                      std::set<const FunctionDecl*>* visited)
      : ctx_(ctx), root_(root), visited_(visited) {}

  bool VisitCallExpr(CallExpr* call) {
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr) return true;
    std::string label;
    if (IsBlockingCallee(callee, &label)) {
      const SourceManager& sm = ctx_.getSourceManager();
      if (InProjectCode(sm, call->getBeginLoc())) {
        Report(sm, call->getBeginLoc(), "ghba-blocking-on-event-thread",
               "blocking call '" + label + "' reachable from event-thread "
               "function '" + root_->getQualifiedNameAsString() +
               "'; the epoll loop must never block outside epoll_wait");
      }
      return true;
    }
    // Follow same-TU calls so helpers invoked from the event thread are
    // covered too ("reachable from", not just "inside").
    const FunctionDecl* def = callee->getDefinition();
    if (def != nullptr && def->hasBody() && visited_->insert(def).second) {
      BlockingCallScanner nested(ctx_, root_, visited_);
      nested.TraverseStmt(def->getBody());
    }
    return true;
  }

 private:
  ASTContext& ctx_;
  const FunctionDecl* root_;
  std::set<const FunctionDecl*>* visited_;
};

class EventThreadCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const auto* fn = result.Nodes.getNodeAs<FunctionDecl>("fn");
    if (fn == nullptr || !fn->doesThisDeclarationHaveABody()) return;
    if (!IsEventThreadFunction(fn)) return;
    std::set<const FunctionDecl*> visited = {fn};
    BlockingCallScanner scanner(*result.Context, fn, &visited);
    scanner.TraverseStmt(fn->getBody());
  }
};

}  // namespace

int main(int argc, const char** argv) {
  auto expected_parser =
      tooling::CommonOptionsParser::create(argc, argv, GhbaTidyCategory);
  if (!expected_parser) {
    llvm::errs() << llvm::toString(expected_parser.takeError()) << "\n";
    return 2;
  }
  tooling::CommonOptionsParser& options = *expected_parser;
  tooling::ClangTool tool(options.getCompilations(),
                          options.getSourcePathList());

  MatchFinder finder;

  UncheckedStatusCallback unchecked;
  finder.addMatcher(callExpr().bind("call"), &unchecked);

  MutexRankDeclCallback rank_decl;
  finder.addMatcher(
      fieldDecl(hasType(cxxRecordDecl(hasName("::ghba::Mutex"))))
          .bind("field"),
      &rank_decl);
  finder.addMatcher(
      varDecl(hasType(cxxRecordDecl(hasName("::ghba::Mutex")))).bind("var"),
      &rank_decl);

  MutexRankNestCallback rank_nest;
  finder.addMatcher(functionDecl(hasBody(compoundStmt())).bind("fn"),
                    &rank_nest);

  EventThreadCallback event_thread;
  finder.addMatcher(functionDecl(hasBody(compoundStmt())).bind("fn"),
                    &event_thread);

  int run_status =
      tool.run(tooling::newFrontendActionFactory(&finder).get());
  if (run_status != 0) {
    llvm::errs() << "ghba-tidy: compilation errors while analyzing\n";
    return 2;
  }
  if (g_diag_count > 0) {
    llvm::errs() << "ghba-tidy: " << g_diag_count << " diagnostic(s)\n";
    return 1;
  }
  return 0;
}
