// ghba_client — poke a running mds_daemon over the wire.
//
//   $ ghba_client <port> ping
//   $ ghba_client <port> insert </path> [inode]
//   $ ghba_client <port> verify </path>
//   $ ghba_client <port> unlink </path>
//   $ ghba_client <port> stats
//   $ ghba_client <port> shutdown
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "rpc/protocol.hpp"
#include "rpc/socket.hpp"

using namespace ghba;

namespace {

int PrintStatus(const std::vector<std::uint8_t>& resp) {
  ByteReader in(resp);
  const auto env = OpenEnvelope(in);
  if (!env.ok()) {
    std::fprintf(stderr, "bad response: %s\n", env.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", env->status.ToString().c_str());
  return env->status.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <port> <ping|insert|verify|unlink|stats|shutdown> "
                 "[args]\n",
                 argv[0]);
    return 2;
  }
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[1]));
  const std::string cmd = argv[2];

  auto conn = TcpConnection::Connect(port);
  if (!conn.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 conn.status().ToString().c_str());
    return 1;
  }

  const auto call = [&](const std::vector<std::uint8_t>& frame)
      -> Result<std::vector<std::uint8_t>> {
    if (const auto s = conn->SendFrame(frame); !s.ok()) return s;
    return conn->RecvFrame();
  };

  if (cmd == "ping") {
    auto resp = call(EncodeHeader(MsgType::kPing));
    if (!resp.ok()) return 1;
    return PrintStatus(*resp);
  }
  if (cmd == "insert") {
    if (argc < 4) {
      std::fprintf(stderr, "insert needs a path\n");
      return 2;
    }
    FileMetadata md;
    md.inode = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
    auto resp = call(EncodeInsert(argv[3], md));
    if (!resp.ok()) return 1;
    return PrintStatus(*resp);
  }
  if (cmd == "verify") {
    if (argc < 4) {
      std::fprintf(stderr, "verify needs a path\n");
      return 2;
    }
    auto resp = call(EncodePathRequest(MsgType::kVerify, argv[3]));
    if (!resp.ok()) return 1;
    ByteReader in(*resp);
    const auto env = OpenEnvelope(in);
    if (!env.ok() || !env->has_payload) return 1;
    const auto found = DecodeBoolResp(in);
    if (!found.ok()) return 1;
    std::printf("%s\n", *found ? "present" : "absent");
    return *found ? 0 : 3;
  }
  if (cmd == "unlink") {
    if (argc < 4) {
      std::fprintf(stderr, "unlink needs a path\n");
      return 2;
    }
    auto resp = call(EncodePathRequest(MsgType::kUnlink, argv[3]));
    if (!resp.ok()) return 1;
    return PrintStatus(*resp);
  }
  if (cmd == "stats") {
    auto resp = call(EncodeHeader(MsgType::kGetStats));
    if (!resp.ok()) return 1;
    ByteReader in(*resp);
    const auto env = OpenEnvelope(in);
    if (!env.ok() || !env->has_payload) return 1;
    const auto stats = DecodeStatsResp(in);
    if (!stats.ok()) return 1;
    std::printf("frames_in=%llu frames_out=%llu files=%llu replicas=%llu\n",
                static_cast<unsigned long long>(stats->frames_in),
                static_cast<unsigned long long>(stats->frames_out),
                static_cast<unsigned long long>(stats->files),
                static_cast<unsigned long long>(stats->replicas));
    return 0;
  }
  if (cmd == "shutdown") {
    if (const auto s = conn->SendFrame(EncodeHeader(MsgType::kShutdown));
        !s.ok()) {
      return 1;
    }
    std::printf("shutdown sent\n");
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
