// ghba_client — poke a running mds_daemon over the wire, via DaemonClient.
//
//   $ ghba_client <port> ping
//   $ ghba_client <port> insert </path> [inode]
//   $ ghba_client <port> verify </path>
//   $ ghba_client <port> lease </path>
//   $ ghba_client <port> invalidate </path>
//   $ ghba_client <port> unlink </path>
//   $ ghba_client <port> stats
//   $ ghba_client <port> version
//   $ ghba_client <port> shutdown
//
// `verify` resolves the routing, not just existence: it prints the id of
// the server that answered for the path (from the v4 lease grant) and the
// replica owners whose filters match, e.g.
//
//   present resolved=mds2 lease_ttl_ms=2000 replicas=[2] l1=mds2
//
// Exit status: 0 success; 1 failure; 2 usage; 3 verify says absent.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "client/daemon_client.hpp"

using namespace ghba;

namespace {

int PrintStatus(const Status& s) {
  std::printf("%s\n", s.ToString().c_str());
  return s.ok() ? 0 : 1;
}

int RunVerify(DaemonClient& client, const std::string& path) {
  const auto v = client.Verify(path);
  if (!v.ok()) {
    std::fprintf(stderr, "verify failed: %s\n", v.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", v->present ? "present" : "absent");
  if (v->resolved != kInvalidMds) {
    std::printf(" resolved=mds%u", v->resolved);
    if (v->lease_granted) std::printf(" lease_ttl_ms=%u", v->lease_ttl_ms);
  }
  std::printf(" replicas=[");
  for (std::size_t i = 0; i < v->replica_hits.size(); ++i) {
    std::printf("%s%u", i ? " " : "", v->replica_hits[i]);
  }
  std::printf("]");
  if (v->lru_unique) std::printf(" l1=mds%u", v->lru_home);
  std::printf("\n");
  return v->present ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <port> <ping|insert|verify|lease|invalidate|"
                 "unlink|stats|version|shutdown> [args]\n",
                 argv[0]);
    return 2;
  }
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[1]));
  const std::string cmd = argv[2];

  auto client = DaemonClient::Connect(port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  const auto need_path = [&]() -> const char* {
    if (argc < 4) {
      std::fprintf(stderr, "%s needs a path\n", cmd.c_str());
      return nullptr;
    }
    return argv[3];
  };

  if (cmd == "ping") return PrintStatus(client->Ping());
  if (cmd == "insert") {
    const char* path = need_path();
    if (path == nullptr) return 2;
    FileMetadata md;
    md.inode = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
    return PrintStatus(client->Insert(path, md));
  }
  if (cmd == "verify") {
    const char* path = need_path();
    if (path == nullptr) return 2;
    return RunVerify(*client, path);
  }
  if (cmd == "lease") {
    const char* path = need_path();
    if (path == nullptr) return 2;
    const auto lease = client->RequestLease(path);
    if (!lease.ok()) {
      std::fprintf(stderr, "lease failed: %s\n",
                   lease.status().ToString().c_str());
      return 1;
    }
    if (lease->granted) {
      std::printf("granted home=mds%u ttl_ms=%u\n", lease->home,
                  lease->ttl_ms);
      return 0;
    }
    std::printf("refused\n");
    return 3;
  }
  if (cmd == "invalidate") {
    const char* path = need_path();
    if (path == nullptr) return 2;
    return PrintStatus(client->Invalidate(path));
  }
  if (cmd == "unlink") {
    const char* path = need_path();
    if (path == nullptr) return 2;
    return PrintStatus(client->Unlink(path));
  }
  if (cmd == "stats") {
    const auto stats = client->Stats();
    if (!stats.ok()) return 1;
    std::printf("frames_in=%llu frames_out=%llu files=%llu replicas=%llu\n",
                static_cast<unsigned long long>(stats->frames_in),
                static_cast<unsigned long long>(stats->frames_out),
                static_cast<unsigned long long>(stats->files),
                static_cast<unsigned long long>(stats->replicas));
    return 0;
  }
  if (cmd == "version") {
    const auto v = client->Version();
    if (!v.ok()) return 1;
    std::printf("v%u\n", *v);
    return 0;
  }
  if (cmd == "shutdown") {
    if (!client->Shutdown().ok()) return 1;
    std::printf("shutdown sent\n");
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
