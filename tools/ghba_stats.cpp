// ghba_stats — live per-level observability for a running cluster.
//
//   $ ghba_stats [--json] [--watch <seconds>] <port> [<port> ...]
//
// Polls every listed MDS (mds_daemon processes or a PrototypeCluster's
// ServerPorts()) with a kStatsSnapshot RPC and renders the paper's
// evaluation quantities from live servers: per-level hit counts and ratios
// (Fig. 13), lookup latency percentiles (Figs. 8-10, 14), and filter
// memory (Table 5 / LookupStateBytes). `--json` emits one machine-readable
// document per poll for scraping; `--watch N` re-polls every N seconds
// until interrupted.
//
// Exit status: 0 on success, 1 if any server could not be polled.
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.hpp"
#include "rpc/protocol.hpp"
#include "rpc/socket.hpp"

using namespace ghba;

namespace {

std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }

/// One polled server, or the reason it could not be polled.
struct Polled {
  std::uint16_t port = 0;
  bool ok = false;
  std::string error;
  StatsSnapshotResp snap;
};

Polled PollOne(std::uint16_t port) {
  Polled out;
  out.port = port;
  const auto deadline = Deadline::After(std::chrono::seconds(5));
  auto conn = TcpConnection::Connect(port, deadline);
  if (!conn.ok()) {
    out.error = conn.status().ToString();
    return out;
  }
  if (const auto s =
          conn->SendFrame(EncodeHeader(MsgType::kStatsSnapshot), deadline);
      !s.ok()) {
    out.error = s.ToString();
    return out;
  }
  auto resp = conn->RecvFrame(deadline);
  if (!resp.ok()) {
    out.error = resp.status().ToString();
    return out;
  }
  ByteReader in(*resp);
  const auto env = OpenEnvelope(in);
  if (!env.ok()) {
    out.error = env.status().ToString();
    return out;
  }
  if (!env->has_payload) {
    out.error = env->status.ToString();
    return out;
  }
  auto snap = DecodeStatsSnapshotResp(in);
  if (!snap.ok()) {
    out.error = snap.status().ToString();
    return out;
  }
  out.ok = true;
  out.snap = std::move(*snap);
  return out;
}

QueryLevelValues LevelsOf(const MetricsSnapshot& m) {
  QueryLevelValues v;
  v.l1 = m.CounterOr(metrics_names::kLookupsL1);
  v.l2 = m.CounterOr(metrics_names::kLookupsL2);
  v.l3 = m.CounterOr(metrics_names::kLookupsL3);
  v.l4 = m.CounterOr(metrics_names::kLookupsL4);
  v.miss = m.CounterOr(metrics_names::kLookupsMiss);
  return v;
}

HistogramStats LatencyOf(const MetricsSnapshot& m) {
  const auto it = m.histograms.find(metrics_names::kLatencyLookupMs);
  return it == m.histograms.end() ? HistogramStats{} : it->second;
}

void PrintJsonString(const std::string& s) {
  std::putchar('"');
  for (const char c : s) {
    switch (c) {
      case '"': std::fputs("\\\"", stdout); break;
      case '\\': std::fputs("\\\\", stdout); break;
      case '\n': std::fputs("\\n", stdout); break;
      case '\t': std::fputs("\\t", stdout); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::printf("\\u%04x", c);
        } else {
          std::putchar(c);
        }
    }
  }
  std::putchar('"');
}

void PrintJson(const std::vector<Polled>& servers) {
  QueryLevelValues total;
  std::uint64_t total_lookups = 0;
  std::printf("{\"servers\":[");
  bool first = true;
  for (const auto& p : servers) {
    if (!first) std::putchar(',');
    first = false;
    if (!p.ok) {
      std::printf("{\"port\":%u,\"ok\":false,\"error\":", p.port);
      PrintJsonString(p.error);
      std::putchar('}');
      continue;
    }
    const auto& s = p.snap;
    const auto levels = LevelsOf(s.metrics);
    total.l1 += levels.l1;
    total.l2 += levels.l2;
    total.l3 += levels.l3;
    total.l4 += levels.l4;
    total.miss += levels.miss;
    total_lookups += LatencyOf(s.metrics).count;
    std::printf("{\"port\":%u,\"ok\":true,\"mds_id\":%u,"
                "\"files\":%" PRIu64 ",\"replicas\":%" PRIu64
                ",\"frames_in\":%" PRIu64 ",\"frames_out\":%" PRIu64
                ",\"lookup_state_bytes\":%" PRIu64,
                p.port, s.mds_id, s.files, s.replicas, s.frames_in,
                s.frames_out, s.lookup_state_bytes);
    std::printf(",\"counters\":{");
    bool c_first = true;
    for (const auto& [name, value] : s.metrics.counters) {
      if (!c_first) std::putchar(',');
      c_first = false;
      PrintJsonString(name);
      std::printf(":%" PRIu64, value);
    }
    std::printf("},\"histograms\":{");
    bool h_first = true;
    for (const auto& [name, h] : s.metrics.histograms) {
      if (!h_first) std::putchar(',');
      h_first = false;
      PrintJsonString(name);
      std::printf(":{\"count\":%" PRIu64
                  ",\"mean\":%.6g,\"min\":%.6g,\"max\":%.6g,"
                  "\"p50\":%.6g,\"p99\":%.6g}",
                  h.count, h.mean(), h.min, h.max, h.p50, h.p99);
    }
    std::printf("}}");
  }
  // The aggregate restates Fig. 13: per-level counts plus the total number
  // of finished lookups (the latency histogram's count). Scrapers assert
  // l1+l2+l3+l4+miss == lookups as the accounting invariant.
  std::printf("],\"aggregate\":{\"lookups\":%" PRIu64 ",\"l1\":%" PRIu64
              ",\"l2\":%" PRIu64 ",\"l3\":%" PRIu64 ",\"l4\":%" PRIu64
              ",\"miss\":%" PRIu64 "}}\n",
              total_lookups, total.l1, total.l2, total.l3, total.l4,
              total.miss);
}

void PrintTable(const std::vector<Polled>& servers) {
  std::printf(
      "MDS   files  replicas  state_KiB   lookups    L1%%    L2%%    L3%%"
      "    L4%%  miss%%   p50ms   p99ms\n");
  QueryLevelValues total;
  HistogramStats total_lat;
  std::uint64_t total_files = 0, total_replicas = 0, total_state = 0;
  for (const auto& p : servers) {
    if (!p.ok) {
      std::printf(":%u unreachable: %s\n", p.port, p.error.c_str());
      continue;
    }
    const auto& s = p.snap;
    const auto levels = LevelsOf(s.metrics);
    const auto lat = LatencyOf(s.metrics);
    total.l1 += levels.l1;
    total.l2 += levels.l2;
    total.l3 += levels.l3;
    total.l4 += levels.l4;
    total.miss += levels.miss;
    total_lat.count += lat.count;
    total_lat.sum += lat.sum;
    total_files += s.files;
    total_replicas += s.replicas;
    total_state += s.lookup_state_bytes;
    std::printf("%3u %7" PRIu64 " %9" PRIu64 " %10.1f %9" PRIu64
                " %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %7.3f %7.3f\n",
                s.mds_id, s.files, s.replicas,
                static_cast<double>(s.lookup_state_bytes) / 1024.0,
                levels.total(), 100 * levels.Fraction(levels.l1),
                100 * levels.Fraction(levels.l2),
                100 * levels.Fraction(levels.l3),
                100 * levels.Fraction(levels.l4),
                100 * levels.Fraction(levels.miss), lat.p50, lat.p99);
  }
  std::printf("ALL %7" PRIu64 " %9" PRIu64 " %10.1f %9" PRIu64
              " %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%    mean %7.3f\n",
              total_files, total_replicas,
              static_cast<double>(total_state) / 1024.0, total.total(),
              100 * total.Fraction(total.l1), 100 * total.Fraction(total.l2),
              100 * total.Fraction(total.l3), 100 * total.Fraction(total.l4),
              100 * total.Fraction(total.miss), total_lat.mean());
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  int watch_seconds = 0;
  std::vector<std::uint16_t> ports;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--watch") == 0 && i + 1 < argc) {
      watch_seconds = std::atoi(argv[++i]);
    } else {
      const int port = std::atoi(argv[i]);
      if (port <= 0 || port > 65535) {
        std::fprintf(stderr, "bad port '%s'\n", argv[i]);
        return 2;
      }
      ports.push_back(static_cast<std::uint16_t>(port));
    }
  }
  if (ports.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--watch <seconds>] <port> [<port>...]\n",
                 argv[0]);
    return 2;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  while (true) {
    std::vector<Polled> servers;
    servers.reserve(ports.size());
    bool all_ok = true;
    for (const auto port : ports) {
      servers.push_back(PollOne(port));
      all_ok = all_ok && servers.back().ok;
    }
    if (json) {
      PrintJson(servers);
    } else {
      PrintTable(servers);
    }
    std::fflush(stdout);
    if (watch_seconds <= 0 || g_stop.load()) return all_ok ? 0 : 1;
    for (int i = 0; i < watch_seconds * 10 && !g_stop.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (g_stop.load()) return all_ok ? 0 : 1;
    if (!json) std::printf("\n");
  }
}
