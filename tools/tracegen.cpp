// tracegen — materialize a synthetic HP/INS/RES workload into the text
// trace format, so experiments are repeatable byte-for-byte and users can
// inspect or post-process the operations stream.
//
//   $ tracegen <hp|ins|res> <tif> <ops> <output-file> [seed]
//
// The file replays through trace_replay-style drivers via LoadTraceFile +
// VectorTrace.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "trace/generator.hpp"
#include "trace/stats.hpp"
#include "trace/trace_io.hpp"

using namespace ghba;

int main(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: %s <hp|ins|res> <tif> <ops> <output-file> [seed]\n",
                 argv[0]);
    return 2;
  }
  const std::string trace_name = argv[1];
  const auto tif = static_cast<std::uint32_t>(std::atoi(argv[2]));
  const auto ops = static_cast<std::uint64_t>(std::atoll(argv[3]));
  const std::string out_path = argv[4];
  const std::uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

  if (tif == 0 || ops == 0) {
    std::fprintf(stderr, "tif and ops must be positive\n");
    return 2;
  }

  const auto profile = ProfileByName(trace_name);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 2;
  }

  IntensifiedTrace trace(*profile, tif, seed);
  auto records = Materialize(trace, ops);

  TraceStats stats;
  for (const auto& rec : records) stats.Observe(rec);

  if (const Status s = SaveTraceFile(out_path, records); !s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", stats.ToTable("wrote " + out_path).c_str());
  return 0;
}
