// ghba_workload — run a deterministic lookup workload against a live
// in-process cluster through the ghba::Client facade and (optionally) hold
// the servers up so external tools can poll them.
//
//   $ ghba_workload [--servers N] [--group M] [--files F] [--shards S]
//                   [--batch] [--cache] [--ports-file PATH] [--hold]
//                   [--data-dir DIR] [--churn SECS] [--coherence SECS]
//
// Starts an N-MDS G-HBA cluster over loopback TCP, inserts F files,
// publishes replicas, looks every file up twice (the repeat exercises the
// entry server's L1) plus a handful of guaranteed misses, quiesces the
// one-way report frames, and prints the workload summary:
//
//   lookups=<count issued>
//   ports=<p0> <p1> ...
//
// The client cache defaults OFF here so the e2e accounting invariant
// (l1+l2+l3+l4+miss == lookups, measured server-side) keeps holding;
// --cache turns the leased lookup cache on.
//
// With --churn SECS the workload runs SECS seconds of membership churn
// under live load: a background thread keeps looking files up while the
// main thread gracefully removes and re-adds servers. Every lookup answer
// is audited — a not-found or a non-transient error is a wrong lookup —
// and the run fails unless wrong == 0 and at least one reconfiguration
// actually happened. Results go to stdout as churn_* key=value lines.
//
// With --coherence SECS the workload runs the front-tier coherence audit
// (cache forced ON): lookups warm the leased cache, then each round
// unlinks a file through the facade and immediately re-reads it — any
// `found` after a successful unlink is a stale read — while a replica
// migration bounces in the background bumping the routing epoch. The run
// fails unless stale == 0, the cache actually served hits, and at least
// one migration happened. Results go to stdout as coherence_* lines.
//
// With --hold the process then blocks until stdin reaches EOF (or a line
// arrives), keeping the servers alive; the e2e CI smoke uses this to run
// `ghba_stats --json` against a real cluster and assert the accounting
// invariant above.
//
// Exit status: 0 on success, 1 on any cluster/workload failure.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"

using namespace ghba;

namespace {

/// One round of the coherence audit against `path`: lookup (may seed the
/// cache), unlink through the facade (purge + broadcast kInvalidate), then
/// re-read several times — every `found` is a stale read. The file is
/// re-inserted before returning so the next round starts clean.
/// Returns the number of stale reads (-1 = infrastructure failure).
int CoherenceRound(Client& client, const std::string& path,
                   std::uint64_t* lookups) {
  const auto before = client.Lookup(path);
  ++*lookups;
  if (!before.ok() || !before->found) return -1;
  if (const auto s = client.Unlink(path); !s.ok()) return -1;
  int stale = 0;
  for (int probe = 0; probe < 3; ++probe) {
    const auto r = client.Lookup(path);
    ++*lookups;
    // Unavailable is transient churn noise; found is the coherence bug.
    if (r.ok() && r->found) ++stale;
  }
  FileMetadata md;
  md.inode = 77;
  if (const auto s = client.Insert(path, md); !s.ok()) return -1;
  return stale;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t num_servers = 4;
  std::uint32_t group_size = 2;
  int num_files = 48;
  std::uint32_t shards = 0;  // 0 = config default
  bool batch = false;
  bool cache = false;
  std::string ports_file;
  std::string data_dir;
  bool hold = false;
  double churn_secs = 0;
  double coherence_secs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--servers") == 0 && i + 1 < argc) {
      num_servers = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--group") == 0 && i + 1 < argc) {
      group_size = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--files") == 0 && i + 1 < argc) {
      num_files = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--ports-file") == 0 && i + 1 < argc) {
      ports_file = argv[++i];
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = true;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      cache = true;
    } else if (std::strcmp(argv[i], "--hold") == 0) {
      hold = true;
    } else if (std::strcmp(argv[i], "--churn") == 0 && i + 1 < argc) {
      churn_secs = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--coherence") == 0 && i + 1 < argc) {
      coherence_secs = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--servers N] [--group M] [--files F] "
                   "[--shards S] [--batch] [--cache] "
                   "[--ports-file PATH] [--hold] [--data-dir DIR] "
                   "[--churn SECS] [--coherence SECS]\n",
                   argv[0]);
      return 2;
    }
  }

  ClusterConfig config;
  config.num_mds = num_servers;
  config.max_group_size = group_size;
  config.expected_files_per_mds = 500;
  config.lru_capacity = 64;
  config.memory_budget_bytes = 64ULL << 20;
  config.seed = 2026;
  // Durable mode: every server logs to DIR/mds-<id>/ before acking.
  config.storage.data_dir = data_dir;
  if (shards != 0) config.rpc.server_shards = shards;

  ClientOptions options;
  options.cache_enabled = cache || coherence_secs > 0;
  auto opened = Client::Open(config, ProtoScheme::kGhba, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  Client& client = **opened;
  PrototypeCluster& cluster = client.cluster();

  if (batch) {
    // Batched writes: one kBatch frame per server, one CRC per frame.
    std::vector<std::pair<std::string, FileMetadata>> files;
    files.reserve(static_cast<std::size_t>(num_files));
    for (int i = 0; i < num_files; ++i) {
      FileMetadata md;
      md.inode = static_cast<std::uint64_t>(i);
      files.emplace_back("/wk/f" + std::to_string(i), md);
    }
    if (const auto s = client.InsertBatch(files); !s.ok()) {
      std::fprintf(stderr, "batch insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  } else {
    for (int i = 0; i < num_files; ++i) {
      FileMetadata md;
      md.inode = static_cast<std::uint64_t>(i);
      if (const auto s = client.Insert("/wk/f" + std::to_string(i), md);
          !s.ok()) {
        std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }
  if (const auto s = cluster.PublishAll(); !s.ok()) {
    std::fprintf(stderr, "publish failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::uint64_t lookups = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < num_files; ++i) {
      const auto r = client.Lookup("/wk/f" + std::to_string(i));
      if (!r.ok() || !r->found) {
        std::fprintf(stderr, "lookup /wk/f%d failed\n", i);
        return 1;
      }
      ++lookups;
    }
  }
  for (int i = 0; i < 7; ++i) {
    const auto r = client.Lookup("/wk/absent" + std::to_string(i));
    if (!r.ok() || r->found) {
      std::fprintf(stderr, "miss lookup %d misbehaved\n", i);
      return 1;
    }
    ++lookups;
  }

  if (churn_secs > 0) {
    // Membership churn under live load: lookups keep flowing from a
    // background thread while servers gracefully leave and fresh ones
    // join. RemoveServer drains the leaver's files to the survivors, so
    // every file must stay resolvable throughout; an unreachable-peer
    // error is transient (the orchestrator's next call retries), a
    // not-found is a wrong lookup and fails the run.
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> churn_lookups{0};
    std::atomic<std::uint64_t> churn_wrong{0};
    std::thread load([&] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto r = client.Lookup("/wk/f" + std::to_string(i % num_files));
        ++i;
        churn_lookups.fetch_add(1, std::memory_order_relaxed);
        const bool wrong = r.ok() ? !r->found
                                  : r.status().code() != StatusCode::kUnavailable;
        if (wrong) churn_wrong.fetch_add(1, std::memory_order_relaxed);
      }
    });
    std::uint64_t rounds = 0;
    const auto stop_at = std::chrono::steady_clock::now() +
                         std::chrono::duration<double>(churn_secs);
    while (std::chrono::steady_clock::now() < stop_at) {
      const auto alive = cluster.AliveServers();
      if (alive.size() > 1) {
        if (!cluster.RemoveServer(alive.back()).ok()) {
          std::fprintf(stderr, "churn: remove failed\n");
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (!cluster.AddServer().ok()) {
        std::fprintf(stderr, "churn: add failed\n");
      }
      ++rounds;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    stop.store(true, std::memory_order_relaxed);
    load.join();
    const std::uint64_t reconfig_msgs =
        cluster.metrics().reconfig_messages.value();
    std::printf("churn_rounds=%llu\n", static_cast<unsigned long long>(rounds));
    std::printf("churn_lookups=%llu\n",
                static_cast<unsigned long long>(churn_lookups.load()));
    std::printf("churn_wrong=%llu\n",
                static_cast<unsigned long long>(churn_wrong.load()));
    std::printf("churn_reconfig_messages=%llu\n",
                static_cast<unsigned long long>(reconfig_msgs));
    std::printf("churn_epoch=%llu\n",
                static_cast<unsigned long long>(cluster.RoutingEpoch()));
    if (churn_wrong.load() != 0 || reconfig_msgs == 0 ||
        churn_lookups.load() == 0) {
      std::fprintf(stderr, "churn failed the zero-wrong-lookups bar\n");
      return 1;
    }
  }

  if (coherence_secs > 0) {
    // Front-tier coherence audit: unlinks and replica migrations churn
    // while leased cache entries serve lookups. The bar: zero stale reads
    // — no `found` for an unlinked path, through cache or cascade —
    // while the cache demonstrably served hits and epochs really bumped.
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> migrations{0};
    // Replica-migration bouncer: move some outsider's replica between the
    // members of server 0's group, bumping the routing epoch every flip.
    std::thread churner([&] {
      std::vector<MdsId> members;
      if (const auto view = cluster.MembershipOf(0); view.ok()) {
        members = view->members;
      }
      MdsId owner = kInvalidMds;
      for (const MdsId id : cluster.AliveServers()) {
        if (std::find(members.begin(), members.end(), id) == members.end()) {
          owner = id;
          break;
        }
      }
      if (owner == kInvalidMds || members.empty()) return;  // single group
      std::size_t turn = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const MdsId to = members[turn++ % members.size()];
        if (cluster.MigrateReplica(owner, to).ok()) {
          migrations.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });

    std::uint64_t rounds = 0, stale = 0, audit_lookups = 0, failures = 0;
    const auto stop_at = std::chrono::steady_clock::now() +
                         std::chrono::duration<double>(coherence_secs);
    while (std::chrono::steady_clock::now() < stop_at) {
      const std::string path =
          "/wk/f" + std::to_string(rounds % static_cast<std::uint64_t>(
                                                num_files));
      const int round_stale = CoherenceRound(client, path, &audit_lookups);
      if (round_stale < 0) {
        ++failures;  // transient churn noise; the bar is on stale reads
      } else {
        stale += static_cast<std::uint64_t>(round_stale);
      }
      ++rounds;
    }
    stop.store(true, std::memory_order_relaxed);
    churner.join();

    const std::uint64_t cache_hits =
        cluster.ClientSnapshot().CounterOr("cache.hits");
    std::printf("coherence_rounds=%llu\n",
                static_cast<unsigned long long>(rounds));
    std::printf("coherence_lookups=%llu\n",
                static_cast<unsigned long long>(audit_lookups));
    std::printf("coherence_stale=%llu\n",
                static_cast<unsigned long long>(stale));
    std::printf("coherence_failures=%llu\n",
                static_cast<unsigned long long>(failures));
    std::printf("coherence_migrations=%llu\n",
                static_cast<unsigned long long>(migrations.load()));
    std::printf("coherence_cache_hits=%llu\n",
                static_cast<unsigned long long>(cache_hits));
    if (stale != 0 || rounds == 0 || migrations.load() == 0 ||
        failures > rounds / 2) {
      std::fprintf(stderr, "coherence audit failed the zero-stale-reads bar\n");
      return 1;
    }
  }

  // Make sure every one-way kReportOutcome frame has been folded into the
  // server registries before anyone polls kStatsSnapshot.
  if (const auto s = cluster.Quiesce(); !s.ok()) {
    std::fprintf(stderr, "quiesce failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const auto ports = cluster.ServerPorts();
  std::printf("lookups=%llu\n", static_cast<unsigned long long>(lookups));
  std::printf("ports=");
  for (std::size_t i = 0; i < ports.size(); ++i) {
    std::printf("%s%u", i ? " " : "", ports[i]);
  }
  std::printf("\n");
  std::fflush(stdout);

  if (!ports_file.empty()) {
    // Written last, in one go: a non-empty file means the summary above is
    // complete and the servers are pollable.
    if (std::FILE* f = std::fopen(ports_file.c_str(), "w")) {
      std::fprintf(f, "%llu\n", static_cast<unsigned long long>(lookups));
      for (std::size_t i = 0; i < ports.size(); ++i) {
        std::fprintf(f, "%s%u", i ? " " : "", ports[i]);
      }
      std::fprintf(f, "\n");
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", ports_file.c_str());
      return 1;
    }
  }

  if (hold) {
    // Keep the servers alive until the driver script is done polling.
    int c;
    while ((c = std::getchar()) != EOF && c != '\n') {
    }
  }
  return 0;
}
