// txn_chaos — deployment-mode crash sweep for distributed transactions.
//
//   $ txn_chaos --daemon ./tools/mds_daemon [--mds N] [--data-dir DIR]
//               [--renames K] [--keep]
//
// Spawns N real mds_daemon processes (durable, fsync=always, ephemeral
// ports), then proves the two claims the in-process matrix proves — with
// kill -9 instead of a simulated crash:
//
//   1. clean cross-daemon renames move files atomically;
//   2. killing the targeted daemon at EVERY 2PC message boundary (and the
//      client at the two interesting ones) recovers, after restart on the
//      same data dir plus in-doubt resolution, to exactly one endpoint:
//      the new name iff the rename was acked, the old name otherwise —
//      never both, never neither, and no background file is ever lost.
//
// Exit status 0 iff every audit passed; CI runs this as the txn-chaos
// stage. The namespace layout mirrors the orchestrator: a path's home is
// Fnv1a64(path) % N, so the tool and the daemons agree on placement
// without any lookup protocol.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "client/daemon_harness.hpp"
#include "hash/fnv.hpp"

namespace {

using ghba::DaemonClient;
using ghba::DaemonProcess;
using ghba::DaemonTxnTransport;
using ghba::FileMetadata;
using ghba::MdsId;
using ghba::Status;
using ghba::TxnDriver;
using ghba::TxnPhase;

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  ok: %s\n", what.c_str());
  } else {
    std::printf("  FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

struct Fleet {
  std::vector<DaemonProcess> daemons;
  DaemonTxnTransport transport{2000};

  DaemonProcess& at(MdsId id) { return daemons[id]; }

  Status StartAll(const std::string& binary, const std::string& data_dir,
                  std::size_t n) {
    for (std::size_t id = 0; id < n; ++id) {
      DaemonProcess::Options opt;
      opt.binary = binary;
      opt.id = static_cast<MdsId>(id);
      opt.data_dir = data_dir;
      daemons.emplace_back(std::move(opt));
      if (Status s = daemons.back().Start(); !s.ok()) return s;
      transport.SetPort(static_cast<MdsId>(id), daemons.back().port());
    }
    return Status::Ok();
  }

  MdsId HomeOf(const std::string& path) const {
    return static_cast<MdsId>(ghba::Fnv1a64(path) % daemons.size());
  }

  /// Kill -9 `id` and tell the transport (confirmed death, not a guess).
  void Kill(MdsId id) {
    at(id).Kill9();
    transport.MarkDead(id);
  }

  /// Restart `id` on its data dir; rebind the transport to the new port.
  Status Restart(MdsId id) {
    if (Status s = at(id).Start(); !s.ok()) return s;
    transport.SetPort(id, at(id).port());
    return Status::Ok();
  }

  /// A short-lived session for plain (non-txn) requests.
  ghba::Result<DaemonClient> Connect(MdsId id) {
    return DaemonClient::Connect(at(id).port(), 2000);
  }

  Status Insert(const std::string& path, const FileMetadata& md) {
    auto c = Connect(HomeOf(path));
    if (!c.ok()) return c.status();
    return c->Insert(path, md);
  }

  /// Is `path` present on its hash home?
  ghba::Result<bool> Present(const std::string& path) {
    auto c = Connect(HomeOf(path));
    if (!c.ok()) return c.status();
    auto v = c->Verify(path);
    if (!v.ok()) return v.status();
    return v->present;
  }
};

/// Pick a dst whose hash home differs from src's, so every matrix case is
/// genuinely cross-daemon.
std::string CrossDst(const Fleet& fleet, const std::string& stem,
                     MdsId src_home) {
  for (int i = 0; i < 256; ++i) {
    const std::string candidate = stem + std::to_string(i);
    if (fleet.HomeOf(candidate) != src_home) return candidate;
  }
  return stem + "0";
}

/// One armed fault: when message number `k` of `phase` completes, either
/// kill -9 the targeted daemon (crash=true) or halt the driver — a client
/// death at that boundary (crash=false).
struct Fault {
  const char* name;
  TxnPhase phase;
  std::uint32_t k;
  bool crash;        ///< kill the target daemon vs. halt the client
  bool victim_dst;   ///< which home dies when crash (false: coordinator)
  bool acked;        ///< must the drive return Ok?
};

/// Run the whole rename-under-fault cycle for one case and audit it.
void RunFaultCase(Fleet& fleet, std::uint64_t& txn_id, const Fault& f) {
  std::printf("case %s:\n", f.name);
  const std::string src = std::string("/chaos/") + f.name + "/src";
  const MdsId src_home = fleet.HomeOf(src);
  const std::string dst =
      CrossDst(fleet, std::string("/chaos/") + f.name + "/dst", src_home);
  const MdsId dst_home = fleet.HomeOf(dst);
  FileMetadata md;
  md.inode = txn_id + 1000;
  Check(fleet.Insert(src, md).ok(), "insert src");

  const MdsId victim = f.victim_dst ? dst_home : src_home;
  std::uint32_t seen[5] = {0, 0, 0, 0, 0};
  bool fired = false;
  TxnDriver driver(&fleet.transport,
                   [&](TxnPhase phase, MdsId /*target*/) {
                     const auto idx = static_cast<std::size_t>(phase);
                     if (phase != f.phase || seen[idx]++ != f.k) return true;
                     fired = true;
                     if (f.crash) {
                       fleet.Kill(victim);
                       return true;  // the driver runs on into the dead peer
                     }
                     return false;  // client dies at this boundary
                   });

  const Status drove = driver.Rename(++txn_id, src, src_home, dst, dst_home);
  Check(fired, "armed fault fired");
  Check(drove.ok() == f.acked,
        std::string("ack matches the commit point (got ") + drove.ToString() +
            ")");

  if (f.crash) {
    Check(fleet.Restart(victim).ok(), "victim restarted on its data dir");
  }
  // Resolution from a fresh driver — exactly what a recovering deployment
  // runs. Both homes must come out clean.
  TxnDriver resolver(&fleet.transport);
  for (const MdsId id : {src_home, dst_home}) {
    const auto left = resolver.ResolveInDoubt(id);
    Check(left.ok() && *left == 0,
          "in-doubt resolution drained mds " + std::to_string(id));
  }

  const auto src_present = fleet.Present(src);
  const auto dst_present = fleet.Present(dst);
  Check(src_present.ok() && dst_present.ok(), "post-recovery probes");
  if (src_present.ok() && dst_present.ok()) {
    Check(*dst_present == f.acked, "dst present iff acked");
    Check(*src_present == !f.acked, "src present iff not acked");
    Check(!(*src_present && *dst_present), "never both endpoints");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string binary;
  std::string data_dir;
  std::size_t num_mds = 3;
  int renames = 8;
  bool keep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--daemon") == 0 && i + 1 < argc) {
      binary = argv[++i];
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--mds") == 0 && i + 1 < argc) {
      num_mds = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--renames") == 0 && i + 1 < argc) {
      renames = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--keep") == 0) {
      keep = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --daemon PATH [--mds N] [--data-dir DIR] "
                   "[--renames K] [--keep]\n",
                   argv[0]);
      return 2;
    }
  }
  if (binary.empty() || num_mds < 2) {
    std::fprintf(stderr, "--daemon is required and --mds must be >= 2\n");
    return 2;
  }
  const bool own_dir = data_dir.empty();
  if (own_dir) {
    char tmpl[] = "/tmp/ghba_txn_chaos_XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      std::perror("mkdtemp");
      return 1;
    }
    data_dir = tmpl;
  }

  int rc = 1;
  {
    Fleet fleet;
    if (const Status s = fleet.StartAll(binary, data_dir, num_mds); !s.ok()) {
      std::fprintf(stderr, "fleet start: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("fleet: %zu daemons, data-dir=%s\n", num_mds,
                data_dir.c_str());

    std::uint64_t txn_id = 0;

    // Background namespace: losing ANY of these during the matrix is a
    // recovery bug, not collateral damage.
    std::vector<std::string> base;
    for (int i = 0; i < 24; ++i) {
      base.push_back("/chaos/base/f" + std::to_string(i));
      FileMetadata md;
      md.inode = static_cast<std::uint64_t>(i);
      Check(fleet.Insert(base.back(), md).ok(), "insert " + base.back());
    }

    // Clean cross-daemon renames through the same driver the matrix uses.
    std::printf("clean renames:\n");
    for (int i = 0; i < renames; ++i) {
      const std::string src = "/chaos/clean/src" + std::to_string(i);
      const MdsId src_home = fleet.HomeOf(src);
      const std::string dst =
          CrossDst(fleet, "/chaos/clean/dst" + std::to_string(i) + "_",
                   src_home);
      FileMetadata md;
      md.inode = 5000 + static_cast<std::uint64_t>(i);
      Check(fleet.Insert(src, md).ok(), "insert " + src);
      TxnDriver driver(&fleet.transport);
      Check(driver.Rename(++txn_id, src, src_home, dst, fleet.HomeOf(dst))
                .ok(),
            "rename " + src + " -> " + dst);
      const auto s = fleet.Present(src);
      const auto d = fleet.Present(dst);
      Check(s.ok() && !*s && d.ok() && *d, "endpoint audit " + dst);
    }

    // The fault matrix: kill -9 the targeted daemon at every message
    // boundary of the choreography, plus the two interesting client
    // deaths. Ack expectations follow the commit point: everything at or
    // after Decide(commit) durable is acked and must roll forward.
    const Fault kMatrix[] = {
        {"kill-begin", TxnPhase::kBegin, 0, true, false, false},
        {"kill-prepare-src", TxnPhase::kPrepare, 0, true, false, false},
        {"kill-prepare-dst", TxnPhase::kPrepare, 1, true, true, true},
        {"kill-decide", TxnPhase::kDecide, 0, true, false, true},
        {"kill-commit-dst", TxnPhase::kCommit, 0, true, true, true},
        {"kill-commit-src", TxnPhase::kCommit, 1, true, false, true},
        {"halt-prepare", TxnPhase::kPrepare, 0, false, false, false},
        {"halt-decide", TxnPhase::kDecide, 0, false, false, true},
    };
    for (const Fault& f : kMatrix) RunFaultCase(fleet, txn_id, f);

    // Nothing in the background namespace was harmed.
    std::printf("background audit:\n");
    bool all_present = true;
    for (const std::string& path : base) {
      const auto p = fleet.Present(path);
      if (!p.ok() || !*p) {
        all_present = false;
        std::printf("  FAIL: lost %s\n", path.c_str());
        ++g_failures;
      }
    }
    if (all_present) std::printf("  ok: all %zu files intact\n", base.size());

    for (auto& d : fleet.daemons) d.Terminate();
    rc = g_failures == 0 ? 0 : 1;
    std::printf("txn_chaos: %s (%d failure%s)\n", rc == 0 ? "PASS" : "FAIL",
                g_failures, g_failures == 1 ? "" : "s");
  }
  if (own_dir && !keep) {
    std::error_code ec;
    std::filesystem::remove_all(data_dir, ec);
  }
  return rc;
}
