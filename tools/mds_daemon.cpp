// mds_daemon — run one MDS server as a standalone process.
//
//   $ mds_daemon <id> <port> [expected_files] [memory_budget_mb]
//
// Speaks the wire protocol in docs/PROTOCOL.md on 127.0.0.1:<port>. Stop it
// with SIGINT/SIGTERM or a kShutdown frame (ghba_client <port> shutdown).
#include <csignal>
#include <cstdio>
#include <cstdlib>

#include <atomic>
#include <chrono>
#include <thread>

#include "rpc/server.hpp"

namespace {
std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <id> <port> [expected_files] [memory_budget_mb]\n",
                 argv[0]);
    return 2;
  }
  const auto id = static_cast<ghba::MdsId>(std::atoi(argv[1]));
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[2]));

  ghba::ClusterConfig config;
  config.expected_files_per_mds =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 100000;
  config.memory_budget_bytes =
      (argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 512)
      << 20;
  if (const auto s = ghba::ValidateClusterConfig(config); !s.ok()) {
    std::fprintf(stderr, "bad config: %s\n", s.ToString().c_str());
    return 2;
  }

  ghba::MdsServer server(id, config);
  if (const auto s = server.Start(port); !s.ok()) {
    std::fprintf(stderr, "failed to start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("mds %u listening on 127.0.0.1:%u\n", id, server.port());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load() && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  server.Stop();
  std::printf("mds %u stopped (frames in=%llu out=%llu)\n", id,
              static_cast<unsigned long long>(server.frames_in()),
              static_cast<unsigned long long>(server.frames_out()));
  return 0;
}
