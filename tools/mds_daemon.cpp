// mds_daemon — run one MDS server as a standalone process.
//
//   $ mds_daemon <id> <port> [expected_files] [memory_budget_mb]
//                [--data-dir DIR] [--fsync always|interval|never]
//                [--shards N]
//
// Speaks the wire protocol in docs/PROTOCOL.md on 127.0.0.1:<port>. Stop it
// with SIGINT/SIGTERM or a kShutdown frame (ghba_client <port> shutdown).
// With --data-dir the server runs durably: mutations hit a write-ahead log
// under DIR/mds-<id>/ before they are acknowledged, and a restart on the
// same directory recovers every acked mutation (kill -9 included).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "rpc/server.hpp"

namespace {
std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <id> <port> [expected_files] [memory_budget_mb]\n"
               "          [--data-dir DIR] [--fsync always|interval|never]\n"
               "          [--shards N]\n",
               argv0);
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  ghba::ClusterConfig config;
  config.expected_files_per_mds = 100000;
  config.memory_budget_bytes = 512ULL << 20;

  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      config.storage.data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--fsync") == 0 && i + 1 < argc) {
      if (!ghba::ParseFsyncPolicy(argv[++i], &config.storage.fsync)) {
        std::fprintf(stderr, "bad --fsync policy: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      config.rpc.server_shards =
          static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 2 || positional.size() > 4) return Usage(argv[0]);

  const auto id = static_cast<ghba::MdsId>(std::atoi(positional[0]));
  const auto port = static_cast<std::uint16_t>(std::atoi(positional[1]));
  if (positional.size() > 2) {
    config.expected_files_per_mds =
        static_cast<std::uint64_t>(std::atoll(positional[2]));
  }
  if (positional.size() > 3) {
    config.memory_budget_bytes =
        static_cast<std::uint64_t>(std::atoll(positional[3])) << 20;
  }
  if (const auto s = ghba::ValidateClusterConfig(config); !s.ok()) {
    std::fprintf(stderr, "bad config: %s\n", s.ToString().c_str());
    return 2;
  }

  ghba::MdsServer server(id, config);
  if (const auto s = server.Start(port); !s.ok()) {
    std::fprintf(stderr, "failed to start: %s\n", s.ToString().c_str());
    return 1;
  }
  if (config.storage.data_dir.empty()) {
    std::printf("mds %u listening on 127.0.0.1:%u (shards=%u)\n", id,
                server.port(), server.shards());
  } else {
    std::printf("mds %u listening on 127.0.0.1:%u (shards=%u, durable, "
                "data-dir=%s, fsync=%s)\n",
                id, server.port(), server.shards(),
                config.storage.data_dir.c_str(),
                ghba::FsyncPolicyName(config.storage.fsync));
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load() && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  server.Stop();
  std::printf("mds %u stopped (frames in=%llu out=%llu)\n", id,
              static_cast<unsigned long long>(server.frames_in()),
              static_cast<unsigned long long>(server.frames_out()));
  return 0;
}
