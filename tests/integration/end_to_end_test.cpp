// Integration tests: full pipeline (trace generation -> replay -> lookup ->
// reconfiguration) across schemes, checking the cross-cutting guarantees no
// single module owns.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/ghba_cluster.hpp"
#include "core/hash_cluster.hpp"
#include "core/hba_cluster.hpp"
#include "core/simulator.hpp"

namespace ghba {
namespace {

WorkloadProfile SmallProfile() {
  WorkloadProfile p = HpProfile();
  p.total_files = 1500;
  p.active_files = 500;
  return p;
}

ClusterConfig IntegrationConfig(std::uint32_t n = 10) {
  ClusterConfig c;
  c.num_mds = n;
  c.max_group_size = 4;
  c.expected_files_per_mds = 1500;
  c.lru_capacity = 256;
  c.publish_after_mutations = 32;
  c.seed = 77;
  return c;
}

// Every scheme must agree with the others on which files exist — the
// lookup structures are routing accelerators, never sources of truth.
TEST(EndToEndTest, AllSchemesAgreeOnMembership) {
  std::vector<std::unique_ptr<MetadataCluster>> clusters;
  clusters.push_back(std::make_unique<GhbaCluster>(IntegrationConfig()));
  clusters.push_back(std::make_unique<HbaCluster>(IntegrationConfig()));
  clusters.push_back(
      std::make_unique<HbaCluster>(IntegrationConfig(), /*use_lru=*/false));
  clusters.push_back(
      std::make_unique<HashPlacementCluster>(IntegrationConfig()));

  // Same mutation sequence everywhere.
  for (int i = 0; i < 600; ++i) {
    FileMetadata md;
    md.inode = static_cast<std::uint64_t>(i);
    for (auto& c : clusters) {
      ASSERT_TRUE(c->CreateFile("/x/f" + std::to_string(i), md, 0).ok());
    }
  }
  for (int i = 0; i < 600; i += 3) {
    for (auto& c : clusters) {
      ASSERT_TRUE(c->UnlinkFile("/x/f" + std::to_string(i), 0).ok());
    }
  }
  for (auto& c : clusters) c->FlushReplicas(0);

  for (int i = 0; i < 600; ++i) {
    const std::string path = "/x/f" + std::to_string(i);
    const bool expected = (i % 3 != 0);
    for (auto& c : clusters) {
      EXPECT_EQ(c->Lookup(path, 0).found, expected)
          << c->SchemeName() << " " << path;
    }
  }
}

TEST(EndToEndTest, ReplayThenChurnThenReplay) {
  GhbaCluster cluster(IntegrationConfig(12));
  ReplaySimulator sim(cluster);
  IntensifiedTrace trace(SmallProfile(), 2, 5);
  sim.Populate(trace);

  const auto first = sim.Replay(trace, 3000);
  EXPECT_LT(first.not_found, first.lookups / 20);

  // Churn: two joins, one graceful leave, one failure.
  ASSERT_TRUE(cluster.AddMds(nullptr).ok());
  ASSERT_TRUE(cluster.AddMds(nullptr).ok());
  ASSERT_TRUE(cluster.RemoveMds(cluster.alive()[1], nullptr).ok());
  ASSERT_TRUE(cluster.FailMds(cluster.alive()[2], nullptr).ok());
  ASSERT_TRUE(cluster.CheckInvariants().ok())
      << cluster.CheckInvariants().ToString();

  // Replay continues; misses may now include files lost to the failure.
  const auto second = sim.Replay(trace, 3000);
  EXPECT_EQ(second.ops_replayed, 3000u);
  EXPECT_GT(second.lookups, 0u);
  // Sanity: overall service is still overwhelmingly successful.
  EXPECT_LT(second.not_found, second.lookups / 3);
}

TEST(EndToEndTest, LookupResultsMatchOracleUnderReplay) {
  GhbaCluster cluster(IntegrationConfig(9));
  ReplaySimulator sim(cluster);
  IntensifiedTrace trace(SmallProfile(), 2, 9);
  sim.Populate(trace);
  (void)sim.Replay(trace, 2000);

  // For every currently-existing file the oracle knows, the probabilistic
  // hierarchy must find exactly that home (L4 guarantees it).
  int checked = 0;
  for (const MdsId id : cluster.alive()) {
    cluster.node(id).store().ForEach(
        [&](const std::string& path, const FileMetadata&) {
          if (++checked > 300) return;  // sample
          const auto r = cluster.Lookup(path, 0);
          EXPECT_TRUE(r.found) << path;
          EXPECT_EQ(r.home, id) << path;
        });
    if (checked > 300) break;
  }
  EXPECT_GT(checked, 0);
}

TEST(EndToEndTest, MessageAccountingConsistent) {
  GhbaCluster cluster(IntegrationConfig(8));
  ReplaySimulator sim(cluster);
  IntensifiedTrace trace(SmallProfile(), 2, 3);
  sim.Populate(trace);
  (void)sim.Replay(trace, 2000);
  const auto& m = cluster.metrics();
  EXPECT_GE(m.messages, m.lookup_messages + m.update_messages);
}

TEST(EndToEndTest, DeterministicAcrossRuns) {
  auto run = [] {
    GhbaCluster cluster(IntegrationConfig(10));
    ReplaySimulator sim(cluster);
    IntensifiedTrace trace(SmallProfile(), 2, 13);
    sim.Populate(trace);
    const auto result = sim.Replay(trace, 2500);
    return std::make_tuple(result.lookups, result.not_found,
                           static_cast<std::uint64_t>(cluster.metrics().levels.l1),
                           static_cast<std::uint64_t>(cluster.metrics().levels.l4),
                           cluster.metrics().lookup_latency_ms.sum());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ghba
