// Daemon-mode transaction crash matrix: run the txn_chaos harness against
// real mds_daemon processes — fork/exec, kill -9 at every 2PC boundary,
// restart on the same data dir, resolve, audit. The tool exits 0 only if
// every endpoint invariant held; this test makes that exit code a tier-1
// gate. Binary paths are injected by CMake ($<TARGET_FILE:...>), so the
// test always exercises the binaries built alongside it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

namespace ghba {
namespace {

TEST(TxnDaemonTest, ChaosSweepAgainstRealDaemonsPasses) {
  const auto dir =
      std::filesystem::temp_directory_path() / "ghba_txn_daemon_test";
  std::filesystem::remove_all(dir);
  const std::string cmd = std::string(GHBA_TXN_CHAOS_BIN) +
                          " --daemon " GHBA_MDS_DAEMON_BIN
                          " --mds 3 --renames 2 --data-dir " +
                          dir.string();
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "txn_chaos reported an inconsistency: " << cmd;
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ghba
