#include "hash/fnv.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace ghba {
namespace {

TEST(FnvTest, KnownVectors) {
  // Canonical FNV-1a 64-bit vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(FnvTest, Constexpr) {
  static_assert(Fnv1a64("compile-time") != 0);
  SUCCEED();
}

TEST(FnvTest, SeedActsAsChainedState) {
  const auto full = Fnv1a64("abcdef");
  const auto chained = Fnv1a64("def", Fnv1a64("abc"));
  EXPECT_EQ(full, chained);
}

TEST(FnvTest, DistinctShortKeys) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(Fnv1a64(std::to_string(i))).second);
  }
}

}  // namespace
}  // namespace ghba
