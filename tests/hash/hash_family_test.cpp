#include "hash/hash_family.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace ghba {
namespace {

TEST(ProbeSetTest, PushAndIterate) {
  ProbeSet p;
  EXPECT_EQ(p.size(), 0u);
  p.Push(5);
  p.Push(9);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], 5u);
  EXPECT_EQ(p[1], 9u);
  std::vector<std::uint64_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{5, 9}));
  p.Clear();
  EXPECT_EQ(p.size(), 0u);
}

TEST(ProbeSetTest, CapsAtMaxK) {
  ProbeSet p;
  for (std::uint64_t i = 0; i < ProbeSet::kMaxK + 10; ++i) p.Push(i);
  EXPECT_EQ(p.size(), ProbeSet::kMaxK);
}

TEST(HashFamilyTest, ProducesKIndicesInRange) {
  const HashFamily family(7, 99);
  ProbeSet probes;
  family.Probe("/var/data/file.bin", 1000, probes);
  ASSERT_EQ(probes.size(), 7u);
  for (const auto i : probes) EXPECT_LT(i, 1000u);
}

TEST(HashFamilyTest, DeterministicProbes) {
  const HashFamily family(5, 1);
  ProbeSet a, b;
  family.Probe("key", 4096, a);
  family.Probe("key", 4096, b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(HashFamilyTest, SeedDecorrelatesProbes) {
  const HashFamily f1(5, 111), f2(5, 222);
  ProbeSet a, b;
  f1.Probe("key", 1 << 20, a);
  f2.Probe("key", 1 << 20, b);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += (a[i] == b[i]);
  EXPECT_EQ(same, 0);
}

TEST(HashFamilyTest, DigestReuseMatchesDirectProbe) {
  const HashFamily family(4, 7);
  const auto digest = Murmur3_128("reused-key", 7);
  ProbeSet direct, via_digest;
  family.Probe("reused-key", 999, direct);
  family.FillProbes(digest, 999, via_digest);
  ASSERT_EQ(direct.size(), via_digest.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i], via_digest[i]);
  }
}

// Probe positions must be near-uniform over the bit range for the
// false-positive analysis to hold.
class HashFamilyUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HashFamilyUniformity, ProbesNearUniform) {
  const std::uint64_t m = GetParam();
  const HashFamily family(8, 3);
  constexpr int kKeys = 20000;
  constexpr int kBuckets = 16;
  std::vector<int> counts(kBuckets, 0);
  ProbeSet probes;
  for (int i = 0; i < kKeys; ++i) {
    family.Probe("file-" + std::to_string(i), m, probes);
    for (const auto idx : probes) {
      ++counts[idx * kBuckets / m];
    }
  }
  const double expected = kKeys * 8.0 / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(BitSizes, HashFamilyUniformity,
                         ::testing::Values(1 << 10, 1 << 16, 100000, 999983));

TEST(HashFamilyTest, DistinctKeysRarelyShareAllProbes) {
  const HashFamily family(8, 5);
  std::set<std::string> signatures;
  ProbeSet probes;
  for (int i = 0; i < 5000; ++i) {
    // Built in two steps: GCC 12's -Wrestrict misfires on
    // operator+(const char*, std::string&&) under -O2.
    std::string key = "k";
    key += std::to_string(i);
    family.Probe(key, 1 << 16, probes);
    std::string sig;
    for (const auto idx : probes) sig += std::to_string(idx) + ",";
    EXPECT_TRUE(signatures.insert(sig).second) << "full probe collision";
  }
}

}  // namespace
}  // namespace ghba
