#include "hash/xx64.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace ghba {
namespace {

TEST(Xx64Test, Deterministic) {
  EXPECT_EQ(Xx64("metadata"), Xx64("metadata"));
}

TEST(Xx64Test, SeedSensitive) {
  EXPECT_NE(Xx64("metadata", 0), Xx64("metadata", 1));
}

TEST(Xx64Test, KnownVectors) {
  // Canonical xxHash64 test vectors.
  EXPECT_EQ(Xx64("", 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(Xx64("a", 0), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(Xx64("abc", 0), 0x44BC2CF5AD770999ULL);
}

TEST(Xx64Test, AllLengthClassesCovered) {
  // Exercise <4, <8, <32 and >=32 byte paths; all must be distinct.
  std::set<std::uint64_t> seen;
  std::string s;
  for (int len = 0; len <= 64; ++len) {
    EXPECT_TRUE(seen.insert(Xx64(s)).second) << "collision at len " << len;
    s.push_back(static_cast<char>('A' + (len % 26)));
  }
}

TEST(Xx64Test, LowBitsUnbiased) {
  int ones = 0;
  constexpr int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    ones += static_cast<int>(Xx64("file" + std::to_string(i)) & 1);
  }
  EXPECT_NEAR(ones / static_cast<double>(kKeys), 0.5, 0.02);
}

}  // namespace
}  // namespace ghba
