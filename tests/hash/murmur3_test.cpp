#include "hash/murmur3.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace ghba {
namespace {

TEST(Murmur3Test, DeterministicAcrossCalls) {
  const auto a = Murmur3_128("hello world");
  const auto b = Murmur3_128("hello world");
  EXPECT_EQ(a, b);
}

TEST(Murmur3Test, SeedChangesDigest) {
  EXPECT_NE(Murmur3_128("key", 0), Murmur3_128("key", 1));
}

TEST(Murmur3Test, EmptyInputIsValid) {
  const auto d = Murmur3_128("", 0);
  // Reference MurmurHash3 x64-128 of empty input with seed 0 is all-zero.
  EXPECT_EQ(d.lo, 0u);
  EXPECT_EQ(d.hi, 0u);
  // ... but a nonzero seed must produce a nonzero digest.
  const auto seeded = Murmur3_128("", 42);
  EXPECT_TRUE(seeded.lo != 0 || seeded.hi != 0);
}

// Every tail length 0..32 must be processed without reading OOB and must
// produce distinct digests for distinct inputs.
TEST(Murmur3Test, AllTailLengthsDistinct) {
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::string s;
  for (int len = 0; len <= 32; ++len) {
    const auto d = Murmur3_128(s);
    EXPECT_TRUE(seen.insert({d.lo, d.hi}).second) << "collision at len " << len;
    s.push_back(static_cast<char>('a' + (len % 26)));
  }
}

TEST(Murmur3Test, SingleBitInputChangesManyOutputBits) {
  // Avalanche smoke test: flipping one input bit should flip roughly half
  // the output bits.
  std::string a = "aaaaaaaaaaaaaaaa";
  std::string b = a;
  b[0] ^= 1;
  const auto da = Murmur3_128(a);
  const auto db = Murmur3_128(b);
  const int flipped = __builtin_popcountll(da.lo ^ db.lo) +
                      __builtin_popcountll(da.hi ^ db.hi);
  EXPECT_GT(flipped, 40);
  EXPECT_LT(flipped, 88);
}

TEST(Murmur3Test, KnownVector) {
  // Cross-checked against the canonical C++ implementation
  // (MurmurHash3_x64_128 of "The quick brown fox jumps over the lazy dog",
  // seed 0): e34bbc7bbc071b6c 7a433ca9c49a9347.
  const auto d =
      Murmur3_128("The quick brown fox jumps over the lazy dog", 0);
  EXPECT_EQ(d.lo, 0xe34bbc7bbc071b6cULL);
  EXPECT_EQ(d.hi, 0x7a433ca9c49a9347ULL);
}

TEST(Murmur3Test, Distinct64BitSlices) {
  EXPECT_NE(Murmur3_64("abc"), Murmur3_64("abd"));
}

TEST(Murmur3Test, NoCollisionsOnPathLikeKeys) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 20000; ++i) {
    const std::string path = "/home/user" + std::to_string(i % 100) +
                             "/project/file" + std::to_string(i) + ".dat";
    EXPECT_TRUE(seen.insert(Murmur3_64(path)).second) << path;
  }
}

}  // namespace
}  // namespace ghba
