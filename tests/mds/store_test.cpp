#include "mds/store.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

FileMetadata Md(std::uint64_t inode) {
  FileMetadata md;
  md.inode = inode;
  return md;
}

TEST(MetadataStoreTest, InsertLookupRoundTrip) {
  MetadataStore store;
  ASSERT_TRUE(store.Insert("/a/b", Md(7)).ok());
  EXPECT_TRUE(store.Contains("/a/b"));
  const auto md = store.Lookup("/a/b");
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->inode, 7u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(MetadataStoreTest, DuplicateInsertRejected) {
  MetadataStore store;
  ASSERT_TRUE(store.Insert("/a", Md(1)).ok());
  EXPECT_EQ(store.Insert("/a", Md(2)).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store.Lookup("/a")->inode, 1u);
}

TEST(MetadataStoreTest, MissingLookupFails) {
  MetadataStore store;
  EXPECT_FALSE(store.Contains("/nope"));
  EXPECT_EQ(store.Lookup("/nope").status().code(), StatusCode::kNotFound);
}

TEST(MetadataStoreTest, UpdateMutatesInPlace) {
  MetadataStore store;
  ASSERT_TRUE(store.Insert("/a", Md(1)).ok());
  ASSERT_TRUE(store.Update("/a", [](FileMetadata& md) {
    md.size_bytes = 4096;
    md.mtime = 9.0;
  }).ok());
  EXPECT_EQ(store.Lookup("/a")->size_bytes, 4096u);
  EXPECT_EQ(store.Update("/zz", [](FileMetadata&) {}).code(),
            StatusCode::kNotFound);
}

TEST(MetadataStoreTest, RemoveErases) {
  MetadataStore store;
  ASSERT_TRUE(store.Insert("/a", Md(1)).ok());
  ASSERT_TRUE(store.Remove("/a").ok());
  EXPECT_FALSE(store.Contains("/a"));
  EXPECT_EQ(store.Remove("/a").code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.empty());
}

TEST(MetadataStoreTest, MemoryAccountingTracksContent) {
  MetadataStore store;
  EXPECT_EQ(store.MemoryBytes(), 0u);
  ASSERT_TRUE(store.Insert("/short", Md(1)).ok());
  const auto after_one = store.MemoryBytes();
  EXPECT_GT(after_one, 0u);
  ASSERT_TRUE(store.Insert(std::string(500, 'p'), Md(2)).ok());
  EXPECT_GT(store.MemoryBytes(), after_one + 500);
  ASSERT_TRUE(store.Remove("/short").ok());
  ASSERT_TRUE(store.Remove(std::string(500, 'p')).ok());
  EXPECT_EQ(store.MemoryBytes(), 0u);
}

TEST(MetadataStoreTest, UpdateAdjustsMemoryForGrownRecord) {
  MetadataStore store;
  ASSERT_TRUE(store.Insert("/a", Md(1)).ok());
  const auto before = store.MemoryBytes();
  ASSERT_TRUE(store.Update("/a", [](FileMetadata& md) {
    md.data_servers.assign(64, 1);
  }).ok());
  EXPECT_GT(store.MemoryBytes(), before);
}

TEST(MetadataStoreTest, ForEachVisitsAll) {
  MetadataStore store;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Insert("/f" + std::to_string(i), Md(i)).ok());
  }
  int visited = 0;
  store.ForEach([&](const std::string& path, const FileMetadata& md) {
    EXPECT_EQ(path, "/f" + std::to_string(md.inode));
    ++visited;
  });
  EXPECT_EQ(visited, 10);
}

TEST(MetadataStoreTest, ExtractAllDrains) {
  MetadataStore store;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Insert("/f" + std::to_string(i), Md(i)).ok());
  }
  auto all = store.ExtractAll();
  EXPECT_EQ(all.size(), 5u);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.MemoryBytes(), 0u);
}

TEST(MetadataStoreTest, ClearResetsEverything) {
  MetadataStore store;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Insert("/f" + std::to_string(i), Md(i)).ok());
  }
  store.Clear();
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.MemoryBytes(), 0u);
}

TEST(MetadataStoreTest, ApplyBatchAllKinds) {
  MetadataStore store;
  ASSERT_TRUE(store.Insert("/keep", Md(1)).ok());
  ASSERT_TRUE(store.Insert("/gone", Md(2)).ok());

  FileMetadata updated = Md(1);
  updated.size_bytes = 4096;
  std::vector<StoreMutation> batch;
  batch.push_back({StoreMutation::Kind::kInsert, "/new", Md(3)});
  batch.push_back({StoreMutation::Kind::kUpdate, "/keep", updated});
  batch.push_back({StoreMutation::Kind::kRemove, "/gone", {}});
  EXPECT_EQ(store.ApplyBatch(batch), 3u);
  EXPECT_TRUE(store.Contains("/new"));
  EXPECT_EQ(store.Lookup("/keep")->size_bytes, 4096u);
  EXPECT_FALSE(store.Contains("/gone"));

  // kClear drains everything, including records from the same batch.
  std::vector<StoreMutation> clear;
  clear.push_back({StoreMutation::Kind::kInsert, "/x", Md(4)});
  clear.push_back({StoreMutation::Kind::kClear, "", {}});
  EXPECT_EQ(store.ApplyBatch(clear), 2u);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.MemoryBytes(), 0u);
}

TEST(MetadataStoreTest, ApplyBatchSkipsInapplicableMutations) {
  MetadataStore store;
  ASSERT_TRUE(store.Insert("/a", Md(1)).ok());
  std::vector<StoreMutation> batch;
  batch.push_back({StoreMutation::Kind::kInsert, "/a", Md(9)});  // duplicate
  batch.push_back({StoreMutation::Kind::kUpdate, "/nope", Md(9)});
  batch.push_back({StoreMutation::Kind::kRemove, "/nope", {}});
  EXPECT_EQ(store.ApplyBatch(batch), 0u);
  EXPECT_EQ(store.Lookup("/a")->inode, 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(MetadataSerializationTest, RoundTrip) {
  FileMetadata md;
  md.inode = 42;
  md.mode = 0755;
  md.uid = 1000;
  md.gid = 100;
  md.size_bytes = 1 << 20;
  md.atime = 1.5;
  md.mtime = 2.5;
  md.ctime = 3.5;
  md.data_servers = {3, 9, 27};

  ByteWriter w;
  md.Serialize(w);
  ByteReader r(w.data());
  const auto decoded = FileMetadata::Deserialize(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, md);
  EXPECT_TRUE(r.AtEnd());
}

TEST(MetadataSerializationTest, RejectsTruncation) {
  FileMetadata md;
  ByteWriter w;
  md.Serialize(w);
  auto data = w.Take();
  data.resize(data.size() - 4);
  ByteReader r(data);
  EXPECT_FALSE(FileMetadata::Deserialize(r).ok());
}

TEST(MetadataSerializationTest, RejectsAbsurdStripeWidth) {
  ByteWriter w;
  FileMetadata md;
  md.Serialize(w);
  auto data = w.Take();
  // Overwrite the trailing varint (stripe count 0 -> huge).
  data.back() = 0xff;
  data.push_back(0xff);
  data.push_back(0x7f);
  ByteReader r(data);
  EXPECT_FALSE(FileMetadata::Deserialize(r).ok());
}

}  // namespace
}  // namespace ghba
