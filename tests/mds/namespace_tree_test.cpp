#include "mds/namespace_tree.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

TEST(SplitPathTest, NormalizesSlashes) {
  const auto c = SplitPath("/a//b/c/");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(JoinPath(*c), "/a/b/c");
}

TEST(SplitPathTest, RootIsEmptyComponentList) {
  const auto c = SplitPath("/");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->empty());
  EXPECT_EQ(JoinPath(*c), "/");
}

TEST(SplitPathTest, RejectsBadPaths) {
  EXPECT_FALSE(SplitPath("").ok());
  EXPECT_FALSE(SplitPath("relative/path").ok());
  EXPECT_FALSE(SplitPath("/a/./b").ok());
  EXPECT_FALSE(SplitPath("/a/../b").ok());
}

class NamespaceTreeTest : public ::testing::Test {
 protected:
  NamespaceTree tree_;
};

TEST_F(NamespaceTreeTest, MakeDirsCreatesChain) {
  ASSERT_TRUE(tree_.MakeDirs("/a/b/c").ok());
  EXPECT_TRUE(tree_.DirExists("/a"));
  EXPECT_TRUE(tree_.DirExists("/a/b"));
  EXPECT_TRUE(tree_.DirExists("/a/b/c"));
  EXPECT_EQ(tree_.dir_count(), 3u);
  // Idempotent.
  ASSERT_TRUE(tree_.MakeDirs("/a/b/c").ok());
  EXPECT_EQ(tree_.dir_count(), 3u);
}

TEST_F(NamespaceTreeTest, CreateFileNeedsParent) {
  EXPECT_EQ(tree_.CreateFile("/missing/f").code(), StatusCode::kNotFound);
  ASSERT_TRUE(tree_.MakeDirs("/dir").ok());
  ASSERT_TRUE(tree_.CreateFile("/dir/f").ok());
  EXPECT_TRUE(tree_.FileExists("/dir/f"));
  EXPECT_FALSE(tree_.DirExists("/dir/f"));
  EXPECT_EQ(tree_.file_count(), 1u);
  EXPECT_EQ(tree_.CreateFile("/dir/f").code(), StatusCode::kAlreadyExists);
}

TEST_F(NamespaceTreeTest, FileBlocksDirectoryPath) {
  ASSERT_TRUE(tree_.MakeDirs("/d").ok());
  ASSERT_TRUE(tree_.CreateFile("/d/x").ok());
  EXPECT_EQ(tree_.MakeDirs("/d/x/sub").code(), StatusCode::kAlreadyExists);
}

TEST_F(NamespaceTreeTest, RemoveFileAndDir) {
  ASSERT_TRUE(tree_.MakeDirs("/d").ok());
  ASSERT_TRUE(tree_.CreateFile("/d/f").ok());
  EXPECT_EQ(tree_.RemoveDir("/d").code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(tree_.RemoveFile("/d/f").ok());
  EXPECT_EQ(tree_.file_count(), 0u);
  ASSERT_TRUE(tree_.RemoveDir("/d").ok());
  EXPECT_EQ(tree_.dir_count(), 0u);
  EXPECT_EQ(tree_.RemoveFile("/d/f").code(), StatusCode::kNotFound);
  EXPECT_EQ(tree_.RemoveDir("/d").code(), StatusCode::kNotFound);
}

TEST_F(NamespaceTreeTest, RemoveFileRejectsDirectories) {
  ASSERT_TRUE(tree_.MakeDirs("/d").ok());
  EXPECT_EQ(tree_.RemoveFile("/d").code(), StatusCode::kNotFound);
}

TEST_F(NamespaceTreeTest, ListSortedWithDirMarkers) {
  ASSERT_TRUE(tree_.MakeDirs("/p/zdir").ok());
  ASSERT_TRUE(tree_.CreateFile("/p/afile").ok());
  ASSERT_TRUE(tree_.CreateFile("/p/mfile").ok());
  const auto listing = tree_.List("/p");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(*listing, (std::vector<std::string>{"afile", "mfile", "zdir/"}));
  EXPECT_FALSE(tree_.List("/nope").ok());
}

TEST_F(NamespaceTreeTest, RenameDirectorySubtree) {
  ASSERT_TRUE(tree_.MakeDirs("/src/deep").ok());
  ASSERT_TRUE(tree_.CreateFile("/src/deep/f1").ok());
  ASSERT_TRUE(tree_.CreateFile("/src/f2").ok());
  ASSERT_TRUE(tree_.MakeDirs("/dst").ok());

  ASSERT_TRUE(tree_.Rename("/src", "/dst/moved").ok());
  EXPECT_FALSE(tree_.DirExists("/src"));
  EXPECT_TRUE(tree_.FileExists("/dst/moved/deep/f1"));
  EXPECT_TRUE(tree_.FileExists("/dst/moved/f2"));
}

TEST_F(NamespaceTreeTest, RenameSingleFile) {
  ASSERT_TRUE(tree_.MakeDirs("/d").ok());
  ASSERT_TRUE(tree_.CreateFile("/d/old").ok());
  ASSERT_TRUE(tree_.Rename("/d/old", "/d/new").ok());
  EXPECT_FALSE(tree_.FileExists("/d/old"));
  EXPECT_TRUE(tree_.FileExists("/d/new"));
}

TEST_F(NamespaceTreeTest, RenameRejectsBadTargets) {
  ASSERT_TRUE(tree_.MakeDirs("/a/b").ok());
  ASSERT_TRUE(tree_.MakeDirs("/c").ok());
  // Into itself.
  EXPECT_EQ(tree_.Rename("/a", "/a/b/x").code(),
            StatusCode::kInvalidArgument);
  // Onto an existing name.
  EXPECT_EQ(tree_.Rename("/a", "/c").code(), StatusCode::kAlreadyExists);
  // Missing source.
  EXPECT_EQ(tree_.Rename("/ghost", "/c/g").code(), StatusCode::kNotFound);
  // Missing destination parent.
  EXPECT_EQ(tree_.Rename("/a", "/nope/a").code(), StatusCode::kNotFound);
}

TEST_F(NamespaceTreeTest, ForEachFileUnderEnumeratesRecursively) {
  ASSERT_TRUE(tree_.MakeDirs("/r/x").ok());
  ASSERT_TRUE(tree_.MakeDirs("/r/y").ok());
  ASSERT_TRUE(tree_.CreateFile("/r/x/1").ok());
  ASSERT_TRUE(tree_.CreateFile("/r/x/2").ok());
  ASSERT_TRUE(tree_.CreateFile("/r/y/3").ok());
  ASSERT_TRUE(tree_.CreateFile("/other").ok());

  std::vector<std::string> under_r;
  ASSERT_TRUE(tree_.ForEachFileUnder(
      "/r", [&](const std::string& p) { under_r.push_back(p); }).ok());
  EXPECT_EQ(under_r,
            (std::vector<std::string>{"/r/x/1", "/r/x/2", "/r/y/3"}));

  std::vector<std::string> all;
  ASSERT_TRUE(tree_.ForEachFileUnder(
      "/", [&](const std::string& p) { all.push_back(p); }).ok());
  EXPECT_EQ(all.size(), 4u);

  std::vector<std::string> single;
  ASSERT_TRUE(tree_.ForEachFileUnder(
      "/other", [&](const std::string& p) { single.push_back(p); }).ok());
  EXPECT_EQ(single, (std::vector<std::string>{"/other"}));
}

TEST_F(NamespaceTreeTest, LargeTreeCounts) {
  for (int d = 0; d < 20; ++d) {
    ASSERT_TRUE(tree_.MakeDirs("/big/d" + std::to_string(d)).ok());
    for (int f = 0; f < 50; ++f) {
      ASSERT_TRUE(tree_
                      .CreateFile("/big/d" + std::to_string(d) + "/f" +
                                  std::to_string(f))
                      .ok());
    }
  }
  EXPECT_EQ(tree_.file_count(), 1000u);
  EXPECT_EQ(tree_.dir_count(), 21u);  // /big + 20 children
  int visited = 0;
  ASSERT_TRUE(
      tree_.ForEachFileUnder("/big", [&](const std::string&) { ++visited; })
          .ok());
  EXPECT_EQ(visited, 1000);
}

}  // namespace
}  // namespace ghba
