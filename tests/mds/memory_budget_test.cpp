#include "mds/memory_budget.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

TEST(MemoryBudgetTest, EmptyBudgetAllFree) {
  MemoryBudget mb(1000);
  EXPECT_EQ(mb.TotalUsage(), 0u);
  EXPECT_EQ(mb.FreeBytes(), 1000u);
  EXPECT_DOUBLE_EQ(mb.OverflowFraction("replicas"), 0.0);
}

TEST(MemoryBudgetTest, UsageBookkeeping) {
  MemoryBudget mb(1000);
  mb.SetUsage("replicas", 300);
  mb.SetUsage("lru", 100);
  EXPECT_EQ(mb.Usage("replicas"), 300u);
  EXPECT_EQ(mb.Usage("absent"), 0u);
  EXPECT_EQ(mb.TotalUsage(), 400u);
  EXPECT_EQ(mb.FreeBytes(), 600u);
  mb.SetUsage("replicas", 50);  // overwrite, not accumulate
  EXPECT_EQ(mb.TotalUsage(), 150u);
}

TEST(MemoryBudgetTest, NoOverflowWhenFits) {
  MemoryBudget mb(1000);
  mb.SetUsage("replicas", 900);
  mb.SetUsage("lru", 100);
  EXPECT_DOUBLE_EQ(mb.OverflowFraction("replicas"), 0.0);
  EXPECT_EQ(mb.FreeBytes(), 0u);
}

TEST(MemoryBudgetTest, PartialOverflow) {
  MemoryBudget mb(1000);
  mb.SetUsage("lru", 200);      // priority usage
  mb.SetUsage("replicas", 1600); // only 800 fit
  EXPECT_DOUBLE_EQ(mb.OverflowFraction("replicas"), 0.5);
}

TEST(MemoryBudgetTest, FullOverflowWhenOthersConsumeBudget) {
  MemoryBudget mb(1000);
  mb.SetUsage("lru", 1200);
  mb.SetUsage("replicas", 10);
  EXPECT_DOUBLE_EQ(mb.OverflowFraction("replicas"), 1.0);
  EXPECT_EQ(mb.FreeBytes(), 0u);
}

TEST(MemoryBudgetTest, ZeroCategoryNeverOverflows) {
  MemoryBudget mb(10);
  mb.SetUsage("lru", 100);
  EXPECT_DOUBLE_EQ(mb.OverflowFraction("replicas"), 0.0);
}

TEST(MemoryBudgetTest, OverflowFractionMonotoneInUsage) {
  MemoryBudget mb(1000);
  double prev = -1;
  for (std::uint64_t usage = 100; usage <= 4000; usage += 100) {
    mb.SetUsage("replicas", usage);
    const double f = mb.OverflowFraction("replicas");
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

}  // namespace
}  // namespace ghba
