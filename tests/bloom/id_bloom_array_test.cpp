#include "bloom/id_bloom_array.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

TEST(IdBloomArrayTest, AddMemberAndLocateReplica) {
  IdBloomArray idbfa;
  idbfa.AddMember(1);
  idbfa.AddMember(2);
  ASSERT_TRUE(idbfa.AddReplica(1, /*replica_owner=*/42).ok());
  const auto r = idbfa.Locate(42);
  ASSERT_EQ(r.kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(r.owner, 1u);
}

TEST(IdBloomArrayTest, UnknownReplicaZeroHit) {
  IdBloomArray idbfa;
  idbfa.AddMember(1);
  EXPECT_EQ(idbfa.Locate(7).kind, ArrayQueryResult::Kind::kZeroHit);
}

TEST(IdBloomArrayTest, AddMemberIdempotent) {
  IdBloomArray idbfa;
  idbfa.AddMember(3);
  ASSERT_TRUE(idbfa.AddReplica(3, 9).ok());
  idbfa.AddMember(3);  // must not wipe the filter
  EXPECT_EQ(idbfa.Locate(9).kind, ArrayQueryResult::Kind::kUniqueHit);
}

TEST(IdBloomArrayTest, OperationsOnUnknownMemberFail) {
  IdBloomArray idbfa;
  EXPECT_EQ(idbfa.AddReplica(5, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(idbfa.RemoveReplica(5, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(idbfa.RemoveMember(5).code(), StatusCode::kNotFound);
}

TEST(IdBloomArrayTest, StaleReplicaLeaveRejectedWithoutCorruption) {
  // Member-leave replay: deregistering a replica that was never (or is no
  // longer) registered must be rejected by the counting filter instead of
  // silently decrementing counters shared with live registrations.
  IdBloomArray idbfa;
  idbfa.AddMember(1);
  ASSERT_TRUE(idbfa.AddReplica(1, 42).ok());
  EXPECT_EQ(idbfa.RemoveReplica(1, 99).code(), StatusCode::kInvalidArgument);
  // The live replica is untouched by the rejected leave.
  EXPECT_EQ(idbfa.Locate(42).kind, ArrayQueryResult::Kind::kUniqueHit);
  // A second leave of an already-removed replica is rejected the same way.
  ASSERT_TRUE(idbfa.RemoveReplica(1, 42).ok());
  EXPECT_EQ(idbfa.RemoveReplica(1, 42).code(), StatusCode::kInvalidArgument);
}

TEST(IdBloomArrayTest, MoveOfUnregisteredReplicaAddsNothing) {
  IdBloomArray idbfa;
  idbfa.AddMember(1);
  idbfa.AddMember(2);
  EXPECT_FALSE(idbfa.MoveReplica(1, 2, 7).ok());
  // The failed move must not have registered the replica at the target.
  EXPECT_EQ(idbfa.Locate(7).kind, ArrayQueryResult::Kind::kZeroHit);
}

TEST(IdBloomArrayTest, MoveReplicaRelocates) {
  IdBloomArray idbfa;
  idbfa.AddMember(1);
  idbfa.AddMember(2);
  ASSERT_TRUE(idbfa.AddReplica(1, 77).ok());
  ASSERT_TRUE(idbfa.MoveReplica(1, 2, 77).ok());
  const auto r = idbfa.Locate(77);
  ASSERT_EQ(r.kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(r.owner, 2u);
}

TEST(IdBloomArrayTest, RemoveMemberDropsItsFilter) {
  IdBloomArray idbfa;
  idbfa.AddMember(1);
  idbfa.AddMember(2);
  ASSERT_TRUE(idbfa.AddReplica(1, 10).ok());
  ASSERT_TRUE(idbfa.RemoveMember(1).ok());
  EXPECT_FALSE(idbfa.HasMember(1));
  EXPECT_EQ(idbfa.Locate(10).kind, ArrayQueryResult::Kind::kZeroHit);
  EXPECT_EQ(idbfa.Members(), (std::vector<MdsId>{2}));
}

TEST(IdBloomArrayTest, ManyReplicasLocateAccurately) {
  // A realistic group: 7 members, ~14 replicas each (N=100, M'=7).
  IdBloomArray idbfa;
  for (MdsId m = 0; m < 7; ++m) idbfa.AddMember(m);
  for (MdsId owner = 7; owner < 100; ++owner) {
    ASSERT_TRUE(idbfa.AddReplica(owner % 7, owner).ok());
  }
  int unique_correct = 0;
  for (MdsId owner = 7; owner < 100; ++owner) {
    const auto r = idbfa.Locate(owner);
    if (r.kind == ArrayQueryResult::Kind::kUniqueHit && r.owner == owner % 7) {
      ++unique_correct;
    } else {
      // Multi-hit must at least include the true holder.
      bool found = false;
      for (const auto h : r.all_hits) found |= (h == owner % 7);
      EXPECT_TRUE(found) << "owner " << owner;
    }
  }
  EXPECT_GT(unique_correct, 85);  // paper: false positives extremely low
}

TEST(IdBloomArrayTest, MemoryFootprintTiny) {
  // Paper, Sec 2.4: at 100 MDSs the IDBFA takes <0.1 KB... per-filter sizes
  // here are deliberately generous, so grant a small multiple of that.
  IdBloomArray idbfa;
  for (MdsId m = 0; m < 10; ++m) idbfa.AddMember(m);
  for (MdsId owner = 10; owner < 100; ++owner) {
    ASSERT_TRUE(idbfa.AddReplica(owner % 10, owner).ok());
  }
  EXPECT_LT(idbfa.MemoryBytes(), 16u * 1024u);
}

TEST(IdBloomArrayTest, SerializeRoundTrip) {
  IdBloomArray idbfa;
  for (MdsId m = 0; m < 5; ++m) idbfa.AddMember(m);
  for (MdsId owner = 5; owner < 30; ++owner) {
    ASSERT_TRUE(idbfa.AddReplica(owner % 5, owner).ok());
  }
  ByteWriter w;
  idbfa.Serialize(w);
  ByteReader r(w.data());
  auto decoded = IdBloomArray::Deserialize(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Members(), idbfa.Members());
  for (MdsId owner = 5; owner < 30; ++owner) {
    const auto loc = decoded->Locate(owner);
    ASSERT_EQ(loc.kind, ArrayQueryResult::Kind::kUniqueHit) << owner;
    EXPECT_EQ(loc.owner, owner % 5);
  }
  // Decoded filters must still support removal (counting semantics).
  ASSERT_TRUE(decoded->RemoveReplica(5 % 5, 5).ok());
}

TEST(IdBloomArrayTest, DeserializeRejectsTruncation) {
  IdBloomArray idbfa;
  idbfa.AddMember(1);
  ByteWriter w;
  idbfa.Serialize(w);
  auto data = w.Take();
  data.resize(data.size() - 5);
  ByteReader r(data);
  EXPECT_FALSE(IdBloomArray::Deserialize(r).ok());
}

}  // namespace
}  // namespace ghba
