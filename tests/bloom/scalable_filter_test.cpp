#include "bloom/scalable_filter.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ghba {
namespace {

ScalableCountingFilter::Options SmallOptions(std::uint64_t initial = 100) {
  ScalableCountingFilter::Options options;
  options.initial_capacity = initial;
  options.counters_per_item = 16.0;
  return options;
}

TEST(ScalableFilterTest, BasicMembership) {
  ScalableCountingFilter f(SmallOptions());
  f.Add("a");
  EXPECT_TRUE(f.MayContain("a"));
  EXPECT_FALSE(f.MayContain("b"));
  EXPECT_EQ(f.item_count(), 1u);
}

TEST(ScalableFilterTest, GrowsBeyondInitialCapacity) {
  ScalableCountingFilter f(SmallOptions(100));
  EXPECT_EQ(f.stage_count(), 1u);
  for (int i = 0; i < 1000; ++i) {
    f.Add("k" + std::to_string(i));
  }
  EXPECT_GT(f.stage_count(), 1u);
  // No false negatives across the chain.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(f.MayContain("k" + std::to_string(i))) << i;
  }
}

TEST(ScalableFilterTest, FpRateStaysNearDesignUnderOvergrowth) {
  // A fixed filter sized for 100 items would be hopeless at 5000; the
  // scalable chain keeps the measured FP rate small.
  ScalableCountingFilter f(SmallOptions(100));
  for (int i = 0; i < 5000; ++i) {
    f.Add("grow" + std::to_string(i));
  }
  int fp = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    fp += f.MayContain("absent" + std::to_string(i));
  }
  const double measured = static_cast<double>(fp) / kProbes;
  EXPECT_LT(measured, 0.02);
  EXPECT_LT(measured, f.ExpectedFalsePositiveRate() * 3 + 0.005);
}

TEST(ScalableFilterTest, RemoveWorksAcrossStages) {
  ScalableCountingFilter f(SmallOptions(50));
  for (int i = 0; i < 300; ++i) {
    f.Add("r" + std::to_string(i));
  }
  ASSERT_GT(f.stage_count(), 2u);
  // Remove keys that landed in different stages.
  for (int i = 0; i < 300; i += 2) {
    f.Remove("r" + std::to_string(i));
  }
  int ghosts = 0;
  for (int i = 0; i < 300; i += 2) {
    ghosts += f.MayContain("r" + std::to_string(i));
  }
  EXPECT_LT(ghosts, 12);  // only FP aliasing remains
  for (int i = 1; i < 300; i += 2) {
    EXPECT_TRUE(f.MayContain("r" + std::to_string(i))) << i;
  }
  EXPECT_EQ(f.item_count(), 150u);
}

TEST(ScalableFilterTest, RemoveOfAbsentKeyIsNoOp) {
  ScalableCountingFilter f(SmallOptions());
  f.Add("present");
  f.Remove("never-added");
  EXPECT_TRUE(f.MayContain("present"));
  EXPECT_EQ(f.item_count(), 1u);
}

TEST(ScalableFilterTest, StagesGrowGeometrically) {
  ScalableCountingFilter f(SmallOptions(64));
  for (int i = 0; i < 64 * (1 + 2 + 4) + 10; ++i) {
    f.Add("g" + std::to_string(i));
  }
  // Stage capacities 64, 128, 256, ... => 4 stages hold 64+128+256+ some.
  EXPECT_LE(f.stage_count(), 5u);
  EXPECT_GT(f.MemoryBytes(), 0u);
}

TEST(ScalableFilterTest, ExpectedRateGrowsWithStages) {
  ScalableCountingFilter f(SmallOptions(100));
  const double before = f.ExpectedFalsePositiveRate();
  for (int i = 0; i < 1000; ++i) {
    f.Add("x" + std::to_string(i));
  }
  EXPECT_GE(f.ExpectedFalsePositiveRate(), before);
  EXPECT_LT(f.ExpectedFalsePositiveRate(), 0.05);
}

}  // namespace
}  // namespace ghba
