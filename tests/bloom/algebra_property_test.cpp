// Property tests for the Bloom-filter algebra of Section 3.4.
//
// The paper's Properties 1-3 relate set operations to bit-vector operations.
// Here we generate random sets and verify the probabilistic contracts hold
// on real filters across a sweep of geometries.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/bloom_math.hpp"
#include "common/rng.hpp"

namespace ghba {
namespace {

struct Geometry {
  std::uint64_t bits;
  std::uint32_t k;
  std::uint64_t set_size;
};

class AlgebraPropertyTest : public ::testing::TestWithParam<Geometry> {
 protected:
  // Builds disjoint sets A-only, B-only, and shared AB.
  void SetUp() override {
    const auto& g = GetParam();
    Rng rng(g.bits ^ g.k);
    auto pick = [&](const std::string& prefix, std::uint64_t n) {
      std::vector<std::string> out;
      out.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        out.push_back(prefix + std::to_string(rng.Next()));
      }
      return out;
    };
    a_only_ = pick("a", g.set_size);
    b_only_ = pick("b", g.set_size);
    shared_ = pick("s", g.set_size / 2 + 1);
  }

  BloomFilter MakeFilter() const {
    const auto& g = GetParam();
    return BloomFilter(g.bits, g.k, /*seed=*/1234);
  }

  std::vector<std::string> a_only_, b_only_, shared_;
};

// Property 1: BF(A) | BF(B) == BF(A u B), exactly, bit-for-bit.
TEST_P(AlgebraPropertyTest, UnionMatchesFilterOfUnion) {
  BloomFilter fa = MakeFilter(), fb = MakeFilter(), funion = MakeFilter();
  for (const auto& x : a_only_) {
    fa.Add(x);
    funion.Add(x);
  }
  for (const auto& x : shared_) {
    fa.Add(x);
    fb.Add(x);
    funion.Add(x);
  }
  for (const auto& x : b_only_) {
    fb.Add(x);
    funion.Add(x);
  }
  fa.UnionWith(fb);
  EXPECT_EQ(fa.bits(), funion.bits());
}

// Property 2: BF(A) & BF(B) is a superset of BF(A n B): no false negatives
// for the true intersection, and every bit of BF(A n B) is set in the AND.
TEST_P(AlgebraPropertyTest, IntersectionConservative) {
  BloomFilter fa = MakeFilter(), fb = MakeFilter(), finter = MakeFilter();
  for (const auto& x : a_only_) fa.Add(x);
  for (const auto& x : b_only_) fb.Add(x);
  for (const auto& x : shared_) {
    fa.Add(x);
    fb.Add(x);
    finter.Add(x);
  }
  fa.IntersectWith(fb);
  EXPECT_TRUE(finter.bits().IsSubsetOf(fa.bits()));
  for (const auto& x : shared_) EXPECT_TRUE(fa.MayContain(x));
}

// XOR distance is a metric proxy for set difference: zero iff bit-identical,
// and grows as the sets diverge.
TEST_P(AlgebraPropertyTest, XorDistanceTracksDivergence) {
  BloomFilter fa = MakeFilter(), fb = MakeFilter();
  for (const auto& x : shared_) {
    fa.Add(x);
    fb.Add(x);
  }
  EXPECT_EQ(fa.XorDistance(fb), 0u);

  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < a_only_.size(); ++i) {
    fb.Add(a_only_[i]);
    if ((i + 1) % 16 == 0) {
      const auto d = fa.XorDistance(fb);
      EXPECT_GE(d, prev);
      prev = d;
    }
  }
  EXPECT_GT(prev, 0u);
}

// Symmetry and triangle-ish sanity for XOR distance.
TEST_P(AlgebraPropertyTest, XorDistanceSymmetric) {
  BloomFilter fa = MakeFilter(), fb = MakeFilter();
  for (const auto& x : a_only_) fa.Add(x);
  for (const auto& x : b_only_) fb.Add(x);
  EXPECT_EQ(fa.XorDistance(fb), fb.XorDistance(fa));
}

// Union must never introduce false negatives and only ever raise the FP
// rate (paper: "false positive probability of BF(A u B) is larger").
TEST_P(AlgebraPropertyTest, UnionRaisesFillRatio) {
  BloomFilter fa = MakeFilter(), fb = MakeFilter();
  for (const auto& x : a_only_) fa.Add(x);
  for (const auto& x : b_only_) fb.Add(x);
  const double fill_before = fa.FillRatio();
  fa.UnionWith(fb);
  EXPECT_GE(fa.FillRatio(), fill_before);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AlgebraPropertyTest,
    ::testing::Values(Geometry{1 << 12, 4, 100}, Geometry{1 << 14, 6, 500},
                      Geometry{1 << 16, 8, 2000}, Geometry{100003, 5, 1500},
                      Geometry{1 << 18, 11, 10000}));

// Measured false-positive rates must track the analytic f0 model across a
// sweep of bit ratios — this validates the constants used by Eq. (1) and
// the optimizer.
class FalsePositiveModelTest : public ::testing::TestWithParam<double> {};

TEST_P(FalsePositiveModelTest, MeasuredMatchesModel) {
  const double bits_per_item = GetParam();
  constexpr std::uint64_t kItems = 4000;
  auto bf = BloomFilter::ForCapacity(kItems, bits_per_item, 999);
  for (std::uint64_t i = 0; i < kItems; ++i) {
    bf.Add("present" + std::to_string(i));
  }
  std::uint64_t fp = 0;
  constexpr std::uint64_t kProbes = 200000;
  for (std::uint64_t i = 0; i < kProbes; ++i) {
    fp += bf.MayContain("absent" + std::to_string(i));
  }
  const double measured = static_cast<double>(fp) / kProbes;
  const double model = OptimalFalsePositiveRate(bits_per_item);
  // Integer k rounding and sampling noise: accept 35% relative + floor.
  EXPECT_NEAR(measured, model, model * 0.35 + 3e-4)
      << "bits/item " << bits_per_item;
}

INSTANTIATE_TEST_SUITE_P(BitRatios, FalsePositiveModelTest,
                         ::testing::Values(6.0, 8.0, 10.0, 12.0, 16.0));

}  // namespace
}  // namespace ghba
