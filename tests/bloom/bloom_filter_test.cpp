#include "bloom/bloom_filter.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bloom/bloom_math.hpp"

namespace ghba {
namespace {

std::string Key(int i) { return "/fs/dir" + std::to_string(i % 37) + "/file" + std::to_string(i); }

TEST(BloomFilterTest, NoFalseNegatives) {
  auto bf = BloomFilter::ForCapacity(1000, 10.0);
  for (int i = 0; i < 1000; ++i) bf.Add(Key(i));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bf.MayContain(Key(i))) << Key(i);
  }
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  BloomFilter bf(1024, 4);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(bf.MayContain(Key(i)));
}

TEST(BloomFilterTest, MeasuredFalsePositiveNearModel) {
  auto bf = BloomFilter::ForCapacity(5000, 8.0);
  for (int i = 0; i < 5000; ++i) bf.Add(Key(i));
  int fp = 0;
  constexpr int kProbes = 50000;
  for (int i = 0; i < kProbes; ++i) {
    fp += bf.MayContain("absent-" + std::to_string(i));
  }
  const double measured = fp / static_cast<double>(kProbes);
  const double model = bf.ExpectedFalsePositiveRate();
  EXPECT_NEAR(measured, model, model * 0.25 + 0.002);
}

TEST(BloomFilterTest, ClearEmptiesFilter) {
  auto bf = BloomFilter::ForCapacity(100, 8.0);
  bf.Add("x");
  bf.Clear();
  EXPECT_FALSE(bf.MayContain("x"));
  EXPECT_EQ(bf.inserted_count(), 0u);
  EXPECT_EQ(bf.FillRatio(), 0.0);
}

TEST(BloomFilterTest, FillRatioGrowsMonotonically) {
  auto bf = BloomFilter::ForCapacity(1000, 8.0);
  double prev = 0;
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 100; ++i) bf.Add(Key(batch * 100 + i));
    const double fill = bf.FillRatio();
    EXPECT_GT(fill, prev);
    prev = fill;
  }
  // At optimal k and design load, fill ratio approaches 1/2.
  EXPECT_NEAR(prev, 0.5, 0.05);
}

TEST(BloomFilterTest, GeometryChecks) {
  BloomFilter a(1024, 4, 1), b(1024, 4, 1), c(1024, 4, 2), d(2048, 4, 1),
      e(1024, 5, 1);
  EXPECT_TRUE(a.SameGeometry(b));
  EXPECT_FALSE(a.SameGeometry(c));
  EXPECT_FALSE(a.SameGeometry(d));
  EXPECT_FALSE(a.SameGeometry(e));
}

TEST(BloomFilterTest, UnionContainsBothSets) {
  BloomFilter a(1 << 14, 6, 7), b(1 << 14, 6, 7);
  for (int i = 0; i < 200; ++i) a.Add(Key(i));
  for (int i = 200; i < 400; ++i) b.Add(Key(i));
  a.UnionWith(b);
  for (int i = 0; i < 400; ++i) EXPECT_TRUE(a.MayContain(Key(i)));
}

TEST(BloomFilterTest, IntersectionContainsCommonSet) {
  BloomFilter a(1 << 14, 6, 7), b(1 << 14, 6, 7);
  for (int i = 0; i < 300; ++i) a.Add(Key(i));          // 0..299
  for (int i = 200; i < 500; ++i) b.Add(Key(i));        // 200..499
  a.IntersectWith(b);
  // No false negatives on the true intersection.
  for (int i = 200; i < 300; ++i) EXPECT_TRUE(a.MayContain(Key(i)));
}

TEST(BloomFilterTest, XorDistanceZeroForIdentical) {
  BloomFilter a(4096, 4, 3), b(4096, 4, 3);
  for (int i = 0; i < 100; ++i) {
    a.Add(Key(i));
    b.Add(Key(i));
  }
  EXPECT_EQ(a.XorDistance(b), 0u);
}

TEST(BloomFilterTest, XorDistanceGrowsWithDivergence) {
  BloomFilter a(1 << 15, 5, 3), b(1 << 15, 5, 3);
  for (int i = 0; i < 500; ++i) {
    a.Add(Key(i));
    b.Add(Key(i));
  }
  EXPECT_EQ(a.XorDistance(b), 0u);
  std::uint64_t prev = 0;
  for (int extra = 0; extra < 5; ++extra) {
    for (int i = 0; i < 50; ++i) b.Add("new-" + std::to_string(extra * 50 + i));
    const auto dist = a.XorDistance(b);
    EXPECT_GT(dist, prev);
    prev = dist;
  }
}

TEST(BloomFilterTest, CopyBitsFromRefreshesReplica) {
  BloomFilter original(8192, 5, 11), replica(8192, 5, 11);
  for (int i = 0; i < 300; ++i) original.Add(Key(i));
  ASSERT_TRUE(replica.CopyBitsFrom(original).ok());
  for (int i = 0; i < 300; ++i) EXPECT_TRUE(replica.MayContain(Key(i)));
  EXPECT_EQ(replica.inserted_count(), original.inserted_count());
}

TEST(BloomFilterTest, CopyBitsFromRejectsGeometryMismatch) {
  BloomFilter a(1024, 4, 1), b(2048, 4, 1);
  EXPECT_EQ(a.CopyBitsFrom(b).code(), StatusCode::kInvalidArgument);
}

TEST(BloomFilterTest, SerializeRoundTrip) {
  auto bf = BloomFilter::ForCapacity(500, 12.0, 99);
  for (int i = 0; i < 500; ++i) bf.Add(Key(i));
  ByteWriter w;
  bf.Serialize(w);
  ByteReader r(w.data());
  auto decoded = BloomFilter::Deserialize(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bf);
  EXPECT_EQ(decoded->inserted_count(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_TRUE(decoded->MayContain(Key(i)));
}

TEST(BloomFilterTest, DeserializeRejectsBadK) {
  ByteWriter w;
  w.PutU32(0);  // invalid k
  w.PutU64(0);
  w.PutU64(0);
  BitVector(64).Serialize(w);
  ByteReader r(w.data());
  EXPECT_EQ(BloomFilter::Deserialize(r).status().code(),
            StatusCode::kCorruption);
}

TEST(BloomFilterTest, ForCapacityUsesOptimalK) {
  auto bf = BloomFilter::ForCapacity(1000, 8.0);
  EXPECT_EQ(bf.k(), OptimalK(8000, 1000));
  EXPECT_GE(bf.num_bits(), 8000u);
}

TEST(BloomFilterTest, DigestApiMatchesStringApi) {
  auto bf = BloomFilter::ForCapacity(100, 10.0, 5);
  const auto digest = Murmur3_128("some/path", bf.seed());
  bf.Add(digest);
  EXPECT_TRUE(bf.MayContain("some/path"));
  EXPECT_TRUE(bf.MayContain(digest));
}

TEST(BloomFilterTest, FromBitsPreservesBits) {
  BitVector bits(256);
  bits.Set(17);
  auto bf = BloomFilter::FromBits(std::move(bits), 3, 9, 1);
  EXPECT_TRUE(bf.bits().Test(17));
  EXPECT_EQ(bf.inserted_count(), 1u);
  EXPECT_EQ(bf.k(), 3u);
}

}  // namespace
}  // namespace ghba
