// Tests for the SLRU replacement policy of the L1 array (the future-work
// "replacement efficiency" improvement).
#include <gtest/gtest.h>

#include <string>

#include "bloom/lru_bloom_array.hpp"

namespace ghba {
namespace {

LruBloomArray::Options SlruOptions(std::size_t capacity,
                                   double protected_fraction = 0.5) {
  LruBloomArray::Options options;
  options.capacity = capacity;
  options.counters_per_item = 16.0;
  options.policy = LruPolicy::kSlru;
  options.protected_fraction = protected_fraction;
  return options;
}

TEST(SlruTest, ReReferencePromotesToProtected) {
  LruBloomArray slru(SlruOptions(8));
  slru.Touch("a", 1);
  EXPECT_EQ(slru.protected_size(), 0u);
  slru.Touch("a", 1);  // re-reference -> protected
  EXPECT_EQ(slru.protected_size(), 1u);
  EXPECT_EQ(slru.size(), 1u);
}

TEST(SlruTest, ScanResistance) {
  // Hot set of 4 keys, re-referenced so they sit in protected; then a scan
  // of 100 one-touch keys. LRU would evict the hot set; SLRU must not.
  LruBloomArray slru(SlruOptions(8, 0.5));
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      slru.Touch("hot" + std::to_string(i), 1);
    }
  }
  EXPECT_EQ(slru.protected_size(), 4u);
  for (int i = 0; i < 100; ++i) {
    slru.Touch("scan" + std::to_string(i), 2);
  }
  for (int i = 0; i < 4; ++i) {
    const auto r = slru.Query("hot" + std::to_string(i));
    EXPECT_EQ(r.kind, ArrayQueryResult::Kind::kUniqueHit) << i;
    EXPECT_EQ(r.owner, 1u) << i;
  }

  // Plain LRU loses the hot set under the same access pattern.
  LruBloomArray::Options lru_options = SlruOptions(8);
  lru_options.policy = LruPolicy::kLru;
  LruBloomArray lru(lru_options);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      lru.Touch("hot" + std::to_string(i), 1);
    }
  }
  for (int i = 0; i < 100; ++i) {
    lru.Touch("scan" + std::to_string(i), 2);
  }
  int survivors = 0;
  for (int i = 0; i < 4; ++i) {
    survivors +=
        (lru.Query("hot" + std::to_string(i)).kind ==
         ArrayQueryResult::Kind::kUniqueHit);
  }
  EXPECT_EQ(survivors, 0);
}

TEST(SlruTest, ProtectedSegmentBounded) {
  LruBloomArray slru(SlruOptions(10, 0.4));  // protected cap = 4
  for (int i = 0; i < 8; ++i) {
    slru.Touch("k" + std::to_string(i), 1);
    slru.Touch("k" + std::to_string(i), 1);  // promote each
  }
  EXPECT_LE(slru.protected_size(), 4u);
  EXPECT_EQ(slru.size(), 8u);
}

TEST(SlruTest, CapacityStillEnforced) {
  LruBloomArray slru(SlruOptions(6));
  for (int i = 0; i < 50; ++i) {
    slru.Touch("x" + std::to_string(i), 1);
  }
  EXPECT_EQ(slru.size(), 6u);
}

TEST(SlruTest, InvalidateWorksInBothSegments) {
  LruBloomArray slru(SlruOptions(8));
  slru.Touch("prob", 1);
  slru.Touch("prot", 1);
  slru.Touch("prot", 1);  // promoted
  slru.Invalidate("prob");
  slru.Invalidate("prot");
  EXPECT_EQ(slru.size(), 0u);
  EXPECT_EQ(slru.Query("prob").kind, ArrayQueryResult::Kind::kZeroHit);
  EXPECT_EQ(slru.Query("prot").kind, ArrayQueryResult::Kind::kZeroHit);
}

TEST(SlruTest, DropHomeClearsBothSegments) {
  LruBloomArray slru(SlruOptions(8));
  slru.Touch("a", 1);
  slru.Touch("a", 1);  // protected, home 1
  slru.Touch("b", 1);  // probation, home 1
  slru.Touch("c", 2);
  slru.DropHome(1);
  EXPECT_EQ(slru.size(), 1u);
  EXPECT_EQ(slru.Query("c").kind, ArrayQueryResult::Kind::kUniqueHit);
}

TEST(SlruTest, HomeChangeInProtectedSegment) {
  LruBloomArray slru(SlruOptions(8));
  slru.Touch("m", 1);
  slru.Touch("m", 1);  // protected on home 1
  slru.Touch("m", 3);  // migrated
  const auto r = slru.Query("m");
  ASSERT_EQ(r.kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(r.owner, 3u);
}

TEST(SlruTest, EvictionTakesProbationFirst) {
  LruBloomArray slru(SlruOptions(4, 0.5));
  slru.Touch("p1", 1);
  slru.Touch("p1", 1);  // protected
  slru.Touch("p2", 1);
  slru.Touch("p2", 1);  // protected (cap 2)
  slru.Touch("fresh1", 2);
  slru.Touch("fresh2", 2);
  slru.Touch("fresh3", 2);  // evicts a probation entry, not the hot pair
  EXPECT_EQ(slru.Query("p1").kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(slru.Query("p2").kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(slru.Query("fresh1").kind, ArrayQueryResult::Kind::kZeroHit);
}

}  // namespace
}  // namespace ghba
