// Validates the stale-replica false-rate model against measured rates on
// real filters (the reproduction of the paper's reference [33] analysis).
#include "bloom/staleness_math.hpp"

#include <gtest/gtest.h>

#include <string>

#include "bloom/bloom_filter.hpp"
#include "bloom/counting_bloom_filter.hpp"

namespace ghba {
namespace {

TEST(StalenessMathTest, FreshReplicaHasNoFalseRates) {
  const auto est = EstimateStaleness(10000, 0, 0, 16.0);
  EXPECT_EQ(est.false_negative_rate, 0.0);
  EXPECT_EQ(est.deleted_hit_rate, 0.0);
}

TEST(StalenessMathTest, FnRateGrowsWithAdditions) {
  double prev = -1;
  for (std::uint64_t added : {10u, 100u, 1000u, 10000u}) {
    const auto est = EstimateStaleness(10000, added, 0, 16.0);
    EXPECT_GT(est.false_negative_rate, prev);
    EXPECT_LE(est.false_negative_rate, 1.0);
    prev = est.false_negative_rate;
  }
}

TEST(StalenessMathTest, MeasuredFnMatchesModel) {
  // Publish a snapshot of 5000 files, then create 1000 more: queries for
  // the current population must miss at ~ the modeled rate.
  constexpr std::uint64_t kBase = 5000;
  constexpr std::uint64_t kAdded = 1000;
  constexpr double kBits = 16.0;

  auto cbf = CountingBloomFilter::ForCapacity(kBase + kAdded, kBits, 3);
  for (std::uint64_t i = 0; i < kBase; ++i) {
    cbf.Add("f" + std::to_string(i));
  }
  const BloomFilter snapshot = cbf.ToBloomFilter();  // the stale replica
  for (std::uint64_t i = kBase; i < kBase + kAdded; ++i) {
    cbf.Add("f" + std::to_string(i));
  }

  std::uint64_t misses = 0;
  for (std::uint64_t i = 0; i < kBase + kAdded; ++i) {
    misses += !snapshot.MayContain("f" + std::to_string(i));
  }
  const double measured =
      static_cast<double>(misses) / static_cast<double>(kBase + kAdded);
  const auto est = EstimateStaleness(kBase, kAdded, 0, kBits);
  EXPECT_NEAR(measured, est.false_negative_rate,
              est.false_negative_rate * 0.05 + 0.002);
}

TEST(StalenessMathTest, DeletedFilesStillHitSnapshot) {
  constexpr std::uint64_t kBase = 3000;
  auto cbf = CountingBloomFilter::ForCapacity(kBase, 12.0, 5);
  for (std::uint64_t i = 0; i < kBase; ++i) {
    cbf.Add("g" + std::to_string(i));
  }
  const BloomFilter snapshot = cbf.ToBloomFilter();
  // Delete a third from the live filter; the snapshot must still claim
  // every one of them (deleted_hit_rate ~ 1).
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < kBase / 3; ++i) {
    ASSERT_TRUE(cbf.Remove("g" + std::to_string(i)).ok());
    hits += snapshot.MayContain("g" + std::to_string(i));
  }
  EXPECT_EQ(hits, kBase / 3);
  const auto est = EstimateStaleness(kBase, 0, kBase / 3, 12.0);
  EXPECT_DOUBLE_EQ(est.deleted_hit_rate, 1.0);
  EXPECT_EQ(est.false_negative_rate, 0.0);
}

TEST(StalenessMathTest, PublishBudgetInvertsFnTarget) {
  // The budget computed for a target must produce (about) that FN rate.
  for (const double target : {0.005, 0.01, 0.05}) {
    const std::uint64_t files = 20000;
    const auto budget = PublishBudgetFor(target, files);
    const auto est = EstimateStaleness(files, budget, 0, 16.0);
    EXPECT_NEAR(est.false_negative_rate, target, target * 0.1 + 1e-4)
        << target;
  }
}

TEST(StalenessMathTest, PublishBudgetEdges) {
  EXPECT_EQ(PublishBudgetFor(0.0, 10000), 1u);   // publish every mutation
  EXPECT_EQ(PublishBudgetFor(1.0, 10000), 10000u);
  EXPECT_GE(PublishBudgetFor(0.5, 10), 10u);
}

}  // namespace
}  // namespace ghba
