#include "bloom/lru_bloom_array.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ghba {
namespace {

LruBloomArray::Options SmallOptions(std::size_t capacity = 64) {
  LruBloomArray::Options options;
  options.capacity = capacity;
  options.counters_per_item = 16.0;
  return options;
}

TEST(LruBloomArrayTest, TouchThenUniqueHit) {
  LruBloomArray lru(SmallOptions());
  lru.Touch("/a/b/c", 3);
  const auto r = lru.Query("/a/b/c");
  ASSERT_EQ(r.kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(r.owner, 3u);
}

TEST(LruBloomArrayTest, UnknownKeyZeroHit) {
  LruBloomArray lru(SmallOptions());
  lru.Touch("/a", 1);
  EXPECT_EQ(lru.Query("/b").kind, ArrayQueryResult::Kind::kZeroHit);
}

TEST(LruBloomArrayTest, CapacityEvictsOldest) {
  LruBloomArray lru(SmallOptions(4));
  for (int i = 0; i < 5; ++i) {
    lru.Touch("key" + std::to_string(i), 1);
  }
  EXPECT_EQ(lru.size(), 4u);
  // key0 was evicted; key4 still present.
  EXPECT_EQ(lru.Query("key0").kind, ArrayQueryResult::Kind::kZeroHit);
  EXPECT_EQ(lru.Query("key4").kind, ArrayQueryResult::Kind::kUniqueHit);
}

TEST(LruBloomArrayTest, TouchRefreshesRecency) {
  LruBloomArray lru(SmallOptions(3));
  lru.Touch("a", 1);
  lru.Touch("b", 1);
  lru.Touch("c", 1);
  lru.Touch("a", 1);  // a becomes most recent
  lru.Touch("d", 1);  // evicts b (oldest)
  EXPECT_EQ(lru.Query("a").kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(lru.Query("b").kind, ArrayQueryResult::Kind::kZeroHit);
  EXPECT_EQ(lru.Query("c").kind, ArrayQueryResult::Kind::kUniqueHit);
}

TEST(LruBloomArrayTest, HomeChangeMovesBetweenFilters) {
  LruBloomArray lru(SmallOptions());
  lru.Touch("migrating", 1);
  lru.Touch("migrating", 2);  // file moved to MDS 2
  const auto r = lru.Query("migrating");
  ASSERT_EQ(r.kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(r.owner, 2u);
  EXPECT_EQ(lru.size(), 1u);
}

TEST(LruBloomArrayTest, InvalidateRemovesEntry) {
  LruBloomArray lru(SmallOptions());
  lru.Touch("stale", 5);
  lru.Invalidate("stale");
  EXPECT_EQ(lru.Query("stale").kind, ArrayQueryResult::Kind::kZeroHit);
  EXPECT_EQ(lru.size(), 0u);
  lru.Invalidate("never-present");  // must be a no-op
}

TEST(LruBloomArrayTest, DropHomeRemovesAllItsEntries) {
  LruBloomArray lru(SmallOptions());
  lru.Touch("a1", 1);
  lru.Touch("a2", 1);
  lru.Touch("b1", 2);
  lru.DropHome(1);
  EXPECT_EQ(lru.size(), 1u);
  EXPECT_EQ(lru.Query("a1").kind, ArrayQueryResult::Kind::kZeroHit);
  EXPECT_EQ(lru.Query("b1").kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(lru.home_count(), 1u);
}

TEST(LruBloomArrayTest, ManyHomesUniqueHitsStayAccurate) {
  LruBloomArray lru(SmallOptions(512));
  for (int i = 0; i < 512; ++i) {
    lru.Touch("file" + std::to_string(i), static_cast<MdsId>(i % 16));
  }
  int correct = 0;
  for (int i = 0; i < 512; ++i) {
    const auto r = lru.Query("file" + std::to_string(i));
    if (r.kind == ArrayQueryResult::Kind::kUniqueHit &&
        r.owner == static_cast<MdsId>(i % 16)) {
      ++correct;
    }
  }
  // Cross-home false positives may demote a few unique hits to multi-hits,
  // but the vast majority must resolve correctly.
  EXPECT_GT(correct, 480);
}

TEST(LruBloomArrayTest, EvictionNeverLeavesGhostMembership) {
  // After heavy churn, evicted keys must not register as present.
  LruBloomArray lru(SmallOptions(32));
  for (int i = 0; i < 2000; ++i) {
    lru.Touch("churn" + std::to_string(i), static_cast<MdsId>(i % 4));
  }
  int ghosts = 0;
  for (int i = 0; i < 1900; ++i) {  // all long-evicted
    ghosts += (lru.Query("churn" + std::to_string(i)).kind !=
               ArrayQueryResult::Kind::kZeroHit);
  }
  // Counting-filter removal on eviction keeps ghosts to FP noise only.
  EXPECT_LT(ghosts, 20);
}

TEST(LruBloomArrayTest, MemoryBytesPositiveAndBounded) {
  LruBloomArray lru(SmallOptions(128));
  for (int i = 0; i < 128; ++i) {
    lru.Touch("k" + std::to_string(i), static_cast<MdsId>(i % 8));
  }
  const auto bytes = lru.MemoryBytes();
  EXPECT_GT(bytes, 0u);
  EXPECT_LT(bytes, 1'000'000u);  // "hot data is small" (paper Sec. 2.1)
}

}  // namespace
}  // namespace ghba
