#include "bloom/lru_bloom_array.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ghba {
namespace {

// Concatenation helper: GCC 12's -Wrestrict misfires on chained
// operator+(const char*, std::string&&) under -O2.
std::string Key(const char* prefix, long long i) {
  std::string out(prefix);
  out += std::to_string(i);
  return out;
}

LruBloomArray::Options SmallOptions(std::size_t capacity = 64) {
  LruBloomArray::Options options;
  options.capacity = capacity;
  options.counters_per_item = 16.0;
  return options;
}

TEST(LruBloomArrayTest, TouchThenUniqueHit) {
  LruBloomArray lru(SmallOptions());
  lru.Touch("/a/b/c", 3);
  const auto r = lru.Query("/a/b/c");
  ASSERT_EQ(r.kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(r.owner, 3u);
}

TEST(LruBloomArrayTest, UnknownKeyZeroHit) {
  LruBloomArray lru(SmallOptions());
  lru.Touch("/a", 1);
  EXPECT_EQ(lru.Query("/b").kind, ArrayQueryResult::Kind::kZeroHit);
}

TEST(LruBloomArrayTest, CapacityEvictsOldest) {
  LruBloomArray lru(SmallOptions(4));
  for (int i = 0; i < 5; ++i) {
    lru.Touch(Key("key", i), 1);
  }
  EXPECT_EQ(lru.size(), 4u);
  // key0 was evicted; key4 still present.
  EXPECT_EQ(lru.Query("key0").kind, ArrayQueryResult::Kind::kZeroHit);
  EXPECT_EQ(lru.Query("key4").kind, ArrayQueryResult::Kind::kUniqueHit);
}

TEST(LruBloomArrayTest, TouchRefreshesRecency) {
  LruBloomArray lru(SmallOptions(3));
  lru.Touch("a", 1);
  lru.Touch("b", 1);
  lru.Touch("c", 1);
  lru.Touch("a", 1);  // a becomes most recent
  lru.Touch("d", 1);  // evicts b (oldest)
  EXPECT_EQ(lru.Query("a").kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(lru.Query("b").kind, ArrayQueryResult::Kind::kZeroHit);
  EXPECT_EQ(lru.Query("c").kind, ArrayQueryResult::Kind::kUniqueHit);
}

TEST(LruBloomArrayTest, HomeChangeMovesBetweenFilters) {
  LruBloomArray lru(SmallOptions());
  lru.Touch("migrating", 1);
  lru.Touch("migrating", 2);  // file moved to MDS 2
  const auto r = lru.Query("migrating");
  ASSERT_EQ(r.kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(r.owner, 2u);
  EXPECT_EQ(lru.size(), 1u);
}

TEST(LruBloomArrayTest, InvalidateRemovesEntry) {
  LruBloomArray lru(SmallOptions());
  lru.Touch("stale", 5);
  lru.Invalidate("stale");
  EXPECT_EQ(lru.Query("stale").kind, ArrayQueryResult::Kind::kZeroHit);
  EXPECT_EQ(lru.size(), 0u);
  lru.Invalidate("never-present");  // must be a no-op
}

TEST(LruBloomArrayTest, DropHomeRemovesAllItsEntries) {
  LruBloomArray lru(SmallOptions());
  lru.Touch("a1", 1);
  lru.Touch("a2", 1);
  lru.Touch("b1", 2);
  lru.DropHome(1);
  EXPECT_EQ(lru.size(), 1u);
  EXPECT_EQ(lru.Query("a1").kind, ArrayQueryResult::Kind::kZeroHit);
  EXPECT_EQ(lru.Query("b1").kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(lru.home_count(), 1u);
}

TEST(LruBloomArrayTest, ManyHomesUniqueHitsStayAccurate) {
  LruBloomArray lru(SmallOptions(512));
  for (int i = 0; i < 512; ++i) {
    lru.Touch(Key("file", i), static_cast<MdsId>(i % 16));
  }
  int correct = 0;
  for (int i = 0; i < 512; ++i) {
    const auto r = lru.Query(Key("file", i));
    if (r.kind == ArrayQueryResult::Kind::kUniqueHit &&
        r.owner == static_cast<MdsId>(i % 16)) {
      ++correct;
    }
  }
  // Cross-home false positives may demote a few unique hits to multi-hits,
  // but the vast majority must resolve correctly.
  EXPECT_GT(correct, 480);
}

TEST(LruBloomArrayTest, EvictionNeverLeavesGhostMembership) {
  // After heavy churn, evicted keys must not register as present.
  LruBloomArray lru(SmallOptions(32));
  for (int i = 0; i < 2000; ++i) {
    lru.Touch(Key("churn", i), static_cast<MdsId>(i % 4));
  }
  int ghosts = 0;
  for (int i = 0; i < 1900; ++i) {  // all long-evicted
    ghosts += (lru.Query(Key("churn", i)).kind !=
               ArrayQueryResult::Kind::kZeroHit);
  }
  // Counting-filter removal on eviction keeps ghosts to FP noise only.
  EXPECT_LT(ghosts, 20);
}

TEST(LruBloomArrayTest, EvictionErasesDrainedHomeFilters) {
  // Regression: filters_ used to keep a (empty) counting filter for every
  // home ever cached — only DropHome erased them — so probe cost and
  // MemoryBytes grew monotonically with the number of distinct homes.
  LruBloomArray lru(SmallOptions(32));
  // Fill with home 0, record the steady-state footprint.
  for (int i = 0; i < 32; ++i) lru.Touch(Key("warm", i), 0);
  EXPECT_EQ(lru.home_count(), 1u);
  const auto steady_bytes = lru.MemoryBytes();
  // Churn through 64 more homes in full-capacity blocks: each block fully
  // evicts the previous home's entries, which must drain its filter.
  for (MdsId home = 1; home <= 64; ++home) {
    for (int i = 0; i < 32; ++i) {
      lru.Touch(Key("h", home) + Key("/f", i), home);
    }
    EXPECT_EQ(lru.home_count(), 1u) << "home " << home;
  }
  EXPECT_EQ(lru.size(), 32u);
  EXPECT_LE(lru.MemoryBytes(), steady_bytes);
}

TEST(LruBloomArrayTest, InvalidateDrainsLastEntryAndErasesFilter) {
  LruBloomArray lru(SmallOptions());
  lru.Touch("only", 7);
  EXPECT_EQ(lru.home_count(), 1u);
  lru.Invalidate("only");
  EXPECT_EQ(lru.size(), 0u);
  EXPECT_EQ(lru.home_count(), 0u);
}

TEST(LruBloomArrayTest, HomeChangeDrainsOldHomeFilter) {
  LruBloomArray lru(SmallOptions());
  lru.Touch("mover", 1);
  lru.Touch("mover", 2);  // migrated: home 1's filter is now empty
  EXPECT_EQ(lru.home_count(), 1u);
  const auto r = lru.Query("mover");
  ASSERT_EQ(r.kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(r.owner, 2u);
}

LruBloomArray::Options CollidingOptions() {
  // An 4-bit index fold forces frequent index-key collisions between
  // distinct paths, exercising the collision-handling path that a 64-bit
  // fold only hits with negligible probability.
  auto options = SmallOptions(64);
  options.index_bits = 4;
  return options;
}

TEST(LruBloomArrayTest, IndexCollisionNeverConflatesDistinctKeys) {
  // Regression: the Touch fast path used to trust the folded index key
  // without comparing the stored 128-bit digest, so a colliding pair of
  // paths was treated as one entry — Query then reported the second path's
  // home for the first. With at most 16 index slots and 200 keys, every
  // insert collides; a collision must evict the incumbent, never merge.
  LruBloomArray lru(CollidingOptions());
  for (int i = 0; i < 200; ++i) {
    lru.Touch(Key("path", i), static_cast<MdsId>(i));
  }
  EXPECT_LE(lru.size(), 16u);
  int checked = 0;
  for (int i = 0; i < 200; ++i) {
    const auto r = lru.Query(Key("path", i));
    if (r.kind == ArrayQueryResult::Kind::kUniqueHit) {
      // Whatever survives must map to its own home, never a collider's.
      EXPECT_EQ(r.owner, static_cast<MdsId>(i)) << "path" << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(LruBloomArrayTest, IndexCollisionInvalidateOnlyDropsMatchingKey) {
  LruBloomArray lru(CollidingOptions());
  // Find two keys that collide in the 4-bit index: insert until size stops
  // growing, then invalidate keys that were displaced — must be no-ops.
  lru.Touch("a", 1);
  for (int i = 0; i < 64; ++i) lru.Touch(Key("b", i), 2);
  // "a" may or may not have been displaced by a collision; invalidating it
  // must never remove somebody else's entry.
  const auto before = lru.size();
  const bool a_present =
      lru.Query("a").kind == ArrayQueryResult::Kind::kUniqueHit;
  lru.Invalidate("a");
  if (!a_present) {
    EXPECT_EQ(lru.size(), before);
  } else {
    EXPECT_EQ(lru.size(), before - 1);
  }
}

TEST(LruBloomArrayTest, DigestQueryMatchesStringQuery) {
  LruBloomArray lru(SmallOptions());
  for (int i = 0; i < 40; ++i) {
    lru.Touch(Key("dq", i), static_cast<MdsId>(i % 5));
  }
  for (int i = 0; i < 40; ++i) {
    const std::string key = Key("dq", i);
    QueryDigest digest(key);
    const auto via_digest = lru.Query(digest);
    const auto via_string = lru.Query(key);
    EXPECT_EQ(via_digest.kind, via_string.kind) << key;
    EXPECT_EQ(via_digest.owner, via_string.owner) << key;
    EXPECT_EQ(via_digest.all_hits, via_string.all_hits) << key;
  }
}

TEST(LruBloomArrayTest, SlruChurnErasesDrainedFilters) {
  // The SLRU path evicts from both segments; drained filters must be erased
  // there too (EvictOne and EraseEntry share one bookkeeping helper).
  auto options = SmallOptions(32);
  options.policy = LruPolicy::kSlru;
  LruBloomArray lru(options);
  for (int round = 0; round < 40; ++round) {
    const MdsId home = static_cast<MdsId>(round);
    for (int i = 0; i < 24; ++i) {
      const std::string key =
          Key("s", round) + Key("/", i);
      lru.Touch(key, home);
      if (i % 3 == 0) lru.Touch(key, home);  // promote some to protected
    }
  }
  // Protected-segment entries legitimately outlive their round, so several
  // homes may coexist mid-churn — but never one filter per home ever seen.
  EXPECT_LT(lru.home_count(), 40u);
  // Flushing with one home (each key touched twice so it cycles through the
  // protected segment too) must evict every older entry from both segments
  // and drain — hence erase — every other home's filter.
  for (int i = 0; i < 200; ++i) {
    const std::string key = Key("flush", i);
    lru.Touch(key, 999);
    lru.Touch(key, 999);
  }
  EXPECT_EQ(lru.home_count(), 1u);
  EXPECT_EQ(lru.size(), 32u);
}

TEST(LruBloomArrayTest, MemoryBytesPositiveAndBounded) {
  LruBloomArray lru(SmallOptions(128));
  for (int i = 0; i < 128; ++i) {
    lru.Touch(Key("k", i), static_cast<MdsId>(i % 8));
  }
  const auto bytes = lru.MemoryBytes();
  EXPECT_GT(bytes, 0u);
  EXPECT_LT(bytes, 1'000'000u);  // "hot data is small" (paper Sec. 2.1)
}

}  // namespace
}  // namespace ghba
