#include "bloom/bloom_math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ghba {
namespace {

TEST(BloomMathTest, FalsePositiveRateZeroWhenEmpty) {
  EXPECT_EQ(BloomFalsePositiveRate(1000, 0, 7), 0.0);
}

TEST(BloomMathTest, FalsePositiveRateIncreasesWithLoad) {
  double prev = 0;
  for (double n = 10; n <= 1000; n *= 2) {
    const double fp = BloomFalsePositiveRate(1024, n, 4);
    EXPECT_GT(fp, prev);
    prev = fp;
  }
  EXPECT_LE(prev, 1.0);
}

TEST(BloomMathTest, OptimalKMatchesFormula) {
  // k = (m/n) ln2: m/n = 8 -> 5.54 -> 6; m/n = 16 -> 11.09 -> 11.
  EXPECT_EQ(OptimalK(8000, 1000), 6u);
  EXPECT_EQ(OptimalK(16000, 1000), 11u);
  EXPECT_EQ(OptimalK(1000, 1000000), 1u);  // clamps at 1
  EXPECT_EQ(OptimalK(64000000, 1000), 32u);  // clamps at 32
}

TEST(BloomMathTest, OptimalRateMatchesPaperConstant) {
  // Paper: f0* = 0.6185^{m/n}. At m/n = 8 this is ~ 0.0216.
  EXPECT_NEAR(OptimalFalsePositiveRate(8), 0.0216, 0.0005);
  EXPECT_NEAR(OptimalFalsePositiveRate(16), 0.000459, 0.00003);
  EXPECT_EQ(OptimalFalsePositiveRate(0), 1.0);
}

TEST(BloomMathTest, OptimalRateAgreesWithGenericFormulaAtOptimalK) {
  for (double ratio : {4.0, 8.0, 12.0, 16.0}) {
    const double n = 10000;
    const double m = ratio * n;
    const std::uint32_t k = OptimalK(m, n);
    const double generic = BloomFalsePositiveRate(m, n, k);
    const double optimal = OptimalFalsePositiveRate(ratio);
    // k is rounded to an integer, so allow modest slack.
    EXPECT_NEAR(generic, optimal, optimal * 0.25) << "ratio " << ratio;
  }
}

// Eq. (1) of the paper: f+g = theta * f0 * (1-f0)^(theta-1).
TEST(BloomMathTest, SegmentArrayEquationOne) {
  const double f0 = OptimalFalsePositiveRate(8);
  EXPECT_DOUBLE_EQ(SegmentArrayFalsePositive(1, 8), f0);
  const double expected = 4.0 * f0 * std::pow(1 - f0, 3.0);
  EXPECT_DOUBLE_EQ(SegmentArrayFalsePositive(4, 8), expected);
  EXPECT_EQ(SegmentArrayFalsePositive(0, 8), 0.0);
}

TEST(BloomMathTest, SegmentArrayRateDropsWithMoreBitsPerItem) {
  EXPECT_GT(SegmentArrayFalsePositive(8, 8), SegmentArrayFalsePositive(8, 16));
}

TEST(BloomMathTest, UniqueHitAmongNegativesPeaksNearOneOverFp) {
  // For small fp the unique-false-hit probability grows ~linearly in count.
  const double fp = 0.01;
  EXPECT_NEAR(UniqueHitAmongNegatives(2, fp) / UniqueHitAmongNegatives(1, fp),
              2.0 * (1 - fp), 0.01);
  EXPECT_EQ(UniqueHitAmongNegatives(0, fp), 0.0);
}

TEST(BloomMathTest, CardinalityEstimateInvertsFillRatio) {
  // If n items set k bits each (with collisions), the Swamidass-Baldi
  // estimator should recover n from the expected popcount.
  const double m = 1 << 16;
  const std::uint32_t k = 5;
  for (double n : {100.0, 1000.0, 5000.0}) {
    const double expected_popcount =
        m * (1 - std::exp(-static_cast<double>(k) * n / m));
    const double est = EstimateCardinality(m, k, expected_popcount);
    EXPECT_NEAR(est, n, n * 0.01) << n;
  }
}

TEST(BloomMathTest, CardinalityEstimateHandlesEdges) {
  EXPECT_EQ(EstimateCardinality(1024, 4, 0), 0.0);
  // Saturated filter: finite best-effort estimate, no inf/nan.
  const double est = EstimateCardinality(1024, 4, 1024);
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_GT(est, 0.0);
}

}  // namespace
}  // namespace ghba
