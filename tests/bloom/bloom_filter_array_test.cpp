#include "bloom/bloom_filter_array.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ghba {
namespace {

// Concatenation helper: GCC 12's -Wrestrict misfires on chained
// operator+(const char*, std::string&&) under -O2.
std::string Key(const char* prefix, int i) {
  std::string out(prefix);
  out += std::to_string(i);
  return out;
}

BloomFilter FilterWithKeys(int lo, int hi, std::uint64_t seed) {
  auto bf = BloomFilter::ForCapacity(1000, 16.0, seed);
  for (int i = lo; i < hi; ++i) bf.Add("file-" + std::to_string(i));
  return bf;
}

class BloomFilterArrayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three MDSs, disjoint key ranges, per-owner seeds decorrelated.
    ASSERT_TRUE(array_.AddEntry(0, FilterWithKeys(0, 100, 100)).ok());
    ASSERT_TRUE(array_.AddEntry(1, FilterWithKeys(100, 200, 101)).ok());
    ASSERT_TRUE(array_.AddEntry(2, FilterWithKeys(200, 300, 102)).ok());
  }

  BloomFilterArray array_;
};

TEST_F(BloomFilterArrayTest, UniqueHitRoutesToOwner) {
  const auto r = array_.Query("file-50");
  ASSERT_EQ(r.kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(r.owner, 0u);
  EXPECT_TRUE(r.unique());

  const auto r2 = array_.Query("file-250");
  ASSERT_EQ(r2.kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(r2.owner, 2u);
}

TEST_F(BloomFilterArrayTest, AbsentKeyUsuallyZeroHit) {
  int zero = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto r = array_.Query("missing-" + std::to_string(i));
    zero += (r.kind == ArrayQueryResult::Kind::kZeroHit);
  }
  // At 16 bits/item the false-positive rate is ~0.0005 per filter.
  EXPECT_GT(zero, 990);
}

TEST_F(BloomFilterArrayTest, DuplicateOwnerRejected) {
  EXPECT_EQ(array_.AddEntry(1, FilterWithKeys(0, 1, 9)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(BloomFilterArrayTest, RemoveEntryReturnsFilter) {
  auto removed = array_.RemoveEntry(1);
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(removed->MayContain("file-150"));
  EXPECT_EQ(array_.size(), 2u);
  EXPECT_FALSE(array_.HasEntry(1));
  // Key from removed range no longer resolves.
  EXPECT_EQ(array_.Query("file-150").kind, ArrayQueryResult::Kind::kZeroHit);
}

TEST_F(BloomFilterArrayTest, RemoveMissingOwnerFails) {
  EXPECT_EQ(array_.RemoveEntry(99).status().code(), StatusCode::kNotFound);
}

TEST_F(BloomFilterArrayTest, RefreshEntryReplacesBits) {
  // Owner 0's filter forgets everything and learns new keys.
  auto fresh = BloomFilter::ForCapacity(1000, 16.0, 100);
  fresh.Add("brand-new");
  ASSERT_TRUE(array_.RefreshEntry(0, fresh).ok());
  EXPECT_EQ(array_.Query("file-50").kind, ArrayQueryResult::Kind::kZeroHit);
  const auto r = array_.Query("brand-new");
  ASSERT_EQ(r.kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(r.owner, 0u);
}

TEST_F(BloomFilterArrayTest, RefreshRejectsGeometryMismatch) {
  BloomFilter other_geometry(128, 2, 0);
  EXPECT_EQ(array_.RefreshEntry(0, other_geometry).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BloomFilterArrayTest, MultiHitWhenKeyInTwoFilters) {
  // Insert the same key into two owners' filters.
  array_.FindMutable(0)->Add("shared");
  array_.FindMutable(1)->Add("shared");
  const auto r = array_.Query("shared");
  EXPECT_EQ(r.kind, ArrayQueryResult::Kind::kMultiHit);
  EXPECT_EQ(r.all_hits.size(), 2u);
  EXPECT_FALSE(r.unique());
}

TEST_F(BloomFilterArrayTest, OwnersInInsertionOrder) {
  EXPECT_EQ(array_.Owners(), (std::vector<MdsId>{0, 1, 2}));
}

TEST_F(BloomFilterArrayTest, MemoryBytesSumsFilters) {
  std::uint64_t expected = 0;
  for (const auto& e : array_.entries()) expected += e.filter.MemoryBytes();
  EXPECT_EQ(array_.MemoryBytes(), expected);
  EXPECT_GT(expected, 0u);
}

TEST_F(BloomFilterArrayTest, QuerySharedFallsBackAcrossSeeds) {
  // Entries in this fixture use distinct seeds; QueryShared must still give
  // exactly the same answers as Query.
  EXPECT_FALSE(array_.UniformGeometry());
  for (int i = 0; i < 300; ++i) {
    const std::string key = "file-" + std::to_string(i);
    const auto slow = array_.Query(key);
    const auto fast = array_.QueryShared(key);
    EXPECT_EQ(slow.kind, fast.kind) << key;
    EXPECT_EQ(slow.all_hits, fast.all_hits) << key;
  }
}

TEST(BloomFilterArraySharedTest, UniformGeometryFastPathMatchesQuery) {
  BloomFilterArray array;
  for (MdsId owner = 0; owner < 5; ++owner) {
    auto bf = BloomFilter::ForCapacity(1000, 16.0, /*seed=*/777);
    for (int i = 0; i < 200; ++i) {
      bf.Add(Key("o", static_cast<int>(owner)) + Key("/f", i));
    }
    ASSERT_TRUE(array.AddEntry(owner, std::move(bf)).ok());
  }
  EXPECT_TRUE(array.UniformGeometry());
  for (MdsId owner = 0; owner < 5; ++owner) {
    for (int i = 0; i < 200; i += 7) {
      const std::string key =
          Key("o", static_cast<int>(owner)) + Key("/f", i);
      const auto slow = array.Query(key);
      const auto fast = array.QueryShared(key);
      EXPECT_EQ(slow.kind, fast.kind) << key;
      EXPECT_EQ(slow.all_hits, fast.all_hits) << key;
    }
  }
  // Absent keys too.
  for (int i = 0; i < 500; ++i) {
    const std::string key = "absent" + std::to_string(i);
    EXPECT_EQ(array.Query(key).all_hits, array.QueryShared(key).all_hits);
  }
}

TEST(BloomFilterArrayDigestTest, DigestOverloadsMatchStringQueries) {
  // Mixed seeds: two entries share a seed, one differs. The QueryDigest
  // overloads must agree with the string paths in both regimes, and the
  // per-seed cache means the mixed array costs one extra digest, not one
  // per entry.
  BloomFilterArray array;
  auto mk = [](std::uint64_t seed, int lo, int hi) {
    auto bf = BloomFilter::ForCapacity(1000, 16.0, seed);
    for (int i = lo; i < hi; ++i) bf.Add(Key("k", i));
    return bf;
  };
  ASSERT_TRUE(array.AddEntry(0, mk(555, 0, 100)).ok());
  ASSERT_TRUE(array.AddEntry(1, mk(555, 100, 200)).ok());
  ASSERT_TRUE(array.AddEntry(2, mk(556, 200, 300)).ok());

  for (int i = 0; i < 350; ++i) {
    const std::string key = Key("k", i);
    QueryDigest digest(key);
    const auto via_digest = array.QueryShared(digest);
    const auto via_string = array.Query(key);
    EXPECT_EQ(via_digest.kind, via_string.kind) << key;
    EXPECT_EQ(via_digest.all_hits, via_string.all_hits) << key;

    QueryDigest digest2(key);
    std::vector<MdsId> hits{kInvalidMds};  // pre-existing content kept
    const auto appended = array.QuerySharedInto(digest2, hits);
    ASSERT_GE(hits.size(), 1u);
    EXPECT_EQ(hits.front(), kInvalidMds);
    EXPECT_EQ(appended, hits.size() - 1);
    EXPECT_EQ(std::vector<MdsId>(hits.begin() + 1, hits.end()),
              via_string.all_hits)
        << key;
  }
}

TEST(BloomFilterArrayEmptyTest, EmptyArrayReturnsZeroHit) {
  BloomFilterArray array;
  EXPECT_TRUE(array.empty());
  EXPECT_EQ(array.Query("anything").kind, ArrayQueryResult::Kind::kZeroHit);
  EXPECT_EQ(array.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace ghba
