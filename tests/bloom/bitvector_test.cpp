#include "bloom/bitvector.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ghba {
namespace {

TEST(BitVectorTest, SetTestClear) {
  BitVector bv(130);
  EXPECT_FALSE(bv.Test(0));
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Test(0));
  EXPECT_TRUE(bv.Test(63));
  EXPECT_TRUE(bv.Test(64));
  EXPECT_TRUE(bv.Test(129));
  EXPECT_FALSE(bv.Test(1));
  bv.Clear(63);
  EXPECT_FALSE(bv.Test(63));
  EXPECT_EQ(bv.PopCount(), 3u);
}

TEST(BitVectorTest, ResetClearsAll) {
  BitVector bv(200);
  for (int i = 0; i < 200; i += 3) bv.Set(i);
  bv.Reset();
  EXPECT_EQ(bv.PopCount(), 0u);
}

TEST(BitVectorTest, PopCountExact) {
  BitVector bv(1000);
  Rng rng(1);
  std::uint64_t expected = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.NextBool(0.3) && !bv.Test(i)) {
      bv.Set(i);
      ++expected;
    }
  }
  EXPECT_EQ(bv.PopCount(), expected);
}

TEST(BitVectorTest, OrIsUnion) {
  BitVector a(128), b(128);
  a.Set(1);
  a.Set(100);
  b.Set(2);
  b.Set(100);
  a.OrWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(2));
  EXPECT_TRUE(a.Test(100));
  EXPECT_EQ(a.PopCount(), 3u);
}

TEST(BitVectorTest, AndIsIntersection) {
  BitVector a(128), b(128);
  a.Set(1);
  a.Set(100);
  b.Set(2);
  b.Set(100);
  a.AndWith(b);
  EXPECT_FALSE(a.Test(1));
  EXPECT_FALSE(a.Test(2));
  EXPECT_TRUE(a.Test(100));
}

TEST(BitVectorTest, XorIsSymmetricDifference) {
  BitVector a(128), b(128);
  a.Set(1);
  a.Set(100);
  b.Set(2);
  b.Set(100);
  a.XorWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(2));
  EXPECT_FALSE(a.Test(100));
}

TEST(BitVectorTest, HammingDistance) {
  BitVector a(256), b(256);
  EXPECT_EQ(a.HammingDistance(b), 0u);
  a.Set(0);
  b.Set(255);
  EXPECT_EQ(a.HammingDistance(b), 2u);
  b.Set(0);
  EXPECT_EQ(a.HammingDistance(b), 1u);
}

TEST(BitVectorTest, SubsetDetection) {
  BitVector small(64), big(64);
  small.Set(3);
  big.Set(3);
  big.Set(9);
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
}

TEST(BitVectorTest, SerializeRoundTrip) {
  BitVector bv(777);
  Rng rng(2);
  for (int i = 0; i < 777; ++i) {
    if (rng.NextBool(0.4)) bv.Set(i);
  }
  ByteWriter w;
  bv.Serialize(w);
  ByteReader r(w.data());
  auto decoded = BitVector::Deserialize(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bv);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BitVectorTest, DeserializeRejectsTruncation) {
  BitVector bv(1000);
  ByteWriter w;
  bv.Serialize(w);
  auto data = w.Take();
  data.resize(data.size() / 2);
  ByteReader r(data);
  EXPECT_EQ(BitVector::Deserialize(r).status().code(), StatusCode::kCorruption);
}

TEST(BitVectorTest, DeserializeRejectsGarbageTailBits) {
  BitVector bv(10);
  ByteWriter w;
  bv.Serialize(w);
  auto data = w.Take();
  data.back() = 0xff;  // sets bits beyond bit 9
  ByteReader r(data);
  EXPECT_EQ(BitVector::Deserialize(r).status().code(), StatusCode::kCorruption);
}

TEST(BitVectorTest, DeserializeRejectsAbsurdSize) {
  ByteWriter w;
  w.PutVarint(1ULL << 50);
  ByteReader r(w.data());
  EXPECT_EQ(BitVector::Deserialize(r).status().code(), StatusCode::kCorruption);
}

TEST(BitVectorTest, MemoryBytesMatchesWordCount) {
  BitVector bv(64);
  EXPECT_EQ(bv.MemoryBytes(), 8u);
  BitVector bv2(65);
  EXPECT_EQ(bv2.MemoryBytes(), 16u);
}

}  // namespace
}  // namespace ghba
