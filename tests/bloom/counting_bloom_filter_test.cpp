#include "bloom/counting_bloom_filter.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ghba {
namespace {

std::string Key(int i) { return "item-" + std::to_string(i); }

TEST(CountingBloomFilterTest, AddThenContains) {
  auto cbf = CountingBloomFilter::ForCapacity(100, 8.0);
  cbf.Add("alpha");
  EXPECT_TRUE(cbf.MayContain("alpha"));
  EXPECT_FALSE(cbf.MayContain("beta"));
  EXPECT_EQ(cbf.item_count(), 1u);
}

TEST(CountingBloomFilterTest, RemoveErasesMembership) {
  auto cbf = CountingBloomFilter::ForCapacity(100, 8.0);
  cbf.Add("alpha");
  ASSERT_TRUE(cbf.Remove("alpha").ok());
  EXPECT_FALSE(cbf.MayContain("alpha"));
  EXPECT_EQ(cbf.item_count(), 0u);
}

TEST(CountingBloomFilterTest, RemoveKeepsOtherMembers) {
  auto cbf = CountingBloomFilter::ForCapacity(1000, 10.0);
  for (int i = 0; i < 500; ++i) cbf.Add(Key(i));
  for (int i = 0; i < 250; ++i) ASSERT_TRUE(cbf.Remove(Key(i)).ok());
  // No false negatives on the survivors.
  for (int i = 250; i < 500; ++i) EXPECT_TRUE(cbf.MayContain(Key(i)));
}

TEST(CountingBloomFilterTest, DuplicateAddNeedsTwoRemoves) {
  auto cbf = CountingBloomFilter::ForCapacity(10, 16.0);
  cbf.Add("dup");
  cbf.Add("dup");
  ASSERT_TRUE(cbf.Remove("dup").ok());
  EXPECT_TRUE(cbf.MayContain("dup"));
  ASSERT_TRUE(cbf.Remove("dup").ok());
  EXPECT_FALSE(cbf.MayContain("dup"));
}

TEST(CountingBloomFilterTest, SaturationNeverCausesFalseNegatives) {
  // Tiny filter + many duplicates force every counter to 15.
  CountingBloomFilter cbf(32, 2, 1);
  for (int i = 0; i < 100; ++i) cbf.Add("hot");
  EXPECT_GT(cbf.overflow_count(), 0u);
  // Removing fewer times than added must keep membership.
  // Saturated counters refuse to decrement but the remove itself is OK.
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(cbf.Remove("hot").ok());
  EXPECT_TRUE(cbf.MayContain("hot"));
}

TEST(CountingBloomFilterTest, RemoveOfNonMemberRejectedAndUntouched) {
  auto cbf = CountingBloomFilter::ForCapacity(100, 12.0, 3);
  for (int i = 0; i < 50; ++i) cbf.Add(Key(i));
  const auto items_before = cbf.item_count();

  const Status s = cbf.Remove("never-added");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cbf.underflow_count(), 1u);
  // Check-first semantics: the failed remove decrements nothing, so every
  // member's counters are intact and item_count is unchanged.
  EXPECT_EQ(cbf.item_count(), items_before);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(cbf.MayContain(Key(i)));
}

TEST(CountingBloomFilterTest, RepeatedUnderflowNeverPlantsFalseNegatives) {
  // The IDBFA member-leave path can replay a stale deregistration many
  // times; each must be rejected whole, not partially applied.
  auto cbf = CountingBloomFilter::ForCapacity(200, 12.0, 7);
  for (int i = 0; i < 100; ++i) cbf.Add(Key(i));
  for (int r = 0; r < 20; ++r) {
    EXPECT_FALSE(cbf.Remove("stale-replica").ok());
  }
  EXPECT_EQ(cbf.underflow_count(), 20u);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(cbf.MayContain(Key(i)));
}

TEST(CountingBloomFilterTest, SuccessfulRemoveReturnsOk) {
  auto cbf = CountingBloomFilter::ForCapacity(10, 16.0);
  cbf.Add("present");
  EXPECT_TRUE(cbf.Remove("present").ok());
  EXPECT_EQ(cbf.underflow_count(), 0u);
}

TEST(CountingBloomFilterTest, SaturatedCountersPinnedThroughRemoves) {
  // Tiny filter + many duplicates force counters to 15. Removes succeed
  // (counters are positive) but saturated counters must stay pinned, so
  // the key remains visible no matter how many removes follow.
  CountingBloomFilter cbf(32, 2, 1);
  for (int i = 0; i < 100; ++i) cbf.Add("hot");
  EXPECT_GT(cbf.overflow_count(), 0u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(cbf.Remove("hot").ok());
  }
  EXPECT_TRUE(cbf.MayContain("hot"));
  EXPECT_EQ(cbf.underflow_count(), 0u);
}

TEST(CountingBloomFilterTest, ClearResets) {
  auto cbf = CountingBloomFilter::ForCapacity(50, 8.0);
  cbf.Add("x");
  EXPECT_FALSE(cbf.Remove("not-there").ok());
  cbf.Clear();
  EXPECT_FALSE(cbf.MayContain("x"));
  EXPECT_EQ(cbf.item_count(), 0u);
  EXPECT_EQ(cbf.overflow_count(), 0u);
  EXPECT_EQ(cbf.underflow_count(), 0u);
}

TEST(CountingBloomFilterTest, ToBloomFilterPreservesMembership) {
  auto cbf = CountingBloomFilter::ForCapacity(300, 10.0, 77);
  for (int i = 0; i < 300; ++i) cbf.Add(Key(i));
  const BloomFilter bf = cbf.ToBloomFilter();
  EXPECT_EQ(bf.num_bits(), cbf.num_counters());
  EXPECT_EQ(bf.k(), cbf.k());
  EXPECT_EQ(bf.seed(), cbf.seed());
  for (int i = 0; i < 300; ++i) EXPECT_TRUE(bf.MayContain(Key(i)));
}

TEST(CountingBloomFilterTest, ToBloomFilterAfterRemoval) {
  auto cbf = CountingBloomFilter::ForCapacity(100, 12.0);
  cbf.Add("keep");
  cbf.Add("drop");
  ASSERT_TRUE(cbf.Remove("drop").ok());
  const BloomFilter bf = cbf.ToBloomFilter();
  EXPECT_TRUE(bf.MayContain("keep"));
  EXPECT_FALSE(bf.MayContain("drop"));
}

TEST(CountingBloomFilterTest, MemoryIsHalfCounterCount) {
  CountingBloomFilter cbf(1024, 4);
  EXPECT_EQ(cbf.MemoryBytes(), 512u);  // two 4-bit counters per byte
}

TEST(CountingBloomFilterTest, SerializeRoundTrip) {
  auto cbf = CountingBloomFilter::ForCapacity(200, 8.0, 42);
  for (int i = 0; i < 150; ++i) cbf.Add(Key(i));
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(cbf.Remove(Key(i)).ok());

  ByteWriter w;
  cbf.Serialize(w);
  ByteReader r(w.data());
  auto decoded = CountingBloomFilter::Deserialize(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->item_count(), 100u);
  for (int i = 50; i < 150; ++i) EXPECT_TRUE(decoded->MayContain(Key(i)));
  // Removal must still work on the decoded filter.
  ASSERT_TRUE(decoded->Remove(Key(60)).ok());
  EXPECT_FALSE(decoded->MayContain(Key(60)));
}

TEST(CountingBloomFilterTest, DeserializeRejectsTruncation) {
  auto cbf = CountingBloomFilter::ForCapacity(100, 8.0);
  ByteWriter w;
  cbf.Serialize(w);
  auto data = w.Take();
  data.resize(data.size() - 10);
  ByteReader r(data);
  EXPECT_FALSE(CountingBloomFilter::Deserialize(r).ok());
}

TEST(CountingBloomFilterTest, OddCounterCountRoundsUp) {
  CountingBloomFilter cbf(33, 2);
  EXPECT_GE(cbf.num_counters(), 33u);
}

}  // namespace
}  // namespace ghba
