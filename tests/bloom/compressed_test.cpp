#include "bloom/compressed.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ghba {
namespace {

BloomFilter FilterWithKeys(std::uint64_t capacity, double bits, int keys,
                           std::uint64_t seed = 9) {
  auto bf = BloomFilter::ForCapacity(capacity, bits, seed);
  for (int i = 0; i < keys; ++i) bf.Add("key" + std::to_string(i));
  return bf;
}

TEST(CompressedFilterTest, SparseRoundTrip) {
  const auto bf = FilterWithKeys(100000, 16.0, 50);
  const auto wire = CompressFilter(bf);
  ByteReader in(wire);
  const auto decoded = DecompressFilter(in);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, bf);
  EXPECT_EQ(decoded->inserted_count(), bf.inserted_count());
  EXPECT_TRUE(in.AtEnd());
}

TEST(CompressedFilterTest, DenseRoundTrip) {
  // At design load the filter is ~50% full: raw must win, and decode must
  // still be exact.
  const auto bf = FilterWithKeys(2000, 10.0, 2000);
  const auto wire = CompressFilter(bf);
  ByteReader in(wire);
  const auto decoded = DecompressFilter(in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bf);
}

TEST(CompressedFilterTest, EmptyFilterTiny) {
  const BloomFilter bf(100000, 7, 3);
  const auto wire = CompressFilter(bf);
  // An empty 100k-bit filter is 12.5KB raw; gap coding needs only a header.
  EXPECT_LT(wire.size(), 64u);
  ByteReader in(wire);
  const auto decoded = DecompressFilter(in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bf);
}

TEST(CompressedFilterTest, SparseBeatsRawByALot) {
  const auto bf = FilterWithKeys(100000, 16.0, 100);
  const std::size_t raw_bytes = bf.MemoryBytes();
  const std::size_t wire_bytes = CompressedSizeBytes(bf);
  EXPECT_LT(wire_bytes * 10, raw_bytes)
      << "sparse filter should compress >10x";
}

TEST(CompressedFilterTest, DenseNeverRegressesBeyondHeader) {
  const auto bf = FilterWithKeys(2000, 10.0, 2000);
  ByteWriter raw;
  bf.Serialize(raw);
  EXPECT_LE(CompressedSizeBytes(bf), raw.size() + 1);
}

TEST(CompressedFilterTest, MembershipSurvivesCompression) {
  const auto bf = FilterWithKeys(10000, 12.0, 500);
  const auto wire = CompressFilter(bf);
  ByteReader in(wire);
  const auto decoded = DecompressFilter(in);
  ASSERT_TRUE(decoded.ok());
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(decoded->MayContain("key" + std::to_string(i))) << i;
  }
}

TEST(CompressedFilterTest, RejectsTruncation) {
  const auto bf = FilterWithKeys(10000, 16.0, 30);
  auto wire = CompressFilter(bf);
  wire.resize(wire.size() / 2);
  ByteReader in(wire);
  EXPECT_FALSE(DecompressFilter(in).ok());
}

TEST(CompressedFilterTest, RejectsBadMode) {
  const std::uint8_t bad[] = {42, 0, 0};
  ByteReader in(bad);
  EXPECT_EQ(DecompressFilter(in).status().code(), StatusCode::kCorruption);
}

TEST(CompressedFilterTest, RejectsGapBeyondFilter) {
  ByteWriter w;
  w.PutU8(1);      // gap mode
  w.PutU32(4);     // k
  w.PutU64(0);     // seed
  w.PutU64(1);     // inserted
  w.PutVarint(64); // num_bits
  w.PutVarint(1);  // popcount
  w.PutVarint(99); // first set bit beyond num_bits
  ByteReader in(w.data());
  EXPECT_EQ(DecompressFilter(in).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace ghba
