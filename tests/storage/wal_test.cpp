#include "storage/wal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace ghba {
namespace {

FileMetadata Md(std::uint64_t inode) {
  FileMetadata md;
  md.inode = inode;
  md.size_bytes = inode * 512;
  return md;
}

WalRecord Insert(std::uint64_t seq, const std::string& path) {
  WalRecord record;
  record.op = WalOp::kInsert;
  record.seq = seq;
  record.path = path;
  record.metadata = Md(seq);
  return record;
}

WalRecord Remove(std::uint64_t seq, const std::string& path) {
  WalRecord record;
  record.op = WalOp::kRemove;
  record.seq = seq;
  record.path = path;
  return record;
}

std::vector<std::uint8_t> FramesFor(const std::vector<WalRecord>& records) {
  std::vector<std::uint8_t> out;
  for (const auto& record : records) {
    const auto frame = EncodeWalRecordFrame(record);
    out.insert(out.end(), frame.begin(), frame.end());
  }
  return out;
}

/// Unique scratch directory per test, removed on teardown.
class WalFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/ghba_wal_" + info->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/" + "wal.log";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::string path_;
};

TEST(WalCodecTest, PayloadRoundTrip) {
  const auto record = Insert(7, "/a/b/c");
  ByteWriter w;
  EncodeWalRecordPayload(record, w);
  ByteReader r(w.data());
  const auto decoded = DecodeWalRecordPayload(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(*decoded, record);
}

TEST(WalCodecTest, PayloadOmitsMetadataForRemove) {
  ByteWriter with_md;
  EncodeWalRecordPayload(Insert(1, "/p"), with_md);
  ByteWriter without_md;
  EncodeWalRecordPayload(Remove(1, "/p"), without_md);
  EXPECT_LT(without_md.size(), with_md.size());

  ByteReader r(without_md.data());
  const auto decoded = DecodeWalRecordPayload(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, WalOp::kRemove);
}

TEST(WalCodecTest, RejectsBadOpAndLongPath) {
  ByteWriter w;
  EncodeWalRecordPayload(Insert(1, "/p"), w);
  auto bytes = w.Take();
  bytes[0] = 99;  // op out of range
  ByteReader r(bytes);
  EXPECT_FALSE(DecodeWalRecordPayload(r).ok());

  WalRecord long_path = Remove(1, std::string(kMaxWalPathBytes + 1, 'x'));
  ByteWriter w2;
  EncodeWalRecordPayload(long_path, w2);
  ByteReader r2(w2.data());
  EXPECT_FALSE(DecodeWalRecordPayload(r2).ok());
}

TEST(WalCodecTest, ReplicaInstallRoundTrip) {
  WalRecord record;
  record.op = WalOp::kReplicaInstall;
  record.seq = 11;
  record.owner = 4;
  record.filter_blob = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
  ByteWriter w;
  EncodeWalRecordPayload(record, w);
  ByteReader r(w.data());
  const auto decoded = DecodeWalRecordPayload(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(*decoded, record);
}

TEST(WalCodecTest, ReplicaDropRoundTrip) {
  WalRecord record;
  record.op = WalOp::kReplicaDrop;
  record.seq = 12;
  record.owner = 9;
  ByteWriter w;
  EncodeWalRecordPayload(record, w);
  ByteReader r(w.data());
  const auto decoded = DecodeWalRecordPayload(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(*decoded, record);
}

TEST(WalCodecTest, MembershipRoundTrip) {
  WalRecord record;
  record.op = WalOp::kMembership;
  record.seq = 13;
  record.epoch = 42;
  record.members = {0, 3, 7, 11};
  ByteWriter w;
  EncodeWalRecordPayload(record, w);
  ByteReader r(w.data());
  const auto decoded = DecodeWalRecordPayload(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(*decoded, record);
}

TEST(WalCodecTest, RejectsTruncatedReplicaBlob) {
  WalRecord record;
  record.op = WalOp::kReplicaInstall;
  record.seq = 1;
  record.owner = 2;
  record.filter_blob.assign(64, 0x5a);
  ByteWriter w;
  EncodeWalRecordPayload(record, w);
  auto bytes = w.Take();
  bytes.resize(bytes.size() - 16);  // blob length now overruns the record
  ByteReader r(bytes);
  EXPECT_FALSE(DecodeWalRecordPayload(r).ok());
}

TEST(WalCodecTest, RejectsTruncatedMemberList) {
  WalRecord record;
  record.op = WalOp::kMembership;
  record.seq = 1;
  record.epoch = 5;
  record.members = {1, 2, 3, 4, 5, 6, 7, 8};
  ByteWriter w;
  EncodeWalRecordPayload(record, w);
  auto bytes = w.Take();
  bytes.resize(bytes.size() - 6);  // member count now overruns the record
  ByteReader r(bytes);
  EXPECT_FALSE(DecodeWalRecordPayload(r).ok());
}

TEST(WalReplayTest, ReconfigurationRecordsReplayInline) {
  WalRecord install;
  install.op = WalOp::kReplicaInstall;
  install.seq = 2;
  install.owner = 3;
  install.filter_blob = {1, 2, 3};
  WalRecord membership;
  membership.op = WalOp::kMembership;
  membership.seq = 3;
  membership.epoch = 7;
  membership.members = {0, 3};
  WalRecord drop;
  drop.op = WalOp::kReplicaDrop;
  drop.seq = 4;
  drop.owner = 3;
  const auto buf =
      FramesFor({Insert(1, "/a"), install, membership, drop, Insert(5, "/b")});
  const auto replay = ReplayWalBuffer(buf, 0);
  ASSERT_EQ(replay.records.size(), 5u);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.records[1], install);
  EXPECT_EQ(replay.records[2], membership);
  EXPECT_EQ(replay.records[3], drop);
}

TEST(WalReplayTest, CleanLogReplaysEverything) {
  const auto buf = FramesFor({Insert(1, "/a"), Remove(2, "/a"), Insert(3, "/b")});
  const auto replay = ReplayWalBuffer(buf, /*from_seq=*/0);
  EXPECT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.scanned_records, 3u);
  EXPECT_EQ(replay.valid_bytes, buf.size());
  EXPECT_FALSE(replay.torn_tail);
}

TEST(WalReplayTest, FromSeqSkipsCheckpointedRecords) {
  const auto buf = FramesFor({Insert(1, "/a"), Insert(2, "/b"), Insert(3, "/c")});
  const auto replay = ReplayWalBuffer(buf, /*from_seq=*/2);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].seq, 3u);
  EXPECT_EQ(replay.scanned_records, 3u);
  EXPECT_EQ(replay.valid_bytes, buf.size());
}

TEST(WalReplayTest, TornTailMidRecordDropsOnlyTail) {
  auto buf = FramesFor({Insert(1, "/a"), Insert(2, "/b")});
  const auto clean = FramesFor({Insert(1, "/a")});
  buf.resize(buf.size() - 3);  // cut the second frame mid-payload
  const auto replay = ReplayWalBuffer(buf, 0);
  EXPECT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.valid_bytes, clean.size());
  EXPECT_TRUE(replay.torn_tail);
}

TEST(WalReplayTest, TornTailAtHeaderBoundary) {
  auto buf = FramesFor({Insert(1, "/a")});
  const auto clean_size = buf.size();
  buf.push_back(kWalMagic0);  // lone magic byte: torn header
  const auto replay = ReplayWalBuffer(buf, 0);
  EXPECT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.valid_bytes, clean_size);
  EXPECT_TRUE(replay.torn_tail);
}

TEST(WalReplayTest, CorruptCrcStopsReplay) {
  auto buf = FramesFor({Insert(1, "/a"), Insert(2, "/b")});
  buf.back() ^= 0xff;  // flip a payload byte of the second frame
  const auto replay = ReplayWalBuffer(buf, 0);
  EXPECT_EQ(replay.records.size(), 1u);
  EXPECT_TRUE(replay.torn_tail);
}

TEST(WalReplayTest, NonMonotonicSequenceStopsReplay) {
  // A sequence regression marks records that predate the last Reset.
  const auto buf = FramesFor({Insert(5, "/a"), Insert(6, "/b"), Insert(2, "/c")});
  const auto replay = ReplayWalBuffer(buf, 0);
  EXPECT_EQ(replay.records.size(), 2u);
  EXPECT_TRUE(replay.torn_tail);
}

TEST_F(WalFileTest, AppendCommitReadBack) {
  StorageOptions options;
  options.fsync = FsyncPolicy::kAlways;
  auto wal = WriteAheadLog::Open(path_, options, 0);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(Insert(1, "/a")).ok());
  ASSERT_TRUE(wal->Append(Insert(2, "/b")).ok());
  ASSERT_TRUE(wal->Commit().ok());

  const auto bytes = WriteAheadLog::ReadAll(path_);
  ASSERT_TRUE(bytes.ok());
  const auto replay = ReplayWalBuffer(*bytes, 0);
  EXPECT_EQ(replay.records.size(), 2u);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(wal->size_bytes(), bytes->size());
}

TEST_F(WalFileTest, MissingFileReadsAsEmptyLog) {
  const auto bytes = WriteAheadLog::ReadAll(dir_ + "/absent.log");
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(bytes->empty());
}

TEST_F(WalFileTest, FsyncAlwaysSyncsEveryCommit) {
  StorageOptions options;
  options.fsync = FsyncPolicy::kAlways;
  auto wal = WriteAheadLog::Open(path_, options, 0);
  ASSERT_TRUE(wal.ok());
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(wal->Append(Insert(seq, "/f")).ok());
    ASSERT_TRUE(wal->Commit().ok());
    EXPECT_EQ(wal->durable_bytes(), wal->size_bytes());
  }
  EXPECT_EQ(wal->fsyncs(), 3u);
  EXPECT_EQ(wal->appends(), 3u);
}

TEST_F(WalFileTest, FsyncIntervalGroupsCommits) {
  StorageOptions options;
  options.fsync = FsyncPolicy::kInterval;
  options.fsync_interval_appends = 3;
  auto wal = WriteAheadLog::Open(path_, options, 0);
  ASSERT_TRUE(wal.ok());
  for (std::uint64_t seq = 1; seq <= 2; ++seq) {
    ASSERT_TRUE(wal->Append(Insert(seq, "/f")).ok());
    ASSERT_TRUE(wal->Commit().ok());
  }
  EXPECT_EQ(wal->fsyncs(), 0u);
  EXPECT_EQ(wal->durable_bytes(), 0u);
  ASSERT_TRUE(wal->Append(Insert(3, "/f")).ok());
  ASSERT_TRUE(wal->Commit().ok());  // third append crosses the window
  EXPECT_EQ(wal->fsyncs(), 1u);
  EXPECT_EQ(wal->durable_bytes(), wal->size_bytes());
}

TEST_F(WalFileTest, FsyncNeverReportsHonestDurableBytes) {
  StorageOptions options;
  options.fsync = FsyncPolicy::kNever;
  auto wal = WriteAheadLog::Open(path_, options, 0);
  ASSERT_TRUE(wal.ok());
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE(wal->Append(Insert(seq, "/f")).ok());
    ASSERT_TRUE(wal->Commit().ok());
  }
  // Nothing was ever forced out: the durable high-water mark stays at 0,
  // which is exactly the bounded-not-silent loss contract.
  EXPECT_EQ(wal->fsyncs(), 0u);
  EXPECT_EQ(wal->durable_bytes(), 0u);
  EXPECT_GT(wal->size_bytes(), 0u);

  ASSERT_TRUE(wal->Sync().ok());  // explicit barrier still works
  EXPECT_EQ(wal->durable_bytes(), wal->size_bytes());
}

TEST_F(WalFileTest, OpenAtOffsetTruncatesTornTail) {
  StorageOptions options;
  {
    auto wal = WriteAheadLog::Open(path_, options, 0);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Insert(1, "/a")).ok());
    ASSERT_TRUE(wal->Append(Insert(2, "/b")).ok());
    ASSERT_TRUE(wal->Commit().ok());
  }
  // Simulate a torn tail: append garbage, then reopen at the clean prefix.
  auto bytes = WriteAheadLog::ReadAll(path_);
  ASSERT_TRUE(bytes.ok());
  const auto replay = ReplayWalBuffer(*bytes, 0);
  {
    std::filesystem::resize_file(path_, bytes->size() + 7);
    auto wal = WriteAheadLog::Open(path_, options, replay.valid_bytes);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Insert(3, "/c")).ok());
    ASSERT_TRUE(wal->Commit().ok());
  }
  const auto after = WriteAheadLog::ReadAll(path_);
  ASSERT_TRUE(after.ok());
  const auto replay2 = ReplayWalBuffer(*after, 0);
  EXPECT_EQ(replay2.records.size(), 3u);
  EXPECT_FALSE(replay2.torn_tail);
}

TEST_F(WalFileTest, ResetEmptiesTheLog) {
  StorageOptions options;
  auto wal = WriteAheadLog::Open(path_, options, 0);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(Insert(1, "/a")).ok());
  ASSERT_TRUE(wal->Commit().ok());
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->size_bytes(), 0u);
  EXPECT_EQ(wal->durable_bytes(), 0u);

  const auto bytes = WriteAheadLog::ReadAll(path_);
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(bytes->empty());
}

}  // namespace
}  // namespace ghba
