#include "storage/recovery.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bloom/compressed.hpp"
#include "storage/checkpoint.hpp"
#include "storage/engine.hpp"

namespace ghba {
namespace {

FileMetadata Md(std::uint64_t inode) {
  FileMetadata md;
  md.inode = inode;
  md.size_bytes = inode << 9;
  return md;
}

CountingBloomFilter Template() {
  return CountingBloomFilter::ForCapacity(256, 8.0, /*seed=*/11);
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/ghba_rec_" + info->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    wal_path_ = dir_ + "/" + kWalFileName;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  StorageOptions Options(FsyncPolicy fsync = FsyncPolicy::kAlways) {
    StorageOptions options;
    options.data_dir = dir_;
    options.fsync = fsync;
    return options;
  }

  /// Open an engine, log `count` inserts named /f<base+i>, close it.
  void RunInserts(const StorageOptions& options, std::uint64_t base,
                  std::uint64_t count) {
    auto engine = StorageEngine::Open(options, Template(), nullptr);
    ASSERT_TRUE(engine.ok());
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto path = "/f" + std::to_string(base + i);
      ASSERT_TRUE((*engine)->LogInsert(path, Md(base + i)).ok());
    }
  }

  std::string dir_;
  std::string wal_path_;
};

TEST_F(RecoveryTest, EmptyDirRecoversEmptyState) {
  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->store.empty());
  EXPECT_EQ(state->next_seq, 1u);
  EXPECT_EQ(state->replay_records, 0u);
  EXPECT_FALSE(state->torn_tail);
  EXPECT_TRUE(state->filter_matched);
}

TEST_F(RecoveryTest, WalTailReplaysIntoStoreAndFilter) {
  RunInserts(Options(), 0, 10);

  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->store.size(), 10u);
  EXPECT_EQ(state->replay_records, 10u);
  EXPECT_EQ(state->next_seq, 11u);
  EXPECT_FALSE(state->torn_tail);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto path = "/f" + std::to_string(i);
    EXPECT_TRUE(state->store.Contains(path));
    EXPECT_TRUE(state->filter.MayContain(path));
  }
  // The L4-exactness invariant: the replayed filter flattens to the same
  // bits as one rebuilt from scratch over the recovered store.
  EXPECT_TRUE(state->filter_matched);
  auto rebuilt = Template();
  state->store.ForEach(
      [&](const std::string& path, const FileMetadata&) { rebuilt.Add(path); });
  EXPECT_TRUE(state->filter.ToBloomFilter() == rebuilt.ToBloomFilter());
}

TEST_F(RecoveryTest, RemovesAndUpdatesReplayInOrder) {
  {
    auto engine = StorageEngine::Open(Options(), Template(), nullptr);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->LogInsert("/a", Md(1)).ok());
    ASSERT_TRUE((*engine)->LogInsert("/b", Md(2)).ok());
    ASSERT_TRUE((*engine)->LogUpdate("/a", Md(7)).ok());
    ASSERT_TRUE((*engine)->LogRemove("/b").ok());
  }
  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->store.size(), 1u);
  EXPECT_EQ(state->store.Lookup("/a")->inode, 7u);
  EXPECT_FALSE(state->store.Contains("/b"));
  EXPECT_FALSE(state->filter.MayContain("/b"));
  EXPECT_TRUE(state->filter_matched);
}

TEST_F(RecoveryTest, TornTailIsDetectedAndDropped) {
  RunInserts(Options(), 0, 5);
  // Append garbage: a power cut mid-append leaves a torn frame.
  {
    std::filesystem::resize_file(wal_path_,
                                 std::filesystem::file_size(wal_path_) + 6);
  }
  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->torn_tail);
  EXPECT_EQ(state->store.size(), 5u);
  EXPECT_EQ(state->next_seq, 6u);
}

TEST_F(RecoveryTest, CheckpointPlusTailRecoversBoth) {
  {
    auto engine = StorageEngine::Open(Options(), Template(), nullptr);
    ASSERT_TRUE(engine.ok());
    MetadataStore store;
    auto filter = Template();
    for (std::uint64_t i = 0; i < 6; ++i) {
      const auto path = "/ck" + std::to_string(i);
      ASSERT_TRUE(store.Insert(path, Md(i)).ok());
      filter.Add(path);
      ASSERT_TRUE((*engine)->LogInsert(path, Md(i)).ok());
    }
    auto replica = BloomFilter::ForCapacity(64, 8.0, /*seed=*/3);
    replica.Add("/remote");
    std::vector<std::pair<MdsId, BloomFilter>> replicas;
    replicas.emplace_back(9, replica);
    ASSERT_TRUE((*engine)->WriteCheckpoint(store, filter, replicas).ok());
    EXPECT_EQ((*engine)->wal().size_bytes(), 0u);  // log truncated

    // Tail records past the checkpoint.
    ASSERT_TRUE((*engine)->LogInsert("/tail", Md(100)).ok());
  }

  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->store.size(), 7u);
  EXPECT_EQ(state->replay_records, 1u);  // only /tail came from the WAL
  EXPECT_TRUE(state->store.Contains("/ck3"));
  EXPECT_TRUE(state->store.Contains("/tail"));
  ASSERT_EQ(state->replicas.size(), 1u);
  EXPECT_EQ(state->replicas[0].first, 9u);
  EXPECT_TRUE(state->replicas[0].second.MayContain("/remote"));
  EXPECT_TRUE(state->filter_matched);
}

TEST_F(RecoveryTest, FilterlessCheckpointTriggersRebuild) {
  CheckpointState snapshot;
  snapshot.wal_seq = 2;
  snapshot.files.emplace_back("/a", Md(1));
  snapshot.files.emplace_back("/b", Md(2));
  snapshot.has_filter = false;
  ASSERT_TRUE(WriteCheckpointFile(dir_, snapshot, 2).ok());

  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->filter_rebuilt);
  EXPECT_TRUE(state->filter_matched);
  EXPECT_TRUE(state->filter.MayContain("/a"));
  EXPECT_TRUE(state->filter.MayContain("/b"));
  EXPECT_EQ(state->next_seq, 3u);
}

TEST_F(RecoveryTest, GeometryDriftTriggersRebuild) {
  CheckpointState snapshot;
  snapshot.wal_seq = 1;
  snapshot.files.emplace_back("/a", Md(1));
  snapshot.has_filter = true;
  auto drifted = CountingBloomFilter::ForCapacity(16, 4.0, /*seed=*/99);
  drifted.Add("/a");
  snapshot.filter = std::move(drifted);
  ASSERT_TRUE(WriteCheckpointFile(dir_, snapshot, 2).ok());

  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->filter_rebuilt);
  // The rebuilt filter has the *configured* geometry, not the drifted one.
  EXPECT_EQ(state->filter.num_counters(), Template().num_counters());
  EXPECT_TRUE(state->filter.MayContain("/a"));
}

TEST_F(RecoveryTest, CorruptNewestCheckpointFallsBack) {
  CheckpointState old_snapshot;
  old_snapshot.wal_seq = 0;
  old_snapshot.files.emplace_back("/old", Md(1));
  ASSERT_TRUE(WriteCheckpointFile(dir_, old_snapshot, 3).ok());

  CheckpointState new_snapshot;
  new_snapshot.wal_seq = 5;
  new_snapshot.files.emplace_back("/new", Md(2));
  const auto path = WriteCheckpointFile(dir_, new_snapshot, 3);
  ASSERT_TRUE(path.ok());
  {
    // Corrupt the newest snapshot in place.
    auto bytes = *WriteAheadLog::ReadAll(*path);
    bytes[bytes.size() / 2] ^= 0xff;
    std::ofstream f(*path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }

  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->used_fallback_checkpoint);
  EXPECT_TRUE(state->store.Contains("/old"));
  EXPECT_FALSE(state->store.Contains("/new"));
}

TEST_F(RecoveryTest, FsyncNeverLosesOnlyTheUnsyncedTail) {
  // Phase 1: durable inserts (fsync=always).
  RunInserts(Options(FsyncPolicy::kAlways), 0, 3);

  // Phase 2: fsync=never inserts on top. Reopening at a non-zero offset
  // syncs once, so the durable high-water mark covers exactly phase 1.
  std::uint64_t durable = 0;
  {
    auto engine = StorageEngine::Open(Options(FsyncPolicy::kNever),
                                      Template(), nullptr);
    ASSERT_TRUE(engine.ok());
    for (std::uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          (*engine)->LogInsert("/lost" + std::to_string(i), Md(100 + i)).ok());
    }
    durable = (*engine)->wal().durable_bytes();
    EXPECT_LT(durable, (*engine)->wal().size_bytes());
  }

  // Power cut: everything past the last fsync evaporates.
  std::filesystem::resize_file(wal_path_, durable);

  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  // Bounded loss, not silent: the durable prefix survives in full, and the
  // loss is exactly the records acked after the final fsync.
  EXPECT_EQ(state->store.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(state->store.Contains("/f" + std::to_string(i)));
  }
  EXPECT_FALSE(state->store.Contains("/lost0"));
}

TEST_F(RecoveryTest, EngineReopenRestoresStateAndInfo) {
  RunInserts(Options(), 0, 4);

  auto engine = StorageEngine::Open(Options(), Template(), nullptr);
  ASSERT_TRUE(engine.ok());
  const auto& info = (*engine)->recovery_info();
  EXPECT_EQ(info.recovered_files, 4u);
  EXPECT_EQ(info.replay_records, 4u);
  EXPECT_EQ(info.wal_seq, 4u);
  EXPECT_FALSE(info.torn_tail);
  EXPECT_TRUE(info.filter_matched);
  EXPECT_EQ((*engine)->next_seq(), 5u);

  auto recovered = (*engine)->TakeRecovered();
  EXPECT_EQ(recovered.store.size(), 4u);

  // New appends continue the sequence; a further reopen sees everything.
  ASSERT_TRUE((*engine)->LogInsert("/f4", Md(4)).ok());
  engine->reset();
  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->store.size(), 5u);
  EXPECT_EQ(state->next_seq, 6u);
}

TEST_F(RecoveryTest, EngineCheckpointsWhenWalOutgrowsThreshold) {
  auto options = Options();
  options.checkpoint_wal_bytes = 4096;
  auto engine = StorageEngine::Open(options, Template(), nullptr);
  ASSERT_TRUE(engine.ok());

  MetadataStore store;
  auto filter = Template();
  bool checkpointed = false;
  for (std::uint64_t i = 0; i < 200 && !checkpointed; ++i) {
    const auto path = "/grow" + std::to_string(i);
    ASSERT_TRUE(store.Insert(path, Md(i)).ok());
    filter.Add(path);
    ASSERT_TRUE((*engine)->LogInsert(path, Md(i)).ok());
    auto wrote = (*engine)->MaybeCheckpoint(store, filter, {});
    ASSERT_TRUE(wrote.ok());
    checkpointed = *wrote;
  }
  ASSERT_TRUE(checkpointed);
  EXPECT_EQ((*engine)->wal().size_bytes(), 0u);
  engine->reset();

  // Everything lives in the checkpoint now; replay has nothing to do.
  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->store.size(), store.size());
  EXPECT_EQ(state->replay_records, 0u);
}

TEST_F(RecoveryTest, ReplicaRecordsReplayIntoReplicaArray) {
  auto replica = BloomFilter::ForCapacity(64, 8.0, /*seed=*/3);
  replica.Add("/remote");
  const auto blob = CompressFilter(replica);
  {
    auto engine = StorageEngine::Open(Options(), Template(), nullptr);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->LogReplicaInstall(4, blob).ok());
    ASSERT_TRUE((*engine)->LogReplicaInstall(8, blob).ok());
    ASSERT_TRUE((*engine)->LogReplicaDrop(8).ok());
  }
  // Install-then-drop nets out to exactly one surviving replica: the
  // placement a crash between migration phases recovers to is always one
  // of the two journaled endpoints, never a half-state.
  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state->replicas.size(), 1u);
  EXPECT_EQ(state->replicas[0].first, 4u);
  EXPECT_TRUE(state->replicas[0].second.MayContain("/remote"));
}

TEST_F(RecoveryTest, ReinstallOverwritesExistingReplica) {
  auto v1 = BloomFilter::ForCapacity(64, 8.0, /*seed=*/3);
  v1.Add("/stale");
  auto v2 = BloomFilter::ForCapacity(64, 8.0, /*seed=*/3);
  v2.Add("/fresh");
  {
    auto engine = StorageEngine::Open(Options(), Template(), nullptr);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->LogReplicaInstall(2, CompressFilter(v1)).ok());
    ASSERT_TRUE((*engine)->LogReplicaInstall(2, CompressFilter(v2)).ok());
  }
  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state->replicas.size(), 1u);
  EXPECT_TRUE(state->replicas[0].second.MayContain("/fresh"));
  EXPECT_FALSE(state->replicas[0].second.MayContain("/stale"));
}

TEST_F(RecoveryTest, MembershipRecordsRecoverLatestView) {
  {
    auto engine = StorageEngine::Open(Options(), Template(), nullptr);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->LogMembership(3, {0, 1}).ok());
    ASSERT_TRUE((*engine)->LogMembership(7, {0, 1, 2}).ok());
    EXPECT_EQ((*engine)->view_epoch(), 7u);
  }
  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->epoch, 7u);
  EXPECT_EQ(state->members, (std::vector<MdsId>{0, 1, 2}));
}

TEST_F(RecoveryTest, CheckpointCarriesClusterView) {
  {
    auto engine = StorageEngine::Open(Options(), Template(), nullptr);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->LogMembership(5, {1, 2}).ok());
    MetadataStore store;
    ASSERT_TRUE((*engine)->WriteCheckpoint(store, Template(), {}).ok());
    EXPECT_EQ((*engine)->wal().size_bytes(), 0u);  // view lives on anyway
  }
  auto engine = StorageEngine::Open(Options(), Template(), nullptr);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->recovery_info().epoch, 5u);
  EXPECT_EQ((*engine)->view_epoch(), 5u);
  EXPECT_EQ((*engine)->view_members(), (std::vector<MdsId>{1, 2}));
}

TEST_F(RecoveryTest, OversizedReplicaBlobIsSkippedNotTorn) {
  // A blob too large for one WAL frame must not be journaled: it would
  // read back as a torn tail and take every later record with it.
  const std::vector<std::uint8_t> huge(kMaxWalRecordBytes, 0xab);
  {
    auto engine = StorageEngine::Open(Options(), Template(), nullptr);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->LogReplicaInstall(3, huge).ok());  // skipped, Ok
    ASSERT_TRUE((*engine)->LogInsert("/after", Md(1)).ok());
  }
  const auto state = RecoverState(dir_, Template());
  ASSERT_TRUE(state.ok());
  EXPECT_FALSE(state->torn_tail);
  EXPECT_TRUE(state->replicas.empty());
  EXPECT_TRUE(state->store.Contains("/after"));
}

TEST_F(RecoveryTest, ToStoreMutationMapsEveryOp) {
  WalRecord record;
  record.op = WalOp::kInsert;
  record.path = "/p";
  record.metadata = Md(1);
  EXPECT_EQ(ToStoreMutation(record).kind, StoreMutation::Kind::kInsert);
  record.op = WalOp::kUpdate;
  EXPECT_EQ(ToStoreMutation(record).kind, StoreMutation::Kind::kUpdate);
  record.op = WalOp::kRemove;
  EXPECT_EQ(ToStoreMutation(record).kind, StoreMutation::Kind::kRemove);
  record.op = WalOp::kClear;
  EXPECT_EQ(ToStoreMutation(record).kind, StoreMutation::Kind::kClear);
}

}  // namespace
}  // namespace ghba
