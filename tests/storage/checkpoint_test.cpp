#include "storage/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace ghba {
namespace {

FileMetadata Md(std::uint64_t inode) {
  FileMetadata md;
  md.inode = inode;
  md.mode = 0644;
  md.size_bytes = inode << 10;
  return md;
}

CheckpointState SampleState(std::uint64_t wal_seq) {
  CheckpointState state;
  state.wal_seq = wal_seq;
  state.files.emplace_back("/a/b", Md(1));
  state.files.emplace_back("/c", Md(2));
  state.has_filter = true;
  auto filter = CountingBloomFilter::ForCapacity(64, 8.0, /*seed=*/5);
  filter.Add("/a/b");
  filter.Add("/c");
  state.filter = std::move(filter);
  auto replica = BloomFilter::ForCapacity(64, 8.0, /*seed=*/7);
  replica.Add("/x");
  state.replicas.emplace_back(3, std::move(replica));
  return state;
}

class CheckpointDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/ghba_ckpt_" + info->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST(CheckpointCodecTest, RoundTrip) {
  const auto state = SampleState(42);
  const auto bytes = EncodeCheckpoint(state);
  const auto decoded = DecodeCheckpoint(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->wal_seq, 42u);
  ASSERT_EQ(decoded->files.size(), 2u);
  EXPECT_EQ(decoded->files[0].first, "/a/b");
  EXPECT_EQ(decoded->files[0].second, state.files[0].second);
  ASSERT_TRUE(decoded->has_filter);
  EXPECT_TRUE(decoded->filter.MayContain("/a/b"));
  EXPECT_EQ(decoded->filter.num_counters(), state.filter.num_counters());
  ASSERT_EQ(decoded->replicas.size(), 1u);
  EXPECT_EQ(decoded->replicas[0].first, 3u);
  EXPECT_EQ(decoded->replicas[0].second, state.replicas[0].second);
}

TEST(CheckpointCodecTest, MinimalStateRoundTrips) {
  CheckpointState state;  // no files, no filter, no replicas
  const auto decoded = DecodeCheckpoint(EncodeCheckpoint(state));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->wal_seq, 0u);
  EXPECT_TRUE(decoded->files.empty());
  EXPECT_FALSE(decoded->has_filter);
  EXPECT_TRUE(decoded->replicas.empty());
}

TEST(CheckpointCodecTest, ClusterViewRoundTrips) {
  auto state = SampleState(42);
  state.epoch = 17;
  state.members = {0, 2, 5};
  const auto decoded = DecodeCheckpoint(EncodeCheckpoint(state));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->epoch, 17u);
  EXPECT_EQ(decoded->members, (std::vector<MdsId>{0, 2, 5}));
}

TEST(CheckpointCodecTest, VersionOneFileDecodesWithEmptyView) {
  // A checkpoint written before the cluster view existed: same body minus
  // the trailing v2 view ([epoch u64][member count varint]) and v3 txn
  // sections ([pending varint][decision varint]), header version 1. Build
  // it by hand so the current decoder is exercised against real old bytes.
  const auto v2 = EncodeCheckpoint(SampleState(9));
  const std::size_t view_bytes = sizeof(std::uint64_t) + 1;  // epoch + varint 0
  const std::size_t txn_bytes = 2;  // two empty varint counts
  const std::size_t v1_body_len =
      v2.size() - kCheckpointHeaderBytes - view_bytes - txn_bytes;
  ByteWriter w;
  w.PutU8(kCheckpointMagic0);
  w.PutU8(kCheckpointMagic1);
  w.PutU16(1);  // pre-view version
  w.PutU64(9);  // wal_seq
  w.PutU32(static_cast<std::uint32_t>(v1_body_len));
  w.PutU32(Crc32(v2.data() + kCheckpointHeaderBytes, v1_body_len));
  for (std::size_t i = 0; i < v1_body_len; ++i) {
    w.PutU8(v2[kCheckpointHeaderBytes + i]);
  }
  const auto decoded = DecodeCheckpoint(w.data());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->wal_seq, 9u);
  EXPECT_EQ(decoded->files.size(), 2u);
  EXPECT_EQ(decoded->epoch, 0u);
  EXPECT_TRUE(decoded->members.empty());
}

TEST(CheckpointCodecTest, TxnStateRoundTrips) {
  auto state = SampleState(7);
  TxnPendingOp pending;
  pending.txn_id = 77;
  pending.subop = TxnSubOp::kInsert;
  pending.path = "/txn/dst";
  pending.metadata = Md(9);
  pending.coordinator = 2;
  pending.participants = {2, 5};
  state.txn_pending.push_back(pending);
  TxnPendingOp remove;
  remove.txn_id = 78;
  remove.subop = TxnSubOp::kRemove;  // no metadata on the wire
  remove.path = "/txn/src";
  remove.coordinator = 4;
  remove.participants = {4};
  state.txn_pending.push_back(remove);
  state.txn_decisions.push_back({76, TxnCoordState::kCommitted});
  state.txn_decisions.push_back({77, TxnCoordState::kBegun});
  const auto decoded = DecodeCheckpoint(EncodeCheckpoint(state));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->txn_pending, state.txn_pending);
  EXPECT_EQ(decoded->txn_decisions, state.txn_decisions);
}

TEST(CheckpointCodecTest, VersionTwoFileDecodesWithEmptyTxnState) {
  // A checkpoint written before the txn sections existed: same body minus
  // the two trailing varint counts, header version 2.
  auto state = SampleState(11);
  state.epoch = 4;
  state.members = {0, 1};
  const auto v3 = EncodeCheckpoint(state);
  const std::size_t v2_body_len = v3.size() - kCheckpointHeaderBytes - 2;
  ByteWriter w;
  w.PutU8(kCheckpointMagic0);
  w.PutU8(kCheckpointMagic1);
  w.PutU16(2);  // pre-txn version
  w.PutU64(11);  // wal_seq
  w.PutU32(static_cast<std::uint32_t>(v2_body_len));
  w.PutU32(Crc32(v3.data() + kCheckpointHeaderBytes, v2_body_len));
  for (std::size_t i = 0; i < v2_body_len; ++i) {
    w.PutU8(v3[kCheckpointHeaderBytes + i]);
  }
  const auto decoded = DecodeCheckpoint(w.data());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->epoch, 4u);
  EXPECT_EQ(decoded->members, (std::vector<MdsId>{0, 1}));
  EXPECT_TRUE(decoded->txn_pending.empty());
  EXPECT_TRUE(decoded->txn_decisions.empty());
}

TEST(CheckpointCodecTest, RejectsAbsurdMemberCount) {
  auto state = SampleState(3);
  state.epoch = 1;
  auto bytes = EncodeCheckpoint(state);
  // The last body byte is now the v3 txn-decision count varint; claim a
  // count far past the remaining bytes and fix up the CRC. (The member
  // count has the same remaining-bytes guard.)
  bytes.back() = 0x7f;
  const std::size_t body_len = bytes.size() - kCheckpointHeaderBytes;
  const std::uint32_t crc =
      Crc32(bytes.data() + kCheckpointHeaderBytes, body_len);
  bytes[16] = static_cast<std::uint8_t>(crc);
  bytes[17] = static_cast<std::uint8_t>(crc >> 8);
  bytes[18] = static_cast<std::uint8_t>(crc >> 16);
  bytes[19] = static_cast<std::uint8_t>(crc >> 24);
  EXPECT_FALSE(DecodeCheckpoint(bytes).ok());
}

TEST(CheckpointCodecTest, RejectsCorruptBody) {
  auto bytes = EncodeCheckpoint(SampleState(1));
  bytes.back() ^= 0x01;  // body CRC mismatch
  EXPECT_FALSE(DecodeCheckpoint(bytes).ok());
}

TEST(CheckpointCodecTest, RejectsBadMagicVersionAndLength) {
  const auto good = EncodeCheckpoint(SampleState(1));
  {
    auto bytes = good;
    bytes[0] = 0x00;
    EXPECT_FALSE(DecodeCheckpoint(bytes).ok());
  }
  {
    auto bytes = good;
    bytes[2] = 0xee;  // version
    EXPECT_FALSE(DecodeCheckpoint(bytes).ok());
  }
  {
    auto bytes = good;
    bytes.resize(bytes.size() - 1);  // body shorter than header claims
    EXPECT_FALSE(DecodeCheckpoint(bytes).ok());
  }
}

TEST(CheckpointCodecTest, HeaderCapsBodyLengthBeforeAllocation) {
  ByteWriter w;
  w.PutU8(kCheckpointMagic0);
  w.PutU8(kCheckpointMagic1);
  w.PutU16(kCheckpointVersion);
  w.PutU64(1);
  w.PutU32(0xffffffff);  // absurd body_len
  w.PutU32(0);
  ByteReader r(w.data());
  EXPECT_FALSE(DecodeCheckpointHeader(r).ok());
}

TEST(CheckpointCodecTest, FileNamesSortByWalSeq) {
  EXPECT_LT(CheckpointFileName(9), CheckpointFileName(10));
  EXPECT_LT(CheckpointFileName(99), CheckpointFileName(1000));
}

TEST_F(CheckpointDirTest, WriteThenLoadNewest) {
  ASSERT_TRUE(WriteCheckpointFile(dir_, SampleState(10), /*keep=*/2).ok());
  ASSERT_TRUE(WriteCheckpointFile(dir_, SampleState(20), /*keep=*/2).ok());

  const auto loaded = LoadNewestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->state.wal_seq, 20u);
  EXPECT_FALSE(loaded->used_fallback);
  EXPECT_FALSE(loaded->file.empty());
}

TEST_F(CheckpointDirTest, EmptyDirLoadsEmptyState) {
  const auto loaded = LoadNewestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->state.wal_seq, 0u);
  EXPECT_TRUE(loaded->file.empty());
  EXPECT_FALSE(loaded->used_fallback);
}

TEST_F(CheckpointDirTest, CorruptNewestFallsBackToOlder) {
  ASSERT_TRUE(WriteCheckpointFile(dir_, SampleState(10), 2).ok());
  const auto newest = WriteCheckpointFile(dir_, SampleState(20), 2);
  ASSERT_TRUE(newest.ok());

  // Flip one byte in the newest file (half-written before a crash).
  {
    std::fstream f(*newest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    const char garbage = '\xff';
    f.write(&garbage, 1);
  }
  const auto loaded = LoadNewestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->state.wal_seq, 10u);
  EXPECT_TRUE(loaded->used_fallback);
}

TEST_F(CheckpointDirTest, PruneKeepsOnlyNewest) {
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE(WriteCheckpointFile(dir_, SampleState(seq), /*keep=*/2).ok());
  }
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    (void)entry;
    ++count;
  }
  EXPECT_EQ(count, 2u);
  const auto loaded = LoadNewestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->state.wal_seq, 5u);
}

TEST_F(CheckpointDirTest, TempFilesAreIgnoredByLoader) {
  ASSERT_TRUE(WriteCheckpointFile(dir_, SampleState(7), 2).ok());
  {
    std::ofstream f(dir_ + "/" + CheckpointFileName(99) + ".tmp",
                    std::ios::binary);
    f << "unfinished";
  }
  const auto loaded = LoadNewestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->state.wal_seq, 7u);
}

}  // namespace
}  // namespace ghba
