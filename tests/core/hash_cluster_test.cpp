#include "core/hash_cluster.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

ClusterConfig SmallConfig(std::uint32_t n = 8) {
  ClusterConfig c;
  c.num_mds = n;
  c.expected_files_per_mds = 1000;
  c.seed = 3;
  return c;
}

FileMetadata Md(std::uint64_t inode = 1) {
  FileMetadata md;
  md.inode = inode;
  return md;
}

class HashClusterTest : public ::testing::Test {
 protected:
  HashClusterTest() : cluster_(SmallConfig()) {}

  void Populate(int count) {
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(
          cluster_.CreateFile("/h/f" + std::to_string(i), Md(i), 0).ok());
    }
  }

  HashPlacementCluster cluster_;
};

TEST_F(HashClusterTest, DeterministicSingleHopLookup) {
  Populate(200);
  for (int i = 0; i < 200; ++i) {
    const std::string path = "/h/f" + std::to_string(i);
    const auto r = cluster_.Lookup(path, 0);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.home, cluster_.HomeOf(path));
    EXPECT_EQ(r.messages, 2u);  // one request, one response
  }
  EXPECT_TRUE(cluster_.CheckInvariants().ok());
}

TEST_F(HashClusterTest, MissIsCheapToo) {
  Populate(10);
  const auto r = cluster_.Lookup("/absent", 0);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.messages, 2u);
}

TEST_F(HashClusterTest, LoadRoughlyBalanced) {
  Populate(4000);
  for (const MdsId id : cluster_.alive()) {
    // 4000 files over 8 MDSs -> 500 each; allow generous variation.
    EXPECT_NEAR(static_cast<double>(cluster_.node(id).file_count()), 500.0,
                150.0);
  }
}

TEST_F(HashClusterTest, AddMdsMigratesProportionally) {
  Populate(4000);
  ReconfigReport rep;
  ASSERT_TRUE(cluster_.AddMds(&rep).ok());
  EXPECT_TRUE(cluster_.CheckInvariants().ok());
  // Modular hashing reshuffles ~ N/(N+1) of all files — the Table 1
  // "large migration cost". Must be a big fraction of the 4000 files.
  EXPECT_GT(rep.files_migrated, 2000u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(cluster_.Lookup("/h/f" + std::to_string(i), 0).found);
  }
}

TEST_F(HashClusterTest, RemoveMdsMigratesAndServes) {
  Populate(1000);
  ReconfigReport rep;
  ASSERT_TRUE(cluster_.RemoveMds(cluster_.alive().front(), &rep).ok());
  EXPECT_TRUE(cluster_.CheckInvariants().ok());
  EXPECT_GT(rep.files_migrated, 0u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(cluster_.Lookup("/h/f" + std::to_string(i), 0).found) << i;
  }
}

TEST_F(HashClusterTest, NoLookupState) {
  Populate(100);
  EXPECT_EQ(cluster_.LookupStateBytes(cluster_.alive().front()), 0u);
}

TEST_F(HashClusterTest, UnlinkWorks) {
  Populate(10);
  ASSERT_TRUE(cluster_.UnlinkFile("/h/f3", 0).ok());
  EXPECT_FALSE(cluster_.Lookup("/h/f3", 0).found);
  EXPECT_EQ(cluster_.UnlinkFile("/h/f3", 0).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ghba
