#include "core/hba_cluster.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

ClusterConfig SmallConfig(std::uint32_t n = 10) {
  ClusterConfig c;
  c.num_mds = n;
  c.expected_files_per_mds = 2000;
  c.lru_capacity = 256;
  c.publish_after_mutations = 16;
  c.memory_budget_bytes = 64ULL << 20;
  c.seed = 9;
  return c;
}

FileMetadata Md(std::uint64_t inode = 1) {
  FileMetadata md;
  md.inode = inode;
  return md;
}

class HbaClusterTest : public ::testing::Test {
 protected:
  HbaClusterTest() : cluster_(SmallConfig()) {}

  void PopulateFiles(int count) {
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(
          cluster_.CreateFile("/hba/f" + std::to_string(i), Md(i), 0).ok());
    }
    cluster_.FlushReplicas(0);
    cluster_.metrics().Reset();
  }

  HbaCluster cluster_;
};

TEST_F(HbaClusterTest, FullMeshInvariant) {
  EXPECT_TRUE(cluster_.CheckInvariants().ok());
  for (const MdsId id : cluster_.alive()) {
    EXPECT_EQ(cluster_.node(id).segment().size(), 9u);
  }
}

TEST_F(HbaClusterTest, LookupResolvesLocallyWithFreshReplicas) {
  PopulateFiles(400);
  int local = 0;
  for (int i = 0; i < 400; ++i) {
    const auto r = cluster_.Lookup("/hba/f" + std::to_string(i), 0);
    ASSERT_TRUE(r.found) << i;
    local += (r.served_level <= 2);
  }
  // Every MDS holds the full image: almost everything resolves at L1/L2.
  EXPECT_GT(local, 380);
}

TEST_F(HbaClusterTest, MissConcludedByGlobalMulticast) {
  PopulateFiles(50);
  const auto r = cluster_.Lookup("/absent", 0);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.served_level, 4);
}

TEST_F(HbaClusterTest, PublishBroadcastsToAll) {
  PopulateFiles(10);
  const std::uint64_t msgs_before = cluster_.metrics().update_messages;
  cluster_.PublishReplica(0, 0);
  // 2 messages (update + ack) per other MDS.
  EXPECT_EQ(cluster_.metrics().update_messages - msgs_before, 2u * 9u);
}

TEST_F(HbaClusterTest, AddMdsMigratesAllReplicas) {
  ReconfigReport rep;
  const auto nid = cluster_.AddMds(&rep);
  ASSERT_TRUE(nid.ok());
  // Fig. 11: HBA migrates all N existing replicas to the newcomer.
  EXPECT_EQ(rep.replicas_migrated, 10u);
  // Fig. 15: the newcomer exchanges filters with everyone (~2N messages).
  EXPECT_GE(rep.messages, 2u * 10u);
  EXPECT_TRUE(cluster_.CheckInvariants().ok());
}

TEST_F(HbaClusterTest, RemoveMdsKeepsMeshAndFiles) {
  PopulateFiles(200);
  ReconfigReport rep;
  ASSERT_TRUE(cluster_.RemoveMds(3, &rep).ok());
  EXPECT_TRUE(cluster_.CheckInvariants().ok());
  EXPECT_EQ(cluster_.NumMds(), 9u);
  for (int i = 0; i < 200; ++i) {
    const auto r = cluster_.Lookup("/hba/f" + std::to_string(i), 0);
    EXPECT_TRUE(r.found) << i;
    EXPECT_NE(r.home, 3u);
  }
}

TEST_F(HbaClusterTest, LookupStateScalesWithN) {
  PopulateFiles(500);
  // HBA per-MDS lookup state covers all files in the system.
  const double all_files_bytes =
      500 * cluster_.config().bits_per_file / 8.0;
  const auto bytes = cluster_.LookupStateBytes(cluster_.alive().front());
  EXPECT_GE(static_cast<double>(bytes), all_files_bytes * 0.9);
}

TEST_F(HbaClusterTest, LevelCountersSumToLookupsAcrossChurn) {
  PopulateFiles(200);
  std::uint64_t lookups = 0;
  const auto sweep = [&] {
    for (int i = 0; i < 200; i += 7) {
      (void)cluster_.Lookup("/hba/f" + std::to_string(i), 0);
      ++lookups;
    }
    (void)cluster_.Lookup("/absent/path", 0);
    ++lookups;
    ASSERT_EQ(cluster_.metrics().levels.total(), lookups);
  };
  sweep();
  ASSERT_TRUE(cluster_.AddMds(nullptr).ok());
  sweep();
  ASSERT_TRUE(cluster_.RemoveMds(2, nullptr).ok());
  sweep();
  const auto levels = cluster_.metrics().levels.Values();
  EXPECT_EQ(levels.l1 + levels.l2 + levels.l3 + levels.l4 + levels.miss,
            lookups);
  EXPECT_GT(levels.miss, 0u);
}

TEST(BfaClusterTest, NoLruMeansNoL1Hits) {
  HbaCluster bfa(SmallConfig(), /*use_lru=*/false);
  EXPECT_EQ(bfa.SchemeName(), "BFA");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(bfa.CreateFile("/bfa/f" + std::to_string(i), Md(i), 0).ok());
  }
  bfa.FlushReplicas(0);
  bfa.metrics().Reset();
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(bfa.Lookup("/bfa/f" + std::to_string(i), 0).found);
    }
  }
  EXPECT_EQ(bfa.metrics().levels.l1, 0u);
  EXPECT_GT(bfa.metrics().levels.l2, 0u);
}

TEST(HbaMemoryTest, SmallBudgetCausesDiskProbes) {
  auto config = SmallConfig();
  config.memory_budget_bytes = 2048;  // tiny: replicas must spill
  HbaCluster cluster(config);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        cluster.CreateFile("/big/f" + std::to_string(i), Md(i), 0).ok());
  }
  cluster.FlushReplicas(0);
  cluster.metrics().Reset();
  for (int i = 0; i < 100; ++i) {
    (void)cluster.Lookup("/big/f" + std::to_string(i), 0);
  }
  EXPECT_GT(cluster.metrics().disk_probes, 0u);
}

TEST(HbaMemoryTest, AmpleBudgetAvoidsDiskProbes) {
  HbaCluster cluster(SmallConfig());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        cluster.CreateFile("/ok/f" + std::to_string(i), Md(i), 0).ok());
  }
  cluster.FlushReplicas(0);
  cluster.metrics().Reset();
  for (int i = 0; i < 100; ++i) {
    (void)cluster.Lookup("/ok/f" + std::to_string(i), 0);
  }
  EXPECT_EQ(cluster.metrics().disk_probes, 0u);
}

}  // namespace
}  // namespace ghba
