// Property sweep across cluster shapes and workload knobs: the structural
// guarantees the four-level hierarchy must uphold regardless of parameters.
#include <gtest/gtest.h>

#include <string>

#include "core/ghba_cluster.hpp"
#include "core/simulator.hpp"

namespace ghba {
namespace {

struct Scenario {
  std::uint32_t n;
  std::uint32_t m;
  double rereference;
  std::uint32_t publish_threshold;
};

class LevelPropertyTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(LevelPropertyTest, HierarchyInvariantsHoldUnderReplay) {
  const auto [n, m, rereference, publish_threshold] = GetParam();

  WorkloadProfile profile = HpProfile();
  profile.total_files = 1200;
  profile.active_files = 400;
  profile.rereference_prob = rereference;

  ClusterConfig config;
  config.num_mds = n;
  config.max_group_size = m;
  config.expected_files_per_mds = 4 * 1200 * 2 / n + 16;
  config.lru_capacity = 256;
  config.publish_after_mutations = publish_threshold;
  config.seed = 1000 + n * 7 + m;

  GhbaCluster cluster(config);
  ReplaySimulator sim(cluster);
  IntensifiedTrace trace(profile, 2, config.seed);
  sim.Populate(trace);
  const auto result = sim.Replay(trace, 4000);

  const auto& metrics = cluster.metrics();
  // (1) Level counters partition the lookups exactly.
  EXPECT_EQ(metrics.levels.total(), result.lookups);
  // (2) Per-level latency samples sum to the lookup count.
  EXPECT_EQ(metrics.l1_latency_ms.count() + metrics.l2_latency_ms.count() +
                metrics.group_latency_ms.count() +
                metrics.global_latency_ms.count(),
            result.lookups);
  // (3) Deeper levels cost more on average (when populated).
  if (metrics.levels.l1 > 100 && metrics.levels.l3 > 100) {
    EXPECT_LT(metrics.l1_latency_ms.mean(), metrics.group_latency_ms.mean());
  }
  if (metrics.levels.l2 > 100 && metrics.levels.l4 + metrics.levels.miss > 100) {
    EXPECT_LT(metrics.l2_latency_ms.mean(), metrics.global_latency_ms.mean());
  }
  // (4) Lookups for existing files cannot "miss": the exact L4 backstop.
  // (Misses only come from references to unlinked files.)
  EXPECT_LE(metrics.levels.miss, result.lookups);
  EXPECT_LT(static_cast<double>(result.not_found),
            0.06 * static_cast<double>(std::max<std::uint64_t>(result.lookups, 1)));
  // (5) Structure stays sound.
  EXPECT_TRUE(cluster.CheckInvariants().ok())
      << cluster.CheckInvariants().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, LevelPropertyTest,
    ::testing::Values(Scenario{6, 2, 0.3, 16}, Scenario{6, 3, 0.7, 64},
                      Scenario{12, 4, 0.5, 8}, Scenario{18, 5, 0.6, 32},
                      Scenario{24, 6, 0.4, 128}, Scenario{9, 9, 0.5, 16},
                      Scenario{30, 6, 0.65, 256}));

}  // namespace
}  // namespace ghba
