#include "core/mds_node.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig c;
  c.expected_files_per_mds = 1000;
  c.lru_capacity = 64;
  c.seed = 5;
  return c;
}

FileMetadata Md(std::uint64_t inode = 1) {
  FileMetadata md;
  md.inode = inode;
  return md;
}

TEST(MdsNodeTest, AddLocalFileUpdatesStoreAndFilter) {
  MdsNode node(0, TestConfig());
  ASSERT_TRUE(node.AddLocalFile("/a", Md()).ok());
  EXPECT_TRUE(node.store().Contains("/a"));
  EXPECT_TRUE(node.LocalFilterContains("/a"));
  EXPECT_EQ(node.file_count(), 1u);
  EXPECT_EQ(node.mutations_since_publish(), 1u);
}

TEST(MdsNodeTest, RemoveLocalFileClearsBoth) {
  MdsNode node(0, TestConfig());
  ASSERT_TRUE(node.AddLocalFile("/a", Md()).ok());
  ASSERT_TRUE(node.RemoveLocalFile("/a").ok());
  EXPECT_FALSE(node.store().Contains("/a"));
  EXPECT_FALSE(node.LocalFilterContains("/a"));
  EXPECT_EQ(node.mutations_since_publish(), 2u);
}

TEST(MdsNodeTest, RemoveMissingFileFails) {
  MdsNode node(0, TestConfig());
  EXPECT_EQ(node.RemoveLocalFile("/none").code(), StatusCode::kNotFound);
  EXPECT_EQ(node.mutations_since_publish(), 0u);
}

// Regression (found by the [[nodiscard]] sweep): RemoveLocalFile used to
// drop the counting filter's Status, so a store/filter divergence — the
// path in the store but never Add'ed to the filter — was silently
// swallowed and the two structures drifted further on every unlink.
TEST(MdsNodeTest, RemoveSurfacesStoreFilterDivergence) {
  MdsNode node(0, TestConfig());
  // Insert behind the filter's back: store() is the authoritative handle
  // migration code writes through, so this divergence is constructible.
  ASSERT_TRUE(node.store().Insert("/sneaky", Md()).ok());
  const Status s = node.RemoveLocalFile("/sneaky");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("diverged"), std::string::npos);
  // The store side of the unlink still happened (it is what failed loudly).
  EXPECT_FALSE(node.store().Contains("/sneaky"));
}

TEST(MdsNodeTest, SnapshotSharesGeometryAcrossNodes) {
  const auto config = TestConfig();
  MdsNode a(0, config), b(1, config);
  ASSERT_TRUE(a.AddLocalFile("/x", Md()).ok());
  const auto snap_a = a.SnapshotLocalFilter();
  const auto snap_b = b.SnapshotLocalFilter();
  EXPECT_TRUE(snap_a.SameGeometry(snap_b));
  EXPECT_TRUE(snap_a.MayContain("/x"));
  EXPECT_FALSE(snap_b.MayContain("/x"));
}

TEST(MdsNodeTest, StalenessTracksUnpublishedMutations) {
  MdsNode node(0, TestConfig());
  // Nothing published yet: all set bits count as stale.
  EXPECT_EQ(node.StalenessBits(), 0u);  // empty filter
  ASSERT_TRUE(node.AddLocalFile("/a", Md()).ok());
  EXPECT_GT(node.StalenessBits(), 0u);

  node.SetPublishedSnapshot(node.SnapshotLocalFilter());
  node.MarkPublished();
  EXPECT_EQ(node.StalenessBits(), 0u);
  EXPECT_EQ(node.mutations_since_publish(), 0u);

  ASSERT_TRUE(node.AddLocalFile("/b", Md()).ok());
  EXPECT_GT(node.StalenessBits(), 0u);
  EXPECT_EQ(node.mutations_since_publish(), 1u);
}

TEST(MdsNodeTest, PublishedSnapshotAccessor) {
  MdsNode node(0, TestConfig());
  EXPECT_EQ(node.published_snapshot(), nullptr);
  node.SetPublishedSnapshot(node.SnapshotLocalFilter());
  ASSERT_NE(node.published_snapshot(), nullptr);
}

TEST(MdsNodeTest, UnlinkSupportViaCountingFilter) {
  // Add and remove many files; the local filter must track exactly (no
  // false negatives for survivors, removals truly gone).
  MdsNode node(0, TestConfig());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(node.AddLocalFile("/f" + std::to_string(i), Md(i)).ok());
  }
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(node.RemoveLocalFile("/f" + std::to_string(i)).ok());
  }
  for (int i = 250; i < 500; ++i) {
    EXPECT_TRUE(node.LocalFilterContains("/f" + std::to_string(i))) << i;
  }
  int ghosts = 0;
  for (int i = 0; i < 250; ++i) {
    ghosts += node.LocalFilterContains("/f" + std::to_string(i));
  }
  EXPECT_LT(ghosts, 10);  // only Bloom false positives remain
}

}  // namespace
}  // namespace ghba
