#include "core/config.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

TEST(ConfigValidationTest, DefaultConfigValid) {
  EXPECT_TRUE(ValidateClusterConfig(ClusterConfig{}).ok());
}

TEST(ConfigValidationTest, RejectsZeroPopulations) {
  ClusterConfig c;
  c.num_mds = 0;
  EXPECT_EQ(ValidateClusterConfig(c).code(), StatusCode::kInvalidArgument);

  c = ClusterConfig{};
  c.max_group_size = 0;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());

  c = ClusterConfig{};
  c.expected_files_per_mds = 0;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());

  c = ClusterConfig{};
  c.lru_capacity = 0;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());

  c = ClusterConfig{};
  c.publish_after_mutations = 0;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());
}

TEST(ConfigValidationTest, RejectsGroupSizeInversion) {
  ClusterConfig c;
  c.max_group_size = 4;
  c.initial_group_size = 6;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());
  c.initial_group_size = 4;
  EXPECT_TRUE(ValidateClusterConfig(c).ok());
}

TEST(ConfigValidationTest, RejectsBadBitRatio) {
  ClusterConfig c;
  c.bits_per_file = 0;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());
  c.bits_per_file = -4;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());
  c.bits_per_file = 1000;  // optimal k would blow the probe cap
  EXPECT_FALSE(ValidateClusterConfig(c).ok());
  c.bits_per_file = 16;
  EXPECT_TRUE(ValidateClusterConfig(c).ok());
}

TEST(ConfigValidationTest, RejectsBadLatencyConstants) {
  ClusterConfig c;
  c.latency.disk_access_ms = -1;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());

  c = ClusterConfig{};
  c.latency.metadata_cache_hit = 1.5;
  EXPECT_FALSE(ValidateClusterConfig(c).ok());
}

}  // namespace
}  // namespace ghba
