// Membership-focused churn: a dense interleaving of joins, graceful leaves
// and failures — including joins that fill a group and force SplitGroup —
// with the full structural invariants checked after EVERY step. The broader
// churn_fuzz_test covers long mixed workloads but only samples invariants
// periodically; this test is the fine-grained counterpart that pinpoints the
// exact membership operation that breaks the replica topology.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/ghba_cluster.hpp"

namespace ghba {
namespace {

ClusterConfig ChurnConfig(std::uint64_t seed) {
  ClusterConfig c;
  c.num_mds = 6;
  c.max_group_size = 3;
  c.expected_files_per_mds = 200;
  c.lru_capacity = 32;
  c.publish_after_mutations = 8;
  c.seed = seed;
  return c;
}

class MembershipChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MembershipChurnTest, EveryMembershipStepPreservesInvariants) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  GhbaCluster cluster(ChurnConfig(seed));

  // Seed some files so RemoveMds migrates real state and FailMds loses it.
  std::uint64_t next_file = 0;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(cluster
                    .CreateFile("/mc/f" + std::to_string(next_file++),
                                FileMetadata{}, 0)
                    .ok());
  }

  const auto check = [&](int step, const char* op) {
    const Status inv = cluster.CheckInvariants();
    ASSERT_TRUE(inv.ok()) << "step " << step << " after " << op << ": "
                          << inv.ToString();
  };
  check(-1, "setup");

  constexpr int kSteps = 60;
  for (int step = 0; step < kSteps; ++step) {
    const auto dice = rng.NextBounded(100);
    if (dice < 35) {  // join — repeatedly filling groups forces SplitGroup
      const auto groups_before = cluster.NumGroups();
      ASSERT_TRUE(cluster.AddMds(nullptr).ok()) << "step " << step;
      check(step, groups_before < cluster.NumGroups() ? "join+split" : "join");
    } else if (dice < 60) {  // graceful leave (may trigger group merge)
      if (cluster.NumMds() > 3) {
        const auto& alive = cluster.alive();
        const MdsId victim = alive[rng.NextBounded(alive.size())];
        ASSERT_TRUE(cluster.RemoveMds(victim, nullptr).ok())
            << "step " << step << " victim " << victim;
        check(step, "leave");
      }
    } else if (dice < 80) {  // abrupt failure (loses the victim's files)
      if (cluster.NumMds() > 3) {
        const auto& alive = cluster.alive();
        const MdsId victim = alive[rng.NextBounded(alive.size())];
        ASSERT_TRUE(cluster.FailMds(victim, nullptr).ok())
            << "step " << step << " victim " << victim;
        check(step, "fail");
      }
    } else {  // mutations between membership events keep filters non-trivial
      for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(cluster
                        .CreateFile("/mc/f" + std::to_string(next_file++),
                                    FileMetadata{}, 0)
                        .ok());
      }
      check(step, "create");
    }
  }
  check(kSteps, "final");
}

// Accounting invariant for the observability layer: every Lookup lands in
// exactly one of the five level counters, so their sum tracks the number of
// lookups issued — through joins, leaves, failures and group splits.
TEST_P(MembershipChurnTest, LevelCountersSumToLookupsIssued) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  GhbaCluster cluster(ChurnConfig(seed));

  std::uint64_t next_file = 0;
  std::vector<std::string> paths;
  for (int i = 0; i < 40; ++i) {
    paths.push_back("/mc/f" + std::to_string(next_file++));
    ASSERT_TRUE(cluster.CreateFile(paths.back(), FileMetadata{}, 0).ok());
  }

  std::uint64_t lookups_issued = 0;
  double now_ms = 0;
  const auto lookup_some = [&] {
    for (int i = 0; i < 5; ++i) {
      // Mix of live paths and guaranteed misses so every level (incl.
      // the miss counter) accumulates.
      const bool miss = rng.NextBounded(4) == 0;
      const std::string path =
          miss ? "/absent/x" + std::to_string(rng.NextBounded(1000))
               : paths[rng.NextBounded(paths.size())];
      (void)cluster.Lookup(path, now_ms);
      now_ms += 0.25;
      ++lookups_issued;
    }
    ASSERT_EQ(cluster.metrics().levels.total(), lookups_issued);
  };

  for (int step = 0; step < 40; ++step) {
    const auto dice = rng.NextBounded(100);
    if (dice < 30) {
      ASSERT_TRUE(cluster.AddMds(nullptr).ok()) << "step " << step;
    } else if (dice < 50 && cluster.NumMds() > 3) {
      const auto& alive = cluster.alive();
      ASSERT_TRUE(
          cluster.RemoveMds(alive[rng.NextBounded(alive.size())], nullptr)
              .ok())
          << "step " << step;
    } else if (dice < 65 && cluster.NumMds() > 3) {
      // A failure loses the victim's files; drop them from the live list so
      // later lookups for them count as (legitimate) misses.
      const auto& alive = cluster.alive();
      ASSERT_TRUE(
          cluster.FailMds(alive[rng.NextBounded(alive.size())], nullptr).ok())
          << "step " << step;
    } else if (dice < 80) {
      paths.push_back("/mc/f" + std::to_string(next_file++));
      ASSERT_TRUE(cluster.CreateFile(paths.back(), FileMetadata{}, 0).ok());
    }
    lookup_some();
  }

  const auto levels = cluster.metrics().levels.Values();
  EXPECT_EQ(levels.l1 + levels.l2 + levels.l3 + levels.l4 + levels.miss,
            lookups_issued);
  // The workload mixes repeats and absent paths, so the extremes of the
  // hierarchy must both have fired.
  EXPECT_GT(levels.miss, 0u);
  EXPECT_GT(levels.l1 + levels.l2 + levels.l3 + levels.l4, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MembershipChurnTest,
                         ::testing::Values(7u, 11u, 19u, 23u, 31u, 47u));

}  // namespace
}  // namespace ghba
