#include "core/ghba_cluster.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace ghba {
namespace {

ClusterConfig SmallConfig(std::uint32_t n = 12, std::uint32_t m = 4) {
  ClusterConfig c;
  c.num_mds = n;
  c.max_group_size = m;
  c.expected_files_per_mds = 2000;
  c.lru_capacity = 256;
  c.publish_after_mutations = 16;
  c.memory_budget_bytes = 64ULL << 20;  // ample: no disk spill in these tests
  c.seed = 7;
  return c;
}

FileMetadata Md(std::uint64_t inode = 1) {
  FileMetadata md;
  md.inode = inode;
  return md;
}

class GhbaClusterTest : public ::testing::Test {
 protected:
  GhbaClusterTest() : cluster_(SmallConfig()) {}

  void PopulateFiles(int count) {
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(cluster_
                      .CreateFile("/data/file" + std::to_string(i), Md(i), 0)
                      .ok());
    }
    cluster_.FlushReplicas(0);
    cluster_.metrics().Reset();
  }

  GhbaCluster cluster_;
};

TEST_F(GhbaClusterTest, ConstructionInvariants) {
  EXPECT_EQ(cluster_.NumMds(), 12u);
  EXPECT_EQ(cluster_.NumGroups(), 3u);  // 12 / M=4
  EXPECT_TRUE(cluster_.CheckInvariants().ok())
      << cluster_.CheckInvariants().ToString();
}

TEST_F(GhbaClusterTest, ThetaMatchesPaperFormula) {
  // Each group of M'=4 members covers N-M'=8 outsiders; per member theta
  // is about (N-M')/M' = 2.
  for (MdsId id = 0; id < 12; ++id) {
    EXPECT_NEAR(static_cast<double>(cluster_.ThetaOf(id)), 2.0, 1.0) << id;
  }
}

TEST_F(GhbaClusterTest, LookupFindsEveryPopulatedFile) {
  PopulateFiles(500);
  for (int i = 0; i < 500; ++i) {
    const std::string path = "/data/file" + std::to_string(i);
    const auto r = cluster_.Lookup(path, 0);
    EXPECT_TRUE(r.found) << path;
    EXPECT_EQ(r.home, cluster_.OracleHome(path)) << path;
    EXPECT_GE(r.served_level, 1);
    EXPECT_LE(r.served_level, 4);
    EXPECT_GT(r.latency_ms, 0);
  }
}

TEST_F(GhbaClusterTest, LookupMissesAbsentFiles) {
  PopulateFiles(100);
  const auto r = cluster_.Lookup("/does/not/exist", 0);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.home, kInvalidMds);
  EXPECT_EQ(r.served_level, 4);  // misses are concluded by global multicast
}

TEST_F(GhbaClusterTest, RepeatedLookupsHitL1) {
  PopulateFiles(200);
  const std::string hot = "/data/file42";
  (void)cluster_.Lookup(hot, 0);  // warms the entry MDS's LRU
  // Subsequent lookups enter at random MDSs; those that land on a warmed
  // MDS resolve at L1. Loop until statistically certain.
  int l1_hits = 0;
  for (int i = 0; i < 200; ++i) {
    const auto r = cluster_.Lookup(hot, 0);
    ASSERT_TRUE(r.found);
    l1_hits += (r.served_level == 1);
  }
  EXPECT_GT(l1_hits, 50);  // warms more caches as it goes
}

TEST_F(GhbaClusterTest, L1IsFasterThanL4) {
  PopulateFiles(300);
  for (int i = 0; i < 300; ++i) {
    (void)cluster_.Lookup("/data/file" + std::to_string(i % 30), 0);
  }
  const auto& m = cluster_.metrics();
  if (m.levels.l1 > 0 && m.levels.l4 > 0) {
    EXPECT_LT(m.l1_latency_ms.mean(), m.global_latency_ms.mean());
  }
  if (m.levels.l2 > 0 && m.levels.l3 > 0) {
    EXPECT_LT(m.l2_latency_ms.mean(), m.group_latency_ms.mean());
  }
}

TEST_F(GhbaClusterTest, NewFileVisibleBeforePublishViaL4) {
  PopulateFiles(50);
  // One create; the mutation budget (16) is not reached, so replicas are
  // stale and only the global multicast can find it.
  ASSERT_TRUE(cluster_.CreateFile("/fresh/file", Md(), 0).ok());
  const auto r = cluster_.Lookup("/fresh/file", 0);
  EXPECT_TRUE(r.found);
}

TEST_F(GhbaClusterTest, PublishMakesFileVisibleAtLowerLevels) {
  PopulateFiles(50);
  ASSERT_TRUE(cluster_.CreateFile("/fresh/file", Md(), 0).ok());
  cluster_.PublishReplica(cluster_.OracleHome("/fresh/file"), 0);
  // After publish, replicas know the file: most lookups resolve below L4.
  int below_l4 = 0;
  for (int i = 0; i < 50; ++i) {
    const auto r = cluster_.Lookup("/fresh/file", 0);
    ASSERT_TRUE(r.found);
    below_l4 += (r.served_level < 4);
  }
  EXPECT_GT(below_l4, 40);
}

TEST_F(GhbaClusterTest, MutationBudgetTriggersPublish) {
  PopulateFiles(10);
  const std::uint64_t publishes_before = cluster_.metrics().publishes;
  // 16 * 12 mutations guarantee at least one MDS crosses the budget of 16.
  for (int i = 0; i < 16 * 12; ++i) {
    ASSERT_TRUE(cluster_.CreateFile("/churn/f" + std::to_string(i), Md(), 0).ok());
  }
  EXPECT_GT(cluster_.metrics().publishes, publishes_before);
}

TEST_F(GhbaClusterTest, UnlinkRemovesFile) {
  PopulateFiles(100);
  ASSERT_TRUE(cluster_.UnlinkFile("/data/file7", 0).ok());
  cluster_.FlushReplicas(0);
  const auto r = cluster_.Lookup("/data/file7", 0);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(cluster_.UnlinkFile("/data/file7", 0).code(),
            StatusCode::kNotFound);
}

TEST_F(GhbaClusterTest, DuplicateCreateRejected) {
  PopulateFiles(1);
  EXPECT_EQ(cluster_.CreateFile("/data/file0", Md(), 0).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(GhbaClusterTest, AddMdsKeepsInvariantsAndFindsFiles) {
  PopulateFiles(200);
  ReconfigReport rep;
  const auto nid = cluster_.AddMds(&rep);
  ASSERT_TRUE(nid.ok());
  EXPECT_EQ(cluster_.NumMds(), 13u);
  EXPECT_TRUE(cluster_.CheckInvariants().ok())
      << cluster_.CheckInvariants().ToString();
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(cluster_.Lookup("/data/file" + std::to_string(i), 0).found);
  }
}

TEST(GhbaJoinTest, AddMdsMigrationMatchesPaperBound) {
  // Section 3.1 / Fig. 11: joining a group with room migrates about
  // (N - M')/(M' + 1) replicas. N=12, M=5 gives groups {5,5,2}; joining the
  // group of 2 moves ~ 10/3 replicas.
  GhbaCluster cluster(SmallConfig(12, 5));
  ReconfigReport rep;
  ASSERT_TRUE(cluster.AddMds(&rep).ok());
  EXPECT_FALSE(rep.group_split);
  EXPECT_LE(rep.replicas_migrated, 5u);
  EXPECT_GT(rep.messages, 0u);
  EXPECT_TRUE(cluster.CheckInvariants().ok())
      << cluster.CheckInvariants().ToString();
}

TEST_F(GhbaClusterTest, GroupSplitWhenAllFull) {
  // Fill every group to M=4: add MDSs until N % M == 0 and all groups full,
  // then one more must split a group.
  while (cluster_.NumMds() % 4 != 0) {
    ASSERT_TRUE(cluster_.AddMds(nullptr).ok());
  }
  const auto groups_before = cluster_.NumGroups();
  ReconfigReport rep;
  ASSERT_TRUE(cluster_.AddMds(&rep).ok());
  EXPECT_TRUE(rep.group_split);
  EXPECT_GT(cluster_.NumGroups(), groups_before);
  EXPECT_TRUE(cluster_.CheckInvariants().ok())
      << cluster_.CheckInvariants().ToString();
}

TEST_F(GhbaClusterTest, RemoveMdsRehomesFilesAndKeepsService) {
  PopulateFiles(300);
  const MdsId victim = 5;
  const auto victim_files = cluster_.node(victim).file_count();
  ReconfigReport rep;
  ASSERT_TRUE(cluster_.RemoveMds(victim, &rep).ok());
  EXPECT_EQ(cluster_.NumMds(), 11u);
  EXPECT_EQ(rep.files_migrated, victim_files);
  EXPECT_TRUE(cluster_.CheckInvariants().ok())
      << cluster_.CheckInvariants().ToString();
  for (int i = 0; i < 300; ++i) {
    const std::string path = "/data/file" + std::to_string(i);
    const auto r = cluster_.Lookup(path, 0);
    EXPECT_TRUE(r.found) << path;
    EXPECT_NE(r.home, victim);
  }
}

TEST_F(GhbaClusterTest, RemoveUnknownMdsFails) {
  EXPECT_EQ(cluster_.RemoveMds(99, nullptr).code(), StatusCode::kNotFound);
}

TEST_F(GhbaClusterTest, DeparturesTriggerMergeUntilStable) {
  // Shrink until group merging must kick in; invariants hold throughout.
  for (int i = 0; i < 8; ++i) {
    ReconfigReport rep;
    ASSERT_TRUE(cluster_.RemoveMds(cluster_.alive().front(), &rep).ok());
    ASSERT_TRUE(cluster_.CheckInvariants().ok())
        << "after departure " << i << ": "
        << cluster_.CheckInvariants().ToString();
  }
  EXPECT_EQ(cluster_.NumMds(), 4u);
  // 4 MDSs fit in a single group of M=4 after merging.
  EXPECT_EQ(cluster_.NumGroups(), 1u);
}

TEST_F(GhbaClusterTest, CannotRemoveLastMds) {
  while (cluster_.NumMds() > 1) {
    ASSERT_TRUE(cluster_.RemoveMds(cluster_.alive().front(), nullptr).ok());
  }
  EXPECT_EQ(cluster_.RemoveMds(cluster_.alive().front(), nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GhbaClusterTest, LookupStateBytesFarBelowFullImage) {
  // At replica-dominated scale, G-HBA charges ~(theta+1) = N/M = 3 filters
  // per MDS against the full image's 12 (Table 5's mechanism). Use enough
  // files that the fixed LRU/IDBFA overheads are noise.
  PopulateFiles(24000);
  const double full_image =
      24000.0 * cluster_.config().bits_per_file / 8.0;  // all files' bits
  for (const MdsId id : cluster_.alive()) {
    const auto bytes = cluster_.LookupStateBytes(id);
    EXPECT_LT(static_cast<double>(bytes), full_image * 0.75) << id;
  }
}

TEST_F(GhbaClusterTest, MessagesAccountedPerLookup) {
  PopulateFiles(100);
  const auto r = cluster_.Lookup("/data/file3", 0);
  EXPECT_EQ(cluster_.metrics().lookup_messages, r.messages);
}

// --- modular-hash replica placement (Section 2.4 strawman) ---

TEST(GhbaHashPlacementTest, JoinCausesMoreMigrationsThanIdbfa) {
  // N=24, M=5 -> groups {5,5,5,5,4}: the join lands in the group of 4
  // without splitting, isolating the placement policies' migration cost.
  ReconfigReport hash_rep, idbfa_rep;
  {
    GhbaCluster hash_cluster(SmallConfig(24, 5),
                             ReplicaPlacement::kModularHash);
    ASSERT_TRUE(hash_cluster.AddMds(&hash_rep).ok());
    EXPECT_TRUE(hash_cluster.CheckInvariants().ok())
        << hash_cluster.CheckInvariants().ToString();
  }
  {
    GhbaCluster idbfa_cluster(SmallConfig(24, 5),
                              ReplicaPlacement::kLeastLoaded);
    ASSERT_TRUE(idbfa_cluster.AddMds(&idbfa_rep).ok());
  }
  EXPECT_GT(hash_rep.replicas_migrated, idbfa_rep.replicas_migrated);
}

TEST(GhbaCooperativeLruTest, SharingSeedsGroupCaches) {
  auto config = SmallConfig(9, 3);
  config.cooperative_lru = true;
  GhbaCluster cluster(config);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster.CreateFile("/c/f" + std::to_string(i), Md(i), 0).ok());
  }
  cluster.FlushReplicas(0);
  cluster.metrics().Reset();
  // One lookup that escalates past L2 shares the discovery with the whole
  // group; afterwards, every member of that group answers at L1.
  const auto first = cluster.Lookup("/c/f5", 0);
  ASSERT_TRUE(first.found);
  if (first.served_level >= 3) {
    int l1 = 0;
    for (int i = 0; i < 60; ++i) {
      const auto r = cluster.Lookup("/c/f5", 0);
      ASSERT_TRUE(r.found);
      l1 += (r.served_level == 1);
    }
    // 1/3 of entries land in the seeded group and hit L1 immediately; the
    // rest seed their own groups as the loop goes. Expect a clear majority.
    EXPECT_GT(l1, 30);
  }
}

TEST(GhbaHashPlacementTest, SchemeNamesDiffer) {
  GhbaCluster a(SmallConfig(8, 4));
  GhbaCluster b(SmallConfig(8, 4), ReplicaPlacement::kModularHash);
  EXPECT_EQ(a.SchemeName(), "G-HBA");
  EXPECT_NE(a.SchemeName(), b.SchemeName());
}

// --- parameterized invariant sweep across cluster shapes ---

struct Shape {
  std::uint32_t n;
  std::uint32_t m;
};

class GhbaShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(GhbaShapeTest, InvariantsAndLookupAcrossShapes) {
  const auto [n, m] = GetParam();
  GhbaCluster cluster(SmallConfig(n, m));
  ASSERT_TRUE(cluster.CheckInvariants().ok())
      << cluster.CheckInvariants().ToString();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        cluster.CreateFile("/s/f" + std::to_string(i), Md(i), 0).ok());
  }
  cluster.FlushReplicas(0);
  for (int i = 0; i < 60; ++i) {
    EXPECT_TRUE(cluster.Lookup("/s/f" + std::to_string(i), 0).found) << i;
  }
  // Churn: one join, one leave; service continues.
  ASSERT_TRUE(cluster.AddMds(nullptr).ok());
  ASSERT_TRUE(cluster.RemoveMds(cluster.alive().front(), nullptr).ok());
  ASSERT_TRUE(cluster.CheckInvariants().ok())
      << cluster.CheckInvariants().ToString();
  for (int i = 0; i < 60; ++i) {
    EXPECT_TRUE(cluster.Lookup("/s/f" + std::to_string(i), 0).found) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GhbaShapeTest,
    ::testing::Values(Shape{2, 1}, Shape{5, 2}, Shape{9, 3}, Shape{10, 10},
                      Shape{13, 4}, Shape{30, 6}, Shape{31, 5}));

}  // namespace
}  // namespace ghba
