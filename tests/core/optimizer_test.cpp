#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ghba {
namespace {

LatencyComponents TypicalComponents() {
  // Plausible measured values: L1 resolves most queries cheaply, the rest
  // escalate with roughly 10x latency per level.
  LatencyComponents c;
  c.p_lru = 0.6;
  c.p_l2 = 0.5;
  c.d_lru = 0.05;
  c.d_l2 = 0.3;
  c.d_group = 2.0;
  c.d_net = 15.0;
  return c;
}

TEST(OptimizerTest, StorageOverheadMatchesEq3) {
  EXPECT_DOUBLE_EQ(StorageOverhead(100, 10), 9.0 + 1.0);
  EXPECT_DOUBLE_EQ(StorageOverhead(30, 6), 4.0 + 1.0);
  EXPECT_DOUBLE_EQ(StorageOverhead(10, 10), 1.0);  // one big group
}

TEST(OptimizerTest, StorageOverheadDecreasesInM) {
  double prev = 1e18;
  for (std::uint32_t m = 1; m <= 50; ++m) {
    const double s = StorageOverhead(50, m);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(OptimizerTest, LatencyIncreasesInM) {
  // Larger groups resolve less locally -> Eq. 4 latency grows with M.
  const auto c = TypicalComponents();
  double prev = 0;
  for (std::uint32_t m = 1; m <= 20; ++m) {
    const double lat = OperationLatency(c, m);
    EXPECT_GE(lat, prev) << m;
    prev = lat;
  }
}

TEST(OptimizerTest, LatencyBoundedByComponents) {
  const auto c = TypicalComponents();
  const std::uint32_t m = 5;
  const double lat = OperationLatency(c, m);
  EXPECT_GE(lat, c.d_lru);
  // Eq. 4's network term carries the factor M.
  EXPECT_LE(lat, c.d_lru + c.d_l2 + c.d_group + m * c.d_net);
}

// Components as functions of M, the way Section 4.1 measures them: the
// local segment array holds theta = (N-M)/M replicas, so its hit share
// falls like 1/M, while group multicast cost grows with M.
LatencyComponents ComponentsAt(std::uint32_t n, std::uint32_t m) {
  LatencyComponents c;
  c.p_lru = 0.6;
  const double theta = (static_cast<double>(n) - m) / m;
  c.p_l2 = std::min(0.95, (theta + 1.0) / static_cast<double>(n) * 8.0);
  c.d_lru = 0.05;
  c.d_l2 = 0.3 + 0.4 * theta;       // probing theta replicas; spill pressure
  c.d_group = 0.5 + 0.1 * m * m;    // multicast stragglers + congestion
  c.d_net = 15.0;
  return c;
}

TEST(OptimizerTest, GammaHasInteriorOptimumWithMeasuredComponents) {
  // With per-M components the storage-latency tension produces an optimum
  // strictly inside (1, 15) — the premise of Fig. 6.
  const std::uint32_t n = 100;
  const std::uint32_t best = OptimalGroupSize(
      [n](std::uint32_t m) { return ComponentsAt(n, m); }, n, 15);
  EXPECT_GT(best, 1u);
  EXPECT_LT(best, 15u);
}

TEST(OptimizerTest, OptimalMGrowsWithN) {
  // Fig. 7: the optimal group size grows (slowly) with the MDS count.
  const auto m30 = OptimalGroupSize(
      [](std::uint32_t m) { return ComponentsAt(30, m); }, 30, 20);
  const auto m200 = OptimalGroupSize(
      [](std::uint32_t m) { return ComponentsAt(200, m); }, 200, 20);
  EXPECT_GE(m200, m30);
}

TEST(OptimizerTest, GammaMatchesDefinition) {
  const auto c = TypicalComponents();
  const double gamma = NormalizedThroughput(c, 40, 8);
  EXPECT_DOUBLE_EQ(gamma,
                   1.0 / (OperationLatency(c, 8) * StorageOverhead(40, 8)));
}

TEST(OptimizerTest, MeasureComponentsFromMetrics) {
  ClusterMetrics m;
  m.levels.l1 = 60;
  m.levels.l2 = 20;
  m.levels.l3 = 15;
  m.levels.l4 = 5;
  for (int i = 0; i < 60; ++i) m.l1_latency_ms.Add(0.1);
  for (int i = 0; i < 20; ++i) m.l2_latency_ms.Add(0.5);
  for (int i = 0; i < 15; ++i) m.group_latency_ms.Add(3.0);
  for (int i = 0; i < 5; ++i) m.global_latency_ms.Add(20.0);

  const auto c = MeasureComponents(m);
  EXPECT_DOUBLE_EQ(c.p_lru, 0.6);
  EXPECT_DOUBLE_EQ(c.p_l2, 0.5);  // 20 of the 40 that escaped L1
  EXPECT_NEAR(c.d_lru, 0.1, 1e-12);
  EXPECT_NEAR(c.d_l2, 0.5, 1e-12);
  EXPECT_NEAR(c.d_group, 3.0, 1e-12);
  EXPECT_NEAR(c.d_net, 20.0, 1e-12);
}

TEST(OptimizerTest, EmptyMetricsGiveZeroComponents) {
  ClusterMetrics m;
  const auto c = MeasureComponents(m);
  EXPECT_EQ(c.p_lru, 0.0);
  EXPECT_EQ(c.p_l2, 0.0);
}

TEST(OptimizerTest, OptimalRespectsUpperBound) {
  const auto c = TypicalComponents();
  EXPECT_LE(OptimalGroupSize(c, 100, 4), 4u);
  EXPECT_LE(OptimalGroupSize(c, 3, 50), 3u);
}

}  // namespace
}  // namespace ghba
