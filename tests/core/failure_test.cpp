// Failure-injection tests for the fail-over behaviour of Section 4.5:
// "the metadata service still remains functional when some MDSs fail,
// albeit at a degraded performance and coverage level."
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/ghba_cluster.hpp"

namespace ghba {
namespace {

ClusterConfig FailConfig(std::uint32_t n = 12, std::uint32_t m = 4) {
  ClusterConfig c;
  c.num_mds = n;
  c.max_group_size = m;
  c.expected_files_per_mds = 2000;
  c.lru_capacity = 256;
  c.publish_after_mutations = 16;
  c.seed = 31;
  return c;
}

FileMetadata Md(std::uint64_t inode = 1) {
  FileMetadata md;
  md.inode = inode;
  return md;
}

class GhbaFailureTest : public ::testing::Test {
 protected:
  GhbaFailureTest() : cluster_(FailConfig()) {
    for (int i = 0; i < 400; ++i) {
      EXPECT_TRUE(
          cluster_.CreateFile("/f/file" + std::to_string(i), Md(i), 0).ok());
    }
    cluster_.FlushReplicas(0);
    cluster_.metrics().Reset();
  }

  GhbaCluster cluster_;
};

TEST_F(GhbaFailureTest, ServiceSurvivesOneFailure) {
  const MdsId victim = 3;
  const auto victim_files = cluster_.node(victim).file_count();
  ReconfigReport rep;
  ASSERT_TRUE(cluster_.FailMds(victim, &rep).ok());

  EXPECT_EQ(cluster_.NumMds(), 11u);
  EXPECT_EQ(cluster_.lost_files(), victim_files);
  EXPECT_TRUE(cluster_.CheckInvariants().ok())
      << cluster_.CheckInvariants().ToString();

  // Every surviving file is still reachable; lost ones miss definitively.
  std::uint64_t found = 0, missed = 0;
  for (int i = 0; i < 400; ++i) {
    const auto r = cluster_.Lookup("/f/file" + std::to_string(i), 0);
    if (r.found) {
      EXPECT_NE(r.home, victim);
      ++found;
    } else {
      ++missed;
    }
  }
  EXPECT_EQ(missed, victim_files);
  EXPECT_EQ(found, 400 - victim_files);
}

TEST_F(GhbaFailureTest, FailureRemovesDeadFiltersEverywhere) {
  const MdsId victim = 0;
  ASSERT_TRUE(cluster_.FailMds(victim, nullptr).ok());
  for (const MdsId id : cluster_.alive()) {
    EXPECT_FALSE(cluster_.node(id).segment().HasEntry(victim)) << id;
  }
}

TEST_F(GhbaFailureTest, CascadingFailuresKeepInvariants) {
  // Fail half the cluster one by one; groups merge as they shrink and the
  // service keeps answering for the survivors' files.
  for (int round = 0; round < 6; ++round) {
    const MdsId victim = cluster_.alive()[round % cluster_.alive().size()];
    ASSERT_TRUE(cluster_.FailMds(victim, nullptr).ok());
    ASSERT_TRUE(cluster_.CheckInvariants().ok())
        << "round " << round << ": "
        << cluster_.CheckInvariants().ToString();
  }
  EXPECT_EQ(cluster_.NumMds(), 6u);
  std::uint64_t surviving = 0;
  for (const MdsId id : cluster_.alive()) {
    surviving += cluster_.node(id).file_count();
  }
  EXPECT_EQ(surviving + cluster_.lost_files(), 400u);
  // Every surviving file resolves.
  std::uint64_t found = 0;
  for (int i = 0; i < 400; ++i) {
    found += cluster_.Lookup("/f/file" + std::to_string(i), 0).found;
  }
  EXPECT_EQ(found, surviving);
}

TEST_F(GhbaFailureTest, FailUnknownMdsRejected) {
  EXPECT_EQ(cluster_.FailMds(77, nullptr).code(), StatusCode::kNotFound);
}

TEST_F(GhbaFailureTest, CannotFailLastMds) {
  while (cluster_.NumMds() > 1) {
    ASSERT_TRUE(cluster_.FailMds(cluster_.alive().front(), nullptr).ok());
  }
  EXPECT_EQ(cluster_.FailMds(cluster_.alive().front(), nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GhbaFailureTest, FailureCheaperThanGracefulLeaveInFilesMoved) {
  ReconfigReport fail_rep;
  ASSERT_TRUE(cluster_.FailMds(2, &fail_rep).ok());
  EXPECT_EQ(fail_rep.files_migrated, 0u);  // nothing to migrate — it's dead

  GhbaCluster other(FailConfig());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(other.CreateFile("/f/file" + std::to_string(i), Md(i), 0).ok());
  }
  ReconfigReport leave_rep;
  ASSERT_TRUE(other.RemoveMds(2, &leave_rep).ok());
  EXPECT_GT(leave_rep.files_migrated, 0u);  // graceful leave re-homes
}

TEST_F(GhbaFailureTest, RecoveryByReinsertion) {
  ASSERT_TRUE(cluster_.FailMds(5, nullptr).ok());
  ReconfigReport rep;
  const auto nid = cluster_.AddMds(&rep);
  ASSERT_TRUE(nid.ok());
  EXPECT_EQ(cluster_.NumMds(), 12u);
  EXPECT_TRUE(cluster_.CheckInvariants().ok());
  // The replacement node serves newly created files.
  int created_on_new = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string path = "/recovered/f" + std::to_string(i);
    ASSERT_TRUE(cluster_.CreateFile(path, Md(i), 0).ok());
    if (cluster_.OracleHome(path) == *nid) ++created_on_new;
  }
  EXPECT_GT(created_on_new, 0);
}

}  // namespace
}  // namespace ghba
