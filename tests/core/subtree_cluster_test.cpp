#include "core/subtree_cluster.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ghba {
namespace {

ClusterConfig SmallConfig(std::uint32_t n = 6) {
  ClusterConfig c;
  c.num_mds = n;
  c.expected_files_per_mds = 1000;
  c.seed = 19;
  return c;
}

FileMetadata Md(std::uint64_t inode = 1) {
  FileMetadata md;
  md.inode = inode;
  return md;
}

class SubtreeClusterTest : public ::testing::Test {
 protected:
  SubtreeClusterTest() : cluster_(SmallConfig()) {}

  void PopulateSubtrees(int dirs, int files_per_dir) {
    for (int d = 0; d < dirs; ++d) {
      for (int f = 0; f < files_per_dir; ++f) {
        ASSERT_TRUE(cluster_
                        .CreateFile("/proj" + std::to_string(d) + "/f" +
                                        std::to_string(f),
                                    Md(f), 0)
                        .ok());
      }
    }
  }

  StaticSubtreeCluster cluster_;
};

TEST_F(SubtreeClusterTest, FilesOfOneSubtreeShareAnMds) {
  PopulateSubtrees(4, 30);
  EXPECT_EQ(cluster_.SubtreeCount(), 4u);
  for (int d = 0; d < 4; ++d) {
    const MdsId owner = cluster_.OracleHome("/proj" + std::to_string(d) + "/f0");
    for (int f = 1; f < 30; ++f) {
      EXPECT_EQ(cluster_.OracleHome("/proj" + std::to_string(d) + "/f" +
                                    std::to_string(f)),
                owner);
    }
  }
  EXPECT_TRUE(cluster_.CheckInvariants().ok())
      << cluster_.CheckInvariants().ToString();
}

TEST_F(SubtreeClusterTest, DeterministicSingleHopLookup) {
  PopulateSubtrees(3, 20);
  for (int d = 0; d < 3; ++d) {
    for (int f = 0; f < 20; ++f) {
      const std::string path =
          "/proj" + std::to_string(d) + "/f" + std::to_string(f);
      const auto r = cluster_.Lookup(path, 0);
      EXPECT_TRUE(r.found) << path;
      EXPECT_EQ(r.messages, 2u);
    }
  }
  EXPECT_FALSE(cluster_.Lookup("/proj0/ghost", 0).found);
  EXPECT_FALSE(cluster_.Lookup("/neverseen/x", 0).found);
}

TEST_F(SubtreeClusterTest, SkewedTrafficImbalancesLoad) {
  // One hot subtree gets everything: its owner holds all files while the
  // other MDSs idle — Table 1's "no load balance".
  for (int f = 0; f < 300; ++f) {
    ASSERT_TRUE(cluster_.CreateFile("/hot/f" + std::to_string(f), Md(f), 0).ok());
  }
  std::map<MdsId, std::uint64_t> counts;
  for (const MdsId id : cluster_.alive()) {
    counts[id] = cluster_.node(id).file_count();
  }
  std::uint64_t max_files = 0, total = 0;
  for (const auto& [id, c] : counts) {
    max_files = std::max(max_files, c);
    total += c;
  }
  EXPECT_EQ(max_files, total);  // everything on one MDS
}

TEST_F(SubtreeClusterTest, AddMdsMigratesNothing) {
  PopulateSubtrees(6, 20);
  ReconfigReport rep;
  ASSERT_TRUE(cluster_.AddMds(&rep).ok());
  EXPECT_EQ(rep.replicas_migrated, 0u);
  EXPECT_EQ(rep.files_migrated, 0u);
  // The newcomer picks up future subtrees.
  bool newcomer_used = false;
  for (int d = 0; d < 7; ++d) {
    ASSERT_TRUE(
        cluster_.CreateFile("/new" + std::to_string(d) + "/x", Md(d), 0).ok());
    newcomer_used |= (cluster_.OracleHome("/new" + std::to_string(d) + "/x") ==
                      cluster_.alive().back());
  }
  EXPECT_TRUE(newcomer_used);
  EXPECT_TRUE(cluster_.CheckInvariants().ok());
}

TEST_F(SubtreeClusterTest, RemoveMdsMovesWholeSubtrees) {
  PopulateSubtrees(6, 20);
  const MdsId victim = cluster_.OracleHome("/proj0/f0");
  ReconfigReport rep;
  ASSERT_TRUE(cluster_.RemoveMds(victim, &rep).ok());
  EXPECT_TRUE(cluster_.CheckInvariants().ok())
      << cluster_.CheckInvariants().ToString();
  for (int d = 0; d < 6; ++d) {
    for (int f = 0; f < 20; ++f) {
      EXPECT_TRUE(cluster_
                      .Lookup("/proj" + std::to_string(d) + "/f" +
                                  std::to_string(f),
                              0)
                      .found);
    }
  }
}

TEST_F(SubtreeClusterTest, RenameWithinNamespaceIsFree) {
  PopulateSubtrees(2, 25);
  ReconfigReport rep;
  const auto renamed = cluster_.RenamePrefix("/proj0/", "/renamed/", 0, &rep);
  ASSERT_TRUE(renamed.ok()) << renamed.status().ToString();
  EXPECT_EQ(*renamed, 25u);
  EXPECT_EQ(rep.files_migrated, 0u);
  for (int f = 0; f < 25; ++f) {
    EXPECT_TRUE(cluster_.Lookup("/renamed/f" + std::to_string(f), 0).found);
  }
  EXPECT_TRUE(cluster_.CheckInvariants().ok())
      << cluster_.CheckInvariants().ToString();
}

TEST_F(SubtreeClusterTest, TinyLookupState) {
  PopulateSubtrees(8, 50);
  EXPECT_LT(cluster_.LookupStateBytes(0), 2048u);  // O(dirs), not O(files)
}

}  // namespace
}  // namespace ghba
