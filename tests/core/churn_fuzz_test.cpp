// Randomized churn fuzzing: a long random interleaving of file mutations,
// lookups, joins, graceful leaves, failures, renames and forced publishes,
// with the structural invariants and the lookup/oracle agreement checked
// throughout. This is the property the whole system must uphold: no
// sequence of supported operations may corrupt the replica topology or
// lose a live file.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

#include "common/rng.hpp"
#include "core/ghba_cluster.hpp"

namespace ghba {
namespace {

ClusterConfig FuzzConfig(std::uint64_t seed) {
  ClusterConfig c;
  c.num_mds = 9;
  c.max_group_size = 3;
  c.expected_files_per_mds = 1000;
  c.lru_capacity = 128;
  c.publish_after_mutations = 24;
  c.seed = seed;
  return c;
}

class ChurnFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnFuzzTest, RandomOperationSequencePreservesInvariants) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  GhbaCluster cluster(FuzzConfig(seed));

  std::unordered_set<std::string> live_files;
  std::uint64_t next_file = 0;
  std::uint64_t next_dir = 0;

  const auto random_live = [&]() -> std::string {
    if (live_files.empty()) return {};
    auto it = live_files.begin();
    std::advance(it, static_cast<long>(rng.NextBounded(live_files.size())));
    return *it;
  };

  constexpr int kSteps = 400;
  for (int step = 0; step < kSteps; ++step) {
    const auto dice = rng.NextBounded(100);
    if (dice < 40) {  // create
      const std::string path =
          "/fz/d" + std::to_string(rng.NextBounded(8)) + "/f" +
          std::to_string(next_file++);
      ASSERT_TRUE(cluster.CreateFile(path, FileMetadata{}, 0).ok()) << path;
      live_files.insert(path);
    } else if (dice < 55) {  // unlink
      const auto path = random_live();
      if (!path.empty()) {
        ASSERT_TRUE(cluster.UnlinkFile(path, 0).ok()) << path;
        live_files.erase(path);
      }
    } else if (dice < 80) {  // lookup of live or dead file
      if (rng.NextBool(0.8)) {
        const auto path = random_live();
        if (!path.empty()) {
          const auto r = cluster.Lookup(path, 0);
          ASSERT_TRUE(r.found) << "step " << step << " lost " << path;
          ASSERT_EQ(r.home, cluster.OracleHome(path)) << path;
        }
      } else {
        const auto r =
            cluster.Lookup("/fz/never/" + std::to_string(step), 0);
        ASSERT_FALSE(r.found);
      }
    } else if (dice < 86) {  // join
      ASSERT_TRUE(cluster.AddMds(nullptr).ok());
    } else if (dice < 91) {  // graceful leave
      if (cluster.NumMds() > 3) {
        const auto& alive = cluster.alive();
        ASSERT_TRUE(
            cluster.RemoveMds(alive[rng.NextBounded(alive.size())], nullptr)
                .ok());
      }
    } else if (dice < 94) {  // failure (loses files)
      if (cluster.NumMds() > 3) {
        const auto& alive = cluster.alive();
        const MdsId victim = alive[rng.NextBounded(alive.size())];
        // Forget the files that die with it.
        std::vector<std::string> dead;
        cluster.node(victim).store().ForEach(
            [&](const std::string& path, const FileMetadata&) {
              dead.push_back(path);
            });
        ASSERT_TRUE(cluster.FailMds(victim, nullptr).ok());
        for (const auto& path : dead) live_files.erase(path);
      }
    } else if (dice < 97) {  // rename a directory
      const std::string from = "/fz/d" + std::to_string(rng.NextBounded(8)) + "/";
      const std::string to = "/fz/r" + std::to_string(next_dir++) + "/";
      const auto renamed = cluster.RenamePrefix(from, to, 0, nullptr);
      ASSERT_TRUE(renamed.ok());
      if (*renamed > 0) {
        std::vector<std::string> moved;
        for (const auto& path : live_files) {
          if (path.compare(0, from.size(), from) == 0) moved.push_back(path);
        }
        for (const auto& path : moved) {
          live_files.erase(path);
          live_files.insert(to + path.substr(from.size()));
        }
      }
    } else {  // forced publish of a random MDS
      const auto& alive = cluster.alive();
      cluster.PublishReplica(alive[rng.NextBounded(alive.size())], 0);
    }

    if (step % 50 == 0) {
      const Status inv = cluster.CheckInvariants();
      ASSERT_TRUE(inv.ok()) << "step " << step << ": " << inv.ToString();
    }
  }

  // Final sweep: every live file reachable at its oracle home, every
  // removed one a definitive miss.
  const Status inv = cluster.CheckInvariants();
  ASSERT_TRUE(inv.ok()) << inv.ToString();
  for (const auto& path : live_files) {
    const auto r = cluster.Lookup(path, 0);
    ASSERT_TRUE(r.found) << path;
    ASSERT_EQ(r.home, cluster.OracleHome(path)) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace ghba
