#include "core/table_cluster.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

ClusterConfig SmallConfig(std::uint32_t n = 6) {
  ClusterConfig c;
  c.num_mds = n;
  c.expected_files_per_mds = 1000;
  c.seed = 23;
  return c;
}

FileMetadata Md(std::uint64_t inode = 1) {
  FileMetadata md;
  md.inode = inode;
  return md;
}

class TableClusterTest : public ::testing::Test {
 protected:
  TableClusterTest() : cluster_(SmallConfig()) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(
          cluster_.CreateFile("/t/f" + std::to_string(i), Md(i), 0).ok());
    }
    cluster_.metrics().Reset();
  }

  TableMappingCluster cluster_;
};

TEST_F(TableClusterTest, ExactLookupsEverywhere) {
  for (int i = 0; i < 200; ++i) {
    const auto r = cluster_.Lookup("/t/f" + std::to_string(i), 0);
    EXPECT_TRUE(r.found) << i;
    EXPECT_EQ(r.messages, 2u);
  }
  EXPECT_TRUE(cluster_.CheckInvariants().ok());
}

TEST_F(TableClusterTest, AbsentKeyAnsweredLocally) {
  const auto r = cluster_.Lookup("/t/ghost", 0);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.messages, 0u);  // the table says no without any network
}

TEST_F(TableClusterTest, MutationsBroadcastTableUpdates) {
  const std::uint64_t before = cluster_.metrics().update_messages;
  ASSERT_TRUE(cluster_.CreateFile("/t/new", Md(), 0).ok());
  EXPECT_EQ(cluster_.metrics().update_messages - before, 5u);  // N-1
  ASSERT_TRUE(cluster_.UnlinkFile("/t/new", 0).ok());
  EXPECT_EQ(cluster_.metrics().update_messages - before, 10u);
}

TEST_F(TableClusterTest, LookupStateIsOrderN) {
  const auto bytes_small = cluster_.LookupStateBytes(0);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        cluster_.CreateFile("/more/f" + std::to_string(i), Md(i), 0).ok());
  }
  const auto bytes_big = cluster_.LookupStateBytes(0);
  // Doubling the file count ~doubles the table.
  EXPECT_GT(bytes_big, bytes_small * 3 / 2);
}

TEST_F(TableClusterTest, AddMdsZeroMigrationButFullTableDownload) {
  ReconfigReport rep;
  ASSERT_TRUE(cluster_.AddMds(&rep).ok());
  EXPECT_EQ(rep.files_migrated, 0u);
  EXPECT_EQ(rep.replicas_migrated, 0u);
  EXPECT_GE(rep.messages, 200u);  // the O(n) bootstrap transfer
  EXPECT_TRUE(cluster_.CheckInvariants().ok());
}

TEST_F(TableClusterTest, RemoveMdsRehomesAndServes) {
  ReconfigReport rep;
  ASSERT_TRUE(cluster_.RemoveMds(2, &rep).ok());
  EXPECT_TRUE(cluster_.CheckInvariants().ok());
  for (int i = 0; i < 200; ++i) {
    const auto r = cluster_.Lookup("/t/f" + std::to_string(i), 0);
    EXPECT_TRUE(r.found) << i;
    EXPECT_NE(r.home, 2u);
  }
}

TEST_F(TableClusterTest, RenameKeepsHomesButBroadcasts) {
  ReconfigReport rep;
  const auto renamed = cluster_.RenamePrefix("/t/", "/moved/", 0, &rep);
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(*renamed, 200u);
  EXPECT_EQ(rep.files_migrated, 0u);
  EXPECT_GE(rep.messages, 200u * 5u);  // every entry to every other copy
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(cluster_.Lookup("/moved/f" + std::to_string(i), 0).found);
  }
}

}  // namespace
}  // namespace ghba
