// Digest-once contract for the lookup fast path: a single Lookup computes at
// most one Murmur3_128 digest per *distinct filter seed*, no matter how many
// filters it probes or how deep in the hierarchy it goes. The clusters use
// two seeds — the LRU array's (0x1111 ^ config.seed) and the shared
// local-filter/replica seed (config.seed ^ 0x5151) — so the ceiling is 2.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "core/ghba_cluster.hpp"
#include "core/hba_cluster.hpp"
#include "hash/murmur3.hpp"

namespace ghba {
namespace {

ClusterConfig FastpathConfig() {
  ClusterConfig c;
  c.num_mds = 12;
  c.max_group_size = 3;
  c.expected_files_per_mds = 512;
  c.lru_capacity = 64;
  c.publish_after_mutations = 1u << 30;  // publish only via FlushReplicas
  c.seed = 42;
  return c;
}

template <typename Cluster>
void Populate(Cluster& cluster, int files) {
  for (int i = 0; i < files; ++i) {
    ASSERT_TRUE(
        cluster.CreateFile("/fp/f" + std::to_string(i), FileMetadata{}, 0)
            .ok());
  }
  cluster.FlushReplicas(0);
}

std::uint64_t DigestsDuring(const std::function<void()>& op) {
  const std::uint64_t before = Murmur3DigestCount();
  op();
  return Murmur3DigestCount() - before;
}

TEST(LookupFastpathTest, GhbaMissReachingL4HashesOncePerSeed) {
  GhbaCluster cluster(FastpathConfig());
  Populate(cluster, 200);
  // An absent path falls through L1 (zero or false hit), L2, the L3 group
  // multicast and the L4 global multicast — dozens of filter probes across
  // 12 nodes — yet may only hash twice: once per distinct seed.
  for (int i = 0; i < 16; ++i) {
    const std::string path = "/fp/absent" + std::to_string(i);
    LookupOutcome r;
    const auto digests = DigestsDuring([&] { r = cluster.Lookup(path, 0); });
    EXPECT_FALSE(r.found) << path;
    EXPECT_LE(digests, 2u) << path;
  }
}

TEST(LookupFastpathTest, GhbaHitHashesOncePerSeed) {
  GhbaCluster cluster(FastpathConfig());
  Populate(cluster, 200);
  // Found paths additionally Touch the entry node's LRU (and cooperative
  // caches), but those reuse the same LRU seed, so the bound is unchanged.
  for (int i = 0; i < 32; ++i) {
    const std::string path = "/fp/f" + std::to_string(i * 5);
    LookupOutcome r;
    const auto digests = DigestsDuring([&] { r = cluster.Lookup(path, 0); });
    EXPECT_TRUE(r.found) << path;
    EXPECT_LE(digests, 2u) << path;
  }
}

TEST(LookupFastpathTest, HbaLookupHashesOncePerSeed) {
  auto config = FastpathConfig();
  HbaCluster cluster(config, /*use_lru=*/true);
  Populate(cluster, 200);
  for (int i = 0; i < 16; ++i) {
    LookupOutcome hit;
    EXPECT_LE(DigestsDuring([&] {
                hit = cluster.Lookup("/fp/f" + std::to_string(i * 7), 0);
              }),
              2u);
    EXPECT_TRUE(hit.found);
    LookupOutcome miss;
    EXPECT_LE(DigestsDuring([&] {
                miss = cluster.Lookup("/fp/no" + std::to_string(i), 0);
              }),
              2u);
    EXPECT_FALSE(miss.found);
  }
}

TEST(LookupFastpathTest, RepeatLookupsStayBounded) {
  // A warmed LRU must not change the bound: the L1 unique-hit path plus
  // verification plus Touch still hashes at most twice.
  GhbaCluster cluster(FastpathConfig());
  Populate(cluster, 64);
  const std::string path = "/fp/f7";
  (void)cluster.Lookup(path, 0);  // warm caches
  for (int i = 0; i < 8; ++i) {
    LookupOutcome r;
    EXPECT_LE(DigestsDuring([&] { r = cluster.Lookup(path, 0); }), 2u);
    EXPECT_TRUE(r.found);
  }
}

}  // namespace
}  // namespace ghba
