// Directory-rename semantics across schemes (Table 1's "Directory
// Operations" axis): Bloom-filter schemes rename in place; pathname-hashed
// placement must migrate re-hashed files.
#include <gtest/gtest.h>

#include <string>

#include "core/ghba_cluster.hpp"
#include "core/hash_cluster.hpp"
#include "core/hba_cluster.hpp"

namespace ghba {
namespace {

ClusterConfig RenameConfig() {
  ClusterConfig c;
  c.num_mds = 8;
  c.max_group_size = 3;
  c.expected_files_per_mds = 1000;
  c.publish_after_mutations = 16;
  c.seed = 41;
  return c;
}

FileMetadata Md(std::uint64_t inode = 1) {
  FileMetadata md;
  md.inode = inode;
  return md;
}

template <typename Cluster>
void PopulateTwoDirs(Cluster& cluster) {
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(
        cluster.CreateFile("/old/a/f" + std::to_string(i), Md(i), 0).ok());
  }
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        cluster.CreateFile("/other/f" + std::to_string(i), Md(i + 1000), 0)
            .ok());
  }
  cluster.FlushReplicas(0);
  cluster.metrics().Reset();
}

template <typename Cluster>
void CheckRenamedVisibility(Cluster& cluster) {
  cluster.FlushReplicas(0);
  for (int i = 0; i < 120; ++i) {
    EXPECT_FALSE(cluster.Lookup("/old/a/f" + std::to_string(i), 0).found)
        << i;
    EXPECT_TRUE(cluster.Lookup("/new/a/f" + std::to_string(i), 0).found) << i;
  }
  // Unrelated directory untouched.
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(cluster.Lookup("/other/f" + std::to_string(i), 0).found) << i;
  }
}

TEST(RenameTest, GhbaRenamesWithoutMigration) {
  GhbaCluster cluster(RenameConfig());
  PopulateTwoDirs(cluster);
  ReconfigReport rep;
  const auto renamed = cluster.RenamePrefix("/old/", "/new/", 0, &rep);
  ASSERT_TRUE(renamed.ok()) << renamed.status().ToString();
  EXPECT_EQ(*renamed, 120u);
  EXPECT_EQ(rep.files_migrated, 0u);  // homes unchanged: the whole point
  CheckRenamedVisibility(cluster);
  EXPECT_TRUE(cluster.CheckInvariants().ok());
}

TEST(RenameTest, HbaRenamesWithoutMigration) {
  HbaCluster cluster(RenameConfig());
  PopulateTwoDirs(cluster);
  ReconfigReport rep;
  const auto renamed = cluster.RenamePrefix("/old/", "/new/", 0, &rep);
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(*renamed, 120u);
  EXPECT_EQ(rep.files_migrated, 0u);
  CheckRenamedVisibility(cluster);
}

TEST(RenameTest, HashPlacementMustMigrate) {
  HashPlacementCluster cluster(RenameConfig());
  PopulateTwoDirs(cluster);
  ReconfigReport rep;
  const auto renamed = cluster.RenamePrefix("/old/", "/new/", 0, &rep);
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(*renamed, 120u);
  // Re-hashing sends ~ (N-1)/N of the files to a different server.
  EXPECT_GT(rep.files_migrated, 80u);
  CheckRenamedVisibility(cluster);
  EXPECT_TRUE(cluster.CheckInvariants().ok());
}

TEST(RenameTest, HomesPreservedByBloomSchemes) {
  GhbaCluster cluster(RenameConfig());
  PopulateTwoDirs(cluster);
  std::vector<MdsId> homes_before;
  for (int i = 0; i < 120; ++i) {
    homes_before.push_back(cluster.OracleHome("/old/a/f" + std::to_string(i)));
  }
  ASSERT_TRUE(cluster.RenamePrefix("/old/", "/new/", 0, nullptr).ok());
  for (int i = 0; i < 120; ++i) {
    EXPECT_EQ(cluster.OracleHome("/new/a/f" + std::to_string(i)),
              homes_before[i])
        << i;
  }
}

TEST(RenameTest, CollisionRejectedAtomically) {
  GhbaCluster cluster(RenameConfig());
  ASSERT_TRUE(cluster.CreateFile("/old/x", Md(1), 0).ok());
  ASSERT_TRUE(cluster.CreateFile("/new/x", Md(2), 0).ok());
  const auto renamed = cluster.RenamePrefix("/old/", "/new/", 0, nullptr);
  EXPECT_EQ(renamed.status().code(), StatusCode::kAlreadyExists);
  // Nothing changed: both originals still resolve.
  cluster.FlushReplicas(0);
  EXPECT_TRUE(cluster.Lookup("/old/x", 0).found);
  EXPECT_TRUE(cluster.Lookup("/new/x", 0).found);
}

TEST(RenameTest, EmptyPrefixRejected) {
  GhbaCluster cluster(RenameConfig());
  EXPECT_EQ(cluster.RenamePrefix("", "/new/", 0, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster.RenamePrefix("/old/", "", 0, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RenameTest, NoMatchesIsZeroNotError) {
  GhbaCluster cluster(RenameConfig());
  const auto renamed = cluster.RenamePrefix("/nothing/", "/new/", 0, nullptr);
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(*renamed, 0u);
}

}  // namespace
}  // namespace ghba
