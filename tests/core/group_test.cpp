#include "core/group.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

Group MakeGroup(std::initializer_list<MdsId> members) {
  Group g;
  g.id = 1;
  for (const MdsId m : members) {
    g.members.push_back(m);
    g.idbfa.AddMember(m);
  }
  return g;
}

TEST(GroupTest, MembershipQueries) {
  const Group g = MakeGroup({1, 4, 9});
  EXPECT_TRUE(g.HasMember(4));
  EXPECT_FALSE(g.HasMember(2));
  EXPECT_EQ(g.size(), 3u);
}

TEST(GroupTest, LoadCountsReplicasPerHolder) {
  Group g = MakeGroup({1, 2});
  g.replica_holder[10] = 1;
  g.replica_holder[11] = 1;
  g.replica_holder[12] = 2;
  EXPECT_EQ(g.LoadOf(1), 2u);
  EXPECT_EQ(g.LoadOf(2), 1u);
  EXPECT_EQ(g.LoadOf(99), 0u);
}

TEST(GroupTest, LightestMemberPrefersLowLoadThenLowId) {
  Group g = MakeGroup({3, 1, 2});
  g.replica_holder[10] = 1;
  g.replica_holder[11] = 2;
  // 3 has zero load -> lightest.
  EXPECT_EQ(g.LightestMember(), 3u);
  g.replica_holder[12] = 3;
  // All tied at 1 -> lowest id wins.
  EXPECT_EQ(g.LightestMember(), 1u);
}

TEST(GroupTest, ReplicasHeldBySorted) {
  Group g = MakeGroup({1, 2});
  g.replica_holder[30] = 1;
  g.replica_holder[10] = 1;
  g.replica_holder[20] = 2;
  EXPECT_EQ(g.ReplicasHeldBy(1), (std::vector<MdsId>{10, 30}));
  EXPECT_EQ(g.ReplicasHeldBy(2), (std::vector<MdsId>{20}));
  EXPECT_TRUE(g.ReplicasHeldBy(7).empty());
}

TEST(GroupTest, IdbfaTracksMembership) {
  Group g = MakeGroup({5, 6});
  ASSERT_TRUE(g.idbfa.AddReplica(5, 42).ok());
  const auto loc = g.idbfa.Locate(42);
  ASSERT_EQ(loc.kind, ArrayQueryResult::Kind::kUniqueHit);
  EXPECT_EQ(loc.owner, 5u);
}

}  // namespace
}  // namespace ghba
