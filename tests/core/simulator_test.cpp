#include "core/simulator.hpp"

#include <gtest/gtest.h>

#include "core/ghba_cluster.hpp"
#include "core/hba_cluster.hpp"

namespace ghba {
namespace {

WorkloadProfile TinyProfile() {
  WorkloadProfile p;
  p.name = "tiny";
  p.total_files = 600;
  p.active_files = 150;
  p.users = 8;
  p.hosts = 3;
  p.ops_per_second = 500;
  return p;
}

ClusterConfig TestConfig() {
  ClusterConfig c;
  c.num_mds = 9;
  c.max_group_size = 3;
  c.expected_files_per_mds = 500;
  c.lru_capacity = 128;
  c.publish_after_mutations = 32;
  c.seed = 21;
  return c;
}

TEST(ReplaySimulatorTest, PopulateCreatesInitialNamespace) {
  GhbaCluster cluster(TestConfig());
  ReplaySimulator sim(cluster);
  IntensifiedTrace trace(TinyProfile(), 2, 5, 100);
  sim.Populate(trace);
  std::uint64_t total = 0;
  for (const MdsId id : cluster.alive()) {
    total += cluster.node(id).file_count();
  }
  EXPECT_EQ(total, trace.InitialFileCount());
  // Populate resets metrics: the workload starts clean.
  EXPECT_EQ(cluster.metrics().levels.total(), 0u);
}

TEST(ReplaySimulatorTest, ReplayCountsOpsByKind) {
  GhbaCluster cluster(TestConfig());
  ReplaySimulator sim(cluster);
  IntensifiedTrace trace(TinyProfile(), 2, 5, 0);
  sim.Populate(trace);
  const auto result = sim.Replay(trace, 3000);
  EXPECT_EQ(result.ops_replayed, 3000u);
  EXPECT_EQ(result.lookups + result.creates + result.unlinks, 3000u);
  EXPECT_GT(result.lookups, result.creates);
}

TEST(ReplaySimulatorTest, MostLookupsSucceed) {
  GhbaCluster cluster(TestConfig());
  ReplaySimulator sim(cluster);
  IntensifiedTrace trace(TinyProfile(), 2, 7, 0);
  sim.Populate(trace);
  const auto result = sim.Replay(trace, 4000);
  // References to unlinked files can miss; the bulk must succeed.
  EXPECT_LT(static_cast<double>(result.not_found),
            0.05 * static_cast<double>(result.lookups));
}

TEST(ReplaySimulatorTest, CheckpointsEmittedAtRequestedCadence) {
  GhbaCluster cluster(TestConfig());
  ReplaySimulator sim(cluster);
  IntensifiedTrace trace(TinyProfile(), 1, 9, 0);
  sim.Populate(trace);
  const auto result = sim.Replay(trace, 1000, /*checkpoint_every=*/250);
  // 4 periodic; the final snapshot is not duplicated when the cadence
  // already produced one at the last op.
  ASSERT_EQ(result.checkpoints.size(), 4u);
  EXPECT_EQ(result.checkpoints[0].ops, 250u);
  EXPECT_EQ(result.checkpoints[3].ops, 1000u);
  EXPECT_EQ(result.checkpoints.back().ops, 1000u);
  for (const auto& cp : result.checkpoints) {
    EXPECT_GT(cp.avg_latency_ms, 0.0);
  }
}

TEST(ReplaySimulatorTest, LevelCountersCoverAllLookups) {
  GhbaCluster cluster(TestConfig());
  ReplaySimulator sim(cluster);
  IntensifiedTrace trace(TinyProfile(), 2, 11, 0);
  sim.Populate(trace);
  const auto result = sim.Replay(trace, 2000);
  EXPECT_EQ(cluster.metrics().levels.total(), result.lookups);
}

TEST(ReplaySimulatorTest, LocalityYieldsL1Hits) {
  GhbaCluster cluster(TestConfig());
  ReplaySimulator sim(cluster);
  auto profile = TinyProfile();
  profile.rereference_prob = 0.7;
  IntensifiedTrace trace(profile, 1, 13, 0);
  sim.Populate(trace);
  (void)sim.Replay(trace, 5000);
  const auto& levels = cluster.metrics().levels;
  // With strong temporal locality a solid share of lookups must resolve at
  // L1 (the paper reports >80% at L1+L2).
  EXPECT_GT(levels.Fraction(levels.l1), 0.2);
}

TEST(ReplaySimulatorTest, CloseWritesAttributesAtHome) {
  GhbaCluster cluster(TestConfig());
  FileMetadata md;
  md.inode = 9;
  ASSERT_TRUE(cluster.CreateFile("/w/file", md, 0).ok());
  cluster.FlushReplicas(0);

  const auto r = cluster.CloseFile("/w/file", /*now_ms=*/5000.0, 8192);
  ASSERT_TRUE(r.found);
  const auto stored = cluster.node(r.home).store().Lookup("/w/file");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->size_bytes, 8192u);
  EXPECT_DOUBLE_EQ(stored->mtime, 5.0);

  // Close of a missing file is a miss, not a crash.
  const auto miss = cluster.CloseFile("/w/ghost", 0, 1);
  EXPECT_FALSE(miss.found);
}

TEST(ReplaySimulatorTest, WorksWithHbaToo) {
  HbaCluster cluster(TestConfig());
  ReplaySimulator sim(cluster);
  IntensifiedTrace trace(TinyProfile(), 2, 15, 0);
  sim.Populate(trace);
  const auto result = sim.Replay(trace, 1500);
  EXPECT_EQ(result.ops_replayed, 1500u);
  EXPECT_LT(static_cast<double>(result.not_found),
            0.05 * static_cast<double>(result.lookups));
}

}  // namespace
}  // namespace ghba
