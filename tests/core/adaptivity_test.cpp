#include "core/adaptivity.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace ghba {
namespace {

AdaptivityOptions Enabled() {
  AdaptivityOptions options;
  options.enabled = true;
  options.cooldown_ticks = 2;
  options.min_lookup_samples = 64;
  return options;
}

/// A healthy, within-thresholds cluster sample: 8 servers in groups of 4
/// (within M=8), memory half full, warm counters, no dead peers.
AdaptivitySignals SteadySignals() {
  AdaptivitySignals signals;
  signals.num_mds = 8;
  signals.num_groups = 2;
  signals.largest_group = 4;
  signals.max_group_size = 8;
  signals.lookups_total = 10000;
  signals.lookup_state_bytes = 512 << 10;
  signals.memory_budget_bytes = 1 << 20;
  signals.dead_peers = 0;
  signals.latency.p_lru = 0.5;
  signals.latency.p_l2 = 0.3;
  signals.latency.d_lru = 0.01;
  signals.latency.d_l2 = 0.05;
  signals.latency.d_group = 0.5;
  signals.latency.d_net = 0.2;
  return signals;
}

TEST(AdaptivityControllerTest, DisabledNeverActs) {
  AdaptivityController controller{AdaptivityOptions{}};  // enabled=false
  auto signals = SteadySignals();
  signals.largest_group = signals.max_group_size + 5;  // flagrant violation
  EXPECT_EQ(controller.Evaluate(signals).action, AdaptiveAction::kNone);
}

TEST(AdaptivityControllerTest, SteadyStateHoldsStill) {
  AdaptivityController controller{Enabled()};
  const auto decision = controller.Evaluate(SteadySignals());
  EXPECT_EQ(decision.action, AdaptiveAction::kNone);
  EXPECT_EQ(controller.cooldown_remaining(), 0u);
}

TEST(AdaptivityControllerTest, GroupPastHardCeilingSplitsWithoutSamples) {
  AdaptivityController controller{Enabled()};
  auto signals = SteadySignals();
  signals.largest_group = 9;  // > M=8
  signals.lookups_total = 0;  // cold counters must not gate the invariant
  EXPECT_EQ(controller.Evaluate(signals).action, AdaptiveAction::kSplitGroup);
}

TEST(AdaptivityControllerTest, MemoryOverloadAddsServer) {
  AdaptivityController controller{Enabled()};
  auto signals = SteadySignals();
  signals.lookup_state_bytes = signals.memory_budget_bytes;  // 100% full
  EXPECT_EQ(controller.Evaluate(signals).action, AdaptiveAction::kAddServer);
}

TEST(AdaptivityControllerTest, ColdCountersGateMeasuredDecisions) {
  AdaptivityController controller{Enabled()};
  auto signals = SteadySignals();
  signals.lookups_total = 3;  // below min_lookup_samples
  signals.lookup_state_bytes = 0;  // would otherwise look underloaded
  const auto decision = controller.Evaluate(signals);
  EXPECT_EQ(decision.action, AdaptiveAction::kNone);
  EXPECT_EQ(decision.reason, "too few lookup samples");
}

TEST(AdaptivityControllerTest, GroupPastMeasuredOptimumSplits) {
  AdaptivityController controller{Enabled()};
  auto signals = SteadySignals();
  // Make the global multicast expensive: Eq. 4 scales D_net by M, so a
  // large D_net pushes the Eq. 2 argmax down to small groups and the
  // current fullest group (4, within the hard ceiling 8) is now oversized.
  signals.latency.d_net = 2.0;
  const std::uint32_t optimum = controller.RecommendedGroupSize(signals);
  ASSERT_LT(optimum, signals.largest_group);
  EXPECT_EQ(controller.Evaluate(signals).action, AdaptiveAction::kSplitGroup);
}

TEST(AdaptivityControllerTest, UnderloadRemovesServerOnlyWhenHealthy) {
  auto signals = SteadySignals();
  signals.lookup_state_bytes = 1 << 10;  // ~0.1% of the budget
  {
    AdaptivityController controller{Enabled()};
    EXPECT_EQ(controller.Evaluate(signals).action,
              AdaptiveAction::kRemoveServer);
  }
  {
    AdaptivityController controller{Enabled()};
    auto sick = signals;
    sick.dead_peers = 1;  // a fail-over is in flight: capacity is stale
    EXPECT_EQ(controller.Evaluate(sick).action, AdaptiveAction::kNone);
  }
}

TEST(AdaptivityControllerTest, MinServersFloorsShrinking) {
  auto options = Enabled();
  options.min_servers = 8;
  AdaptivityController controller{options};
  auto signals = SteadySignals();  // num_mds = 8 == floor
  signals.lookup_state_bytes = 0;
  EXPECT_EQ(controller.Evaluate(signals).action, AdaptiveAction::kNone);
}

TEST(AdaptivityControllerTest, CooldownThrottlesConsecutiveActions) {
  AdaptivityController controller{Enabled()};  // cooldown_ticks = 2
  auto signals = SteadySignals();
  signals.largest_group = signals.max_group_size + 1;
  EXPECT_EQ(controller.Evaluate(signals).action, AdaptiveAction::kSplitGroup);
  EXPECT_EQ(controller.cooldown_remaining(), 2u);
  // The violation persists, but the controller waits out its own dust.
  EXPECT_EQ(controller.Evaluate(signals).action, AdaptiveAction::kNone);
  EXPECT_EQ(controller.Evaluate(signals).action, AdaptiveAction::kNone);
  EXPECT_EQ(controller.Evaluate(signals).action, AdaptiveAction::kSplitGroup);
}

}  // namespace
}  // namespace ghba
