// TxnManager: the server-side 2PC tables. Intent locks must fence exactly
// the paths with in-doubt prepares, closing must be idempotent, and both
// bounded tables (decisions, closed history) must age FIFO without ever
// forgetting an *open* obligation.
#include "txn/txn_manager.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace ghba {
namespace {

TxnPendingOp MakeOp(std::uint64_t txn_id, const std::string& path,
                    TxnSubOp subop = TxnSubOp::kInsert,
                    MdsId coordinator = 0) {
  TxnPendingOp op;
  op.txn_id = txn_id;
  op.subop = subop;
  op.path = path;
  op.coordinator = coordinator;
  op.participants = {coordinator};
  return op;
}

TEST(TxnManagerTest, IntentLockLifecycle) {
  TxnManager m;
  MutexLock lock(&m.mu());
  EXPECT_FALSE(m.IsLockedByOtherLocked("/a", 0));

  m.AddPendingLocked(MakeOp(7, "/a", TxnSubOp::kRemove));
  // Plain mutations (txn_id 0) and other txns are fenced; the owner is not.
  EXPECT_TRUE(m.IsLockedByOtherLocked("/a", 0));
  EXPECT_TRUE(m.IsLockedByOtherLocked("/a", 8));
  EXPECT_FALSE(m.IsLockedByOtherLocked("/a", 7));
  EXPECT_FALSE(m.IsLockedByOtherLocked("/b", 0));

  const TxnPendingOp* found = m.FindPendingLocked(7, "/a");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->subop, TxnSubOp::kRemove);
  EXPECT_EQ(m.FindPendingLocked(7, "/b"), nullptr);
  EXPECT_EQ(m.FindPendingLocked(9, "/a"), nullptr);

  m.ClosePendingLocked(7, "/a", /*committed=*/true);
  EXPECT_FALSE(m.IsLockedByOtherLocked("/a", 0));
  EXPECT_EQ(m.FindPendingLocked(7, "/a"), nullptr);
  const auto outcome = m.ClosedOutcomeLocked(7);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(*outcome);
  EXPECT_FALSE(m.ClosedOutcomeLocked(8).has_value());
}

TEST(TxnManagerTest, CloseOfUnknownOpStillRecordsTheOutcome) {
  TxnManager m;
  MutexLock lock(&m.mu());
  m.ClosePendingLocked(1, "/nope", /*committed=*/false);
  EXPECT_FALSE(m.IsLockedByOtherLocked("/nope", 0));
  // Nothing was pending, but the outcome is still recorded: a duplicate
  // commit/abort retry must be answerable ("txn already closed") even when
  // the first finish raced ahead of the retransmit.
  const auto outcome = m.ClosedOutcomeLocked(1);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(*outcome);
}

TEST(TxnManagerTest, ReprepareReplacesAndKeepsOneLock) {
  TxnManager m;
  MutexLock lock(&m.mu());
  m.AddPendingLocked(MakeOp(5, "/x", TxnSubOp::kInsert));
  auto redo = MakeOp(5, "/x", TxnSubOp::kInsert);
  redo.metadata.inode = 99;
  m.AddPendingLocked(std::move(redo));

  EXPECT_EQ(m.PendingLocked().size(), 1u);
  const TxnPendingOp* found = m.FindPendingLocked(5, "/x");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->metadata.inode, 99u);
  m.ClosePendingLocked(5, "/x", /*committed=*/false);
  EXPECT_FALSE(m.IsLockedByOtherLocked("/x", 0));
}

TEST(TxnManagerTest, CloseReleasesOnlyTheOwnersLock) {
  TxnManager m;
  MutexLock lock(&m.mu());
  m.AddPendingLocked(MakeOp(1, "/p"));
  // A foreign close for the same path must not release txn 1's lock.
  m.ClosePendingLocked(2, "/p", /*committed=*/false);
  EXPECT_TRUE(m.IsLockedByOtherLocked("/p", 0));
  m.ClosePendingLocked(1, "/p", /*committed=*/true);
  EXPECT_FALSE(m.IsLockedByOtherLocked("/p", 0));
}

TEST(TxnManagerTest, CoordinatorDecisionLifecycle) {
  TxnManager m;
  MutexLock lock(&m.mu());
  EXPECT_FALSE(m.QueryLocked(11).has_value());

  m.BeginLocked(11);
  ASSERT_TRUE(m.QueryLocked(11).has_value());
  EXPECT_EQ(*m.QueryLocked(11), TxnCoordState::kBegun);

  m.DecideLocked(11, /*commit=*/true);
  EXPECT_EQ(*m.QueryLocked(11), TxnCoordState::kCommitted);

  // Re-begin after a decision must not reopen the txn.
  m.BeginLocked(11);
  EXPECT_EQ(*m.QueryLocked(11), TxnCoordState::kCommitted);

  m.BeginLocked(12);
  m.DecideLocked(12, /*commit=*/false);
  EXPECT_EQ(*m.QueryLocked(12), TxnCoordState::kAborted);
}

TEST(TxnManagerTest, DecisionTableAgesFifo) {
  TxnManager m;
  MutexLock lock(&m.mu());
  for (std::uint64_t id = 1; id <= kMaxTxnCoordEntries + 8; ++id) {
    m.BeginLocked(id);
    m.DecideLocked(id, /*commit=*/true);
  }
  // The oldest rows aged out (presumed abort makes that safe); the newest
  // are still answerable.
  EXPECT_FALSE(m.QueryLocked(1).has_value());
  EXPECT_TRUE(m.QueryLocked(kMaxTxnCoordEntries + 8).has_value());
}

TEST(TxnManagerTest, ClosedHistoryAgesFifo) {
  TxnManager m;
  MutexLock lock(&m.mu());
  for (std::uint64_t id = 1; id <= kMaxTxnClosedEntries + 8; ++id) {
    m.AddPendingLocked(MakeOp(id, "/f" + std::to_string(id)));
    m.ClosePendingLocked(id, "/f" + std::to_string(id), /*committed=*/true);
  }
  EXPECT_FALSE(m.ClosedOutcomeLocked(1).has_value());
  EXPECT_TRUE(m.ClosedOutcomeLocked(kMaxTxnClosedEntries + 8).has_value());
}

TEST(TxnManagerTest, SeedRestoresLocksDecisionsAndHistory) {
  TxnManager m;
  std::vector<TxnPendingOp> pending{MakeOp(3, "/locked", TxnSubOp::kRemove)};
  std::vector<TxnCoordEntry> decisions{{3, TxnCoordState::kCommitted},
                                       {4, TxnCoordState::kBegun}};
  std::vector<std::pair<std::uint64_t, bool>> closed{{2, true}, {1, false}};
  m.Seed(std::move(pending), std::move(decisions), closed);

  MutexLock lock(&m.mu());
  EXPECT_TRUE(m.IsLockedByOtherLocked("/locked", 0));
  ASSERT_NE(m.FindPendingLocked(3, "/locked"), nullptr);
  EXPECT_EQ(*m.QueryLocked(3), TxnCoordState::kCommitted);
  EXPECT_EQ(*m.QueryLocked(4), TxnCoordState::kBegun);
  ASSERT_TRUE(m.ClosedOutcomeLocked(2).has_value());
  EXPECT_TRUE(*m.ClosedOutcomeLocked(2));
  ASSERT_TRUE(m.ClosedOutcomeLocked(1).has_value());
  EXPECT_FALSE(*m.ClosedOutcomeLocked(1));
  EXPECT_EQ(m.PendingLocked().size(), 1u);
}

TEST(TxnManagerTest, SeedResetsPriorState) {
  TxnManager m;
  {
    MutexLock lock(&m.mu());
    m.AddPendingLocked(MakeOp(9, "/old"));
    m.BeginLocked(9);
  }
  m.Seed({}, {}, {});
  MutexLock lock(&m.mu());
  EXPECT_FALSE(m.IsLockedByOtherLocked("/old", 0));
  EXPECT_TRUE(m.PendingLocked().empty());
  EXPECT_FALSE(m.QueryLocked(9).has_value());
}

}  // namespace
}  // namespace ghba
