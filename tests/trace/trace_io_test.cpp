#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ghba {
namespace {

TEST(TraceIoTest, ParseMinimalLine) {
  const auto rec = ParseTraceLine("1.5 stat /a/b");
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_DOUBLE_EQ(rec->timestamp, 1.5);
  EXPECT_EQ(rec->op, OpType::kStat);
  EXPECT_EQ(rec->path, "/a/b");
  EXPECT_EQ(rec->user, 0u);
}

TEST(TraceIoTest, ParseFullLine) {
  const auto rec = ParseTraceLine("0.25 open /x/y.dat 42 7 3");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->op, OpType::kOpen);
  EXPECT_EQ(rec->user, 42u);
  EXPECT_EQ(rec->host, 7u);
  EXPECT_EQ(rec->subtrace, 3u);
}

TEST(TraceIoTest, ParseAllOps) {
  for (const auto op :
       {OpType::kOpen, OpType::kClose, OpType::kStat, OpType::kCreate,
        OpType::kUnlink}) {
    const std::string line = std::string("1 ") + OpTypeName(op) + " /f";
    const auto rec = ParseTraceLine(line);
    ASSERT_TRUE(rec.ok()) << line;
    EXPECT_EQ(rec->op, op);
  }
}

TEST(TraceIoTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseTraceLine("").ok());
  EXPECT_FALSE(ParseTraceLine("abc stat /a").ok());       // bad timestamp
  EXPECT_FALSE(ParseTraceLine("-1 stat /a").ok());        // negative ts
  EXPECT_FALSE(ParseTraceLine("1.0 frobnicate /a").ok()); // unknown op
  EXPECT_FALSE(ParseTraceLine("1.0 stat").ok());          // missing path
  EXPECT_FALSE(ParseTraceLine("1.0 stat relative/p").ok());
  EXPECT_FALSE(ParseTraceLine("1.0 stat /a 1 2 3 junk").ok());
  EXPECT_FALSE(ParseTraceLine("1.5x stat /a").ok());      // trailing in ts
}

TEST(TraceIoTest, ErrorsNameTheLine) {
  const auto rec = ParseTraceLine("nope stat /a", 17);
  ASSERT_FALSE(rec.ok());
  EXPECT_NE(rec.status().message().find("line 17"), std::string::npos);
}

TEST(TraceIoTest, FormatParseRoundTrip) {
  TraceRecord rec;
  rec.timestamp = 123.456789;
  rec.op = OpType::kCreate;
  rec.path = "/deep/nested/file.bin";
  rec.user = 9;
  rec.host = 4;
  rec.subtrace = 2;
  const auto parsed = ParseTraceLine(FormatTraceRecord(rec));
  ASSERT_TRUE(parsed.ok());
  EXPECT_NEAR(parsed->timestamp, rec.timestamp, 1e-6);
  EXPECT_EQ(parsed->op, rec.op);
  EXPECT_EQ(parsed->path, rec.path);
  EXPECT_EQ(parsed->user, rec.user);
  EXPECT_EQ(parsed->host, rec.host);
  EXPECT_EQ(parsed->subtrace, rec.subtrace);
}

TEST(TraceIoTest, StreamRoundTripWithCommentsAndBlanks) {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 20; ++i) {
    TraceRecord rec;
    rec.timestamp = i * 0.5;
    rec.op = (i % 2) ? OpType::kStat : OpType::kOpen;
    rec.path = "/t0/f" + std::to_string(i);
    rec.user = static_cast<std::uint32_t>(i);
    records.push_back(rec);
  }
  std::stringstream buffer;
  ASSERT_TRUE(SaveTrace(buffer, records).ok());
  buffer << "\n# trailing comment\n   \n";

  const auto loaded = LoadTrace(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*loaded)[i].path, records[i].path);
    EXPECT_EQ((*loaded)[i].op, records[i].op);
  }
}

TEST(TraceIoTest, LoadFailsOnFirstBadLine) {
  std::stringstream buffer;
  buffer << "1.0 stat /good\n";
  buffer << "2.0 bogus /bad\n";
  const auto loaded = LoadTrace(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ghba_trace_test.txt";
  std::vector<TraceRecord> records(3);
  records[0] = {0.1, OpType::kCreate, "/a", 1, 1, 0};
  records[1] = {0.2, OpType::kStat, "/a", 1, 1, 0};
  records[2] = {0.3, OpType::kUnlink, "/a", 1, 1, 0};
  ASSERT_TRUE(SaveTraceFile(path, records).ok());
  const auto loaded = LoadTraceFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[2].op, OpType::kUnlink);
}

TEST(TraceIoTest, MissingFileReported) {
  EXPECT_EQ(LoadTraceFile("/no/such/file.trace").status().code(),
            StatusCode::kNotFound);
}

TEST(TraceIoTest, MaterializeSyntheticTrace) {
  WorkloadProfile profile = HpProfile();
  profile.total_files = 500;
  profile.active_files = 100;
  SyntheticTrace synth(profile, 0, 3);
  const auto records = Materialize(synth, 100);
  EXPECT_EQ(records.size(), 100u);
  // Materialized synthetic traces must round-trip through the text format.
  std::stringstream buffer;
  ASSERT_TRUE(SaveTrace(buffer, records).ok());
  const auto loaded = LoadTrace(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), records.size());
  // ... and replay through a VectorTrace.
  VectorTrace replay(*loaded);
  int count = 0;
  while (replay.Next()) ++count;
  EXPECT_EQ(count, 100);
}

}  // namespace
}  // namespace ghba
