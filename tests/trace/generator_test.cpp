#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "trace/stats.hpp"

namespace ghba {
namespace {

WorkloadProfile TinyProfile() {
  WorkloadProfile p;
  p.name = "tiny";
  p.total_files = 1000;
  p.active_files = 200;
  p.users = 10;
  p.hosts = 4;
  p.ops_per_second = 100;
  return p;
}

TEST(SyntheticTraceTest, DeterministicForSameSeed) {
  SyntheticTrace a(TinyProfile(), 0, 7, 100);
  SyntheticTrace b(TinyProfile(), 0, 7, 100);
  for (int i = 0; i < 100; ++i) {
    const auto ra = a.Next();
    const auto rb = b.Next();
    ASSERT_TRUE(ra && rb);
    EXPECT_EQ(ra->path, rb->path);
    EXPECT_EQ(ra->op, rb->op);
    EXPECT_DOUBLE_EQ(ra->timestamp, rb->timestamp);
  }
}

TEST(SyntheticTraceTest, RespectsMaxOps) {
  SyntheticTrace t(TinyProfile(), 0, 1, 50);
  int count = 0;
  while (t.Next()) ++count;
  EXPECT_EQ(count, 50);
}

TEST(SyntheticTraceTest, TimestampsMonotone) {
  SyntheticTrace t(TinyProfile(), 0, 2, 500);
  double prev = -1;
  while (auto rec = t.Next()) {
    EXPECT_GT(rec->timestamp, prev);
    prev = rec->timestamp;
  }
}

TEST(SyntheticTraceTest, PathsStableAndScoped) {
  SyntheticTrace t(TinyProfile(), 3, 1);
  EXPECT_EQ(t.PathOfFile(5), t.PathOfFile(5));
  EXPECT_NE(t.PathOfFile(5), t.PathOfFile(6));
  EXPECT_EQ(t.PathOfFile(0).rfind("/t3/", 0), 0u) << t.PathOfFile(0);
}

TEST(SyntheticTraceTest, OpMixTracksProfile) {
  auto p = TinyProfile();
  p.stat_fraction = 0.70;
  p.open_fraction = 0.12;
  p.close_fraction = 0.12;
  p.create_fraction = 0.04;
  p.unlink_fraction = 0.02;
  SyntheticTrace t(p, 0, 11, 50000);
  TraceStats stats;
  while (auto rec = t.Next()) stats.Observe(*rec);
  const double total = static_cast<double>(stats.total_ops());
  EXPECT_NEAR(stats.stats() / total, 0.70, 0.02);
  EXPECT_NEAR(stats.opens() / total, 0.12, 0.01);
  EXPECT_NEAR(stats.closes() / total, 0.12, 0.01);
  EXPECT_NEAR(stats.creates() / total, 0.04, 0.01);
}

TEST(SyntheticTraceTest, CreatesAreFreshFiles) {
  SyntheticTrace t(TinyProfile(), 0, 3, 20000);
  std::set<std::string> created;
  while (auto rec = t.Next()) {
    if (rec->op == OpType::kCreate) {
      EXPECT_TRUE(created.insert(rec->path).second)
          << "duplicate create " << rec->path;
    }
  }
  EXPECT_GT(created.size(), 0u);
}

TEST(SyntheticTraceTest, UnlinksOnlyCreatedFiles) {
  SyntheticTrace t(TinyProfile(), 0, 4, 20000);
  std::set<std::string> created;
  while (auto rec = t.Next()) {
    if (rec->op == OpType::kCreate) created.insert(rec->path);
    if (rec->op == OpType::kUnlink) {
      EXPECT_TRUE(created.count(rec->path)) << rec->path;
      created.erase(rec->path);  // no double unlink
    }
  }
}

TEST(SyntheticTraceTest, AccessSkewConcentratesOnActiveSet) {
  auto p = TinyProfile();
  p.zipf_skew = 1.0;
  SyntheticTrace t(p, 0, 5, 30000);
  std::unordered_map<std::string, int> freq;
  while (auto rec = t.Next()) ++freq[rec->path];
  // Top-1% of touched files should absorb a large share of traffic.
  std::vector<int> counts;
  counts.reserve(freq.size());
  int total = 0;
  for (const auto& [path, c] : freq) {
    counts.push_back(c);
    total += c;
  }
  std::sort(counts.rbegin(), counts.rend());
  int head = 0;
  const std::size_t head_n = std::max<std::size_t>(counts.size() / 100, 1);
  for (std::size_t i = 0; i < head_n; ++i) head += counts[i];
  EXPECT_GT(static_cast<double>(head) / total, 0.10);
}

TEST(IntensifiedTraceTest, MergesByTimestamp) {
  IntensifiedTrace trace(TinyProfile(), 4, 9, 2000);
  double prev = 0;
  std::set<std::uint32_t> subtraces;
  while (auto rec = trace.Next()) {
    EXPECT_GE(rec->timestamp, prev);
    prev = rec->timestamp;
    subtraces.insert(rec->subtrace);
  }
  EXPECT_EQ(subtraces.size(), 4u);
}

TEST(IntensifiedTraceTest, SubtraceNamespacesDisjoint) {
  IntensifiedTrace trace(TinyProfile(), 3, 10, 3000);
  while (auto rec = trace.Next()) {
    const std::string expected_prefix = "/t" + std::to_string(rec->subtrace) + "/";
    EXPECT_EQ(rec->path.rfind(expected_prefix, 0), 0u) << rec->path;
  }
}

TEST(IntensifiedTraceTest, RespectsTotalOps) {
  IntensifiedTrace trace(TinyProfile(), 5, 11, 1234);
  int count = 0;
  while (trace.Next()) ++count;
  EXPECT_EQ(count, 1234);
}

TEST(IntensifiedTraceTest, InitialFileCountScalesWithTif) {
  IntensifiedTrace t1(TinyProfile(), 1, 1, 10);
  IntensifiedTrace t4(TinyProfile(), 4, 1, 10);
  EXPECT_EQ(t4.InitialFileCount(), 4 * t1.InitialFileCount());
  std::size_t seen = 0;
  t4.ForEachInitialFile([&](const std::string&) { ++seen; });
  EXPECT_EQ(seen, t4.InitialFileCount());
}

TEST(IntensifiedTraceTest, HigherTifIsHigherIntensity) {
  // Same wall-clock span must contain ~TIF times the operations.
  IntensifiedTrace t1(TinyProfile(), 1, 5, 5000);
  IntensifiedTrace t5(TinyProfile(), 5, 5, 5000);
  double end1 = 0, end5 = 0;
  while (auto r = t1.Next()) end1 = r->timestamp;
  while (auto r = t5.Next()) end5 = r->timestamp;
  // 5000 ops spread over ~5x the arrival rate -> ~1/5 the duration.
  EXPECT_LT(end5, end1 * 0.4);
}

TEST(VectorTraceTest, ReplaysInOrder) {
  std::vector<TraceRecord> recs(3);
  recs[0].path = "/a";
  recs[1].path = "/b";
  recs[2].path = "/c";
  VectorTrace t(std::move(recs));
  EXPECT_EQ(t.Next()->path, "/a");
  EXPECT_EQ(t.Next()->path, "/b");
  EXPECT_EQ(t.Next()->path, "/c");
  EXPECT_FALSE(t.Next().has_value());
}

}  // namespace
}  // namespace ghba
