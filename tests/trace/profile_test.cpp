#include "trace/profile.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

class ProfileTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileTest, FractionsFormADistribution) {
  const auto p = *ProfileByName(GetParam());
  const double sum = p.open_fraction + p.close_fraction + p.stat_fraction +
                     p.create_fraction + p.unlink_fraction;
  EXPECT_GT(sum, 0.95);
  EXPECT_LE(sum, 1.0 + 1e-9);
  EXPECT_GT(p.stat_fraction, 0);
  EXPECT_GT(p.open_fraction, 0);
}

TEST_P(ProfileTest, PopulationsSane) {
  const auto p = *ProfileByName(GetParam());
  EXPECT_GT(p.total_files, 0u);
  EXPECT_LE(p.active_files, p.total_files);
  EXPECT_GT(p.users, 0u);
  EXPECT_GT(p.hosts, 0u);
  EXPECT_GT(p.ops_per_second, 0);
  EXPECT_GT(p.zipf_skew, 0);
  EXPECT_GE(p.rereference_prob, 0);
  EXPECT_LE(p.rereference_prob, 1);
}

INSTANTIATE_TEST_SUITE_P(Named, ProfileTest,
                         ::testing::Values("ins", "res", "hp", "flash",
                                           "readdir", "tenant"));

TEST(ProfileLookupTest, CaseInsensitive) {
  EXPECT_EQ(ProfileByName("HP")->name, "HP");
  EXPECT_EQ(ProfileByName("Ins")->name, "INS");
}

TEST(ProfileLookupTest, UnknownIsInvalidArgument) {
  const auto p = ProfileByName("nfs");
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

// The published op mixes: RES is by far the most stat-heavy (Table 3).
TEST(ProfileShapeTest, ResIsMostStatHeavy) {
  EXPECT_GT(ResProfile().stat_fraction, InsProfile().stat_fraction);
  EXPECT_GT(ResProfile().stat_fraction, HpProfile().stat_fraction);
  // INS open+close share exceeds RES's (1196+1215 vs 497+558 out of totals).
  EXPECT_GT(InsProfile().open_fraction + InsProfile().close_fraction,
            ResProfile().open_fraction + ResProfile().close_fraction);
}

// The stressor profiles probe opposite ends of the locality spectrum: a
// flash crowd is a tiny, furiously re-referenced active set; a readdir
// storm sweeps nearly everything exactly once.
TEST(ProfileShapeTest, StressorsSpanTheLocalitySpectrum) {
  const auto flash = FlashCrowdProfile();
  const auto readdir = ReaddirStormProfile();
  const auto tenant = MultiTenantProfile();
  EXPECT_LT(flash.active_files, 1000u);
  EXPECT_GT(flash.zipf_skew, 1.0);
  EXPECT_GT(flash.rereference_prob, readdir.rereference_prob);
  EXPECT_GT(static_cast<double>(readdir.active_files) /
                static_cast<double>(readdir.total_files),
            0.5);
  EXPECT_LT(readdir.zipf_skew, tenant.zipf_skew);
  EXPECT_GT(tenant.users, InsProfile().users);
}

TEST(ProfileShapeTest, HpActiveRatioMatchesTable4) {
  const auto hp = HpProfile();
  // Table 4: 0.969M active of 4.0M total ~= 24%.
  const double ratio = static_cast<double>(hp.active_files) /
                       static_cast<double>(hp.total_files);
  EXPECT_NEAR(ratio, 0.969 / 4.0, 0.02);
}

}  // namespace
}  // namespace ghba
