#include "trace/stats.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

TraceRecord Rec(OpType op, const std::string& path, std::uint32_t user = 0,
                std::uint32_t host = 0, std::uint32_t subtrace = 0,
                double ts = 0) {
  TraceRecord r;
  r.op = op;
  r.path = path;
  r.user = user;
  r.host = host;
  r.subtrace = subtrace;
  r.timestamp = ts;
  return r;
}

TEST(TraceStatsTest, CountsPerOpType) {
  TraceStats s;
  s.Observe(Rec(OpType::kOpen, "/a"));
  s.Observe(Rec(OpType::kOpen, "/a"));
  s.Observe(Rec(OpType::kClose, "/a"));
  s.Observe(Rec(OpType::kStat, "/b"));
  s.Observe(Rec(OpType::kCreate, "/c"));
  s.Observe(Rec(OpType::kUnlink, "/c"));
  EXPECT_EQ(s.opens(), 2u);
  EXPECT_EQ(s.closes(), 1u);
  EXPECT_EQ(s.stats(), 1u);
  EXPECT_EQ(s.creates(), 1u);
  EXPECT_EQ(s.unlinks(), 1u);
  EXPECT_EQ(s.total_ops(), 6u);
}

TEST(TraceStatsTest, DistinctEntities) {
  TraceStats s;
  s.Observe(Rec(OpType::kStat, "/x", 1, 1, 0));
  s.Observe(Rec(OpType::kStat, "/x", 1, 1, 0));
  s.Observe(Rec(OpType::kStat, "/y", 2, 1, 0));
  EXPECT_EQ(s.distinct_files(), 2u);
  EXPECT_EQ(s.distinct_users(), 2u);
  EXPECT_EQ(s.distinct_hosts(), 1u);
}

TEST(TraceStatsTest, SubtracesDisjointUsers) {
  // The same user id in different subtraces is a different person (the
  // paper forces disjoint IDs during intensification).
  TraceStats s;
  s.Observe(Rec(OpType::kStat, "/t0/x", 5, 2, 0));
  s.Observe(Rec(OpType::kStat, "/t1/x", 5, 2, 1));
  EXPECT_EQ(s.distinct_users(), 2u);
  EXPECT_EQ(s.distinct_hosts(), 2u);
}

TEST(TraceStatsTest, DurationTracksMaxTimestamp) {
  TraceStats s;
  s.Observe(Rec(OpType::kStat, "/a", 0, 0, 0, 5.0));
  s.Observe(Rec(OpType::kStat, "/a", 0, 0, 0, 3.0));
  EXPECT_DOUBLE_EQ(s.duration_seconds(), 5.0);
}

TEST(TraceStatsTest, TableContainsCounts) {
  TraceStats s;
  s.Observe(Rec(OpType::kOpen, "/a"));
  const std::string table = s.ToTable("TEST TRACE");
  EXPECT_NE(table.find("TEST TRACE"), std::string::npos);
  EXPECT_NE(table.find("open"), std::string::npos);
}

}  // namespace
}  // namespace ghba
