#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ghba {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(3.0, [&] { order.push_back(3); });
  q.Schedule(1.0, [&] { order.push_back(1); });
  q.Schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.Now(), 3.0);
}

TEST(EventQueueTest, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, HandlersCanScheduleMore) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) q.ScheduleAfter(1.0, chain);
  };
  q.Schedule(0.0, chain);
  q.Run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(q.Now(), 9.0);
}

TEST(EventQueueTest, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.Schedule(1.0, [&] { ++fired; });
  q.Schedule(5.0, [&] { ++fired; });
  q.Schedule(10.0, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(5.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.Now(), 5.0);
  EXPECT_EQ(q.PendingEvents(), 1u);
  q.Run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.RunUntil(42.0);
  EXPECT_DOUBLE_EQ(q.Now(), 42.0);
}

TEST(EventQueueTest, StepExecutesOne) {
  EventQueue q;
  int fired = 0;
  q.Schedule(1.0, [&] { ++fired; });
  q.Schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.Step());
  EXPECT_FALSE(q.Step());
}

TEST(EventQueueTest, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Run(), 0u);
  EXPECT_DOUBLE_EQ(q.Now(), 0.0);
}

}  // namespace
}  // namespace ghba
