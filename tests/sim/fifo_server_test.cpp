#include "sim/fifo_server.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

TEST(FifoServerTest, IdleServerServesImmediately) {
  FifoServer s;
  const auto c = s.Serve(10.0, 2.0);
  EXPECT_DOUBLE_EQ(c.start, 10.0);
  EXPECT_DOUBLE_EQ(c.finish, 12.0);
  EXPECT_DOUBLE_EQ(c.wait, 0.0);
}

TEST(FifoServerTest, BusyServerQueues) {
  FifoServer s;
  s.Serve(0.0, 5.0);  // busy until 5
  const auto c = s.Serve(1.0, 2.0);
  EXPECT_DOUBLE_EQ(c.start, 5.0);
  EXPECT_DOUBLE_EQ(c.finish, 7.0);
  EXPECT_DOUBLE_EQ(c.wait, 4.0);
}

TEST(FifoServerTest, LindleyRecursionOverBurst) {
  FifoServer s;
  // Arrivals every 1.0, service 1.5 -> waits grow by 0.5 each.
  double expected_wait = 0;
  for (int i = 0; i < 10; ++i) {
    const auto c = s.Serve(i * 1.0, 1.5);
    EXPECT_NEAR(c.wait, expected_wait, 1e-12);
    expected_wait += 0.5;
  }
}

TEST(FifoServerTest, GapDrainsQueue) {
  FifoServer s;
  s.Serve(0.0, 1.0);
  const auto c = s.Serve(100.0, 1.0);
  EXPECT_DOUBLE_EQ(c.wait, 0.0);
  EXPECT_DOUBLE_EQ(c.start, 100.0);
}

TEST(FifoServerTest, WaitAtPeeksWithoutMutating) {
  FifoServer s;
  s.Serve(0.0, 5.0);
  EXPECT_DOUBLE_EQ(s.WaitAt(2.0), 3.0);
  EXPECT_DOUBLE_EQ(s.WaitAt(10.0), 0.0);
  EXPECT_EQ(s.served(), 1u);
}

TEST(FifoServerTest, UtilizationBounded) {
  FifoServer s;
  s.Serve(0.0, 3.0);
  s.Serve(5.0, 3.0);
  EXPECT_DOUBLE_EQ(s.total_busy_time(), 6.0);
  EXPECT_NEAR(s.Utilization(10.0), 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(s.Utilization(0.0), 0.0);
  EXPECT_LE(s.Utilization(1.0), 1.0);
}

TEST(FifoServerTest, ResetClears) {
  FifoServer s;
  s.Serve(0.0, 5.0);
  s.Reset();
  EXPECT_EQ(s.served(), 0u);
  EXPECT_DOUBLE_EQ(s.busy_until(), 0.0);
  const auto c = s.Serve(0.0, 1.0);
  EXPECT_DOUBLE_EQ(c.wait, 0.0);
}

}  // namespace
}  // namespace ghba
