#include "sim/latency_model.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

TEST(LatencyModelTest, OrderingOfMedia) {
  const LatencyModel m;
  // The model only has to respect the ordering disk >> network >> memory.
  EXPECT_GT(m.disk_access_ms, m.lan_rtt_ms * 10);
  EXPECT_GT(m.lan_rtt_ms, m.bf_probe_ms * 100);
  EXPECT_GT(m.spilled_probe_ms, m.lan_rtt_ms);
  EXPECT_LT(m.spilled_probe_ms, m.disk_access_ms);
}

TEST(LatencyModelTest, ArrayProbeLinearInFilters) {
  const LatencyModel m;
  EXPECT_DOUBLE_EQ(m.ArrayProbe(0), 0.0);
  EXPECT_DOUBLE_EQ(m.ArrayProbe(10), 10 * m.bf_probe_ms);
}

TEST(LatencyModelTest, MulticastGrowsWithFanout) {
  const LatencyModel m;
  EXPECT_DOUBLE_EQ(m.Multicast(0), 0.0);
  EXPECT_GT(m.Multicast(10), m.Multicast(5));
  EXPECT_GE(m.Multicast(1), m.Unicast());
}

TEST(LatencyModelTest, GroupCheaperThanGlobal) {
  const LatencyModel m;
  // A group multicast (M-1 ~ 6 peers) must be cheaper than a global one
  // (N-1 ~ 99 peers) — the premise of the hierarchy.
  EXPECT_LT(m.Multicast(6), m.Multicast(99));
}

TEST(LatencyModelTest, MetadataReadInterpolatesCacheHit) {
  const LatencyModel m;
  EXPECT_DOUBLE_EQ(m.MetadataRead(1.0), m.mem_metadata_ms);
  EXPECT_DOUBLE_EQ(m.MetadataRead(0.0), m.disk_access_ms);
  const double half = m.MetadataRead(0.5);
  EXPECT_GT(half, m.mem_metadata_ms);
  EXPECT_LT(half, m.disk_access_ms);
}

}  // namespace
}  // namespace ghba
