#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace ghba {
namespace {

TEST(BytesTest, RoundTripFixedWidth) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI64(-42);
  w.PutDouble(3.141592653589793);

  ByteReader r(w.data());
  EXPECT_EQ(*r.GetU8(), 0xab);
  EXPECT_EQ(*r.GetU16(), 0x1234);
  EXPECT_EQ(*r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.141592653589793);
  EXPECT_TRUE(r.AtEnd());
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  ByteWriter w;
  w.PutVarint(GetParam());
  ByteReader r(w.data());
  auto v = r.GetVarint();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32, 1ULL << 56,
                      std::numeric_limits<std::uint64_t>::max()));

TEST(BytesTest, StringRoundTrip) {
  ByteWriter w;
  w.PutString("");
  w.PutString("/usr/local/share/data.bin");
  w.PutString(std::string(10000, 'x'));

  ByteReader r(w.data());
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_EQ(*r.GetString(), "/usr/local/share/data.bin");
  EXPECT_EQ(r.GetString()->size(), 10000u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, ShortReadReportsCorruption) {
  ByteWriter w;
  w.PutU16(7);
  ByteReader r(w.data());
  EXPECT_TRUE(r.GetU16().ok());
  EXPECT_EQ(r.GetU32().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, TruncatedStringReportsCorruption) {
  ByteWriter w;
  w.PutVarint(100);  // claims 100 bytes, provides none
  ByteReader r(w.data());
  EXPECT_EQ(r.GetString().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, TruncatedVarintReportsCorruption) {
  const std::uint8_t bad[] = {0x80, 0x80};  // continuation bits, no terminator
  ByteReader r(bad);
  EXPECT_EQ(r.GetVarint().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, OverlongVarintReportsCorruption) {
  // 11 bytes of continuation: exceeds 64 bits of payload.
  std::vector<std::uint8_t> bad(11, 0x80);
  bad.push_back(0x01);
  ByteReader r(bad);
  EXPECT_EQ(r.GetVarint().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, GetBytesExactAndBounds) {
  ByteWriter w;
  const std::uint8_t payload[] = {1, 2, 3, 4, 5};
  w.PutBytes(payload);
  ByteReader r(w.data());
  auto first = r.GetBytes(3);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.GetBytes(5).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(BytesTest, TakeMovesBufferOut) {
  ByteWriter w;
  w.PutU32(99);
  auto data = w.Take();
  EXPECT_EQ(data.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

}  // namespace
}  // namespace ghba
