#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ghba {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ExactMomentsTracked) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  h.Add(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(HistogramTest, QuantileApproximatesUniform) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.Add(rng.NextDouble() * 1000.0);
  // Exponential buckets grow 10% per step; allow that resolution.
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 75.0);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 120.0);
}

TEST(HistogramTest, QuantileMonotone) {
  Histogram h;
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) h.Add(rng.NextExponential(10.0));
  double prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, MergeEqualsCombinedStream) {
  Histogram a, b, combined;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.NextDouble() * 100;
    if (i % 2 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  // Summation order differs between the two streams; allow FP slack.
  EXPECT_NEAR(a.sum(), combined.sum(), std::abs(combined.sum()) * 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), combined.Quantile(0.5));
}

TEST(HistogramTest, MergeWithEmptyIsNoop) {
  Histogram a, empty;
  a.Add(5.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Add(10);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
  h.Add(2.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  EXPECT_NE(h.Summary().find("n=2"), std::string::npos);
}

TEST(HistogramTest, HugeValuesClampToLastBucket) {
  Histogram h;
  h.Add(1e30);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.max(), 1e30);
  EXPECT_LE(h.Quantile(0.99), 1e30);
}

}  // namespace
}  // namespace ghba
