#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

// Restores the global level after each test so ordering doesn't leak.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  for (const auto level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                           LogLevel::kError, LogLevel::kOff}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST_F(LoggingTest, OrderingOfLevels) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

TEST_F(LoggingTest, SuppressedStatementsDoNotEvaluateSink) {
  SetLogLevel(LogLevel::kOff);
  // Must compile and run without emitting; the macro's guard makes the
  // stream body dead when the level is filtered.
  GHBA_LOG(kDebug) << "invisible " << 42;
  GHBA_LOG(kError) << "also invisible at kOff";
  SUCCEED();
}

TEST_F(LoggingTest, EnabledStatementsRun) {
  SetLogLevel(LogLevel::kDebug);
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return evaluations;
  };
  GHBA_LOG(kInfo) << "value " << count();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, FilteredStatementsSkipArgumentWork) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return evaluations;
  };
  GHBA_LOG(kDebug) << "value " << count();
  EXPECT_EQ(evaluations, 0);  // the guard short-circuits the whole statement
}

}  // namespace
}  // namespace ghba
