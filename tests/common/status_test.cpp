#include "common/status.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::NotFound("missing file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing file");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing file");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::Capacity("a"), Status::Capacity("b"));
  EXPECT_FALSE(Status::Capacity() == Status::Internal());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (const auto code :
       {StatusCode::kOk, StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kInvalidArgument, StatusCode::kCapacity,
        StatusCode::kUnavailable, StatusCode::kCorruption,
        StatusCode::kInternal, StatusCode::kTimedOut}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(5);
  EXPECT_EQ(r.value_or(-1), 5);
}

}  // namespace
}  // namespace ghba
