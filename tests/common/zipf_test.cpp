#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ghba {
namespace {

TEST(ZipfTest, SamplesStayInRange) {
  Rng rng(1);
  ZipfSampler zipf(100, 0.9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = zipf.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(ZipfTest, DegenerateSingleItem) {
  Rng rng(2);
  ZipfSampler zipf(1, 1.2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 1u);
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  Rng rng(3);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(11, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(rng)];
  for (int r = 1; r <= 10; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(kSamples), 0.1, 0.01);
  }
}

// The empirical rank frequencies must match the analytic Zipf pmf.
class ZipfSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewTest, MatchesAnalyticPmf) {
  const double s = GetParam();
  constexpr std::uint64_t kN = 50;
  constexpr int kSamples = 200000;
  Rng rng(1234);
  ZipfSampler zipf(kN, s);

  std::vector<int> counts(kN + 1, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(rng)];

  double norm = 0;
  for (std::uint64_t r = 1; r <= kN; ++r) norm += std::pow(r, -s);

  // Check the head ranks (largest probabilities, tightest relative error).
  for (std::uint64_t r = 1; r <= 5; ++r) {
    const double expected = std::pow(static_cast<double>(r), -s) / norm;
    const double actual = counts[r] / static_cast<double>(kSamples);
    EXPECT_NEAR(actual, expected, expected * 0.08 + 0.002)
        << "rank " << r << " skew " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewTest,
                         ::testing::Values(0.5, 0.8, 0.99, 1.0, 1.2, 2.0));

TEST(ZipfTest, HigherSkewConcentratesMass) {
  Rng rng(5);
  constexpr int kSamples = 50000;
  auto head_mass = [&](double s) {
    ZipfSampler zipf(1000, s);
    int head = 0;
    for (int i = 0; i < kSamples; ++i) head += (zipf.Sample(rng) <= 10);
    return head / static_cast<double>(kSamples);
  };
  const double low = head_mass(0.6);
  const double high = head_mass(1.4);
  EXPECT_GT(high, low);
}

TEST(ZipfTest, LargeNDoesNotOverflowOrHang) {
  Rng rng(6);
  ZipfSampler zipf(1ULL << 33, 0.9);  // ~8.6 billion ranks
  for (int i = 0; i < 1000; ++i) {
    const auto v = zipf.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1ULL << 33);
  }
}

}  // namespace
}  // namespace ghba
