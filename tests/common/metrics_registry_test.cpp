// MetricsRegistry: handle identity, reset semantics, snapshot shape, and
// snapshot consistency under concurrent writers (the TSan workflow runs
// this binary, so the concurrency tests double as data-race proofs).
#include "common/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ghba {
namespace {

TEST(MetricsRegistryTest, SameNameSharesOneCell) {
  MetricsRegistry reg;
  auto a = reg.counter("lookups.l1");
  auto b = reg.counter("lookups.l1");
  a.Add(3);
  ++b;
  EXPECT_EQ(a.value(), 4u);
  EXPECT_EQ(b.value(), 4u);
  EXPECT_EQ(reg.Snapshot().CounterOr("lookups.l1"), 4u);
}

TEST(MetricsRegistryTest, CounterOperatorsMatchPlainIntegers) {
  MetricsRegistry reg;
  auto c = reg.counter("c");
  c = 10;
  c += 5;
  ++c;
  EXPECT_EQ(c++, 16u);  // post-increment returns the prior value
  EXPECT_EQ(static_cast<std::uint64_t>(c), 17u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry reg;
  auto c = reg.counter("c");
  auto h = reg.histogram("h");
  c.Add(7);
  h.Add(1.5);
  reg.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  // Old handles still feed the same named cells after the reset.
  c.Add(2);
  h.Add(3.0);
  const auto snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterOr("c"), 2u);
  ASSERT_EQ(snap.histograms.count("h"), 1u);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("h").sum, 3.0);
}

TEST(MetricsRegistryTest, SnapshotListsEveryRegistrationSorted) {
  MetricsRegistry reg;
  reg.counter("z.last");
  reg.counter("a.first");
  reg.histogram("m.middle");
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters.begin()->first, "a.first");
  EXPECT_EQ(snap.counters.rbegin()->first, "z.last");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms.begin()->first, "m.middle");
  EXPECT_EQ(snap.CounterOr("absent", 42u), 42u);
}

TEST(MetricsRegistryTest, HistogramStatsDigestMatchesMergedHistogram) {
  MetricsRegistry reg;
  auto h = reg.histogram("lat");
  for (int i = 1; i <= 100; ++i) h.Add(static_cast<double>(i));
  const auto stats = reg.Snapshot().histograms.at("lat");
  EXPECT_EQ(stats.count, 100u);
  EXPECT_DOUBLE_EQ(stats.sum, 5050.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 50.5);
  EXPECT_EQ(stats.p50, h.Quantile(0.5));
  EXPECT_EQ(stats.p99, h.Quantile(0.99));
}

// Writers on many threads, Snapshot() racing against them. With TSan this
// proves the relaxed-atomic counters and lock-striped histograms are
// race-free; without it, it still checks that nothing is lost.
TEST(MetricsRegistryTest, SnapshotUnderConcurrentWritersLosesNothing) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  // Pre-register so worker threads exercise the lookup-existing path too.
  reg.counter("shared");
  reg.histogram("lat");

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = reg.Snapshot();
      // Mid-flight snapshots must stay internally sane.
      ASSERT_LE(snap.CounterOr("shared"),
                static_cast<std::uint64_t>(kThreads) * kPerThread);
      const auto it = snap.histograms.find("lat");
      if (it != snap.histograms.end() && it->second.count > 0) {
        ASSERT_GE(it->second.max, it->second.min);
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      auto shared = reg.counter("shared");
      auto mine = reg.counter("per_thread." + std::to_string(t));
      auto lat = reg.histogram("lat");
      for (int i = 0; i < kPerThread; ++i) {
        ++shared;
        ++mine;
        lat.Add(static_cast<double>(i % 10));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const auto snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterOr("shared"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.histograms.at("lat").count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.CounterOr("per_thread." + std::to_string(t)),
              static_cast<std::uint64_t>(kPerThread));
  }
}

}  // namespace
}  // namespace ghba
