#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace ghba {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(42);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBound)];
  // Chi-squared with 9 dof: reject far outside ~27 (p=0.001).
  double chi2 = 0;
  const double expected = kSamples / static_cast<double>(kBound);
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 35.0);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / static_cast<double>(kSamples), 0.3, 0.01);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.15);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.Fork();
  std::set<std::uint64_t> parent_vals, child_vals;
  for (int i = 0; i < 50; ++i) {
    parent_vals.insert(parent.Next());
    child_vals.insert(child.Next());
  }
  // Streams should not collide on any of the first values.
  for (const auto v : child_vals) EXPECT_EQ(parent_vals.count(v), 0u);
}

TEST(RngTest, Mix64IsStateless) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

TEST(RngTest, SplitMixAdvancesState) {
  std::uint64_t s = 0;
  const auto a = SplitMix64(s);
  const auto b = SplitMix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ghba
