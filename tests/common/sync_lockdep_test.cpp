// Tests for the lock-rank discipline in sync.hpp.
//
// The file compiles in both configurations: with GHBA_LOCKDEP off it pins
// the zero-overhead contract (Mutex == std::mutex in layout, ordering never
// interferes), with GHBA_LOCKDEP on it additionally pins the validator —
// rank inversions and cross-thread A/B–B/A cycles must abort loudly, with
// both acquisition stacks in the report, instead of deadlocking.
#include "common/sync.hpp"

#include <atomic>
#include <condition_variable>
#include <thread>

#include <gtest/gtest.h>

namespace ghba {
namespace {

#if !defined(GHBA_LOCKDEP) || !GHBA_LOCKDEP
// Zero-overhead contract when the validator is off. (Duplicated from the
// header's static_assert so a regression fails a *test*, not just a build.)
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "lockdep-off Mutex must be layout-identical to std::mutex");
#endif

TEST(SyncTest, WellOrderedNestingWorks) {
  Mutex outer{LockRank::kCluster};
  Mutex inner{LockRank::kLogging};
  MutexLock hold_outer(&outer);
  MutexLock hold_inner(&inner);
  SUCCEED();  // acquire-down chain must be accepted in both configurations
}

TEST(SyncTest, FullRankChainInOrder) {
  // Walking the entire table top-down is the most-nested legal chain.
  Mutex cluster{LockRank::kCluster};
  Mutex wal{LockRank::kServerWal};
  Mutex filter{LockRank::kServerFilter};
  Mutex seg{LockRank::kServerSeg};
  Mutex shard{LockRank::kServerShard};
  Mutex injector{LockRank::kFaultInjector};
  Mutex logging{LockRank::kLogging};
  MutexLock l1(&cluster);
  MutexLock l2(&wal);
  MutexLock l3(&filter);
  MutexLock l4(&seg);
  MutexLock l5(&shard);
  MutexLock l6(&injector);
  MutexLock l7(&logging);
  SUCCEED();
}

TEST(SyncTest, TryLockSucceedsAndReleases) {
  Mutex mu{LockRank::kHealth};
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
  MutexLock relock(&mu);  // releasing via Unlock left lockdep state clean
}

TEST(SyncTest, ConditionVariableAnyWaitRelocks) {
  // condition_variable_any waits go through the BasicLockable face
  // (lock()/unlock()); lockdep must tolerate the unlock/relock cycle while
  // another ranked mutex is NOT held (the usual single-lock wait pattern).
  Mutex mu{LockRank::kServerShard};
  std::condition_variable_any cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.notify_one();
  });
  {
    mu.lock();
    cv.wait(mu, [&] { return ready; });
    mu.unlock();
  }
  waker.join();
}

TEST(SyncTest, LockRankNamesCoverTheTable) {
  EXPECT_STREQ(LockRankName(LockRank::kLogging), "logging");
  EXPECT_STREQ(LockRankName(LockRank::kCluster), "cluster");
  EXPECT_STREQ(LockRankName(LockRank::kClient), "client");
  EXPECT_STREQ(LockRankName(LockRank::kServerWal), "server-wal");
  EXPECT_EQ(static_cast<std::size_t>(LockRank::kClient) + 1, kLockRankCount);
}

#if defined(GHBA_LOCKDEP) && GHBA_LOCKDEP

using SyncLockdepDeathTest = ::testing::Test;

TEST(SyncLockdepTest, HeldCountTracksTheStack) {
  EXPECT_EQ(lockdep::HeldCount(), 0u);
  Mutex outer{LockRank::kServerWal};
  Mutex inner{LockRank::kServerSeg};
  {
    MutexLock l1(&outer);
    EXPECT_EQ(lockdep::HeldCount(), 1u);
    MutexLock l2(&inner);
    EXPECT_EQ(lockdep::HeldCount(), 2u);
  }
  EXPECT_EQ(lockdep::HeldCount(), 0u);
}

TEST(SyncLockdepDeathTest, RankInversionAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex low{LockRank::kLogging};
        Mutex high{LockRank::kCluster};
        MutexLock l1(&low);
        MutexLock l2(&high);  // rank 13 while holding rank 0: refused
      },
      "lock rank inversion");
}

TEST(SyncLockdepDeathTest, SameRankReacquisitionAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        // Two distinct mutexes at the SAME rank may not nest either — the
        // order between them would be unranked, which is the hole deadlocks
        // crawl through (two shards locked in opposite orders).
        Mutex a{LockRank::kServerShard};
        Mutex b{LockRank::kServerShard};
        MutexLock l1(&a);
        MutexLock l2(&b);
      },
      "lock rank inversion");
}

TEST(SyncLockdepDeathTest, TryLockInversionAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex low{LockRank::kHealth};
        Mutex high{LockRank::kServerWal};
        MutexLock l1(&low);
        (void)high.TryLock();  // try-lock is validated exactly like Lock
      },
      "lock rank inversion");
}

TEST(SyncLockdepDeathTest, CrossThreadAbBaCycleAbortsInsteadOfDeadlocking) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        // Thread 1 takes A then B in rank order (legal, and records the
        // A->B edge with its stacks). Thread 2 then attempts B->A: with a
        // total rank order the second thread necessarily acquires upward,
        // so lockdep aborts BEFORE blocking — the classic A/B–B/A deadlock
        // cannot even form. The report must cite the opposite order
        // recorded from thread 1.
        Mutex a{LockRank::kServerFilter};
        Mutex b{LockRank::kServerView};
        std::atomic<bool> first_done{false};
        std::thread t1([&] {
          MutexLock la(&a);
          MutexLock lb(&b);
          first_done.store(true);
        });
        t1.join();
        std::thread t2([&] {
          MutexLock lb(&b);
          MutexLock la(&a);  // aborts here
        });
        t2.join();
      },
      "opposite order");
}

TEST(SyncLockdepDeathTest, ReportNamesBothRanks) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex metrics{LockRank::kMetricsStripe};
        Mutex registry{LockRank::kMetricsRegistry};
        MutexLock l1(&metrics);
        MutexLock l2(&registry);
      },
      "metrics-registry");
}

#endif  // GHBA_LOCKDEP

}  // namespace
}  // namespace ghba
