// Count-min sketch: the front tier's hot-key detector. The contract under
// test is the Cormode-Muthukrishnan bound — estimates never undercount and
// overcount by at most eps * N (eps = e / width) with probability
// >= 1 - e^-depth — plus the decay/clear aging semantics the client's
// promotion loop depends on.
#include "common/count_min_sketch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

namespace ghba {
namespace {

TEST(CountMinSketchTest, NeverUndercountsAndRespectsTheEpsilonBound) {
  const std::uint32_t width = 512;
  const std::uint32_t depth = 4;
  CountMinSketch sketch(width, depth, /*seed=*/42);

  // A skewed stream over many more distinct keys than width, so rows do
  // collide and the bound is actually exercised.
  std::mt19937_64 rng(7);
  std::map<std::string, std::uint64_t> truth;
  const std::size_t kStream = 60000;
  for (std::size_t i = 0; i < kStream; ++i) {
    // Geometric-ish skew: low ids vastly more popular.
    const auto id = static_cast<std::uint64_t>(
        std::floor(std::pow(static_cast<double>(rng() % 1000000) / 1000000.0,
                            3.0) *
                   2000));
    const std::string key = "/k/" + std::to_string(id);
    ++truth[key];
    sketch.Add(key);
  }
  ASSERT_EQ(sketch.total(), kStream);

  const double eps = std::exp(1.0) / static_cast<double>(width);
  const auto bound = static_cast<std::uint64_t>(
      std::ceil(eps * static_cast<double>(sketch.total())));
  std::size_t over_bound = 0;
  for (const auto& [key, count] : truth) {
    const std::uint64_t est = sketch.Estimate(key);
    ASSERT_GE(est, count) << key;  // one-sided error, always
    if (est > count + bound) ++over_bound;
  }
  // delta = e^-4 ~= 1.8% per key; allow double that for a fixed seed.
  EXPECT_LE(static_cast<double>(over_bound),
            0.04 * static_cast<double>(truth.size()));
}

TEST(CountMinSketchTest, AddReturnsThePostAddEstimate) {
  CountMinSketch sketch(256, 4, 1);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    const std::uint64_t est = sketch.Add("/hot");
    EXPECT_GE(est, i);  // >= true count even mid-stream
  }
  EXPECT_GE(sketch.Estimate("/hot"), 10u);
  EXPECT_EQ(sketch.Estimate("/never-seen-xyz"), 0u);
}

TEST(CountMinSketchTest, DecayHalvesCountsAndTotal) {
  CountMinSketch sketch(256, 4, 1);
  for (int i = 0; i < 100; ++i) sketch.Add("/flash");
  const std::uint64_t peak = sketch.Estimate("/flash");
  sketch.Decay();
  EXPECT_EQ(sketch.total(), 50u);
  EXPECT_LE(sketch.Estimate("/flash"), peak / 2 + 1);
  // Two half-lives: yesterday's crowd reads as a quarter of its peak.
  sketch.Decay();
  EXPECT_LE(sketch.Estimate("/flash"), peak / 4 + 1);
}

TEST(CountMinSketchTest, ClearZeroesEverything) {
  CountMinSketch sketch(64, 2, 9);
  for (int i = 0; i < 32; ++i) sketch.Add("/x" + std::to_string(i));
  sketch.Clear();
  EXPECT_EQ(sketch.total(), 0u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(sketch.Estimate("/x" + std::to_string(i)), 0u);
  }
}

TEST(CountMinSketchTest, GeometryIsClampedToAtLeastOne) {
  CountMinSketch sketch(0, 0, 0);
  EXPECT_EQ(sketch.width(), 1u);
  EXPECT_EQ(sketch.depth(), 1u);
  sketch.Add("/a");
  EXPECT_GE(sketch.Estimate("/a"), 1u);
}

}  // namespace
}  // namespace ghba
