// The client front tier (ghba::Client): the leased, epoch-invalidated
// lookup cache must never serve a stale positive — not after its TTL, not
// after an unlink through the facade, and not across a replica migration
// (crashed at any phase or clean). Time is injected so lease expiry is
// tested by advancing a counter, not by sleeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "client/client.hpp"

namespace ghba {
namespace {

ClusterConfig ClientTestConfig() {
  ClusterConfig c;
  c.num_mds = 6;
  c.max_group_size = 3;
  c.expected_files_per_mds = 500;
  c.lru_capacity = 64;
  c.memory_budget_bytes = 64ULL << 20;
  c.seed = 11;
  c.rpc.connect_timeout_ms = 150;
  c.rpc.attempt_timeout_ms = 150;
  c.rpc.call_budget_ms = 450;
  c.rpc.max_attempts = 3;
  c.rpc.retry_backoff_ms = 2;
  c.rpc.server_io_timeout_ms = 150;
  c.rpc.suspect_after = 3;
  c.rpc.ping_attempts = 3;
  c.rpc.ping_timeout_ms = 100;
  c.hotspot.lease_ttl_ms = 500;
  return c;
}

/// A facade whose clock is a counter the test advances by hand.
struct FakeClockClient {
  std::uint64_t now_ms = 1000;
  std::unique_ptr<Client> client;

  explicit FakeClockClient(PrototypeCluster* cluster, ClientOptions options = {}) {
    options.clock_ms = [this] { return now_ms; };
    client = Client::Attach(cluster, std::move(options));
  }
  Client* operator->() { return client.get(); }
  Client& operator*() { return *client; }
};

std::map<std::string, MdsId> BuildNamespace(PrototypeCluster& cluster,
                                            int files) {
  std::map<std::string, MdsId> home_of;
  for (int i = 0; i < files; ++i) {
    const auto path = "/cli/f" + std::to_string(i);
    FileMetadata md;
    md.inode = static_cast<std::uint64_t>(i);
    EXPECT_TRUE(cluster.Insert(path, md).ok());
  }
  EXPECT_TRUE(cluster.PublishAll().ok());
  for (int i = 0; i < files; ++i) {
    const auto path = "/cli/f" + std::to_string(i);
    const auto r = cluster.Lookup(path);
    EXPECT_TRUE(r.ok());
    if (r.ok()) home_of[path] = r->home;
  }
  return home_of;
}

std::uint64_t CacheCounter(PrototypeCluster& cluster, const std::string& name) {
  return cluster.ClientSnapshot().CounterOr(name);
}

TEST(ClientCacheTest, SecondLookupIsServedFromCache) {
  PrototypeCluster cluster(ClientTestConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  BuildNamespace(cluster, 8);
  FakeClockClient client(&cluster);

  const auto first = client->Lookup("/cli/f0");
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->found);
  EXPECT_FALSE(first->from_cache);
  ASSERT_EQ(client->CacheSize(), 1u);

  const auto second = client->Lookup("/cli/f0");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->found);
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(second->served_level, 0u);
  EXPECT_EQ(second->home, first->home);
  EXPECT_GE(CacheCounter(cluster, "cache.hits"), 1u);
}

TEST(ClientCacheTest, LeaseExpiresUnderClockAdvance) {
  const ClusterConfig config = ClientTestConfig();
  PrototypeCluster cluster(config, ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  BuildNamespace(cluster, 4);
  FakeClockClient client(&cluster);

  ASSERT_TRUE(client->Lookup("/cli/f1").ok());
  // Just inside the TTL: still a hit.
  client.now_ms += config.hotspot.lease_ttl_ms - 1;
  const auto fresh = client->Lookup("/cli/f1");
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->from_cache);

  // One more millisecond and the lease is dead: the cascade runs again and
  // the answer is re-leased.
  client.now_ms += 1;
  const auto expired = client->Lookup("/cli/f1");
  ASSERT_TRUE(expired.ok());
  EXPECT_TRUE(expired->found);
  EXPECT_FALSE(expired->from_cache);
  EXPECT_GE(CacheCounter(cluster, "cache.expired_lease"), 1u);
  EXPECT_EQ(client->CacheSize(), 1u);  // re-leased, not abandoned
}

TEST(ClientCacheTest, UnlinkNeverLeavesAStalePositive) {
  PrototypeCluster cluster(ClientTestConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  BuildNamespace(cluster, 4);
  FakeClockClient client(&cluster);

  ASSERT_TRUE(client->Lookup("/cli/f2").ok());
  ASSERT_EQ(client->CacheSize(), 1u);
  ASSERT_TRUE(client->Unlink("/cli/f2").ok());
  EXPECT_EQ(client->CacheSize(), 0u);

  // Immediately after the unlink returns — zero staleness window for the
  // unlinking client, however fresh the lease was.
  const auto r = client->Lookup("/cli/f2");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);
  EXPECT_GE(CacheCounter(cluster, "cache.invalidations"), 1u);
}

TEST(ClientCacheTest, OtherClientsStalenessIsBoundedByTheLeaseTtl) {
  const ClusterConfig config = ClientTestConfig();
  PrototypeCluster cluster(config, ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  BuildNamespace(cluster, 4);
  FakeClockClient writer(&cluster);
  FakeClockClient reader(&cluster);

  ASSERT_TRUE(reader->Lookup("/cli/f3").ok());
  ASSERT_TRUE(writer->Unlink("/cli/f3").ok());

  // The reader's local entry cannot be reached by the broadcast; its lease
  // TTL is the staleness bound, after which the re-lookup sees the truth.
  reader.now_ms += config.hotspot.lease_ttl_ms;
  const auto r = reader->Lookup("/cli/f3");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);
  EXPECT_FALSE(r->from_cache);
}

TEST(ClientCacheTest, EpochBumpInvalidatesAcrossACleanMigration) {
  PrototypeCluster cluster(ClientTestConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  const auto home_of = BuildNamespace(cluster, 12);
  FakeClockClient client(&cluster);
  for (const auto& [path, home] : home_of) {
    ASSERT_TRUE(client->Lookup(path).ok());
  }
  ASSERT_EQ(client->CacheSize(), home_of.size());

  // Move an outsider replica inside server 0's group: the flip pushes a
  // bumped epoch, which must kill every older lease at the next probe.
  const auto view = cluster.MembershipOf(0);
  ASSERT_TRUE(view.ok());
  MdsId owner = kInvalidMds;
  for (const MdsId id : cluster.AliveServers()) {
    if (std::find(view->members.begin(), view->members.end(), id) ==
        view->members.end()) {
      owner = id;
      break;
    }
  }
  ASSERT_NE(owner, kInvalidMds);
  const auto from = cluster.HolderOf(0, owner);
  ASSERT_TRUE(from.ok());
  MdsId to = kInvalidMds;
  for (const MdsId id : view->members) {
    if (id != *from) to = id;
  }
  ASSERT_NE(to, kInvalidMds);
  const std::uint64_t epoch_before = cluster.RoutingEpoch();
  ASSERT_TRUE(cluster.MigrateReplica(owner, to).ok());
  ASSERT_GT(cluster.RoutingEpoch(), epoch_before);

  // Every lookup after the bump re-runs the cascade (no hit may survive)
  // and still lands on the right home.
  for (const auto& [path, home] : home_of) {
    const auto r = client->Lookup(path);
    ASSERT_TRUE(r.ok()) << path;
    EXPECT_TRUE(r->found) << path;
    EXPECT_FALSE(r->from_cache) << path;
    EXPECT_EQ(r->home, home) << path;
  }
  EXPECT_GE(CacheCounter(cluster, "cache.stale_epoch"), home_of.size());
}

TEST(ClientCacheTest, DisabledCacheNeverCachesOrLeases) {
  PrototypeCluster cluster(ClientTestConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  BuildNamespace(cluster, 4);
  ClientOptions off;
  off.cache_enabled = false;
  FakeClockClient client(&cluster, off);

  for (int i = 0; i < 3; ++i) {
    const auto r = client->Lookup("/cli/f0");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->found);
    EXPECT_FALSE(r->from_cache);
  }
  EXPECT_EQ(client->CacheSize(), 0u);
}

TEST(ClientCacheTest, CapacityBoundsTheCacheViaLruEviction) {
  PrototypeCluster cluster(ClientTestConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  BuildNamespace(cluster, 6);
  ClientOptions small;
  small.cache_capacity = 2;
  FakeClockClient client(&cluster, small);

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client->Lookup("/cli/f" + std::to_string(i)).ok());
    EXPECT_LE(client->CacheSize(), 2u);
  }
  // The two most recent survive; the rest were evicted, not expired.
  const auto r5 = client->Lookup("/cli/f5");
  ASSERT_TRUE(r5.ok());
  EXPECT_TRUE(r5->from_cache);
}

TEST(ClientCacheTest, HotKeyPromotionReplicatesTheHomeFilter) {
  PrototypeCluster cluster(ClientTestConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  BuildNamespace(cluster, 4);
  ClientOptions hot;
  hot.hot_threshold = 4;
  FakeClockClient client(&cluster, hot);

  const std::uint64_t migrated_before =
      cluster.metrics().replicas_migrated.value();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client->Lookup("/cli/f0").ok());
  }
  EXPECT_GE(CacheCounter(cluster, "cache.hot_promotions"), 1u);
  EXPECT_GT(cluster.metrics().replicas_migrated.value(), migrated_before);

  // Promotion is per (path, epoch): hammering the same path again must not
  // replicate a second time under the same topology.
  const std::uint64_t promotions =
      CacheCounter(cluster, "cache.hot_promotions");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client->Lookup("/cli/f0").ok());
  }
  EXPECT_EQ(CacheCounter(cluster, "cache.hot_promotions"), promotions);
}

// A crash at any migration phase, then recovery, must never let the facade
// serve a wrong answer from a pre-migration lease. The commit point is the
// phase-2 flip; whichever endpoint placement the crash resolves to, homes
// are unchanged (migration moves replicas, not files), so the bar is: all
// lookups correct, no stale cache hit pointing anywhere wrong.
class ClientMigrationCrashTest
    : public ::testing::TestWithParam<FaultInjector::MigrationPhase> {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = info->name();
    std::replace(name.begin(), name.end(), '/', '_');
    dir_ = std::filesystem::temp_directory_path() / ("ghba_clicrash_" + name);
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_P(ClientMigrationCrashTest, NoStaleCacheReadAcrossCrashAndRecovery) {
  ClusterConfig config = ClientTestConfig();
  config.storage.data_dir = dir_.string();
  config.storage.fsync = FsyncPolicy::kAlways;

  FaultInjector injector;
  PrototypeCluster cluster(config, ProtoScheme::kGhba);
  cluster.set_fault_injector(&injector);
  ASSERT_TRUE(cluster.Start().ok());
  const auto home_of = BuildNamespace(cluster, 12);
  FakeClockClient client(&cluster);
  for (const auto& [path, home] : home_of) {
    ASSERT_TRUE(client->Lookup(path).ok());
  }
  ASSERT_EQ(client->CacheSize(), home_of.size());

  const auto view = cluster.MembershipOf(0);
  ASSERT_TRUE(view.ok());
  MdsId owner = kInvalidMds;
  for (const MdsId id : cluster.AliveServers()) {
    if (std::find(view->members.begin(), view->members.end(), id) ==
        view->members.end()) {
      owner = id;
      break;
    }
  }
  ASSERT_NE(owner, kInvalidMds);
  const auto from = cluster.HolderOf(0, owner);
  ASSERT_TRUE(from.ok());
  MdsId to = kInvalidMds;
  for (const MdsId id : view->members) {
    if (id != *from) to = id;
  }
  ASSERT_NE(to, kInvalidMds);

  injector.ArmMigrationCrash(GetParam());
  ASSERT_FALSE(cluster.MigrateReplica(owner, to).ok());
  const bool committed = GetParam() != FaultInjector::MigrationPhase::kPrepare;
  const MdsId victim = committed ? *from : to;
  ASSERT_TRUE(cluster.RestartServer(victim).ok());

  // Whatever mix of cache hits and re-lookups happens now, every answer
  // must be found at the unchanged home.
  for (const auto& [path, home] : home_of) {
    const auto r = client->Lookup(path);
    ASSERT_TRUE(r.ok()) << path;
    EXPECT_TRUE(r->found) << path;
    EXPECT_EQ(r->home, home) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPhases, ClientMigrationCrashTest,
    ::testing::Values(FaultInjector::MigrationPhase::kPrepare,
                      FaultInjector::MigrationPhase::kFlip,
                      FaultInjector::MigrationPhase::kRetire),
    [](const ::testing::TestParamInfo<FaultInjector::MigrationPhase>& info) {
      switch (info.param) {
        case FaultInjector::MigrationPhase::kPrepare:
          return "Prepare";
        case FaultInjector::MigrationPhase::kFlip:
          return "Flip";
        case FaultInjector::MigrationPhase::kRetire:
          return "Retire";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace ghba
