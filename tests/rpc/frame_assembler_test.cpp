// FrameAssembler / BuildWireFrame unit tests: the non-blocking framing
// layer under the event loop. The regressions pinned here: the old loop
// heap-allocated a fresh buffer per poll iteration and handled at most one
// frame per wakeup — the assembler must keep its capacity across frames
// and surface every buffered frame without another read.
#include "rpc/wire_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rpc/fault_injector.hpp"
#include "rpc/socket.hpp"

namespace ghba {
namespace {

std::vector<std::uint8_t> Payload(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

std::vector<std::uint8_t> Wire(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(BuildWireFrame(FaultInjector::FramePlan{}, payload, out));
  return out;
}

TEST(FrameAssemblerTest, WholeFrameRoundTrips) {
  FrameAssembler a;
  const auto payload = Payload(37, 0xAB);
  const auto wire = Wire(payload);
  a.Append(wire.data(), wire.size());
  std::vector<std::uint8_t> got;
  ASSERT_EQ(a.Pop(got), FrameAssembler::Next::kFrame);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(a.Pop(got), FrameAssembler::Next::kNeedMore);
  EXPECT_EQ(a.buffered(), 0u);
}

TEST(FrameAssemblerTest, ByteAtATimeDelivery) {
  FrameAssembler a;
  const auto payload = Payload(19, 0x3C);
  const auto wire = Wire(payload);
  std::vector<std::uint8_t> got;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    a.Append(&wire[i], 1);
    ASSERT_EQ(a.Pop(got), FrameAssembler::Next::kNeedMore) << i;
  }
  a.Append(&wire[wire.size() - 1], 1);
  ASSERT_EQ(a.Pop(got), FrameAssembler::Next::kFrame);
  EXPECT_EQ(got, payload);
}

// Satellite regression: several frames arriving in one read must all come
// out of one Append without waiting for another wakeup.
TEST(FrameAssemblerTest, ManyBufferedFramesDrainInOneAppend) {
  FrameAssembler a;
  std::vector<std::uint8_t> stream;
  const int kFrames = 29;
  for (int i = 0; i < kFrames; ++i) {
    const auto wire = Wire(Payload(1 + static_cast<std::size_t>(i) * 3,
                                   static_cast<std::uint8_t>(i)));
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  a.Append(stream.data(), stream.size());
  std::vector<std::uint8_t> got;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_EQ(a.Pop(got), FrameAssembler::Next::kFrame) << i;
    EXPECT_EQ(got.size(), 1 + static_cast<std::size_t>(i) * 3);
    EXPECT_EQ(got.front(), static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(a.Pop(got), FrameAssembler::Next::kNeedMore);
}

TEST(FrameAssemblerTest, BadMagicIsCorrupt) {
  FrameAssembler a;
  auto wire = Wire(Payload(8, 1));
  wire[0] ^= 0xFF;
  a.Append(wire.data(), wire.size());
  std::vector<std::uint8_t> got;
  EXPECT_EQ(a.Pop(got), FrameAssembler::Next::kCorrupt);
}

TEST(FrameAssemblerTest, BadCrcIsCorrupt) {
  FrameAssembler a;
  auto wire = Wire(Payload(8, 1));
  wire.back() ^= 0x01;  // flip a payload bit; header CRC no longer matches
  a.Append(wire.data(), wire.size());
  std::vector<std::uint8_t> got;
  EXPECT_EQ(a.Pop(got), FrameAssembler::Next::kCorrupt);
}

TEST(FrameAssemblerTest, OversizedLengthIsCorrupt) {
  FrameAssembler a;
  auto wire = Wire(Payload(8, 1));
  // Rewrite the length field (bytes 2..5, little-endian) past the cap.
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxWireFrameBytes) + 1;
  wire[2] = static_cast<std::uint8_t>(huge);
  wire[3] = static_cast<std::uint8_t>(huge >> 8);
  wire[4] = static_cast<std::uint8_t>(huge >> 16);
  wire[5] = static_cast<std::uint8_t>(huge >> 24);
  a.Append(wire.data(), wire.size());
  std::vector<std::uint8_t> got;
  EXPECT_EQ(a.Pop(got), FrameAssembler::Next::kCorrupt);
}

// Satellite regression: the assembler reuses its buffer instead of
// reallocating per frame — draining fully must not grow capacity with the
// number of frames processed.
TEST(FrameAssemblerTest, BufferCapacityIsReusedAcrossFrames) {
  FrameAssembler a;
  const auto wire = Wire(Payload(512, 0x77));
  std::vector<std::uint8_t> got;
  a.Append(wire.data(), wire.size());
  ASSERT_EQ(a.Pop(got), FrameAssembler::Next::kFrame);
  const std::size_t cap_after_first = a.capacity();
  for (int i = 0; i < 1000; ++i) {
    a.Append(wire.data(), wire.size());
    ASSERT_EQ(a.Pop(got), FrameAssembler::Next::kFrame);
  }
  EXPECT_EQ(a.capacity(), cap_after_first);
}

TEST(BuildWireFrameTest, DropPlanProducesNothing) {
  FaultInjector::FramePlan plan;
  plan.action = FaultInjector::FrameAction::kDrop;
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(BuildWireFrame(plan, Payload(16, 2), out));
}

TEST(BuildWireFrameTest, CorruptPlanBreaksTheCrc) {
  FaultInjector::FramePlan plan;
  plan.action = FaultInjector::FrameAction::kCorrupt;
  plan.mutation_seed = 99;
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(BuildWireFrame(plan, Payload(64, 3), out));
  FrameAssembler a;
  a.Append(out.data(), out.size());
  std::vector<std::uint8_t> got;
  EXPECT_EQ(a.Pop(got), FrameAssembler::Next::kCorrupt);
}

TEST(BuildWireFrameTest, TruncatePlanLeavesAShortFrame) {
  FaultInjector::FramePlan plan;
  plan.action = FaultInjector::FrameAction::kTruncate;
  plan.mutation_seed = 7;
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(BuildWireFrame(plan, Payload(64, 4), out));
  // The header still advertises the full payload, so the frame reads as
  // incomplete (kNeedMore), exactly like a peer that died mid-send.
  FrameAssembler a;
  a.Append(out.data(), out.size());
  std::vector<std::uint8_t> got;
  EXPECT_EQ(a.Pop(got), FrameAssembler::Next::kNeedMore);
}

}  // namespace
}  // namespace ghba
