#include "rpc/socket.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ghba {
namespace {

TEST(SocketTest, BindAssignsPort) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(listener->port(), 0);
}

TEST(SocketTest, FrameRoundTrip) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());

  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto frame = conn->RecvFrame();
    ASSERT_TRUE(frame.ok());
    // Echo back reversed.
    std::vector<std::uint8_t> reply(frame->rbegin(), frame->rend());
    ASSERT_TRUE(conn->SendFrame(reply).ok());
  });

  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->SendFrame({1, 2, 3, 4}).ok());
  auto reply = client->RecvFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, (std::vector<std::uint8_t>{4, 3, 2, 1}));
  server.join();
}

TEST(SocketTest, EmptyFrameAllowed) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto frame = conn->RecvFrame();
    ASSERT_TRUE(frame.ok());
    EXPECT_TRUE(frame->empty());
    ASSERT_TRUE(conn->SendFrame({}).ok());
  });
  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendFrame({}).ok());
  auto reply = client->RecvFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->empty());
  server.join();
}

TEST(SocketTest, LargeFrame) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  const std::vector<std::uint8_t> big(1 << 20, 0xaa);
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto frame = conn->RecvFrame();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->size(), big.size());
    ASSERT_TRUE(conn->SendFrame(*frame).ok());
  });
  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendFrame(big).ok());
  auto reply = client->RecvFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, big);
  server.join();
}

TEST(SocketTest, PeerCloseReportsUnavailable) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    conn->Close();
  });
  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  server.join();
  const auto frame = client->RecvFrame();
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(SocketTest, ConnectToClosedPortFails) {
  // Bind then close a listener to obtain a (very likely) dead port.
  std::uint16_t dead_port;
  {
    auto listener = TcpListener::Bind();
    ASSERT_TRUE(listener.ok());
    dead_port = listener->port();
  }
  const auto conn = TcpConnection::Connect(dead_port);
  EXPECT_FALSE(conn.ok());
}

TEST(SocketTest, OversizedFrameRejected) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  std::vector<std::uint8_t> huge(static_cast<std::size_t>(65) << 20);
  EXPECT_EQ(client->SendFrame(huge).code(), StatusCode::kInvalidArgument);
}

TEST(FdHandleTest, MoveSemantics) {
  FdHandle a(42);  // fake fd number; never used for IO
  EXPECT_TRUE(a.valid());
  FdHandle b(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_EQ(b.get(), 42);
  EXPECT_EQ(b.Release(), 42);  // release so the dtor won't close fd 42
  EXPECT_FALSE(b.valid());
}

}  // namespace
}  // namespace ghba
