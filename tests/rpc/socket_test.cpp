#include "rpc/socket.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ghba {
namespace {

TEST(SocketTest, BindAssignsPort) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(listener->port(), 0);
}

TEST(SocketTest, FrameRoundTrip) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());

  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto frame = conn->RecvFrame();
    ASSERT_TRUE(frame.ok());
    // Echo back reversed.
    std::vector<std::uint8_t> reply(frame->rbegin(), frame->rend());
    ASSERT_TRUE(conn->SendFrame(reply).ok());
  });

  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->SendFrame({1, 2, 3, 4}).ok());
  auto reply = client->RecvFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, (std::vector<std::uint8_t>{4, 3, 2, 1}));
  server.join();
}

TEST(SocketTest, EmptyFrameAllowed) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto frame = conn->RecvFrame();
    ASSERT_TRUE(frame.ok());
    EXPECT_TRUE(frame->empty());
    ASSERT_TRUE(conn->SendFrame({}).ok());
  });
  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendFrame({}).ok());
  auto reply = client->RecvFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->empty());
  server.join();
}

TEST(SocketTest, LargeFrame) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  const std::vector<std::uint8_t> big(1 << 20, 0xaa);
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto frame = conn->RecvFrame();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->size(), big.size());
    ASSERT_TRUE(conn->SendFrame(*frame).ok());
  });
  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendFrame(big).ok());
  auto reply = client->RecvFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, big);
  server.join();
}

TEST(SocketTest, PeerCloseReportsUnavailable) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    conn->Close();
  });
  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  server.join();
  const auto frame = client->RecvFrame();
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(SocketTest, ConnectToClosedPortFails) {
  // Bind then close a listener to obtain a (very likely) dead port.
  std::uint16_t dead_port;
  {
    auto listener = TcpListener::Bind();
    ASSERT_TRUE(listener.ok());
    dead_port = listener->port();
  }
  const auto conn = TcpConnection::Connect(dead_port);
  EXPECT_FALSE(conn.ok());
}

TEST(SocketTest, OversizedFrameRejected) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  std::vector<std::uint8_t> huge(static_cast<std::size_t>(65) << 20);
  EXPECT_EQ(client->SendFrame(huge).code(), StatusCode::kInvalidArgument);
}

TEST(DeadlineTest, NeverNeverExpires) {
  const Deadline d = Deadline::Never();
  EXPECT_TRUE(d.never());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.PollTimeoutMs(), -1);
}

TEST(DeadlineTest, AfterZeroIsAlreadyExpired) {
  const Deadline d = Deadline::After(std::chrono::milliseconds(0));
  EXPECT_FALSE(d.never());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.PollTimeoutMs(), 0);
}

TEST(DeadlineTest, PollTimeoutRoundsUpNotDownToZero) {
  // A deadline a hair in the future must yield a positive poll timeout,
  // never 0 (which poll(2) treats as "return immediately" = busy spin).
  const Deadline d = Deadline::After(std::chrono::milliseconds(100));
  const int t = d.PollTimeoutMs();
  EXPECT_GT(t, 0);
  EXPECT_LE(t, 100);
}

TEST(SocketDeadlineTest, RecvFrameTimesOutOnSilentPeer) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  // Nobody ever accepts or writes: the recv must give up at its deadline.
  const auto start = std::chrono::steady_clock::now();
  const auto frame =
      client->RecvFrame(Deadline::After(std::chrono::milliseconds(50)));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kTimedOut);
  EXPECT_GE(elapsed.count(), 40);    // did wait for the budget...
  EXPECT_LT(elapsed.count(), 2000);  // ...but not (much) longer
}

TEST(SocketDeadlineTest, DeadlineDoesNotDisturbHealthyTraffic) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto frame = conn->RecvFrame(Deadline::After(std::chrono::seconds(5)));
    ASSERT_TRUE(frame.ok());
    ASSERT_TRUE(
        conn->SendFrame(*frame, Deadline::After(std::chrono::seconds(5)))
            .ok());
  });
  auto client = TcpConnection::Connect(
      listener->port(), Deadline::After(std::chrono::seconds(5)));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(
      client->SendFrame({9, 8, 7}, Deadline::After(std::chrono::seconds(5)))
          .ok());
  const auto reply =
      client->RecvFrame(Deadline::After(std::chrono::seconds(5)));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, (std::vector<std::uint8_t>{9, 8, 7}));
  server.join();
}

TEST(SocketFaultTest, InjectedConnectRefusal) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  FaultInjector::Options opts;
  opts.refuse_connect_prob = 1.0;
  FaultInjector injector(opts);
  const auto conn = TcpConnection::Connect(
      listener->port(), Deadline::After(std::chrono::seconds(1)), &injector);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(injector.counters().refused_connects, 1u);
}

TEST(SocketFaultTest, DroppedFrameNeverArrives) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  FaultInjector::Options opts;
  opts.drop_prob = 1.0;
  FaultInjector injector(opts);
  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  client->set_injector(&injector);
  auto server = listener->Accept();
  ASSERT_TRUE(server.ok());
  // The sender sees success (the network ate it), the receiver nothing.
  ASSERT_TRUE(client->SendFrame({1, 2, 3}).ok());
  const auto frame =
      server->RecvFrame(Deadline::After(std::chrono::milliseconds(100)));
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kTimedOut);
  EXPECT_GE(injector.counters().drops, 1u);
}

TEST(SocketFaultTest, TruncatedFrameStallsReceiverUntilDeadline) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  FaultInjector::Options opts;
  opts.truncate_prob = 1.0;
  FaultInjector injector(opts);
  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  client->set_injector(&injector);
  auto server = listener->Accept();
  ASSERT_TRUE(server.ok());
  // The length prefix promises the full payload but only a prefix is sent,
  // so the receiver blocks mid-frame until its deadline fires.
  ASSERT_TRUE(client->SendFrame(std::vector<std::uint8_t>(64, 0x5a)).ok());
  const auto frame =
      server->RecvFrame(Deadline::After(std::chrono::milliseconds(100)));
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kTimedOut);
  EXPECT_GE(injector.counters().truncations, 1u);
}

TEST(SocketFaultTest, CorruptedFrameDetectedByChecksum) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  FaultInjector::Options opts;
  opts.corrupt_prob = 1.0;
  FaultInjector injector(opts);
  auto client = TcpConnection::Connect(listener->port());
  ASSERT_TRUE(client.ok());
  client->set_injector(&injector);
  auto server = listener->Accept();
  ASSERT_TRUE(server.ok());
  const std::vector<std::uint8_t> sent(32, 0xcd);
  ASSERT_TRUE(client->SendFrame(sent).ok());
  // The header's CRC covers the intended payload, so the mangled bytes
  // never reach the caller: the receiver reports kCorruption instead.
  const auto frame =
      server->RecvFrame(Deadline::After(std::chrono::seconds(2)));
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
  EXPECT_GE(injector.counters().corruptions, 1u);
}

TEST(FdHandleTest, MoveSemantics) {
  FdHandle a(42);  // fake fd number; never used for IO
  EXPECT_TRUE(a.valid());
  FdHandle b(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_EQ(b.get(), 42);
  EXPECT_EQ(b.Release(), 42);  // release so the dtor won't close fd 42
  EXPECT_FALSE(b.valid());
}

}  // namespace
}  // namespace ghba
