// Pipelining, batching and shard-isolation tests against a live MdsServer.
//
// These pin the contracts the sharded event loop introduced (see DESIGN.md
// "Concurrency invariants" and docs/PROTOCOL.md "Pipelining"):
//
//   * any number of requests may be in flight on one connection, and the
//     responses come back in request order;
//   * many frames landing in one TCP segment are all served from that one
//     wakeup (regression: the old poll loop handled one frame per ready
//     connection per iteration);
//   * blocking work — the simulated spilled-replica probe, an injected
//     shard stall — runs on a worker and delays only its own shard, never
//     another connection's traffic (regression: the old single-threaded
//     loop slept in the event thread, stalling every connection);
//   * kBatch packs many sub-requests into one frame/CRC and the responses
//     come back slot-for-slot; kVersion negotiates the protocol revision.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <sys/socket.h>
#include <vector>

#include "rpc/fault_injector.hpp"
#include "rpc/protocol.hpp"
#include "rpc/server.hpp"
#include "rpc/socket.hpp"
#include "rpc/wire_buffer.hpp"

namespace ghba {
namespace {

using namespace std::chrono_literals;

ClusterConfig TestConfig() {
  ClusterConfig c;
  c.expected_files_per_mds = 1000;
  c.lru_capacity = 64;
  c.memory_budget_bytes = 64ULL << 20;
  c.seed = 21;
  c.rpc.server_shards = 2;
  return c;
}

/// A path that ShardOfPath places on `shard` of `num_shards`.
std::string PathOnShard(std::uint32_t shard, std::uint32_t num_shards) {
  for (int i = 0;; ++i) {
    std::string path = "/pipe/s" + std::to_string(shard) + "/f" +
                       std::to_string(i);
    if (ShardOfPath(path, num_shards) == shard) return path;
  }
}

Result<bool> ReadBool(TcpConnection& conn, Deadline deadline) {
  auto resp = conn.RecvFrame(deadline);
  if (!resp.ok()) return resp.status();
  ByteReader in(*resp);
  auto env = OpenEnvelope(in);
  if (!env.ok()) return env.status();
  if (!env->has_payload) return env->status;
  return DecodeBoolResp(in);
}

class PipeliningTest : public ::testing::Test {
 protected:
  void Boot(const ClusterConfig& config, FaultInjector* injector = nullptr) {
    server_ = std::make_unique<MdsServer>(0, config);
    if (injector != nullptr) server_->set_fault_injector(injector);
    ASSERT_TRUE(server_->Start().ok());
  }

  TcpConnection Connect() {
    auto conn = TcpConnection::Connect(server_->port());
    EXPECT_TRUE(conn.ok());
    return std::move(*conn);
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  std::unique_ptr<MdsServer> server_;
};

TEST_F(PipeliningTest, ResponsesComeBackInRequestOrder) {
  Boot(TestConfig());
  auto conn = Connect();
  // Fire a full window of inserts followed by the matching verifies
  // without reading a single response.
  const int kN = 25;
  for (int i = 0; i < kN; ++i) {
    FileMetadata md;
    md.inode = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(
        conn.SendFrame(EncodeInsert("/pipe/f" + std::to_string(i), md)).ok());
  }
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(conn.SendFrame(EncodePathRequest(
                                   MsgType::kVerify,
                                   "/pipe/f" + std::to_string(i)))
                    .ok());
  }
  const auto deadline = Deadline::After(5000ms);
  // First kN responses are the insert acks, in order...
  for (int i = 0; i < kN; ++i) {
    auto resp = conn.RecvFrame(deadline);
    ASSERT_TRUE(resp.ok()) << i;
    ByteReader in(*resp);
    auto env = OpenEnvelope(in);
    ASSERT_TRUE(env.ok()) << i;
    EXPECT_TRUE(env->status.ok()) << i << ": " << env->status.ToString();
  }
  // ...then the verifies, each finding the file its same-path insert
  // created (same path -> same shard -> FIFO).
  for (int i = 0; i < kN; ++i) {
    auto found = ReadBool(conn, deadline);
    ASSERT_TRUE(found.ok()) << i;
    EXPECT_TRUE(*found) << i;
  }
}

// Regression (poll-loop rewrite): frames buffered behind the first one in
// a single TCP segment must all be served from that wakeup, not one per
// loop iteration.
TEST_F(PipeliningTest, ManyFramesInOneSegmentAllAnswer) {
  Boot(TestConfig());
  auto conn = Connect();
  FileMetadata md;
  ASSERT_TRUE(conn.SendFrame(EncodeInsert("/pipe/seg", md)).ok());
  ASSERT_TRUE(conn.RecvFrame(Deadline::After(5000ms)).ok());

  // Hand-build one byte blob holding many complete wire frames and push it
  // with a single send(2).
  const int kN = 64;
  std::vector<std::uint8_t> blob;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(BuildWireFrame(
        FaultInjector::FramePlan{},
        EncodePathRequest(MsgType::kVerify, "/pipe/seg"), blob));
  }
  ASSERT_EQ(::send(conn.fd(), blob.data(), blob.size(), 0),
            static_cast<ssize_t>(blob.size()));
  const auto deadline = Deadline::After(5000ms);
  for (int i = 0; i < kN; ++i) {
    auto found = ReadBool(conn, deadline);
    ASSERT_TRUE(found.ok()) << i;
    EXPECT_TRUE(*found) << i;
  }
}

// Regression (satellite bugfix): the simulated spilled-replica probe used
// to sleep in the event thread, so one slow lookup froze every
// connection. It now sleeps on the owning shard's worker: traffic for the
// other shard must complete while the slow lookup is still pending.
TEST_F(PipeliningTest, SlowSpilledLookupDoesNotDelayOtherShard) {
  ClusterConfig config = TestConfig();
  // Zero budget: every replica byte spills, so kLookupLocal pays
  // (replicas + 1) * spilled_probe_ms on its worker.
  config.memory_budget_bytes = 1;
  config.latency.spilled_probe_ms = 150.0;
  Boot(config);
  auto slow = Connect();
  auto fast = Connect();

  const std::string slow_path = PathOnShard(0, server_->shards());
  const std::string fast_path = PathOnShard(1, server_->shards());
  {
    auto setup = Connect();
    FileMetadata md;
    ASSERT_TRUE(setup.SendFrame(EncodeInsert(slow_path, md)).ok());
    ASSERT_TRUE(setup.SendFrame(EncodeInsert(fast_path, md)).ok());
    // A resident replica is what spills: with a 1-byte budget the whole
    // array overflows and every kLookupLocal pays the probe penalty.
    const auto replica = BloomFilter::ForCapacity(1000, 16.0, 3);
    ASSERT_TRUE(setup.SendFrame(EncodeReplicaInstall(1, replica)).ok());
    ASSERT_TRUE(setup.RecvFrame(Deadline::After(5000ms)).ok());
    ASSERT_TRUE(setup.RecvFrame(Deadline::After(5000ms)).ok());
    ASSERT_TRUE(setup.RecvFrame(Deadline::After(5000ms)).ok());
  }

  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(
      slow.SendFrame(EncodePathRequest(MsgType::kLookupLocal, slow_path)).ok());
  ASSERT_TRUE(
      fast.SendFrame(EncodePathRequest(MsgType::kVerify, fast_path)).ok());
  auto found = ReadBool(fast, Deadline::After(5000ms));
  const auto fast_elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(*found);
  // The fast connection must not wait out the slow shard's ~300ms probe.
  EXPECT_LT(fast_elapsed, 100ms);
  // And the slow lookup still completes.
  auto resp = slow.RecvFrame(Deadline::After(5000ms));
  ASSERT_TRUE(resp.ok());
  const auto slow_elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(slow_elapsed, 140ms);
}

// An injected stall parks exactly the stalled shard; the other shard keeps
// serving, and releasing the stall lets the parked traffic finish.
TEST_F(PipeliningTest, ShardStallOnlyParksThatShard) {
  FaultInjector injector;
  Boot(TestConfig(), &injector);
  const std::string stalled_path = PathOnShard(0, server_->shards());
  const std::string live_path = PathOnShard(1, server_->shards());
  {
    auto setup = Connect();
    FileMetadata md;
    ASSERT_TRUE(setup.SendFrame(EncodeInsert(stalled_path, md)).ok());
    ASSERT_TRUE(setup.SendFrame(EncodeInsert(live_path, md)).ok());
    ASSERT_TRUE(setup.RecvFrame(Deadline::After(5000ms)).ok());
    ASSERT_TRUE(setup.RecvFrame(Deadline::After(5000ms)).ok());
  }

  injector.StallShard(0, 0);
  auto stuck = Connect();
  auto live = Connect();
  ASSERT_TRUE(
      stuck.SendFrame(EncodePathRequest(MsgType::kVerify, stalled_path)).ok());
  // The stalled shard must not answer while stalled...
  EXPECT_EQ(stuck.RecvFrame(Deadline::After(300ms)).status().code(),
            StatusCode::kTimedOut);
  // ...but the other shard serves normally the whole time.
  ASSERT_TRUE(
      live.SendFrame(EncodePathRequest(MsgType::kVerify, live_path)).ok());
  auto found = ReadBool(live, Deadline::After(2000ms));
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(*found);

  injector.UnstallShard(0, 0);
  auto released = ReadBool(stuck, Deadline::After(5000ms));
  ASSERT_TRUE(released.ok());
  EXPECT_TRUE(*released);
}

TEST_F(PipeliningTest, BatchRoundTripsSlotForSlot) {
  Boot(TestConfig());
  auto conn = Connect();
  FileMetadata md;
  md.inode = 9;
  std::vector<std::vector<std::uint8_t>> subs;
  subs.push_back(EncodeInsert("/batch/a", md));
  subs.push_back(EncodeInsert("/batch/b", md));
  subs.push_back(EncodePathRequest(MsgType::kVerify, "/batch/a"));
  subs.push_back(EncodePathRequest(MsgType::kVerify, "/batch/b"));
  subs.push_back(EncodePathRequest(MsgType::kVerify, "/batch/absent"));
  ASSERT_TRUE(conn.SendFrame(EncodeBatch(subs)).ok());

  auto resp = conn.RecvFrame(Deadline::After(5000ms));
  ASSERT_TRUE(resp.ok());
  ByteReader in(*resp);
  auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  ASSERT_TRUE(env->has_payload);
  auto out = DecodeBatchResp(in);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), subs.size());

  for (int slot = 0; slot < 2; ++slot) {
    ByteReader sub((*out)[static_cast<std::size_t>(slot)]);
    auto sub_env = OpenEnvelope(sub);
    ASSERT_TRUE(sub_env.ok()) << slot;
    EXPECT_TRUE(sub_env->status.ok()) << slot;
  }
  const bool expect_found[] = {true, true, false};
  for (int slot = 2; slot < 5; ++slot) {
    ByteReader sub((*out)[static_cast<std::size_t>(slot)]);
    auto sub_env = OpenEnvelope(sub);
    ASSERT_TRUE(sub_env.ok()) << slot;
    ASSERT_TRUE(sub_env->has_payload) << slot;
    auto found = DecodeBoolResp(sub);
    ASSERT_TRUE(found.ok()) << slot;
    EXPECT_EQ(*found, expect_found[slot - 2]) << slot;
  }
}

TEST_F(PipeliningTest, BatchCarryingNonBatchableTypeIsRejectedWhole) {
  Boot(TestConfig());
  auto conn = Connect();
  std::vector<std::vector<std::uint8_t>> subs;
  subs.push_back(EncodePathRequest(MsgType::kVerify, "/x"));
  subs.push_back(EncodeHeader(MsgType::kShutdown));  // must not smuggle in
  ASSERT_TRUE(conn.SendFrame(EncodeBatch(subs)).ok());
  auto resp = conn.RecvFrame(Deadline::After(5000ms));
  ASSERT_TRUE(resp.ok());
  ByteReader in(*resp);
  auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  EXPECT_FALSE(env->status.ok());
  // And the server must still be alive to serve the next request.
  ASSERT_TRUE(conn.SendFrame(EncodeHeader(MsgType::kPing)).ok());
  EXPECT_TRUE(conn.RecvFrame(Deadline::After(5000ms)).ok());
}

TEST_F(PipeliningTest, VersionHandshakeAnswersProtocolVersion) {
  Boot(TestConfig());
  auto conn = Connect();
  ASSERT_TRUE(conn.SendFrame(EncodeHeader(MsgType::kVersion)).ok());
  auto resp = conn.RecvFrame(Deadline::After(5000ms));
  ASSERT_TRUE(resp.ok());
  ByteReader in(*resp);
  auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  ASSERT_TRUE(env->has_payload);
  auto version = DecodeVersionResp(in);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, kProtocolVersion);
}

}  // namespace
}  // namespace ghba
