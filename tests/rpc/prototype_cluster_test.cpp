#include "rpc/prototype_cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

namespace ghba {
namespace {

ClusterConfig ProtoConfig(std::uint32_t n = 8, std::uint32_t m = 3) {
  ClusterConfig c;
  c.num_mds = n;
  c.max_group_size = m;
  c.expected_files_per_mds = 500;
  c.lru_capacity = 64;
  c.memory_budget_bytes = 64ULL << 20;
  c.seed = 77;
  return c;
}

FileMetadata Md(std::uint64_t inode = 1) {
  FileMetadata md;
  md.inode = inode;
  return md;
}

class PrototypeClusterTest : public ::testing::TestWithParam<ProtoScheme> {};

TEST_P(PrototypeClusterTest, InsertLookupRoundTrip) {
  PrototypeCluster cluster(ProtoConfig(), GetParam());
  ASSERT_TRUE(cluster.Start().ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(cluster.Insert("/p/f" + std::to_string(i), Md(i)).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());
  for (int i = 0; i < 60; ++i) {
    const auto r = cluster.Lookup("/p/f" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->found) << i;
    EXPECT_GE(r->served_level, 1);
    EXPECT_LE(r->served_level, 4);
    EXPECT_GT(r->latency_ms, 0);
  }
}

TEST_P(PrototypeClusterTest, AbsentFileMisses) {
  PrototypeCluster cluster(ProtoConfig(), GetParam());
  ASSERT_TRUE(cluster.Start().ok());
  const auto r = cluster.Lookup("/never/created");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);
  EXPECT_EQ(r->served_level, 4);
}

TEST_P(PrototypeClusterTest, UnlinkThenMiss) {
  PrototypeCluster cluster(ProtoConfig(), GetParam());
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.Insert("/u/x", Md()).ok());
  ASSERT_TRUE(cluster.PublishAll().ok());
  ASSERT_TRUE(cluster.Unlink("/u/x").ok());
  ASSERT_TRUE(cluster.PublishAll().ok());
  const auto r = cluster.Lookup("/u/x");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);
}

TEST_P(PrototypeClusterTest, AddServerCountsMessages) {
  PrototypeCluster cluster(ProtoConfig(), GetParam());
  ASSERT_TRUE(cluster.Start().ok());
  const auto joined = cluster.AddServer();
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(cluster.NumServers(), 9u);
  EXPECT_GT(joined->messages, 0u);
  // Service continues after the join.
  ASSERT_TRUE(cluster.Insert("/after/join", Md()).ok());
  ASSERT_TRUE(cluster.PublishAll().ok());
  const auto r = cluster.Lookup("/after/join");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
}

INSTANTIATE_TEST_SUITE_P(Schemes, PrototypeClusterTest,
                         ::testing::Values(ProtoScheme::kGhba,
                                           ProtoScheme::kHba),
                         [](const auto& info) {
                           return info.param == ProtoScheme::kGhba ? "Ghba"
                                                                   : "Hba";
                         });

TEST(PrototypeJoinCostTest, HbaJoinCostsMoreMessagesThanGhba) {
  // Fig. 15's claim, measured over the wire. N=13, M=3 leaves a group with
  // room, so the G-HBA join is the common (no-split) case the figure
  // averages over.
  std::uint64_t ghba_messages = 0, hba_messages = 0;
  {
    PrototypeCluster cluster(ProtoConfig(13, 3), ProtoScheme::kGhba);
    ASSERT_TRUE(cluster.Start().ok());
    const auto joined = cluster.AddServer();
    ASSERT_TRUE(joined.ok());
    ghba_messages = joined->messages;
  }
  {
    PrototypeCluster cluster(ProtoConfig(13, 3), ProtoScheme::kHba);
    ASSERT_TRUE(cluster.Start().ok());
    const auto joined = cluster.AddServer();
    ASSERT_TRUE(joined.ok());
    hba_messages = joined->messages;
  }
  EXPECT_GT(hba_messages, ghba_messages);
}

TEST(PrototypeHotLookupTest, RepeatedLookupsReachL1) {
  PrototypeCluster cluster(ProtoConfig(6, 3), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.Insert("/hot", Md()).ok());
  ASSERT_TRUE(cluster.PublishAll().ok());
  int l1 = 0;
  for (int i = 0; i < 60; ++i) {
    const auto r = cluster.Lookup("/hot");
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->found);
    l1 += (r->served_level == 1);
  }
  EXPECT_GT(l1, 10);
}

TEST_P(PrototypeClusterTest, GracefulRemoveKeepsAllFiles) {
  PrototypeCluster cluster(ProtoConfig(), GetParam());
  ASSERT_TRUE(cluster.Start().ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(cluster.Insert("/rm/f" + std::to_string(i), Md(i)).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());

  const auto removed = cluster.RemoveServer(2);
  ASSERT_TRUE(removed.ok());
  EXPECT_GT(removed->messages, 0u);
  EXPECT_EQ(cluster.AliveServers().size(), 7u);

  for (int i = 0; i < 60; ++i) {
    const auto r = cluster.Lookup("/rm/f" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->found) << i;
    EXPECT_NE(r->home, 2u) << i;
  }
}

TEST_P(PrototypeClusterTest, CrashLosesOnlyItsFiles) {
  PrototypeCluster cluster(ProtoConfig(), GetParam());
  ASSERT_TRUE(cluster.Start().ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(cluster.Insert("/kill/f" + std::to_string(i), Md(i)).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());
  // Record which files live on the victim.
  std::set<std::string> on_victim;
  for (int i = 0; i < 60; ++i) {
    const std::string path = "/kill/f" + std::to_string(i);
    const auto r = cluster.Lookup(path);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->found);
    if (r->home == 3u) on_victim.insert(path);
  }

  ASSERT_TRUE(cluster.KillServer(3).ok());
  EXPECT_EQ(cluster.AliveServers().size(), 7u);

  for (int i = 0; i < 60; ++i) {
    const std::string path = "/kill/f" + std::to_string(i);
    const auto r = cluster.Lookup(path);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->found, on_victim.count(path) == 0) << path;
  }
  // The cluster still accepts new work.
  ASSERT_TRUE(cluster.Insert("/kill/after", Md()).ok());
  ASSERT_TRUE(cluster.PublishAll().ok());
  const auto r = cluster.Lookup("/kill/after");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
}

TEST(PrototypeRemoveTest, RemoveUnknownRejected) {
  PrototypeCluster cluster(ProtoConfig(4, 2), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  EXPECT_EQ(cluster.RemoveServer(99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cluster.KillServer(99).code(), StatusCode::kNotFound);
}

ClusterConfig TightRpcConfig(std::uint32_t n = 6, std::uint32_t m = 3) {
  // Short budgets so tests that exercise dead/stalled peers finish fast.
  auto c = ProtoConfig(n, m);
  c.rpc.connect_timeout_ms = 200;
  c.rpc.attempt_timeout_ms = 200;
  c.rpc.call_budget_ms = 600;
  c.rpc.max_attempts = 2;
  c.rpc.retry_backoff_ms = 2;
  c.rpc.server_io_timeout_ms = 200;
  c.rpc.suspect_after = 2;
  c.rpc.ping_attempts = 2;
  c.rpc.ping_timeout_ms = 100;
  return c;
}

TEST(PrototypeFailureTest, KillServerDropsFiltersAndRebuildsCoverage) {
  PrototypeCluster cluster(ProtoConfig(6, 3), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(cluster.Insert("/cov/f" + std::to_string(i), Md(i)).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());
  std::map<std::string, MdsId> home_of;
  for (int i = 0; i < 60; ++i) {
    const std::string path = "/cov/f" + std::to_string(i);
    const auto r = cluster.Lookup(path);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->found);
    home_of[path] = r->home;
  }

  const MdsId victim = 1;
  ASSERT_TRUE(cluster.KillServer(victim).ok());
  EXPECT_EQ(cluster.AliveServers().size(), 5u);
  EXPECT_EQ(cluster.health().state(victim), PeerState::kDead);

  for (const auto& [path, home] : home_of) {
    const auto r = cluster.Lookup(path);
    ASSERT_TRUE(r.ok()) << path << ": " << r.status().ToString();
    if (home == victim) {
      // Filters dropped everywhere: no stale replica or L1 entry may keep
      // naming the dead server, so the miss is clean and immediate.
      EXPECT_FALSE(r->found) << path;
    } else {
      EXPECT_TRUE(r->found) << path;
      EXPECT_EQ(r->home, home) << path;
      // Coverage rebuilt: with every group again holding a replica of
      // every outsider, no surviving file needs the global L4 fallback.
      EXPECT_LE(r->served_level, 3) << path;
    }
  }
}

TEST(PrototypeFailureTest, CrashedServerAutoDetectedAndFailedOver) {
  PrototypeCluster cluster(TightRpcConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.Insert("/auto/f" + std::to_string(i), Md(i)).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());
  std::map<std::string, MdsId> home_of;
  for (int i = 0; i < 30; ++i) {
    const std::string path = "/auto/f" + std::to_string(i);
    const auto r = cluster.Lookup(path);
    ASSERT_TRUE(r.ok());
    home_of[path] = r->home;
  }

  // Crash without telling the orchestrator: bookkeeping still lists the
  // victim as alive, and the warmed connection cache still points at it.
  const MdsId victim = 2;
  ASSERT_TRUE(cluster.CrashServer(victim).ok());
  auto alive = cluster.AliveServers();
  ASSERT_NE(std::find(alive.begin(), alive.end(), victim), alive.end());

  // A call into the crashed server fails within its budget instead of
  // hanging on the stale cached connection (evict + lazy reconnect).
  const auto start = std::chrono::steady_clock::now();
  const auto first = cluster.VerifyOn(victim, "/auto/f0");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_FALSE(first.ok());
  EXPECT_LT(elapsed.count(), 5000);

  // The second failure crosses suspect_after; the kPing heart-beat finds
  // nobody home and fail-over runs — no manual KillServer anywhere.
  (void)cluster.VerifyOn(victim, "/auto/f0");
  alive = cluster.AliveServers();
  EXPECT_EQ(std::find(alive.begin(), alive.end(), victim), alive.end());
  EXPECT_EQ(cluster.health().state(victim), PeerState::kDead);

  // Service continues: survivors' files all resolve to their old homes.
  for (const auto& [path, home] : home_of) {
    const auto r = cluster.Lookup(path);
    ASSERT_TRUE(r.ok()) << path << ": " << r.status().ToString();
    EXPECT_EQ(r->found, home != victim) << path;
    if (home != victim) {
      EXPECT_EQ(r->home, home) << path;
    }
  }
  ASSERT_TRUE(cluster.Insert("/auto/after", Md()).ok());
  ASSERT_TRUE(cluster.PublishAll().ok());
  const auto r = cluster.Lookup("/auto/after");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
}

TEST(PrototypeFailureTest, SlowCallsDoNotTriggerFailOverByThemselves) {
  // One transient failure stays below suspect_after: the peer is never
  // suspected and nothing is torn down.
  PrototypeCluster cluster(TightRpcConfig(4, 2), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  EXPECT_EQ(cluster.health().state(0), PeerState::kHealthy);
  ASSERT_TRUE(cluster.Insert("/ok/x", Md()).ok());
  ASSERT_TRUE(cluster.PublishAll().ok());
  EXPECT_EQ(cluster.AliveServers().size(), 4u);
  for (MdsId id = 0; id < 4; ++id) {
    EXPECT_EQ(cluster.health().state(id), PeerState::kHealthy) << id;
  }
}

TEST(PrototypeSplitTest, JoinsBeyondCapacityTriggerSplit) {
  // N=6, M=3: both groups start full, so the very first join must split.
  PrototypeCluster cluster(ProtoConfig(6, 3), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  const auto groups_before = cluster.NumGroups();
  ASSERT_TRUE(cluster.AddServer().ok());
  EXPECT_GT(cluster.NumGroups(), groups_before);
  // Still serves across the reorganized groups.
  ASSERT_TRUE(cluster.Insert("/post/split", Md()).ok());
  ASSERT_TRUE(cluster.PublishAll().ok());
  const auto r = cluster.Lookup("/post/split");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
}

}  // namespace
}  // namespace ghba
