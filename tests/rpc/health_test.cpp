#include "rpc/health.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

TEST(PeerHealthTrackerTest, UnknownPeersAreHealthy) {
  PeerHealthTracker tracker(2);
  EXPECT_EQ(tracker.state(42), PeerState::kHealthy);
  EXPECT_EQ(tracker.consecutive_failures(42), 0u);
  EXPECT_TRUE(tracker.DeadPeers().empty());
}

TEST(PeerHealthTrackerTest, FailuresEscalateToSuspected) {
  PeerHealthTracker tracker(3);
  EXPECT_EQ(tracker.RecordFailure(1), PeerState::kHealthy);
  EXPECT_EQ(tracker.RecordFailure(1), PeerState::kHealthy);
  EXPECT_EQ(tracker.RecordFailure(1), PeerState::kSuspected);
  EXPECT_EQ(tracker.state(1), PeerState::kSuspected);
  EXPECT_EQ(tracker.consecutive_failures(1), 3u);
  // A different peer's streak is independent.
  EXPECT_EQ(tracker.state(2), PeerState::kHealthy);
}

TEST(PeerHealthTrackerTest, SuccessClearsSuspicion) {
  PeerHealthTracker tracker(2);
  tracker.RecordFailure(5);
  tracker.RecordFailure(5);
  ASSERT_EQ(tracker.state(5), PeerState::kSuspected);
  tracker.RecordSuccess(5);
  EXPECT_EQ(tracker.state(5), PeerState::kHealthy);
  EXPECT_EQ(tracker.consecutive_failures(5), 0u);
  // The streak restarts from zero after the success.
  EXPECT_EQ(tracker.RecordFailure(5), PeerState::kHealthy);
}

TEST(PeerHealthTrackerTest, DeadIsStickyUntilForget) {
  PeerHealthTracker tracker(1);
  tracker.RecordFailure(7);
  tracker.MarkDead(7);
  EXPECT_EQ(tracker.state(7), PeerState::kDead);
  // A stray late success must not resurrect a confirmed-dead peer.
  tracker.RecordSuccess(7);
  EXPECT_EQ(tracker.state(7), PeerState::kDead);
  EXPECT_EQ(tracker.DeadPeers(), std::vector<MdsId>{7});
  tracker.Forget(7);
  EXPECT_EQ(tracker.state(7), PeerState::kHealthy);
  EXPECT_TRUE(tracker.DeadPeers().empty());
}

TEST(PeerHealthTrackerTest, ZeroThresholdClampsToOne) {
  PeerHealthTracker tracker(0);
  EXPECT_EQ(tracker.RecordFailure(1), PeerState::kSuspected);
}

}  // namespace
}  // namespace ghba
