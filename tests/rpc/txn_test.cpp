// Distributed namespace transactions (the PR's tentpole): a rename across
// two MDSs is one WAL-journaled two-phase commit, `Decide(commit)` durable
// at the coordinator is the ack point, and a crash of EITHER participant
// at EVERY phase boundary must recover to exactly one of the endpoints —
// the old name or the new name, never both, never neither. The crash cases
// run parameterized over every boundary so a new phase cannot ship without
// a crash test; the halt cases kill the *client* mid-drive instead and let
// in-doubt resolution finish the job.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "hash/fnv.hpp"
#include "rpc/prototype_cluster.hpp"

namespace ghba {
namespace {

ClusterConfig TxnConfig() {
  ClusterConfig c;
  c.num_mds = 6;
  c.max_group_size = 3;
  c.expected_files_per_mds = 500;
  c.lru_capacity = 64;
  c.memory_budget_bytes = 64ULL << 20;
  c.seed = 7;
  c.rpc.connect_timeout_ms = 150;
  c.rpc.attempt_timeout_ms = 150;
  c.rpc.call_budget_ms = 450;
  c.rpc.max_attempts = 3;
  c.rpc.retry_backoff_ms = 2;
  c.rpc.server_io_timeout_ms = 150;
  c.rpc.suspect_after = 3;
  c.rpc.ping_attempts = 3;
  c.rpc.ping_timeout_ms = 100;
  return c;
}

/// Where CreateExclusive / the rename dst lands: the deterministic hash
/// placement over the id-sorted alive set (mirrors the orchestrator).
MdsId HashHome(PrototypeCluster& cluster, const std::string& path) {
  const auto alive = cluster.AliveServers();
  EXPECT_FALSE(alive.empty());
  return alive[Fnv1a64(path) % alive.size()];
}

/// A dst name whose hash placement differs from (or equals, per `cross`)
/// `src_home`, so a test can force the cross-MDS or same-MDS shape.
std::string PickDst(PrototypeCluster& cluster, MdsId src_home, bool cross) {
  for (int i = 0; i < 256; ++i) {
    const std::string candidate = "/txn/dst" + std::to_string(i);
    if ((HashHome(cluster, candidate) != src_home) == cross) return candidate;
  }
  ADD_FAILURE() << "no dst candidate with the required placement";
  return "/txn/dst0";
}

std::map<std::string, MdsId> BuildNamespace(PrototypeCluster& cluster,
                                            int files) {
  std::map<std::string, MdsId> home_of;
  for (int i = 0; i < files; ++i) {
    const auto path = "/base/f" + std::to_string(i);
    FileMetadata md;
    md.inode = static_cast<std::uint64_t>(i);
    EXPECT_TRUE(cluster.Insert(path, md).ok());
  }
  EXPECT_TRUE(cluster.PublishAll().ok());
  for (int i = 0; i < files; ++i) {
    const auto path = "/base/f" + std::to_string(i);
    const auto r = cluster.Lookup(path);
    EXPECT_TRUE(r.ok());
    if (r.ok()) home_of[path] = r->home;
  }
  return home_of;
}

void ExpectAllLookupsCorrect(PrototypeCluster& cluster,
                             const std::map<std::string, MdsId>& home_of) {
  for (const auto& [path, home] : home_of) {
    const auto r = cluster.Lookup(path);
    ASSERT_TRUE(r.ok()) << path << ": " << r.status().ToString();
    EXPECT_TRUE(r->found) << path;
    EXPECT_EQ(r->home, home) << path;
  }
}

/// The exactly-one-endpoint invariant every txn test ends on: an acked
/// rename resolves to dst, an unacked one to src, and never to both.
void ExpectRenameEndpoint(PrototypeCluster& cluster, const std::string& src,
                          const std::string& dst, bool acked) {
  const auto src_r = cluster.Lookup(src);
  const auto dst_r = cluster.Lookup(dst);
  ASSERT_TRUE(src_r.ok()) << src_r.status().ToString();
  ASSERT_TRUE(dst_r.ok()) << dst_r.status().ToString();
  EXPECT_EQ(src_r->found, !acked) << "src presence";
  EXPECT_EQ(dst_r->found, acked) << "dst presence";
  EXPECT_FALSE(src_r->found && dst_r->found) << "half-applied rename";
}

TEST(TxnTest, CrossServerRenameMovesTheFileAtomically) {
  PrototypeCluster cluster(TxnConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  const auto home_of = BuildNamespace(cluster, 24);

  const std::string src = "/txn/src";
  FileMetadata md;
  md.inode = 42;
  ASSERT_TRUE(cluster.Insert(src, md).ok());
  const auto src_r = cluster.Lookup(src);
  ASSERT_TRUE(src_r.ok());
  const MdsId src_home = src_r->home;
  const std::string dst = PickDst(cluster, src_home, /*cross=*/true);
  const MdsId dst_home = HashHome(cluster, dst);

  ASSERT_TRUE(cluster.Rename(src, dst).ok());

  ExpectRenameEndpoint(cluster, src, dst, /*acked=*/true);
  const auto moved = cluster.Lookup(dst);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved->home, dst_home);
  // The new name is a plain file afterwards: no lingering intent lock.
  EXPECT_TRUE(cluster.Unlink(dst).ok());
  ExpectAllLookupsCorrect(cluster, home_of);
}

TEST(TxnTest, SameServerRenameWorksThroughTheSameMachinery) {
  PrototypeCluster cluster(TxnConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());

  const std::string src = "/txn/samesrc";
  ASSERT_TRUE(cluster.Insert(src, FileMetadata{}).ok());
  const auto src_r = cluster.Lookup(src);
  ASSERT_TRUE(src_r.ok());
  const std::string dst = PickDst(cluster, src_r->home, /*cross=*/false);

  ASSERT_TRUE(cluster.Rename(src, dst).ok());
  ExpectRenameEndpoint(cluster, src, dst, /*acked=*/true);
}

TEST(TxnTest, RenameRejectsBadArguments) {
  PrototypeCluster cluster(TxnConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.Insert("/txn/a", FileMetadata{}).ok());
  ASSERT_TRUE(cluster.Insert("/txn/b", FileMetadata{}).ok());

  EXPECT_EQ(cluster.Rename("/txn/a", "/txn/a").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster.Rename("/txn/missing", "/txn/c").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(cluster.Rename("/txn/a", "/txn/b").code(),
            StatusCode::kAlreadyExists);
  // The refused drives left both names fully usable.
  EXPECT_TRUE(cluster.Unlink("/txn/a").ok());
  EXPECT_TRUE(cluster.Unlink("/txn/b").ok());
}

TEST(TxnTest, CreateExclusiveCreatesOnceAtTheHashHome) {
  PrototypeCluster cluster(TxnConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());

  const std::string path = "/txn/excl";
  FileMetadata md;
  md.inode = 7;
  ASSERT_TRUE(cluster.CreateExclusive(path, md).ok());
  const auto r = cluster.Lookup(path);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
  EXPECT_EQ(r->home, HashHome(cluster, path));

  EXPECT_EQ(cluster.CreateExclusive(path, md).code(),
            StatusCode::kAlreadyExists);
  // Plain Insert sees it too, and the file is a plain file afterwards.
  EXPECT_TRUE(cluster.Unlink(path).ok());
  EXPECT_TRUE(cluster.CreateExclusive(path, md).ok());
}

// --- client-death (halt) cases: the driver stops mid-choreography, the
// servers stay up, and ResolveInDoubt must finish what the decision (or
// presumed abort) dictates. ---------------------------------------------

TEST(TxnTest, HaltedPrepareLeavesIntentLockUntilResolutionAborts) {
  FaultInjector injector;
  PrototypeCluster cluster(TxnConfig(), ProtoScheme::kGhba);
  cluster.set_fault_injector(&injector);
  ASSERT_TRUE(cluster.Start().ok());

  const std::string src = "/txn/haltsrc";
  ASSERT_TRUE(cluster.Insert(src, FileMetadata{}).ok());
  const auto src_r = cluster.Lookup(src);
  ASSERT_TRUE(src_r.ok());
  const MdsId src_home = src_r->home;
  const std::string dst = PickDst(cluster, src_home, /*cross=*/true);

  injector.ArmCrashPoint("txnhalt.prepare.0");
  const Status halted = cluster.Rename(src, dst);
  ASSERT_FALSE(halted.ok());
  EXPECT_EQ(halted.code(), StatusCode::kUnavailable);

  // The in-doubt prepare fences plain mutations on src...
  const Status fenced = cluster.Unlink(src);
  ASSERT_FALSE(fenced.ok());
  EXPECT_EQ(fenced.code(), StatusCode::kUnavailable);
  EXPECT_NE(fenced.ToString().find("intent-locked"), std::string::npos);

  // ...until resolution force-aborts it (the coordinator never decided,
  // so kPending resolves to abort), after which src is a plain file again.
  const auto left = cluster.ResolveInDoubt(src_home);
  ASSERT_TRUE(left.ok()) << left.status().ToString();
  EXPECT_EQ(*left, 0u);
  ExpectRenameEndpoint(cluster, src, dst, /*acked=*/false);
  EXPECT_TRUE(cluster.Unlink(src).ok());
}

TEST(TxnTest, HaltAfterDecideIsAckedAndResolutionRollsForward) {
  FaultInjector injector;
  PrototypeCluster cluster(TxnConfig(), ProtoScheme::kGhba);
  cluster.set_fault_injector(&injector);
  ASSERT_TRUE(cluster.Start().ok());

  const std::string src = "/txn/fwdsrc";
  ASSERT_TRUE(cluster.Insert(src, FileMetadata{}).ok());
  const auto src_r = cluster.Lookup(src);
  ASSERT_TRUE(src_r.ok());
  const MdsId src_home = src_r->home;
  const std::string dst = PickDst(cluster, src_home, /*cross=*/true);
  const MdsId dst_home = HashHome(cluster, dst);

  // The commit decision is durable, then the client dies before sending a
  // single commit. Ok was already owed to the caller — "no acked rename
  // lost" must hold purely through resolution.
  injector.ArmCrashPoint("txnhalt.decide.0");
  ASSERT_TRUE(cluster.Rename(src, dst).ok());

  for (const MdsId id : {dst_home, src_home}) {
    const auto left = cluster.ResolveInDoubt(id);
    ASSERT_TRUE(left.ok()) << left.status().ToString();
    EXPECT_EQ(*left, 0u) << "server " << id;
  }
  ExpectRenameEndpoint(cluster, src, dst, /*acked=*/true);
}

// --- server-crash matrix: kill the targeted MDS at every message boundary
// of the choreography, restart it (fail-over + durable recovery + rejoin +
// automatic in-doubt resolution), and audit the endpoint invariant. ------

struct CrashCase {
  const char* tag;     ///< FaultInjector crash point armed before the drive
  bool victim_is_dst;  ///< which home dies (false: src_home == coordinator)
  bool acked;          ///< Rename must return Ok iff the decision preceded
  const char* name;
};

class TxnCrashTest : public ::testing::TestWithParam<CrashCase> {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = info->name();
    std::replace(name.begin(), name.end(), '/', '_');
    dir_ = std::filesystem::temp_directory_path() / ("ghba_txncrash_" + name);
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_P(TxnCrashTest, CrashAtPhaseBoundaryRecoversToExactlyOneEndpoint) {
  const CrashCase& c = GetParam();
  ClusterConfig config = TxnConfig();
  config.storage.data_dir = dir_.string();
  config.storage.fsync = FsyncPolicy::kAlways;

  FaultInjector injector;
  PrototypeCluster cluster(config, ProtoScheme::kGhba);
  cluster.set_fault_injector(&injector);
  ASSERT_TRUE(cluster.Start().ok());
  const auto home_of = BuildNamespace(cluster, 24);

  const std::string src = "/txn/crashsrc";
  FileMetadata md;
  md.inode = 4242;
  ASSERT_TRUE(cluster.Insert(src, md).ok());
  const auto src_r = cluster.Lookup(src);
  ASSERT_TRUE(src_r.ok());
  const MdsId src_home = src_r->home;
  const std::string dst = PickDst(cluster, src_home, /*cross=*/true);
  const MdsId dst_home = HashHome(cluster, dst);
  const MdsId victim = c.victim_is_dst ? dst_home : src_home;

  injector.ArmCrashPoint(c.tag);
  const Status drove = cluster.Rename(src, dst);
  EXPECT_EQ(drove.ok(), c.acked) << drove.ToString();

  // Kill -9 semantics: the armed point was consumed (the victim actually
  // died mid-protocol). Whether the topology already failed it over is
  // timing-dependent and deliberately not asserted.
  EXPECT_FALSE(injector.HasArmedCrashPoints())
      << "the armed crash point never fired";

  // Restart = fail-over + durable recovery + rejoin + in-doubt resolution.
  // Whatever the crash left in doubt must be resolved by the time the
  // restart returns — the caller never babysits recovery.
  const auto info = cluster.RestartServer(victim);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->durable);
  EXPECT_EQ(info->txn_in_doubt, 0u) << "unresolved in-doubt prepares";

  // An acked rename resolved to dst with the original inode; an unacked
  // one left src untouched. Never both names, never neither.
  ExpectRenameEndpoint(cluster, src, dst, c.acked);
  ExpectAllLookupsCorrect(cluster, home_of);

  // The surviving name is a plain file: rename it once more, cleanly.
  const std::string survivor = c.acked ? dst : src;
  ASSERT_TRUE(cluster.Rename(survivor, "/txn/after").ok());
  const auto after = cluster.Lookup("/txn/after");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->found);
}

INSTANTIATE_TEST_SUITE_P(
    AllBoundaries, TxnCrashTest,
    ::testing::Values(
        // Coordinator dies right after journaling Begin: nothing prepared
        // anywhere, the drive fails, src survives.
        CrashCase{"txn.begin.0", false, false, "CoordAfterBegin"},
        // src_home dies after journaling its prepare-remove: the decision
        // can never be journaled, restart resolution force-aborts.
        CrashCase{"txn.prepare.0", false, false, "SrcAfterPrepare"},
        // dst_home dies after journaling its prepare-insert: the decision
        // still commits at the live coordinator — acked, rolled forward
        // into the dead server's recovery.
        CrashCase{"txn.prepare.1", true, true, "DstAfterPrepare"},
        // Coordinator dies with the commit decision durable but no commit
        // sent to itself: acked, self-resolution applies the remove.
        CrashCase{"txn.decide.0", false, true, "CoordAfterDecide"},
        // dst_home dies after applying its commit: acked, recovery replays
        // the journaled commit, nothing left in doubt.
        CrashCase{"txn.commit.0", true, true, "DstAfterCommit"},
        // src_home dies after the final commit: the txn was fully closed.
        CrashCase{"txn.commit.1", false, true, "SrcAfterCommit"}),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ghba
