// Crash-safe replica migration (the PR's tentpole): the three-phase
// handoff must move a replica without ever serving a wrong lookup, and a
// kill -9 at any phase boundary must recover to exactly the pre-flip or
// post-flip placement — phase 2 (the journaled holder-map flip) is the
// commit point. The crash cases run parameterized over every phase so a
// new phase cannot ship without a crash test.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "rpc/prototype_cluster.hpp"

namespace ghba {
namespace {

ClusterConfig MigrationConfig() {
  ClusterConfig c;
  c.num_mds = 6;
  c.max_group_size = 3;
  c.expected_files_per_mds = 500;
  c.lru_capacity = 64;
  c.memory_budget_bytes = 64ULL << 20;
  c.seed = 7;
  c.rpc.connect_timeout_ms = 150;
  c.rpc.attempt_timeout_ms = 150;
  c.rpc.call_budget_ms = 450;
  c.rpc.max_attempts = 3;
  c.rpc.retry_backoff_ms = 2;
  c.rpc.server_io_timeout_ms = 150;
  c.rpc.suspect_after = 3;
  c.rpc.ping_attempts = 3;
  c.rpc.ping_timeout_ms = 100;
  return c;
}

/// The migration actors, derived from the live topology: `member`'s group
/// holds a replica of the outsider `owner` on `from`; `to` is a different
/// member of the same group.
struct Actors {
  MdsId member = 0;
  MdsId owner = kInvalidMds;
  MdsId from = kInvalidMds;
  MdsId to = kInvalidMds;
};

Actors PickActors(PrototypeCluster& cluster) {
  Actors a;
  const auto view = cluster.MembershipOf(a.member);
  EXPECT_TRUE(view.ok());
  const auto alive = cluster.AliveServers();
  for (const MdsId id : alive) {
    if (std::find(view->members.begin(), view->members.end(), id) ==
        view->members.end()) {
      a.owner = id;
      break;
    }
  }
  EXPECT_NE(a.owner, kInvalidMds);
  const auto from = cluster.HolderOf(a.member, a.owner);
  EXPECT_TRUE(from.ok());
  a.from = *from;
  for (const MdsId id : view->members) {
    if (id != a.from) {
      a.to = id;
      break;
    }
  }
  EXPECT_NE(a.to, kInvalidMds);
  return a;
}

/// Every inserted file still resolves to its recorded home: the zero
/// wrong-lookups acceptance bar.
void ExpectAllLookupsCorrect(PrototypeCluster& cluster,
                             const std::map<std::string, MdsId>& home_of) {
  for (const auto& [path, home] : home_of) {
    const auto r = cluster.Lookup(path);
    ASSERT_TRUE(r.ok()) << path << ": " << r.status().ToString();
    EXPECT_TRUE(r->found) << path;
    EXPECT_EQ(r->home, home) << path;
  }
}

std::map<std::string, MdsId> BuildNamespace(PrototypeCluster& cluster,
                                            int files) {
  std::map<std::string, MdsId> home_of;
  for (int i = 0; i < files; ++i) {
    const auto path = "/mig/f" + std::to_string(i);
    FileMetadata md;
    md.inode = static_cast<std::uint64_t>(i);
    EXPECT_TRUE(cluster.Insert(path, md).ok());
  }
  EXPECT_TRUE(cluster.PublishAll().ok());
  for (int i = 0; i < files; ++i) {
    const auto path = "/mig/f" + std::to_string(i);
    const auto r = cluster.Lookup(path);
    EXPECT_TRUE(r.ok());
    if (r.ok()) home_of[path] = r->home;
  }
  return home_of;
}

TEST(MigrationTest, CleanMigrationMovesPlacementAndKeepsLookupsCorrect) {
  PrototypeCluster cluster(MigrationConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  const auto home_of = BuildNamespace(cluster, 24);
  const auto a = PickActors(cluster);
  ASSERT_NE(a.from, a.to);

  const auto holds_before = cluster.HoldsReplica(a.from, a.owner);
  ASSERT_TRUE(holds_before.ok());
  EXPECT_TRUE(*holds_before);
  const std::uint64_t epoch_before = cluster.RoutingEpoch();

  ASSERT_TRUE(cluster.MigrateReplica(a.owner, a.to).ok());

  // Orchestrator routing and server-side truth agree on the new placement.
  const auto holder = cluster.HolderOf(a.member, a.owner);
  ASSERT_TRUE(holder.ok());
  EXPECT_EQ(*holder, a.to);
  const auto holds_to = cluster.HoldsReplica(a.to, a.owner);
  ASSERT_TRUE(holds_to.ok());
  EXPECT_TRUE(*holds_to);
  const auto holds_from = cluster.HoldsReplica(a.from, a.owner);
  ASSERT_TRUE(holds_from.ok());
  EXPECT_FALSE(*holds_from);  // phase 3 retired the old copy

  // The flip pushed a bumped epoch to the group.
  EXPECT_GT(cluster.RoutingEpoch(), epoch_before);
  const auto view = cluster.MembershipOf(a.to);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->epoch, cluster.RoutingEpoch());

  EXPECT_GE(cluster.metrics().replicas_migrated.value(), 1u);
  EXPECT_GT(cluster.metrics().reconfig_messages.value(), 0u);
  ExpectAllLookupsCorrect(cluster, home_of);

  // Migrating onto the current holder is a no-op, not an error.
  EXPECT_TRUE(cluster.MigrateReplica(a.owner, a.to).ok());
}

TEST(MigrationTest, RejectsUnknownActors) {
  PrototypeCluster cluster(MigrationConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  const auto a = PickActors(cluster);
  EXPECT_FALSE(cluster.MigrateReplica(a.owner, /*to=*/99).ok());
  EXPECT_FALSE(cluster.MigrateReplica(/*owner=*/99, a.to).ok());
  // A group member's own filter is not an outsider replica to migrate.
  EXPECT_FALSE(cluster.MigrateReplica(a.to, a.to).ok());
}

class MigrationCrashTest
    : public ::testing::TestWithParam<FaultInjector::MigrationPhase> {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = info->name();
    std::replace(name.begin(), name.end(), '/', '_');
    dir_ = std::filesystem::temp_directory_path() / ("ghba_migcrash_" + name);
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_P(MigrationCrashTest, CrashAtPhaseRecoversToAnEndpointPlacement) {
  const auto phase = GetParam();
  ClusterConfig config = MigrationConfig();
  config.storage.data_dir = dir_.string();
  config.storage.fsync = FsyncPolicy::kAlways;

  FaultInjector injector;
  PrototypeCluster cluster(config, ProtoScheme::kGhba);
  cluster.set_fault_injector(&injector);
  ASSERT_TRUE(cluster.Start().ok());
  const auto home_of = BuildNamespace(cluster, 24);
  const auto a = PickActors(cluster);
  ASSERT_NE(a.from, a.to);

  injector.ArmMigrationCrash(phase);
  const Status failed = cluster.MigrateReplica(a.owner, a.to);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  EXPECT_NE(failed.ToString().find("migration crashed"), std::string::npos);

  // The commit point is the phase-2 flip: a crash before it leaves the
  // pre-migration placement, a crash at or after it the post-migration
  // one. Nothing in between exists to observe.
  const bool committed = phase != FaultInjector::MigrationPhase::kPrepare;
  const MdsId victim = committed ? a.from : a.to;
  const MdsId expected_holder = committed ? a.to : a.from;
  {
    const auto alive = cluster.AliveServers();
    EXPECT_NE(std::count(alive.begin(), alive.end(), victim), 0)
        << "crash must look like a machine failure, not a graceful leave";
    const auto holder = cluster.HolderOf(a.member, a.owner);
    ASSERT_TRUE(holder.ok());
    EXPECT_EQ(*holder, expected_holder);
  }

  // Restart the victim: fail-over + durable recovery + rejoin.
  const auto info = cluster.RestartServer(victim);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->durable);

  // Post-recovery audit: routing and server-side placement agree for every
  // outsider replica of the group, and no lookup is ever wrong.
  const auto view = cluster.MembershipOf(a.member);
  ASSERT_TRUE(view.ok());
  for (const MdsId owner : cluster.AliveServers()) {
    if (std::find(view->members.begin(), view->members.end(), owner) !=
        view->members.end()) {
      continue;
    }
    const auto holder = cluster.HolderOf(a.member, owner);
    ASSERT_TRUE(holder.ok()) << "owner " << owner;
    const auto held = cluster.HoldsReplica(*holder, owner);
    ASSERT_TRUE(held.ok()) << "owner " << owner;
    EXPECT_TRUE(*held) << "owner " << owner << " holder " << *holder;
  }
  ExpectAllLookupsCorrect(cluster, home_of);
}

INSTANTIATE_TEST_SUITE_P(
    AllPhases, MigrationCrashTest,
    ::testing::Values(FaultInjector::MigrationPhase::kPrepare,
                      FaultInjector::MigrationPhase::kFlip,
                      FaultInjector::MigrationPhase::kRetire),
    [](const ::testing::TestParamInfo<FaultInjector::MigrationPhase>& info) {
      switch (info.param) {
        case FaultInjector::MigrationPhase::kPrepare:
          return "Prepare";
        case FaultInjector::MigrationPhase::kFlip:
          return "Flip";
        case FaultInjector::MigrationPhase::kRetire:
          return "Retire";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace ghba
