#include "rpc/fault_injector.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

TEST(FaultInjectorTest, DefaultsDeliverEverything) {
  FaultInjector injector;
  for (int i = 0; i < 100; ++i) {
    const auto plan = injector.PlanFrame();
    EXPECT_EQ(plan.action, FaultInjector::FrameAction::kDeliver);
    EXPECT_EQ(plan.delay.count(), 0);
    EXPECT_FALSE(injector.RefuseConnect());
  }
  const auto c = injector.counters();
  EXPECT_EQ(c.frames, 100u);
  EXPECT_EQ(c.drops + c.delays + c.truncations + c.corruptions +
                c.refused_connects,
            0u);
}

TEST(FaultInjectorTest, SameSeedReplaysSameSchedule) {
  FaultInjector::Options opts;
  opts.drop_prob = 0.1;
  opts.delay_prob = 0.2;
  opts.truncate_prob = 0.1;
  opts.corrupt_prob = 0.1;
  opts.delay_ms_max = 7;
  opts.seed = 1234;
  FaultInjector a(opts);
  FaultInjector b(opts);
  for (int i = 0; i < 500; ++i) {
    const auto pa = a.PlanFrame();
    const auto pb = b.PlanFrame();
    ASSERT_EQ(pa.action, pb.action) << "frame " << i;
    ASSERT_EQ(pa.delay.count(), pb.delay.count()) << "frame " << i;
    ASSERT_EQ(pa.mutation_seed, pb.mutation_seed) << "frame " << i;
  }
}

TEST(FaultInjectorTest, SetOptionsResetsTheDecisionStream) {
  FaultInjector::Options opts;
  opts.drop_prob = 0.3;
  opts.seed = 77;
  FaultInjector injector(opts);
  std::vector<FaultInjector::FrameAction> first;
  for (int i = 0; i < 50; ++i) first.push_back(injector.PlanFrame().action);
  injector.set_options(opts);  // same seed: the schedule starts over
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(injector.PlanFrame().action, first[i]) << i;
  }
}

TEST(FaultInjectorTest, RatesRoughlyHonoured) {
  FaultInjector::Options opts;
  opts.drop_prob = 0.2;
  opts.delay_prob = 0.3;
  opts.refuse_connect_prob = 0.25;
  opts.seed = 9;
  FaultInjector injector(opts);
  for (int i = 0; i < 2000; ++i) {
    (void)injector.PlanFrame();
    (void)injector.RefuseConnect();
  }
  const auto c = injector.counters();
  EXPECT_EQ(c.frames, 2000u);
  // Loose 3-sigma-ish bounds: this is a sanity check, not a chi-square test.
  EXPECT_GT(c.drops, 300u);
  EXPECT_LT(c.drops, 500u);
  EXPECT_GT(c.delays, 450u);
  EXPECT_LT(c.delays, 750u);
  EXPECT_GT(c.refused_connects, 380u);
  EXPECT_LT(c.refused_connects, 620u);
}

TEST(FaultInjectorTest, StallBookkeeping) {
  FaultInjector injector;
  EXPECT_FALSE(injector.IsStalled(3));
  injector.StallServer(3);
  EXPECT_TRUE(injector.IsStalled(3));
  EXPECT_FALSE(injector.IsStalled(4));
  injector.UnstallServer(3);
  EXPECT_FALSE(injector.IsStalled(3));
  injector.UnstallServer(3);  // idempotent
}

TEST(MutatePayloadTest, TruncationKeepsProperNonEmptyPrefix) {
  FaultInjector::FramePlan plan;
  plan.action = FaultInjector::FrameAction::kTruncate;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    plan.mutation_seed = seed;
    std::vector<std::uint8_t> payload(64);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>(i);
    }
    const auto original = payload;
    MutatePayload(plan, payload);
    ASSERT_FALSE(payload.empty());
    ASSERT_LT(payload.size(), original.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(), original.begin()));
  }
}

TEST(MutatePayloadTest, CorruptionKeepsLengthAndChangesBytes) {
  FaultInjector::FramePlan plan;
  plan.action = FaultInjector::FrameAction::kCorrupt;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    plan.mutation_seed = seed;
    std::vector<std::uint8_t> payload(64, 0xab);
    MutatePayload(plan, payload);
    ASSERT_EQ(payload.size(), 64u);
    EXPECT_NE(payload, std::vector<std::uint8_t>(64, 0xab)) << seed;
  }
}

TEST(MutatePayloadTest, DeliverAndDropLeavePayloadAlone) {
  for (const auto action : {FaultInjector::FrameAction::kDeliver,
                            FaultInjector::FrameAction::kDrop}) {
    FaultInjector::FramePlan plan;
    plan.action = action;
    plan.mutation_seed = 42;
    std::vector<std::uint8_t> payload{1, 2, 3};
    MutatePayload(plan, payload);
    EXPECT_EQ(payload, (std::vector<std::uint8_t>{1, 2, 3}));
  }
}

}  // namespace
}  // namespace ghba
