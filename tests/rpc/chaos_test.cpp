// Chaos-style integration test for the RPC prototype (the issue's
// acceptance scenario): a fixed-seed FaultInjector drops/delays/mangles
// >=10% of frames while one server's event loop is stalled outright. Under
// that regime every lookup must either return the correct home or a
// bounded-time transient error, the stalled server must be detected and
// failed over automatically (heart-beat path, no manual KillServer), and
// once the faults clear the surviving namespace must be fully intact.
//
// Fault decisions come from one seeded Rng, so the schedule is fixed for a
// fixed decision order; the assertions are additionally written to hold
// under any server-thread interleaving (bounds and set-membership, not
// exact sequences).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>

#include "rpc/prototype_cluster.hpp"

namespace ghba {
namespace {

ClusterConfig ChaosConfig() {
  ClusterConfig c;
  c.num_mds = 6;
  c.max_group_size = 3;
  c.expected_files_per_mds = 500;
  c.lru_capacity = 64;
  c.memory_budget_bytes = 64ULL << 20;
  c.seed = 2024;
  // Tight budgets: a call into the stalled server must cost well under a
  // second, and the whole faulted phase a few seconds.
  c.rpc.connect_timeout_ms = 150;
  c.rpc.attempt_timeout_ms = 150;
  c.rpc.call_budget_ms = 450;
  c.rpc.max_attempts = 3;
  c.rpc.retry_backoff_ms = 2;
  c.rpc.server_io_timeout_ms = 150;
  // suspect_after 3 + 3 ping probes: a healthy peer that merely loses a
  // few frames to the injector essentially never gets failed over, while
  // the stalled server (which answers nothing, ever) always does.
  c.rpc.suspect_after = 3;
  c.rpc.ping_attempts = 3;
  c.rpc.ping_timeout_ms = 100;
  return c;
}

TEST(ChaosTest, LookupsStayCorrectAndBoundedUnderInjectedFaults) {
  FaultInjector injector;  // all probabilities zero: transparent for setup
  PrototypeCluster cluster(ChaosConfig(), ProtoScheme::kGhba);
  cluster.set_fault_injector(&injector);
  ASSERT_TRUE(cluster.Start().ok());

  // Fault-free phase: build the namespace and record the ground truth.
  constexpr int kFiles = 40;
  const auto path_of = [](int i) { return "/chaos/f" + std::to_string(i); };
  std::map<std::string, MdsId> home_of;
  for (int i = 0; i < kFiles; ++i) {
    FileMetadata md;
    md.inode = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(cluster.Insert(path_of(i), md).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());
  for (int i = 0; i < kFiles; ++i) {
    const auto r = cluster.Lookup(path_of(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->found) << path_of(i);
    home_of[path_of(i)] = r->home;
  }

  // Chaos on: >=10% drops, >=10% delays, some truncation/corruption and
  // refused connects, plus one server stalled outright.
  const MdsId victim = 4;
  FaultInjector::Options faults;
  faults.drop_prob = 0.10;
  faults.delay_prob = 0.10;
  faults.truncate_prob = 0.03;
  faults.corrupt_prob = 0.05;
  faults.refuse_connect_prob = 0.05;
  faults.delay_ms_max = 5;
  faults.seed = 20240807;
  injector.set_options(faults);
  injector.StallServer(victim);

  // Worst case per lookup: ~17 calls x 450ms budget, plus one detection
  // round (3 pings x 100ms) and the fail-over repair traffic. 20s is a
  // generous ceiling that still catches any unbounded blocking.
  const auto kPerLookupBound = std::chrono::milliseconds(20000);
  int served = 0;
  int bounded_errors = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < kFiles; ++i) {
      const std::string path = path_of(i);
      const auto start = std::chrono::steady_clock::now();
      const auto r = cluster.Lookup(path);
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start);
      ASSERT_LT(elapsed, kPerLookupBound) << path;
      if (!r.ok()) {
        // Degraded, not wrong: the only error Lookup surfaces is the
        // bounded "could not reach every peer" verdict.
        EXPECT_EQ(r.status().code(), StatusCode::kUnavailable) << path;
        ++bounded_errors;
        continue;
      }
      if (r->found) {
        // Never a wrong answer, no matter what the injector mangled.
        EXPECT_EQ(r->home, home_of[path]) << path;
        ++served;
      } else {
        // A clean miss is only possible once the stalled server has been
        // failed over and its files are legitimately gone.
        EXPECT_EQ(home_of[path], victim) << path;
      }
    }
  }
  // The faulted cluster still did real work.
  EXPECT_GT(served, kFiles / 2);

  // The stalled server was confirmed dead via kPing heart-beats and failed
  // over automatically — KillServer was never called in this test.
  const auto alive = cluster.AliveServers();
  EXPECT_EQ(std::count(alive.begin(), alive.end(), victim), 0)
      << "stalled server not auto-failed-over (bounded errors seen: "
      << bounded_errors << ")";
  EXPECT_EQ(cluster.health().state(victim), PeerState::kDead);

  // The injector really exercised the frame paths at the advertised rates.
  const auto counters = injector.counters();
  EXPECT_GT(counters.frames, 200u);
  EXPECT_GT(counters.drops, counters.frames / 20);
  EXPECT_GT(counters.delays, counters.frames / 20);
  EXPECT_GT(counters.truncations + counters.corruptions, 0u);

  // Chaos off: every surviving file is served, correctly, first try.
  injector.set_options(FaultInjector::Options{});
  injector.UnstallServer(victim);
  for (const auto& [path, home] : home_of) {
    if (home == victim) continue;  // lost with the crash, by design
    const auto r = cluster.Lookup(path);
    ASSERT_TRUE(r.ok()) << path << ": " << r.status().ToString();
    EXPECT_TRUE(r->found) << path;
    EXPECT_EQ(r->home, home) << path;
  }
  // And the cluster accepts new work after the storm.
  FileMetadata md;
  md.inode = 999;
  ASSERT_TRUE(cluster.Insert("/chaos/after", md).ok());
  ASSERT_TRUE(cluster.PublishAll().ok());
  const auto r = cluster.Lookup("/chaos/after");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
}

// Kill/restart churn while a pipelined client hammers a survivor: the
// surviving server's connection must never break, misorder, or wedge
// while the orchestrator repeatedly kills and recovers a durable peer,
// and every acked insert must still be resolvable afterwards.
TEST(ChaosTest, KillRestartUnderPipelinedLoadLosesNothing) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("ghba-chaos-pipeline-" +
       std::to_string(
           std::chrono::steady_clock::now().time_since_epoch().count()));
  fs::remove_all(dir);

  ClusterConfig config = ChaosConfig();
  config.num_mds = 4;
  config.max_group_size = 2;
  config.storage.data_dir = dir.string();
  config.storage.fsync = FsyncPolicy::kAlways;
  PrototypeCluster cluster(config, ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());

  const int kFiles = 30;
  for (int i = 0; i < kFiles; ++i) {
    FileMetadata md;
    md.inode = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(cluster.Insert("/chaos/pipe/f" + std::to_string(i), md).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());

  // Pipelined load against server 0 (which stays up): windows of
  // alternating kPing / kGetStats frames, all in flight at once. The
  // response types must come back in request order — a misroute or a
  // dropped slot shows up as a type mismatch or a stuck RecvFrame.
  const auto ports = cluster.ServerPorts();
  std::atomic<bool> stop{false};
  std::atomic<int> load_failures{0};
  std::atomic<int> windows_done{0};
  std::thread load([&] {
    auto conn = TcpConnection::Connect(ports[0]);
    if (!conn.ok()) {
      ++load_failures;
      return;
    }
    const auto deadline_ms = std::chrono::milliseconds(5000);
    while (!stop.load(std::memory_order_relaxed)) {
      const int kWindow = 16;
      for (int i = 0; i < kWindow; ++i) {
        const auto req = (i % 2 == 0) ? EncodeHeader(MsgType::kPing)
                                      : EncodeHeader(MsgType::kGetStats);
        if (!conn->SendFrame(req, Deadline::After(deadline_ms)).ok()) {
          ++load_failures;
          return;
        }
      }
      for (int i = 0; i < kWindow; ++i) {
        auto resp = conn->RecvFrame(Deadline::After(deadline_ms));
        if (!resp.ok()) {
          ++load_failures;
          return;
        }
        ByteReader in(*resp);
        auto env = OpenEnvelope(in);
        if (!env.ok()) {
          ++load_failures;
          return;
        }
        // Even slots are pings (bare ack), odd slots stats (payload):
        // response order must mirror request order exactly.
        const bool want_payload = (i % 2 == 1);
        if (env->has_payload != want_payload ||
            (want_payload && !DecodeStatsResp(in).ok())) {
          ++load_failures;
          return;
        }
      }
      ++windows_done;
    }
  });

  // Churn a durable peer underneath the load.
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(cluster.KillServer(1).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const auto info = cluster.RestartServer(1);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_TRUE(info->durable);
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  load.join();
  EXPECT_EQ(load_failures.load(), 0);
  EXPECT_GT(windows_done.load(), 0);

  // Nothing acked was lost across the kill/restart churn.
  for (int i = 0; i < kFiles; ++i) {
    const auto r = cluster.Lookup("/chaos/pipe/f" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
    EXPECT_TRUE(r->found) << i;
  }
  cluster.Stop();
  fs::remove_all(dir);
}

TEST(ChaosTest, FixedSeedGivesReproducibleFaultSchedule) {
  // The cluster-level chaos run above tolerates interleaving; this pins
  // down the determinism claim itself: one decision stream, one seed, one
  // schedule.
  FaultInjector::Options faults;
  faults.drop_prob = 0.10;
  faults.delay_prob = 0.10;
  faults.truncate_prob = 0.03;
  faults.corrupt_prob = 0.05;
  faults.seed = 20240807;
  FaultInjector a(faults);
  FaultInjector b(faults);
  for (int i = 0; i < 1000; ++i) {
    const auto pa = a.PlanFrame();
    const auto pb = b.PlanFrame();
    ASSERT_EQ(pa.action, pb.action) << i;
    ASSERT_EQ(pa.delay.count(), pb.delay.count()) << i;
  }
  const auto ca = a.counters();
  const auto cb = b.counters();
  EXPECT_EQ(ca.drops, cb.drops);
  EXPECT_EQ(ca.delays, cb.delays);
  EXPECT_EQ(ca.truncations, cb.truncations);
  EXPECT_EQ(ca.corruptions, cb.corruptions);
}

}  // namespace
}  // namespace ghba
