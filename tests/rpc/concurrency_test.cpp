// Concurrency stress: many client threads hammering one MdsServer's poll
// loop at once. The server's state is single-threaded by design (one event
// loop); this verifies the loop serializes concurrent connections without
// dropping, corrupting, or interleaving frames.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rpc/server.hpp"

namespace ghba {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig c;
  c.expected_files_per_mds = 10000;
  c.lru_capacity = 256;
  c.seed = 99;
  return c;
}

TEST(ServerConcurrencyTest, ParallelClientsInsertAndVerify) {
  MdsServer server(0, TestConfig());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 100;
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      auto conn = TcpConnection::Connect(server.port());
      if (!conn.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string path =
            "/c" + std::to_string(t) + "/f" + std::to_string(i);
        FileMetadata md;
        md.inode = static_cast<std::uint64_t>(t) * 1000 + i;
        // Insert ...
        if (!conn->SendFrame(EncodeInsert(path, md)).ok()) {
          ++failures;
          return;
        }
        auto resp = conn->RecvFrame();
        if (!resp.ok()) {
          ++failures;
          return;
        }
        ByteReader in(*resp);
        auto env = OpenEnvelope(in);
        if (!env.ok() || !env->status.ok()) {
          ++failures;
          return;
        }
        // ... then verify through the same connection.
        if (!conn->SendFrame(EncodePathRequest(MsgType::kVerify, path)).ok()) {
          ++failures;
          return;
        }
        auto vresp = conn->RecvFrame();
        if (!vresp.ok()) {
          ++failures;
          return;
        }
        ByteReader vin(*vresp);
        auto venv = OpenEnvelope(vin);
        if (!venv.ok() || !venv->has_payload) {
          ++failures;
          return;
        }
        auto found = DecodeBoolResp(vin);
        if (!found.ok() || !*found) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every insert from every thread landed exactly once.
  auto conn = TcpConnection::Connect(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->SendFrame(EncodeHeader(MsgType::kGetStats)).ok());
  auto resp = conn->RecvFrame();
  ASSERT_TRUE(resp.ok());
  ByteReader in(*resp);
  ASSERT_TRUE(OpenEnvelope(in).ok());
  const auto stats = DecodeStatsResp(in);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->files, static_cast<std::uint64_t>(kThreads) * kOpsPerThread);

  server.Stop();
}

// Pipelined multi-frame clients under concurrent load: every thread keeps
// a full window of requests in flight on its own connection and checks
// that the responses come back in request order, while the other threads'
// windows execute on other shards at the same time.
TEST(ServerConcurrencyTest, PipelinedClientsKeepPerConnectionOrder) {
  ClusterConfig config = TestConfig();
  config.rpc.server_shards = 4;
  MdsServer server(0, config);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 6;
  constexpr int kWindows = 12;
  constexpr int kWindow = 16;
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      auto conn = TcpConnection::Connect(server.port());
      if (!conn.ok()) {
        ++failures;
        return;
      }
      for (int w = 0; w < kWindows; ++w) {
        // A window of inserts, fired without reading...
        for (int i = 0; i < kWindow; ++i) {
          const std::string path = "/p" + std::to_string(t) + "/w" +
                                   std::to_string(w) + "/f" +
                                   std::to_string(i);
          FileMetadata md;
          md.inode = static_cast<std::uint64_t>(i);
          if (!conn->SendFrame(EncodeInsert(path, md)).ok()) {
            ++failures;
            return;
          }
        }
        // ...then a window of same-path verifies...
        for (int i = 0; i < kWindow; ++i) {
          const std::string path = "/p" + std::to_string(t) + "/w" +
                                   std::to_string(w) + "/f" +
                                   std::to_string(i);
          if (!conn->SendFrame(
                       EncodePathRequest(MsgType::kVerify, path))
                   .ok()) {
            ++failures;
            return;
          }
        }
        // ...then 2*kWindow responses: insert acks first, in order, then
        // the verifies, every one finding its file.
        for (int i = 0; i < kWindow; ++i) {
          auto resp = conn->RecvFrame();
          if (!resp.ok()) {
            ++failures;
            return;
          }
          ByteReader in(*resp);
          auto env = OpenEnvelope(in);
          if (!env.ok() || env->has_payload || !env->status.ok()) {
            ++failures;
            return;
          }
        }
        for (int i = 0; i < kWindow; ++i) {
          auto resp = conn->RecvFrame();
          if (!resp.ok()) {
            ++failures;
            return;
          }
          ByteReader in(*resp);
          auto env = OpenEnvelope(in);
          if (!env.ok() || !env->has_payload) {
            ++failures;
            return;
          }
          auto found = DecodeBoolResp(in);
          if (!found.ok() || !*found) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

TEST(ServerConcurrencyTest, ConnectionChurnSurvives) {
  MdsServer server(0, TestConfig());
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        // Fresh connection per request; some close without reading.
        auto conn = TcpConnection::Connect(server.port());
        if (!conn.ok()) {
          ++failures;
          return;
        }
        if (!conn->SendFrame(EncodeHeader(MsgType::kPing)).ok()) {
          ++failures;
          return;
        }
        if (i % 3 == 0) continue;  // abandon the connection mid-exchange
        auto resp = conn->RecvFrame();
        if (!resp.ok()) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The server is still healthy.
  auto conn = TcpConnection::Connect(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->SendFrame(EncodeHeader(MsgType::kPing)).ok());
  EXPECT_TRUE(conn->RecvFrame().ok());
  server.Stop();
}

}  // namespace
}  // namespace ghba
