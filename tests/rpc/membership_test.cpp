// Cluster-view plumbing for online reconfiguration: routing epochs are
// strictly increasing and pushed to every live server on each topology
// change; stale pushes are rejected server-side; a recycled MdsId starts
// with clean health/version state (the RemoveServer/KillServer regression);
// durable servers journal the view and rejoin with it; and membership
// churn under live lookups never serves a wrong answer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "rpc/prototype_cluster.hpp"

namespace ghba {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig c;
  c.num_mds = 6;
  c.max_group_size = 3;
  c.expected_files_per_mds = 500;
  c.lru_capacity = 64;
  c.memory_budget_bytes = 64ULL << 20;
  c.seed = 11;
  c.rpc.connect_timeout_ms = 150;
  c.rpc.attempt_timeout_ms = 150;
  c.rpc.call_budget_ms = 450;
  c.rpc.max_attempts = 3;
  c.rpc.retry_backoff_ms = 2;
  c.rpc.server_io_timeout_ms = 150;
  c.rpc.suspect_after = 3;
  c.rpc.ping_attempts = 3;
  c.rpc.ping_timeout_ms = 100;
  return c;
}

TEST(MembershipTest, StartPushesAnInitialViewToEveryServer) {
  PrototypeCluster cluster(SmallConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  const std::uint64_t epoch = cluster.RoutingEpoch();
  EXPECT_GE(epoch, 1u);
  for (const MdsId id : cluster.AliveServers()) {
    const auto view = cluster.MembershipOf(id);
    ASSERT_TRUE(view.ok()) << id;
    EXPECT_EQ(view->epoch, epoch) << id;
    EXPECT_NE(std::find(view->members.begin(), view->members.end(), id),
              view->members.end())
        << "server " << id << " missing from its own view";
  }
}

TEST(MembershipTest, TopologyChangesBumpTheEpoch) {
  PrototypeCluster cluster(SmallConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  std::uint64_t last = cluster.RoutingEpoch();

  const auto added = cluster.AddServer();
  ASSERT_TRUE(added.ok());
  EXPECT_GT(added->messages, 0u);
  EXPECT_GT(cluster.RoutingEpoch(), last);
  last = cluster.RoutingEpoch();

  ASSERT_TRUE(cluster.RemoveServer(added->id).ok());
  EXPECT_GT(cluster.RoutingEpoch(), last);
  last = cluster.RoutingEpoch();

  ASSERT_TRUE(cluster.SplitLargestGroup().ok());
  EXPECT_GT(cluster.RoutingEpoch(), last);
  EXPECT_GT(cluster.metrics().reconfig_messages.value(), 0u);
}

TEST(MembershipTest, ServersRejectStaleOrMalformedUpdates) {
  PrototypeCluster cluster(SmallConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  const auto ports = cluster.ServerPorts();
  auto conn = TcpConnection::Connect(ports[0]);
  ASSERT_TRUE(conn.ok());
  const auto deadline = [] {
    return Deadline::After(std::chrono::milliseconds(2000));
  };
  const auto exchange = [&](const MembershipUpdate& update) {
    EXPECT_TRUE(
        conn->SendFrame(EncodeMembershipUpdate(update), deadline()).ok());
    auto resp = conn->RecvFrame(deadline());
    EXPECT_TRUE(resp.ok());
    ByteReader in(*resp);
    auto env = OpenEnvelope(in);
    EXPECT_TRUE(env.ok());
    EXPECT_FALSE(env->has_payload);
    return env->status;
  };

  const auto view = cluster.MembershipOf(0);
  ASSERT_TRUE(view.ok());

  // Replaying the server's current epoch must not be adopted again.
  MembershipUpdate stale;
  stale.epoch = view->epoch;
  stale.reason = ReconfigReason::kJoin;
  stale.members = {0};
  EXPECT_EQ(exchange(stale).code(), StatusCode::kInvalidArgument);

  // Epoch 0 is the unset sentinel; the codec rejects it outright.
  MembershipUpdate zero;
  zero.epoch = 0;
  zero.members = {0};
  EXPECT_EQ(exchange(zero).code(), StatusCode::kCorruption);

  // A genuinely newer view is adopted and visible via kGetMembership.
  MembershipUpdate fresh;
  fresh.epoch = view->epoch + 1;
  fresh.reason = ReconfigReason::kMigrate;
  fresh.members = {0, 1};
  EXPECT_TRUE(exchange(fresh).ok());
  const auto after = cluster.MembershipOf(0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->epoch, view->epoch + 1);
  EXPECT_EQ(after->members, (std::vector<MdsId>{0, 1}));
}

TEST(MembershipTest, RecycledIdStartsWithCleanHealthState) {
  PrototypeCluster cluster(SmallConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());

  // Crash-style death: the victim's kDead verdict survives fail-over (it
  // documents why the files vanished)...
  const MdsId victim = 1;
  ASSERT_TRUE(cluster.KillServer(victim).ok());
  EXPECT_EQ(cluster.health().state(victim), PeerState::kDead);

  // ...but the next AddServer recycles the freed slot and must not inherit
  // the corpse's verdict, cached connection, or protocol version.
  const auto added = cluster.AddServer();
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(added->id, victim) << "lowest free id is recycled";
  EXPECT_EQ(cluster.health().state(victim), PeerState::kHealthy);
  const auto version = cluster.ProtocolVersionOf(victim);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, kProtocolVersion);

  // The recycled server serves traffic immediately.
  FileMetadata md;
  md.inode = 77;
  ASSERT_TRUE(cluster.Insert("/recycled/probe", md).ok());
  ASSERT_TRUE(cluster.PublishAll().ok());
  const auto r = cluster.Lookup("/recycled/probe");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);

  // Graceful leave clears the verdict immediately: RemoveServer is an
  // administrative action, not a failure.
  ASSERT_TRUE(cluster.RemoveServer(victim).ok());
  EXPECT_EQ(cluster.health().state(victim), PeerState::kHealthy);
}

TEST(MembershipTest, DurableServersRejoinAndRestartWithTheJournaledView) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ghba_membership_durable";
  fs::remove_all(dir);
  ClusterConfig config = SmallConfig();
  config.num_mds = 4;
  config.max_group_size = 2;
  config.storage.data_dir = dir.string();
  config.storage.fsync = FsyncPolicy::kAlways;

  std::uint64_t epoch_before = 0;
  {
    PrototypeCluster cluster(config, ProtoScheme::kGhba);
    ASSERT_TRUE(cluster.Start().ok());
    ASSERT_TRUE(cluster.AddServer().ok());  // raise the epoch

    // A killed durable server journaled the view it last acked; restart
    // recovers it and the orchestrator folds it into its own epoch line.
    ASSERT_TRUE(cluster.KillServer(1).ok());
    const auto info = cluster.RestartServer(1);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_TRUE(info->durable);
    EXPECT_GT(info->epoch, 0u);
    EXPECT_LE(info->epoch, cluster.RoutingEpoch());

    // After rejoin the server is back on the current epoch.
    const auto view = cluster.MembershipOf(1);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view->epoch, cluster.RoutingEpoch());
    epoch_before = cluster.RoutingEpoch();
    cluster.Stop();
  }

  // A whole new orchestrator incarnation over the same data dir must come
  // up *past* the recovered epochs — its first push would otherwise be
  // rejected as stale by every surviving server.
  {
    PrototypeCluster cluster(config, ProtoScheme::kGhba);
    ASSERT_TRUE(cluster.Start().ok());
    EXPECT_GT(cluster.RoutingEpoch(), epoch_before);
    for (const MdsId id : cluster.AliveServers()) {
      const auto view = cluster.MembershipOf(id);
      ASSERT_TRUE(view.ok()) << id;
      EXPECT_EQ(view->epoch, cluster.RoutingEpoch()) << id;
    }
    cluster.Stop();
  }
  fs::remove_all(dir);
}

TEST(MembershipTest, AdaptivityTickSamplesAndActsOnTheLiveCluster) {
  PrototypeCluster cluster(SmallConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  FileMetadata md;
  md.inode = 1;
  ASSERT_TRUE(cluster.Insert("/adapt/f", md).ok());
  ASSERT_TRUE(cluster.PublishAll().ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster.Lookup("/adapt/f").ok());  // warm the counters
  }

  {
    AdaptivityController disabled{AdaptivityOptions{}};
    const auto decision = cluster.AdaptivityTick(disabled);
    ASSERT_TRUE(decision.ok());
    EXPECT_EQ(decision->action, AdaptiveAction::kNone);
    EXPECT_EQ(cluster.NumServers(), 6u);
  }
  {
    AdaptivityOptions options;
    options.enabled = true;
    options.min_lookup_samples = 1u << 30;  // cold-counter gate holds
    AdaptivityController gated{options};
    const auto decision = cluster.AdaptivityTick(gated);
    ASSERT_TRUE(decision.ok());
    EXPECT_EQ(decision->action, AdaptiveAction::kNone);
    EXPECT_EQ(decision->reason, "too few lookup samples");
  }
  {
    // A barely-loaded six-server cluster is reconfigurable: the controller
    // either shrinks it (underload) or tightens groups toward the measured
    // optimum — and the tick must have *applied* whichever it chose.
    AdaptivityOptions options;
    options.enabled = true;
    options.min_lookup_samples = 1;
    options.min_servers = 2;
    AdaptivityController controller{options};
    const std::size_t alive_before = cluster.AliveServers().size();
    const std::size_t groups_before = cluster.NumGroups();
    const auto decision = cluster.AdaptivityTick(controller);
    ASSERT_TRUE(decision.ok());
    EXPECT_NE(decision->action, AdaptiveAction::kNone) << decision->reason;
    EXPECT_TRUE(cluster.AliveServers().size() != alive_before ||
                cluster.NumGroups() != groups_before)
        << decision->reason;
    // Lookups stay correct across the applied reconfiguration.
    const auto r = cluster.Lookup("/adapt/f");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->found);
  }
}

// The acceptance scenario: MDSs join and leave every few churn rounds
// while a client thread keeps firing lookups. Graceful leaves drain files
// to survivors, so every lookup must come back found — a not-found (or a
// transport error other than the bounded kUnavailable verdict) is a wrong
// answer and fails the test.
TEST(MembershipTest, ChurnUnderLiveLookupsServesEveryFile) {
  PrototypeCluster cluster(SmallConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());

  const int kFiles = 30;
  const auto path_of = [](int i) { return "/churn/f" + std::to_string(i); };
  for (int i = 0; i < kFiles; ++i) {
    FileMetadata md;
    md.inode = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(cluster.Insert(path_of(i), md).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::atomic<int> transient{0};
  std::atomic<int> lookups{0};
  std::thread load([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto r = cluster.Lookup(path_of(i % kFiles));
      ++i;
      ++lookups;
      if (!r.ok()) {
        // Bounded degradation is legal under churn; anything else is not.
        if (r.status().code() != StatusCode::kUnavailable) ++wrong;
        ++transient;
        continue;
      }
      if (!r->found) ++wrong;
    }
  });

  // Membership churn: every round one server leaves gracefully (files
  // drain) and one joins, while the load thread keeps interleaving.
  for (int round = 0; round < 3; ++round) {
    const auto alive = cluster.AliveServers();
    ASSERT_GT(alive.size(), 1u);
    ASSERT_TRUE(cluster.RemoveServer(alive.back()).ok()) << round;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(cluster.AddServer().ok()) << round;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  stop.store(true, std::memory_order_relaxed);
  load.join();

  EXPECT_EQ(wrong.load(), 0) << "wrong lookups under membership churn";
  EXPECT_GT(lookups.load(), 0);
  EXPECT_GT(cluster.metrics().reconfig_messages.value(), 0u);
  EXPECT_GT(cluster.RoutingEpoch(), 1u);

  // Steady state after the storm: everything is served first try.
  for (int i = 0; i < kFiles; ++i) {
    const auto r = cluster.Lookup(path_of(i));
    ASSERT_TRUE(r.ok()) << path_of(i) << ": " << r.status().ToString();
    EXPECT_TRUE(r->found) << path_of(i);
  }
}

}  // namespace
}  // namespace ghba
