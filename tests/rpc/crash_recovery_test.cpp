// Crash/restart tests for the durable prototype: a kill -9 equivalent on
// one MdsServer followed by RestartServer on the same data dir must bring
// back every acknowledged insert (zero acked-but-lost) and the exact same
// local Bloom filter bits, with the recovery accounted in the kRecoveryInfo
// handshake and the storage.* metrics.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "rpc/prototype_cluster.hpp"

namespace ghba {
namespace {

FileMetadata Md(std::uint64_t inode = 1) {
  FileMetadata md;
  md.inode = inode;
  return md;
}

class CrashRecoveryTest : public ::testing::TestWithParam<ProtoScheme> {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    data_dir_ = ::testing::TempDir() + "/ghba_crash_" + info->name();
    std::filesystem::remove_all(data_dir_);
    std::filesystem::create_directories(data_dir_);
  }
  void TearDown() override { std::filesystem::remove_all(data_dir_); }

  ClusterConfig DurableConfig(std::uint32_t n = 4, std::uint32_t m = 2) {
    ClusterConfig c;
    c.num_mds = n;
    c.max_group_size = m;
    c.expected_files_per_mds = 500;
    c.lru_capacity = 64;
    c.memory_budget_bytes = 64ULL << 20;
    c.seed = 77;
    c.storage.data_dir = data_dir_;
    c.storage.fsync = FsyncPolicy::kAlways;
    return c;
  }

  std::string data_dir_;
};

TEST_P(CrashRecoveryTest, KillRestartLosesNoAckedInsert) {
  PrototypeCluster cluster(DurableConfig(), GetParam());
  ASSERT_TRUE(cluster.Start().ok());
  // Every Insert below was acked, so every one must survive the crash.
  std::vector<std::string> paths;
  for (int i = 0; i < 40; ++i) {
    paths.push_back("/crash/f" + std::to_string(i));
    ASSERT_TRUE(cluster.Insert(paths.back(), Md(i)).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());

  const MdsId victim = 1;
  const auto filter_before = cluster.FilterOf(victim);
  ASSERT_TRUE(filter_before.ok());

  ASSERT_TRUE(cluster.KillServer(victim).ok());
  const auto info = cluster.RestartServer(victim);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->durable);
  EXPECT_GT(info->files, 0u);
  EXPECT_GT(info->replay_records, 0u);
  EXPECT_TRUE(info->filter_matched);

  // The recovered filter is bit-identical to the pre-crash one: replay
  // reconstructed exactly the acknowledged mutation sequence.
  const auto filter_after = cluster.FilterOf(victim);
  ASSERT_TRUE(filter_after.ok());
  EXPECT_TRUE(*filter_after == *filter_before);

  for (const auto& path : paths) {
    const auto r = cluster.Lookup(path);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->found) << path;
  }
}

TEST_P(CrashRecoveryTest, UndetectedCrashRestartRecovers) {
  PrototypeCluster cluster(DurableConfig(), GetParam());
  ASSERT_TRUE(cluster.Start().ok());
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(cluster.Insert("/u/f" + std::to_string(i), Md(i)).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());

  // Machine failure: the orchestrator still believes the server is alive.
  const MdsId victim = 2;
  ASSERT_TRUE(cluster.CrashServer(victim).ok());
  const auto info = cluster.RestartServer(victim);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->durable);

  for (int i = 0; i < 24; ++i) {
    const auto r = cluster.Lookup("/u/f" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->found) << i;
  }
}

TEST_P(CrashRecoveryTest, RecoveryMetricsAreExported) {
  PrototypeCluster cluster(DurableConfig(), GetParam());
  ASSERT_TRUE(cluster.Start().ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(cluster.Insert("/m/f" + std::to_string(i), Md(i)).ok());
  }
  const MdsId victim = 0;
  ASSERT_TRUE(cluster.KillServer(victim).ok());
  const auto info = cluster.RestartServer(victim);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  const auto stats = cluster.FetchStats(victim);
  ASSERT_TRUE(stats.ok());
  const auto& counters = stats->metrics.counters;
  const auto replayed = counters.find(metrics_names::kStorageRecoveryReplayRecords);
  ASSERT_NE(replayed, counters.end());
  EXPECT_EQ(replayed->second, info->replay_records);

  // WAL activity gauges are per-incarnation; the restarted server has not
  // appended yet, so read them off the surviving servers.
  std::uint64_t appends = 0;
  std::uint64_t fsyncs = 0;
  for (const MdsId id : cluster.AliveServers()) {
    if (id == victim) continue;
    const auto peer = cluster.FetchStats(id);
    ASSERT_TRUE(peer.ok());
    const auto& c = peer->metrics.counters;
    const auto it = c.find(metrics_names::kStorageWalAppends);
    if (it != c.end()) appends += it->second;
    const auto fs = c.find(metrics_names::kStorageWalFsyncs);
    if (fs != c.end()) fsyncs += fs->second;
  }
  EXPECT_GT(appends, 0u);
  EXPECT_GT(fsyncs, 0u);
}

TEST_P(CrashRecoveryTest, RestartAfterCheckpointReplaysOnlyTail) {
  auto config = DurableConfig();
  config.storage.checkpoint_wal_bytes = 4096;  // checkpoint early and often
  PrototypeCluster cluster(config, GetParam());
  ASSERT_TRUE(cluster.Start().ok());
  // Enough inserts that every server's WAL crosses the threshold at least
  // once (~70 bytes per record, ~100 records per server).
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(cluster.Insert("/ck/f" + std::to_string(i), Md(i)).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());

  const MdsId victim = 1;
  ASSERT_TRUE(cluster.KillServer(victim).ok());
  const auto info = cluster.RestartServer(victim);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->durable);
  EXPECT_GT(info->files, 0u);
  // The checkpoint covered most records; replay handled at most the tail.
  EXPECT_LT(info->replay_records, info->files);

  for (int i = 0; i < 400; ++i) {
    const auto r = cluster.Lookup("/ck/f" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->found) << i;
  }
}

TEST_P(CrashRecoveryTest, NonDurableRestartReportsAndLoses) {
  ClusterConfig config = DurableConfig();
  config.storage.data_dir.clear();  // durability off: the pre-PR behaviour
  PrototypeCluster cluster(config, GetParam());
  ASSERT_TRUE(cluster.Start().ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(cluster.Insert("/v/f" + std::to_string(i), Md(i)).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());

  const MdsId victim = 1;
  ASSERT_TRUE(cluster.KillServer(victim).ok());
  const auto info = cluster.RestartServer(victim);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // The handshake is honest: nothing was durable, nothing came back.
  EXPECT_FALSE(info->durable);
  EXPECT_EQ(info->files, 0u);

  // Files homed on the victim are gone; the others still resolve.
  int found = 0;
  for (int i = 0; i < 12; ++i) {
    const auto r = cluster.Lookup("/v/f" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    if (r->found) ++found;
  }
  EXPECT_LT(found, 12);
}

TEST_P(CrashRecoveryTest, RestartOfRunningServerRejected) {
  PrototypeCluster cluster(DurableConfig(), GetParam());
  ASSERT_TRUE(cluster.Start().ok());
  const auto info = cluster.RestartServer(1);
  EXPECT_EQ(info.status().code(), StatusCode::kAlreadyExists);
}

INSTANTIATE_TEST_SUITE_P(Schemes, CrashRecoveryTest,
                         ::testing::Values(ProtoScheme::kGhba,
                                           ProtoScheme::kHba),
                         [](const auto& info) {
                           return info.param == ProtoScheme::kGhba ? "Ghba"
                                                                   : "Hba";
                         });

}  // namespace
}  // namespace ghba
