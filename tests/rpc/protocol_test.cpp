#include "rpc/protocol.hpp"

#include "bloom/compressed.hpp"
#include "bloom/counting_bloom_filter.hpp"

#include <gtest/gtest.h>

namespace ghba {
namespace {

TEST(ProtocolTest, PathRequestRoundTrip) {
  const auto frame = EncodePathRequest(MsgType::kVerify, "/a/b/c");
  ByteReader in(frame);
  const auto type = DecodeType(in);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, MsgType::kVerify);
  EXPECT_EQ(*in.GetString(), "/a/b/c");
}

TEST(ProtocolTest, UnknownTypeRejected) {
  ByteWriter w;
  w.PutU16(999);
  ByteReader in(w.data());
  EXPECT_FALSE(DecodeType(in).ok());
}

TEST(ProtocolTest, StatusRespRoundTrip) {
  const auto frame = EncodeStatusResp(Status::NotFound("gone"));
  ByteReader in(frame);
  const auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  EXPECT_FALSE(env->has_payload);
  EXPECT_EQ(env->status.code(), StatusCode::kNotFound);
  EXPECT_EQ(env->status.message(), "gone");
}

TEST(ProtocolTest, OkStatusRoundTrip) {
  const auto frame = EncodeStatusResp(Status::Ok());
  ByteReader in(frame);
  const auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  EXPECT_FALSE(env->has_payload);
  EXPECT_TRUE(env->status.ok());
}

TEST(ProtocolTest, BoolRespRoundTrip) {
  for (const bool value : {true, false}) {
    const auto frame = EncodeBoolResp(value);
    ByteReader in(frame);
    const auto env = OpenEnvelope(in);
    ASSERT_TRUE(env.ok());
    ASSERT_TRUE(env->has_payload);
    const auto decoded = DecodeBoolResp(in);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, value);
  }
}

TEST(ProtocolTest, LocalLookupRespRoundTrip) {
  LocalLookupResp resp;
  resp.lru_unique = true;
  resp.lru_home = 7;
  resp.hits = {1, 5, 9};
  const auto frame = EncodeLocalLookupResp(resp);
  ByteReader in(frame);
  const auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  ASSERT_TRUE(env->has_payload);
  const auto decoded = DecodeLocalLookupResp(in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->lru_unique);
  EXPECT_EQ(decoded->lru_home, 7u);
  EXPECT_EQ(decoded->hits, (std::vector<MdsId>{1, 5, 9}));
}

TEST(ProtocolTest, InsertCarriesMetadata) {
  FileMetadata md;
  md.inode = 99;
  md.data_servers = {1, 2};
  const auto frame = EncodeInsert("/x", md);
  ByteReader in(frame);
  ASSERT_EQ(*DecodeType(in), MsgType::kInsert);
  EXPECT_EQ(*in.GetString(), "/x");
  const auto decoded = FileMetadata::Deserialize(in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, md);
}

TEST(ProtocolTest, ReplicaInstallCarriesFilter) {
  auto bf = BloomFilter::ForCapacity(100, 8.0, 5);
  bf.Add("/file");
  const auto frame = EncodeReplicaInstall(3, bf);
  ByteReader in(frame);
  ASSERT_EQ(*DecodeType(in), MsgType::kReplicaInstall);
  EXPECT_EQ(*in.GetU32(), 3u);
  const auto decoded = DecompressFilter(in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->MayContain("/file"));
}

TEST(ProtocolTest, StatsRespRoundTrip) {
  StatsResp stats;
  stats.frames_in = 10;
  stats.frames_out = 20;
  stats.files = 30;
  stats.replicas = 40;
  const auto frame = EncodeStatsResp(stats);
  ByteReader in(frame);
  const auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  ASSERT_TRUE(env->has_payload);
  const auto decoded = DecodeStatsResp(in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->frames_in, 10u);
  EXPECT_EQ(decoded->replicas, 40u);
}

TEST(ProtocolTest, LeaseGrantRespRoundTrip) {
  LeaseGrantResp resp;
  resp.granted = true;
  resp.ttl_ms = 2000;
  resp.home = 5;
  const auto frame = EncodeLeaseGrantResp(resp);
  ByteReader in(frame);
  const auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  ASSERT_TRUE(env->has_payload);
  const auto decoded = DecodeLeaseGrantResp(in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, resp);
}

TEST(ProtocolTest, LeaseRefusalRoundTrip) {
  // granted=false, ttl 0: "not here" — a cache miss, never a negative.
  const auto frame = EncodeLeaseGrantResp(LeaseGrantResp{});
  ByteReader in(frame);
  ASSERT_TRUE(OpenEnvelope(in).ok());
  const auto decoded = DecodeLeaseGrantResp(in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->granted);
  EXPECT_EQ(decoded->ttl_ms, 0u);
}

TEST(ProtocolTest, V4PathRequestsDecode) {
  for (const MsgType type : {MsgType::kLeaseGrant, MsgType::kInvalidate}) {
    const auto frame = EncodePathRequest(type, "/v4/p");
    ByteReader in(frame);
    const auto decoded = DecodeType(in);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, type);
    EXPECT_EQ(*in.GetString(), "/v4/p");
  }
}

TEST(ProtocolTest, RetryAfterStatusRoundTrips) {
  const auto frame = EncodeStatusResp(Status::RetryAfter("hot shard"));
  ByteReader in(frame);
  const auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  EXPECT_FALSE(env->has_payload);
  EXPECT_EQ(env->status.code(), StatusCode::kRetryAfter);
  EXPECT_EQ(env->status.message(), "hot shard");
}

TEST(ProtocolTest, TruncatedEnvelopeRejected) {
  ByteReader in(std::span<const std::uint8_t>{});
  EXPECT_FALSE(OpenEnvelope(in).ok());
}

TEST(ProtocolTest, BadEnvelopeByteRejected) {
  const std::uint8_t bad[] = {7};
  ByteReader in(bad);
  EXPECT_FALSE(OpenEnvelope(in).ok());
}

// --- malformed-frame hardening: every decoder must answer kCorruption,
// never mis-parse or read out of bounds, when fed mangled bytes ---

TEST(ProtocolHardeningTest, TimedOutStatusRoundTrips) {
  const auto frame = EncodeStatusResp(Status::TimedOut("deadline"));
  ByteReader in(frame);
  const auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  EXPECT_FALSE(env->has_payload);
  EXPECT_EQ(env->status.code(), StatusCode::kTimedOut);
  EXPECT_EQ(env->status.message(), "deadline");
}

TEST(ProtocolHardeningTest, OutOfRangeStatusCodeRejected) {
  ByteWriter w;
  w.PutU8(0);    // envelope: status follows
  w.PutU8(200);  // no such StatusCode
  w.PutString("");
  ByteReader in(w.data());
  const auto env = OpenEnvelope(in);
  ASSERT_FALSE(env.ok());
  EXPECT_EQ(env.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolHardeningTest, BadBoolByteRejected) {
  ByteWriter w;
  w.PutU8(1);  // envelope: payload
  w.PutU8(7);  // neither 0 nor 1: a flipped bit, not a truthy value
  ByteReader in(w.data());
  ASSERT_TRUE(OpenEnvelope(in).ok());
  const auto decoded = DecodeBoolResp(in);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolHardeningTest, LyingHitCountRejected) {
  // The count field claims far more hits than the frame has bytes for.
  ByteWriter w;
  w.PutU8(1);         // envelope
  w.PutU8(0);         // lru_unique
  w.PutU32(0);        // lru_home
  w.PutVarint(1000);  // claimed hits, no bytes behind them
  ByteReader in(w.data());
  ASSERT_TRUE(OpenEnvelope(in).ok());
  const auto decoded = DecodeLocalLookupResp(in);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolHardeningTest, LyingFileCountRejected) {
  ByteWriter w;
  w.PutU8(1);  // envelope
  w.PutVarint(1ULL << 40);
  ByteReader in(w.data());
  ASSERT_TRUE(OpenEnvelope(in).ok());
  const auto decoded = DecodeFileListResp(in);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolHardeningTest, EveryTruncationOfLocalLookupRejected) {
  LocalLookupResp resp;
  resp.lru_unique = true;
  resp.lru_home = 3;
  resp.hits = {1, 2, 3};
  const auto full = EncodeLocalLookupResp(resp);
  // Every proper prefix must fail cleanly: either the envelope itself is
  // short, or the body decoder reports the truncation.
  for (std::size_t len = 0; len < full.size(); ++len) {
    ByteReader in(std::span<const std::uint8_t>(full.data(), len));
    const auto env = OpenEnvelope(in);
    if (!env.ok()) continue;
    EXPECT_FALSE(DecodeLocalLookupResp(in).ok()) << "prefix length " << len;
  }
}

TEST(ProtocolHardeningTest, EveryTruncationOfStatsRejected) {
  StatsResp stats;
  stats.frames_in = 10;
  stats.frames_out = 20;
  stats.files = 30;
  stats.replicas = 40;
  const auto full = EncodeStatsResp(stats);
  for (std::size_t len = 0; len < full.size(); ++len) {
    ByteReader in(std::span<const std::uint8_t>(full.data(), len));
    const auto env = OpenEnvelope(in);
    if (!env.ok()) continue;
    EXPECT_FALSE(DecodeStatsResp(in).ok()) << "prefix length " << len;
  }
}

TEST(ProtocolHardeningTest, EveryTruncationOfLeaseGrantRejected) {
  LeaseGrantResp resp;
  resp.granted = true;
  resp.ttl_ms = 1234;
  resp.home = 9;
  const auto full = EncodeLeaseGrantResp(resp);
  for (std::size_t len = 0; len < full.size(); ++len) {
    ByteReader in(std::span<const std::uint8_t>(full.data(), len));
    const auto env = OpenEnvelope(in);
    if (!env.ok()) continue;
    EXPECT_FALSE(DecodeLeaseGrantResp(in).ok()) << "prefix length " << len;
  }
}

// --- regression tests distilled from the fuzz corpus (fuzz/) ---
// Each reproduces a frame shape the mutation loop generates constantly:
// length prefixes promising more than the payload holds, and geometry
// fields big enough that decoding must fail *before* allocating.

TEST(ProtocolFuzzRegressionTest, GiantBitVectorPrefixFailsBeforeAllocating) {
  // Raw-mode compressed filter whose bit count claims 2^33 bits (1 GiB)
  // backed by zero payload bytes. Must be rejected by the remaining-bytes
  // check, not by attempting the allocation.
  ByteWriter w;
  w.PutU8(0);  // compression mode: raw
  w.PutU32(4);
  w.PutU64(0);
  w.PutU64(0);
  w.PutVarint(1ULL << 33);  // num_bits with no words behind it
  ByteReader in(w.data());
  const auto filter = DecompressFilter(in);
  ASSERT_FALSE(filter.ok());
  EXPECT_EQ(filter.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolFuzzRegressionTest, OverCapBitVectorPrefixRejected) {
  ByteWriter w;
  w.PutU8(0);
  w.PutU32(4);
  w.PutU64(0);
  w.PutU64(0);
  w.PutVarint((1ULL << 33) + 64);  // just past the wire geometry cap
  for (int i = 0; i < 1024; ++i) w.PutU64(0);
  ByteReader in(w.data());
  EXPECT_FALSE(DecompressFilter(in).ok());
}

TEST(ProtocolFuzzRegressionTest, GapModePopcountBombRejected) {
  // Gap mode claiming a billion set bits in a ~20-byte frame: every gap
  // costs at least one wire byte, so the popcount check fires first.
  ByteWriter w;
  w.PutU8(1);  // compression mode: gap
  w.PutU32(4);
  w.PutU64(7);
  w.PutU64(1);
  w.PutVarint(1ULL << 32);  // num_bits (within cap)
  w.PutVarint(1ULL << 30);  // popcount far beyond the payload
  w.PutVarint(1);           // a single actual gap
  ByteReader in(w.data());
  const auto filter = DecompressFilter(in);
  ASSERT_FALSE(filter.ok());
  EXPECT_EQ(filter.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolFuzzRegressionTest, ReplicaInstallTruncatedAtEveryByteRejected) {
  // The full request-parse arm for kReplicaInstall: every strict prefix of
  // a valid frame must park in a Status, never crash or succeed.
  auto bf = BloomFilter::ForCapacity(256, 8.0, 3);
  for (int i = 0; i < 256; ++i) bf.Add("f" + std::to_string(i));
  const auto full = EncodeReplicaInstall(9, bf);
  for (std::size_t len = 0; len < full.size(); ++len) {
    ByteReader in(std::span<const std::uint8_t>(full.data(), len));
    const auto type = DecodeType(in);
    if (!type.ok()) continue;
    ASSERT_EQ(*type, MsgType::kReplicaInstall);
    const auto owner = in.GetU32();
    if (!owner.ok()) continue;
    EXPECT_FALSE(DecompressFilter(in).ok()) << "prefix length " << len;
  }
}

TEST(ProtocolFuzzRegressionTest, CountingFilterLengthBombRejected) {
  // Serialized counting filter whose counter-byte length exceeds both the
  // geometry cap and the payload; must fail before GetBytes allocates.
  ByteWriter w;
  w.PutU32(4);              // k
  w.PutU64(0);              // seed
  w.PutU64(10);             // items
  w.PutVarint(1ULL << 40);  // counter bytes: over the cap
  ByteReader in(w.data());
  const auto cbf = CountingBloomFilter::Deserialize(in);
  ASSERT_FALSE(cbf.ok());
  EXPECT_EQ(cbf.status().code(), StatusCode::kCorruption);

  ByteWriter w2;
  w2.PutU32(4);
  w2.PutU64(0);
  w2.PutU64(10);
  w2.PutVarint(1 << 20);  // within the cap but beyond the payload
  w2.PutU8(0xff);
  ByteReader in2(w2.data());
  EXPECT_FALSE(CountingBloomFilter::Deserialize(in2).ok());
}

TEST(ProtocolFuzzRegressionTest, NonzeroTailBitsRejected) {
  // A raw bitvector whose final word sets bits past num_bits: accepting it
  // would make equal-looking filters compare unequal after a round trip.
  ByteWriter w;
  w.PutVarint(60);         // num_bits: one partial word
  w.PutU64(~0ULL);         // all 64 bits set, 4 of them out of range
  ByteReader in(w.data());
  const auto bv = BitVector::Deserialize(in);
  ASSERT_FALSE(bv.ok());
  EXPECT_EQ(bv.status().code(), StatusCode::kCorruption);
}

// --- observability messages (kStatsSnapshot / kReportOutcome) ---

TEST(ProtocolBatchTest, BatchRequestRoundTrips) {
  FileMetadata md;
  md.inode = 7;
  std::vector<std::vector<std::uint8_t>> subs;
  subs.push_back(EncodeInsert("/b/a", md));
  subs.push_back(EncodePathRequest(MsgType::kVerify, "/b/a"));
  subs.push_back(EncodePathRequest(MsgType::kLookupLocal, "/b/c"));
  const auto frame = EncodeBatch(subs);

  ByteReader in(frame);
  const auto type = DecodeType(in);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, MsgType::kBatch);
  const auto out = DecodeBatchRequest(in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), subs.size());
  for (std::size_t i = 0; i < subs.size(); ++i) EXPECT_EQ((*out)[i], subs[i]);
}

TEST(ProtocolBatchTest, NonBatchableSubFrameRejected) {
  for (const MsgType type :
       {MsgType::kShutdown, MsgType::kTouchLru, MsgType::kReportOutcome,
        MsgType::kBatch, MsgType::kExportFiles}) {
    EXPECT_FALSE(BatchableType(type));
    std::vector<std::vector<std::uint8_t>> subs;
    subs.push_back(EncodePathRequest(MsgType::kVerify, "/ok"));
    subs.push_back(EncodeHeader(type));
    const auto frame = EncodeBatch(subs);
    ByteReader in(frame);
    ASSERT_TRUE(DecodeType(in).ok());
    EXPECT_FALSE(DecodeBatchRequest(in).ok())
        << "type " << static_cast<int>(type) << " slipped into a batch";
  }
  EXPECT_TRUE(BatchableType(MsgType::kInsert));
  EXPECT_TRUE(BatchableType(MsgType::kVerify));
  EXPECT_TRUE(BatchableType(MsgType::kLookupLocal));
}

TEST(ProtocolBatchTest, CountBombRejectedBeforeAllocating) {
  // Hand-craft a kBatch frame whose count exceeds kMaxBatchFrames: the
  // decoder must reject on the count alone, not trust it and allocate.
  ByteWriter out;
  out.PutU16(static_cast<std::uint16_t>(MsgType::kBatch));
  out.PutVarint(kMaxBatchFrames + 1);
  const auto frame = out.Take();
  ByteReader in(frame);
  ASSERT_TRUE(DecodeType(in).ok());
  EXPECT_FALSE(DecodeBatchRequest(in).ok());
}

TEST(ProtocolBatchTest, LyingSubFrameLengthRejected) {
  // A sub-frame length pointing past the payload end must be rejected.
  ByteWriter out;
  out.PutU16(static_cast<std::uint16_t>(MsgType::kBatch));
  out.PutVarint(1);
  out.PutVarint(1000);  // claims 1000 bytes; none follow
  const auto frame = out.Take();
  ByteReader in(frame);
  ASSERT_TRUE(DecodeType(in).ok());
  EXPECT_FALSE(DecodeBatchRequest(in).ok());
}

TEST(ProtocolBatchTest, BatchRespRoundTripsAndTruncationsRejected) {
  std::vector<std::vector<std::uint8_t>> subs;
  subs.push_back(EncodeBoolResp(true));
  subs.push_back(EncodeStatusResp(Status::NotFound("nope")));
  const auto frame = EncodeBatchResp(subs);

  ByteReader in(frame);
  auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  ASSERT_TRUE(env->has_payload);
  const auto out = DecodeBatchResp(in);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0], subs[0]);
  EXPECT_EQ((*out)[1], subs[1]);

  for (std::size_t cut = 1; cut < frame.size(); ++cut) {
    const std::vector<std::uint8_t> part(frame.begin(),
                                         frame.begin() +
                                             static_cast<std::ptrdiff_t>(cut));
    ByteReader pin(part);
    auto penv = OpenEnvelope(pin);
    if (!penv.ok() || !penv->has_payload) continue;
    EXPECT_FALSE(DecodeBatchResp(pin).ok()) << "cut at " << cut;
  }
}

TEST(ProtocolBatchTest, MangledSubFrameEnvelopeFailsThatSlotOnly) {
  // Regression for the batch envelope layering: each sub-frame of a batch
  // response carries its own envelope byte. Mangling one slot's envelope
  // must corrupt exactly that slot — the outer framing still parses (the
  // sub-frames are length-delimited opaque bytes) and the intact sibling
  // still decodes. A bug that made the outer decoder peek into sub-frame
  // envelopes would fail the whole batch here.
  std::vector<std::vector<std::uint8_t>> subs;
  subs.push_back(EncodeBoolResp(true));
  subs.push_back(EncodeStatusResp(Status::Ok()));
  auto frame = EncodeBatchResp(subs);

  // Locate sub-frame 0's envelope byte: outer envelope, varint count (=2),
  // varint len of sub 0 — with both subs short, each varint is one byte.
  const std::size_t sub0_envelope = 3;
  ASSERT_EQ(frame[sub0_envelope], 1u);  // bool resp: typed payload follows
  frame[sub0_envelope] = 0x7F;          // neither 0 nor 1: corrupt

  ByteReader in(frame);
  auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  ASSERT_TRUE(env->has_payload);
  const auto out = DecodeBatchResp(in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 2u);

  ByteReader sub0((*out)[0]);
  auto env0 = OpenEnvelope(sub0);
  ASSERT_FALSE(env0.ok());
  EXPECT_EQ(env0.status().code(), StatusCode::kCorruption);

  ByteReader sub1((*out)[1]);
  auto env1 = OpenEnvelope(sub1);
  ASSERT_TRUE(env1.ok());
  EXPECT_FALSE(env1->has_payload);
  EXPECT_TRUE(env1->status.ok());
}

TEST(ProtocolBatchTest, MangledOuterEnvelopeRejectsTheBatch) {
  std::vector<std::vector<std::uint8_t>> subs;
  subs.push_back(EncodeBoolResp(false));
  auto frame = EncodeBatchResp(subs);
  ASSERT_EQ(frame[0], 1u);
  frame[0] = 0x2A;  // corrupt the batch's own envelope byte
  ByteReader in(frame);
  auto env = OpenEnvelope(in);
  ASSERT_FALSE(env.ok());
  EXPECT_EQ(env.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolVersionTest, VersionRespRoundTrips) {
  const auto frame = EncodeVersionResp(kProtocolVersion);
  ByteReader in(frame);
  auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  ASSERT_TRUE(env->has_payload);
  const auto version = DecodeVersionResp(in);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, kProtocolVersion);
}

TEST(ProtocolObservabilityTest, StatsSnapshotRoundTripsEveryField) {
  StatsSnapshotResp snap;
  snap.mds_id = 3;
  snap.frames_in = 101;
  snap.frames_out = 99;
  snap.files = 12345;
  snap.replicas = 5;
  snap.lookup_state_bytes = 1 << 20;
  snap.metrics.counters["lookups.l1"] = 70;
  snap.metrics.counters["lookups.miss"] = 2;
  snap.metrics.counters["serve.verifies"] = 0;
  HistogramStats lat;
  lat.count = 72;
  lat.sum = 36.0;
  lat.min = 0.1;
  lat.max = 4.25;
  lat.p50 = 0.4;
  lat.p99 = 3.9;
  snap.metrics.histograms["latency.lookup_ms"] = lat;

  const auto frame = EncodeStatsSnapshotResp(snap);
  ByteReader in(frame);
  const auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  ASSERT_TRUE(env->has_payload);
  const auto decoded = DecodeStatsSnapshotResp(in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->mds_id, 3u);
  EXPECT_EQ(decoded->frames_in, 101u);
  EXPECT_EQ(decoded->frames_out, 99u);
  EXPECT_EQ(decoded->files, 12345u);
  EXPECT_EQ(decoded->replicas, 5u);
  EXPECT_EQ(decoded->lookup_state_bytes, 1u << 20);
  EXPECT_EQ(decoded->metrics.counters, snap.metrics.counters);
  ASSERT_EQ(decoded->metrics.histograms.size(), 1u);
  const auto& h = decoded->metrics.histograms.at("latency.lookup_ms");
  EXPECT_EQ(h.count, 72u);
  EXPECT_DOUBLE_EQ(h.sum, 36.0);
  EXPECT_DOUBLE_EQ(h.min, 0.1);
  EXPECT_DOUBLE_EQ(h.max, 4.25);
  EXPECT_DOUBLE_EQ(h.p50, 0.4);
  EXPECT_DOUBLE_EQ(h.p99, 3.9);
}

TEST(ProtocolObservabilityTest, StatsSnapshotTruncatedAtEveryByteRejected) {
  StatsSnapshotResp snap;
  snap.mds_id = 1;
  snap.metrics.counters["c"] = 9;
  HistogramStats h;
  h.count = 1;
  h.sum = 2.0;
  snap.metrics.histograms["h"] = h;
  const auto frame = EncodeStatsSnapshotResp(snap);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    ByteReader in(std::span<const std::uint8_t>(frame.data(), len));
    const auto env = OpenEnvelope(in);
    if (!env.ok()) continue;  // truncated inside the envelope byte
    EXPECT_FALSE(DecodeStatsSnapshotResp(in).ok()) << "len=" << len;
  }
}

TEST(ProtocolObservabilityTest, StatsSnapshotAbsurdCountsRejected) {
  // A counter count claiming more entries than the payload could hold must
  // fail before any allocation, not while looping.
  ByteWriter w;
  w.PutU32(0);             // mds_id
  for (int i = 0; i < 5; ++i) w.PutU64(0);  // fixed header fields
  w.PutVarint(1ULL << 40);  // counters "present"
  ByteReader in(w.data());
  const auto decoded = DecodeStatsSnapshotResp(in);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolObservabilityTest, OutcomeReportRoundTrips) {
  OutcomeReport report;
  report.level = 3;
  report.found = true;
  report.false_route = true;
  report.elapsed_ns = 123456789;
  report.peers_contacted = 4;
  report.retries = 2;
  const auto frame = EncodeOutcomeReport(report);
  ByteReader in(frame);
  ASSERT_EQ(*DecodeType(in), MsgType::kReportOutcome);
  const auto decoded = DecodeOutcomeReport(in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->level, 3);
  EXPECT_TRUE(decoded->found);
  EXPECT_TRUE(decoded->false_route);
  EXPECT_EQ(decoded->elapsed_ns, 123456789u);
  EXPECT_EQ(decoded->peers_contacted, 4u);
  EXPECT_EQ(decoded->retries, 2u);
}

TEST(ProtocolObservabilityTest, OutcomeReportBadLevelRejected) {
  for (const std::uint8_t level : {0, 5, 255}) {
    OutcomeReport report;
    report.level = 1;
    auto frame = EncodeOutcomeReport(report);
    frame[2] = level;  // [u16 type][level]...
    ByteReader in(frame);
    ASSERT_EQ(*DecodeType(in), MsgType::kReportOutcome);
    const auto decoded = DecodeOutcomeReport(in);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

TEST(ProtocolObservabilityTest, OutcomeReportBadBoolByteRejected) {
  OutcomeReport report;
  report.level = 2;
  auto frame = EncodeOutcomeReport(report);
  frame[3] = 7;  // `found` byte must be 0 or 1
  ByteReader in(frame);
  ASSERT_EQ(*DecodeType(in), MsgType::kReportOutcome);
  const auto decoded = DecodeOutcomeReport(in);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace ghba
