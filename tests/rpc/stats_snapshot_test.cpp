// Acceptance test for the live observability layer: per-level hit counts
// reported by kStatsSnapshot across a real 4-MDS PrototypeCluster must
// exactly match the LookupOutcome traces the client observed for a
// deterministic workload. This is the contract that lets ghba_stats
// reproduce Fig. 13 from a running cluster instead of a simulation.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "rpc/prototype_cluster.hpp"

namespace ghba {
namespace {

ClusterConfig FourMdsConfig() {
  ClusterConfig c;
  c.num_mds = 4;
  c.max_group_size = 2;  // two groups, so L3 and L4 both carry traffic
  c.expected_files_per_mds = 500;
  c.lru_capacity = 64;
  c.memory_budget_bytes = 64ULL << 20;
  c.seed = 2026;
  return c;
}

FileMetadata Md(std::uint64_t inode) {
  FileMetadata md;
  md.inode = inode;
  return md;
}

/// Client-side tally mirroring the server's kReportOutcome accounting.
struct LevelTally {
  std::uint64_t l1 = 0, l2 = 0, l3 = 0, l4 = 0, miss = 0;

  void Observe(const LookupOutcome& r) {
    if (!r.found) {
      ++miss;
      return;
    }
    switch (r.served_level) {
      case 1: ++l1; break;
      case 2: ++l2; break;
      case 3: ++l3; break;
      default: ++l4; break;
    }
  }

  std::uint64_t total() const { return l1 + l2 + l3 + l4 + miss; }
};

TEST(StatsSnapshotTest, ServerCountersMatchClientTracesExactly) {
  PrototypeCluster cluster(FourMdsConfig(), ProtoScheme::kGhba);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_EQ(cluster.NumServers(), 4u);

  constexpr int kFiles = 48;
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(cluster.Insert("/acc/f" + std::to_string(i), Md(i)).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());

  // Deterministic workload: every file twice (the repeat can be served by
  // the entry's L1), plus guaranteed misses.
  LevelTally tally;
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < kFiles; ++i) {
      const auto r = cluster.Lookup("/acc/f" + std::to_string(i));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r->found) << i;
      EXPECT_EQ(r->trace.level, r->served_level);
      EXPECT_GT(r->trace.TotalElapsedNs(), 0u);
      tally.Observe(*r);
    }
  }
  for (int i = 0; i < 7; ++i) {
    const auto r = cluster.Lookup("/acc/absent" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->found);
    tally.Observe(*r);
  }
  ASSERT_EQ(tally.total(), 2u * kFiles + 7u);

  // Drain in-flight one-way kReportOutcome frames before polling.
  ASSERT_TRUE(cluster.Quiesce().ok());

  // Sum the per-level counters over every server's kStatsSnapshot.
  LevelTally servers;
  std::uint64_t server_files = 0;
  std::uint64_t latency_samples = 0;
  for (const MdsId id : cluster.AliveServers()) {
    const auto snap = cluster.FetchStats(id);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    EXPECT_EQ(snap->mds_id, id);
    EXPECT_GT(snap->frames_in, 0u);
    EXPECT_GT(snap->lookup_state_bytes, 0u);
    const auto& m = snap->metrics;
    servers.l1 += m.CounterOr(metrics_names::kLookupsL1);
    servers.l2 += m.CounterOr(metrics_names::kLookupsL2);
    servers.l3 += m.CounterOr(metrics_names::kLookupsL3);
    servers.l4 += m.CounterOr(metrics_names::kLookupsL4);
    servers.miss += m.CounterOr(metrics_names::kLookupsMiss);
    server_files += snap->files;
    const auto it = m.histograms.find(metrics_names::kLatencyLookupMs);
    if (it != m.histograms.end()) latency_samples += it->second.count;
  }

  // The acceptance criterion: live per-level counts == client-side traces.
  EXPECT_EQ(servers.l1, tally.l1);
  EXPECT_EQ(servers.l2, tally.l2);
  EXPECT_EQ(servers.l3, tally.l3);
  EXPECT_EQ(servers.l4, tally.l4);
  EXPECT_EQ(servers.miss, tally.miss);
  EXPECT_EQ(servers.total(), tally.total());
  // Every lookup also left one end-to-end latency sample server-side.
  EXPECT_EQ(latency_samples, tally.total());
  // Every inserted file lives on exactly one server.
  EXPECT_EQ(server_files, static_cast<std::uint64_t>(kFiles));

  // The client's own registry tells the same story.
  const auto client = cluster.ClientSnapshot();
  EXPECT_EQ(client.CounterOr(metrics_names::kLookupsL1), tally.l1);
  EXPECT_EQ(client.CounterOr(metrics_names::kLookupsL2), tally.l2);
  EXPECT_EQ(client.CounterOr(metrics_names::kLookupsL3), tally.l3);
  EXPECT_EQ(client.CounterOr(metrics_names::kLookupsL4), tally.l4);
  EXPECT_EQ(client.CounterOr(metrics_names::kLookupsMiss), tally.miss);
  EXPECT_EQ(cluster.metrics().levels.total(), tally.total());

  cluster.Stop();
}

TEST(StatsSnapshotTest, HbaSchemeAccountsTheSameWay) {
  auto config = FourMdsConfig();
  PrototypeCluster cluster(config, ProtoScheme::kHba);
  ASSERT_TRUE(cluster.Start().ok());

  LevelTally tally;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.Insert("/hba/f" + std::to_string(i), Md(i)).ok());
  }
  ASSERT_TRUE(cluster.PublishAll().ok());
  for (int i = 0; i < 20; ++i) {
    const auto r = cluster.Lookup("/hba/f" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    tally.Observe(*r);
  }
  const auto miss = cluster.Lookup("/hba/none");
  ASSERT_TRUE(miss.ok());
  tally.Observe(*miss);

  ASSERT_TRUE(cluster.Quiesce().ok());
  LevelTally servers;
  for (const MdsId id : cluster.AliveServers()) {
    const auto snap = cluster.FetchStats(id);
    ASSERT_TRUE(snap.ok());
    servers.l1 += snap->metrics.CounterOr(metrics_names::kLookupsL1);
    servers.l2 += snap->metrics.CounterOr(metrics_names::kLookupsL2);
    servers.l3 += snap->metrics.CounterOr(metrics_names::kLookupsL3);
    servers.l4 += snap->metrics.CounterOr(metrics_names::kLookupsL4);
    servers.miss += snap->metrics.CounterOr(metrics_names::kLookupsMiss);
  }
  EXPECT_EQ(servers.l1, tally.l1);
  EXPECT_EQ(servers.l2, tally.l2);
  EXPECT_EQ(servers.l3, tally.l3);
  EXPECT_EQ(servers.l4, tally.l4);
  EXPECT_EQ(servers.miss, tally.miss);
  cluster.Stop();
}

}  // namespace
}  // namespace ghba
