#include "rpc/server.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <thread>

#include "bloom/compressed.hpp"

namespace ghba {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig c;
  c.expected_files_per_mds = 1000;
  c.lru_capacity = 64;
  c.memory_budget_bytes = 64ULL << 20;
  c.seed = 13;
  return c;
}

class MdsServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<MdsServer>(0, TestConfig());
    ASSERT_TRUE(server_->Start().ok());
    auto conn = TcpConnection::Connect(server_->port());
    ASSERT_TRUE(conn.ok());
    conn_ = std::move(*conn);
  }

  void TearDown() override { server_->Stop(); }

  Result<std::vector<std::uint8_t>> Call(const std::vector<std::uint8_t>& req) {
    if (Status s = conn_.SendFrame(req); !s.ok()) return s;
    return conn_.RecvFrame();
  }

  Status CallStatus(const std::vector<std::uint8_t>& req) {
    auto resp = Call(req);
    if (!resp.ok()) return resp.status();
    ByteReader in(*resp);
    auto env = OpenEnvelope(in);
    if (!env.ok()) return env.status();
    return env->status;
  }

  Result<bool> CallBool(const std::vector<std::uint8_t>& req) {
    auto resp = Call(req);
    if (!resp.ok()) return resp.status();
    ByteReader in(*resp);
    auto env = OpenEnvelope(in);
    if (!env.ok()) return env.status();
    if (!env->has_payload) return env->status;
    return DecodeBoolResp(in);
  }

  std::unique_ptr<MdsServer> server_;
  TcpConnection conn_;
};

TEST_F(MdsServerTest, PingPong) {
  EXPECT_TRUE(CallStatus(EncodeHeader(MsgType::kPing)).ok());
}

TEST_F(MdsServerTest, InsertThenVerify) {
  FileMetadata md;
  md.inode = 5;
  ASSERT_TRUE(CallStatus(EncodeInsert("/a", md)).ok());
  const auto found = CallBool(EncodePathRequest(MsgType::kVerify, "/a"));
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(*found);
  const auto missing = CallBool(EncodePathRequest(MsgType::kVerify, "/b"));
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(*missing);
}

TEST_F(MdsServerTest, DuplicateInsertRejected) {
  FileMetadata md;
  ASSERT_TRUE(CallStatus(EncodeInsert("/dup", md)).ok());
  EXPECT_EQ(CallStatus(EncodeInsert("/dup", md)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(MdsServerTest, UnlinkRemoves) {
  FileMetadata md;
  ASSERT_TRUE(CallStatus(EncodeInsert("/gone", md)).ok());
  ASSERT_TRUE(CallStatus(EncodePathRequest(MsgType::kUnlink, "/gone")).ok());
  const auto found = CallBool(EncodePathRequest(MsgType::kGlobalProbe, "/gone"));
  ASSERT_TRUE(found.ok());
  EXPECT_FALSE(*found);
  EXPECT_EQ(CallStatus(EncodePathRequest(MsgType::kUnlink, "/gone")).code(),
            StatusCode::kNotFound);
}

TEST_F(MdsServerTest, GlobalProbeIsAuthoritative) {
  FileMetadata md;
  ASSERT_TRUE(CallStatus(EncodeInsert("/auth", md)).ok());
  const auto found = CallBool(EncodePathRequest(MsgType::kGlobalProbe, "/auth"));
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(*found);
}

TEST_F(MdsServerTest, LocalLookupReportsOwnFilterHit) {
  FileMetadata md;
  ASSERT_TRUE(CallStatus(EncodeInsert("/own", md)).ok());
  auto resp = Call(EncodePathRequest(MsgType::kLookupLocal, "/own"));
  ASSERT_TRUE(resp.ok());
  ByteReader in(*resp);
  auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  ASSERT_TRUE(env->has_payload);
  const auto local = DecodeLocalLookupResp(in);
  ASSERT_TRUE(local.ok());
  ASSERT_EQ(local->hits.size(), 1u);
  EXPECT_EQ(local->hits.front(), 0u);  // this server's own id
}

TEST_F(MdsServerTest, ReplicaInstallAndProbe) {
  auto owner_filter = BloomFilter::ForCapacity(1000, 16.0, TestConfig().seed ^ 0x5151);
  owner_filter.Add("/remote/file");
  ASSERT_TRUE(CallStatus(EncodeReplicaInstall(7, owner_filter)).ok());

  auto resp = Call(EncodePathRequest(MsgType::kGroupProbe, "/remote/file"));
  ASSERT_TRUE(resp.ok());
  ByteReader in(*resp);
  auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  const auto local = DecodeLocalLookupResp(in);
  ASSERT_TRUE(local.ok());
  ASSERT_EQ(local->hits.size(), 1u);
  EXPECT_EQ(local->hits.front(), 7u);
}

TEST_F(MdsServerTest, ReplicaInstallRefreshesExisting) {
  auto v1 = BloomFilter::ForCapacity(1000, 16.0, 1);
  v1.Add("/old");
  ASSERT_TRUE(CallStatus(EncodeReplicaInstall(7, v1)).ok());
  auto v2 = BloomFilter::ForCapacity(1000, 16.0, 1);
  v2.Add("/new");
  ASSERT_TRUE(CallStatus(EncodeReplicaInstall(7, v2)).ok());

  auto resp = Call(EncodePathRequest(MsgType::kGroupProbe, "/old"));
  ASSERT_TRUE(resp.ok());
  ByteReader in(*resp);
  ASSERT_TRUE(OpenEnvelope(in).ok());
  const auto local = DecodeLocalLookupResp(in);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(local->hits.empty());  // refreshed away
}

TEST_F(MdsServerTest, ReplicaFetchAndDrop) {
  auto filter = BloomFilter::ForCapacity(100, 8.0, 2);
  filter.Add("/k");
  ASSERT_TRUE(CallStatus(EncodeReplicaInstall(9, filter)).ok());

  auto fetch = Call(EncodeReplicaFetch(9));
  ASSERT_TRUE(fetch.ok());
  ByteReader in(*fetch);
  auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  ASSERT_TRUE(env->has_payload);
  const auto fetched = DecompressFilter(in);
  ASSERT_TRUE(fetched.ok());
  EXPECT_TRUE(fetched->MayContain("/k"));

  ASSERT_TRUE(CallStatus(EncodeReplicaDrop(9)).ok());
  EXPECT_EQ(CallStatus(EncodeReplicaFetch(9)).code(), StatusCode::kNotFound);
}

TEST_F(MdsServerTest, TouchLruThenLookupUsesIt) {
  // Teach the LRU that /cached lives on MDS 4, then expect a unique L1 hit.
  ASSERT_TRUE(conn_.SendFrame(EncodeTouch("/cached", 4)).ok());
  // One-way message: give the loop a moment by round-tripping a ping.
  ASSERT_TRUE(CallStatus(EncodeHeader(MsgType::kPing)).ok());

  auto resp = Call(EncodePathRequest(MsgType::kLookupLocal, "/cached"));
  ASSERT_TRUE(resp.ok());
  ByteReader in(*resp);
  ASSERT_TRUE(OpenEnvelope(in).ok());
  const auto local = DecodeLocalLookupResp(in);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(local->lru_unique);
  EXPECT_EQ(local->lru_home, 4u);
}

TEST_F(MdsServerTest, StatsCountFrames) {
  ASSERT_TRUE(CallStatus(EncodeHeader(MsgType::kPing)).ok());
  auto resp = Call(EncodeHeader(MsgType::kGetStats));
  ASSERT_TRUE(resp.ok());
  ByteReader in(*resp);
  ASSERT_TRUE(OpenEnvelope(in).ok());
  const auto stats = DecodeStatsResp(in);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->frames_in, 2u);
  EXPECT_GE(stats->frames_out, 1u);
}

TEST_F(MdsServerTest, LeaseGrantedOnlyForStoredPaths) {
  FileMetadata md;
  ASSERT_TRUE(CallStatus(EncodeInsert("/leased", md)).ok());

  auto resp = Call(EncodePathRequest(MsgType::kLeaseGrant, "/leased"));
  ASSERT_TRUE(resp.ok());
  ByteReader in(*resp);
  ASSERT_TRUE(OpenEnvelope(in).ok());
  const auto lease = DecodeLeaseGrantResp(in);
  ASSERT_TRUE(lease.ok());
  EXPECT_TRUE(lease->granted);
  EXPECT_EQ(lease->home, 0u);  // the granting server names itself
  EXPECT_EQ(lease->ttl_ms, TestConfig().hotspot.lease_ttl_ms);

  // Not stored here: a refusal ("do not cache"), never an error and never
  // an existence verdict.
  auto missing = Call(EncodePathRequest(MsgType::kLeaseGrant, "/elsewhere"));
  ASSERT_TRUE(missing.ok());
  ByteReader min(*missing);
  ASSERT_TRUE(OpenEnvelope(min).ok());
  const auto refusal = DecodeLeaseGrantResp(min);
  ASSERT_TRUE(refusal.ok());
  EXPECT_FALSE(refusal->granted);
  EXPECT_EQ(refusal->ttl_ms, 0u);
}

TEST_F(MdsServerTest, InvalidateAndUnlinkPurgeLeases) {
  FileMetadata md;
  ASSERT_TRUE(CallStatus(EncodeInsert("/l1", md)).ok());
  ASSERT_TRUE(CallStatus(EncodeInsert("/l2", md)).ok());
  for (const char* path : {"/l1", "/l2"}) {
    auto resp = Call(EncodePathRequest(MsgType::kLeaseGrant, path));
    ASSERT_TRUE(resp.ok());
  }
  // Explicit revocation is idempotent and fine for never-leased paths too.
  EXPECT_TRUE(
      CallStatus(EncodePathRequest(MsgType::kInvalidate, "/l1")).ok());
  EXPECT_TRUE(
      CallStatus(EncodePathRequest(MsgType::kInvalidate, "/l1")).ok());
  EXPECT_TRUE(
      CallStatus(EncodePathRequest(MsgType::kInvalidate, "/never")).ok());
  // kUnlink purges its own lease as part of the removal.
  ASSERT_TRUE(CallStatus(EncodePathRequest(MsgType::kUnlink, "/l2")).ok());

  auto resp = Call(EncodeHeader(MsgType::kStatsSnapshot));
  ASSERT_TRUE(resp.ok());
  ByteReader in(*resp);
  ASSERT_TRUE(OpenEnvelope(in).ok());
  const auto snap = DecodeStatsSnapshotResp(in);
  ASSERT_TRUE(snap.ok());
  EXPECT_GE(snap->metrics.CounterOr("serve.lease_grants"), 2u);
  EXPECT_GE(snap->metrics.CounterOr("serve.invalidations"), 3u);
}

TEST_F(MdsServerTest, MalformedFrameAnswersWithError) {
  ByteWriter w;
  w.PutU16(12345);  // unknown type
  auto resp = Call(w.Take());
  ASSERT_TRUE(resp.ok());
  ByteReader in(*resp);
  const auto env = OpenEnvelope(in);
  ASSERT_TRUE(env.ok());
  EXPECT_FALSE(env->status.ok());
}

TEST_F(MdsServerTest, StopIsIdempotent) {
  server_->Stop();
  server_->Stop();
  EXPECT_FALSE(server_->running());
}

TEST(MdsServerStallTest, StalledLoopParksRequestsUntilUnstalled) {
  // An injected stall is the failure mode heart-beats exist for: the
  // sockets stay open but nothing answers, so only a deadline saves the
  // caller. Unstalling lets the parked request complete.
  MdsServer server(0, TestConfig());
  FaultInjector injector;
  server.set_fault_injector(&injector);
  ASSERT_TRUE(server.Start().ok());
  auto conn = TcpConnection::Connect(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->SendFrame(EncodeHeader(MsgType::kPing)).ok());
  ASSERT_TRUE(conn->RecvFrame().ok());

  injector.StallServer(0);
  // The loop polls in <=200ms slices; after this sleep it has certainly
  // observed the stall flag and parked.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE(conn->SendFrame(EncodeHeader(MsgType::kPing)).ok());
  const auto parked =
      conn->RecvFrame(Deadline::After(std::chrono::milliseconds(150)));
  ASSERT_FALSE(parked.ok());
  EXPECT_EQ(parked.status().code(), StatusCode::kTimedOut);

  injector.UnstallServer(0);
  const auto resumed =
      conn->RecvFrame(Deadline::After(std::chrono::seconds(5)));
  EXPECT_TRUE(resumed.ok()) << resumed.status().ToString();
  server.Stop();
}

TEST(MdsServerStallTest, StalledServerStillShutsDown) {
  MdsServer server(3, TestConfig());
  FaultInjector injector;
  server.set_fault_injector(&injector);
  ASSERT_TRUE(server.Start().ok());
  injector.StallServer(3);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  server.Stop();  // must not hang on the stalled loop
  EXPECT_FALSE(server.running());
}

// Regression (satellite bugfix): the old loop treated every poll(2)
// failure as a timeout and spun forever on a broken fd set, serving
// nobody and saying nothing. A fatal wait error must stop the server and
// leave a visible diagnosis.
TEST(MdsServerWaitErrorTest, FatalWaitErrorStopsTheServerVisibly) {
  MdsServer server(0, TestConfig());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.last_error().empty());
  server.SabotageEventLoopForTest(EBADF);
  // Any traffic wakes the loop; the sabotaged wait then reports EBADF.
  auto conn = TcpConnection::Connect(server.port());
  for (int i = 0; i < 100 && server.running(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(server.running());
  EXPECT_NE(server.last_error().find("Bad file"), std::string::npos)
      << server.last_error();
  server.Stop();
}

TEST(MdsServerWaitErrorTest, EintrIsRetriedNotFatal) {
  MdsServer server(0, TestConfig());
  ASSERT_TRUE(server.Start().ok());
  server.SabotageEventLoopForTest(EINTR);
  auto conn = TcpConnection::Connect(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->SendFrame(EncodeHeader(MsgType::kPing)).ok());
  EXPECT_TRUE(conn->RecvFrame(Deadline::After(std::chrono::seconds(5))).ok());
  EXPECT_TRUE(server.running());
  EXPECT_TRUE(server.last_error().empty());
  server.Stop();
}

TEST(ClassifyWaitErrorTest, TransientVersusFatal) {
  EXPECT_EQ(ClassifyWaitError(EINTR), IoErrorAction::kRetry);
  EXPECT_EQ(ClassifyWaitError(EAGAIN), IoErrorAction::kRetry);
  EXPECT_EQ(ClassifyWaitError(EBADF), IoErrorAction::kFatal);
  EXPECT_EQ(ClassifyWaitError(EINVAL), IoErrorAction::kFatal);
  EXPECT_EQ(ClassifyWaitError(ENOMEM), IoErrorAction::kFatal);
  EXPECT_EQ(ClassifyWaitError(EFAULT), IoErrorAction::kFatal);
}

TEST(MdsServerShardingTest, ShardOfPathIsStableAndInRange) {
  for (std::uint32_t shards = 1; shards <= 8; ++shards) {
    for (int i = 0; i < 64; ++i) {
      const std::string path = "/route/f" + std::to_string(i);
      const auto s = ShardOfPath(path, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, ShardOfPath(path, shards));  // pure function
    }
  }
  EXPECT_EQ(ShardOfPath("/anything", 1), 0u);
}

TEST(MdsServerLifecycleTest, MultipleServersCoexist) {
  std::vector<std::unique_ptr<MdsServer>> servers;
  for (MdsId id = 0; id < 8; ++id) {
    servers.push_back(std::make_unique<MdsServer>(id, TestConfig()));
    ASSERT_TRUE(servers.back()->Start().ok());
  }
  std::set<std::uint16_t> ports;
  for (const auto& s : servers) ports.insert(s->port());
  EXPECT_EQ(ports.size(), 8u);  // distinct ports
  for (auto& s : servers) s->Stop();
}

}  // namespace
}  // namespace ghba
