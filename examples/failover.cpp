// Fail-over scenario (paper Section 4.5): heart-beats detect dead MDSs,
// their filters are purged to stop false positives, and the service keeps
// answering at degraded coverage — first in the simulator, then over real
// TCP sockets.
//
//   $ ./failover
#include <cstdio>
#include <string>

#include "core/ghba_cluster.hpp"
#include "rpc/prototype_cluster.hpp"

using namespace ghba;

namespace {

int SimulatedPart() {
  ClusterConfig config;
  config.num_mds = 12;
  config.max_group_size = 4;
  config.expected_files_per_mds = 2000;
  config.publish_after_mutations = 64;
  config.seed = 3;

  GhbaCluster cluster(config);
  constexpr int kFiles = 2400;
  for (int i = 0; i < kFiles; ++i) {
    FileMetadata md;
    md.inode = static_cast<std::uint64_t>(i);
    (void)cluster.CreateFile("/srv/f" + std::to_string(i), md, 0);
  }
  cluster.FlushReplicas(0);

  std::printf("simulator: %u MDSs, %d files\n", cluster.NumMds(), kFiles);
  for (const MdsId victim : {3u, 7u, 9u}) {
    ReconfigReport rep;
    if (!cluster.FailMds(victim, &rep).ok()) return 1;
    int reachable = 0;
    for (int i = 0; i < kFiles; ++i) {
      reachable += cluster.Lookup("/srv/f" + std::to_string(i), 0).found;
    }
    std::printf("  MDS%-3u crashed: %d/%d files reachable, %llu lost total, "
                "invariants %s\n",
                victim, reachable, kFiles,
                static_cast<unsigned long long>(cluster.lost_files()),
                cluster.CheckInvariants().ok() ? "hold" : "VIOLATED");
  }
  // Replacement capacity rejoins and the cluster heals forward.
  (void)cluster.AddMds(nullptr);
  std::printf("  replacement MDS joined -> %u MDSs, invariants %s\n\n",
              cluster.NumMds(),
              cluster.CheckInvariants().ok() ? "hold" : "VIOLATED");
  return 0;
}

int PrototypePart() {
  ClusterConfig config;
  config.num_mds = 9;
  config.max_group_size = 3;
  config.expected_files_per_mds = 500;
  config.seed = 5;

  PrototypeCluster cluster(config, ProtoScheme::kGhba);
  if (!cluster.Start().ok()) return 1;
  constexpr int kFiles = 300;
  for (int i = 0; i < kFiles; ++i) {
    FileMetadata md;
    md.inode = static_cast<std::uint64_t>(i);
    (void)cluster.Insert("/wire/f" + std::to_string(i), md);
  }
  (void)cluster.PublishAll();

  std::printf("prototype: %zu TCP servers, %d files\n", cluster.NumServers(),
              kFiles);
  if (!cluster.KillServer(4).ok()) return 1;
  int reachable = 0;
  for (int i = 0; i < kFiles; ++i) {
    const auto r = cluster.Lookup("/wire/f" + std::to_string(i));
    reachable += (r.ok() && r->found);
  }
  std::printf("  server 4 killed: %d/%d files reachable over the wire\n",
              reachable, kFiles);

  // A graceful decommission, by contrast, loses nothing.
  const auto removed = cluster.RemoveServer(5);
  if (!removed.ok()) return 1;
  int after_remove = 0;
  for (int i = 0; i < kFiles; ++i) {
    const auto r = cluster.Lookup("/wire/f" + std::to_string(i));
    after_remove += (r.ok() && r->found);
  }
  std::printf("  server 5 decommissioned (%llu frames): %d/%d still "
              "reachable — graceful leaves lose nothing\n",
              static_cast<unsigned long long>(removed->messages),
              after_remove, kFiles);
  cluster.Stop();
  return 0;
}

}  // namespace

int main() {
  if (const int rc = SimulatedPart(); rc != 0) return rc;
  return PrototypePart();
}
