// Quickstart: build a G-HBA metadata cluster, create files, look them up,
// and inspect which level of the hierarchy served each query.
//
//   $ ./quickstart
//
// This walks the public API end to end: ClusterConfig -> GhbaCluster ->
// CreateFile/Lookup/UnlinkFile -> metrics.
#include <cstdio>
#include <string>

#include "core/ghba_cluster.hpp"

using namespace ghba;

int main() {
  // A 12-server deployment with groups of at most 4 MDSs.
  ClusterConfig config;
  config.num_mds = 12;
  config.max_group_size = 4;
  config.expected_files_per_mds = 10000;
  config.lru_capacity = 1024;
  config.publish_after_mutations = 64;
  config.seed = 2024;

  GhbaCluster cluster(config);
  std::printf("cluster up: %u MDSs in %zu groups\n", cluster.NumMds(),
              cluster.NumGroups());

  // Create a namespace. Every file lands on a uniformly random home MDS and
  // is inserted into that MDS's counting Bloom filter.
  for (int i = 0; i < 2000; ++i) {
    const std::string path = "/projects/demo/file" + std::to_string(i) + ".dat";
    FileMetadata md;
    md.inode = static_cast<std::uint64_t>(i) + 1;
    md.size_bytes = 4096;
    const Status s = cluster.CreateFile(path, md, /*now_ms=*/0);
    if (!s.ok()) {
      std::printf("create failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  // Push every MDS's filter to its replica holders so the groups hold a
  // fresh global image.
  cluster.FlushReplicas(0);
  cluster.metrics().Reset();

  // Look up the same file repeatedly. Each query enters at a random MDS;
  // early ones resolve at L2/L3, and as the per-MDS LRU arrays learn the
  // mapping, L1 hits appear.
  const std::string hot = "/projects/demo/file42.dat";
  for (int round = 1; round <= 10; ++round) {
    const LookupOutcome r = cluster.Lookup(hot, 0);
    std::printf("lookup %d: %s home=MDS%u level=L%d latency=%.3fms "
                "messages=%llu\n",
                round, r.found ? "hit " : "miss", r.home, r.served_level,
                r.latency_ms, static_cast<unsigned long long>(r.messages));
  }

  // A lookup for a file that does not exist is concluded (exactly) by the
  // global multicast at L4.
  const LookupOutcome miss = cluster.Lookup("/projects/demo/ghost.dat", 0);
  std::printf("ghost file: %s (level L%d)\n",
              miss.found ? "unexpected hit!" : "definitive miss",
              miss.served_level);

  // Delete a file and observe the lookup miss after the next publish.
  (void)cluster.UnlinkFile(hot, 0);
  cluster.FlushReplicas(0);
  const LookupOutcome gone = cluster.Lookup(hot, 0);
  std::printf("after unlink: %s\n", gone.found ? "still visible (stale!)"
                                               : "gone");

  // Add one MDS: light-weight replica migration, no file movement.
  ReconfigReport report;
  const auto nid = cluster.AddMds(&report);
  if (nid.ok()) {
    std::printf("added MDS%u: migrated %llu replicas with %llu messages "
                "(files moved: %llu)\n",
                *nid, static_cast<unsigned long long>(report.replicas_migrated),
                static_cast<unsigned long long>(report.messages),
                static_cast<unsigned long long>(report.files_migrated));
  }

  // Aggregate metrics.
  const auto& m = cluster.metrics();
  std::printf("\nquery levels: L1=%llu L2=%llu L3=%llu L4=%llu miss=%llu\n",
              static_cast<unsigned long long>(m.levels.l1),
              static_cast<unsigned long long>(m.levels.l2),
              static_cast<unsigned long long>(m.levels.l3),
              static_cast<unsigned long long>(m.levels.l4),
              static_cast<unsigned long long>(m.levels.miss));
  std::printf("lookup latency: %s\n", m.lookup_latency_ms.Summary().c_str());
  return 0;
}
