// Reconfiguration scenario: elastic growth and shrink of a G-HBA cluster —
// the paper's Section 3.1/3.2 machinery (light-weight migration, group
// split and merge) exercised end to end, with a hash-placement cluster run
// alongside to show the migration-cost contrast of Table 1.
//
//   $ ./reconfiguration
#include <cstdio>
#include <string>

#include "core/ghba_cluster.hpp"
#include "core/hash_cluster.hpp"

using namespace ghba;

namespace {

ClusterConfig BaseConfig() {
  ClusterConfig config;
  config.num_mds = 12;
  config.max_group_size = 4;
  config.expected_files_per_mds = 4000;
  config.publish_after_mutations = 64;
  config.seed = 11;
  return config;
}

void Populate(MetadataCluster& cluster, int files) {
  for (int i = 0; i < files; ++i) {
    FileMetadata md;
    md.inode = static_cast<std::uint64_t>(i) + 1;
    (void)cluster.CreateFile("/data/f" + std::to_string(i), md, 0);
  }
  cluster.FlushReplicas(0);
  cluster.metrics().Reset();
}

bool AllFilesVisible(MetadataCluster& cluster, int files) {
  for (int i = 0; i < files; ++i) {
    if (!cluster.Lookup("/data/f" + std::to_string(i), 0).found) return false;
  }
  return true;
}

}  // namespace

int main() {
  constexpr int kFiles = 3000;

  GhbaCluster ghba(BaseConfig());
  HashPlacementCluster hash(BaseConfig());
  Populate(ghba, kFiles);
  Populate(hash, kFiles);

  std::printf("start: %u MDSs, %zu groups\n\n", ghba.NumMds(),
              ghba.NumGroups());
  std::printf("%-8s %-10s  %-22s %-22s\n", "event", "N after",
              "G-HBA (replicas/msgs)", "hash placement (files)");

  // --- grow by 6: some joins fill groups, some force splits ---
  for (int i = 0; i < 6; ++i) {
    ReconfigReport gr, hr;
    const auto gid = ghba.AddMds(&gr);
    const auto hid = hash.AddMds(&hr);
    if (!gid.ok() || !hid.ok()) {
      std::printf("join failed\n");
      return 1;
    }
    std::printf("join     %-10u  %6llu / %-13llu %llu\n", ghba.NumMds(),
                static_cast<unsigned long long>(gr.replicas_migrated),
                static_cast<unsigned long long>(gr.messages),
                static_cast<unsigned long long>(hr.files_migrated));
    if (gr.group_split) {
      std::printf("         ... group split -> %zu groups\n",
                  ghba.NumGroups());
    }
    const Status inv = ghba.CheckInvariants();
    if (!inv.ok()) {
      std::printf("INVARIANT VIOLATION: %s\n", inv.ToString().c_str());
      return 1;
    }
  }

  // --- shrink by 8: departures re-home files; small groups merge ---
  for (int i = 0; i < 8; ++i) {
    const MdsId victim = ghba.alive().front();
    ReconfigReport gr, hr;
    if (!ghba.RemoveMds(victim, &gr).ok() ||
        !hash.RemoveMds(hash.alive().front(), &hr).ok()) {
      std::printf("departure failed\n");
      return 1;
    }
    std::printf("leave    %-10u  %6llu / %-13llu %llu\n", ghba.NumMds(),
                static_cast<unsigned long long>(gr.replicas_migrated),
                static_cast<unsigned long long>(gr.messages),
                static_cast<unsigned long long>(hr.files_migrated));
    if (gr.group_merged) {
      std::printf("         ... groups merged -> %zu groups\n",
                  ghba.NumGroups());
    }
    const Status inv = ghba.CheckInvariants();
    if (!inv.ok()) {
      std::printf("INVARIANT VIOLATION: %s\n", inv.ToString().c_str());
      return 1;
    }
  }

  std::printf("\nend: %u MDSs, %zu groups\n", ghba.NumMds(), ghba.NumGroups());
  std::printf("every file still reachable: G-HBA %s, hash %s\n",
              AllFilesVisible(ghba, kFiles) ? "yes" : "NO",
              AllFilesVisible(hash, kFiles) ? "yes" : "NO");
  std::printf("\ncumulative G-HBA reconfiguration: %llu replicas migrated, "
              "%llu messages\n",
              static_cast<unsigned long long>(
                  ghba.metrics().replicas_migrated),
              static_cast<unsigned long long>(
                  ghba.metrics().reconfig_messages));
  std::printf("note how hash placement moves *files* (thousands) where "
              "G-HBA moves only filter replicas.\n");
  return 0;
}
