// Prototype demo: run a real multi-server metadata cluster over TCP on
// loopback — the paper's Section 5 setup in miniature — and watch queries
// resolve through the hierarchy with wall-clock latencies.
//
//   $ ./prototype_cluster [num_servers] [group_size]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "rpc/prototype_cluster.hpp"

using namespace ghba;

int main(int argc, char** argv) {
  const auto n = static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 12);
  const auto m = static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 4);

  ClusterConfig config;
  config.num_mds = n;
  config.max_group_size = m;
  config.expected_files_per_mds = 2000;
  config.lru_capacity = 512;
  config.seed = 5;

  PrototypeCluster cluster(config, ProtoScheme::kGhba);
  if (Status s = cluster.Start(); !s.ok()) {
    std::printf("failed to start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("started %zu MDS servers (TCP loopback) in %zu groups\n",
              cluster.NumServers(), cluster.NumGroups());

  // Create a small namespace over the wire.
  constexpr int kFiles = 500;
  for (int i = 0; i < kFiles; ++i) {
    FileMetadata md;
    md.inode = static_cast<std::uint64_t>(i) + 1;
    const Status s =
        cluster.Insert("/wire/file" + std::to_string(i), md);
    if (!s.ok()) {
      std::printf("insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (Status s = cluster.PublishAll(); !s.ok()) {
    std::printf("publish failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("inserted %d files and published all replicas\n\n", kFiles);

  // Query a few paths; repeats show the LRU (L1) kicking in.
  for (const int i : {7, 7, 7, 123, 456}) {
    const std::string path = "/wire/file" + std::to_string(i);
    const auto r = cluster.Lookup(path);
    if (!r.ok()) {
      std::printf("lookup error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-18s -> %s home=MDS%-3u level=L%d  %.3f ms\n", path.c_str(),
                r->found ? "hit " : "miss", r->home, r->served_level,
                r->latency_ms);
  }
  const auto ghost = cluster.Lookup("/wire/ghost");
  if (ghost.ok()) {
    std::printf("%-18s -> %s (level L%d)\n\n", "/wire/ghost",
                ghost->found ? "hit?!" : "miss", ghost->served_level);
  }

  // Grow the cluster online and count the real frames it took.
  const auto joined = cluster.AddServer();
  if (joined.ok()) {
    std::printf("added MDS%u over the wire: %llu frames exchanged\n",
                joined->id,
                static_cast<unsigned long long>(joined->messages));
  }

  // The cluster still serves every file.
  int found = 0;
  for (int i = 0; i < kFiles; ++i) {
    const auto r = cluster.Lookup("/wire/file" + std::to_string(i));
    found += (r.ok() && r->found);
  }
  std::printf("post-join sweep: %d/%d files reachable\n", found, kFiles);
  std::printf("total frames received across servers: %llu\n",
              static_cast<unsigned long long>(cluster.TotalFramesIn()));

  cluster.Stop();
  return 0;
}
