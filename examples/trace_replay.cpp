// Trace replay: drive a metadata cluster with a synthetic HP/INS/RES
// workload and compare schemes side by side.
//
//   $ ./trace_replay [trace] [scheme] [num_mds] [ops]
//     trace  = hp | ins | res            (default hp)
//     scheme = ghba | hba | bfa | hash   (default ghba)
//     num_mds, ops                       (defaults 30, 50000)
//
// Prints the per-level hit distribution, latency summary, and message
// counts — the quantities the paper's evaluation revolves around.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/ghba_cluster.hpp"
#include "core/hash_cluster.hpp"
#include "core/hba_cluster.hpp"
#include "core/simulator.hpp"

using namespace ghba;

int main(int argc, char** argv) {
  const std::string trace_name = argc > 1 ? argv[1] : "hp";
  const std::string scheme = argc > 2 ? argv[2] : "ghba";
  const auto num_mds =
      static_cast<std::uint32_t>(argc > 3 ? std::atoi(argv[3]) : 30);
  const auto ops = static_cast<std::uint64_t>(
      argc > 4 ? std::atoll(argv[4]) : 50000);

  const auto profile_or = ProfileByName(trace_name);
  if (!profile_or.ok()) {
    std::fprintf(stderr, "%s\n", profile_or.status().ToString().c_str());
    return 2;
  }
  WorkloadProfile profile = *profile_or;
  // Keep the example fast: a modest namespace per subtrace.
  profile.total_files = 20000;
  profile.active_files = 6000;
  const std::uint32_t tif = 4;

  ClusterConfig config;
  config.num_mds = num_mds;
  config.max_group_size = 6;
  config.expected_files_per_mds = 2 * profile.total_files * tif / num_mds;
  config.lru_capacity = 2048;
  config.publish_after_mutations = 128;
  config.seed = 7;

  std::unique_ptr<MetadataCluster> cluster;
  if (scheme == "ghba") {
    cluster = std::make_unique<GhbaCluster>(config);
  } else if (scheme == "hba") {
    cluster = std::make_unique<HbaCluster>(config, /*use_lru=*/true);
  } else if (scheme == "bfa") {
    cluster = std::make_unique<HbaCluster>(config, /*use_lru=*/false);
  } else if (scheme == "hash") {
    cluster = std::make_unique<HashPlacementCluster>(config);
  } else {
    std::printf("unknown scheme '%s' (use ghba|hba|bfa|hash)\n",
                scheme.c_str());
    return 1;
  }

  std::printf("replaying %llu %s ops (TIF=%u) against %s with %u MDSs...\n",
              static_cast<unsigned long long>(ops), profile.name.c_str(), tif,
              cluster->SchemeName().c_str(), num_mds);

  IntensifiedTrace trace(profile, tif, config.seed);
  ReplaySimulator sim(*cluster);
  sim.Populate(trace);
  const auto result = sim.Replay(trace, ops, /*checkpoint_every=*/ops / 5);

  std::printf("\n%-12s %-14s %-14s\n", "ops", "avg lat (ms)", "window (ms)");
  for (const auto& cp : result.checkpoints) {
    std::printf("%-12llu %-14.3f %-14.3f\n",
                static_cast<unsigned long long>(cp.ops), cp.avg_latency_ms,
                cp.window_latency_ms);
  }

  const auto& m = cluster->metrics();
  const auto total = m.levels.total();
  std::printf("\nlookups: %llu (%llu not found)\n",
              static_cast<unsigned long long>(result.lookups),
              static_cast<unsigned long long>(result.not_found));
  std::printf("levels:  L1 %.1f%%  L2 %.1f%%  L3 %.1f%%  L4 %.1f%%  miss %.1f%%\n",
              100.0 * m.levels.Fraction(m.levels.l1),
              100.0 * m.levels.Fraction(m.levels.l2),
              100.0 * m.levels.Fraction(m.levels.l3),
              100.0 * m.levels.Fraction(m.levels.l4),
              100.0 * m.levels.Fraction(m.levels.miss));
  std::printf("latency: %s\n", m.lookup_latency_ms.Summary().c_str());
  std::printf("messages: %llu lookup, %llu update (%llu publishes), "
              "false routes: %llu\n",
              static_cast<unsigned long long>(m.lookup_messages),
              static_cast<unsigned long long>(m.update_messages),
              static_cast<unsigned long long>(m.publishes),
              static_cast<unsigned long long>(m.false_routes));
  (void)total;
  return 0;
}
