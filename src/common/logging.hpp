// Minimal leveled logger.
//
// The simulator and the TCP prototype are both chatty at debug level; the
// default level is kWarn so benchmarks stay quiet. Thread-safe (a single
// mutex around the sink) — fine for control-path logging, never used on the
// per-query hot path.
#pragma once

#include <sstream>
#include <string>

namespace ghba {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded cheaply.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogLine(LogLevel level, const char* file, int line, const std::string& msg);
}  // namespace internal

/// Stream-style log statement: GHBA_LOG(kInfo) << "joined group " << g;
#define GHBA_LOG(level_suffix)                                            \
  for (bool ghba_log_once =                                               \
           ::ghba::LogLevel::level_suffix >= ::ghba::GetLogLevel();       \
       ghba_log_once; ghba_log_once = false)                              \
  ::ghba::internal::LogStream(::ghba::LogLevel::level_suffix, __FILE__, __LINE__)

namespace internal {

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogLine(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ghba
