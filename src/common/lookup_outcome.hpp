// The one lookup-result type shared by the simulator and the TCP prototype.
//
// The paper's evaluation is entirely about *where* queries resolve (per-level
// hit ratios, Fig. 13) and what they cost (Figs. 8-10, 14-15). Both stacks —
// the trace-driven simulation (src/core) and the loopback prototype
// (src/rpc) — report the same schema, so Fig. 13-style numbers can be
// produced from either path, and every outcome carries a LookupTrace with
// enough detail to attribute its cost to a hierarchy level.
#pragma once

#include <array>
#include <cstdint>

namespace ghba {

/// Identifier of a metadata server. Dense small integers in the simulator;
/// the TCP prototype maps them to endpoints.
using MdsId = std::uint32_t;
constexpr MdsId kInvalidMds = static_cast<MdsId>(-1);

/// Per-query trace: where the lookup went and what each level cost.
/// Levels are 1-based (L1 = local LRU array .. L4 = global multicast);
/// index `i` of `level_elapsed_ns` is the time attributed to level i+1.
struct LookupTrace {
  std::uint8_t level = 0;  ///< deepest level reached, 1..4 (0 = not run)
  std::array<std::uint64_t, 4> level_elapsed_ns{};  ///< per-level elapsed
  std::uint32_t peers_contacted = 0;  ///< distinct servers messaged
  std::uint32_t retries = 0;          ///< transport-level retransmissions
  bool false_route = false;  ///< a unique hit verified wrong along the way

  std::uint64_t TotalElapsedNs() const {
    std::uint64_t total = 0;
    for (const auto ns : level_elapsed_ns) total += ns;
    return total;
  }
};

/// Outcome of one metadata lookup (simulation or live prototype).
struct LookupOutcome {
  bool found = false;
  MdsId home = kInvalidMds;    ///< home MDS when found
  double latency_ms = 0;       ///< end-to-end operation latency
  int served_level = 0;        ///< 1..4 = L1..L4 (4 also covers true misses)
  std::uint64_t messages = 0;  ///< network messages this lookup caused
  bool from_cache = false;  ///< served by the client's leased lookup cache
  LookupTrace trace;
};

}  // namespace ghba
