// Thread-safe named metrics: counters + lock-striped latency histograms.
//
// One MetricsRegistry is the accounting backbone of the observability layer:
// the simulator's ClusterMetrics is a thin view over a registry, each
// MdsServer owns one for its serving-side counters, and the PrototypeCluster
// client feeds one from its LookupOutcome traces. Snapshot() is cheap and
// safe under concurrent writers: counters are relaxed atomics and each
// histogram is striped across independently locked shards, so writers on
// different threads rarely contend and a reader only ever holds one stripe
// lock at a time.
//
// Handles (Counter / LatencyHistogram) are stable for the registry's
// lifetime: registration hands out pointers into node-based containers that
// are never erased (Reset() zeroes values but keeps registrations).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/histogram.hpp"
#include "common/sync.hpp"

namespace ghba {

/// Point-in-time digest of one histogram, cheap to copy and serialize.
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p99 = 0;

  double mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Value-type snapshot of a whole registry. Map keys are the registered
/// metric names (sorted, so rendering and serialization are deterministic).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramStats> histograms;

  /// Counter value by name, or `fallback` when the name is absent.
  std::uint64_t CounterOr(const std::string& name,
                          std::uint64_t fallback = 0) const {
    const auto it = counters.find(name);
    return it == counters.end() ? fallback : it->second;
  }
};

class MetricsRegistry {
  struct CounterCell {
    std::atomic<std::uint64_t> value{0};
  };

  struct HistogramCell {
    static constexpr std::size_t kStripes = 8;
    struct alignas(64) Stripe {
      mutable Mutex mu{LockRank::kMetricsStripe};
      Histogram hist GHBA_GUARDED_BY(mu);
    };
    Stripe stripes[kStripes];

    void Add(double value);
    Histogram Merged() const;
    void Reset();
  };

 public:
  /// Handle to a named counter. Increment is a relaxed atomic add, so any
  /// thread may bump it without further locking. Implicitly converts to its
  /// current value so call sites read like the plain integers they replace.
  class Counter {
   public:
    Counter() = default;

    void Add(std::uint64_t n) {
      cell_->value.fetch_add(n, std::memory_order_relaxed);
    }
    /// Overwrite the value (tests seeding synthetic metrics). Copy
    /// assignment still rebinds the handle.
    Counter& operator=(std::uint64_t v) {
      cell_->value.store(v, std::memory_order_relaxed);
      return *this;
    }
    Counter& operator+=(std::uint64_t n) {
      Add(n);
      return *this;
    }
    Counter& operator++() {
      Add(1);
      return *this;
    }
    std::uint64_t operator++(int) {
      return cell_->value.fetch_add(1, std::memory_order_relaxed);
    }
    std::uint64_t value() const {
      return cell_->value.load(std::memory_order_relaxed);
    }
    operator std::uint64_t() const { return value(); }  // NOLINT(google-explicit-constructor)

   private:
    friend class MetricsRegistry;
    explicit Counter(CounterCell* cell) : cell_(cell) {}
    CounterCell* cell_ = nullptr;
  };

  /// Handle to a named latency histogram. Add() locks only the stripe the
  /// calling thread hashes to; readers merge all stripes on demand.
  class LatencyHistogram {
   public:
    LatencyHistogram() = default;

    void Add(double value) { cell_->Add(value); }

    std::uint64_t count() const { return cell_->Merged().count(); }
    double sum() const { return cell_->Merged().sum(); }
    double mean() const { return cell_->Merged().mean(); }
    double min() const { return cell_->Merged().min(); }
    double max() const { return cell_->Merged().max(); }
    double Quantile(double q) const { return cell_->Merged().Quantile(q); }
    std::string Summary() const { return cell_->Merged().Summary(); }

    /// Full merged histogram (for callers needing buckets, e.g. Merge).
    Histogram Materialize() const { return cell_->Merged(); }

   private:
    friend class MetricsRegistry;
    explicit LatencyHistogram(HistogramCell* cell) : cell_(cell) {}
    HistogramCell* cell_ = nullptr;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it at zero on
  /// first use. The handle stays valid for the registry's lifetime.
  Counter counter(const std::string& name);

  /// Returns the histogram registered under `name`, creating it empty on
  /// first use. The handle stays valid for the registry's lifetime.
  LatencyHistogram histogram(const std::string& name);

  /// Consistent-enough point-in-time copy of every registered metric.
  /// Counters are read with relaxed loads; histograms merge their stripes.
  MetricsSnapshot Snapshot() const;

  /// Zero every counter and empty every histogram; registrations (and all
  /// outstanding handles) remain valid.
  void Reset();

 private:
  // Ranked above the stripes: Snapshot() merges histograms under mu_.
  mutable Mutex mu_{LockRank::kMetricsRegistry};
  // node-based maps: cell addresses are stable across inserts.
  std::map<std::string, std::unique_ptr<CounterCell>> counters_
      GHBA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<HistogramCell>> histograms_
      GHBA_GUARDED_BY(mu_);
};

}  // namespace ghba
