#include "common/metrics_registry.hpp"

#include <functional>
#include <thread>

namespace ghba {

namespace {

std::size_t StripeForThisThread(std::size_t stripe_count) {
  // Hash the thread id once per call; stripes only need to spread load, not
  // be perfectly balanced.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
         stripe_count;
}

}  // namespace

void MetricsRegistry::HistogramCell::Add(double value) {
  Stripe& stripe = stripes[StripeForThisThread(kStripes)];
  MutexLock lock(&stripe.mu);
  stripe.hist.Add(value);
}

Histogram MetricsRegistry::HistogramCell::Merged() const {
  Histogram merged;
  for (const Stripe& stripe : stripes) {
    MutexLock lock(&stripe.mu);
    merged.Merge(stripe.hist);
  }
  return merged;
}

void MetricsRegistry::HistogramCell::Reset() {
  for (Stripe& stripe : stripes) {
    MutexLock lock(&stripe.mu);
    stripe.hist.Reset();
  }
}

MetricsRegistry::Counter MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& cell = counters_[name];
  if (!cell) cell = std::make_unique<CounterCell>();
  return Counter(cell.get());
}

MetricsRegistry::LatencyHistogram MetricsRegistry::histogram(
    const std::string& name) {
  MutexLock lock(&mu_);
  auto& cell = histograms_[name];
  if (!cell) cell = std::make_unique<HistogramCell>();
  return LatencyHistogram(cell.get());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(&mu_);
  for (const auto& [name, cell] : counters_) {
    snap.counters[name] = cell->value.load(std::memory_order_relaxed);
  }
  for (const auto& [name, cell] : histograms_) {
    const Histogram merged = cell->Merged();
    HistogramStats stats;
    stats.count = merged.count();
    stats.sum = merged.sum();
    stats.min = merged.min();
    stats.max = merged.max();
    stats.p50 = merged.Quantile(0.5);
    stats.p99 = merged.Quantile(0.99);
    snap.histograms[name] = stats;
  }
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, cell] : counters_) {
    (void)name;
    cell->value.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : histograms_) {
    (void)name;
    cell->Reset();
  }
}

}  // namespace ghba
