// Lightweight status / result types used across the library.
//
// We deliberately avoid exceptions on hot paths (metadata lookups run at
// memory speed); fallible operations return Status or Result<T> instead.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace ghba {

/// Error categories used throughout the library.
enum class StatusCode {
  kOk = 0,
  kNotFound,        ///< Requested item does not exist.
  kAlreadyExists,   ///< Insertion target already present.
  kInvalidArgument, ///< Caller violated an API precondition.
  kCapacity,        ///< A size/capacity bound would be exceeded.
  kUnavailable,     ///< Target node is down or unreachable.
  kCorruption,      ///< Wire / serialized data failed validation.
  kInternal,        ///< Invariant violation inside the library.
  kTimedOut,        ///< A deadline expired before the operation finished.
  kRetryAfter,      ///< Target is shedding load; retry after a backoff.
};

/// Human-readable name for a StatusCode.
constexpr const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kCapacity: return "CAPACITY";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kTimedOut: return "TIMED_OUT";
    case StatusCode::kRetryAfter: return "RETRY_AFTER";
  }
  return "UNKNOWN";
}

/// A cheap, value-semantic status: a code plus an optional message.
/// The OK status carries no allocation.
///
/// [[nodiscard]] on the class makes every function returning Status warn
/// (error under -Werror) when the result is dropped: a silently ignored
/// failure — a WAL append that didn't happen, an ack for a mutation that
/// was rolled back — voids the crash-safety guarantees the storage engine
/// provides. Deliberate discards must be spelled `(void)call()` WITH a
/// comment on the same or preceding line saying why ignoring is sound;
/// the `ghba-unchecked-status` check (tools/tidy/) enforces the comment.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status NotFound(std::string msg = "") {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status AlreadyExists(std::string msg = "") {
    return {StatusCode::kAlreadyExists, std::move(msg)};
  }
  static Status InvalidArgument(std::string msg = "") {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status Capacity(std::string msg = "") {
    return {StatusCode::kCapacity, std::move(msg)};
  }
  static Status Unavailable(std::string msg = "") {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
  static Status Corruption(std::string msg = "") {
    return {StatusCode::kCorruption, std::move(msg)};
  }
  static Status Internal(std::string msg = "") {
    return {StatusCode::kInternal, std::move(msg)};
  }
  static Status TimedOut(std::string msg = "") {
    return {StatusCode::kTimedOut, std::move(msg)};
  }
  static Status RetryAfter(std::string msg = "") {
    return {StatusCode::kRetryAfter, std::move(msg)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or a non-OK Status (std::expected stand-in).
/// [[nodiscard]] for the same reason as Status: dropping one drops an
/// error with it.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(state_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  /// The contained status; OK when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(state_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> state_;
};

}  // namespace ghba
