// Zipfian sampler used by the synthetic trace generators.
//
// File-access popularity in the HP/INS/RES traces is highly skewed; we model
// it with a Zipf(s) distribution over ranks 1..n. The sampler uses Hörmann's
// rejection-inversion method, which is O(1) per sample and supports very
// large n (hundreds of millions of files) without precomputing tables.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace ghba {

/// Samples ranks in [1, n] with P(rank = k) proportional to k^(-s).
/// s >= 0 (s == 0 degenerates to uniform; handled exactly).
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  /// Draw one rank in [1, n].
  std::uint64_t Sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;       // H(1.5) - 1
  double h_n_;        // H(n + 0.5)
  double one_minus_s_;
};

}  // namespace ghba
