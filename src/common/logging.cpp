#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

#include "common/sync.hpp"

namespace ghba {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Guards the stderr sink: one log line reaches the stream atomically.
// Lowest rank: logging happens under arbitrary locks, and nothing may be
// acquired while a line is being written.
Mutex g_sink_mutex{LockRank::kLogging};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}

// Trim the path down to the basename for compact log lines.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

void LogLine(LogLevel level, const char* file, int line, const std::string& msg) {
  if (level < GetLogLevel()) return;
  MutexLock lock(&g_sink_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file), line,
               msg.c_str());
}

}  // namespace internal
}  // namespace ghba
