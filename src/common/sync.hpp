// Clang thread-safety annotations, annotated synchronization wrappers, and
// the lock-rank discipline (compile-time + optional runtime "lockdep").
//
// Every mutex-guarded structure in the library declares *at compile time*
// which lock guards which field (GHBA_GUARDED_BY) and which capability each
// function needs (GHBA_REQUIRES). Building with Clang and -Wthread-safety
// then proves the locking discipline on every path — including paths no
// test happens to exercise. On non-Clang compilers every macro expands to
// nothing and Mutex/MutexLock behave exactly like std::mutex/lock_guard.
//
// On top of the per-mutex discipline sits an *inter*-mutex discipline:
// every Mutex carries a mandatory static LockRank, and the global rule is
//
//     a thread may only acquire a Mutex whose rank is strictly LOWER
//     than the rank of every Mutex it already holds.
//
// Ranks therefore read top-down: the highest rank (kCluster) is always
// outermost, the lowest (kLogging) is a leaf that may be taken while
// holding anything but can nest nothing inside itself. Because the order
// is total and acquisition is strictly decreasing, no cycle can ever form
// across threads — an A->B order on one thread and a B->A order on another
// necessarily contains one rank-increasing acquisition, which is refused.
//
// The rule is enforced twice:
//   * statically, by the `ghba-mutex-rank` check in tools/tidy/ (every
//     Mutex member must be initialized from a LockRank enumerator, and
//     lexically nested MutexLock scopes whose ranks do not strictly
//     decrease are compile-time diagnostics), and
//   * dynamically, when built with -DGHBA_LOCKDEP=1 (cmake -DGHBA_LOCKDEP=ON):
//     every Lock/Unlock maintains a per-thread held-lock stack, records the
//     cross-thread acquisition graph, and aborts with both acquisition
//     backtraces on the first rank inversion — *before* blocking on the
//     mutex, so a would-be deadlock dies loudly instead of hanging.
// With GHBA_LOCKDEP off (the default) the validator compiles away entirely:
// Mutex is layout-identical to std::mutex (static_assert'ed below).
//
// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the
// attribute semantics. The macro set follows the naming in that document.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GHBA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GHBA_THREAD_ANNOTATION
#define GHBA_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a capability (lockable) type.
#define GHBA_CAPABILITY(x) GHBA_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define GHBA_SCOPED_CAPABILITY GHBA_THREAD_ANNOTATION(scoped_lockable)

/// Field is only read/written while holding the given capability.
#define GHBA_GUARDED_BY(x) GHBA_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data is only touched while holding the given capability.
#define GHBA_PT_GUARDED_BY(x) GHBA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (and does not release it).
#define GHBA_REQUIRES(...) \
  GHBA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability (must not be held on entry).
#define GHBA_ACQUIRE(...) \
  GHBA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define GHBA_RELEASE(...) \
  GHBA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability if it returns true.
#define GHBA_TRY_ACQUIRE(...) \
  GHBA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention).
#define GHBA_EXCLUDES(...) GHBA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define GHBA_RETURN_CAPABILITY(x) GHBA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch; use sparingly and say why at the call site.
#define GHBA_NO_THREAD_SAFETY_ANALYSIS \
  GHBA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ghba {

/// The global lock order, lowest (innermost leaf) to highest (outermost).
/// A thread may only acquire a Mutex ranked strictly below everything it
/// already holds, so acquisition chains walk this table top-down:
///
///   rank              instance(s)                        holder
///   ----------------  ---------------------------------  ------------------
///   kClient           Client::mu_                        front-tier facade
///   kCluster          PrototypeCluster::mu_              orchestrator/client
///   kServerTxn        MdsServer txn manager              2PC intent locks
///   kServerWal        MdsServer::wal_mu_                 durable engine
///   kServerFilter     MdsServer::filter_mu_              local filter
///   kServerSeg        MdsServer::seg_mu_                 segment replicas
///   kServerShard      MdsServer::Shard::mu (per shard)   worker task queues
///   kServerMaint      MdsServer::maint_mu_               maintenance inputs
///   kServerOut        MdsServer::out_mu_                 completion outbox
///   kServerView       MdsServer::view_mu_                membership view
///   kServerErr        MdsServer::err_mu_                 last_error_
///   kFaultInjector    FaultInjector::mu_                 fault decisions
///   kHealth           PeerHealthTracker::mu_             peer states
///   kMetricsRegistry  MetricsRegistry::mu_               metric name maps
///   kMetricsStripe    HistogramCell::Stripe::mu (x8)     histogram stripes
///   kLogging          logging.cpp g_sink_mutex           stderr sink
///
/// Real chains this order admits (all observed in the code):
///   client -> cluster                 (facade ops call into the cluster)
///   cluster -> {any server lock, health, injector, metrics, logging}
///   txn -> wal                        (prepare journals under intent lock)
///   wal -> filter / wal -> seg        (mutation journaling + checkpoint)
///   shard -> injector                 (stall probe inside the worker wait)
///   registry -> stripe                (Snapshot merging histograms)
///   anything -> logging               (GHBA_LOG under any lock)
enum class LockRank : std::uint8_t {
  kLogging = 0,
  kMetricsStripe = 1,
  kMetricsRegistry = 2,
  kHealth = 3,
  kFaultInjector = 4,
  kServerErr = 5,
  kServerView = 6,
  kServerOut = 7,
  kServerMaint = 8,
  kServerShard = 9,
  kServerSeg = 10,
  kServerFilter = 11,
  kServerWal = 12,
  kServerTxn = 13,
  kCluster = 14,
  kClient = 15,
};

/// Number of distinct ranks (size of the lockdep acquisition graph).
inline constexpr std::size_t kLockRankCount = 16;

/// Human-readable name for a LockRank (diagnostics).
constexpr const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kLogging: return "logging";
    case LockRank::kMetricsStripe: return "metrics-stripe";
    case LockRank::kMetricsRegistry: return "metrics-registry";
    case LockRank::kHealth: return "health";
    case LockRank::kFaultInjector: return "fault-injector";
    case LockRank::kServerErr: return "server-err";
    case LockRank::kServerView: return "server-view";
    case LockRank::kServerOut: return "server-out";
    case LockRank::kServerMaint: return "server-maint";
    case LockRank::kServerShard: return "server-shard";
    case LockRank::kServerSeg: return "server-seg";
    case LockRank::kServerFilter: return "server-filter";
    case LockRank::kServerWal: return "server-wal";
    case LockRank::kServerTxn: return "server-txn";
    case LockRank::kCluster: return "cluster";
    case LockRank::kClient: return "client";
  }
  return "unknown";
}

#if defined(GHBA_LOCKDEP) && GHBA_LOCKDEP

namespace lockdep {

/// Validate the acquisition of (`mu`, `rank`) against this thread's held
/// stack and record the rank edge in the global acquisition graph. Called
/// BEFORE blocking on the mutex: a rank inversion aborts (with the current
/// backtrace, the conflicting lock's acquisition backtrace, and — when the
/// opposite order was ever observed on any thread — that order's recorded
/// backtraces) instead of deadlocking.
void BeforeAcquire(const void* mu, LockRank rank);

/// Push (`mu`, `rank`) onto this thread's held stack (after the lock).
void AfterAcquire(const void* mu, LockRank rank);

/// Remove `mu` from this thread's held stack (out-of-order safe: waits on
/// condition_variable_any unlock/relock through the BasicLockable face).
void OnRelease(const void* mu);

/// Number of locks the calling thread currently holds (test hook).
std::size_t HeldCount();

}  // namespace lockdep

#endif  // GHBA_LOCKDEP

/// std::mutex with capability annotations and a mandatory static LockRank.
/// Drop-in for the plain type — same cost in release builds — but fields
/// can be GHBA_GUARDED_BY it, functions can GHBA_REQUIRES it, and (under
/// GHBA_LOCKDEP) every acquisition is checked against the global order.
class GHBA_CAPABILITY("mutex") Mutex {
 public:
  /// The rank is mandatory: there is deliberately no default constructor,
  /// so every mutex in the tree documents its place in the global order at
  /// the point of declaration. `ghba-mutex-rank` additionally requires the
  /// argument to be a literal LockRank enumerator.
  explicit Mutex(LockRank rank)
#if defined(GHBA_LOCKDEP) && GHBA_LOCKDEP
      : rank_(rank) {
  }
#else
  {
    (void)rank;
  }
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GHBA_ACQUIRE() {
#if defined(GHBA_LOCKDEP) && GHBA_LOCKDEP
    lockdep::BeforeAcquire(this, rank_);
    mu_.lock();
    lockdep::AfterAcquire(this, rank_);
#else
    mu_.lock();
#endif
  }
  void Unlock() GHBA_RELEASE() {
#if defined(GHBA_LOCKDEP) && GHBA_LOCKDEP
    lockdep::OnRelease(this);
#endif
    mu_.unlock();
  }
  bool TryLock() GHBA_TRY_ACQUIRE(true) {
#if defined(GHBA_LOCKDEP) && GHBA_LOCKDEP
    // A try-lock cannot deadlock by itself, but an out-of-rank try-lock is
    // still a discipline violation here: validate exactly like Lock().
    lockdep::BeforeAcquire(this, rank_);
    if (!mu_.try_lock()) return false;
    lockdep::AfterAcquire(this, rank_);
    return true;
#else
    return mu_.try_lock();
#endif
  }

  // BasicLockable spelling so std::condition_variable_any can wait on a
  // Mutex directly. The wait's internal unlock/relock is invisible to the
  // analysis, which is exactly right: the capability is held before and
  // after, and the waker re-establishes the invariants before notifying.
  // Lockdep *does* see it (pop on unlock, re-validate on relock), which is
  // also right: whatever the thread still holds bounds the relock.
  void lock() GHBA_ACQUIRE() { Lock(); }
  void unlock() GHBA_RELEASE() { Unlock(); }

  /// For interop with std::condition_variable_any and std::scoped_lock.
  /// NB: acquisitions through the native handle bypass lockdep; keep it to
  /// call sites that never hold a second lock.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
#if defined(GHBA_LOCKDEP) && GHBA_LOCKDEP
  LockRank rank_;
#endif
};

#if !defined(GHBA_LOCKDEP) || !GHBA_LOCKDEP
// The whole validator must compile to nothing when off: a ranked Mutex is
// layout-identical to the raw std::mutex it wraps.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "Mutex must carry zero lockdep overhead when GHBA_LOCKDEP "
              "is off");
#endif

/// RAII lock for Mutex, annotated so the analysis tracks the scope:
///   MutexLock lock(&mu_);   // mu_ held until end of scope
class GHBA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) GHBA_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() GHBA_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// A "thread role" capability (Clang's role idiom): state owned by exactly
/// one thread — e.g. an event loop — is GHBA_GUARDED_BY the role, functions
/// that touch it GHBA_REQUIRES it, and the owning thread Adopt()s the role
/// once at the top of its run function. There is no lock at runtime; the
/// analysis simply refuses any access from a function that cannot prove it
/// runs on the owning thread.
class GHBA_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void Adopt() GHBA_ACQUIRE() {}
  void Drop() GHBA_RELEASE() {}
};

/// Scoped adoption of a ThreadRole for the duration of a thread function.
class GHBA_SCOPED_CAPABILITY ThreadRoleGuard {
 public:
  explicit ThreadRoleGuard(ThreadRole* role) GHBA_ACQUIRE(role)
      : role_(role) {
    role_->Adopt();
  }
  ~ThreadRoleGuard() GHBA_RELEASE() { role_->Drop(); }

  ThreadRoleGuard(const ThreadRoleGuard&) = delete;
  ThreadRoleGuard& operator=(const ThreadRoleGuard&) = delete;

 private:
  ThreadRole* const role_;
};

}  // namespace ghba
