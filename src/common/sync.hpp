// Clang thread-safety annotations and annotated synchronization wrappers.
//
// Every mutex-guarded structure in the library declares *at compile time*
// which lock guards which field (GHBA_GUARDED_BY) and which capability each
// function needs (GHBA_REQUIRES). Building with Clang and -Wthread-safety
// then proves the locking discipline on every path — including paths no
// test happens to exercise. On non-Clang compilers every macro expands to
// nothing and Mutex/MutexLock behave exactly like std::mutex/lock_guard.
//
// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the
// attribute semantics. The macro set follows the naming in that document.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GHBA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GHBA_THREAD_ANNOTATION
#define GHBA_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a capability (lockable) type.
#define GHBA_CAPABILITY(x) GHBA_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define GHBA_SCOPED_CAPABILITY GHBA_THREAD_ANNOTATION(scoped_lockable)

/// Field is only read/written while holding the given capability.
#define GHBA_GUARDED_BY(x) GHBA_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data is only touched while holding the given capability.
#define GHBA_PT_GUARDED_BY(x) GHBA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (and does not release it).
#define GHBA_REQUIRES(...) \
  GHBA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability (must not be held on entry).
#define GHBA_ACQUIRE(...) \
  GHBA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define GHBA_RELEASE(...) \
  GHBA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability if it returns true.
#define GHBA_TRY_ACQUIRE(...) \
  GHBA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention).
#define GHBA_EXCLUDES(...) GHBA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define GHBA_RETURN_CAPABILITY(x) GHBA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch; use sparingly and say why at the call site.
#define GHBA_NO_THREAD_SAFETY_ANALYSIS \
  GHBA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ghba {

/// std::mutex with capability annotations. Drop-in for the plain type:
/// same cost, but fields can be GHBA_GUARDED_BY it and functions can
/// GHBA_REQUIRES it.
class GHBA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GHBA_ACQUIRE() { mu_.lock(); }
  void Unlock() GHBA_RELEASE() { mu_.unlock(); }
  bool TryLock() GHBA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling so std::condition_variable_any can wait on a
  // Mutex directly. The wait's internal unlock/relock is invisible to the
  // analysis, which is exactly right: the capability is held before and
  // after, and the waker re-establishes the invariants before notifying.
  void lock() GHBA_ACQUIRE() { mu_.lock(); }
  void unlock() GHBA_RELEASE() { mu_.unlock(); }

  /// For interop with std::condition_variable_any and std::scoped_lock.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex, annotated so the analysis tracks the scope:
///   MutexLock lock(&mu_);   // mu_ held until end of scope
class GHBA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) GHBA_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() GHBA_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// A "thread role" capability (Clang's role idiom): state owned by exactly
/// one thread — e.g. an event loop — is GHBA_GUARDED_BY the role, functions
/// that touch it GHBA_REQUIRES it, and the owning thread Adopt()s the role
/// once at the top of its run function. There is no lock at runtime; the
/// analysis simply refuses any access from a function that cannot prove it
/// runs on the owning thread.
class GHBA_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void Adopt() GHBA_ACQUIRE() {}
  void Drop() GHBA_RELEASE() {}
};

/// Scoped adoption of a ThreadRole for the duration of a thread function.
class GHBA_SCOPED_CAPABILITY ThreadRoleGuard {
 public:
  explicit ThreadRoleGuard(ThreadRole* role) GHBA_ACQUIRE(role)
      : role_(role) {
    role_->Adopt();
  }
  ~ThreadRoleGuard() GHBA_RELEASE() { role_->Drop(); }

  ThreadRoleGuard(const ThreadRoleGuard&) = delete;
  ThreadRoleGuard& operator=(const ThreadRoleGuard&) = delete;

 private:
  ThreadRole* const role_;
};

}  // namespace ghba
