// Runtime lock-rank validator ("lockdep"), compiled only under
// -DGHBA_LOCKDEP=1 (cmake -DGHBA_LOCKDEP=ON).
//
// Per-thread state: the stack of currently held (mutex, rank) pairs plus
// the backtrace captured at each acquisition. Global state: the rank-level
// acquisition graph — for every ordered pair of ranks (A, B) observed as
// "B acquired while holding A" on ANY thread, the first occurrence's two
// backtraces. A violation report therefore shows three things: where the
// offending acquisition is happening, where the lock blocking it was
// taken, and — for cross-thread A/B-B/A cycles — where the opposite order
// was first established.
//
// The validator aborts BEFORE blocking on the mutex, so the process dies
// with a report instead of deadlocking: in an A/B-B/A race, whichever
// thread attempts the rank-increasing half is refused while the other is
// still merely blocked.

#include "common/sync.hpp"

#if defined(GHBA_LOCKDEP) && GHBA_LOCKDEP

#include <cstdio>
#include <cstdlib>
#include <vector>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define GHBA_LOCKDEP_HAVE_BACKTRACE 1
#endif
#endif

namespace ghba {
namespace lockdep {
namespace {

constexpr int kMaxFrames = 24;

struct Backtrace {
  void* frames[kMaxFrames];
  int depth = 0;

  void Capture() {
#if defined(GHBA_LOCKDEP_HAVE_BACKTRACE)
    depth = ::backtrace(frames, kMaxFrames);
#else
    depth = 0;
#endif
  }

  void Dump() const {
#if defined(GHBA_LOCKDEP_HAVE_BACKTRACE)
    if (depth > 0) {
      ::backtrace_symbols_fd(const_cast<void* const*>(frames), depth, 2);
      return;
    }
#endif
    std::fprintf(stderr, "    <backtrace unavailable>\n");
  }
};

struct HeldLock {
  const void* mu = nullptr;
  LockRank rank = LockRank::kLogging;
  Backtrace acquired_at;
};

// The held stack is strictly rank-decreasing by construction (the rule
// refuses any non-decreasing acquisition), and out-of-order releases keep
// it sorted, so the minimum held rank is always the back element.
std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

/// One edge of the global acquisition graph: "`to` was acquired while
/// holding `from`", with the first-seen backtraces of both acquisitions.
struct RankEdge {
  bool seen = false;
  Backtrace holder_at;   // where the `from`-ranked lock had been taken
  Backtrace acquire_at;  // where the `to`-ranked lock was then taken
};

// Graph state has its own raw std::mutex — it must not be a ghba::Mutex,
// which would recurse into the validator.
std::mutex g_graph_mu;
RankEdge g_edges[kLockRankCount][kLockRankCount];

void RecordEdge(const HeldLock& holder, LockRank rank,
                const Backtrace& acquire_at) {
  std::lock_guard<std::mutex> lock(g_graph_mu);
  RankEdge& edge =
      g_edges[static_cast<std::size_t>(holder.rank)][static_cast<std::size_t>(
          rank)];
  if (edge.seen) return;
  edge.seen = true;
  edge.holder_at = holder.acquired_at;
  edge.acquire_at = acquire_at;
}

/// Copy of the opposite-order edge (`rank` -> `holder`), if any thread ever
/// established it — the smoking gun for an A/B-B/A cycle.
bool OppositeOrder(LockRank holder, LockRank rank, RankEdge* out) {
  std::lock_guard<std::mutex> lock(g_graph_mu);
  const RankEdge& edge =
      g_edges[static_cast<std::size_t>(rank)][static_cast<std::size_t>(
          holder)];
  if (!edge.seen) return false;
  *out = edge;
  return true;
}

[[noreturn]] void Die(const void* mu, LockRank rank,
                      const Backtrace& acquire_at) {
  const std::vector<HeldLock>& held = HeldStack();
  const HeldLock& conflict = held.back();
  std::fprintf(stderr,
               "\n=== lockdep: lock rank inversion ===\n"
               "thread attempts to acquire %s-ranked mutex %p while "
               "holding %s-ranked mutex %p\n"
               "(rule: a new lock must rank strictly below every held "
               "lock; see LockRank in src/common/sync.hpp)\n",
               LockRankName(rank), mu, LockRankName(conflict.rank),
               conflict.mu);
  std::fprintf(stderr, "held locks (outermost first):\n");
  for (const HeldLock& h : held) {
    std::fprintf(stderr, "  %s (%p)\n", LockRankName(h.rank), h.mu);
  }
  std::fprintf(stderr, "\noffending acquisition at:\n");
  acquire_at.Dump();
  std::fprintf(stderr, "\nconflicting %s lock was acquired at:\n",
               LockRankName(conflict.rank));
  conflict.acquired_at.Dump();
  RankEdge opposite;
  if (OppositeOrder(conflict.rank, rank, &opposite)) {
    std::fprintf(stderr,
                 "\ncross-thread cycle: the opposite order (%s before %s) "
                 "was established earlier —\n  %s held at:\n",
                 LockRankName(rank), LockRankName(conflict.rank),
                 LockRankName(rank));
    opposite.holder_at.Dump();
    std::fprintf(stderr, "  then %s acquired at:\n",
                 LockRankName(conflict.rank));
    opposite.acquire_at.Dump();
  }
  std::fprintf(stderr, "=== lockdep: aborting ===\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void BeforeAcquire(const void* mu, LockRank rank) {
  std::vector<HeldLock>& held = HeldStack();
  if (held.empty()) return;
  Backtrace here;
  here.Capture();
  // Record the edge first so a concurrent inverted attempt on another
  // thread can name this site in its report.
  RecordEdge(held.back(), rank, here);
  if (rank >= held.back().rank) Die(mu, rank, here);
}

void AfterAcquire(const void* mu, LockRank rank) {
  std::vector<HeldLock>& held = HeldStack();
  HeldLock entry;
  entry.mu = mu;
  entry.rank = rank;
  entry.acquired_at.Capture();
  held.push_back(entry);
}

void OnRelease(const void* mu) {
  std::vector<HeldLock>& held = HeldStack();
  // Search from the top: releases are almost always LIFO, but a
  // condition_variable_any wait can interleave unlocks out of order.
  for (std::size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].mu == mu) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
  // Releasing a lock lockdep never saw acquired: a bypass through
  // Mutex::native() or corrupted bookkeeping. Both are bugs.
  std::fprintf(stderr,
               "=== lockdep: release of un-tracked mutex %p (acquired via "
               "native()?) ===\n",
               mu);
  std::fflush(stderr);
  std::abort();
}

std::size_t HeldCount() { return HeldStack().size(); }

}  // namespace lockdep
}  // namespace ghba

#endif  // GHBA_LOCKDEP
