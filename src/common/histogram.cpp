#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ghba {

namespace {
// Buckets grow geometrically by ~10% per step: bucket i covers
// (1.1^(i-1), 1.1^i]. Bucket 0 covers (-inf, 1]. 256 buckets reach ~4e10.
constexpr double kGrowth = 1.1;
constexpr std::size_t kNumBuckets = 256;
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

std::size_t Histogram::BucketFor(double value) {
  if (value <= 1.0) return 0;
  const auto idx =
      static_cast<std::size_t>(std::ceil(std::log(value) / std::log(kGrowth)));
  return std::min(idx, kNumBuckets - 1);
}

double Histogram::BucketUpperBound(std::size_t bucket) {
  return std::pow(kGrowth, static_cast<double>(bucket));
}

void Histogram::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  count_ = 0;
  sum_ = min_ = max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3f p50=%.3f p99=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), mean(), Quantile(0.5),
                Quantile(0.99), max());
  return buf;
}

}  // namespace ghba
