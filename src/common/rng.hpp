// Deterministic, fast pseudo-random generators for simulation and tests.
//
// Simulations must be reproducible run-to-run, so every stochastic component
// takes an explicit seed; nothing reads global entropy. Xoshiro256** is the
// workhorse (fast, high quality); SplitMix64 seeds it and doubles as a
// cheap stateless mixer.
#pragma once

#include <cstdint>
#include <limits>

namespace ghba {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Also a good one-shot integer mixer.
std::uint64_t SplitMix64(std::uint64_t& state);

/// Stateless finalizer form of SplitMix64 (mix a value, no sequence).
std::uint64_t Mix64(std::uint64_t x);

/// Xoshiro256** PRNG. Satisfies UniformRandomBitGenerator, usable with
/// <random> distributions, but the helpers below avoid libstdc++'s
/// comparatively slow distribution objects on hot simulation paths.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  /// Fork an independent stream (for per-component RNGs).
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace ghba
