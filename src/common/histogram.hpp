// Streaming latency/size statistics.
//
// The evaluation reports averages and distribution tails for query latency,
// migration traffic and update cost. Histogram keeps exact count/mean/min/
// max plus an exponential-bucket histogram for quantile estimates, in O(1)
// memory regardless of sample count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ghba {

class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Approximate quantile in [0,1] via the exponential bucket boundaries.
  double Quantile(double q) const;

  /// Short human-readable summary: count/mean/p50/p99/max.
  std::string Summary() const;

 private:
  static std::size_t BucketFor(double value);
  static double BucketUpperBound(std::size_t bucket);

  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<std::uint64_t> buckets_;
};

}  // namespace ghba
