#include "common/zipf.hpp"

#include <cassert>
#include <cmath>

namespace ghba {

// Rejection-inversion sampling after W. Hörmann & G. Derflinger,
// "Rejection-inversion to generate variates from monotone discrete
// distributions" (1996), as popularised by the Apache Commons RNG
// RejectionInversionZipfSampler.

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  one_minus_s_ = 1.0 - s_;
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
}

double ZipfSampler::H(double x) const {
  // Integral of x^-s: x^(1-s)/(1-s), with the s == 1 limit log(x).
  if (s_ == 1.0) return std::log(x);
  return std::pow(x, one_minus_s_) / one_minus_s_;
}

double ZipfSampler::HInverse(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(x * one_minus_s_, 1.0 / one_minus_s_);
}

std::uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  if (s_ == 0.0) return 1 + rng.NextBounded(n_);
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    // Accept if u >= H(k + 0.5) - k^-s  (the hat touches the histogram).
    if (u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return k;
    }
  }
}

}  // namespace ghba
