// Count-min sketch: fixed-memory frequency estimation over a key stream.
//
// The client front tier feeds every lookup path through one of these to
// spot flash-crowd keys without keeping a per-key table: d rows of w
// counters, each row indexed by an independent hash, estimate = min over
// rows. The estimate never undercounts; it overcounts by at most eps * N
// (N = stream length since the last decay) with probability >= 1 - delta,
// where eps = e / w and delta = e^-d (Cormode & Muthukrishnan 2005).
// Periodic `Decay()` halves every counter so a key that was hot an hour
// ago does not stay "hot" forever — the sketch tracks the recent stream.
//
// Not thread-safe; each client serializes access under its own lock.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <vector>

#include "hash/murmur3.hpp"

namespace ghba {

class CountMinSketch {
 public:
  /// `width` counters per row, `depth` rows. Sensible defaults for a
  /// client tracking a few thousand distinct paths: width 1024 gives
  /// eps ~= 0.27%, depth 4 gives delta ~= 1.8%.
  explicit CountMinSketch(std::uint32_t width = 1024, std::uint32_t depth = 4,
                          std::uint64_t seed = 0)
      : width_(std::max<std::uint32_t>(width, 1)),
        depth_(std::max<std::uint32_t>(depth, 1)),
        seed_(seed),
        rows_(static_cast<std::size_t>(width_) * depth_, 0) {}

  std::uint32_t width() const { return width_; }
  std::uint32_t depth() const { return depth_; }
  /// Stream length folded in since construction / the last Decay().
  std::uint64_t total() const { return total_; }
  std::size_t MemoryBytes() const { return rows_.size() * sizeof(rows_[0]); }

  /// Count one occurrence of `key`; returns the new (post-add) estimate.
  std::uint64_t Add(std::string_view key) {
    ++total_;
    std::uint64_t est = UINT64_MAX;
    for (std::uint32_t d = 0; d < depth_; ++d) {
      std::uint64_t& cell = rows_[Slot(key, d)];
      // Saturate instead of wrapping: a wrapped counter would turn the
      // hottest key in the stream into an apparently cold one.
      if (cell != UINT64_MAX) ++cell;
      est = std::min(est, cell);
    }
    return est;
  }

  /// Point estimate for `key`: >= true count, <= true count + eps * total.
  std::uint64_t Estimate(std::string_view key) const {
    std::uint64_t est = UINT64_MAX;
    for (std::uint32_t d = 0; d < depth_; ++d) {
      est = std::min(est, rows_[Slot(key, d)]);
    }
    return est;
  }

  /// Exponential aging: halve every counter (and the stream total). Called
  /// on a period; two half-lives after a flash crowd ends its key reads as
  /// a quarter of its peak, so the hot set follows the workload.
  void Decay() {
    for (auto& cell : rows_) cell >>= 1;
    total_ >>= 1;
  }

  void Clear() {
    std::fill(rows_.begin(), rows_.end(), 0);
    total_ = 0;
  }

 private:
  std::size_t Slot(std::string_view key, std::uint32_t row) const {
    // One 128-bit digest per row, decorrelated by the row index folded
    // into the seed; rows must be independent for the min() bound.
    const Hash128 d = Murmur3_128(key, seed_ + 0x9e3779b97f4a7c15ULL * (row + 1));
    return static_cast<std::size_t>(row) * width_ +
           static_cast<std::size_t>(d.lo % width_);
  }

  std::uint32_t width_;
  std::uint32_t depth_;
  std::uint64_t seed_;
  std::vector<std::uint64_t> rows_;
  std::uint64_t total_ = 0;
};

}  // namespace ghba
