#include "common/bytes.hpp"

#include <array>

namespace ghba {

void ByteWriter::PutVarint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::PutBytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

Result<std::uint8_t> ByteReader::GetU8() { return GetLittleEndian<std::uint8_t>(); }
Result<std::uint16_t> ByteReader::GetU16() { return GetLittleEndian<std::uint16_t>(); }
Result<std::uint32_t> ByteReader::GetU32() { return GetLittleEndian<std::uint32_t>(); }
Result<std::uint64_t> ByteReader::GetU64() { return GetLittleEndian<std::uint64_t>(); }

Result<std::int64_t> ByteReader::GetI64() {
  auto v = GetU64();
  if (!v.ok()) return v.status();
  return static_cast<std::int64_t>(*v);
}

Result<double> ByteReader::GetDouble() {
  auto bits = GetU64();
  if (!bits.ok()) return bits.status();
  double v;
  std::uint64_t raw = *bits;
  std::memcpy(&v, &raw, sizeof(v));
  return v;
}

Result<std::uint64_t> ByteReader::GetVarint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) return Status::Corruption("truncated varint");
    if (shift >= 64) return Status::Corruption("varint overflow");
    const std::uint8_t byte = data_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

Result<std::string> ByteReader::GetString() {
  auto len = GetVarint();
  if (!len.ok()) return len.status();
  if (remaining() < *len) return Status::Corruption("truncated string");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return s;
}

Result<std::vector<std::uint8_t>> ByteReader::GetBytes(std::size_t n) {
  if (remaining() < n) return Status::Corruption("truncated bytes");
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::uint32_t Crc32(const std::uint8_t* data, std::size_t len) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ghba
