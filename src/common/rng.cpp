#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace ghba {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Mix64(std::uint64_t x) {
  std::uint64_t state = x;
  return SplitMix64(state);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four words from SplitMix64 per Blackman/Vigna's advice; a
  // zero-everywhere state is impossible this way.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace ghba
