// Byte-buffer serialization used by the TCP prototype and replica shipping.
//
// Fixed-width integers are encoded little-endian; unsigned varints use
// LEB128. Readers never trust wire data: every accessor checks bounds and
// reports kCorruption instead of reading past the end.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace ghba {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `len` bytes. The socket
/// layer stamps every frame with it so mangled or desynchronized streams
/// are detected at the framing layer instead of reaching the decoders.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t len);

/// Append-only byte sink for message encoding.
class ByteWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(v); }
  void PutU16(std::uint16_t v) { PutLittleEndian(v); }
  void PutU32(std::uint32_t v) { PutLittleEndian(v); }
  void PutU64(std::uint64_t v) { PutLittleEndian(v); }
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }
  void PutDouble(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// LEB128 unsigned varint.
  void PutVarint(std::uint64_t v);

  /// Length-prefixed (varint) byte string.
  void PutString(std::string_view s);

  /// Raw bytes, no length prefix.
  void PutBytes(std::span<const std::uint8_t> bytes);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  template <typename T>
  void PutLittleEndian(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked cursor over a byte span for message decoding.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  Result<std::uint8_t> GetU8();
  Result<std::uint16_t> GetU16();
  Result<std::uint32_t> GetU32();
  Result<std::uint64_t> GetU64();
  Result<std::int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::uint64_t> GetVarint();
  Result<std::string> GetString();

  /// Copy out exactly n raw bytes.
  Result<std::vector<std::uint8_t>> GetBytes(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Result<T> GetLittleEndian() {
    if (remaining() < sizeof(T)) {
      return Status::Corruption("short read");
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ghba
