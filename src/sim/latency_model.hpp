// Latency model for the trace-driven simulator.
//
// All constants are in milliseconds and calibrated to the paper's testbed
// era (GbE LAN, 7200rpm disks, DRAM-speed Bloom probes):
//   * a Bloom-filter probe is a handful of cache lines  -> ~0.2 us,
//   * a LAN round trip                                  -> ~0.20 ms,
//   * a group multicast completes when the slowest of M'-1 peers answers,
//   * a global multicast spans groups (switch hop, more fan-out),
//   * a random disk access                              -> ~8 ms.
// The absolute values matter less than their ordering (disk >> network >>
// memory); the figures reproduce shapes, not testbed milliseconds.
#pragma once

#include <cstdint>

namespace ghba {

struct LatencyModel {
  double bf_probe_ms = 0.0002;       ///< one filter membership test
  double local_proc_ms = 0.01;       ///< request parse + dispatch on an MDS
  double lan_rtt_ms = 0.20;          ///< one request/response round trip
  double multicast_extra_hop_ms = 0.05;  ///< added per extra fan-out stage
  double disk_access_ms = 8.0;       ///< random seek + read
  /// Probing one Bloom filter whose pages spilled to disk. Less than a full
  /// random access: the k probe bits share pages and the OS page cache
  /// absorbs part of the working set.
  double spilled_probe_ms = 1.5;
  double mem_metadata_ms = 0.002;    ///< metadata fetch when cached in RAM
  double metadata_cache_hit = 0.90;  ///< probability home metadata is cached
  /// One WAL fsync on the home MDS (7200rpm-era commit: on the order of a
  /// rotational latency). Charged to mutations when durability is modeled;
  /// the interval policy amortizes it across the batch.
  double wal_fsync_ms = 8.0;

  /// Probing `filters` Bloom filters in local memory.
  double ArrayProbe(std::uint64_t filters) const {
    return static_cast<double>(filters) * bf_probe_ms;
  }

  /// Round trip to one remote MDS.
  double Unicast() const { return lan_rtt_ms; }

  /// Multicast to `fanout` peers and gather all replies: one RTT plus a
  /// slowest-straggler term that grows with fan-out.
  double Multicast(std::uint64_t fanout) const {
    if (fanout == 0) return 0.0;
    return lan_rtt_ms + multicast_extra_hop_ms * static_cast<double>(fanout);
  }

  /// Expected cost of reading authoritative metadata on the home MDS,
  /// given the fraction of the metadata working set resident in memory.
  double MetadataRead(double cache_hit_prob) const {
    return cache_hit_prob * mem_metadata_ms +
           (1.0 - cache_hit_prob) * disk_access_ms;
  }
};

}  // namespace ghba
