// Discrete-event simulation engine.
//
// A minimal but complete DES core: schedule closures at absolute simulated
// times, run until quiescence or a horizon. Used by the trace-driven
// simulator for replica-update propagation and by tests that need
// deterministic time-ordered execution. Ties break by insertion order so
// runs are exactly reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

namespace ghba {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute time `when` (must be >= Now() during Run).
  void Schedule(double when, Handler fn);

  /// Schedule `fn` at Now() + delay.
  void ScheduleAfter(double delay, Handler fn) {
    Schedule(now_ + delay, std::move(fn));
  }

  double Now() const { return now_; }
  bool Empty() const { return heap_.empty(); }
  std::size_t PendingEvents() const { return heap_.size(); }

  /// Run until no events remain. Returns the number of events executed.
  std::uint64_t Run();

  /// Run until simulated time exceeds `horizon` or no events remain.
  std::uint64_t RunUntil(double horizon);

  /// Execute exactly one event (if any); returns whether one ran.
  bool Step();

 private:
  struct Event {
    double when;
    std::uint64_t seq;  // FIFO among simultaneous events
    Handler fn;
  };
  // Min-heap via std::push_heap/pop_heap so events can be *moved* out
  // (std::priority_queue::top is const and would force a copy).
  struct Cmp {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  double now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ghba
