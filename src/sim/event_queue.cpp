#include "sim/event_queue.hpp"

#include <cassert>

namespace ghba {

void EventQueue::Schedule(double when, Handler fn) {
  assert(when >= now_ && "scheduling into the past");
  heap_.push_back(Event{when, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Cmp{});
}

bool EventQueue::Step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Cmp{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.when;
  ev.fn();  // may schedule further events
  return true;
}

std::uint64_t EventQueue::Run() {
  std::uint64_t executed = 0;
  while (Step()) ++executed;
  return executed;
}

std::uint64_t EventQueue::RunUntil(double horizon) {
  std::uint64_t executed = 0;
  while (!heap_.empty() && heap_.front().when <= horizon) {
    Step();
    ++executed;
  }
  if (now_ < horizon) now_ = horizon;
  return executed;
}

}  // namespace ghba
