// Single-server FIFO queue model (per-MDS service queue).
//
// The trace replays operations at their recorded arrival times; each MDS
// processes work sequentially. FifoServer tracks the server's busy-until
// horizon: an operation arriving at `t` with service demand `s` completes at
// max(t, busy_until) + s. This is the standard G/G/1 recursion (Lindley's
// equation) and is what makes latency climb under the paper's intensified
// workloads instead of staying flat.
#pragma once

#include <algorithm>
#include <cstdint>

namespace ghba {

class FifoServer {
 public:
  struct Completion {
    double start;   ///< when service began
    double finish;  ///< when service completed
    double wait;    ///< queueing delay (start - arrival)
  };

  /// Admit work arriving at `arrival` needing `service` time units.
  Completion Serve(double arrival, double service) {
    const double start = std::max(arrival, busy_until_);
    busy_until_ = start + service;
    busy_time_ += service;
    ++served_;
    return Completion{start, busy_until_, start - arrival};
  }

  /// Peek the queueing delay an arrival at `t` would currently see.
  double WaitAt(double t) const { return std::max(0.0, busy_until_ - t); }

  double busy_until() const { return busy_until_; }
  double total_busy_time() const { return busy_time_; }
  std::uint64_t served() const { return served_; }

  /// Utilization over [0, horizon].
  double Utilization(double horizon) const {
    return horizon > 0 ? std::min(1.0, busy_time_ / horizon) : 0.0;
  }

  void Reset() {
    busy_until_ = 0;
    busy_time_ = 0;
    served_ = 0;
  }

 private:
  double busy_until_ = 0;
  double busy_time_ = 0;
  std::uint64_t served_ = 0;
};

}  // namespace ghba
