#include "storage/engine.hpp"

#include <chrono>
#include <filesystem>

#include "core/metrics.hpp"
#include "storage/checkpoint.hpp"

namespace ghba {

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const StorageOptions& options, const CountingBloomFilter& filter_template,
    MetricsRegistry* registry) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("storage engine needs a data dir");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.data_dir, ec);
  if (ec) {
    return Status::Internal("create data dir " + options.data_dir + ": " +
                            ec.message());
  }

  auto recovered = RecoverState(options.data_dir, filter_template);
  if (!recovered.ok()) return recovered.status();

  auto wal = WriteAheadLog::Open(options.data_dir + "/" + kWalFileName,
                                 options, recovered->wal_valid_bytes);
  if (!wal.ok()) return wal.status();

  // make_unique needs a public constructor; the engine's is private.
  auto engine = std::unique_ptr<StorageEngine>(new StorageEngine());
  engine->options_ = options;
  engine->wal_ = std::move(*wal);
  engine->next_seq_ = recovered->next_seq;
  engine->info_ = RecoveryInfo{
      .recovered_files = recovered->store.size(),
      .wal_seq = recovered->next_seq - 1,
      .replay_records = recovered->replay_records,
      .torn_tail = recovered->torn_tail,
      .used_fallback_checkpoint = recovered->used_fallback_checkpoint,
      .filter_rebuilt = recovered->filter_rebuilt,
      .filter_matched = recovered->filter_matched,
      .epoch = recovered->epoch,
      .members = recovered->members,
      .txn_in_doubt = recovered->txn_pending.size(),
  };
  engine->view_epoch_ = recovered->epoch;
  engine->view_members_ = recovered->members;
  // Copies, not moves: TakeRecovered hands the same tables to the server's
  // TxnManager while the engine keeps folding them into checkpoints.
  engine->txn_pending_ = recovered->txn_pending;
  engine->txn_decisions_ = recovered->txn_decisions;
  engine->recovered_ = std::move(*recovered);

  if (registry != nullptr) {
    engine->have_metrics_ = true;
    engine->wal_appends_ =
        registry->counter(metrics_names::kStorageWalAppends);
    engine->wal_fsyncs_ = registry->counter(metrics_names::kStorageWalFsyncs);
    engine->wal_bytes_ = registry->counter(metrics_names::kStorageWalBytes);
    engine->checkpoints_ =
        registry->counter(metrics_names::kStorageCheckpoints);
    engine->checkpoint_duration_ns_ =
        registry->histogram(metrics_names::kStorageCheckpointDurationNs);
    registry->counter(metrics_names::kStorageRecoveryReplayRecords) =
        engine->info_.replay_records;
    registry->counter(metrics_names::kStorageRecoveryTornTail) =
        engine->info_.torn_tail ? 1 : 0;
    registry->counter(metrics_names::kStorageRecoveryFilterRebuilt) =
        engine->info_.filter_rebuilt ? 1 : 0;
    registry->counter(metrics_names::kStorageRecoveryFilterMismatch) =
        engine->info_.filter_matched ? 0 : 1;
    engine->ExportWalMetrics();
  }
  return engine;
}

void StorageEngine::ExportWalMetrics() {
  if (!have_metrics_) return;
  // Gauges mirroring the log's own counters (overwrite, not add).
  wal_appends_ = wal_.appends();
  wal_fsyncs_ = wal_.fsyncs();
  wal_bytes_ = wal_.size_bytes();
}

Status StorageEngine::CommitRecord(WalRecord record) {
  record.seq = next_seq_;
  if (Status s = wal_.Append(record); !s.ok()) return s;
  if (Status s = wal_.Commit(); !s.ok()) return s;
  // Only burn the sequence once the record is in the log: replay tolerates
  // gaps but tests expect next_seq to track logged records exactly.
  ++next_seq_;
  ExportWalMetrics();
  return Status::Ok();
}

Status StorageEngine::LogRecord(WalOp op, std::string_view path,
                                const FileMetadata* metadata) {
  WalRecord record;
  record.op = op;
  record.path = std::string(path);
  if (metadata != nullptr) record.metadata = *metadata;
  return CommitRecord(std::move(record));
}

Status StorageEngine::LogInsert(std::string_view path,
                                const FileMetadata& metadata) {
  return LogRecord(WalOp::kInsert, path, &metadata);
}

Status StorageEngine::LogUpdate(std::string_view path,
                                const FileMetadata& metadata) {
  return LogRecord(WalOp::kUpdate, path, &metadata);
}

Status StorageEngine::LogRemove(std::string_view path) {
  return LogRecord(WalOp::kRemove, path, nullptr);
}

Status StorageEngine::LogClear() {
  return LogRecord(WalOp::kClear, {}, nullptr);
}

Status StorageEngine::LogReplicaInstall(MdsId owner,
                                        std::span<const std::uint8_t> blob) {
  // An oversized record would break replay as a torn tail (the replayer
  // caps frames at kMaxWalRecordBytes), taking every later record with it.
  // Skip journaling instead: the in-memory install still happens, and the
  // coordinator republishes filters on rejoin, so staleness is bounded.
  if (blob.size() + 64 > kMaxWalRecordBytes) return Status::Ok();
  WalRecord record;
  record.op = WalOp::kReplicaInstall;
  record.owner = owner;
  record.filter_blob.assign(blob.begin(), blob.end());
  return CommitRecord(std::move(record));
}

Status StorageEngine::LogReplicaDrop(MdsId owner) {
  WalRecord record;
  record.op = WalOp::kReplicaDrop;
  record.owner = owner;
  return CommitRecord(std::move(record));
}

Status StorageEngine::LogMembership(std::uint64_t epoch,
                                    std::vector<MdsId> members) {
  WalRecord record;
  record.op = WalOp::kMembership;
  record.epoch = epoch;
  record.members = members;
  if (Status s = CommitRecord(std::move(record)); !s.ok()) return s;
  view_epoch_ = epoch;
  view_members_ = std::move(members);
  return Status::Ok();
}

Status StorageEngine::LogTxnBegin(std::uint64_t txn_id,
                                  const std::vector<MdsId>& participants) {
  WalRecord record;
  record.op = WalOp::kTxnBegin;
  record.txn_id = txn_id;
  record.members = participants;
  if (Status s = CommitRecord(std::move(record)); !s.ok()) return s;
  for (auto& d : txn_decisions_) {
    if (d.txn_id == txn_id) return Status::Ok();  // idempotent re-begin
  }
  txn_decisions_.push_back(TxnCoordEntry{txn_id, TxnCoordState::kBegun});
  // Presumed abort keeps the table prunable: a dropped entry answers
  // "aborted" to any future resolve query.
  if (txn_decisions_.size() > kMaxTxnCoordEntries) {
    txn_decisions_.erase(txn_decisions_.begin());
  }
  return Status::Ok();
}

Status StorageEngine::LogTxnDecision(std::uint64_t txn_id, bool commit) {
  WalRecord record;
  record.op = WalOp::kTxnDecision;
  record.txn_id = txn_id;
  record.txn_commit = commit;
  if (Status s = CommitRecord(std::move(record)); !s.ok()) return s;
  const TxnCoordState state =
      commit ? TxnCoordState::kCommitted : TxnCoordState::kAborted;
  for (auto& d : txn_decisions_) {
    if (d.txn_id == txn_id) {
      d.state = state;
      return Status::Ok();
    }
  }
  txn_decisions_.push_back(TxnCoordEntry{txn_id, state});
  if (txn_decisions_.size() > kMaxTxnCoordEntries) {
    txn_decisions_.erase(txn_decisions_.begin());
  }
  return Status::Ok();
}

Status StorageEngine::LogTxnPrepare(const TxnPendingOp& op) {
  WalRecord record;
  record.op = WalOp::kTxnPrepare;
  record.txn_id = op.txn_id;
  record.path = op.path;
  record.txn_subop = op.subop;
  record.owner = op.coordinator;
  record.members = op.participants;
  if (op.subop == TxnSubOp::kInsert) record.metadata = op.metadata;
  if (Status s = CommitRecord(std::move(record)); !s.ok()) return s;
  std::erase_if(txn_pending_, [&op](const TxnPendingOp& p) {
    return p.txn_id == op.txn_id && p.path == op.path;
  });
  txn_pending_.push_back(op);
  return Status::Ok();
}

Status StorageEngine::LogTxnCommit(const TxnPendingOp& op) {
  WalRecord record;
  record.op = WalOp::kTxnCommit;
  record.txn_id = op.txn_id;
  record.path = op.path;
  record.txn_subop = op.subop;
  if (op.subop == TxnSubOp::kInsert) record.metadata = op.metadata;
  if (Status s = CommitRecord(std::move(record)); !s.ok()) return s;
  std::erase_if(txn_pending_, [&op](const TxnPendingOp& p) {
    return p.txn_id == op.txn_id && p.path == op.path;
  });
  return Status::Ok();
}

Status StorageEngine::LogTxnAbort(std::uint64_t txn_id,
                                  const std::string& path) {
  WalRecord record;
  record.op = WalOp::kTxnAbort;
  record.txn_id = txn_id;
  record.path = path;
  if (Status s = CommitRecord(std::move(record)); !s.ok()) return s;
  std::erase_if(txn_pending_, [&](const TxnPendingOp& p) {
    return p.txn_id == txn_id && p.path == path;
  });
  return Status::Ok();
}

bool StorageEngine::CheckpointDue() const {
  return wal_.size_bytes() >= options_.checkpoint_wal_bytes;
}

Status StorageEngine::WriteCheckpoint(
    const MetadataStore& store, const CountingBloomFilter& filter,
    std::vector<std::pair<MdsId, BloomFilter>> replicas) {
  const auto start = std::chrono::steady_clock::now();

  // Everything the snapshot will claim to cover must be stable first; a
  // crash between Reset() and this fsync must not lose acked records.
  if (Status s = wal_.Sync(); !s.ok()) return s;

  CheckpointState state;
  state.wal_seq = next_seq_ - 1;
  state.files.reserve(store.size());
  store.ForEach([&state](const std::string& path, const FileMetadata& md) {
    state.files.emplace_back(path, md);
  });
  state.has_filter = true;
  state.filter = filter;
  state.replicas = std::move(replicas);
  state.epoch = view_epoch_;
  state.members = view_members_;
  state.txn_pending = txn_pending_;
  state.txn_decisions = txn_decisions_;

  auto written =
      WriteCheckpointFile(options_.data_dir, state, options_.keep_checkpoints);
  if (!written.ok()) return written.status();
  if (Status s = wal_.Reset(); !s.ok()) return s;

  if (have_metrics_) {
    ++checkpoints_;
    checkpoint_duration_ns_.Add(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    ExportWalMetrics();
  }
  return Status::Ok();
}

Result<bool> StorageEngine::MaybeCheckpoint(
    const MetadataStore& store, const CountingBloomFilter& filter,
    std::vector<std::pair<MdsId, BloomFilter>> replicas) {
  if (!CheckpointDue()) return false;
  if (Status s = WriteCheckpoint(store, filter, std::move(replicas)); !s.ok()) {
    return s;
  }
  return true;
}

}  // namespace ghba
