// Write-ahead log for per-MDS metadata mutations.
//
// Every mutating RPC appends one record *after* applying to the in-memory
// store and *before* acking the client, so the log contains exactly the
// acknowledged, successful mutations — replay never has to re-judge
// duplicate inserts or missing removes. Records are framed with the same
// discipline as the wire protocol (magic + u32 length + CRC-32 over the
// payload), which makes torn tails self-announcing: replay stops at the
// first frame whose header, length, CRC or payload does not check out and
// reports how many clean bytes precede it, so the engine can truncate the
// garbage and keep appending.
//
// Record frame: [0x57 0x4C]['len' u32 LE]['crc32' u32 LE][payload]
// Payload:      [op u8][seq u64][path varint-string][body?]
// The body depends on the op: kInsert/kUpdate carry FileMetadata,
// kReplicaInstall carries [owner u32][blob varint-len + bytes],
// kReplicaDrop carries [owner u32], and kMembership carries
// [epoch u64][count varint][member u32]* — the migration state machine and
// cluster-view updates journal through the same frames as file mutations,
// so crash recovery replays them in one pass (seq strictly increases).
// The kTxn* records (two-phase commit) carry a txn id and, per op, the
// coordinator, participant list, sub-op and metadata — see WalOp below.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/lookup_outcome.hpp"
#include "common/status.hpp"
#include "mds/metadata.hpp"
#include "storage/options.hpp"

namespace ghba {

inline constexpr std::uint8_t kWalMagic0 = 0x57;  // 'W'
inline constexpr std::uint8_t kWalMagic1 = 0x4C;  // 'L'
inline constexpr std::size_t kWalFrameHeaderBytes = 10;

/// Hard caps on decoded sizes (allocate-after-validate): a mangled length
/// field must never drive an allocation past these.
inline constexpr std::size_t kMaxWalRecordBytes = 1ULL << 20;
inline constexpr std::size_t kMaxWalPathBytes = 64ULL << 10;

enum class WalOp : std::uint8_t {
  kInsert = 1,  ///< new record (path + metadata)
  kUpdate = 2,  ///< overwrite existing record (path + metadata)
  kRemove = 3,  ///< erase record (path only)
  kClear = 4,   ///< drop all records (migration drain; no path)
  // Online-reconfiguration records: the replica handoff and cluster-view
  // changes journal through the same log so a kill -9 at any migration
  // phase recovers to a consistent placement.
  kReplicaInstall = 5,  ///< install/refresh an outsider replica (owner + blob)
  kReplicaDrop = 6,     ///< retire an outsider replica (owner only)
  kMembership = 7,      ///< routing epoch + group member list
  // Distributed-transaction records (two-phase commit, presumed abort).
  // Participant side: kTxnPrepare journals the intent (path + sub-op, NOT
  // applied to the store), kTxnCommit is one frame that both applies the
  // sub-op and closes the prepare (so a torn tail can never half-apply),
  // kTxnAbort closes the prepare without applying. Coordinator side:
  // kTxnBegin opens the decision record, kTxnDecision is THE commit point
  // — once it is durable the transaction's outcome is fixed.
  kTxnBegin = 8,     ///< coordinator: txn_id + participant list
  kTxnPrepare = 9,   ///< participant: txn_id + sub-op + path (+ metadata)
  kTxnCommit = 10,   ///< participant: apply sub-op and close the prepare
  kTxnAbort = 11,    ///< participant: close the prepare, nothing applied
  kTxnDecision = 12, ///< coordinator: txn_id + commit/abort verdict
};

/// Per-participant operation inside a transaction. kTxnPrepare/kTxnCommit
/// records carry exactly one.
enum class TxnSubOp : std::uint8_t {
  kNone = 0,
  kInsert = 1,  ///< create `path` with the carried metadata at commit
  kRemove = 2,  ///< erase `path` at commit
};

struct WalRecord {
  WalOp op = WalOp::kInsert;
  std::uint64_t seq = 0;  ///< strictly increasing per log
  std::string path;
  FileMetadata metadata;  ///< meaningful for kInsert / kUpdate
  /// Reconfiguration fields (meaningful for the ops noted).
  MdsId owner = 0;  ///< kReplicaInstall / kReplicaDrop: replica's home MDS
  std::vector<std::uint8_t> filter_blob;  ///< kReplicaInstall: compressed
                                          ///< filter, opaque to the log
  std::uint64_t epoch = 0;                ///< kMembership: routing epoch
  std::vector<MdsId> members;             ///< kMembership: group peers;
                                          ///< kTxnBegin/kTxnPrepare:
                                          ///< participant list
  /// Transaction fields (meaningful for the kTxn* ops). `owner` doubles as
  /// the coordinator id on kTxnPrepare.
  std::uint64_t txn_id = 0;
  TxnSubOp txn_subop = TxnSubOp::kNone;  ///< kTxnPrepare / kTxnCommit
  bool txn_commit = false;               ///< kTxnDecision verdict

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// Payload codec (no frame header). Decode validates the op, the path cap
/// and — for ops that carry one — the metadata body; exposed for fuzzing.
void EncodeWalRecordPayload(const WalRecord& record, ByteWriter& out);
Result<WalRecord> DecodeWalRecordPayload(ByteReader& in);

/// One complete framed record (header + payload).
std::vector<std::uint8_t> EncodeWalRecordFrame(const WalRecord& record);

struct WalReplayResult {
  /// Records with seq > from_seq, in log order.
  std::vector<WalRecord> records;
  /// Bytes of clean, contiguous records from the start of the buffer.
  /// Appending resumes here; anything beyond is a torn/corrupt tail.
  std::uint64_t valid_bytes = 0;
  /// Structurally valid records scanned (including ones at or below
  /// from_seq, which the checkpoint already covers).
  std::uint64_t scanned_records = 0;
  /// True when trailing bytes had to be dropped (torn frame, bad CRC,
  /// non-monotonic sequence, undecodable payload).
  bool torn_tail = false;
};

/// Scan a log image and extract every clean record. Total: malformed input
/// can only shorten the result, never crash or over-allocate (fuzzed by
/// fuzz_wal_decode).
WalReplayResult ReplayWalBuffer(std::span<const std::uint8_t> buf,
                                std::uint64_t from_seq);

/// Append-side handle on one log file. Appends buffer in memory until
/// Commit(), which writes them out and fsyncs per the configured policy —
/// a server that batches several records per RPC gets group commit for
/// free. Not thread-safe; owned by the MDS event loop like the rest of the
/// per-server state.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;

  /// Read a whole log file (replay input). A missing file is an empty log.
  static Result<std::vector<std::uint8_t>> ReadAll(const std::string& path);

  /// Open (creating if missing) for appending at `offset`, truncating
  /// anything beyond it — recovery passes WalReplayResult::valid_bytes so a
  /// torn tail is chopped before new records land after it.
  static Result<WriteAheadLog> Open(const std::string& path,
                                    const StorageOptions& options,
                                    std::uint64_t offset);

  bool is_open() const { return fd_ >= 0; }

  /// Buffer one record for the next Commit().
  Status Append(const WalRecord& record);

  /// Write all buffered records and fsync per policy (kAlways: every
  /// commit; kInterval: every fsync_interval_appends appends; kNever:
  /// the page cache is on its own).
  Status Commit();

  /// Unconditional fsync (checkpointing barriers on this).
  Status Sync();

  /// Truncate the log to empty after a successful checkpoint. Durable
  /// before returning: a crash right after must not replay stale records
  /// on top of the new checkpoint.
  Status Reset();

  /// Bytes appended and committed to the file (buffered bytes excluded).
  std::uint64_t size_bytes() const { return size_bytes_; }
  /// Bytes known to have reached stable storage (advances on fsync). With
  /// fsync=never this stays at the last explicit Sync/Reset — the honest
  /// measure of what a power cut can take.
  std::uint64_t durable_bytes() const { return durable_bytes_; }
  std::uint64_t appends() const { return appends_; }
  std::uint64_t fsyncs() const { return fsyncs_; }

 private:
  Status WriteOut(const std::uint8_t* data, std::size_t len);

  int fd_ = -1;
  StorageOptions options_;
  ByteWriter pending_;
  std::uint32_t pending_appends_ = 0;
  std::uint64_t size_bytes_ = 0;
  std::uint64_t durable_bytes_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint32_t appends_since_sync_ = 0;
};

}  // namespace ghba
