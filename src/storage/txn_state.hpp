// Durable transaction state shared by the WAL replayer, the checkpointer
// and the server-side TxnManager.
//
// Two tables survive a crash:
//   * pending prepares (participant side): every kTxnPrepare whose
//     kTxnCommit/kTxnAbort has not been journaled yet. These are the
//     in-doubt ops a restart must re-lock and resolve.
//   * the coordinator decision table: kTxnBegin marks a txn begun,
//     kTxnDecision fixes its verdict. Under presumed abort the table may
//     be pruned — a query for an unknown txn answers "aborted".
//
// Both are folded into checkpoints (v3 body section) because a checkpoint
// truncates the WAL records they came from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/lookup_outcome.hpp"
#include "mds/metadata.hpp"
#include "storage/wal.hpp"

namespace ghba {

/// One prepared-but-undecided participant op: exactly the payload of its
/// kTxnPrepare record. `participants` lets a resolver consult the txn's
/// other members when the coordinator is confirmed dead.
struct TxnPendingOp {
  std::uint64_t txn_id = 0;
  TxnSubOp subop = TxnSubOp::kNone;
  std::string path;
  FileMetadata metadata;  ///< kInsert payload
  MdsId coordinator = kInvalidMds;
  std::vector<MdsId> participants;

  friend bool operator==(const TxnPendingOp&, const TxnPendingOp&) = default;
};

/// Coordinator-side decision states. Order matters: the checkpoint codec
/// bounds the encoded byte by kAborted.
enum class TxnCoordState : std::uint8_t {
  kBegun = 0,      ///< kTxnBegin journaled, no decision yet
  kCommitted = 1,  ///< kTxnDecision(commit) durable — the txn IS committed
  kAborted = 2,    ///< kTxnDecision(abort) durable
};

/// One coordinator decision-table row.
struct TxnCoordEntry {
  std::uint64_t txn_id = 0;
  TxnCoordState state = TxnCoordState::kBegun;

  friend bool operator==(const TxnCoordEntry&, const TxnCoordEntry&) = default;
};

/// Presumed abort lets the decision table stay bounded: entries beyond
/// this cap are pruned oldest-first, and a pruned commit entry can only
/// belong to a txn whose participants have all closed (the driver pushes
/// commits before acking; recovery resolution closes the stragglers).
inline constexpr std::size_t kMaxTxnCoordEntries = 4096;

}  // namespace ghba
