// Crash recovery: newest valid checkpoint + WAL tail replay.
//
// Recovery rebuilds exactly the state a restarted MDS needs to resume
// serving L4 (the authoritative level): the metadata store, the local
// counting Bloom filter and the segment replica array. The invariant that
// makes L4 exactness survive a restart: after replay, the filter obtained
// by replaying logged mutations into the checkpointed filter must flatten
// to the same bits as one rebuilt from scratch over the recovered store.
// When the two disagree (possible only through counter saturation in the
// checkpointed filter, or a filter-less snapshot), recovery prefers the
// rebuilt filter — it is exact by construction — and reports the mismatch
// instead of hard-failing.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/counting_bloom_filter.hpp"
#include "common/lookup_outcome.hpp"
#include "common/status.hpp"
#include "mds/store.hpp"
#include "storage/txn_state.hpp"
#include "storage/wal.hpp"

namespace ghba {

/// The WAL lives under the data dir at this fixed name.
inline constexpr char kWalFileName[] = "wal.log";

/// Translate one WAL record into the shared store mutation type (WAL
/// replay and replica migration both funnel through
/// MetadataStore::ApplyBatch). Only meaningful for the file-mutation ops
/// (kInsert/kUpdate/kRemove/kClear); reconfiguration records are replayed
/// into the replica array / cluster view instead.
StoreMutation ToStoreMutation(WalRecord record);

struct RecoveredState {
  MetadataStore store;
  CountingBloomFilter filter;
  std::vector<std::pair<MdsId, BloomFilter>> replicas;

  /// First sequence number new WAL records should use.
  std::uint64_t next_seq = 1;
  /// Clean WAL prefix length; the engine reopens the log appending here.
  std::uint64_t wal_valid_bytes = 0;
  std::uint64_t replay_records = 0;
  bool torn_tail = false;
  bool used_fallback_checkpoint = false;
  /// The snapshot carried no usable filter (absent, or geometry drifted
  /// from the configured one) and it was rebuilt from the store.
  bool filter_rebuilt = false;
  /// replayed-filter == rebuilt-filter (flattened bits). False means the
  /// checkpointed filter had saturated counters; the rebuilt (exact) one
  /// was installed instead.
  bool filter_matched = true;

  /// Recovered cluster view: the last journaled/checkpointed routing epoch
  /// and group-member list (kMembership records override the snapshot).
  std::uint64_t epoch = 0;
  std::vector<MdsId> members;

  /// In-doubt transaction prepares: journaled (or checkpointed) kTxnPrepare
  /// records whose commit/abort never made it to the log. The server must
  /// re-take their intent locks and have them resolved before the paths
  /// accept plain mutations again.
  std::vector<TxnPendingOp> txn_pending;
  /// Coordinator decision table: every kTxnBegin/kTxnDecision outcome that
  /// survives (checkpoint section + WAL tail).
  std::vector<TxnCoordEntry> txn_decisions;
  /// Participant outcomes closed since the checkpoint (txn_id -> committed),
  /// in log order. Seeds the idempotency history so a re-sent commit/abort
  /// after restart is acked instead of re-applied.
  std::vector<std::pair<std::uint64_t, bool>> txn_closed;
};

/// Run recovery over `data_dir` (which must exist). `filter_template` is an
/// empty counting filter with the configured geometry; recovery clones it
/// for rebuilds and rejects checkpointed filters whose geometry differs.
Result<RecoveredState> RecoverState(const std::string& data_dir,
                                    const CountingBloomFilter& filter_template);

}  // namespace ghba
