// Atomic checkpoints of per-MDS state: the metadata map, the authoritative
// counting Bloom filter and the segment replica array.
//
// A checkpoint is one self-validating file written next to the WAL:
//
//   [0x47 0x43][version u16 LE][wal_seq u64 LE][body_len u32 LE]
//   [body_crc32 u32 LE][body]
//
//   body = [file_count varint] file_count * ([path string][metadata])
//          [has_filter u8] has_filter? [CountingBloomFilter]
//          [replica_count varint] replica_count * ([owner u32][compressed
//          BloomFilter])
//          (version >= 2) [epoch u64][member_count varint] member_count *
//          [member u32]
//          (version >= 3) [pending_count varint] pending_count *
//          ([txn_id u64][subop u8][coordinator u32][participant_count
//          varint][participant u32]*[path string][metadata if insert])
//          [decision_count varint] decision_count * ([txn_id u64][state u8])
//
// Version 2 appends the server's cluster view — the routing epoch and its
// group-member list — so a restarted mds_daemon rejoins with a consistent
// notion of who its peers are instead of relying on the coordinator to
// re-push it. Version 3 appends the transaction state (in-doubt prepares
// and the coordinator decision table) because checkpointing truncates the
// WAL records that state would otherwise replay from. Version-1/2 files
// still decode: missing sections come back empty.
//
// wal_seq is the last WAL sequence the snapshot covers; recovery replays
// only records beyond it. Writes are atomic (temp file + fsync + rename +
// directory fsync) and old checkpoints are pruned only after the new one is
// durable, so there is always at least one loadable snapshot; a corrupt
// newest file (half-written before a crash) falls back to the next older.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/counting_bloom_filter.hpp"
#include "common/bytes.hpp"
#include "common/lookup_outcome.hpp"
#include "common/status.hpp"
#include "mds/metadata.hpp"
#include "storage/txn_state.hpp"

namespace ghba {

inline constexpr std::uint8_t kCheckpointMagic0 = 0x47;  // 'G'
inline constexpr std::uint8_t kCheckpointMagic1 = 0x43;  // 'C'
inline constexpr std::uint16_t kCheckpointVersion = 3;
/// Oldest format still decodable (pre-cluster-view snapshots).
inline constexpr std::uint16_t kMinCheckpointVersion = 1;
inline constexpr std::size_t kCheckpointHeaderBytes = 20;

/// Allocation cap for a claimed body length (allocate-after-validate).
inline constexpr std::size_t kMaxCheckpointBodyBytes = 256ULL << 20;

struct CheckpointState {
  /// Last WAL sequence number this snapshot covers.
  std::uint64_t wal_seq = 0;
  std::vector<std::pair<std::string, FileMetadata>> files;
  /// The authoritative local filter, counting form (so deletes keep
  /// working after recovery). Absent in minimal snapshots; recovery then
  /// rebuilds it from `files`.
  bool has_filter = false;
  CountingBloomFilter filter;
  /// Segment replica array entries (owner, flattened filter).
  std::vector<std::pair<MdsId, BloomFilter>> replicas;
  /// Cluster view at snapshot time (version >= 2): the routing epoch the
  /// server last acknowledged and its group peers. Zero/empty for v1 files.
  std::uint64_t epoch = 0;
  std::vector<MdsId> members;
  /// Transaction state at snapshot time (version >= 3): prepares still
  /// in doubt and the coordinator decision table. Empty for older files.
  std::vector<TxnPendingOp> txn_pending;
  std::vector<TxnCoordEntry> txn_decisions;
};

struct CheckpointHeader {
  std::uint16_t version = 0;
  std::uint64_t wal_seq = 0;
  std::uint32_t body_len = 0;
  std::uint32_t body_crc = 0;
};

/// Header codec, exposed for fuzzing: validates magic, version and the
/// body-length cap before anything is allocated.
Result<CheckpointHeader> DecodeCheckpointHeader(ByteReader& in);

/// Whole-file codec. Decode verifies the header, the CRC and every body
/// field; any mismatch is kCorruption (the loader then falls back to an
/// older file).
std::vector<std::uint8_t> EncodeCheckpoint(const CheckpointState& state);
Result<CheckpointState> DecodeCheckpoint(std::span<const std::uint8_t> bytes);

/// File name a given snapshot is stored under (sortable by wal_seq).
std::string CheckpointFileName(std::uint64_t wal_seq);

/// Atomically persist `state` under `dir` and prune all but the newest
/// `keep` checkpoints. Returns the path written.
Result<std::string> WriteCheckpointFile(const std::string& dir,
                                        const CheckpointState& state,
                                        std::uint32_t keep);

struct LoadedCheckpoint {
  CheckpointState state;
  /// Path the snapshot came from; empty when no checkpoint existed.
  std::string file;
  /// True when a newer-but-corrupt checkpoint had to be skipped.
  bool used_fallback = false;
};

/// Load the newest valid checkpoint under `dir`. No checkpoint at all is
/// not an error — the result carries an empty state (wal_seq 0).
Result<LoadedCheckpoint> LoadNewestCheckpoint(const std::string& dir);

}  // namespace ghba
