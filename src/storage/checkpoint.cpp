#include "storage/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "bloom/compressed.hpp"
#include "storage/wal.hpp"

namespace ghba {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
}

/// Write `bytes` to `path` and fsync the file. O_TRUNC: the temp file name
/// is reused across checkpoints.
Status WriteFileDurable(const std::string& path,
                        const std::vector<std::uint8_t>& bytes) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open checkpoint temp");
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("write checkpoint");
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Errno("fsync checkpoint");
  }
  ::close(fd);
  return Status::Ok();
}

/// fsync a directory so a completed rename is durable.
Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open data dir");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync data dir");
  return Status::Ok();
}

/// Parse the wal_seq out of a checkpoint file name; false for other files.
bool ParseCheckpointName(const std::string& name, std::uint64_t* seq) {
  std::uint64_t value = 0;
  char trailer = 0;
  // %c catches trailing garbage like the ".tmp" of an unfinished write.
  const int got =
      std::sscanf(name.c_str(), "checkpoint-%20" SCNu64 ".ckpt%c", &value,
                  &trailer);
  if (got != 1) return false;
  *seq = value;
  return true;
}

/// Checkpoint files under `dir`, newest (highest wal_seq) first.
std::vector<std::pair<std::uint64_t, std::string>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint64_t seq = 0;
    if (ParseCheckpointName(entry.path().filename().string(), &seq)) {
      out.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(out.begin(), out.end(), std::greater<>());
  return out;
}

}  // namespace

Result<CheckpointHeader> DecodeCheckpointHeader(ByteReader& in) {
  auto m0 = in.GetU8();
  if (!m0.ok()) return m0.status();
  auto m1 = in.GetU8();
  if (!m1.ok()) return m1.status();
  if (*m0 != kCheckpointMagic0 || *m1 != kCheckpointMagic1) {
    return Status::Corruption("bad checkpoint magic");
  }
  CheckpointHeader header;
  auto version = in.GetU16();
  if (!version.ok()) return version.status();
  if (*version < kMinCheckpointVersion || *version > kCheckpointVersion) {
    return Status::Corruption("unknown checkpoint version");
  }
  header.version = *version;
  auto wal_seq = in.GetU64();
  if (!wal_seq.ok()) return wal_seq.status();
  header.wal_seq = *wal_seq;
  auto body_len = in.GetU32();
  if (!body_len.ok()) return body_len.status();
  if (*body_len > kMaxCheckpointBodyBytes) {
    return Status::Corruption("absurd checkpoint body length");
  }
  header.body_len = *body_len;
  auto body_crc = in.GetU32();
  if (!body_crc.ok()) return body_crc.status();
  header.body_crc = *body_crc;
  return header;
}

std::vector<std::uint8_t> EncodeCheckpoint(const CheckpointState& state) {
  ByteWriter body;
  body.PutVarint(state.files.size());
  for (const auto& [path, md] : state.files) {
    body.PutString(path);
    md.Serialize(body);
  }
  body.PutU8(state.has_filter ? 1 : 0);
  if (state.has_filter) state.filter.Serialize(body);
  body.PutVarint(state.replicas.size());
  for (const auto& [owner, filter] : state.replicas) {
    body.PutU32(owner);
    body.PutBytes(CompressFilter(filter));
  }
  // Version-2 cluster view, appended after the replica array.
  body.PutU64(state.epoch);
  body.PutVarint(state.members.size());
  for (const MdsId id : state.members) body.PutU32(id);
  // Version-3 transaction state: in-doubt prepares + coordinator decisions.
  body.PutVarint(state.txn_pending.size());
  for (const auto& op : state.txn_pending) {
    body.PutU64(op.txn_id);
    body.PutU8(static_cast<std::uint8_t>(op.subop));
    body.PutU32(op.coordinator);
    body.PutVarint(op.participants.size());
    for (const MdsId id : op.participants) body.PutU32(id);
    body.PutString(op.path);
    if (op.subop == TxnSubOp::kInsert) op.metadata.Serialize(body);
  }
  body.PutVarint(state.txn_decisions.size());
  for (const auto& d : state.txn_decisions) {
    body.PutU64(d.txn_id);
    body.PutU8(static_cast<std::uint8_t>(d.state));
  }
  const auto& b = body.data();

  ByteWriter out;
  out.PutU8(kCheckpointMagic0);
  out.PutU8(kCheckpointMagic1);
  out.PutU16(kCheckpointVersion);
  out.PutU64(state.wal_seq);
  out.PutU32(static_cast<std::uint32_t>(b.size()));
  out.PutU32(Crc32(b.data(), b.size()));
  out.PutBytes(b);
  return out.Take();
}

Result<CheckpointState> DecodeCheckpoint(
    std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  auto header = DecodeCheckpointHeader(in);
  if (!header.ok()) return header.status();
  if (in.remaining() != header->body_len) {
    return Status::Corruption("checkpoint body length mismatch");
  }
  const std::uint8_t* body = bytes.data() + kCheckpointHeaderBytes;
  if (Crc32(body, header->body_len) != header->body_crc) {
    return Status::Corruption("checkpoint body CRC mismatch");
  }

  CheckpointState state;
  state.wal_seq = header->wal_seq;
  auto file_count = in.GetVarint();
  if (!file_count.ok()) return file_count.status();
  // Each entry costs at least one byte; a larger claimed count can only
  // come from a mangled length field.
  if (*file_count > in.remaining()) {
    return Status::Corruption("absurd checkpoint file count");
  }
  state.files.reserve(*file_count);
  for (std::uint64_t i = 0; i < *file_count; ++i) {
    auto path = in.GetString();
    if (!path.ok()) return path.status();
    auto md = FileMetadata::Deserialize(in);
    if (!md.ok()) return md.status();
    state.files.emplace_back(std::move(*path), std::move(*md));
  }

  auto has_filter = in.GetU8();
  if (!has_filter.ok()) return has_filter.status();
  if (*has_filter > 1) return Status::Corruption("bad has_filter byte");
  state.has_filter = (*has_filter != 0);
  if (state.has_filter) {
    auto filter = CountingBloomFilter::Deserialize(in);
    if (!filter.ok()) return filter.status();
    state.filter = std::move(*filter);
  }

  auto replica_count = in.GetVarint();
  if (!replica_count.ok()) return replica_count.status();
  if (*replica_count > in.remaining()) {
    return Status::Corruption("absurd checkpoint replica count");
  }
  state.replicas.reserve(*replica_count);
  for (std::uint64_t i = 0; i < *replica_count; ++i) {
    auto owner = in.GetU32();
    if (!owner.ok()) return owner.status();
    auto filter = DecompressFilter(in);
    if (!filter.ok()) return filter.status();
    state.replicas.emplace_back(*owner, std::move(*filter));
  }
  if (header->version >= 2) {
    auto epoch = in.GetU64();
    if (!epoch.ok()) return epoch.status();
    state.epoch = *epoch;
    auto member_count = in.GetVarint();
    if (!member_count.ok()) return member_count.status();
    if (*member_count > in.remaining() / sizeof(std::uint32_t)) {
      return Status::Corruption("absurd checkpoint member count");
    }
    state.members.reserve(*member_count);
    for (std::uint64_t i = 0; i < *member_count; ++i) {
      auto id = in.GetU32();
      if (!id.ok()) return id.status();
      state.members.push_back(*id);
    }
  }
  if (header->version >= 3) {
    auto pending_count = in.GetVarint();
    if (!pending_count.ok()) return pending_count.status();
    // A pending entry costs at least 15 bytes (8 id + 1 sub-op + 4
    // coordinator + 1 participant count + 1 path length).
    if (*pending_count > in.remaining() / 15) {
      return Status::Corruption("absurd checkpoint txn-pending count");
    }
    state.txn_pending.reserve(*pending_count);
    for (std::uint64_t i = 0; i < *pending_count; ++i) {
      TxnPendingOp op;
      auto txn_id = in.GetU64();
      if (!txn_id.ok()) return txn_id.status();
      op.txn_id = *txn_id;
      auto subop = in.GetU8();
      if (!subop.ok()) return subop.status();
      if (*subop < static_cast<std::uint8_t>(TxnSubOp::kInsert) ||
          *subop > static_cast<std::uint8_t>(TxnSubOp::kRemove)) {
        return Status::Corruption("bad checkpoint txn sub-op");
      }
      op.subop = static_cast<TxnSubOp>(*subop);
      auto coord = in.GetU32();
      if (!coord.ok()) return coord.status();
      op.coordinator = *coord;
      auto part_count = in.GetVarint();
      if (!part_count.ok()) return part_count.status();
      if (*part_count > in.remaining() / sizeof(std::uint32_t)) {
        return Status::Corruption("absurd checkpoint participant count");
      }
      op.participants.reserve(*part_count);
      for (std::uint64_t j = 0; j < *part_count; ++j) {
        auto id = in.GetU32();
        if (!id.ok()) return id.status();
        op.participants.push_back(*id);
      }
      auto path = in.GetString();
      if (!path.ok()) return path.status();
      op.path = std::move(*path);
      if (op.subop == TxnSubOp::kInsert) {
        auto md = FileMetadata::Deserialize(in);
        if (!md.ok()) return md.status();
        op.metadata = std::move(*md);
      }
      state.txn_pending.push_back(std::move(op));
    }
    auto decision_count = in.GetVarint();
    if (!decision_count.ok()) return decision_count.status();
    if (*decision_count > in.remaining() / 9) {
      return Status::Corruption("absurd checkpoint txn-decision count");
    }
    state.txn_decisions.reserve(*decision_count);
    for (std::uint64_t i = 0; i < *decision_count; ++i) {
      TxnCoordEntry entry;
      auto txn_id = in.GetU64();
      if (!txn_id.ok()) return txn_id.status();
      entry.txn_id = *txn_id;
      auto st = in.GetU8();
      if (!st.ok()) return st.status();
      if (*st > static_cast<std::uint8_t>(TxnCoordState::kAborted)) {
        return Status::Corruption("bad checkpoint txn decision state");
      }
      entry.state = static_cast<TxnCoordState>(*st);
      state.txn_decisions.push_back(entry);
    }
  }
  if (!in.AtEnd()) return Status::Corruption("checkpoint trailing bytes");
  return state;
}

std::string CheckpointFileName(std::uint64_t wal_seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "checkpoint-%020" PRIu64 ".ckpt", wal_seq);
  return buf;
}

Result<std::string> WriteCheckpointFile(const std::string& dir,
                                        const CheckpointState& state,
                                        std::uint32_t keep) {
  const auto bytes = EncodeCheckpoint(state);
  const std::string final_path = dir + "/" + CheckpointFileName(state.wal_seq);
  const std::string tmp_path = final_path + ".tmp";
  if (Status s = WriteFileDurable(tmp_path, bytes); !s.ok()) return s;
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Errno("rename checkpoint");
  }
  // The rename itself must be durable before older checkpoints go away.
  if (Status s = SyncDir(dir); !s.ok()) return s;

  const auto checkpoints = ListCheckpoints(dir);
  for (std::size_t i = std::max<std::uint32_t>(keep, 1);
       i < checkpoints.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(checkpoints[i].second, ec);
  }
  return final_path;
}

Result<LoadedCheckpoint> LoadNewestCheckpoint(const std::string& dir) {
  LoadedCheckpoint out;
  const auto checkpoints = ListCheckpoints(dir);
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    auto bytes = WriteAheadLog::ReadAll(checkpoints[i].second);
    if (bytes.ok()) {
      auto state = DecodeCheckpoint(*bytes);
      if (state.ok()) {
        out.state = std::move(*state);
        out.file = checkpoints[i].second;
        out.used_fallback = i > 0;
        return out;
      }
    }
    // Corrupt or unreadable: fall back to the next older snapshot.
  }
  return out;  // no checkpoint: empty state, wal_seq 0
}

}  // namespace ghba
