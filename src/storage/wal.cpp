#include "storage/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace ghba {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
}

std::uint32_t LoadU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void EncodeWalRecordPayload(const WalRecord& record, ByteWriter& out) {
  out.PutU8(static_cast<std::uint8_t>(record.op));
  out.PutU64(record.seq);
  out.PutString(record.path);
  switch (record.op) {
    case WalOp::kInsert:
    case WalOp::kUpdate:
      record.metadata.Serialize(out);
      break;
    case WalOp::kReplicaInstall:
      out.PutU32(record.owner);
      out.PutVarint(record.filter_blob.size());
      out.PutBytes(record.filter_blob);
      break;
    case WalOp::kReplicaDrop:
      out.PutU32(record.owner);
      break;
    case WalOp::kMembership:
      out.PutU64(record.epoch);
      out.PutVarint(record.members.size());
      for (const MdsId id : record.members) out.PutU32(id);
      break;
    case WalOp::kTxnBegin:
      out.PutU64(record.txn_id);
      out.PutVarint(record.members.size());
      for (const MdsId id : record.members) out.PutU32(id);
      break;
    case WalOp::kTxnPrepare:
      out.PutU64(record.txn_id);
      out.PutU32(record.owner);  // coordinator
      out.PutU8(static_cast<std::uint8_t>(record.txn_subop));
      out.PutVarint(record.members.size());
      for (const MdsId id : record.members) out.PutU32(id);
      if (record.txn_subop == TxnSubOp::kInsert) record.metadata.Serialize(out);
      break;
    case WalOp::kTxnCommit:
      out.PutU64(record.txn_id);
      out.PutU8(static_cast<std::uint8_t>(record.txn_subop));
      if (record.txn_subop == TxnSubOp::kInsert) record.metadata.Serialize(out);
      break;
    case WalOp::kTxnAbort:
      out.PutU64(record.txn_id);
      break;
    case WalOp::kTxnDecision:
      out.PutU64(record.txn_id);
      out.PutU8(record.txn_commit ? 1 : 0);
      break;
    case WalOp::kRemove:
    case WalOp::kClear:
      break;
  }
}

Result<WalRecord> DecodeWalRecordPayload(ByteReader& in) {
  WalRecord record;
  auto op = in.GetU8();
  if (!op.ok()) return op.status();
  if (*op < static_cast<std::uint8_t>(WalOp::kInsert) ||
      *op > static_cast<std::uint8_t>(WalOp::kTxnDecision)) {
    return Status::Corruption("bad WAL op");
  }
  record.op = static_cast<WalOp>(*op);
  auto seq = in.GetU64();
  if (!seq.ok()) return seq.status();
  record.seq = *seq;
  auto path = in.GetString();
  if (!path.ok()) return path.status();
  if (path->size() > kMaxWalPathBytes) {
    return Status::Corruption("WAL path too long");
  }
  record.path = std::move(*path);
  switch (record.op) {
    case WalOp::kInsert:
    case WalOp::kUpdate: {
      auto md = FileMetadata::Deserialize(in);
      if (!md.ok()) return md.status();
      record.metadata = std::move(*md);
      break;
    }
    case WalOp::kReplicaInstall: {
      auto owner = in.GetU32();
      if (!owner.ok()) return owner.status();
      record.owner = *owner;
      auto blob_len = in.GetVarint();
      if (!blob_len.ok()) return blob_len.status();
      if (*blob_len > in.remaining()) {
        return Status::Corruption("WAL replica blob overruns record");
      }
      auto blob = in.GetBytes(static_cast<std::size_t>(*blob_len));
      if (!blob.ok()) return blob.status();
      record.filter_blob = std::move(*blob);
      break;
    }
    case WalOp::kReplicaDrop: {
      auto owner = in.GetU32();
      if (!owner.ok()) return owner.status();
      record.owner = *owner;
      break;
    }
    case WalOp::kMembership: {
      auto epoch = in.GetU64();
      if (!epoch.ok()) return epoch.status();
      record.epoch = *epoch;
      auto count = in.GetVarint();
      if (!count.ok()) return count.status();
      if (*count > in.remaining() / sizeof(std::uint32_t)) {
        return Status::Corruption("WAL member count overruns record");
      }
      record.members.reserve(static_cast<std::size_t>(*count));
      for (std::uint64_t i = 0; i < *count; ++i) {
        auto id = in.GetU32();
        if (!id.ok()) return id.status();
        record.members.push_back(*id);
      }
      break;
    }
    case WalOp::kTxnBegin: {
      auto txn_id = in.GetU64();
      if (!txn_id.ok()) return txn_id.status();
      record.txn_id = *txn_id;
      auto count = in.GetVarint();
      if (!count.ok()) return count.status();
      if (*count > in.remaining() / sizeof(std::uint32_t)) {
        return Status::Corruption("WAL participant count overruns record");
      }
      record.members.reserve(static_cast<std::size_t>(*count));
      for (std::uint64_t i = 0; i < *count; ++i) {
        auto id = in.GetU32();
        if (!id.ok()) return id.status();
        record.members.push_back(*id);
      }
      break;
    }
    case WalOp::kTxnPrepare: {
      auto txn_id = in.GetU64();
      if (!txn_id.ok()) return txn_id.status();
      record.txn_id = *txn_id;
      auto coord = in.GetU32();
      if (!coord.ok()) return coord.status();
      record.owner = *coord;
      auto subop = in.GetU8();
      if (!subop.ok()) return subop.status();
      if (*subop < static_cast<std::uint8_t>(TxnSubOp::kInsert) ||
          *subop > static_cast<std::uint8_t>(TxnSubOp::kRemove)) {
        return Status::Corruption("bad txn sub-op");
      }
      record.txn_subop = static_cast<TxnSubOp>(*subop);
      auto count = in.GetVarint();
      if (!count.ok()) return count.status();
      if (*count > in.remaining() / sizeof(std::uint32_t)) {
        return Status::Corruption("WAL participant count overruns record");
      }
      record.members.reserve(static_cast<std::size_t>(*count));
      for (std::uint64_t i = 0; i < *count; ++i) {
        auto id = in.GetU32();
        if (!id.ok()) return id.status();
        record.members.push_back(*id);
      }
      if (record.txn_subop == TxnSubOp::kInsert) {
        auto md = FileMetadata::Deserialize(in);
        if (!md.ok()) return md.status();
        record.metadata = std::move(*md);
      }
      break;
    }
    case WalOp::kTxnCommit: {
      auto txn_id = in.GetU64();
      if (!txn_id.ok()) return txn_id.status();
      record.txn_id = *txn_id;
      auto subop = in.GetU8();
      if (!subop.ok()) return subop.status();
      if (*subop < static_cast<std::uint8_t>(TxnSubOp::kInsert) ||
          *subop > static_cast<std::uint8_t>(TxnSubOp::kRemove)) {
        return Status::Corruption("bad txn sub-op");
      }
      record.txn_subop = static_cast<TxnSubOp>(*subop);
      if (record.txn_subop == TxnSubOp::kInsert) {
        auto md = FileMetadata::Deserialize(in);
        if (!md.ok()) return md.status();
        record.metadata = std::move(*md);
      }
      break;
    }
    case WalOp::kTxnAbort: {
      auto txn_id = in.GetU64();
      if (!txn_id.ok()) return txn_id.status();
      record.txn_id = *txn_id;
      break;
    }
    case WalOp::kTxnDecision: {
      auto txn_id = in.GetU64();
      if (!txn_id.ok()) return txn_id.status();
      record.txn_id = *txn_id;
      auto verdict = in.GetU8();
      if (!verdict.ok()) return verdict.status();
      if (*verdict > 1) return Status::Corruption("bad txn verdict byte");
      record.txn_commit = (*verdict != 0);
      break;
    }
    case WalOp::kRemove:
    case WalOp::kClear:
      break;
  }
  return record;
}

std::vector<std::uint8_t> EncodeWalRecordFrame(const WalRecord& record) {
  ByteWriter payload;
  EncodeWalRecordPayload(record, payload);
  const auto& body = payload.data();
  ByteWriter frame;
  frame.PutU8(kWalMagic0);
  frame.PutU8(kWalMagic1);
  frame.PutU32(static_cast<std::uint32_t>(body.size()));
  frame.PutU32(Crc32(body.data(), body.size()));
  frame.PutBytes(body);
  return frame.Take();
}

WalReplayResult ReplayWalBuffer(std::span<const std::uint8_t> buf,
                                std::uint64_t from_seq) {
  WalReplayResult out;
  std::size_t pos = 0;
  std::uint64_t last_seq = 0;
  while (pos < buf.size()) {
    const std::size_t left = buf.size() - pos;
    if (left < kWalFrameHeaderBytes) break;  // torn header
    if (buf[pos] != kWalMagic0 || buf[pos + 1] != kWalMagic1) break;
    const std::uint32_t len = LoadU32(buf.data() + pos + 2);
    const std::uint32_t crc = LoadU32(buf.data() + pos + 6);
    if (len > kMaxWalRecordBytes) break;  // mangled length field
    if (left - kWalFrameHeaderBytes < len) break;  // torn payload
    const std::uint8_t* payload = buf.data() + pos + kWalFrameHeaderBytes;
    if (Crc32(payload, len) != crc) break;  // corrupt payload
    ByteReader in(std::span(payload, len));
    auto record = DecodeWalRecordPayload(in);
    if (!record.ok() || !in.AtEnd()) break;  // undecodable payload
    // Sequences strictly increase within one log; a regression means the
    // tail predates the last Reset and must not replay.
    if (out.scanned_records > 0 && record->seq <= last_seq) break;
    last_seq = record->seq;
    pos += kWalFrameHeaderBytes + len;
    out.valid_bytes = pos;
    ++out.scanned_records;
    if (record->seq > from_seq) out.records.push_back(std::move(*record));
  }
  out.torn_tail = out.valid_bytes != buf.size();
  return out;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(std::move(other.options_)),
      pending_(std::move(other.pending_)),
      pending_appends_(other.pending_appends_),
      size_bytes_(other.size_bytes_),
      durable_bytes_(other.durable_bytes_),
      appends_(other.appends_),
      fsyncs_(other.fsyncs_),
      appends_since_sync_(other.appends_since_sync_) {}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    options_ = std::move(other.options_);
    pending_ = std::move(other.pending_);
    pending_appends_ = other.pending_appends_;
    size_bytes_ = other.size_bytes_;
    durable_bytes_ = other.durable_bytes_;
    appends_ = other.appends_;
    fsyncs_ = other.fsyncs_;
    appends_since_sync_ = other.appends_since_sync_;
  }
  return *this;
}

Result<std::vector<std::uint8_t>> WriteAheadLog::ReadAll(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return std::vector<std::uint8_t>{};
    return Errno("open WAL");
  }
  std::vector<std::uint8_t> out;
  std::uint8_t chunk[64 << 10];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read WAL");
    }
    if (n == 0) break;
    out.insert(out.end(), chunk, chunk + n);
  }
  ::close(fd);
  return out;
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                          const StorageOptions& options,
                                          std::uint64_t offset) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open WAL");
  if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
    ::close(fd);
    return Errno("truncate WAL tail");
  }
  if (::lseek(fd, static_cast<off_t>(offset), SEEK_SET) < 0) {
    ::close(fd);
    return Errno("seek WAL");
  }
  WriteAheadLog wal;
  wal.fd_ = fd;
  wal.options_ = options;
  wal.size_bytes_ = offset;
  // The clean prefix was read back successfully, so it is on disk; whether
  // it is *stable* we cannot know, so start pessimistic and let the first
  // Sync re-establish the high-water mark.
  wal.durable_bytes_ = 0;
  if (offset > 0) {
    // Make both the truncation and the surviving prefix stable before any
    // new record lands after them.
    if (Status s = wal.Sync(); !s.ok()) return s;
  }
  return wal;
}

Status WriteAheadLog::Append(const WalRecord& record) {
  if (fd_ < 0) return Status::InvalidArgument("WAL not open");
  const auto frame = EncodeWalRecordFrame(record);
  pending_.PutBytes(frame);
  ++pending_appends_;
  ++appends_;
  return Status::Ok();
}

Status WriteAheadLog::WriteOut(const std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd_, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write WAL");
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status WriteAheadLog::Commit() {
  if (fd_ < 0) return Status::InvalidArgument("WAL not open");
  if (pending_.size() > 0) {
    if (Status s = WriteOut(pending_.data().data(), pending_.size()); !s.ok()) {
      return s;
    }
    size_bytes_ += pending_.size();
    appends_since_sync_ += pending_appends_;
    pending_.Clear();
    pending_appends_ = 0;
  }
  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      return Sync();
    case FsyncPolicy::kInterval:
      if (appends_since_sync_ >=
          std::max<std::uint32_t>(options_.fsync_interval_appends, 1)) {
        return Sync();
      }
      return Status::Ok();
    case FsyncPolicy::kNever:
      return Status::Ok();
  }
  return Status::Internal("bad fsync policy");
}

Status WriteAheadLog::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("WAL not open");
  if (::fsync(fd_) != 0) return Errno("fsync WAL");
  durable_bytes_ = size_bytes_;
  appends_since_sync_ = 0;
  ++fsyncs_;
  return Status::Ok();
}

Status WriteAheadLog::Reset() {
  if (fd_ < 0) return Status::InvalidArgument("WAL not open");
  pending_.Clear();
  pending_appends_ = 0;
  if (::ftruncate(fd_, 0) != 0) return Errno("truncate WAL");
  if (::lseek(fd_, 0, SEEK_SET) < 0) return Errno("seek WAL");
  size_bytes_ = 0;
  return Sync();
}

}  // namespace ghba
