#include "storage/recovery.hpp"

#include <algorithm>
#include <span>

#include "bloom/compressed.hpp"
#include "storage/checkpoint.hpp"

namespace ghba {

namespace {

/// Does a checkpointed filter have the geometry the server is configured
/// for? A mismatch (operator changed bits-per-file or seed between runs)
/// makes the snapshot filter useless — rebuild instead.
bool GeometryMatches(const CountingBloomFilter& a,
                     const CountingBloomFilter& b) {
  return a.num_counters() == b.num_counters() && a.k() == b.k() &&
         a.seed() == b.seed();
}

/// Exact filter over the recovered store: add every resident path into a
/// clone of the configured template.
CountingBloomFilter RebuildFilter(const MetadataStore& store,
                                  const CountingBloomFilter& filter_template) {
  CountingBloomFilter filter = filter_template;
  store.ForEach([&filter](const std::string& path, const FileMetadata&) {
    filter.Add(path);
  });
  return filter;
}

}  // namespace

StoreMutation ToStoreMutation(WalRecord record) {
  StoreMutation m;
  switch (record.op) {
    case WalOp::kInsert:
      m.kind = StoreMutation::Kind::kInsert;
      break;
    case WalOp::kUpdate:
      m.kind = StoreMutation::Kind::kUpdate;
      break;
    case WalOp::kRemove:
      m.kind = StoreMutation::Kind::kRemove;
      break;
    case WalOp::kClear:
      m.kind = StoreMutation::Kind::kClear;
      break;
    case WalOp::kReplicaInstall:
    case WalOp::kReplicaDrop:
    case WalOp::kMembership:
    case WalOp::kTxnBegin:
    case WalOp::kTxnPrepare:
    case WalOp::kTxnCommit:
    case WalOp::kTxnAbort:
    case WalOp::kTxnDecision:
      // Reconfiguration and transaction records never reach the store this
      // way; callers divert them before translating (a committed txn sub-op
      // is translated explicitly). Mapping to kClear would wipe the store,
      // so translate to a harmless no-op remove of the (empty) path instead.
      m.kind = StoreMutation::Kind::kRemove;
      break;
  }
  m.path = std::move(record.path);
  m.metadata = std::move(record.metadata);
  return m;
}

Result<RecoveredState> RecoverState(
    const std::string& data_dir, const CountingBloomFilter& filter_template) {
  RecoveredState out;

  // 1. Newest valid checkpoint (empty state when none exists).
  auto loaded = LoadNewestCheckpoint(data_dir);
  if (!loaded.ok()) return loaded.status();
  out.used_fallback_checkpoint = loaded->used_fallback;
  CheckpointState& ckpt = loaded->state;

  std::vector<StoreMutation> batch;
  batch.reserve(ckpt.files.size());
  for (auto& [path, md] : ckpt.files) {
    batch.push_back(StoreMutation{StoreMutation::Kind::kInsert,
                                  std::move(path), md});
  }
  out.store.ApplyBatch(batch);
  out.replicas = std::move(ckpt.replicas);
  out.epoch = ckpt.epoch;
  out.members = std::move(ckpt.members);
  out.txn_pending = std::move(ckpt.txn_pending);
  out.txn_decisions = std::move(ckpt.txn_decisions);

  // 2. The snapshot filter, if usable; otherwise mark for rebuild. The
  // actual replay below works on whichever one we start from.
  bool replaying_snapshot_filter =
      ckpt.has_filter && GeometryMatches(ckpt.filter, filter_template);
  out.filter_rebuilt = !replaying_snapshot_filter;
  CountingBloomFilter replayed = replaying_snapshot_filter
                                     ? std::move(ckpt.filter)
                                     : RebuildFilter(out.store, filter_template);

  // 3. Replay the WAL tail beyond the checkpoint.
  auto image = WriteAheadLog::ReadAll(data_dir + "/" + kWalFileName);
  if (!image.ok()) return image.status();
  WalReplayResult replay = ReplayWalBuffer(*image, ckpt.wal_seq);
  out.wal_valid_bytes = replay.valid_bytes;
  out.torn_tail = replay.torn_tail;
  out.replay_records = replay.records.size();

  std::uint64_t last_seq = ckpt.wal_seq;
  batch.clear();
  batch.reserve(replay.records.size());
  const auto erase_pending = [&out](std::uint64_t txn_id,
                                    const std::string& path) {
    std::erase_if(out.txn_pending, [&](const TxnPendingOp& op) {
      return op.txn_id == txn_id && op.path == path;
    });
  };
  const auto upsert_decision = [&out](std::uint64_t txn_id,
                                      TxnCoordState state) {
    for (auto& d : out.txn_decisions) {
      if (d.txn_id == txn_id) {
        d.state = state;
        return;
      }
    }
    out.txn_decisions.push_back(TxnCoordEntry{txn_id, state});
  };
  for (WalRecord& record : replay.records) {
    last_seq = std::max(last_seq, record.seq);
    // Reconfiguration records replay into the replica array / cluster
    // view; they never touch the store or the local filter.
    switch (record.op) {
      case WalOp::kReplicaInstall: {
        ByteReader blob(record.filter_blob);
        auto filter = DecompressFilter(blob);
        if (!filter.ok() || !blob.AtEnd()) {
          // The frame CRC checked out, so a bad blob means the writer
          // journaled garbage. Skip: staleness is bounded — the
          // coordinator republishes filters when the server rejoins.
          continue;
        }
        auto it = std::find_if(
            out.replicas.begin(), out.replicas.end(),
            [&record](const auto& e) { return e.first == record.owner; });
        if (it != out.replicas.end()) {
          it->second = std::move(*filter);
        } else {
          out.replicas.emplace_back(record.owner, std::move(*filter));
        }
        continue;
      }
      case WalOp::kReplicaDrop:
        std::erase_if(out.replicas, [&record](const auto& e) {
          return e.first == record.owner;
        });
        continue;
      case WalOp::kMembership:
        out.epoch = record.epoch;
        out.members = std::move(record.members);
        continue;
      case WalOp::kTxnBegin:
        // Begin precedes any decision for the same txn in seq order, but a
        // replayed begin must never roll a checkpointed decision back.
        if (std::none_of(out.txn_decisions.begin(), out.txn_decisions.end(),
                         [&record](const TxnCoordEntry& d) {
                           return d.txn_id == record.txn_id;
                         })) {
          upsert_decision(record.txn_id, TxnCoordState::kBegun);
        }
        continue;
      case WalOp::kTxnDecision:
        upsert_decision(record.txn_id, record.txn_commit
                                           ? TxnCoordState::kCommitted
                                           : TxnCoordState::kAborted);
        continue;
      case WalOp::kTxnPrepare: {
        // A re-journaled prepare (recovery re-logging) replaces the old one.
        erase_pending(record.txn_id, record.path);
        TxnPendingOp op;
        op.txn_id = record.txn_id;
        op.subop = record.txn_subop;
        op.path = std::move(record.path);
        op.metadata = std::move(record.metadata);
        op.coordinator = record.owner;
        op.participants = std::move(record.members);
        out.txn_pending.push_back(std::move(op));
        continue;
      }
      case WalOp::kTxnAbort:
        erase_pending(record.txn_id, record.path);
        out.txn_closed.emplace_back(record.txn_id, false);
        continue;
      case WalOp::kTxnCommit: {
        // One frame both applies the sub-op and closes the prepare: a torn
        // tail either replays the whole commit or none of it.
        erase_pending(record.txn_id, record.path);
        out.txn_closed.emplace_back(record.txn_id, true);
        StoreMutation m;
        m.path = std::move(record.path);
        if (record.txn_subop == TxnSubOp::kInsert) {
          replayed.Add(m.path);
          m.kind = StoreMutation::Kind::kInsert;
          m.metadata = std::move(record.metadata);
        } else {
          (void)replayed.Remove(m.path);
          m.kind = StoreMutation::Kind::kRemove;
        }
        batch.push_back(std::move(m));
        continue;
      }
      default:
        break;
    }
    // Maintain the filter alongside the store exactly as the live server
    // does: insert adds, remove removes, clear clears, update leaves the
    // membership set untouched.
    switch (record.op) {
      case WalOp::kInsert:
        replayed.Add(record.path);
        break;
      case WalOp::kRemove:
        // Replay tolerates underflow: a checkpoint may already fold in
        // this remove, making the WAL record a no-op second remove.
        (void)replayed.Remove(record.path);
        break;
      case WalOp::kClear:
        replayed.Clear();
        break;
      default:
        break;
    }
    batch.push_back(ToStoreMutation(std::move(record)));
  }
  out.store.ApplyBatch(batch);
  out.next_seq = last_seq + 1;

  // 4. L4-exactness invariant: the replayed filter must flatten to the same
  // bits as one rebuilt from scratch over the recovered store. Saturated
  // counters in the snapshot (pinned at 15, never decremented) are the one
  // legitimate way they can diverge; when they do, install the rebuilt
  // filter — exact by construction — and report the mismatch.
  if (out.filter_rebuilt) {
    // `replayed` started from the rebuilt filter; nothing to compare.
    out.filter_matched = true;
    out.filter = std::move(replayed);
  } else {
    CountingBloomFilter rebuilt = RebuildFilter(out.store, filter_template);
    out.filter_matched = replayed.ToBloomFilter() == rebuilt.ToBloomFilter();
    out.filter = out.filter_matched ? std::move(replayed) : std::move(rebuilt);
  }
  return out;
}

}  // namespace ghba
