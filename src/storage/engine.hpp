// Per-MDS durable storage engine: the facade an MdsServer drives.
//
// Open() runs crash recovery (checkpoint + WAL tail), reopens the log at
// the end of its clean prefix and hands the recovered store/filter/replicas
// to the server via TakeRecovered(). After that the server calls LogInsert /
// LogUpdate / LogRemove / LogClear after applying each mutation in memory
// and *before* acking the client — a failed log call tells the server to
// roll the mutation back and nack, so the WAL never records an op the
// client was not promised. MaybeCheckpoint() snapshots state and truncates
// the log once it grows past the configured threshold.
//
// Like the rest of per-server state, the engine is single-threaded: it is
// owned by the MDS event loop and never locked.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bloom/counting_bloom_filter.hpp"
#include "common/metrics_registry.hpp"
#include "common/status.hpp"
#include "mds/metadata.hpp"
#include "mds/store.hpp"
#include "storage/options.hpp"
#include "storage/recovery.hpp"
#include "storage/wal.hpp"

namespace ghba {

/// What recovery found, frozen at Open() time (the kRecoveryInfo RPC
/// reports this so tests and operators can audit a restart).
struct RecoveryInfo {
  std::uint64_t recovered_files = 0;
  std::uint64_t wal_seq = 0;  ///< last sequence recovered
  std::uint64_t replay_records = 0;
  bool torn_tail = false;
  bool used_fallback_checkpoint = false;
  bool filter_rebuilt = false;
  bool filter_matched = true;
  /// Cluster view recovered from the checkpoint / journaled kMembership
  /// records: the routing epoch the server last acknowledged and its group
  /// peers at that time.
  std::uint64_t epoch = 0;
  std::vector<MdsId> members;
  /// Prepared-but-undecided transaction ops recovery surfaced; each holds
  /// an intent lock until the coordinator's verdict resolves it.
  std::uint64_t txn_in_doubt = 0;
};

class StorageEngine {
 public:
  /// Recover from `options.data_dir` (created if missing) and open the WAL
  /// for appending. `filter_template` is an empty counting filter with the
  /// server's configured geometry. `registry` may be null (no metrics).
  static Result<std::unique_ptr<StorageEngine>> Open(
      const StorageOptions& options,
      const CountingBloomFilter& filter_template, MetricsRegistry* registry);

  /// Move the recovered store/filter/replicas out (valid exactly once,
  /// right after Open). The RecoveryInfo summary stays behind.
  RecoveredState TakeRecovered() { return std::move(recovered_); }

  const RecoveryInfo& recovery_info() const { return info_; }

  /// Append one mutation and commit it per the fsync policy. On error the
  /// caller must roll back the in-memory mutation and fail the request.
  Status LogInsert(std::string_view path, const FileMetadata& metadata);
  Status LogUpdate(std::string_view path, const FileMetadata& metadata);
  Status LogRemove(std::string_view path);
  Status LogClear();

  /// Journal one replica-migration phase. `blob` is the compressed filter
  /// exactly as it arrived on the wire — the log stores it opaquely. A blob
  /// too large for one WAL frame is *not* journaled (Ok is still returned):
  /// an oversized record would read back as a torn tail and break replay of
  /// everything after it. The staleness is bounded — the coordinator
  /// republishes filters when the server rejoins after a crash.
  Status LogReplicaInstall(MdsId owner, std::span<const std::uint8_t> blob);
  Status LogReplicaDrop(MdsId owner);
  /// Journal a cluster-view change (routing epoch + group members). The
  /// engine remembers the latest view and folds it into every checkpoint.
  Status LogMembership(std::uint64_t epoch, std::vector<MdsId> members);

  /// Journal two-phase-commit transitions. The engine mirrors the pending
  /// prepares and the coordinator decision table so both survive WAL
  /// truncation inside every checkpoint (v3 section). Callers follow the
  /// same discipline as the mutation loggers: journal before acking, roll
  /// back on error.
  Status LogTxnBegin(std::uint64_t txn_id,
                     const std::vector<MdsId>& participants);
  Status LogTxnDecision(std::uint64_t txn_id, bool commit);
  Status LogTxnPrepare(const TxnPendingOp& op);
  /// One frame that applies the sub-op and closes the prepare; `op` carries
  /// the sub-op, path and (for inserts) metadata to re-apply on replay.
  Status LogTxnCommit(const TxnPendingOp& op);
  Status LogTxnAbort(std::uint64_t txn_id, const std::string& path);

  /// Latest acknowledged cluster view (recovered, then tracking
  /// LogMembership).
  std::uint64_t view_epoch() const { return view_epoch_; }
  const std::vector<MdsId>& view_members() const { return view_members_; }

  /// True once the WAL has outgrown options.checkpoint_wal_bytes.
  bool CheckpointDue() const;

  /// Snapshot `store` + `filter` + `replicas` to a new checkpoint file and
  /// truncate the WAL. Barriers on an explicit WAL fsync first so the
  /// snapshot can never claim coverage of records that were not stable.
  Status WriteCheckpoint(
      const MetadataStore& store, const CountingBloomFilter& filter,
      std::vector<std::pair<MdsId, BloomFilter>> replicas);

  /// WriteCheckpoint, but only when CheckpointDue(). Returns true when a
  /// checkpoint was written.
  Result<bool> MaybeCheckpoint(
      const MetadataStore& store, const CountingBloomFilter& filter,
      std::vector<std::pair<MdsId, BloomFilter>> replicas);

  const StorageOptions& options() const { return options_; }
  const WriteAheadLog& wal() const { return wal_; }
  /// Sequence the next logged record will carry.
  std::uint64_t next_seq() const { return next_seq_; }

 private:
  StorageEngine() = default;

  Status LogRecord(WalOp op, std::string_view path,
                   const FileMetadata* metadata);
  Status CommitRecord(WalRecord record);
  void ExportWalMetrics();

  StorageOptions options_;
  WriteAheadLog wal_;
  RecoveredState recovered_;
  RecoveryInfo info_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t view_epoch_ = 0;
  std::vector<MdsId> view_members_;
  /// Mirrors of the durable txn state, folded into every checkpoint.
  std::vector<TxnPendingOp> txn_pending_;
  std::vector<TxnCoordEntry> txn_decisions_;

  bool have_metrics_ = false;
  MetricsRegistry::Counter wal_appends_;
  MetricsRegistry::Counter wal_fsyncs_;
  MetricsRegistry::Counter wal_bytes_;
  MetricsRegistry::Counter checkpoints_;
  MetricsRegistry::LatencyHistogram checkpoint_duration_ns_;
};

}  // namespace ghba
