// Configuration of the per-MDS durable storage engine.
//
// Header-only on purpose: core/config.hpp embeds StorageOptions in
// ClusterConfig so the simulator can model durability cost without linking
// the storage library; only processes that actually open a data directory
// (MdsServer in --data-dir mode, the storage tests) link ghba_storage.
#pragma once

#include <cstdint>
#include <string>

namespace ghba {

/// When the WAL forces its buffered appends to stable storage.
enum class FsyncPolicy : std::uint8_t {
  kAlways = 0,    ///< fsync on every commit — no acknowledged op is ever lost
  kInterval = 1,  ///< fsync every fsync_interval_appends appends (group commit)
  kNever = 2,     ///< never fsync — bounded loss on power failure, reported
                  ///< (not silent) via durable_bytes / RecoveryInfo
};

inline const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kNever: return "never";
  }
  return "unknown";
}

/// Parse "always" / "interval" / "never"; returns false on anything else.
inline bool ParseFsyncPolicy(const std::string& name, FsyncPolicy* out) {
  if (name == "always") {
    *out = FsyncPolicy::kAlways;
  } else if (name == "interval") {
    *out = FsyncPolicy::kInterval;
  } else if (name == "never") {
    *out = FsyncPolicy::kNever;
  } else {
    return false;
  }
  return true;
}

struct StorageOptions {
  /// Root directory of the engine. Empty = durability disabled (the
  /// in-memory-only behaviour every pre-existing test expects).
  std::string data_dir;

  FsyncPolicy fsync = FsyncPolicy::kAlways;

  /// kInterval only: appends between fsyncs (the group-commit window).
  std::uint32_t fsync_interval_appends = 32;

  /// WAL size that triggers a checkpoint (and subsequent log truncation).
  std::uint64_t checkpoint_wal_bytes = 4ULL << 20;

  /// Checkpoint files retained after a successful write. Keeping more than
  /// one lets recovery fall back to an older snapshot when the newest is
  /// corrupt (half-written before a crash, bit rot, ...).
  std::uint32_t keep_checkpoints = 2;
};

}  // namespace ghba
