#include "client/daemon_harness.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

namespace ghba {

namespace {
std::uint64_t SteadyNowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

DaemonProcess::~DaemonProcess() { Terminate(); }

DaemonProcess::DaemonProcess(DaemonProcess&& other) noexcept
    : options_(std::move(other.options_)),
      pid_(other.pid_),
      stdout_fd_(other.stdout_fd_),
      port_(other.port_) {
  other.pid_ = -1;
  other.stdout_fd_ = -1;
}

DaemonProcess& DaemonProcess::operator=(DaemonProcess&& other) noexcept {
  if (this != &other) {
    Terminate();
    options_ = std::move(other.options_);
    pid_ = other.pid_;
    stdout_fd_ = other.stdout_fd_;
    port_ = other.port_;
    other.pid_ = -1;
    other.stdout_fd_ = -1;
  }
  return *this;
}

Status DaemonProcess::Start() {
  if (running()) return Status::InvalidArgument("daemon already running");
  int pipefd[2];
  if (pipe(pipefd) != 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }

  const pid_t pid = fork();
  if (pid < 0) {
    close(pipefd[0]);
    close(pipefd[1]);
    return Status::Internal(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: stdout through the pipe, then become the daemon. Port 0 makes
    // the kernel pick; the parent learns it from the listening line.
    dup2(pipefd[1], STDOUT_FILENO);
    close(pipefd[0]);
    close(pipefd[1]);
    const std::string id_arg = std::to_string(options_.id);
    const std::string files_arg = std::to_string(options_.expected_files);
    std::vector<const char*> argv{options_.binary.c_str(), id_arg.c_str(),
                                  "0", files_arg.c_str()};
    if (!options_.data_dir.empty()) {
      argv.push_back("--data-dir");
      argv.push_back(options_.data_dir.c_str());
      argv.push_back("--fsync");
      argv.push_back(options_.fsync.c_str());
    }
    argv.push_back(nullptr);
    execv(options_.binary.c_str(), const_cast<char* const*>(argv.data()));
    std::fprintf(stderr, "execv %s: %s\n", options_.binary.c_str(),
                 std::strerror(errno));
    _exit(127);
  }

  // Parent: read the child's stdout until the listening line names a port.
  close(pipefd[1]);
  pid_ = pid;
  stdout_fd_ = pipefd[0];

  std::string seen;
  const std::uint64_t deadline = SteadyNowMs() + options_.start_timeout_ms;
  while (true) {
    if (const auto at = seen.find("listening on 127.0.0.1:");
        at != std::string::npos) {
      // The line may still be mid-write; wait for its newline so the port
      // number is complete.
      if (const auto eol = seen.find('\n', at); eol != std::string::npos) {
        port_ = static_cast<std::uint16_t>(
            std::atoi(seen.c_str() + at + std::strlen("listening on 127.0.0.1:")));
        if (port_ != 0) return Status::Ok();
        Kill9();
        return Status::Internal("daemon reported port 0");
      }
    }
    const std::uint64_t now = SteadyNowMs();
    if (now >= deadline) {
      Kill9();
      return Status::Unavailable("daemon did not report a port in time");
    }
    pollfd pfd{stdout_fd_, POLLIN, 0};
    const int n = poll(&pfd, 1, static_cast<int>(deadline - now));
    if (n == 0) continue;  // timeout: the loop re-checks the deadline
    if (n < 0) {
      if (errno == EINTR) continue;
      Kill9();
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    char buf[256];
    const ssize_t got = read(stdout_fd_, buf, sizeof(buf));
    if (got > 0) {
      seen.append(buf, static_cast<std::size_t>(got));
    } else if (got == 0) {
      Reap();
      return Status::Unavailable("daemon exited before listening");
    } else if (errno != EINTR && errno != EAGAIN) {
      Kill9();
      return Status::Internal(std::string("read: ") + std::strerror(errno));
    }
  }
}

void DaemonProcess::Kill9() {
  if (!running()) return;
  kill(pid_, SIGKILL);
  Reap();
}

void DaemonProcess::Terminate() {
  if (!running()) return;
  kill(pid_, SIGTERM);
  Reap();
}

void DaemonProcess::Reap() {
  if (pid_ > 0) {
    int wstatus = 0;
    waitpid(pid_, &wstatus, 0);
    pid_ = -1;
  }
  if (stdout_fd_ >= 0) {
    close(stdout_fd_);
    stdout_fd_ = -1;
  }
  port_ = 0;
}

// --- DaemonTxnTransport ---------------------------------------------------

void DaemonTxnTransport::SetPort(MdsId id, std::uint16_t port) {
  Peer& peer = peers_[id];
  peer.port = port;
  peer.dead = false;
  peer.session.reset();
}

void DaemonTxnTransport::MarkDead(MdsId id) {
  Peer& peer = peers_[id];
  peer.dead = true;
  peer.session.reset();
}

DaemonClient* DaemonTxnTransport::Session(MdsId id) {
  const auto it = peers_.find(id);
  if (it == peers_.end() || it->second.port == 0) return nullptr;
  if (!it->second.session.has_value()) {
    auto conn = DaemonClient::Connect(it->second.port, io_timeout_ms_);
    if (!conn.ok()) return nullptr;
    it->second.session.emplace(std::move(*conn));
  }
  return &*it->second.session;
}

void DaemonTxnTransport::Invalidate(MdsId id) {
  if (const auto it = peers_.find(id); it != peers_.end()) {
    it->second.session.reset();
  }
}

Status DaemonTxnTransport::TxnBegin(MdsId coordinator, std::uint64_t txn_id,
                                    const std::vector<MdsId>& participants) {
  DaemonClient* c = Session(coordinator);
  if (c == nullptr) return Status::Unavailable("server unreachable");
  Status s = c->TxnBegin(txn_id, participants);
  if (!s.ok()) Invalidate(coordinator);
  return s;
}

Result<std::optional<FileMetadata>> DaemonTxnTransport::TxnPrepare(
    MdsId participant, const TxnPendingOp& op) {
  DaemonClient* c = Session(participant);
  if (c == nullptr) return Status::Unavailable("server unreachable");
  TxnPrepareReq req;
  req.path = op.path;
  req.txn_id = op.txn_id;
  req.coordinator = op.coordinator;
  req.subop = op.subop;
  req.participants = op.participants;
  req.metadata = op.metadata;
  auto resp = c->TxnPrepare(req);
  if (!resp.ok()) {
    Invalidate(participant);
    return resp.status();
  }
  if (!resp->has_metadata) return std::optional<FileMetadata>();
  return std::optional<FileMetadata>(resp->metadata);
}

Status DaemonTxnTransport::TxnDecide(MdsId coordinator, std::uint64_t txn_id,
                                     bool commit) {
  DaemonClient* c = Session(coordinator);
  if (c == nullptr) return Status::Unavailable("server unreachable");
  Status s = c->TxnDecide(txn_id, commit);
  if (!s.ok()) Invalidate(coordinator);
  return s;
}

Status DaemonTxnTransport::TxnCommit(MdsId participant, std::uint64_t txn_id,
                                     const std::string& path) {
  DaemonClient* c = Session(participant);
  if (c == nullptr) return Status::Unavailable("server unreachable");
  Status s = c->TxnCommit(txn_id, path);
  if (!s.ok()) Invalidate(participant);
  return s;
}

Status DaemonTxnTransport::TxnAbort(MdsId participant, std::uint64_t txn_id,
                                    const std::string& path) {
  DaemonClient* c = Session(participant);
  if (c == nullptr) return Status::Unavailable("server unreachable");
  Status s = c->TxnAbort(txn_id, path);
  if (!s.ok()) Invalidate(participant);
  return s;
}

Result<std::vector<TxnPendingOp>> DaemonTxnTransport::TxnList(MdsId server) {
  DaemonClient* c = Session(server);
  if (c == nullptr) return Status::Unavailable("server unreachable");
  auto resp = c->TxnList();
  if (!resp.ok()) {
    Invalidate(server);
    return resp.status();
  }
  std::vector<TxnPendingOp> out;
  out.reserve(resp->entries.size());
  for (const TxnListEntry& e : resp->entries) {
    TxnPendingOp op;
    op.txn_id = e.txn_id;
    op.coordinator = e.coordinator;
    op.subop = e.subop;
    op.path = e.path;
    out.push_back(std::move(op));
  }
  return out;
}

Result<TxnResolution> DaemonTxnTransport::TxnQueryDecision(
    MdsId coordinator, std::uint64_t txn_id) {
  DaemonClient* c = Session(coordinator);
  if (c == nullptr) return Status::Unavailable("server unreachable");
  auto resp = c->TxnResolve(txn_id);
  if (!resp.ok()) {
    Invalidate(coordinator);
    return resp.status();
  }
  switch (*resp) {
    case TxnDecisionState::kPending: return TxnResolution::kPending;
    case TxnDecisionState::kCommitted: return TxnResolution::kCommitted;
    case TxnDecisionState::kAborted: return TxnResolution::kAborted;
    case TxnDecisionState::kUnknown: break;
  }
  return TxnResolution::kUnknown;
}

bool DaemonTxnTransport::TxnServerConfirmedDead(MdsId server) {
  const auto it = peers_.find(server);
  return it != peers_.end() && it->second.dead;
}

}  // namespace ghba
