#include "client/client.hpp"

#include <chrono>
#include <thread>

#include "core/metrics.hpp"

namespace ghba {

namespace {
std::uint64_t SteadyNowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Result<std::unique_ptr<Client>> Client::Open(ClusterConfig config,
                                             ProtoScheme scheme,
                                             ClientOptions options) {
  auto cluster = std::make_unique<PrototypeCluster>(std::move(config), scheme);
  if (Status s = cluster->Start(); !s.ok()) return s;
  PrototypeCluster* raw = cluster.get();
  return std::unique_ptr<Client>(
      new Client(std::move(cluster), raw, std::move(options)));
}

std::unique_ptr<Client> Client::Attach(PrototypeCluster* cluster,
                                       ClientOptions options) {
  return std::unique_ptr<Client>(
      new Client(nullptr, cluster, std::move(options)));
}

Client::Client(std::unique_ptr<PrototypeCluster> owned,
               PrototypeCluster* cluster, ClientOptions options)
    : options_(std::move(options)),
      owned_(std::move(owned)),
      cluster_(cluster),
      sketch_(options_.sketch_width, options_.sketch_depth, /*seed=*/0x5EED),
      cache_hits_(cluster_->metrics().shared_registry()->counter(
          metrics_names::kCacheHits)),
      cache_misses_(cluster_->metrics().shared_registry()->counter(
          metrics_names::kCacheMisses)),
      cache_expired_(cluster_->metrics().shared_registry()->counter(
          metrics_names::kCacheExpiredLease)),
      cache_stale_epoch_(cluster_->metrics().shared_registry()->counter(
          metrics_names::kCacheStaleEpoch)),
      cache_invalidations_(cluster_->metrics().shared_registry()->counter(
          metrics_names::kCacheInvalidations)),
      cache_hot_promotions_(cluster_->metrics().shared_registry()->counter(
          metrics_names::kCacheHotPromotions)) {}

Client::~Client() {
  if (owned_) owned_->Stop();
}

std::uint64_t Client::NowMs() const {
  return options_.clock_ms ? options_.clock_ms() : SteadyNowMs();
}

bool Client::CacheProbe(const std::string& path, std::uint64_t epoch,
                        std::uint64_t now, LookupOutcome* out) {
  const auto it = cache_.find(path);
  if (it == cache_.end()) return false;
  CacheEntry& entry = it->second;
  if (entry.epoch != epoch) {
    // The topology moved under this lease (migration, join, leave or
    // fail-over all bump the epoch); the placement it memoized may be
    // wrong, so the entry dies regardless of its remaining TTL.
    ++cache_stale_epoch_;
    lru_.erase(entry.lru_pos);
    cache_.erase(it);
    return false;
  }
  if (now >= entry.expiry_ms) {
    ++cache_expired_;
    lru_.erase(entry.lru_pos);
    cache_.erase(it);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
  out->found = true;
  out->home = entry.home;
  out->served_level = 0;  // the cascade never ran
  out->from_cache = true;
  return true;
}

void Client::CacheInsert(const std::string& path, MdsId home,
                         std::uint64_t epoch, std::uint64_t expiry_ms) {
  if (const auto it = cache_.find(path); it != cache_.end()) {
    it->second.home = home;
    it->second.epoch = epoch;
    it->second.expiry_ms = expiry_ms;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  while (cache_.size() >= options_.cache_capacity && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(path);
  cache_[path] = CacheEntry{home, epoch, expiry_ms, lru_.begin()};
}

void Client::CacheErase(const std::string& path) {
  if (const auto it = cache_.find(path); it != cache_.end()) {
    ++cache_invalidations_;
    lru_.erase(it->second.lru_pos);
    cache_.erase(it);
  }
}

void Client::NoteAccess(const std::string& path, MdsId home,
                        std::uint64_t epoch) {
  // Periodic halving keeps the sketch tracking the *recent* stream: a key
  // must sustain its rate across decays to stay hot, so yesterday's flash
  // crowd ages out instead of pinning replicas forever.
  const std::uint64_t period =
      std::max<std::uint64_t>(4096, 64ULL * options_.hot_threshold);
  if (sketch_.total() >= period) sketch_.Decay();
  const std::uint64_t estimate = sketch_.Add(path);
  if (!options_.hot_replication || home == kInvalidMds) return;
  if (estimate < options_.hot_threshold) return;
  if (const auto it = promoted_.find(path);
      it != promoted_.end() && it->second == epoch) {
    return;  // already replicated under this topology
  }
  // Best-effort: a failed replication just leaves the hot path on its
  // designated holders; the next access over threshold retries.
  if (cluster_->ReplicateHotEntry(home).ok()) {
    promoted_[path] = epoch;
    ++cache_hot_promotions_;
  }
}

Result<LookupOutcome> Client::Lookup(const std::string& path) {
  MutexLock lock(&mu_);
  // Epoch read strictly BEFORE the cascade: if a reconfiguration bumps it
  // mid-lookup, the entry below is stamped with the older epoch and the
  // next probe discards it — staleness always errs toward a re-lookup.
  const std::uint64_t epoch = cluster_->RoutingEpoch();
  const std::uint64_t now = NowMs();

  if (options_.cache_enabled) {
    LookupOutcome cached;
    if (CacheProbe(path, epoch, now, &cached)) {
      ++cache_hits_;
      NoteAccess(path, cached.home, epoch);
      return cached;
    }
    ++cache_misses_;
  }

  auto result = cluster_->Lookup(path);
  if (!result.ok() && result.status().code() == StatusCode::kRetryAfter) {
    // The home shed us off a hot, overloaded shard; one polite retry.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.retry_after_backoff_ms));
    result = cluster_->Lookup(path);
  }
  if (!result.ok()) return result.status();

  NoteAccess(path, result->found ? result->home : kInvalidMds, epoch);

  if (result->found && options_.cache_enabled) {
    // Lease the answer. A refusal (or an old peer, or a transport error)
    // simply means "do not cache"; the lookup answer stands either way.
    if (const auto lease = cluster_->RequestLease(result->home, path);
        lease.ok() && lease->granted) {
      CacheInsert(path, lease->home, epoch, now + lease->ttl_ms);
    }
  }
  return result;
}

Status Client::Insert(const std::string& path, const FileMetadata& metadata) {
  MutexLock lock(&mu_);
  return cluster_->Insert(path, metadata);
}

Status Client::InsertBatch(
    const std::vector<std::pair<std::string, FileMetadata>>& files) {
  MutexLock lock(&mu_);
  return cluster_->InsertBatch(files);
}

Status Client::Unlink(const std::string& path) {
  MutexLock lock(&mu_);
  CacheErase(path);
  promoted_.erase(path);
  if (Status s = cluster_->Unlink(path); !s.ok()) return s;
  // The home already purged its own lease under the kUnlink; the broadcast
  // kills leases and L1 entries everywhere else. Only after it succeeds is
  // the unlink coherent: no server will grant (or honour) a stale lease.
  return cluster_->InvalidatePath(path);
}

Status Client::Rename(const std::string& src, const std::string& dst) {
  MutexLock lock(&mu_);
  // Purge before driving: even a failed drive may have moved state on a
  // participant's recovery path, and a purge only costs a re-lookup.
  CacheErase(src);
  CacheErase(dst);
  promoted_.erase(src);
  if (Status s = cluster_->Rename(src, dst); !s.ok()) return s;
  // Durably committed; now make it coherent like Unlink does: the old
  // name must answer NotFound everywhere, the new name must not be
  // shadowed by a stale lease or L1 entry anywhere.
  if (Status s = cluster_->InvalidatePath(src); !s.ok()) return s;
  return cluster_->InvalidatePath(dst);
}

Status Client::CreateExclusive(const std::string& path,
                               const FileMetadata& metadata) {
  MutexLock lock(&mu_);
  return cluster_->CreateExclusive(path, metadata);
}

std::size_t Client::CacheSize() const {
  MutexLock lock(&mu_);
  return cache_.size();
}

void Client::InvalidateCache() {
  MutexLock lock(&mu_);
  cache_.clear();
  lru_.clear();
  promoted_.clear();
}

}  // namespace ghba
