// DaemonClient — a thin, typed session with ONE running mds_daemon.
//
// Where ghba::Client drives the whole multi-server lookup cascade,
// DaemonClient speaks to a single server over a single connection: it is
// the library behind the ghba_client tool (and anything else that pokes a
// daemon by port), replacing hand-rolled EncodeHeader/OpenEnvelope code at
// every call site with typed Result<T> methods. No retries, no health
// tracking — a tool talking to one known port wants the first error, not
// a fail-over.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mds/metadata.hpp"
#include "rpc/protocol.hpp"
#include "rpc/socket.hpp"

namespace ghba {

class DaemonClient {
 public:
  /// Connect to a daemon on `port` (loopback). Every subsequent call uses
  /// `io_timeout_ms` as its per-exchange deadline.
  static Result<DaemonClient> Connect(std::uint16_t port,
                                      std::uint32_t io_timeout_ms = 2000);

  DaemonClient(DaemonClient&&) = default;
  DaemonClient& operator=(DaemonClient&&) = default;

  /// What `Verify` resolved, beyond the bare present/absent bit: which
  /// server answered for the path and which replicas route to it.
  struct VerifyResult {
    bool present = false;
    /// Id of the server whose exact store holds the path (the lease
    /// grantor), or kInvalidMds against a pre-v4 daemon or when absent.
    MdsId resolved = kInvalidMds;
    bool lease_granted = false;
    std::uint32_t lease_ttl_ms = 0;
    /// Replica owners whose filters (L2 segment array) match the path on
    /// this daemon — where a cascade would route before verifying.
    std::vector<MdsId> replica_hits;
    /// The daemon's L1 verdict, when its LRU array answers uniquely.
    MdsId lru_home = kInvalidMds;
    bool lru_unique = false;
  };

  Status Ping();
  Status Insert(const std::string& path, const FileMetadata& metadata);
  Status Unlink(const std::string& path);

  /// Exact membership probe plus routing resolution: kVerify for the
  /// verdict, kLookupLocal for the L1/L2 routing picture, and (against a
  /// v4 daemon, for a present path) kLeaseGrant to learn the resolved
  /// server id from the grant.
  Result<VerifyResult> Verify(const std::string& path);

  /// Lease/invalidate pair, exposed for scripting coherence experiments.
  Result<LeaseGrantResp> RequestLease(const std::string& path);
  Status Invalidate(const std::string& path);

  Result<StatsResp> Stats();

  // --- distributed transactions (v5) ---
  // Typed wrappers over the kTxn* family, one per wire message. The
  // txn_chaos tool builds its TxnTransport from these: the same TxnDriver
  // choreography proven in-process then runs against real daemons it can
  // kill -9 between phases.
  Status TxnBegin(std::uint64_t txn_id,
                  const std::vector<MdsId>& participants);
  Result<TxnPrepareResp> TxnPrepare(const TxnPrepareReq& req);
  Status TxnDecide(std::uint64_t txn_id, bool commit);
  Status TxnCommit(std::uint64_t txn_id, const std::string& path);
  Status TxnAbort(std::uint64_t txn_id, const std::string& path);
  Result<TxnDecisionState> TxnResolve(std::uint64_t txn_id);
  Result<TxnListResp> TxnList();

  /// Protocol version the daemon speaks (kVersion; pre-v1 daemons that
  /// reject the probe report 1).
  Result<std::uint32_t> Version();

  /// Fire-and-forget kShutdown.
  Status Shutdown();

 private:
  DaemonClient(TcpConnection conn, std::uint32_t io_timeout_ms)
      : conn_(std::move(conn)), io_timeout_ms_(io_timeout_ms) {}

  /// One request/response exchange with the per-call deadline.
  Result<std::vector<std::uint8_t>> Call(const std::vector<std::uint8_t>& req);
  /// Exchange + envelope open for calls whose payload is just a Status.
  Status StatusCall(const std::vector<std::uint8_t>& req);

  TcpConnection conn_;
  std::uint32_t io_timeout_ms_;
};

}  // namespace ghba
