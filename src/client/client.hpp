// ghba::Client — the client-side front tier over the loopback prototype.
//
// PrototypeCluster is the query *coordinator* (it drives the four-level
// cascade over the wire); Client is what an application links against. It
// adds the pieces a real file-system client needs in front of that
// cascade:
//
//   * a lease/epoch-invalidated lookup cache: every positive lookup may be
//     cached, but only under a server-granted lease (kLeaseGrant, protocol
//     v4) and stamped with the routing epoch it was learned under. An
//     entry answers only while BOTH hold — the lease TTL has not expired
//     against the (injectable) clock AND the cluster's routing epoch is
//     unchanged. Any migration, join, leave or fail-over bumps the epoch
//     and thereby invalidates every older entry at once; an unlink through
//     this facade additionally broadcasts kInvalidate so server-side
//     leases and L1 entries die immediately rather than by TTL.
//   * a count-min-sketch hot-key detector over the lookup stream: when a
//     path's estimated frequency crosses ClientOptions::hot_threshold the
//     client asks the cluster to replicate the home server's filter to all
//     its group siblings (ReplicateHotEntry — the MIDAS-style response to
//     a flash crowd), once per (path, epoch).
//   * uniform Result<T> returns: no status+out-param pairs anywhere on the
//     client path.
//
// Thread safety: all facade state (cache, sketch, promotion memo) is
// GHBA_GUARDED_BY(mu_), rank kClient — strictly above kCluster, so a
// facade operation may call into the cluster but never the reverse.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/count_min_sketch.hpp"
#include "common/lookup_outcome.hpp"
#include "common/sync.hpp"
#include "rpc/prototype_cluster.hpp"

namespace ghba {

/// Knobs for the client front tier. Defaults give a useful cache; set
/// `cache_enabled = false` for an A/B baseline (bench_hotspot runs both).
struct ClientOptions {
  /// Master switch for the lookup cache (leases are not even requested
  /// when off; the sketch still runs so hot detection is comparable).
  bool cache_enabled = true;

  /// Maximum cached entries; least-recently-used beyond that.
  std::size_t cache_capacity = 4096;

  /// Count-min sketch geometry for the client-side hot-key detector.
  std::uint32_t sketch_width = 1024;
  std::uint32_t sketch_depth = 4;

  /// Estimated per-path frequency at which a path counts as hot.
  std::uint32_t hot_threshold = 64;

  /// Replicate a hot path's home filter to its group siblings when the
  /// detector fires (once per path and routing epoch).
  bool hot_replication = true;

  /// Backoff before the single retry of a lookup the server shed with
  /// kRetryAfter.
  std::uint32_t retry_after_backoff_ms = 2;

  /// Millisecond clock used for lease expiry. Tests inject a fake to
  /// advance time without sleeping; default is the steady clock.
  std::function<std::uint64_t()> clock_ms;
};

class Client {
 public:
  /// Start a fresh cluster and attach a facade to it. The returned Client
  /// owns the cluster and stops it on destruction.
  static Result<std::unique_ptr<Client>> Open(ClusterConfig config,
                                              ProtoScheme scheme,
                                              ClientOptions options = {});

  /// Attach to an already-started cluster someone else owns (tests and
  /// benches share one cluster between cache-on and cache-off facades).
  static std::unique_ptr<Client> Attach(PrototypeCluster* cluster,
                                        ClientOptions options = {});

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Four-level lookup behind the cache. A cache hit returns immediately
  /// with `from_cache = true` and `served_level = 0` (the cascade never
  /// ran); a miss runs the cluster cascade, then tries to lease the
  /// answer. A lookup the server shed (kRetryAfter) is retried once after
  /// `retry_after_backoff_ms`.
  Result<LookupOutcome> Lookup(const std::string& path);

  /// Create a file on a uniformly random server.
  Status Insert(const std::string& path, const FileMetadata& metadata);

  /// Create many files; per-server traffic rides kBatch frames.
  Status InsertBatch(
      const std::vector<std::pair<std::string, FileMetadata>>& files);

  /// Remove a file, then make the removal visible everywhere at once:
  /// purge the local cache entry and broadcast kInvalidate so every
  /// server drops its lease and L1 entry for the path. No stale positive
  /// survives a successful Unlink.
  Status Unlink(const std::string& path);

  /// Atomically rename `src` to `dst` via WAL-journaled two-phase commit
  /// across the involved MDSs (protocol v5), then make the move coherent:
  /// both local cache entries are purged and kInvalidate is broadcast for
  /// both names, so no server keeps a lease or L1 entry under the old
  /// name. Ok means the rename is durably committed — a crash anywhere
  /// after rolls it forward at recovery, never half-applies it.
  Status Rename(const std::string& src, const std::string& dst);

  /// Atomic create-if-absent through the same transaction machinery:
  /// the existence check and the insert are one prepared op under the
  /// server's intent lock, so two racing creators cannot both win.
  Status CreateExclusive(const std::string& path,
                         const FileMetadata& metadata);

  /// Cached entries right now (expired-but-unevicted entries count).
  std::size_t CacheSize() const;

  /// Drop every cached entry (bench boundary between phases).
  void InvalidateCache();

  /// The underlying cluster, for orchestration (churn, migration, stats).
  PrototypeCluster& cluster() { return *cluster_; }

 private:
  Client(std::unique_ptr<PrototypeCluster> owned, PrototypeCluster* cluster,
         ClientOptions options);

  struct CacheEntry {
    MdsId home = kInvalidMds;
    std::uint64_t epoch = 0;      ///< routing epoch the lease was taken under
    std::uint64_t expiry_ms = 0;  ///< clock_ms() past which the lease is dead
    std::list<std::string>::iterator lru_pos;
  };

  std::uint64_t NowMs() const;

  /// Cache probe: returns true and fills `out` only for an entry that is
  /// both lease-fresh and epoch-current; evicts (and accounts) otherwise.
  bool CacheProbe(const std::string& path, std::uint64_t epoch,
                  std::uint64_t now, LookupOutcome* out) GHBA_REQUIRES(mu_);
  void CacheInsert(const std::string& path, MdsId home, std::uint64_t epoch,
                   std::uint64_t expiry_ms) GHBA_REQUIRES(mu_);
  void CacheErase(const std::string& path) GHBA_REQUIRES(mu_);

  /// Feed the sketch and fire hot replication on a threshold crossing.
  void NoteAccess(const std::string& path, MdsId home, std::uint64_t epoch)
      GHBA_REQUIRES(mu_);

  const ClientOptions options_;
  std::unique_ptr<PrototypeCluster> owned_;  ///< null when attached
  PrototypeCluster* const cluster_;

  /// Serializes facade state. Rank kClient: strictly above kCluster, so
  /// every operation may call into the cluster while holding it.
  mutable Mutex mu_{LockRank::kClient};
  std::unordered_map<std::string, CacheEntry> cache_ GHBA_GUARDED_BY(mu_);
  std::list<std::string> lru_ GHBA_GUARDED_BY(mu_);  ///< front = most recent
  CountMinSketch sketch_ GHBA_GUARDED_BY(mu_);
  /// Hot-replication memo: path -> routing epoch it was promoted under.
  /// An epoch bump re-arms the promotion (the topology changed).
  std::unordered_map<std::string, std::uint64_t> promoted_
      GHBA_GUARDED_BY(mu_);

  // cache.* counters, registered in the cluster's client registry so
  // ClientSnapshot() exports the front tier alongside the rpc.* series.
  MetricsRegistry::Counter cache_hits_;
  MetricsRegistry::Counter cache_misses_;
  MetricsRegistry::Counter cache_expired_;
  MetricsRegistry::Counter cache_stale_epoch_;
  MetricsRegistry::Counter cache_invalidations_;
  MetricsRegistry::Counter cache_hot_promotions_;
};

}  // namespace ghba
