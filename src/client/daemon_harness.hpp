// Deployment-mode transaction harness: real mds_daemon processes under a
// client that can kill -9 them between 2PC phases.
//
// Two pieces, shared by the txn_chaos tool and the daemon-mode txn test:
//
//   * DaemonProcess — fork/exec one mds_daemon on an ephemeral port (the
//     child binds port 0; the parent parses the actual port from the
//     "listening on 127.0.0.1:<port>" line on the child's stdout, so
//     concurrent harnesses never collide). Kill9() delivers exactly the
//     fault the crash matrix is about: SIGKILL, no flush, no goodbye.
//     Start() on the same data dir afterwards is the recovery under test.
//
//   * DaemonTxnTransport — TxnTransport over DaemonClient connections, one
//     lazily-(re)established session per server id. Any call error drops
//     the cached session, so a daemon restarted on a NEW port just needs
//     SetPort() and the next call reconnects. Confirmed death is harness
//     bookkeeping (MarkDead after a Kill9), never a guess from timeouts —
//     exactly like the in-process orchestrator, a slow-but-alive server
//     must not trigger presumed abort.
//
// This lives in the client library (not tools/) because the daemon-mode
// test links it too: the point of the harness is that the SAME TxnDriver
// choreography proven in-process runs unchanged against real processes.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "client/daemon_client.hpp"
#include "txn/txn_driver.hpp"

namespace ghba {

/// One mds_daemon child process.
class DaemonProcess {
 public:
  struct Options {
    std::string binary;     ///< path to the mds_daemon executable
    MdsId id = 0;
    std::string data_dir;   ///< empty: volatile (no WAL, no recovery)
    std::string fsync = "always";
    std::uint64_t expected_files = 10000;
    /// How long Start() waits for the child's listening line.
    std::uint32_t start_timeout_ms = 10000;
  };

  DaemonProcess() = default;
  explicit DaemonProcess(Options options) : options_(std::move(options)) {}
  ~DaemonProcess();
  DaemonProcess(DaemonProcess&&) noexcept;
  DaemonProcess& operator=(DaemonProcess&&) noexcept;
  DaemonProcess(const DaemonProcess&) = delete;
  DaemonProcess& operator=(const DaemonProcess&) = delete;

  /// Fork/exec the daemon and wait until it reports its port. Restart after
  /// a Kill9() is the same call: same data dir, fresh (ephemeral) port.
  Status Start();

  /// SIGKILL + reap: the machine-failure fault. No-op if not running.
  void Kill9();

  /// SIGTERM + reap: a graceful stop for teardown. No-op if not running.
  void Terminate();

  bool running() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }
  /// The port the CURRENT incarnation listens on (changes across Start()s).
  std::uint16_t port() const { return port_; }
  const Options& options() const { return options_; }

 private:
  void Reap();

  Options options_;
  pid_t pid_ = -1;
  int stdout_fd_ = -1;  ///< read end of the child's stdout pipe
  std::uint16_t port_ = 0;
};

/// TxnTransport over per-server DaemonClient sessions.
class DaemonTxnTransport final : public TxnTransport {
 public:
  explicit DaemonTxnTransport(std::uint32_t io_timeout_ms = 2000)
      : io_timeout_ms_(io_timeout_ms) {}

  /// Bind (or rebind, after a restart) server `id` to `port`. Drops any
  /// cached session and clears the dead mark.
  void SetPort(MdsId id, std::uint16_t port);

  /// Record that `id` was killed (Kill9) — TxnServerConfirmedDead answers
  /// true until the next SetPort.
  void MarkDead(MdsId id);

  Status TxnBegin(MdsId coordinator, std::uint64_t txn_id,
                  const std::vector<MdsId>& participants) override;
  Result<std::optional<FileMetadata>> TxnPrepare(
      MdsId participant, const TxnPendingOp& op) override;
  Status TxnDecide(MdsId coordinator, std::uint64_t txn_id,
                   bool commit) override;
  Status TxnCommit(MdsId participant, std::uint64_t txn_id,
                   const std::string& path) override;
  Status TxnAbort(MdsId participant, std::uint64_t txn_id,
                  const std::string& path) override;
  Result<std::vector<TxnPendingOp>> TxnList(MdsId server) override;
  Result<TxnResolution> TxnQueryDecision(MdsId coordinator,
                                         std::uint64_t txn_id) override;
  bool TxnServerConfirmedDead(MdsId server) override;

 private:
  struct Peer {
    std::uint16_t port = 0;
    bool dead = false;
    std::optional<DaemonClient> session;
  };

  /// The (re)connected session for `id`, or null with the connect error
  /// left for the caller to surface as Unavailable.
  DaemonClient* Session(MdsId id);
  /// Drop `id`'s cached session after any call error (the next call
  /// reconnects — possibly to a restarted daemon).
  void Invalidate(MdsId id);

  std::uint32_t io_timeout_ms_;
  std::map<MdsId, Peer> peers_;
};

}  // namespace ghba
