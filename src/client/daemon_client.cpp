#include "client/daemon_client.hpp"

#include <chrono>

namespace ghba {

Result<DaemonClient> DaemonClient::Connect(std::uint16_t port,
                                           std::uint32_t io_timeout_ms) {
  auto conn = TcpConnection::Connect(
      port, Deadline::After(std::chrono::milliseconds(io_timeout_ms)));
  if (!conn.ok()) return conn.status();
  return DaemonClient(std::move(*conn), io_timeout_ms);
}

Result<std::vector<std::uint8_t>> DaemonClient::Call(
    const std::vector<std::uint8_t>& req) {
  const auto deadline =
      Deadline::After(std::chrono::milliseconds(io_timeout_ms_));
  if (Status s = conn_.SendFrame(req, deadline); !s.ok()) return s;
  return conn_.RecvFrame(deadline);
}

Status DaemonClient::StatusCall(const std::vector<std::uint8_t>& req) {
  auto resp = Call(req);
  if (!resp.ok()) return resp.status();
  ByteReader in(*resp);
  auto env = OpenEnvelope(in);
  if (!env.ok()) return env.status();
  return env->status;
}

Status DaemonClient::Ping() { return StatusCall(EncodeHeader(MsgType::kPing)); }

Status DaemonClient::Insert(const std::string& path,
                            const FileMetadata& metadata) {
  return StatusCall(EncodeInsert(path, metadata));
}

Status DaemonClient::Unlink(const std::string& path) {
  return StatusCall(EncodePathRequest(MsgType::kUnlink, path));
}

Result<DaemonClient::VerifyResult> DaemonClient::Verify(
    const std::string& path) {
  VerifyResult out;
  {
    auto resp = Call(EncodePathRequest(MsgType::kVerify, path));
    if (!resp.ok()) return resp.status();
    ByteReader in(*resp);
    auto env = OpenEnvelope(in);
    if (!env.ok()) return env.status();
    if (!env->has_payload) return env->status;
    auto present = DecodeBoolResp(in);
    if (!present.ok()) return present.status();
    out.present = *present;
  }
  {
    // The routing picture: which replicas (and the L1 cache) would have
    // sent a cascade here.
    auto resp = Call(EncodePathRequest(MsgType::kLookupLocal, path));
    if (!resp.ok()) return resp.status();
    ByteReader in(*resp);
    auto env = OpenEnvelope(in);
    if (!env.ok()) return env.status();
    if (!env->has_payload) return env->status;
    auto local = DecodeLocalLookupResp(in);
    if (!local.ok()) return local.status();
    out.replica_hits = std::move(local->hits);
    out.lru_unique = local->lru_unique;
    out.lru_home = local->lru_home;
  }
  if (out.present) {
    // A v4 daemon identifies itself through the lease grant; an older one
    // (kCorruption reject on the unknown type) leaves resolved unset.
    auto resp = Call(EncodePathRequest(MsgType::kLeaseGrant, path));
    if (resp.ok()) {
      ByteReader in(*resp);
      auto env = OpenEnvelope(in);
      if (env.ok() && env->has_payload) {
        if (auto lease = DecodeLeaseGrantResp(in); lease.ok()) {
          out.resolved = lease->home;
          out.lease_granted = lease->granted;
          out.lease_ttl_ms = lease->ttl_ms;
        }
      }
    }
  }
  return out;
}

Result<LeaseGrantResp> DaemonClient::RequestLease(const std::string& path) {
  auto resp = Call(EncodePathRequest(MsgType::kLeaseGrant, path));
  if (!resp.ok()) return resp.status();
  ByteReader in(*resp);
  auto env = OpenEnvelope(in);
  if (!env.ok()) return env.status();
  if (!env->has_payload) return env->status;
  return DecodeLeaseGrantResp(in);
}

Status DaemonClient::Invalidate(const std::string& path) {
  return StatusCall(EncodePathRequest(MsgType::kInvalidate, path));
}

Result<StatsResp> DaemonClient::Stats() {
  auto resp = Call(EncodeHeader(MsgType::kGetStats));
  if (!resp.ok()) return resp.status();
  ByteReader in(*resp);
  auto env = OpenEnvelope(in);
  if (!env.ok()) return env.status();
  if (!env->has_payload) return env->status;
  return DecodeStatsResp(in);
}

Status DaemonClient::TxnBegin(std::uint64_t txn_id,
                              const std::vector<MdsId>& participants) {
  TxnBeginReq req;
  req.txn_id = txn_id;
  req.participants = participants;
  return StatusCall(EncodeTxnBegin(req));
}

Result<TxnPrepareResp> DaemonClient::TxnPrepare(const TxnPrepareReq& req) {
  auto resp = Call(EncodeTxnPrepare(req));
  if (!resp.ok()) return resp.status();
  ByteReader in(*resp);
  auto env = OpenEnvelope(in);
  if (!env.ok()) return env.status();
  if (!env->has_payload) return env->status;  // a NO vote is a plain status
  return DecodeTxnPrepareResp(in);
}

Status DaemonClient::TxnDecide(std::uint64_t txn_id, bool commit) {
  TxnDecideReq req;
  req.txn_id = txn_id;
  req.commit = commit;
  return StatusCall(EncodeTxnDecide(req));
}

Status DaemonClient::TxnCommit(std::uint64_t txn_id, const std::string& path) {
  TxnFinishReq req;
  req.path = path;
  req.txn_id = txn_id;
  return StatusCall(EncodeTxnFinish(MsgType::kTxnCommit, req));
}

Status DaemonClient::TxnAbort(std::uint64_t txn_id, const std::string& path) {
  TxnFinishReq req;
  req.path = path;
  req.txn_id = txn_id;
  return StatusCall(EncodeTxnFinish(MsgType::kTxnAbort, req));
}

Result<TxnDecisionState> DaemonClient::TxnResolve(std::uint64_t txn_id) {
  auto resp = Call(EncodeTxnResolve(txn_id));
  if (!resp.ok()) return resp.status();
  ByteReader in(*resp);
  auto env = OpenEnvelope(in);
  if (!env.ok()) return env.status();
  if (!env->has_payload) return env->status;
  auto decoded = DecodeTxnResolveResp(in);
  if (!decoded.ok()) return decoded.status();
  return decoded->state;
}

Result<TxnListResp> DaemonClient::TxnList() {
  auto resp = Call(EncodeHeader(MsgType::kTxnList));
  if (!resp.ok()) return resp.status();
  ByteReader in(*resp);
  auto env = OpenEnvelope(in);
  if (!env.ok()) return env.status();
  if (!env->has_payload) return env->status;
  return DecodeTxnListResp(in);
}

Result<std::uint32_t> DaemonClient::Version() {
  auto resp = Call(EncodeHeader(MsgType::kVersion));
  if (!resp.ok()) {
    // A pre-kVersion daemon rejects the unknown type as corruption; that
    // reject is itself the answer.
    if (resp.status().code() == StatusCode::kCorruption) return 1u;
    return resp.status();
  }
  ByteReader in(*resp);
  auto env = OpenEnvelope(in);
  if (!env.ok()) return env.status();
  if (!env->has_payload) {
    return env->status.ok() ? Result<std::uint32_t>(1u)
                            : Result<std::uint32_t>(env->status);
  }
  return DecodeVersionResp(in);
}

Status DaemonClient::Shutdown() {
  return conn_.SendFrame(
      EncodeHeader(MsgType::kShutdown),
      Deadline::After(std::chrono::milliseconds(io_timeout_ms_)));
}

}  // namespace ghba
