#include "hash/hash_family.hpp"

// HashFamily is header-only today; this TU anchors the library target and
// keeps a home for future out-of-line additions.
