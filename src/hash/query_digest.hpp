// Digest-once query context.
//
// A metadata operation probes many Bloom filters: the L1 LRU array's
// per-home filters, the L2 segment array's theta replicas, every group
// member's filters at L3 and every alive MDS's local filter at L4. All of
// those filters hash the same path, and filters sharing a seed produce the
// same 128-bit digest — so the lookup stack threads one QueryDigest per
// operation and each call site asks it for the digest under the filter's
// seed. The digest is computed lazily, at most once per distinct seed.
//
// The object holds a *view* of the key; it must not outlive the string it
// was constructed from. One QueryDigest per operation, created at the top
// of the call stack (e.g. GhbaCluster::Lookup), is the intended use.
#pragma once

#include <cstdint>
#include <string_view>

#include "hash/murmur3.hpp"

namespace ghba {

class QueryDigest {
 public:
  explicit QueryDigest(std::string_view key) : key_(key) {}

  std::string_view key() const { return key_; }

  /// The key's Murmur3_128 digest under `seed`, computed on first use and
  /// cached. Operations meet at most a handful of distinct seeds (the L1
  /// array's, the shared replica geometry's, rarely a stray entry's); if
  /// more than kMaxSeeds show up, the extras are served uncached — still
  /// correct, just without the memoization.
  const Hash128& For(std::uint64_t seed) {
    for (std::size_t i = 0; i < cached_; ++i) {
      if (seeds_[i] == seed) return digests_[i];
    }
    const Hash128 d = Murmur3_128(key_, seed);
    if (cached_ < kMaxSeeds) {
      seeds_[cached_] = seed;
      digests_[cached_] = d;
      return digests_[cached_++];
    }
    overflow_ = d;
    return overflow_;
  }

 private:
  static constexpr std::size_t kMaxSeeds = 4;

  std::string_view key_;
  std::size_t cached_ = 0;
  std::uint64_t seeds_[kMaxSeeds] = {};
  Hash128 digests_[kMaxSeeds];
  Hash128 overflow_;
};

}  // namespace ghba
