// XXH64-style 64-bit hash (Yann Collet's xxHash algorithm, reimplemented).
//
// Cheaper than Murmur3-128 when only 64 bits are needed (e.g. hashing file
// IDs for placement decisions); also serves as an independent family for
// cross-checking Bloom index distributions in tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ghba {

/// Raw-byte form; distinct name so char* literals can't silently convert to
/// `const void*` and pick the wrong overload.
std::uint64_t Xx64Raw(const void* data, std::size_t len, std::uint64_t seed = 0);

inline std::uint64_t Xx64(std::string_view s, std::uint64_t seed = 0) {
  return Xx64Raw(s.data(), s.size(), seed);
}

}  // namespace ghba
