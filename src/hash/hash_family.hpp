// k-index Bloom-filter probe generation.
//
// The paper's filters use "k independent hash functions". Computing k full
// hashes per probe is wasteful; Kirsch & Mitzenmacher ("Less Hashing, Same
// Performance", 2006) show g_i(x) = h1(x) + i*h2(x) mod m preserves the
// asymptotic false-positive rate. We compute one Murmur3 128-bit digest and
// derive all k indices from its two 64-bit halves.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "hash/murmur3.hpp"

namespace ghba {

/// Precomputed probe positions for one key against a filter of m bits.
/// A small fixed-capacity container avoids per-query heap allocation.
class ProbeSet {
 public:
  static constexpr std::size_t kMaxK = 32;

  std::size_t size() const { return size_; }
  std::uint64_t operator[](std::size_t i) const { return idx_[i]; }

  void Clear() { size_ = 0; }
  void Push(std::uint64_t v) {
    if (size_ < kMaxK) idx_[size_++] = v;
  }

  const std::uint64_t* begin() const { return idx_; }
  const std::uint64_t* end() const { return idx_ + size_; }

 private:
  std::uint64_t idx_[kMaxK];
  std::size_t size_ = 0;
};

/// Derives k probe indices in [0, m) for a key, double-hashing style.
/// Stateless and cheap to copy; `seed` decorrelates distinct filters
/// (e.g. the LRU array vs. the main array vs. the IDBFA).
class HashFamily {
 public:
  HashFamily(std::uint32_t k, std::uint64_t seed = 0) : k_(k), seed_(seed) {}

  std::uint32_t k() const { return k_; }
  std::uint64_t seed() const { return seed_; }

  /// Fill `out` with the k indices for `key` against an m-bit filter.
  void Probe(std::string_view key, std::uint64_t m, ProbeSet& out) const {
    const Hash128 d = Murmur3_128(key, seed_);
    FillProbes(d, m, out);
  }

  /// Probe from an already-hashed 128-bit digest (lets callers hash once and
  /// test against many filters of the same geometry).
  void FillProbes(const Hash128& digest, std::uint64_t m, ProbeSet& out) const {
    out.Clear();
    std::uint64_t h1 = digest.lo % m;
    // Murmur3-x64-128's halves are correlated in their low bits for short
    // (tail-only) keys — measured full-probe collisions ~2^15 above the
    // birthday bound when using hi directly. Remixing hi restores pairwise
    // independence. h2 must also be non-zero; forcing odd works for both
    // power-of-two and arbitrary m.
    std::uint64_t h2 = (Mix64(digest.hi) % m) | 1;
    for (std::uint32_t i = 0; i < k_; ++i) {
      out.Push(h1);
      h1 += h2;
      if (h1 >= m) h1 -= m;
    }
  }

 private:
  std::uint32_t k_;
  std::uint64_t seed_;
};

}  // namespace ghba
