// FNV-1a: tiny, dependency-free string hash.
//
// Used where a second independent hash family is needed (IDBFA seeds,
// modular hash placement) and in tests as a reference implementation.
#pragma once

#include <cstdint>
#include <string_view>

namespace ghba {

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t Fnv1a64(std::string_view s,
                                std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t h = seed;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace ghba
