// MurmurHash3 x64 128-bit (Austin Appleby, public domain), reimplemented.
//
// This is the primary hash for Bloom-filter indexing: one 128-bit digest per
// key feeds the Kirsch-Mitzenmacher double-hashing scheme, so k filter
// probes cost a single hash computation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ghba {

struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;
};

/// MurmurHash3 x64 128-bit over an arbitrary byte range. Named distinctly
/// from the string_view overload: a `const char*` literal would otherwise
/// silently convert to `const void*` and hash the wrong bytes.
Hash128 Murmur3_128Raw(const void* data, std::size_t len,
                       std::uint64_t seed = 0);

inline Hash128 Murmur3_128(std::string_view s, std::uint64_t seed = 0) {
  return Murmur3_128Raw(s.data(), s.size(), seed);
}

/// Convenience 64-bit slice of the 128-bit digest.
inline std::uint64_t Murmur3_64(std::string_view s, std::uint64_t seed = 0) {
  return Murmur3_128(s, seed).lo;
}

/// Test hook: number of Murmur3_128 digest computations performed by this
/// thread so far. Lets tests assert the digest-once contract end-to-end
/// (e.g. "an L4-deep lookup hashes the path at most once per distinct
/// filter seed") without instrumenting the call sites.
std::uint64_t Murmur3DigestCount();

}  // namespace ghba
