#include "bloom/bloom_filter_array.hpp"

#include <algorithm>

namespace ghba {

Status BloomFilterArray::AddEntry(MdsId owner, BloomFilter filter) {
  if (HasEntry(owner)) return Status::AlreadyExists("owner already present");
  entries_.push_back(Entry{owner, std::move(filter)});
  return Status::Ok();
}

Result<BloomFilter> BloomFilterArray::RemoveEntry(MdsId owner) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [owner](const Entry& e) { return e.owner == owner; });
  if (it == entries_.end()) return Status::NotFound("no entry for owner");
  BloomFilter out = std::move(it->filter);
  entries_.erase(it);
  return out;
}

Status BloomFilterArray::RefreshEntry(MdsId owner, const BloomFilter& fresh) {
  BloomFilter* bf = FindMutable(owner);
  if (bf == nullptr) return Status::NotFound("no entry for owner");
  return bf->CopyBitsFrom(fresh);
}

bool BloomFilterArray::HasEntry(MdsId owner) const {
  return Find(owner) != nullptr;
}

const BloomFilter* BloomFilterArray::Find(MdsId owner) const {
  for (const Entry& e : entries_) {
    if (e.owner == owner) return &e.filter;
  }
  return nullptr;
}

BloomFilter* BloomFilterArray::FindMutable(MdsId owner) {
  for (Entry& e : entries_) {
    if (e.owner == owner) return &e.filter;
  }
  return nullptr;
}

namespace {

ArrayQueryResult Classify(std::vector<MdsId> hits) {
  ArrayQueryResult result;
  result.all_hits = std::move(hits);
  if (result.all_hits.size() == 1) {
    result.kind = ArrayQueryResult::Kind::kUniqueHit;
    result.owner = result.all_hits.front();
  } else if (result.all_hits.empty()) {
    result.kind = ArrayQueryResult::Kind::kZeroHit;
  } else {
    result.kind = ArrayQueryResult::Kind::kMultiHit;
  }
  return result;
}

}  // namespace

ArrayQueryResult BloomFilterArray::Query(std::string_view key) const {
  QueryDigest digest(key);
  std::vector<MdsId> hits;
  for (const Entry& e : entries_) {
    if (e.filter.MayContain(digest.For(e.filter.seed()))) {
      hits.push_back(e.owner);
    }
  }
  return Classify(std::move(hits));
}

bool BloomFilterArray::UniformGeometry() const {
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (!entries_[i].filter.SameGeometry(entries_.front().filter)) {
      return false;
    }
  }
  return true;
}

ArrayQueryResult BloomFilterArray::QueryShared(std::string_view key) const {
  QueryDigest digest(key);
  return QueryShared(digest);
}

ArrayQueryResult BloomFilterArray::QueryShared(QueryDigest& digest) const {
  std::vector<MdsId> hits;
  QuerySharedInto(digest, hits);
  return Classify(std::move(hits));
}

std::size_t BloomFilterArray::QuerySharedInto(QueryDigest& digest,
                                              std::vector<MdsId>& hits) const {
  const std::size_t before = hits.size();
  for (const Entry& e : entries_) {
    if (e.filter.MayContain(digest.For(e.filter.seed()))) {
      hits.push_back(e.owner);
    }
  }
  return hits.size() - before;
}

std::vector<MdsId> BloomFilterArray::Owners() const {
  std::vector<MdsId> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.owner);
  return out;
}

std::uint64_t BloomFilterArray::MemoryBytes() const {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.filter.MemoryBytes();
  return total;
}

}  // namespace ghba
