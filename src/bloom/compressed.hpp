// Compressed Bloom-filter encoding for replica shipping.
//
// The paper's related work cites Mitzenmacher's compressed Bloom filters:
// filters tuned for transmission can be cheaper on the wire than in RAM.
// Replicas shipped during reconfiguration are often far from their design
// load (a fresh MDS's filter is nearly empty; a split installs many
// lightly-filled copies), where gap coding of the set-bit positions beats
// the raw bit vector by orders of magnitude. The encoder builds both
// representations and sends the smaller, so dense (near 50% fill) filters
// never regress beyond one header byte.
//
// Wire format: [u8 mode] [payload]
//   mode 0: raw      — BloomFilter::Serialize bytes
//   mode 1: gap      — k, seed, inserted, num_bits, popcount, then varint
//                      gaps between consecutive set-bit indices (first gap
//                      is the first set bit's index).
#pragma once

#include <cstdint>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"

namespace ghba {

/// Encode, choosing the smaller of raw and gap representations.
std::vector<std::uint8_t> CompressFilter(const BloomFilter& filter);

/// Decode either representation.
Result<BloomFilter> DecompressFilter(ByteReader& in);

/// Convenience: wire bytes of the compressed form.
std::size_t CompressedSizeBytes(const BloomFilter& filter);

}  // namespace ghba
