// Counting Bloom filter (Fan et al., Summary Cache) with 4-bit counters.
//
// Used wherever the represented set shrinks over time: the LRU Bloom-filter
// array (entries age out) and the IDBFA (replicas move between MDSs on
// reconfiguration, so IDs must be deletable). Counters saturate at 15 and,
// once saturated, are never decremented — the classic safe-overflow rule
// that keeps false negatives impossible at the cost of a few stuck bits.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"
#include "hash/hash_family.hpp"

namespace ghba {

class CountingBloomFilter {
 public:
  CountingBloomFilter() : family_(1, 0) {}
  CountingBloomFilter(std::uint64_t num_counters, std::uint32_t k,
                      std::uint64_t seed = 0);

  static CountingBloomFilter ForCapacity(std::uint64_t expected_items,
                                         double counters_per_item,
                                         std::uint64_t seed = 0);

  void Add(std::string_view key);
  void Add(const Hash128& digest);

  /// Decrement the key's counters. Removing a key whose counters are not
  /// all positive (a remove-without-add, e.g. a stale IDBFA member-leave)
  /// would plant false negatives for genuinely present keys, so the filter
  /// is checked first: on any zero counter the call returns
  /// kInvalidArgument, changes nothing, and bumps underflow_count().
  /// Saturated counters are pinned (their true count is unknown) and are
  /// never decremented, so a saturated key stays visible forever.
  Status Remove(std::string_view key);
  Status Remove(const Hash128& digest);

  bool MayContain(std::string_view key) const;
  bool MayContain(const Hash128& digest) const;

  void Clear();

  std::uint64_t num_counters() const { return counters_.size() * 2; }
  std::uint32_t k() const { return family_.k(); }
  std::uint64_t seed() const { return family_.seed(); }
  std::uint64_t item_count() const { return items_; }

  /// Number of counters that have ever saturated (diagnostic).
  std::uint64_t overflow_count() const { return overflows_; }

  /// Number of rejected removes of non-members (diagnostic). A nonzero
  /// value means some caller's add/remove bookkeeping is out of sync.
  std::uint64_t underflow_count() const { return underflows_; }

  /// Flatten to a plain BloomFilter with identical geometry (counter>0 ->
  /// bit set). This is how an MDS ships a snapshot of a counting filter.
  BloomFilter ToBloomFilter() const;

  std::uint64_t MemoryBytes() const { return counters_.size(); }

  void Serialize(ByteWriter& out) const;
  static Result<CountingBloomFilter> Deserialize(ByteReader& in);

 private:
  std::uint8_t Get(std::uint64_t i) const {
    const std::uint8_t byte = counters_[i >> 1];
    return (i & 1) ? (byte >> 4) : (byte & 0x0f);
  }
  void Put(std::uint64_t i, std::uint8_t v) {
    std::uint8_t& byte = counters_[i >> 1];
    if (i & 1) {
      byte = static_cast<std::uint8_t>((byte & 0x0f) | (v << 4));
    } else {
      byte = static_cast<std::uint8_t>((byte & 0xf0) | (v & 0x0f));
    }
  }

  std::vector<std::uint8_t> counters_;  // two 4-bit counters per byte
  HashFamily family_;
  std::uint64_t items_ = 0;
  std::uint64_t overflows_ = 0;
  std::uint64_t underflows_ = 0;
};

}  // namespace ghba
