// Analytic false-rate model for *stale* Bloom-filter replicas.
//
// The paper leans on its companion analysis (Zhu & Jiang, "False rate
// analysis of Bloom filter replicas in distributed systems", ICPP'06 — its
// reference [33]) to explain why the L4 share grows with staleness: between
// publishes, a replica neither contains files created since the snapshot
// (false negatives for the hierarchy) nor forgets files deleted since
// (false positives). These estimators quantify both given the churn since
// the last publish, and the property tests check them against measured
// rates on real filters.
#pragma once

#include <cstdint>

namespace ghba {

struct StalenessEstimate {
  /// P(a uniformly chosen *currently existing* home file misses in the
  /// replica) — the false-negative rate the L2/L3 levels suffer.
  double false_negative_rate = 0;
  /// P(a uniformly chosen *deleted-since-publish* file still hits the
  /// replica) — the false-positive rate that sends queries to a home that
  /// no longer has the file.
  double deleted_hit_rate = 0;
};

/// `published_files`: home's file count at the last publish;
/// `added` / `removed`: mutations since (removed counts only files that
/// existed at publish time); `bits_per_item`: the filter's design ratio.
StalenessEstimate EstimateStaleness(std::uint64_t published_files,
                                    std::uint64_t added, std::uint64_t removed,
                                    double bits_per_item);

/// Mutation budget B such that the expected false-negative rate stays below
/// `target_fn_rate` for a home of `files` files — the inverse problem an
/// operator solves when picking ClusterConfig::publish_after_mutations.
std::uint64_t PublishBudgetFor(double target_fn_rate, std::uint64_t files);

}  // namespace ghba
