// Scalable counting Bloom filter (in the spirit of the Dynamic Bloom
// Filters the paper's related-work section cites).
//
// A fixed-capacity filter sized for `expected_files_per_mds` degrades when a
// home MDS outgrows its estimate: the false-positive rate climbs past the
// design point. The scalable filter chains counting sub-filters: inserts go
// to the newest ("active") sub-filter, and when it reaches its design load a
// fresh one is appended — each new stage sized by a growth factor so the
// chain stays short. Membership ORs across stages; removals must find the
// stage that holds the key (callers guarantee remove-after-add, so probing
// stages newest-to-oldest and decrementing the first positive stage is safe
// up to false-positive aliasing, which the counting semantics tolerate).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "bloom/counting_bloom_filter.hpp"

namespace ghba {

class ScalableCountingFilter {
 public:
  struct Options {
    std::uint64_t initial_capacity = 4096;
    double counters_per_item = 16.0;
    double growth_factor = 2.0;  ///< each new stage is this much larger
    std::uint64_t seed = 0x7777;
  };

  explicit ScalableCountingFilter(Options options);

  void Add(std::string_view key);
  void Remove(std::string_view key);
  bool MayContain(std::string_view key) const;

  std::uint64_t item_count() const { return items_; }
  std::size_t stage_count() const { return stages_.size(); }
  std::uint64_t MemoryBytes() const;

  /// Expected false-positive rate of the whole chain (union bound over the
  /// stages' individual rates).
  double ExpectedFalsePositiveRate() const;

 private:
  struct Stage {
    CountingBloomFilter filter;
    std::uint64_t capacity;
    std::uint64_t items = 0;
  };

  void AddStage();

  Options options_;
  std::vector<Stage> stages_;
  std::uint64_t items_ = 0;
};

}  // namespace ghba
