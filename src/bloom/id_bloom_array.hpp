// ID Bloom Filter Array (IDBFA) — replica-location directory inside a group.
//
// Section 2.4: within a group, each BF replica lives on exactly one member
// MDS, and replicas migrate between members during reconfiguration. To
// update a replica one must first find which member currently holds it. The
// IDBFA holds one *counting* Bloom filter per group member, containing the
// owner-IDs of the replicas that member stores. Counting filters support
// deletion, which migration and member departure require.
//
// Multiple hits are tolerable (the falsely-identified member simply drops
// the request); the Locate() result therefore exposes every hit. An exact
// shadow map is intentionally NOT kept here — fidelity to the paper's
// probabilistic design is the point — but the filters are tiny (the paper
// quotes <0.1 KB per MDS at N=100), so callers can afford high bit ratios.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bloom/bloom_filter_array.hpp"
#include "bloom/counting_bloom_filter.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"

namespace ghba {

struct IdBloomArrayOptions {
  /// Counters per expected replica-ID; generous because the structure is
  /// tiny and false positives cost a wasted message.
  double counters_per_item = 16.0;
  /// Expected replica IDs per member filter.
  std::uint64_t expected_ids_per_member = 64;
  std::uint64_t seed = 0x2222;
};

class IdBloomArray {
 public:
  using Options = IdBloomArrayOptions;

  explicit IdBloomArray(Options options = Options());

  /// Register a group member (empty filter). Idempotent.
  void AddMember(MdsId member);

  /// Remove a member and its filter. The caller re-registers the replicas
  /// that member held under their new holders.
  Status RemoveMember(MdsId member);

  bool HasMember(MdsId member) const;
  std::vector<MdsId> Members() const;

  /// Record that `member` now holds the replica owned by `replica_owner`.
  Status AddReplica(MdsId member, MdsId replica_owner);

  /// Record that `member` no longer holds `replica_owner`'s replica.
  Status RemoveReplica(MdsId member, MdsId replica_owner);

  /// Convenience: move a replica between members.
  Status MoveReplica(MdsId from, MdsId to, MdsId replica_owner);

  /// Probabilistic location of the member holding `replica_owner`'s
  /// replica. kUniqueHit gives the member id; kMultiHit lists candidates.
  ArrayQueryResult Locate(MdsId replica_owner) const;

  std::uint64_t MemoryBytes() const;

  void Serialize(ByteWriter& out) const;
  static Result<IdBloomArray> Deserialize(ByteReader& in);

 private:
  static Hash128 DigestOf(MdsId replica_owner, std::uint64_t seed);

  Options options_;
  // std::map keeps members ordered -> deterministic multicast order and
  // serialization; group sizes are single digits, so O(log M) is free.
  std::map<MdsId, CountingBloomFilter> filters_;
};

}  // namespace ghba
