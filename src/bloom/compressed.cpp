#include "bloom/compressed.hpp"

namespace ghba {

namespace {
constexpr std::uint8_t kModeRaw = 0;
constexpr std::uint8_t kModeGap = 1;

std::vector<std::uint8_t> EncodeGaps(const BloomFilter& filter) {
  ByteWriter w;
  w.PutU8(kModeGap);
  w.PutU32(filter.k());
  w.PutU64(filter.seed());
  w.PutU64(filter.inserted_count());
  w.PutVarint(filter.num_bits());
  const auto& bits = filter.bits();
  const std::uint64_t popcount = bits.PopCount();
  w.PutVarint(popcount);
  std::uint64_t prev = 0;
  bool first = true;
  for (std::uint64_t i = 0; i < bits.size(); ++i) {
    if (!bits.Test(i)) continue;
    w.PutVarint(first ? i : i - prev);
    prev = i;
    first = false;
  }
  return w.Take();
}

}  // namespace

std::vector<std::uint8_t> CompressFilter(const BloomFilter& filter) {
  ByteWriter raw;
  raw.PutU8(kModeRaw);
  filter.Serialize(raw);

  // Gap coding only pays when the filter is sparse; a quick bound (each
  // gap costs >= 1 byte) skips the full encode for dense filters.
  const std::uint64_t popcount = filter.bits().PopCount();
  if (popcount < raw.size()) {
    auto gaps = EncodeGaps(filter);
    if (gaps.size() < raw.size()) return gaps;
  }
  return raw.Take();
}

Result<BloomFilter> DecompressFilter(ByteReader& in) {
  auto mode = in.GetU8();
  if (!mode.ok()) return mode.status();
  if (*mode == kModeRaw) return BloomFilter::Deserialize(in);
  if (*mode != kModeGap) return Status::Corruption("bad compression mode");

  auto k = in.GetU32();
  if (!k.ok()) return k.status();
  if (*k < 1 || *k > ProbeSet::kMaxK) return Status::Corruption("bad k");
  auto seed = in.GetU64();
  if (!seed.ok()) return seed.status();
  auto inserted = in.GetU64();
  if (!inserted.ok()) return inserted.status();
  auto num_bits = in.GetVarint();
  if (!num_bits.ok()) return num_bits.status();
  if (*num_bits == 0 || *num_bits > kMaxWireFilterBits) {
    return Status::Corruption("bad filter size");
  }
  auto popcount = in.GetVarint();
  if (!popcount.ok()) return popcount.status();
  if (*popcount > *num_bits) return Status::Corruption("popcount > bits");
  // Every gap costs at least one wire byte; a popcount the payload cannot
  // back is corruption we can detect before decoding any gaps.
  if (*popcount > in.remaining()) {
    return Status::Corruption("popcount exceeds payload");
  }

  BitVector bits(*num_bits);
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < *popcount; ++i) {
    auto gap = in.GetVarint();
    if (!gap.ok()) return gap.status();
    pos = (i == 0) ? *gap : pos + *gap;
    if (pos >= *num_bits) return Status::Corruption("gap beyond filter");
    bits.Set(pos);
  }
  return BloomFilter::FromBits(std::move(bits), *k, *seed, *inserted);
}

std::size_t CompressedSizeBytes(const BloomFilter& filter) {
  return CompressFilter(filter).size();
}

}  // namespace ghba
