#include "bloom/bloom_filter.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "bloom/bloom_math.hpp"

namespace ghba {

BloomFilter::BloomFilter(std::uint64_t num_bits, std::uint32_t k,
                         std::uint64_t seed)
    : bits_(std::max<std::uint64_t>(num_bits, 1)), family_(k, seed) {
  assert(k >= 1 && k <= ProbeSet::kMaxK);
}

BloomFilter BloomFilter::ForCapacity(std::uint64_t expected_items,
                                     double bits_per_item,
                                     std::uint64_t seed) {
  const auto items = std::max<std::uint64_t>(expected_items, 1);
  const auto bits = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(items) * bits_per_item));
  const std::uint32_t k =
      OptimalK(static_cast<double>(bits), static_cast<double>(items));
  return BloomFilter(bits, k, seed);
}

BloomFilter BloomFilter::FromBits(BitVector bits, std::uint32_t k,
                                  std::uint64_t seed, std::uint64_t inserted) {
  assert(bits.size() >= 1);
  BloomFilter bf(bits.size(), k, seed);
  bf.bits_ = std::move(bits);
  bf.inserted_ = inserted;
  return bf;
}

void BloomFilter::Add(std::string_view key) { Add(Murmur3_128(key, seed())); }

void BloomFilter::Add(const Hash128& digest) {
  ProbeSet probes;
  family_.FillProbes(digest, num_bits(), probes);
  for (const std::uint64_t i : probes) bits_.Set(i);
  ++inserted_;
}

bool BloomFilter::MayContain(std::string_view key) const {
  return MayContain(Murmur3_128(key, seed()));
}

bool BloomFilter::MayContain(const Hash128& digest) const {
  ProbeSet probes;
  family_.FillProbes(digest, num_bits(), probes);
  for (const std::uint64_t i : probes) {
    if (!bits_.Test(i)) return false;
  }
  return true;
}

void BloomFilter::Clear() {
  bits_.Reset();
  inserted_ = 0;
}

double BloomFilter::FillRatio() const {
  if (num_bits() == 0) return 0.0;
  return static_cast<double>(bits_.PopCount()) /
         static_cast<double>(num_bits());
}

double BloomFilter::ExpectedFalsePositiveRate() const {
  return BloomFalsePositiveRate(static_cast<double>(num_bits()),
                                static_cast<double>(inserted_), k());
}

bool BloomFilter::SameGeometry(const BloomFilter& other) const {
  return num_bits() == other.num_bits() && k() == other.k() &&
         seed() == other.seed();
}

void BloomFilter::UnionWith(const BloomFilter& other) {
  assert(SameGeometry(other));
  bits_.OrWith(other.bits_);
  inserted_ += other.inserted_;  // upper bound; duplicates unknown
}

void BloomFilter::IntersectWith(const BloomFilter& other) {
  assert(SameGeometry(other));
  bits_.AndWith(other.bits_);
  // Cardinality after AND is unknowable exactly; re-estimate from popcount.
  inserted_ = static_cast<std::uint64_t>(
      EstimateCardinality(static_cast<double>(num_bits()), k(),
                          static_cast<double>(bits_.PopCount())));
}

std::uint64_t BloomFilter::XorDistance(const BloomFilter& other) const {
  assert(SameGeometry(other));
  return bits_.HammingDistance(other.bits_);
}

Status BloomFilter::CopyBitsFrom(const BloomFilter& other) {
  if (!SameGeometry(other)) {
    return Status::InvalidArgument("bloom geometry mismatch");
  }
  bits_ = other.bits_;
  inserted_ = other.inserted_;
  return Status::Ok();
}

void BloomFilter::Serialize(ByteWriter& out) const {
  out.PutU32(family_.k());
  out.PutU64(family_.seed());
  out.PutU64(inserted_);
  bits_.Serialize(out);
}

Result<BloomFilter> BloomFilter::Deserialize(ByteReader& in) {
  auto k = in.GetU32();
  if (!k.ok()) return k.status();
  if (*k < 1 || *k > ProbeSet::kMaxK) return Status::Corruption("bad k");
  auto seed = in.GetU64();
  if (!seed.ok()) return seed.status();
  auto inserted = in.GetU64();
  if (!inserted.ok()) return inserted.status();
  auto bits = BitVector::Deserialize(in);
  if (!bits.ok()) return bits.status();
  if (bits->size() == 0) return Status::Corruption("empty filter");
  BloomFilter bf(bits->size(), *k, *seed);
  bf.bits_ = std::move(*bits);
  bf.inserted_ = *inserted;
  return bf;
}

}  // namespace ghba
