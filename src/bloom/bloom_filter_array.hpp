// Bloom Filter Array (BFA): an ordered set of (owner MDS, filter) entries
// queried with unique-hit semantics.
//
// This is the paper's basic building block: an array "returns a hit when
// exactly one filter gives a positive response; a miss takes place when zero
// hits or multiple hits are found" (Section 2.1). The same container backs
// the full global array of the HBA/BFA baselines and the per-MDS segment
// array of G-HBA (which holds only theta replicas).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "common/lookup_outcome.hpp"  // canonical MdsId / kInvalidMds
#include "common/status.hpp"
#include "hash/murmur3.hpp"
#include "hash/query_digest.hpp"

namespace ghba {

/// Outcome of a unique-hit membership query against an array.
struct ArrayQueryResult {
  enum class Kind { kZeroHit, kUniqueHit, kMultiHit };

  Kind kind = Kind::kZeroHit;
  MdsId owner = kInvalidMds;      ///< valid only for kUniqueHit
  std::vector<MdsId> all_hits;    ///< every filter that answered positive

  bool unique() const { return kind == Kind::kUniqueHit; }
};

class BloomFilterArray {
 public:
  /// Insert a filter owned by `owner`. Fails with kAlreadyExists if the
  /// owner already has an entry.
  Status AddEntry(MdsId owner, BloomFilter filter);

  /// Remove the entry owned by `owner` and return its filter.
  Result<BloomFilter> RemoveEntry(MdsId owner);

  /// Replace the bits of `owner`'s filter with `fresh` (replica refresh).
  Status RefreshEntry(MdsId owner, const BloomFilter& fresh);

  bool HasEntry(MdsId owner) const;
  const BloomFilter* Find(MdsId owner) const;
  BloomFilter* FindMutable(MdsId owner);

  /// Unique-hit membership query. Entries may have distinct seeds; the key
  /// is hashed at most once per distinct seed.
  ArrayQueryResult Query(std::string_view key) const;

  /// Fast path when every entry shares one geometry/seed (the G-HBA/HBA
  /// deployment: all local filters are interchangeable replicas): one
  /// digest serves all probes. Entries whose seed differs are re-hashed,
  /// once per distinct seed (the digest-once contract).
  ArrayQueryResult QueryShared(std::string_view key) const;

  /// Digest-once form: probes with digests drawn from `digest`'s per-seed
  /// cache, so a caller that has already hashed the path for another filter
  /// of the same seed pays nothing here.
  ArrayQueryResult QueryShared(QueryDigest& digest) const;

  /// Allocation-free form of QueryShared for hot paths: appends every
  /// positive entry's owner to `hits` (which is NOT cleared) and returns
  /// the number appended. Callers classify the combined hit set themselves.
  std::size_t QuerySharedInto(QueryDigest& digest,
                              std::vector<MdsId>& hits) const;

  /// True when all entries share bits/k/seed (QueryShared's fast path).
  bool UniformGeometry() const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Owners of all entries, in insertion order.
  std::vector<MdsId> Owners() const;

  /// Total heap bytes of all contained filters (memory accounting).
  std::uint64_t MemoryBytes() const;

  /// Iterate entries (owner, filter) for maintenance tasks.
  struct Entry {
    MdsId owner;
    BloomFilter filter;
  };
  const std::vector<Entry>& entries() const { return entries_; }
  std::vector<Entry>& entries() { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace ghba
