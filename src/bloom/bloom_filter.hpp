// Standard Bloom filter with the algebraic operations of Section 3.4.
//
// Each MDS builds one filter over the keys of all files whose metadata it
// stores (its "local filter") and replicates that filter to other servers.
// Filters therefore need to be (a) serializable for shipping, (b) composable
// via union/intersection/XOR for replica-update decisions, and (c) cheap to
// probe from a precomputed digest so one hash serves a whole array.
#pragma once

#include <cstdint>
#include <string_view>

#include "bloom/bitvector.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"
#include "hash/hash_family.hpp"

namespace ghba {

class BloomFilter {
 public:
  /// An empty filter of zero bits; unusable until assigned.
  BloomFilter() : family_(1, 0) {}

  /// num_bits >= 1; k in [1, ProbeSet::kMaxK]; seed decorrelates families.
  BloomFilter(std::uint64_t num_bits, std::uint32_t k, std::uint64_t seed = 0);

  /// Filter sized for `expected_items` at `bits_per_item` with optimal k.
  static BloomFilter ForCapacity(std::uint64_t expected_items,
                                 double bits_per_item,
                                 std::uint64_t seed = 0);

  /// Build a filter directly from a bit vector (e.g. flattening a counting
  /// filter). `inserted` is the caller's best cardinality estimate.
  static BloomFilter FromBits(BitVector bits, std::uint32_t k,
                              std::uint64_t seed, std::uint64_t inserted);

  void Add(std::string_view key);
  void Add(const Hash128& digest);

  bool MayContain(std::string_view key) const;
  bool MayContain(const Hash128& digest) const;

  /// Remove all items.
  void Clear();

  std::uint64_t num_bits() const { return bits_.size(); }
  std::uint32_t k() const { return family_.k(); }
  std::uint64_t seed() const { return family_.seed(); }
  std::uint64_t inserted_count() const { return inserted_; }

  /// Fraction of set bits (fill ratio).
  double FillRatio() const;

  /// Model-based false positive rate at the current load.
  double ExpectedFalsePositiveRate() const;

  /// True when geometry (bits, k, seed) matches — precondition for algebra.
  bool SameGeometry(const BloomFilter& other) const;

  /// Property 1: union via bitwise OR. Geometries must match.
  void UnionWith(const BloomFilter& other);
  /// Property 2: (conservative) intersection via bitwise AND.
  void IntersectWith(const BloomFilter& other);
  /// Number of differing bits vs `other` — the staleness metric used to
  /// trigger replica updates (Section 3.4, XOR operation).
  std::uint64_t XorDistance(const BloomFilter& other) const;

  const BitVector& bits() const { return bits_; }

  /// Replace contents with another filter's bits (replica refresh). The
  /// geometry must match; inserted-count is taken from `other`.
  Status CopyBitsFrom(const BloomFilter& other);

  std::uint64_t MemoryBytes() const { return bits_.MemoryBytes(); }

  void Serialize(ByteWriter& out) const;
  static Result<BloomFilter> Deserialize(ByteReader& in);

  friend bool operator==(const BloomFilter& a, const BloomFilter& b) {
    return a.SameGeometry(b) && a.bits_ == b.bits_;
  }

 private:
  BitVector bits_;
  HashFamily family_;
  std::uint64_t inserted_ = 0;
};

}  // namespace ghba
