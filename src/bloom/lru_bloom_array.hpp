// LRU Bloom Filter Array — the L1 level of the query hierarchy.
//
// Captures temporal locality: each MDS remembers the home MDS of recently
// accessed files in a bounded cache, and exposes that cache as an array of
// per-home counting Bloom filters so a lookup costs one digest and a few
// probes per home. Counting filters are required because eviction and
// home-change invalidation must *remove* keys.
//
// Two replacement policies (the paper lists "enhance the replacement
// efficiency of our currently used LRU" as future work):
//   * kLru  — classic LRU, the paper's design;
//   * kSlru — segmented LRU: new entries enter a probationary segment and
//     are promoted to a protected segment on re-reference, which shields
//     the hot set from scan pollution (one-touch bursts).
//
// The array answers with the same unique-hit semantics as any BFA: exactly
// one home's filter positive -> route there; zero or multiple -> fall
// through to L2.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "bloom/bloom_filter_array.hpp"
#include "bloom/counting_bloom_filter.hpp"
#include "hash/murmur3.hpp"
#include "hash/query_digest.hpp"

namespace ghba {

enum class LruPolicy { kLru, kSlru };

struct LruBloomArrayOptions {
  std::size_t capacity = 4096;     ///< max cached (file -> home) entries
  double counters_per_item = 8.0;  ///< CBF size per home, relative to capacity
  std::uint64_t seed = 0x1111;     ///< decorrelates L1 from other filters
  LruPolicy policy = LruPolicy::kLru;
  /// SLRU only: fraction of the capacity reserved for the protected
  /// segment (the classic choice is ~0.8).
  double protected_fraction = 0.8;
  /// Width of the 64-bit index-key fold actually used (low bits kept).
  /// Production leaves this at 64; tests narrow it to force index-key
  /// collisions and exercise the collision-handling path deterministically.
  std::uint32_t index_bits = 64;
};

class LruBloomArray {
 public:
  using Options = LruBloomArrayOptions;

  explicit LruBloomArray(Options options);

  /// Record that `key` was observed to live on `home`. Refreshes the
  /// entry's replacement state; if the key was cached with a different
  /// home, the stale mapping is removed first.
  void Touch(std::string_view key, MdsId home);
  /// Digest-once form: reuses the operation's cached digest for this
  /// array's seed instead of re-hashing the key.
  void Touch(QueryDigest& digest, MdsId home);

  /// Invalidate a cached key (e.g. after its metadata migrated or a lookup
  /// forwarded by L1 turned out wrong). No-op when absent.
  void Invalidate(std::string_view key);
  void Invalidate(QueryDigest& digest);

  /// Drop every cached entry pointing at `home` (MDS departure/failure).
  void DropHome(MdsId home);

  /// Unique-hit query over the per-home filters.
  ArrayQueryResult Query(std::string_view key) const;
  ArrayQueryResult Query(QueryDigest& digest) const;
  /// Allocation-free form for hot paths: `out` is reset and refilled, so a
  /// caller-owned result object's hit buffer is reused across queries.
  void Query(QueryDigest& digest, ArrayQueryResult& out) const;

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return options_.capacity; }

  /// Bytes used by the per-home counting filters plus cache bookkeeping.
  std::uint64_t MemoryBytes() const;

  /// Diagnostics: number of distinct homes currently represented.
  std::size_t home_count() const { return filters_.size(); }

  /// Diagnostics: entries currently in the protected segment (SLRU).
  std::size_t protected_size() const { return protected_.size(); }

 private:
  struct CacheEntry {
    Hash128 digest;  // full digest, needed to Remove from counting filters
    MdsId home;
  };
  using LruList = std::list<CacheEntry>;
  struct IndexEntry {
    bool in_protected;
    LruList::iterator it;
  };
  /// A home's counting filter plus the number of live cache entries in it.
  /// The count is what lets eviction/invalidation erase a filter the moment
  /// its last entry drains — otherwise `filters_` (and with it probe cost
  /// and MemoryBytes) would grow with every home ever cached.
  struct HomeFilter {
    CountingBloomFilter filter;
    std::size_t entries = 0;
  };

  std::uint64_t IndexKeyOf(const Hash128& digest) const;
  HomeFilter& FilterFor(MdsId home);
  void EvictOne();
  void AddToFilter(const CacheEntry& entry);
  void RemoveFromFilter(const CacheEntry& entry);
  void EraseEntry(std::uint64_t idx_key, const IndexEntry& where);
  std::size_t ProtectedCapacity() const;

  Options options_;
  std::uint64_t index_mask_;
  LruList probation_;  // front = most recent; kLru keeps everything here
  LruList protected_;  // SLRU's re-referenced segment
  std::unordered_map<std::uint64_t, IndexEntry> index_;
  std::unordered_map<MdsId, HomeFilter> filters_;
};

}  // namespace ghba
