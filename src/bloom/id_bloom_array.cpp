#include "bloom/id_bloom_array.hpp"

#include <cstring>

namespace ghba {

IdBloomArray::IdBloomArray(Options options) : options_(options) {}

Hash128 IdBloomArray::DigestOf(MdsId replica_owner, std::uint64_t seed) {
  std::uint8_t bytes[sizeof(MdsId)];
  std::memcpy(bytes, &replica_owner, sizeof(bytes));
  return Murmur3_128Raw(bytes, sizeof(bytes), seed);
}

void IdBloomArray::AddMember(MdsId member) {
  if (filters_.contains(member)) return;
  filters_.emplace(member, CountingBloomFilter::ForCapacity(
                               options_.expected_ids_per_member,
                               options_.counters_per_item, options_.seed));
}

Status IdBloomArray::RemoveMember(MdsId member) {
  if (filters_.erase(member) == 0) return Status::NotFound("unknown member");
  return Status::Ok();
}

bool IdBloomArray::HasMember(MdsId member) const {
  return filters_.contains(member);
}

std::vector<MdsId> IdBloomArray::Members() const {
  std::vector<MdsId> out;
  out.reserve(filters_.size());
  for (const auto& [member, filter] : filters_) out.push_back(member);
  return out;
}

Status IdBloomArray::AddReplica(MdsId member, MdsId replica_owner) {
  auto it = filters_.find(member);
  if (it == filters_.end()) return Status::NotFound("unknown member");
  it->second.Add(DigestOf(replica_owner, options_.seed));
  return Status::Ok();
}

Status IdBloomArray::RemoveReplica(MdsId member, MdsId replica_owner) {
  auto it = filters_.find(member);
  if (it == filters_.end()) return Status::NotFound("unknown member");
  // A member-leave for a replica that was never registered (or already
  // deregistered) is rejected by the counting filter without corrupting it;
  // surface that to the reconfiguration caller.
  return it->second.Remove(DigestOf(replica_owner, options_.seed));
}

Status IdBloomArray::MoveReplica(MdsId from, MdsId to, MdsId replica_owner) {
  if (Status s = RemoveReplica(from, replica_owner); !s.ok()) return s;
  return AddReplica(to, replica_owner);
}

ArrayQueryResult IdBloomArray::Locate(MdsId replica_owner) const {
  const Hash128 digest = DigestOf(replica_owner, options_.seed);
  ArrayQueryResult result;
  for (const auto& [member, filter] : filters_) {
    if (filter.MayContain(digest)) result.all_hits.push_back(member);
  }
  if (result.all_hits.size() == 1) {
    result.kind = ArrayQueryResult::Kind::kUniqueHit;
    result.owner = result.all_hits.front();
  } else if (!result.all_hits.empty()) {
    result.kind = ArrayQueryResult::Kind::kMultiHit;
  }
  return result;
}

std::uint64_t IdBloomArray::MemoryBytes() const {
  std::uint64_t total = 0;
  for (const auto& [member, filter] : filters_) total += filter.MemoryBytes();
  return total;
}

void IdBloomArray::Serialize(ByteWriter& out) const {
  out.PutDouble(options_.counters_per_item);
  out.PutU64(options_.expected_ids_per_member);
  out.PutU64(options_.seed);
  out.PutVarint(filters_.size());
  for (const auto& [member, filter] : filters_) {
    out.PutU32(member);
    filter.Serialize(out);
  }
}

Result<IdBloomArray> IdBloomArray::Deserialize(ByteReader& in) {
  Options options;
  auto cpi = in.GetDouble();
  if (!cpi.ok()) return cpi.status();
  options.counters_per_item = *cpi;
  auto expected = in.GetU64();
  if (!expected.ok()) return expected.status();
  options.expected_ids_per_member = *expected;
  auto seed = in.GetU64();
  if (!seed.ok()) return seed.status();
  options.seed = *seed;

  auto count = in.GetVarint();
  if (!count.ok()) return count.status();
  if (*count > 1'000'000) return Status::Corruption("too many members");

  IdBloomArray array(options);
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto member = in.GetU32();
    if (!member.ok()) return member.status();
    auto filter = CountingBloomFilter::Deserialize(in);
    if (!filter.ok()) return filter.status();
    array.filters_.emplace(*member, std::move(*filter));
  }
  return array;
}

}  // namespace ghba
