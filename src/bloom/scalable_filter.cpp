#include "bloom/scalable_filter.hpp"

#include <cassert>
#include <cmath>

#include "bloom/bloom_math.hpp"

namespace ghba {

ScalableCountingFilter::ScalableCountingFilter(Options options)
    : options_(options) {
  assert(options_.initial_capacity > 0);
  assert(options_.growth_factor >= 1.0);
  AddStage();
}

void ScalableCountingFilter::AddStage() {
  Stage stage{
      // Distinct per-stage seeds keep stage false positives independent.
      CountingBloomFilter::ForCapacity(
          options_.initial_capacity *
              static_cast<std::uint64_t>(
                  std::pow(options_.growth_factor,
                           static_cast<double>(stages_.size()))),
          options_.counters_per_item,
          options_.seed + stages_.size() * 0x9e3779b9ULL),
      options_.initial_capacity *
          static_cast<std::uint64_t>(std::pow(
              options_.growth_factor, static_cast<double>(stages_.size()))),
      0};
  stages_.push_back(std::move(stage));
}

void ScalableCountingFilter::Add(std::string_view key) {
  Stage& active = stages_.back();
  active.filter.Add(key);
  ++active.items;
  ++items_;
  if (active.items >= active.capacity) AddStage();
}

void ScalableCountingFilter::Remove(std::string_view key) {
  // Newest-to-oldest: recently added keys are most likely in late stages.
  // The counting filter's check-first Remove doubles as the membership
  // screen: it only succeeds in a stage whose counters all cover the key.
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    if (it->filter.Remove(key).ok()) {
      if (it->items > 0) --it->items;
      if (items_ > 0) --items_;
      return;
    }
  }
  // Remove of a never-added key: counting-filter contract violation by the
  // caller; tolerated as a no-op here because every stage rejected it.
}

bool ScalableCountingFilter::MayContain(std::string_view key) const {
  for (const Stage& stage : stages_) {
    if (stage.filter.MayContain(key)) return true;
  }
  return false;
}

std::uint64_t ScalableCountingFilter::MemoryBytes() const {
  std::uint64_t total = 0;
  for (const Stage& stage : stages_) total += stage.filter.MemoryBytes();
  return total;
}

double ScalableCountingFilter::ExpectedFalsePositiveRate() const {
  double miss_all = 1.0;
  for (const Stage& stage : stages_) {
    const double fp = BloomFalsePositiveRate(
        static_cast<double>(stage.filter.num_counters()),
        static_cast<double>(stage.items), stage.filter.k());
    miss_all *= (1.0 - fp);
  }
  return 1.0 - miss_all;
}

}  // namespace ghba
