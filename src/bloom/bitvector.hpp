// Packed bit vector backing the Bloom filters.
//
// Provides the whole-vector algebra the paper's Section 3.4 relies on
// (Properties 1-3): OR for union, AND for intersection, XOR for difference
// detection, plus popcount and Hamming distance for staleness thresholds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace ghba {

/// Upper bound on filter geometry accepted off the wire (2^33 bits = 1 GiB),
/// generous for the paper's per-MDS scale. Wire data is untrusted: a hostile
/// length prefix must never drive a larger allocation than this.
inline constexpr std::uint64_t kMaxWireFilterBits = 1ULL << 33;

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::uint64_t num_bits);

  std::uint64_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  bool Test(std::uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void Set(std::uint64_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void Clear(std::uint64_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  void Reset();  ///< Clear all bits.

  /// Number of set bits.
  std::uint64_t PopCount() const;

  /// Number of differing bits vs `other` (sizes must match).
  std::uint64_t HammingDistance(const BitVector& other) const;

  /// In-place algebra; sizes must match (asserted).
  void OrWith(const BitVector& other);
  void AndWith(const BitVector& other);
  void XorWith(const BitVector& other);

  /// True when every set bit of this vector is also set in `other`.
  bool IsSubsetOf(const BitVector& other) const;

  /// Heap bytes used (for memory accounting in the simulator).
  std::uint64_t MemoryBytes() const { return words_.size() * sizeof(std::uint64_t); }

  void Serialize(ByteWriter& out) const;
  static Result<BitVector> Deserialize(ByteReader& in);

  friend bool operator==(const BitVector&, const BitVector&) = default;

 private:
  std::uint64_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ghba
