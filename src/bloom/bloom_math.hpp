// Analytic false-positive models from the paper.
//
//  * f0(m, n, k)      — standard Bloom-filter false-positive probability,
//                       (1 - e^{-kn/m})^k  [Broder & Mitzenmacher].
//  * OptimalK(m, n)   — k = (m/n) ln 2, at which f0 = (0.6185)^{m/n}.
//  * SegmentArrayFalsePositive — Eq. (1): the probability that the segment
//    Bloom-filter array of one MDS (holding theta replicas) returns a
//    *unique wrong* hit:  theta * f0 * (1 - f0)^{theta-1}.
//
// These drive both the optimizer (Section 3.3) and the property tests that
// check measured rates against the model.
#pragma once

#include <cstdint>

namespace ghba {

/// (1 - e^{-kn/m})^k. m: bits, n: items, k: hash count.
double BloomFalsePositiveRate(double m, double n, std::uint32_t k);

/// Optimal hash count k = round((m/n) ln 2), clamped to [1, 32].
std::uint32_t OptimalK(double m, double n);

/// Minimal achievable false-positive rate at bit ratio r = m/n:
/// f0* = 0.6185^r (i.e. (1/2)^{(m/n) ln 2}).
double OptimalFalsePositiveRate(double bits_per_item);

/// Eq. (1): unique-wrong-hit probability of a segment BF array with `theta`
/// replicas, each tuned to bit ratio `bits_per_item`.
double SegmentArrayFalsePositive(std::uint32_t theta, double bits_per_item);

/// Probability that an array of `count` filters (each with false-positive
/// rate fp) yields exactly one positive for a key stored in none of them.
double UniqueHitAmongNegatives(std::uint32_t count, double fp);

/// Estimate the number of distinct items inserted into an m-bit filter with
/// k hashes given its popcount t: n ≈ -(m/k) ln(1 - t/m) [Swamidass & Baldi].
double EstimateCardinality(double m, std::uint32_t k, double popcount);

}  // namespace ghba
