#include "bloom/lru_bloom_array.hpp"

#include <algorithm>
#include <cassert>

namespace ghba {

namespace {
// Index key: fold the 128-bit digest to 64 bits. With LRU capacities in the
// thousands, a 64-bit collision is vanishingly unlikely; a collision would
// only conflate two cache entries, never corrupt the filters (we store the
// full digest in the entry and remove by it).
inline std::uint64_t IndexKey(const Hash128& d) {
  return d.lo ^ (d.hi * 0x9e3779b97f4a7c15ULL);
}
}  // namespace

LruBloomArray::LruBloomArray(Options options) : options_(options) {
  assert(options_.capacity > 0);
  assert(options_.protected_fraction >= 0 && options_.protected_fraction < 1);
}

std::size_t LruBloomArray::ProtectedCapacity() const {
  return static_cast<std::size_t>(
      static_cast<double>(options_.capacity) * options_.protected_fraction);
}

CountingBloomFilter& LruBloomArray::FilterFor(MdsId home) {
  auto it = filters_.find(home);
  if (it == filters_.end()) {
    // Each home's filter is sized for the whole cache capacity so that any
    // skew of cached entries across homes stays within the design load.
    auto cbf = CountingBloomFilter::ForCapacity(
        options_.capacity, options_.counters_per_item, options_.seed);
    it = filters_.emplace(home, std::move(cbf)).first;
  }
  return it->second;
}

void LruBloomArray::RemoveFromFilter(const CacheEntry& entry) {
  auto it = filters_.find(entry.home);
  assert(it != filters_.end());
  if (it != filters_.end()) it->second.Remove(entry.digest);
}

void LruBloomArray::EraseEntry(std::uint64_t idx_key, const IndexEntry& where) {
  RemoveFromFilter(*where.it);
  (where.in_protected ? protected_ : probation_).erase(where.it);
  index_.erase(idx_key);
}

void LruBloomArray::EvictOne() {
  // SLRU evicts from probation first; the protected segment only shrinks
  // when probation is empty. Under kLru everything lives in probation.
  LruList& victim_list = probation_.empty() ? protected_ : probation_;
  assert(!victim_list.empty());
  const CacheEntry& victim = victim_list.back();
  RemoveFromFilter(victim);
  index_.erase(IndexKey(victim.digest));
  victim_list.pop_back();
}

void LruBloomArray::Touch(std::string_view key, MdsId home) {
  const Hash128 digest = Murmur3_128(key, options_.seed);
  const std::uint64_t idx = IndexKey(digest);
  const auto it = index_.find(idx);
  if (it != index_.end()) {
    IndexEntry& where = it->second;
    CacheEntry& entry = *where.it;
    if (entry.home != home) {
      // Home changed (migration): move the key between filters.
      RemoveFromFilter(entry);
      entry.home = home;
      FilterFor(home).Add(digest);
    }
    if (options_.policy == LruPolicy::kSlru && !where.in_protected) {
      // Re-reference promotes probation -> protected.
      protected_.splice(protected_.begin(), probation_, where.it);
      where.in_protected = true;
      if (protected_.size() > ProtectedCapacity()) {
        // Demote the protected segment's coldest entry back to probation.
        const auto demoted = std::prev(protected_.end());
        auto& demoted_where = index_.at(IndexKey(demoted->digest));
        probation_.splice(probation_.begin(), protected_, demoted);
        demoted_where.in_protected = false;
      }
    } else {
      LruList& list = where.in_protected ? protected_ : probation_;
      list.splice(list.begin(), list, where.it);  // move to front
    }
    return;
  }
  if (index_.size() >= options_.capacity) EvictOne();
  probation_.push_front(CacheEntry{digest, home});
  index_.emplace(idx, IndexEntry{false, probation_.begin()});
  FilterFor(home).Add(digest);
}

void LruBloomArray::Invalidate(std::string_view key) {
  const Hash128 digest = Murmur3_128(key, options_.seed);
  const auto it = index_.find(IndexKey(digest));
  if (it == index_.end()) return;
  EraseEntry(it->first, it->second);
}

void LruBloomArray::DropHome(MdsId home) {
  for (LruList* list : {&probation_, &protected_}) {
    for (auto it = list->begin(); it != list->end();) {
      if (it->home == home) {
        index_.erase(IndexKey(it->digest));
        it = list->erase(it);
      } else {
        ++it;
      }
    }
  }
  filters_.erase(home);
}

ArrayQueryResult LruBloomArray::Query(std::string_view key) const {
  const Hash128 digest = Murmur3_128(key, options_.seed);
  ArrayQueryResult result;
  for (const auto& [home, filter] : filters_) {
    if (filter.MayContain(digest)) result.all_hits.push_back(home);
  }
  if (result.all_hits.size() == 1) {
    result.kind = ArrayQueryResult::Kind::kUniqueHit;
    result.owner = result.all_hits.front();
  } else if (!result.all_hits.empty()) {
    result.kind = ArrayQueryResult::Kind::kMultiHit;
  }
  return result;
}

std::uint64_t LruBloomArray::MemoryBytes() const {
  std::uint64_t total = 0;
  for (const auto& [home, filter] : filters_) total += filter.MemoryBytes();
  // List + index bookkeeping (approximate per-entry footprint).
  total += index_.size() * (sizeof(CacheEntry) + sizeof(IndexEntry) +
                            4 * sizeof(void*));
  return total;
}

}  // namespace ghba
