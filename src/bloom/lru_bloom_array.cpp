#include "bloom/lru_bloom_array.hpp"

#include <algorithm>
#include <cassert>

namespace ghba {

namespace {
// Index key: fold the 128-bit digest to 64 bits. With LRU capacities in the
// thousands a fold collision is vanishingly unlikely, but it is not
// impossible: Touch/Invalidate therefore compare the stored 128-bit digest
// before treating an index hit as the same key, so two distinct paths are
// never conflated (a colliding newcomer evicts the incumbent instead).
inline std::uint64_t FoldDigest(const Hash128& d) {
  return d.lo ^ (d.hi * 0x9e3779b97f4a7c15ULL);
}
}  // namespace

LruBloomArray::LruBloomArray(Options options)
    : options_(options),
      index_mask_(options.index_bits >= 64
                      ? ~0ULL
                      : (1ULL << options.index_bits) - 1) {
  assert(options_.capacity > 0);
  assert(options_.protected_fraction >= 0 && options_.protected_fraction < 1);
  assert(options_.index_bits >= 1 && options_.index_bits <= 64);
}

std::uint64_t LruBloomArray::IndexKeyOf(const Hash128& digest) const {
  return FoldDigest(digest) & index_mask_;
}

std::size_t LruBloomArray::ProtectedCapacity() const {
  return static_cast<std::size_t>(
      static_cast<double>(options_.capacity) * options_.protected_fraction);
}

LruBloomArray::HomeFilter& LruBloomArray::FilterFor(MdsId home) {
  auto it = filters_.find(home);
  if (it == filters_.end()) {
    // Each home's filter is sized for the whole cache capacity so that any
    // skew of cached entries across homes stays within the design load.
    auto cbf = CountingBloomFilter::ForCapacity(
        options_.capacity, options_.counters_per_item, options_.seed);
    it = filters_.emplace(home, HomeFilter{std::move(cbf), 0}).first;
  }
  return it->second;
}

void LruBloomArray::AddToFilter(const CacheEntry& entry) {
  HomeFilter& hf = FilterFor(entry.home);
  hf.filter.Add(entry.digest);
  ++hf.entries;
}

void LruBloomArray::RemoveFromFilter(const CacheEntry& entry) {
  const auto it = filters_.find(entry.home);
  assert(it != filters_.end());
  if (it == filters_.end()) return;
  // Entries are tracked exactly (every cached digest was Added once), so
  // the remove can only fail on internal bookkeeping corruption.
  const Status removed = it->second.filter.Remove(entry.digest);
  assert(removed.ok());
  (void)removed;
  assert(it->second.entries > 0);
  // Erase a drained filter: keeping it would make Query iterate (and
  // MemoryBytes count) one dead filter per home ever cached, forever.
  if (--it->second.entries == 0) filters_.erase(it);
}

void LruBloomArray::EraseEntry(std::uint64_t idx_key, const IndexEntry& where) {
  RemoveFromFilter(*where.it);
  (where.in_protected ? protected_ : probation_).erase(where.it);
  index_.erase(idx_key);
}

void LruBloomArray::EvictOne() {
  // SLRU evicts from probation first; the protected segment only shrinks
  // when probation is empty. Under kLru everything lives in probation.
  LruList& victim_list = probation_.empty() ? protected_ : probation_;
  assert(!victim_list.empty());
  const auto it = index_.find(IndexKeyOf(victim_list.back().digest));
  assert(it != index_.end());
  assert(it->second.it == std::prev(victim_list.end()));
  EraseEntry(it->first, it->second);
}

void LruBloomArray::Touch(std::string_view key, MdsId home) {
  QueryDigest digest(key);
  Touch(digest, home);
}

void LruBloomArray::Touch(QueryDigest& query, MdsId home) {
  const Hash128& digest = query.For(options_.seed);
  const std::uint64_t idx = IndexKeyOf(digest);
  auto it = index_.find(idx);
  if (it != index_.end() && it->second.it->digest != digest) {
    // Fold collision with a different cached path. The index can track only
    // one entry per key, so evict the incumbent and insert the newcomer.
    EraseEntry(it->first, it->second);
    it = index_.end();
  }
  if (it != index_.end()) {
    IndexEntry& where = it->second;
    CacheEntry& entry = *where.it;
    if (entry.home != home) {
      // Home changed (migration): move the key between filters.
      RemoveFromFilter(entry);
      entry.home = home;
      AddToFilter(entry);
    }
    if (options_.policy == LruPolicy::kSlru && !where.in_protected) {
      // Re-reference promotes probation -> protected.
      protected_.splice(protected_.begin(), probation_, where.it);
      where.in_protected = true;
      if (protected_.size() > ProtectedCapacity()) {
        // Demote the protected segment's coldest entry back to probation.
        const auto demoted = std::prev(protected_.end());
        auto& demoted_where = index_.at(IndexKeyOf(demoted->digest));
        probation_.splice(probation_.begin(), protected_, demoted);
        demoted_where.in_protected = false;
      }
    } else {
      LruList& list = where.in_protected ? protected_ : probation_;
      list.splice(list.begin(), list, where.it);  // move to front
    }
    return;
  }
  if (index_.size() >= options_.capacity) EvictOne();
  probation_.push_front(CacheEntry{digest, home});
  index_.emplace(idx, IndexEntry{false, probation_.begin()});
  AddToFilter(probation_.front());
}

void LruBloomArray::Invalidate(std::string_view key) {
  QueryDigest digest(key);
  Invalidate(digest);
}

void LruBloomArray::Invalidate(QueryDigest& query) {
  const Hash128& digest = query.For(options_.seed);
  const auto it = index_.find(IndexKeyOf(digest));
  if (it == index_.end()) return;
  // A fold collision means the indexed entry is a *different* key; leave it.
  if (it->second.it->digest != digest) return;
  EraseEntry(it->first, it->second);
}

void LruBloomArray::DropHome(MdsId home) {
  for (LruList* list : {&probation_, &protected_}) {
    for (auto it = list->begin(); it != list->end();) {
      if (it->home == home) {
        index_.erase(IndexKeyOf(it->digest));
        it = list->erase(it);
      } else {
        ++it;
      }
    }
  }
  filters_.erase(home);
}

ArrayQueryResult LruBloomArray::Query(std::string_view key) const {
  QueryDigest digest(key);
  return Query(digest);
}

ArrayQueryResult LruBloomArray::Query(QueryDigest& digest) const {
  ArrayQueryResult result;
  Query(digest, result);
  return result;
}

void LruBloomArray::Query(QueryDigest& query, ArrayQueryResult& out) const {
  out.kind = ArrayQueryResult::Kind::kZeroHit;
  out.owner = kInvalidMds;
  out.all_hits.clear();
  const Hash128& digest = query.For(options_.seed);
  for (const auto& [home, hf] : filters_) {
    if (hf.filter.MayContain(digest)) out.all_hits.push_back(home);
  }
  if (out.all_hits.size() == 1) {
    out.kind = ArrayQueryResult::Kind::kUniqueHit;
    out.owner = out.all_hits.front();
  } else if (!out.all_hits.empty()) {
    out.kind = ArrayQueryResult::Kind::kMultiHit;
  }
}

std::uint64_t LruBloomArray::MemoryBytes() const {
  std::uint64_t total = 0;
  for (const auto& [home, hf] : filters_) total += hf.filter.MemoryBytes();
  // List + index bookkeeping (approximate per-entry footprint).
  total += index_.size() * (sizeof(CacheEntry) + sizeof(IndexEntry) +
                            4 * sizeof(void*));
  return total;
}

}  // namespace ghba
