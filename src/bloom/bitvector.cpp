#include "bloom/bitvector.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ghba {

BitVector::BitVector(std::uint64_t num_bits)
    : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

void BitVector::Reset() { std::fill(words_.begin(), words_.end(), 0); }

std::uint64_t BitVector::PopCount() const {
  std::uint64_t total = 0;
  for (const std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

std::uint64_t BitVector::HammingDistance(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] ^ other.words_[i]);
  }
  return total;
}

void BitVector::OrWith(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::AndWith(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::XorWith(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
}

bool BitVector::IsSubsetOf(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

void BitVector::Serialize(ByteWriter& out) const {
  out.PutVarint(num_bits_);
  for (const std::uint64_t w : words_) out.PutU64(w);
}

Result<BitVector> BitVector::Deserialize(ByteReader& in) {
  auto bits = in.GetVarint();
  if (!bits.ok()) return bits.status();
  // Reject absurd sizes before allocating (wire data is untrusted).
  if (*bits > kMaxWireFilterBits) {
    return Status::Corruption("bitvector too large");
  }
  // Every word is 8 wire bytes; a length prefix promising more words than
  // the payload can hold must fail before the allocation, not after.
  const std::uint64_t words = (*bits + 63) / 64;
  if (words > in.remaining() / 8) {
    return Status::Corruption("bitvector truncated");
  }
  BitVector bv(*bits);
  for (auto& word : bv.words_) {
    auto w = in.GetU64();
    if (!w.ok()) return w.status();
    word = *w;
  }
  // Trailing garbage bits beyond num_bits_ must be zero.
  const std::uint64_t tail_bits = bv.num_bits_ & 63;
  if (tail_bits != 0 && !bv.words_.empty()) {
    const std::uint64_t mask = (1ULL << tail_bits) - 1;
    if (bv.words_.back() & ~mask) return Status::Corruption("nonzero tail bits");
  }
  return bv;
}

}  // namespace ghba
