#include "bloom/bloom_math.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace ghba {

double BloomFalsePositiveRate(double m, double n, std::uint32_t k) {
  assert(m > 0);
  if (n <= 0) return 0.0;
  const double exponent = -static_cast<double>(k) * n / m;
  return std::pow(1.0 - std::exp(exponent), static_cast<double>(k));
}

std::uint32_t OptimalK(double m, double n) {
  if (n <= 0) return 1;
  const double k = (m / n) * std::numbers::ln2;
  const auto rounded = static_cast<std::int64_t>(std::lround(k));
  return static_cast<std::uint32_t>(std::clamp<std::int64_t>(rounded, 1, 32));
}

double OptimalFalsePositiveRate(double bits_per_item) {
  if (bits_per_item <= 0) return 1.0;
  // 0.6185 ≈ (1/2)^{ln 2}; the paper uses this constant directly.
  return std::pow(0.6185, bits_per_item);
}

double SegmentArrayFalsePositive(std::uint32_t theta, double bits_per_item) {
  if (theta == 0) return 0.0;
  const double f0 = OptimalFalsePositiveRate(bits_per_item);
  return static_cast<double>(theta) * f0 *
         std::pow(1.0 - f0, static_cast<double>(theta) - 1.0);
}

double UniqueHitAmongNegatives(std::uint32_t count, double fp) {
  if (count == 0) return 0.0;
  return static_cast<double>(count) * fp *
         std::pow(1.0 - fp, static_cast<double>(count) - 1.0);
}

double EstimateCardinality(double m, std::uint32_t k, double popcount) {
  assert(m > 0 && k > 0);
  if (popcount <= 0) return 0.0;
  if (popcount >= m) popcount = m - 1;  // saturated filter: best effort
  return -(m / static_cast<double>(k)) * std::log(1.0 - popcount / m);
}

}  // namespace ghba
