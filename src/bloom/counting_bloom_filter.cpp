#include "bloom/counting_bloom_filter.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "bloom/bloom_math.hpp"

namespace ghba {

namespace {
constexpr std::uint8_t kMaxCounter = 15;
}

CountingBloomFilter::CountingBloomFilter(std::uint64_t num_counters,
                                         std::uint32_t k, std::uint64_t seed)
    : counters_((std::max<std::uint64_t>(num_counters, 2) + 1) / 2, 0),
      family_(k, seed) {
  assert(k >= 1 && k <= ProbeSet::kMaxK);
}

CountingBloomFilter CountingBloomFilter::ForCapacity(
    std::uint64_t expected_items, double counters_per_item,
    std::uint64_t seed) {
  const auto items = std::max<std::uint64_t>(expected_items, 1);
  const auto counters = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(items) * counters_per_item));
  const std::uint32_t k =
      OptimalK(static_cast<double>(counters), static_cast<double>(items));
  return CountingBloomFilter(counters, k, seed);
}

void CountingBloomFilter::Add(std::string_view key) {
  Add(Murmur3_128(key, seed()));
}

void CountingBloomFilter::Add(const Hash128& digest) {
  ProbeSet probes;
  family_.FillProbes(digest, num_counters(), probes);
  for (const std::uint64_t i : probes) {
    const std::uint8_t c = Get(i);
    if (c == kMaxCounter) {
      ++overflows_;  // saturate; never increments past 15
    } else {
      Put(i, static_cast<std::uint8_t>(c + 1));
    }
  }
  ++items_;
}

Status CountingBloomFilter::Remove(std::string_view key) {
  return Remove(Murmur3_128(key, seed()));
}

Status CountingBloomFilter::Remove(const Hash128& digest) {
  ProbeSet probes;
  family_.FillProbes(digest, num_counters(), probes);
  // Check first, touch nothing on failure: a zero counter proves the key
  // was never added, and decrementing the other probes anyway would plant
  // false negatives for keys that share them.
  for (const std::uint64_t i : probes) {
    if (Get(i) == 0) {
      ++underflows_;
      return Status::InvalidArgument("CBF remove of non-member");
    }
  }
  for (const std::uint64_t i : probes) {
    const std::uint8_t c = Get(i);
    // Saturated counters stay put: the true count is unknown, so a
    // decrement could zero evidence of other keys.
    if (c < kMaxCounter) {
      Put(i, static_cast<std::uint8_t>(c - 1));
    }
  }
  if (items_ > 0) --items_;
  return Status::Ok();
}

bool CountingBloomFilter::MayContain(std::string_view key) const {
  return MayContain(Murmur3_128(key, seed()));
}

bool CountingBloomFilter::MayContain(const Hash128& digest) const {
  ProbeSet probes;
  family_.FillProbes(digest, num_counters(), probes);
  for (const std::uint64_t i : probes) {
    if (Get(i) == 0) return false;
  }
  return true;
}

void CountingBloomFilter::Clear() {
  std::fill(counters_.begin(), counters_.end(), 0);
  items_ = 0;
  overflows_ = 0;
  underflows_ = 0;
}

BloomFilter CountingBloomFilter::ToBloomFilter() const {
  BitVector bits(num_counters());
  for (std::uint64_t i = 0; i < num_counters(); ++i) {
    if (Get(i) > 0) bits.Set(i);
  }
  return BloomFilter::FromBits(std::move(bits), k(), seed(), items_);
}

void CountingBloomFilter::Serialize(ByteWriter& out) const {
  out.PutU32(family_.k());
  out.PutU64(family_.seed());
  out.PutU64(items_);
  out.PutVarint(counters_.size());
  out.PutBytes(counters_);
}

Result<CountingBloomFilter> CountingBloomFilter::Deserialize(ByteReader& in) {
  auto k = in.GetU32();
  if (!k.ok()) return k.status();
  if (*k < 1 || *k > ProbeSet::kMaxK) return Status::Corruption("bad k");
  auto seed = in.GetU64();
  if (!seed.ok()) return seed.status();
  auto items = in.GetU64();
  if (!items.ok()) return items.status();
  auto len = in.GetVarint();
  if (!len.ok()) return len.status();
  // Two 4-bit counters per byte, so the byte length is bounded by half the
  // wire-wide geometry cap; it also can never exceed the payload itself.
  if (*len == 0 || *len > kMaxWireFilterBits / 2) {
    return Status::Corruption("bad counter length");
  }
  if (*len > in.remaining()) {
    return Status::Corruption("counters truncated");
  }
  auto bytes = in.GetBytes(*len);
  if (!bytes.ok()) return bytes.status();
  CountingBloomFilter cbf(*len * 2, *k, *seed);
  cbf.counters_ = std::move(*bytes);
  cbf.items_ = *items;
  return cbf;
}

}  // namespace ghba
