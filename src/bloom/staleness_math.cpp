#include "bloom/staleness_math.hpp"

#include <algorithm>
#include <cmath>

#include "bloom/bloom_math.hpp"

namespace ghba {

StalenessEstimate EstimateStaleness(std::uint64_t published_files,
                                    std::uint64_t added, std::uint64_t removed,
                                    double bits_per_item) {
  StalenessEstimate est;
  const double f0 = OptimalFalsePositiveRate(bits_per_item);

  // Current population = survivors of the snapshot + the additions.
  const std::uint64_t survivors =
      published_files > removed ? published_files - removed : 0;
  const double current =
      static_cast<double>(survivors) + static_cast<double>(added);
  if (current > 0) {
    // An added file is invisible to the replica unless a false positive
    // saves it; survivors always hit (no false negatives in a snapshot).
    est.false_negative_rate =
        static_cast<double>(added) / current * (1.0 - f0);
  }

  // A deleted file's bits are still set in the snapshot: it hits with
  // probability ~1 (the snapshot genuinely contained it).
  est.deleted_hit_rate = removed > 0 ? 1.0 : 0.0;
  return est;
}

std::uint64_t PublishBudgetFor(double target_fn_rate, std::uint64_t files) {
  target_fn_rate = std::clamp(target_fn_rate, 0.0, 1.0);
  // FN ~ added / (files + added)  =>  added <= files * t / (1 - t).
  if (target_fn_rate >= 1.0) return files;  // anything goes
  const double budget = static_cast<double>(files) * target_fn_rate /
                        (1.0 - target_fn_rate);
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(budget));
}

}  // namespace ghba
