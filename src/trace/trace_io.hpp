// Plain-text trace format: load/save streams of metadata operations.
//
// The synthetic generators cover the paper's experiments, but users with
// access to real traces (the original INS/RES/HP traces, or their own
// auditd/NFS captures) can convert them to this format and replay them
// against any cluster scheme. One record per line:
//
//     <timestamp-seconds> <op> <path> [uid] [host] [subtrace]
//
// with <op> one of open|close|stat|create|unlink. '#' starts a comment.
// Malformed lines are rejected with line numbers (never silently skipped).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "trace/generator.hpp"
#include "trace/record.hpp"

namespace ghba {

/// Parse one line; `line_no` only flavours error messages.
Result<TraceRecord> ParseTraceLine(const std::string& line,
                                   std::size_t line_no = 0);

/// Format one record as a line (no trailing newline).
std::string FormatTraceRecord(const TraceRecord& rec);

/// Read a whole stream; fails on the first malformed line.
Result<std::vector<TraceRecord>> LoadTrace(std::istream& in);

/// Load from a file path.
Result<std::vector<TraceRecord>> LoadTraceFile(const std::string& path);

/// Write records to a stream (with a header comment).
Status SaveTrace(std::ostream& out, const std::vector<TraceRecord>& records);

/// Save to a file path.
Status SaveTraceFile(const std::string& path,
                     const std::vector<TraceRecord>& records);

/// Pull up to `max_ops` records out of any TraceStream (e.g. to materialize
/// a synthetic trace into a file others can replay).
std::vector<TraceRecord> Materialize(TraceStream& stream,
                                     std::uint64_t max_ops);

}  // namespace ghba
