#include "trace/generator.hpp"

#include <cassert>

#include "common/rng.hpp"

namespace ghba {

SyntheticTrace::SyntheticTrace(WorkloadProfile profile,
                               std::uint32_t subtrace_id, std::uint64_t seed,
                               std::uint64_t max_ops)
    : profile_(std::move(profile)),
      subtrace_id_(subtrace_id),
      max_ops_(max_ops),
      rng_(Mix64(seed) ^ (static_cast<std::uint64_t>(subtrace_id) << 32)),
      zipf_(std::max<std::uint64_t>(profile_.active_files, 1),
            profile_.zipf_skew),
      recent_(profile_.working_set, 0),
      next_created_id_(profile_.total_files) {
  // Seed the recency window with popular files so locality kicks in from
  // the first operation.
  for (auto& slot : recent_) slot = zipf_.Sample(rng_) - 1;
}

std::string SyntheticTrace::PathOfFile(std::uint64_t file_id) const {
  // Stable, deterministic path: directories are a hash of the file id so
  // the namespace forms a balanced tree of profile().dir_depth levels.
  std::string path = "/t" + std::to_string(subtrace_id_);
  std::uint64_t h = Mix64(file_id * 2 + 1);
  for (std::uint32_t level = 0; level < profile_.dir_depth; ++level) {
    path += "/d" + std::to_string(h % profile_.dirs_per_level);
    h = Mix64(h);
  }
  path += "/f" + std::to_string(file_id);
  return path;
}

void SyntheticTrace::RememberRecent(std::uint64_t file_id) {
  recent_[recent_pos_] = file_id;
  recent_pos_ = (recent_pos_ + 1) % recent_.size();
}

std::uint64_t SyntheticTrace::PickFileId() {
  // Temporal locality: re-reference the recency window.
  if (rng_.NextBool(profile_.rereference_prob)) {
    return recent_[rng_.NextBounded(recent_.size())];
  }
  // A small tail of traffic touches the inactive bulk of the namespace.
  constexpr double kInactiveTouchProb = 0.02;
  if (profile_.total_files > profile_.active_files &&
      rng_.NextBool(kInactiveTouchProb)) {
    return profile_.active_files +
           rng_.NextBounded(profile_.total_files - profile_.active_files);
  }
  // Popularity-skewed draw over the active set (rank 1 -> id 0).
  return zipf_.Sample(rng_) - 1;
}

std::optional<TraceRecord> SyntheticTrace::Next() {
  if (max_ops_ != 0 && emitted_ >= max_ops_) return std::nullopt;
  ++emitted_;

  clock_ += rng_.NextExponential(1.0 / profile_.ops_per_second);

  TraceRecord rec;
  rec.timestamp = clock_;
  rec.subtrace = subtrace_id_;
  rec.user = static_cast<std::uint32_t>(rng_.NextBounded(profile_.users));
  rec.host = static_cast<std::uint32_t>(rng_.NextBounded(profile_.hosts));

  const double dice = rng_.NextDouble();
  double acc = profile_.stat_fraction;
  if (dice < acc) {
    rec.op = OpType::kStat;
    const auto id = PickFileId();
    rec.path = PathOfFile(id);
    RememberRecent(id);
    return rec;
  }
  acc += profile_.open_fraction;
  if (dice < acc) {
    rec.op = OpType::kOpen;
    const auto id = PickFileId();
    rec.path = PathOfFile(id);
    RememberRecent(id);
    open_files_.push_back(id);
    // Bound the open table (files opened before trace end and never closed).
    if (open_files_.size() > 4096) open_files_.pop_front();
    return rec;
  }
  acc += profile_.close_fraction;
  if (dice < acc) {
    rec.op = OpType::kClose;
    if (!open_files_.empty()) {
      rec.path = PathOfFile(open_files_.front());
      open_files_.pop_front();
    } else {
      // Close of a file opened before the trace started: treat as a touch
      // of a recent file.
      rec.path = PathOfFile(recent_[rng_.NextBounded(recent_.size())]);
    }
    return rec;
  }
  acc += profile_.create_fraction;
  if (dice < acc) {
    rec.op = OpType::kCreate;
    const auto id = next_created_id_++;
    rec.path = PathOfFile(id);
    RememberRecent(id);
    created_alive_.push_back(id);
    return rec;
  }
  // Remainder: unlink. Prefer deleting files created during the trace so
  // the initial population remains intact for verification.
  rec.op = OpType::kUnlink;
  if (!created_alive_.empty()) {
    const auto idx = rng_.NextBounded(created_alive_.size());
    rec.path = PathOfFile(created_alive_[idx]);
    created_alive_[idx] = created_alive_.back();
    created_alive_.pop_back();
  } else {
    // Nothing created yet: degenerate to a stat of a recent file.
    rec.op = OpType::kStat;
    rec.path = PathOfFile(recent_[rng_.NextBounded(recent_.size())]);
  }
  return rec;
}

IntensifiedTrace::IntensifiedTrace(const WorkloadProfile& profile,
                                   std::uint32_t tif, std::uint64_t seed,
                                   std::uint64_t total_ops)
    : total_ops_(total_ops) {
  assert(tif >= 1);
  subs_.reserve(tif);
  pending_.resize(tif);
  for (std::uint32_t i = 0; i < tif; ++i) {
    subs_.push_back(std::make_unique<SyntheticTrace>(
        profile, i, Mix64(seed + i), /*max_ops=*/0));
    pending_[i] = subs_[i]->Next();
    if (pending_[i]) heap_.push({pending_[i]->timestamp, i});
  }
}

std::optional<TraceRecord> IntensifiedTrace::Next() {
  if (total_ops_ != 0 && emitted_ >= total_ops_) return std::nullopt;
  if (heap_.empty()) return std::nullopt;
  const auto item = heap_.top();
  heap_.pop();
  TraceRecord out = std::move(*pending_[item.source]);
  pending_[item.source] = subs_[item.source]->Next();
  if (pending_[item.source]) {
    heap_.push({pending_[item.source]->timestamp, item.source});
  }
  ++emitted_;
  return out;
}

std::uint64_t IntensifiedTrace::InitialFileCount() const {
  std::uint64_t total = 0;
  for (const auto& sub : subs_) total += sub->profile().total_files;
  return total;
}

}  // namespace ghba
