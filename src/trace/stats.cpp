#include "trace/stats.hpp"

#include <cstdio>

#include "hash/xx64.hpp"

namespace ghba {

void TraceStats::Observe(const TraceRecord& rec) {
  ++total_;
  switch (rec.op) {
    case OpType::kOpen: ++opens_; break;
    case OpType::kClose: ++closes_; break;
    case OpType::kStat: ++stats_; break;
    case OpType::kCreate: ++creates_; break;
    case OpType::kUnlink: ++unlinks_; break;
  }
  if (rec.timestamp > last_ts_) last_ts_ = rec.timestamp;
  files_.insert(Xx64(rec.path));
  // Users/hosts are disjoint across subtraces (paper's TIF methodology), so
  // key them by (subtrace, id).
  users_.insert((static_cast<std::uint64_t>(rec.subtrace) << 32) | rec.user);
  hosts_.insert((static_cast<std::uint64_t>(rec.subtrace) << 32) | rec.host);
}

std::string TraceStats::ToTable(const std::string& title) const {
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "%s\n"
                "  hosts            %10llu\n"
                "  users            %10llu\n"
                "  open             %10llu\n"
                "  close            %10llu\n"
                "  stat             %10llu\n"
                "  create           %10llu\n"
                "  unlink           %10llu\n"
                "  total ops        %10llu\n"
                "  active files     %10llu\n"
                "  duration (s)     %10.1f\n",
                title.c_str(),
                static_cast<unsigned long long>(distinct_hosts()),
                static_cast<unsigned long long>(distinct_users()),
                static_cast<unsigned long long>(opens_),
                static_cast<unsigned long long>(closes_),
                static_cast<unsigned long long>(stats_),
                static_cast<unsigned long long>(creates_),
                static_cast<unsigned long long>(unlinks_),
                static_cast<unsigned long long>(total_),
                static_cast<unsigned long long>(distinct_files()),
                last_ts_);
  return buf;
}

}  // namespace ghba
