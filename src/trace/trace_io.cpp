#include "trace/trace_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ghba {

namespace {

Result<OpType> ParseOp(const std::string& token, std::size_t line_no) {
  if (token == "open") return OpType::kOpen;
  if (token == "close") return OpType::kClose;
  if (token == "stat") return OpType::kStat;
  if (token == "create") return OpType::kCreate;
  if (token == "unlink") return OpType::kUnlink;
  return Status::InvalidArgument("line " + std::to_string(line_no) +
                                 ": unknown op '" + token + "'");
}

std::string LinePrefix(std::size_t line_no) {
  return "line " + std::to_string(line_no) + ": ";
}

}  // namespace

Result<TraceRecord> ParseTraceLine(const std::string& line,
                                   std::size_t line_no) {
  std::istringstream in(line);
  TraceRecord rec;

  std::string ts_token;
  if (!(in >> ts_token)) {
    return Status::InvalidArgument(LinePrefix(line_no) + "empty record");
  }
  try {
    std::size_t consumed = 0;
    rec.timestamp = std::stod(ts_token, &consumed);
    if (consumed != ts_token.size()) throw std::invalid_argument(ts_token);
  } catch (const std::exception&) {
    return Status::InvalidArgument(LinePrefix(line_no) + "bad timestamp '" +
                                   ts_token + "'");
  }
  if (rec.timestamp < 0) {
    return Status::InvalidArgument(LinePrefix(line_no) + "negative timestamp");
  }

  std::string op_token;
  if (!(in >> op_token)) {
    return Status::InvalidArgument(LinePrefix(line_no) + "missing op");
  }
  auto op = ParseOp(op_token, line_no);
  if (!op.ok()) return op.status();
  rec.op = *op;

  if (!(in >> rec.path) || rec.path.empty()) {
    return Status::InvalidArgument(LinePrefix(line_no) + "missing path");
  }
  if (rec.path[0] != '/') {
    return Status::InvalidArgument(LinePrefix(line_no) +
                                   "path must be absolute: " + rec.path);
  }

  // Optional fields.
  std::uint64_t value = 0;
  if (in >> value) rec.user = static_cast<std::uint32_t>(value);
  if (in >> value) rec.host = static_cast<std::uint32_t>(value);
  if (in >> value) rec.subtrace = static_cast<std::uint32_t>(value);

  std::string trailing;
  if (in >> trailing) {
    return Status::InvalidArgument(LinePrefix(line_no) + "trailing garbage '" +
                                   trailing + "'");
  }
  return rec;
}

std::string FormatTraceRecord(const TraceRecord& rec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", rec.timestamp);
  std::string out(buf);
  out += ' ';
  out += OpTypeName(rec.op);
  out += ' ';
  out += rec.path;
  out += ' ';
  out += std::to_string(rec.user);
  out += ' ';
  out += std::to_string(rec.host);
  out += ' ';
  out += std::to_string(rec.subtrace);
  return out;
}

Result<std::vector<TraceRecord>> LoadTrace(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and blank lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    bool blank = true;
    for (const char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    auto rec = ParseTraceLine(line, line_no);
    if (!rec.ok()) return rec.status();
    records.push_back(std::move(*rec));
  }
  return records;
}

Result<std::vector<TraceRecord>> LoadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open trace file: " + path);
  return LoadTrace(in);
}

Status SaveTrace(std::ostream& out, const std::vector<TraceRecord>& records) {
  out << "# ghba trace v1: <ts-seconds> <op> <path> <uid> <host> <subtrace>\n";
  for (const auto& rec : records) {
    out << FormatTraceRecord(rec) << '\n';
  }
  if (!out) return Status::Internal("trace write failed");
  return Status::Ok();
}

Status SaveTraceFile(const std::string& path,
                     const std::vector<TraceRecord>& records) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot create trace file: " + path);
  return SaveTrace(out, records);
}

std::vector<TraceRecord> Materialize(TraceStream& stream,
                                     std::uint64_t max_ops) {
  std::vector<TraceRecord> records;
  records.reserve(max_ops);
  for (std::uint64_t i = 0; i < max_ops; ++i) {
    auto rec = stream.Next();
    if (!rec) break;
    records.push_back(std::move(*rec));
  }
  return records;
}

}  // namespace ghba
