// Workload profiles calibrated to the paper's trace statistics.
//
// The original traces are not redistributable; the generators reproduce the
// published *statistics* instead (Tables 3-4 and the source papers):
//   * operation mix (open/close/stat fractions),
//   * user / host population,
//   * file-population size and the active-file fraction,
//   * skewed popularity + strong temporal locality of metadata traffic.
// Each profile describes one *base* (un-intensified) trace; the TIF
// intensifier (trace/generator.hpp) scales it up the same way the paper
// does: disjoint per-subtrace namespaces replayed concurrently.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace ghba {

struct WorkloadProfile {
  std::string name;

  // --- operation mix (fractions over metadata ops; sum <= 1, remainder
  //     becomes create/unlink churn) ---
  double open_fraction = 0.1;
  double close_fraction = 0.1;
  double stat_fraction = 0.75;
  double create_fraction = 0.04;
  double unlink_fraction = 0.01;

  // --- populations (per subtrace) ---
  std::uint64_t total_files = 100000;   ///< namespace size at start
  std::uint64_t active_files = 25000;   ///< files that actually get traffic
  std::uint32_t users = 200;
  std::uint32_t hosts = 13;

  // --- locality ---
  double zipf_skew = 0.9;        ///< popularity skew over active files
  double rereference_prob = 0.5; ///< chance the next op re-touches a
                                 ///< recently used file (temporal locality)
  std::uint32_t working_set = 512;  ///< size of the recency window

  // --- timing ---
  double ops_per_second = 2000;  ///< mean metadata-op arrival rate

  // --- namespace shape ---
  std::uint32_t dirs_per_level = 64;
  std::uint32_t dir_depth = 3;
};

/// INS: instructional workload (HP-UX cluster, Roselli et al.). Stat-heavy
/// with a moderate open/close share; paper Table 3 at TIF=30 shows
/// open:close:stat = 1196 : 1215 : 4077 (million).
WorkloadProfile InsProfile();

/// RES: research workload. Extremely stat-dominated; Table 3 at TIF=100
/// shows open:close:stat = 497 : 558 : 7984 (million).
WorkloadProfile ResProfile();

/// HP: 10-day HP file-system trace (Riedel et al.); Table 4: 94.7M requests,
/// 32 active users / 207 accounts, 0.969M active of 4.0M total files.
WorkloadProfile HpProfile();

/// FLASH: flash-crowd stressor for the client front tier. A tiny set of
/// suddenly-famous files absorbs almost all lookups (extreme Zipf skew +
/// near-certain re-reference over a small window), the worst case for a
/// single home MDS and the best case for the leased lookup cache plus
/// hot-key replication. Not from the paper's tables — a synthetic probe
/// of the MIDAS-style adaptivity loop.
WorkloadProfile FlashCrowdProfile();

/// READDIR: directory-scan storm. Sequential stats sweep wide directories
/// (ls -lR style), so traffic is stat-saturated with *low* re-reference —
/// each file is touched once per sweep — defeating recency caches while
/// keeping per-directory bursts. Wide, shallow namespace.
WorkloadProfile ReaddirStormProfile();

/// TENANT: multi-tenant consolidation. Many users on many hosts, each in
/// a private subtree: large namespace, modest per-tenant heat, moderate
/// skew. The per-MDS load question here is fairness (load CV), not one
/// hotspot.
WorkloadProfile MultiTenantProfile();

/// Look up a profile by case-insensitive name ("ins", "res", "hp",
/// "flash", "readdir", "tenant"); kInvalidArgument for unknown names
/// (same error contract as the rpc layer — see docs/PROTOCOL.md).
Result<WorkloadProfile> ProfileByName(const std::string& name);

}  // namespace ghba
