// Trace record model.
//
// The paper replays the INS/RES traces (Roselli et al. 2000) and the HP
// file-system trace (Riedel et al. 2002), filtered down to metadata
// operations. A record is one metadata operation: what, when, by whom, on
// which path. Paths are the membership-query keys fed to the Bloom-filter
// hierarchy.
#pragma once

#include <cstdint>
#include <string>

namespace ghba {

enum class OpType : std::uint8_t {
  kOpen = 0,   ///< open an existing file (metadata lookup + perm check)
  kClose,      ///< close (attribute/size update on the home MDS)
  kStat,       ///< stat/getattr (pure metadata lookup)
  kCreate,     ///< first open of a new file (inserts into the home filter)
  kUnlink,     ///< delete (removes metadata; ages Bloom replicas)
};

constexpr const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kOpen: return "open";
    case OpType::kClose: return "close";
    case OpType::kStat: return "stat";
    case OpType::kCreate: return "create";
    case OpType::kUnlink: return "unlink";
  }
  return "?";
}

struct TraceRecord {
  double timestamp = 0;  ///< seconds since trace start
  OpType op = OpType::kStat;
  std::string path;      ///< full pathname, unique per file
  std::uint32_t user = 0;
  std::uint32_t host = 0;
  std::uint32_t subtrace = 0;  ///< which TIF subtrace produced this record
};

}  // namespace ghba
