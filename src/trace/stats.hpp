// Trace statistics collection (reproduces the shape of Tables 3-4).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>

#include "trace/record.hpp"

namespace ghba {

class TraceStats {
 public:
  /// Account one record.
  void Observe(const TraceRecord& rec);

  std::uint64_t total_ops() const { return total_; }
  std::uint64_t opens() const { return opens_; }
  std::uint64_t closes() const { return closes_; }
  std::uint64_t stats() const { return stats_; }
  std::uint64_t creates() const { return creates_; }
  std::uint64_t unlinks() const { return unlinks_; }

  std::uint64_t distinct_files() const { return files_.size(); }
  std::uint64_t distinct_users() const { return users_.size(); }
  std::uint64_t distinct_hosts() const { return hosts_.size(); }
  double duration_seconds() const { return last_ts_; }

  /// Multi-line table in the style of the paper's Tables 3-4.
  std::string ToTable(const std::string& title) const;

 private:
  std::uint64_t total_ = 0, opens_ = 0, closes_ = 0, stats_ = 0,
                creates_ = 0, unlinks_ = 0;
  double last_ts_ = 0;
  std::unordered_set<std::uint64_t> files_;  // hashed paths
  std::unordered_set<std::uint64_t> users_;  // (subtrace, user)
  std::unordered_set<std::uint64_t> hosts_;  // (subtrace, host)
};

}  // namespace ghba
