// Synthetic metadata-trace generation with TIF intensification.
//
// SyntheticTrace produces one *subtrace*: a stream of metadata operations
// matching a WorkloadProfile's op mix, populations and locality. The
// IntensifiedTrace replays TIF subtraces concurrently — each with a
// disjoint namespace, user and host ranges, and its own preserved internal
// timing — exactly mirroring the paper's scale-up methodology (Section 4):
// "decompose a trace into subtraces ... disjoint group ID, user ID and
// working directories ... replayed concurrently by setting the same start
// time".
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "trace/profile.hpp"
#include "trace/record.hpp"

namespace ghba {

/// Pull-based stream of trace records; exhausted streams return nullopt.
class TraceStream {
 public:
  virtual ~TraceStream() = default;
  virtual std::optional<TraceRecord> Next() = 0;
};

/// Fixed, pre-materialized stream (tests and tiny examples).
class VectorTrace final : public TraceStream {
 public:
  explicit VectorTrace(std::vector<TraceRecord> records)
      : records_(std::move(records)) {}
  std::optional<TraceRecord> Next() override {
    if (pos_ >= records_.size()) return std::nullopt;
    return records_[pos_++];
  }

 private:
  std::vector<TraceRecord> records_;
  std::size_t pos_ = 0;
};

/// One synthetic subtrace.
class SyntheticTrace final : public TraceStream {
 public:
  /// `max_ops == 0` means unbounded (caller stops pulling).
  SyntheticTrace(WorkloadProfile profile, std::uint32_t subtrace_id,
                 std::uint64_t seed, std::uint64_t max_ops = 0);

  std::optional<TraceRecord> Next() override;

  /// Stable pathname of a pre-existing file in this subtrace's namespace.
  /// Valid for ids in [0, profile.total_files).
  std::string PathOfFile(std::uint64_t file_id) const;

  /// Invoke `fn(path)` for every pre-existing file. Used to populate MDSs
  /// before replay (paper: "All MDSs are initially populated randomly").
  template <typename Fn>
  void ForEachInitialFile(Fn&& fn) const {
    for (std::uint64_t id = 0; id < profile_.total_files; ++id) {
      fn(PathOfFile(id));
    }
  }

  const WorkloadProfile& profile() const { return profile_; }
  std::uint32_t subtrace_id() const { return subtrace_id_; }

 private:
  std::uint64_t PickFileId();
  void RememberRecent(std::uint64_t file_id);

  WorkloadProfile profile_;
  std::uint32_t subtrace_id_;
  std::uint64_t max_ops_;
  std::uint64_t emitted_ = 0;
  double clock_ = 0;
  Rng rng_;
  ZipfSampler zipf_;

  std::vector<std::uint64_t> recent_;  // ring buffer: temporal locality
  std::size_t recent_pos_ = 0;
  std::deque<std::uint64_t> open_files_;  // open->close pairing
  std::uint64_t next_created_id_;          // ids for files born mid-trace
  std::vector<std::uint64_t> created_alive_;  // unlink candidates
};

/// TIF-way concurrent replay of disjoint subtraces, merged by timestamp.
class IntensifiedTrace final : public TraceStream {
 public:
  /// `total_ops` bounds the merged stream (0 = unbounded).
  IntensifiedTrace(const WorkloadProfile& profile, std::uint32_t tif,
                   std::uint64_t seed, std::uint64_t total_ops = 0);

  std::optional<TraceRecord> Next() override;

  std::uint32_t tif() const { return static_cast<std::uint32_t>(subs_.size()); }

  /// Initial files across all subtraces.
  template <typename Fn>
  void ForEachInitialFile(Fn&& fn) const {
    for (const auto& sub : subs_) sub->ForEachInitialFile(fn);
  }

  /// Total pre-existing files across subtraces.
  std::uint64_t InitialFileCount() const;

 private:
  struct HeapItem {
    double timestamp;
    std::size_t source;
  };
  struct HeapCmp {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      return a.timestamp > b.timestamp;  // min-heap on time
    }
  };

  std::vector<std::unique_ptr<SyntheticTrace>> subs_;
  std::vector<std::optional<TraceRecord>> pending_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapCmp> heap_;
  std::uint64_t total_ops_;
  std::uint64_t emitted_ = 0;
};

}  // namespace ghba
