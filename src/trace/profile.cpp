#include "trace/profile.hpp"

#include <algorithm>
#include <cctype>

namespace ghba {

// Base (TIF=1) populations are the published totals divided by the paper's
// intensification factors: RES TIF=100 -> 1300 hosts => 13 hosts/subtrace;
// INS TIF=30 -> 570 hosts => 19 hosts/subtrace; HP TIF=40 -> 1280 active
// users => 32 users/subtrace, 4.0M files/subtrace.

WorkloadProfile InsProfile() {
  WorkloadProfile p;
  p.name = "INS";
  // Table 3 at TIF=30: open 1196.37M, close 1215.33M, stat 4076.58M.
  const double total = 1196.37 + 1215.33 + 4076.58;
  p.open_fraction = 1196.37 / total * 0.97;
  p.close_fraction = 1215.33 / total * 0.97;
  p.stat_fraction = 4076.58 / total * 0.97;
  p.create_fraction = 0.025;  // namespace churn: growth dominates
  p.unlink_fraction = 0.005;
  p.total_files = 250000;
  p.active_files = 80000;
  p.users = 326;  // 9780 / 30
  p.hosts = 19;   // 570 / 30
  p.zipf_skew = 0.85;
  p.rereference_prob = 0.55;
  p.working_set = 768;
  p.ops_per_second = 2500;
  return p;
}

WorkloadProfile ResProfile() {
  WorkloadProfile p;
  p.name = "RES";
  // Table 3 at TIF=100: open 497.2M, close 558.2M, stat 7983.9M.
  const double total = 497.2 + 558.2 + 7983.9;
  p.open_fraction = 497.2 / total * 0.97;
  p.close_fraction = 558.2 / total * 0.97;
  p.stat_fraction = 7983.9 / total * 0.97;
  p.create_fraction = 0.022;
  p.unlink_fraction = 0.008;
  p.total_files = 300000;
  p.active_files = 60000;
  p.users = 50;  // 5000 / 100
  p.hosts = 13;  // 1300 / 100
  // Research traffic is the most skewed of the three (few hot datasets).
  p.zipf_skew = 1.05;
  p.rereference_prob = 0.6;
  p.working_set = 512;
  p.ops_per_second = 2000;
  return p;
}

WorkloadProfile HpProfile() {
  WorkloadProfile p;
  p.name = "HP";
  // Table 4 (original): 94.7M requests over 10 days; open/close/stat mix
  // from the source trace is roughly balanced between lookups and
  // open/close pairs.
  p.open_fraction = 0.21;
  p.close_fraction = 0.21;
  p.stat_fraction = 0.53;
  p.create_fraction = 0.035;
  p.unlink_fraction = 0.015;
  p.total_files = 400000;   // scaled-down stand-in for 4.0M
  p.active_files = 97000;   // preserves the 0.969/4.0 active ratio
  p.users = 32;             // "32 active users"
  p.hosts = 16;
  p.zipf_skew = 0.95;
  p.rereference_prob = 0.65;
  p.working_set = 1024;
  p.ops_per_second = 3000;
  return p;
}

WorkloadProfile FlashCrowdProfile() {
  WorkloadProfile p;
  p.name = "FLASH";
  // Read-only mob: opens/stats on the famous files, near-zero churn.
  p.open_fraction = 0.30;
  p.close_fraction = 0.30;
  p.stat_fraction = 0.39;
  p.create_fraction = 0.008;
  p.unlink_fraction = 0.002;
  p.total_files = 100000;
  // The crowd converges on a few hundred files out of the whole namespace.
  p.active_files = 400;
  p.users = 5000;  // everyone at once
  p.hosts = 250;
  p.zipf_skew = 1.4;         // a handful of files take most hits
  p.rereference_prob = 0.9;  // the same story refreshed over and over
  p.working_set = 64;
  p.ops_per_second = 20000;  // burst rate, not steady state
  return p;
}

WorkloadProfile ReaddirStormProfile() {
  WorkloadProfile p;
  p.name = "READDIR";
  // ls -lR sweeps: one stat per directory entry, opens only for descents.
  p.open_fraction = 0.05;
  p.close_fraction = 0.05;
  p.stat_fraction = 0.88;
  p.create_fraction = 0.015;
  p.unlink_fraction = 0.005;
  p.total_files = 200000;
  p.active_files = 150000;    // a sweep touches most of the namespace
  p.users = 40;
  p.hosts = 20;
  p.zipf_skew = 0.3;          // within a sweep every entry is hit alike
  p.rereference_prob = 0.05;  // sequential scan: no recency to exploit
  p.working_set = 128;
  p.ops_per_second = 8000;
  // Wide and shallow: big directories are what make the storm.
  p.dirs_per_level = 256;
  p.dir_depth = 2;
  return p;
}

WorkloadProfile MultiTenantProfile() {
  WorkloadProfile p;
  p.name = "TENANT";
  p.open_fraction = 0.18;
  p.close_fraction = 0.18;
  p.stat_fraction = 0.58;
  p.create_fraction = 0.04;
  p.unlink_fraction = 0.02;
  p.total_files = 500000;
  p.active_files = 120000;
  p.users = 800;  // many small tenants, each in its own subtree
  p.hosts = 100;
  p.zipf_skew = 0.7;          // warm tenants, but no single celebrity
  p.rereference_prob = 0.45;
  p.working_set = 2048;       // union of many small per-tenant sets
  p.ops_per_second = 6000;
  p.dirs_per_level = 32;
  p.dir_depth = 4;            // /tenant/project/dir/file
  return p;
}

Result<WorkloadProfile> ProfileByName(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "ins") return InsProfile();
  if (lower == "res") return ResProfile();
  if (lower == "hp") return HpProfile();
  if (lower == "flash") return FlashCrowdProfile();
  if (lower == "readdir") return ReaddirStormProfile();
  if (lower == "tenant") return MultiTenantProfile();
  return Status::InvalidArgument("unknown workload profile: " + name);
}

}  // namespace ghba
