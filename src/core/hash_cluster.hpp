// Hash-based metadata placement baseline (Lustre/Vesta/InterMezzo style).
//
// The home MDS of a file is a pure function of its pathname hash, so lookup
// is a deterministic O(1) unicast with no replicas at all. The flip side
// (Table 1, Section 1.1) is migration cost: when the server count changes,
// every file whose hash now lands elsewhere must move — the behaviour this
// baseline exposes for the reconfiguration benchmarks and examples.
#pragma once

#include "core/cluster.hpp"

namespace ghba {

class HashPlacementCluster final : public ClusterBase {
 public:
  explicit HashPlacementCluster(ClusterConfig config);

  std::string SchemeName() const override { return "HashPlacement"; }

  LookupOutcome Lookup(const std::string& path, double now_ms) override;
  Status CreateFile(const std::string& path, FileMetadata metadata,
                    double now_ms) override;
  Status UnlinkFile(const std::string& path, double now_ms) override;

  /// The pathname-hash pain point (Section 1.1, Lazy Hybrid discussion):
  /// renaming a directory re-hashes every file underneath, and files whose
  /// hash now lands elsewhere must migrate.
  Result<std::uint64_t> RenamePrefix(const std::string& old_prefix,
                                     const std::string& new_prefix,
                                     double now_ms,
                                     ReconfigReport* report) override;

  Result<MdsId> AddMds(ReconfigReport* report) override;
  Status RemoveMds(MdsId id, ReconfigReport* report) override;

  /// Hash placement keeps no lookup structures at all.
  std::uint64_t LookupStateBytes(MdsId) const override { return 0; }

  /// The placement function: which MDS owns `path` right now.
  MdsId HomeOf(const std::string& path) const;

  /// Every file sits on the MDS the placement function names.
  Status CheckInvariants() const;

 private:
  /// Move every misplaced file to its computed home; returns moves.
  std::uint64_t Rebalance(ReconfigReport* report);
};

}  // namespace ghba
