// Abstract metadata-cluster interface plus shared machinery.
//
// All schemes (G-HBA, HBA, BFA, hash placement) implement MetadataCluster:
// the trace-driven simulator, the examples and the benchmarks only talk to
// this interface, so schemes are interchangeable.
//
// ClusterBase carries what every scheme shares: the MDS nodes, the
// simulation oracle (an exact path -> home map used for bookkeeping and
// verification — never consulted for routing), deterministic randomness,
// metrics, and the replica-memory accounting that drives the spill-to-disk
// latency model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lookup_outcome.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/mds_node.hpp"
#include "mds/metadata.hpp"

namespace ghba {

/// What a reconfiguration (join/leave) cost.
struct ReconfigReport {
  std::uint64_t replicas_migrated = 0;  ///< Bloom-filter replica movements
  std::uint64_t files_migrated = 0;     ///< metadata records re-homed
  std::uint64_t messages = 0;
  bool group_split = false;
  bool group_merged = false;
};

class MetadataCluster {
 public:
  virtual ~MetadataCluster() = default;

  virtual std::string SchemeName() const = 0;

  /// Route a metadata lookup for `path` entering the system at simulated
  /// time `now_ms` via a random MDS.
  virtual LookupOutcome Lookup(const std::string& path, double now_ms) = 0;

  /// Create a file: a random MDS becomes its home (paper: "all MDSs are
  /// initially populated randomly"); home-local filter updated immediately,
  /// replicas lazily via the publish policy.
  virtual Status CreateFile(const std::string& path, FileMetadata metadata,
                            double now_ms) = 0;

  /// Delete a file from its home.
  virtual Status UnlinkFile(const std::string& path, double now_ms) = 0;

  /// close(2): locate the file, then apply an attribute write (size/mtime)
  /// at its home MDS. Routing costs are the same as Lookup; the write adds
  /// a store update at the home. Returns the lookup outcome.
  virtual LookupOutcome CloseFile(const std::string& path, double now_ms,
                                 std::uint64_t new_size_bytes) = 0;

  /// Directory rename: every file whose path starts with `old_prefix` gets
  /// the prefix replaced by `new_prefix`. This is Table 1's "directory
  /// operations" axis made concrete: pathname-hashed placement (Lazy
  /// Hybrid-style) must *migrate* every affected file to its newly hashed
  /// home, while the Bloom-filter schemes only update local filters.
  /// Returns the number of files renamed.
  virtual Result<std::uint64_t> RenamePrefix(const std::string& old_prefix,
                                             const std::string& new_prefix,
                                             double now_ms,
                                             ReconfigReport* report) = 0;

  /// Add a fresh MDS; returns its id.
  virtual Result<MdsId> AddMds(ReconfigReport* report) = 0;

  /// Gracefully remove an MDS (its replicas and files are re-homed).
  virtual Status RemoveMds(MdsId id, ReconfigReport* report) = 0;

  virtual std::uint32_t NumMds() const = 0;

  /// Bytes of lookup-structure memory (replicas + LRU + directories) on one
  /// MDS under the scheme's accounting (Table 5).
  virtual std::uint64_t LookupStateBytes(MdsId id) const = 0;

  /// Force-push every MDS's current filter to its replica holders. Called
  /// after bulk population; schemes without replicas ignore it.
  virtual void FlushReplicas(double now_ms) { (void)now_ms; }

  virtual ClusterMetrics& metrics() = 0;
  virtual const ClusterMetrics& metrics() const = 0;
};

/// Shared implementation base.
class ClusterBase : public MetadataCluster {
 public:
  explicit ClusterBase(ClusterConfig config);

  std::uint32_t NumMds() const override {
    return static_cast<std::uint32_t>(alive_.size());
  }

  ClusterMetrics& metrics() override { return metrics_; }
  const ClusterMetrics& metrics() const override { return metrics_; }

  /// Shared close(): route via the scheme's Lookup, then mutate the record
  /// in place at the home (no filter change — the path set is unchanged).
  LookupOutcome CloseFile(const std::string& path, double now_ms,
                         std::uint64_t new_size_bytes) override;

  const ClusterConfig& config() const { return config_; }

  /// Total files across all MDSs.
  std::uint64_t TotalFiles() const;

  /// The simulation oracle's view of a path's home (kInvalidMds if absent).
  /// Bookkeeping only — never used for routing decisions.
  MdsId OracleHome(const std::string& path) const;

  MdsNode& node(MdsId id) { return *nodes_.at(id); }
  const MdsNode& node(MdsId id) const { return *nodes_.at(id); }
  bool IsAlive(MdsId id) const;
  const std::vector<MdsId>& alive() const { return alive_; }

 protected:
  /// Uniformly random live MDS (entry point of a query / home of a create).
  MdsId RandomMds();

  /// Register a brand-new node and return its id.
  MdsId NewNode();

  /// Drop a node entirely (after the derived class migrated its state).
  void RetireNode(MdsId id);

  /// Insert into the oracle; fails on duplicates.
  Status OracleInsert(const std::string& path, MdsId home);
  Status OracleErase(const std::string& path);

  /// All oracle paths beginning with `prefix` (for directory renames).
  std::vector<std::string> OraclePathsWithPrefix(
      const std::string& prefix) const;

  /// Shared RenamePrefix implementation for schemes whose placement does
  /// not depend on the pathname (G-HBA, HBA, BFA): each affected file stays
  /// on its home; only the home's local filter and store keys change.
  /// `maybe_publish(home, now_ms)` is invoked once per touched home so the
  /// scheme's staleness policy can refresh replicas.
  Result<std::uint64_t> RenameKeysKeepingHomes(
      const std::string& old_prefix, const std::string& new_prefix,
      double now_ms,
      const std::function<void(MdsId, double)>& maybe_publish);

  /// Published replica size of `owner`'s filter under the analytic
  /// accounting: bits_per_file / 8 * published file count. Replica holders
  /// charge this against their memory budget.
  std::uint64_t PublishedReplicaBytes(MdsId owner) const;
  void SetPublishedFileCount(MdsId owner, std::uint64_t files);

  /// Expected fraction of `holder`'s replica set that is disk-resident,
  /// given `replica_bytes` charged to the "replicas" category.
  double ReplicaOverflowFraction(MdsId holder) const;

  /// Refresh `holder`'s memory accounting. `replica_bytes` is the analytic
  /// total of all replicas it currently holds.
  void ChargeMemory(MdsId holder, std::uint64_t replica_bytes);

  /// Cache-hit probability for authoritative metadata reads on `id`.
  double MetadataCacheHitProb(MdsId id) const;

  /// Cost (ms) of probing `filters` filters on `holder`, accounting for the
  /// disk-resident fraction; bumps metrics().disk_probes.
  double ProbeCost(MdsId holder, std::uint64_t filters);

  /// Run `service_ms` of work on `id` starting no earlier than
  /// `arrival_ms`; returns wait + service. With queueing disabled this is
  /// just `service_ms`; enabled, it applies the G/G/1 Lindley recursion on
  /// the node's FIFO queue, so saturated MDSs accumulate delay.
  double ServeAt(MdsId id, double arrival_ms, double service_ms);

  /// Per-mutation durability cost under the configured fsync policy
  /// (model_durability off -> 0). kAlways pays a full WAL fsync per
  /// mutation; kInterval amortizes one fsync across the batch; kNever is
  /// free (and correspondingly lossy — the prototype's storage tests show
  /// the bound). Schemes charge this on every create/unlink/close at the
  /// home MDS, so the Γ optimizer weighs durability against multicast cost.
  double DurabilityCost() const;

  /// ServeAt(home, ...) for one durable mutation: the home is occupied for
  /// the mutation's fsync share (feeds the queueing model when enabled).
  double ChargeMutation(MdsId home, double now_ms);

  ClusterConfig config_;
  Rng rng_;
  ClusterMetrics metrics_;

  std::vector<std::unique_ptr<MdsNode>> nodes_;  // index = MdsId
  std::vector<MdsId> alive_;                     // live ids, sorted
  std::unordered_map<std::string, MdsId> oracle_;
  std::vector<std::uint64_t> published_files_;   // per MdsId
};

}  // namespace ghba
