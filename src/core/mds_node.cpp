#include "core/mds_node.hpp"

namespace ghba {

namespace {

LruBloomArray::Options LruOptionsFor(const ClusterConfig& config) {
  LruBloomArray::Options options;
  options.capacity = config.lru_capacity;
  options.counters_per_item = 8.0;
  options.seed = 0x1111 ^ config.seed;
  options.policy = config.lru_policy;
  return options;
}

}  // namespace

MdsNode::MdsNode(MdsId id, const ClusterConfig& config)
    : id_(id),
      local_filter_(CountingBloomFilter::ForCapacity(
          config.expected_files_per_mds, config.bits_per_file,
          /*seed=*/config.seed ^ 0x5151)),
      lru_(LruOptionsFor(config)),
      memory_(config.memory_budget_bytes) {
  // All local filters across MDSs share one geometry/seed so replicas are
  // interchangeable and the algebra (union/XOR) is well defined.
}

Status MdsNode::AddLocalFile(const std::string& path, FileMetadata metadata) {
  if (Status s = store_.Insert(path, std::move(metadata)); !s.ok()) return s;
  local_filter_.Add(path);
  ++mutations_since_publish_;
  return Status::Ok();
}

Status MdsNode::RemoveLocalFile(const std::string& path) {
  if (Status s = store_.Remove(path); !s.ok()) return s;
  // The store held the path, so the counting filter must hold it too (it
  // is updated on every insert and has no false negatives). A failed
  // remove therefore proves the filter diverged from the store — silently
  // dropping that error previously let the divergence compound unlink
  // after unlink.
  if (Status s = local_filter_.Remove(path); !s.ok()) {
    return Status::Internal("local filter diverged from store on unlink of " +
                            path + ": " + s.ToString());
  }
  ++mutations_since_publish_;
  return Status::Ok();
}

bool MdsNode::LocalFilterContains(const std::string& path) const {
  return local_filter_.MayContain(path);
}

bool MdsNode::LocalFilterContains(QueryDigest& digest) const {
  return local_filter_.MayContain(digest.For(local_filter_.seed()));
}

BloomFilter MdsNode::SnapshotLocalFilter() const {
  return local_filter_.ToBloomFilter();
}

std::uint64_t MdsNode::StalenessBits() const {
  if (!has_published_) {
    // Never published: everything local is staleness.
    return SnapshotLocalFilter().bits().PopCount();
  }
  return SnapshotLocalFilter().XorDistance(published_);
}

void MdsNode::SetPublishedSnapshot(BloomFilter snapshot) {
  published_ = std::move(snapshot);
  has_published_ = true;
}

}  // namespace ghba
