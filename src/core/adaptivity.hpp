// Online adaptivity policy: when do live signals justify reconfiguring?
//
// The paper's Section 3.3 optimizer (Eq. 2-4, core/optimizer.hpp) answers
// "what group size M maximizes normalized throughput Gamma for measured
// hit rates and level latencies". This controller turns that static answer
// into an online control loop: callers periodically sample the running
// cluster — per-level hit ratios and latencies from the MetricsRegistry
// (lookups.l1 .. lookups.miss, latency.*_ms), resident lookup-structure
// bytes from kStatsSnapshot's lookup_state_bytes, liveness verdicts from
// the PeerHealthTracker — and ask Evaluate() for the next action.
//
// The policy is deliberately pure: no sockets, no cluster handle, no
// clock. PrototypeCluster::AdaptivityTick does the sampling and applies
// the returned action over the wire; every transition here is
// unit-testable with hand-built signal structs.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "core/optimizer.hpp"

namespace ghba {

/// One sample of the running cluster, in the controller's vocabulary.
/// Field comments name the MetricsRegistry metric each value comes from
/// (see DESIGN.md "Online adaptivity" for the full mapping).
struct AdaptivitySignals {
  std::uint32_t num_mds = 0;     ///< alive servers (N)
  std::uint32_t num_groups = 0;  ///< current group count
  std::uint32_t largest_group = 0;   ///< members of the fullest group
  std::uint32_t max_group_size = 0;  ///< configured ceiling M
  std::uint64_t lookups_total = 0;   ///< sum of lookups.l1 .. lookups.miss
  /// Resident lookup-structure bytes summed across servers
  /// (kStatsSnapshot lookup_state_bytes) and the matching budget
  /// (ClusterConfig::memory_budget_bytes x alive servers).
  std::uint64_t lookup_state_bytes = 0;
  std::uint64_t memory_budget_bytes = 0;
  std::uint32_t dead_peers = 0;  ///< PeerHealthTracker kDead verdicts
  /// Eq. 4 inputs measured from the live counters: P_LRU / P_L2 are the
  /// unique-hit ratios (lookups.l1, lookups.l2 over the total), D_* the
  /// per-level mean latencies (latency.l1_ms .. latency.l4_ms).
  LatencyComponents latency;
};

enum class AdaptiveAction : std::uint8_t {
  kNone = 0,
  kAddServer,     ///< join: lookup state overflows the memory budget
  kRemoveServer,  ///< graceful leave: the cluster is over-provisioned
  kSplitGroup,    ///< the fullest group exceeds the Eq. 2-4 optimum
};

struct AdaptiveDecision {
  AdaptiveAction action = AdaptiveAction::kNone;
  std::string reason;  ///< human-readable trigger, for logs and tests
};

/// Stateful wrapper around the pure thresholds: remembers only the
/// cooldown so one noisy sample burst cannot thrash the topology.
class AdaptivityController {
 public:
  explicit AdaptivityController(AdaptivityOptions options)
      : options_(options) {}

  /// The group size Eq. 2-4 recommends for this sample (argmax of Gamma
  /// over [1, max_group_size] with the measured components).
  std::uint32_t RecommendedGroupSize(const AdaptivitySignals& signals) const;

  /// Decide the next reconfiguration, or kNone. Priority order: split an
  /// oversized group (routing efficiency) before growing the cluster
  /// (capacity) before shrinking it (cost). A non-kNone decision starts
  /// the cooldown.
  AdaptiveDecision Evaluate(const AdaptivitySignals& signals);

  std::uint32_t cooldown_remaining() const { return cooldown_; }

 private:
  AdaptivityOptions options_;
  std::uint32_t cooldown_ = 0;
};

}  // namespace ghba
