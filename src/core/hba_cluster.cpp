#include "core/hba_cluster.hpp"

#include <algorithm>
#include <cassert>

namespace ghba {

HbaCluster::HbaCluster(ClusterConfig config, bool use_lru)
    : ClusterBase(config), use_lru_(use_lru) {
  for (std::uint32_t i = 0; i < config_.num_mds; ++i) NewNode();
  // Full mesh of replicas: every node holds every other node's filter.
  for (const MdsId holder : alive_) {
    for (const MdsId owner : alive_) {
      if (owner == holder) continue;
      const Status s = node(holder).segment().AddEntry(
          owner, node(owner).SnapshotLocalFilter());
      assert(s.ok());
      (void)s;
    }
  }
  for (const MdsId id : alive_) RechargeHolder(id);
  metrics_.Reset();
}

std::string HbaCluster::SchemeName() const { return use_lru_ ? "HBA" : "BFA"; }

void HbaCluster::RechargeHolder(MdsId holder) {
  if (!IsAlive(holder)) return;
  MdsNode& n = node(holder);
  std::uint64_t replica_bytes = 0;
  for (const auto& entry : n.segment().entries()) {
    replica_bytes += PublishedReplicaBytes(entry.owner);
  }
  ChargeMemory(holder, replica_bytes);
}

HbaCluster::VerifyOutcome HbaCluster::VerifyAt(MdsId candidate,
                                               const std::string& path) {
  VerifyOutcome out;
  out.found = node(candidate).store().Contains(path);
  out.cost_ms = config_.latency.MetadataRead(MetadataCacheHitProb(candidate));
  return out;
}

LookupOutcome HbaCluster::Lookup(const std::string& path, double now_ms) {
  LookupOutcome res;
  const MdsId entry = RandomMds();
  MdsNode& e = node(entry);
  double lat = ServeAt(entry, now_ms, config_.latency.local_proc_ms);
  std::uint64_t msgs = 0;
  // Digest-once: one hash per distinct filter seed for the whole lookup.
  QueryDigest digest(path);
  std::vector<MdsId>& already_verified = scratch_.already_verified;
  already_verified.clear();
  std::vector<MdsId>& contacted = scratch_.contacted;
  contacted.clear();

  // Trace bookkeeping: attribute simulated time to the active level.
  double level_mark = 0;
  std::array<double, 4> level_ms{};
  const auto close_level = [&](int level) {
    level_ms[static_cast<std::size_t>(level - 1)] += lat - level_mark;
    level_mark = lat;
  };
  const auto contact = [&](MdsId peer) {
    if (peer == entry) return;
    if (std::find(contacted.begin(), contacted.end(), peer) ==
        contacted.end()) {
      contacted.push_back(peer);
    }
  };

  const auto finish = [&](int level, bool found, MdsId home) {
    close_level(level);
    res.trace.level = static_cast<std::uint8_t>(level);
    for (std::size_t i = 0; i < level_ms.size(); ++i) {
      res.trace.level_elapsed_ns[i] =
          static_cast<std::uint64_t>(level_ms[i] * 1e6);
    }
    res.trace.peers_contacted = static_cast<std::uint32_t>(contacted.size());
    res.found = found;
    res.home = home;
    res.latency_ms = lat;
    res.served_level = level;
    res.messages = msgs;
    metrics_.lookup_latency_ms.Add(lat);
    metrics_.lookup_messages += msgs;
    metrics_.messages += msgs;
    switch (level) {
      case 1:
        ++metrics_.levels.l1;
        metrics_.l1_latency_ms.Add(lat);
        break;
      case 2:
        ++metrics_.levels.l2;
        metrics_.l2_latency_ms.Add(lat);
        break;
      default:
        if (found) {
          ++metrics_.levels.l4;
        } else {
          ++metrics_.levels.miss;
        }
        metrics_.global_latency_ms.Add(lat);
        break;
    }
    return res;
  };

  const auto verify_candidate = [&](MdsId candidate) {
    if (candidate != entry) {
      lat += config_.latency.Unicast();
      msgs += 2;
      contact(candidate);
    }
    const auto v = VerifyAt(candidate, path);
    lat += ServeAt(candidate, now_ms + lat, v.cost_ms);
    already_verified.push_back(candidate);
    if (!v.found) {
      ++metrics_.false_routes;
      res.trace.false_route = true;
    }
    return v.found;
  };

  // --- L1: LRU array (HBA only) ---
  if (use_lru_) {
    lat += ServeAt(entry, now_ms + lat,
                   config_.latency.ArrayProbe(
                       std::max<std::uint64_t>(e.lru().home_count(), 1)));
    ArrayQueryResult& l1 = scratch_.l1;
    e.lru().Query(digest, l1);
    if (l1.unique() && IsAlive(l1.owner)) {
      if (verify_candidate(l1.owner)) {
        e.lru().Touch(digest, l1.owner);
        return finish(1, true, l1.owner);
      }
      e.lru().Invalidate(digest);
    }
  }
  close_level(1);

  // --- L2: the full global array (N-1 replicas + own filter). This is the
  // expensive probe when the array has spilled to disk. ---
  lat += ServeAt(entry, now_ms + lat, ProbeCost(entry, e.segment().size() + 1));
  std::vector<MdsId>& hits = scratch_.hits;
  hits.clear();
  e.segment().QuerySharedInto(digest, hits);
  if (e.LocalFilterContains(digest)) hits.push_back(entry);
  if (hits.size() == 1) {
    const MdsId candidate = hits.front();
    const bool fresh = std::find(already_verified.begin(),
                                 already_verified.end(),
                                 candidate) == already_verified.end();
    if (fresh && verify_candidate(candidate)) {
      if (use_lru_) e.lru().Touch(digest, candidate);
      return finish(2, true, candidate);
    }
  }
  close_level(2);

  // --- global multicast fallback (exact) ---
  const std::uint64_t others = NumMds() - 1;
  msgs += 2 * others;
  for (const MdsId m : alive_) contact(m);
  const double gcast = config_.latency.Multicast(others);
  double slowest_verify = 0;
  MdsId found_home = kInvalidMds;
  for (const MdsId m : alive_) {
    double work = config_.latency.local_proc_ms + config_.latency.ArrayProbe(1);
    bool found_here = false;
    if (node(m).LocalFilterContains(digest)) {
      const auto v = VerifyAt(m, path);
      work += v.cost_ms;
      found_here = v.found;
    }
    slowest_verify =
        std::max(slowest_verify, ServeAt(m, now_ms + lat + gcast, work));
    if (found_here) found_home = m;
  }
  lat += gcast + slowest_verify;
  if (found_home != kInvalidMds) {
    if (use_lru_) e.lru().Touch(digest, found_home);
    return finish(4, true, found_home);
  }
  return finish(4, false, kInvalidMds);
}

Status HbaCluster::CreateFile(const std::string& path, FileMetadata metadata,
                              double now_ms) {
  if (OracleHome(path) != kInvalidMds) return Status::AlreadyExists(path);
  const MdsId home = RandomMds();
  if (Status s = node(home).AddLocalFile(path, std::move(metadata)); !s.ok()) {
    return s;
  }
  const Status oracle = OracleInsert(path, home);
  assert(oracle.ok());
  (void)oracle;
  metrics_.messages += 2;
  // Occupy the home for the store write plus its WAL-fsync share.
  (void)ChargeMutation(home, now_ms);
  MaybePublish(home, now_ms);
  return Status::Ok();
}

Status HbaCluster::UnlinkFile(const std::string& path, double now_ms) {
  const MdsId home = OracleHome(path);
  if (home == kInvalidMds) return Status::NotFound(path);
  if (Status s = node(home).RemoveLocalFile(path); !s.ok()) return s;
  const Status oracle = OracleErase(path);
  assert(oracle.ok());
  (void)oracle;
  metrics_.messages += 2;
  (void)ChargeMutation(home, now_ms);
  MaybePublish(home, now_ms);
  return Status::Ok();
}

Result<std::uint64_t> HbaCluster::RenamePrefix(const std::string& old_prefix,
                                               const std::string& new_prefix,
                                               double now_ms,
                                               ReconfigReport* report) {
  (void)report;  // home-local, nothing migrates
  return RenameKeysKeepingHomes(
      old_prefix, new_prefix, now_ms,
      [this](MdsId home, double now) { MaybePublish(home, now); });
}

void HbaCluster::MaybePublish(MdsId owner, double now_ms) {
  if (node(owner).mutations_since_publish() >=
      config_.publish_after_mutations) {
    PublishReplica(owner, now_ms);
  }
}

void HbaCluster::PublishReplica(MdsId owner, double now_ms) {
  (void)now_ms;
  MdsNode& n = node(owner);
  BloomFilter snapshot = n.SnapshotLocalFilter();
  n.SetPublishedSnapshot(snapshot);
  n.MarkPublished();
  SetPublishedFileCount(owner, n.file_count());

  // System-wide broadcast: every other MDS refreshes its copy (the paper:
  // "a replica update ... triggers a system-wide multicast to update all
  // MDSs in the system").
  std::uint64_t messages = 0;
  double apply_cost = 0;
  for (const MdsId holder : alive_) {
    if (holder == owner) continue;
    const Status s = node(holder).segment().RefreshEntry(owner, snapshot);
    assert(s.ok());
    (void)s;
    messages += 2;
    apply_cost = std::max(apply_cost, ReplicaOverflowFraction(holder) *
                                          config_.latency.spilled_probe_ms);
    RechargeHolder(holder);
  }
  RechargeHolder(owner);

  metrics_.update_latency_ms.Add(
      config_.latency.Multicast(alive_.size() - 1) + apply_cost);
  metrics_.update_messages += messages;
  metrics_.messages += messages;
  ++metrics_.publishes;
}

void HbaCluster::FlushReplicas(double now_ms) {
  for (const MdsId id : alive_) PublishReplica(id, now_ms);
}

Result<MdsId> HbaCluster::AddMds(ReconfigReport* report) {
  ReconfigReport local;
  ReconfigReport& rep = report != nullptr ? *report : local;

  const std::uint64_t existing = alive_.size();
  const MdsId nid = NewNode();

  // The new node must receive all N existing replicas to hold the global
  // image (Fig. 11's HBA line), and every existing node installs the new
  // node's filter (the "exchange" of Fig. 15).
  for (const MdsId owner : alive_) {
    if (owner == nid) continue;
    const Status s = node(nid).segment().AddEntry(
        owner, node(owner).published_snapshot() != nullptr
                   ? *node(owner).published_snapshot()
                   : node(owner).SnapshotLocalFilter());
    assert(s.ok());
    (void)s;
    ++rep.replicas_migrated;
    ++rep.messages;
  }
  for (const MdsId holder : alive_) {
    if (holder == nid) continue;
    const Status s = node(holder).segment().AddEntry(
        nid, node(nid).SnapshotLocalFilter());
    assert(s.ok());
    (void)s;
    ++rep.messages;
    RechargeHolder(holder);
  }
  RechargeHolder(nid);
  assert(existing + 1 == alive_.size());
  (void)existing;

  metrics_.replicas_migrated += rep.replicas_migrated;
  metrics_.reconfig_messages += rep.messages;
  metrics_.messages += rep.messages;
  return nid;
}

Status HbaCluster::RemoveMds(MdsId id, ReconfigReport* report) {
  if (!IsAlive(id)) return Status::NotFound("no such MDS");
  if (alive_.size() == 1) {
    return Status::InvalidArgument("cannot remove the last MDS");
  }
  ReconfigReport local;
  ReconfigReport& rep = report != nullptr ? *report : local;

  // Every other node drops the departing node's replica.
  for (const MdsId holder : alive_) {
    if (holder == id) continue;
    auto removed = node(holder).segment().RemoveEntry(id);
    assert(removed.ok());
    (void)removed;
    ++rep.messages;
  }

  // Re-home its files round-robin over the survivors.
  auto files = node(id).store().ExtractAll();
  std::vector<MdsId> targets;
  for (const MdsId a : alive_) {
    if (a != id) targets.push_back(a);
  }
  std::size_t rr = 0;
  for (auto& [path, md] : files) {
    const MdsId tgt = targets[rr++ % targets.size()];
    const Status s = node(tgt).AddLocalFile(path, std::move(md));
    assert(s.ok());
    (void)s;
    oracle_[path] = tgt;
  }
  rep.files_migrated += files.size();
  rep.messages += files.size();

  RetireNode(id);
  for (const MdsId tgt : targets) PublishReplica(tgt, 0.0);
  for (const MdsId a : alive_) RechargeHolder(a);

  metrics_.reconfig_messages += rep.messages;
  metrics_.messages += rep.messages;
  return Status::Ok();
}

std::uint64_t HbaCluster::LookupStateBytes(MdsId id) const {
  const MdsNode& n = node(id);
  std::uint64_t bytes = PublishedReplicaBytes(id);
  for (const auto& entry : n.segment().entries()) {
    bytes += PublishedReplicaBytes(entry.owner);
  }
  if (use_lru_) bytes += n.lru().MemoryBytes();
  return bytes;
}

Status HbaCluster::CheckInvariants() const {
  for (const MdsId holder : alive_) {
    if (node(holder).segment().size() != alive_.size() - 1) {
      return Status::Internal("node does not hold a full global image");
    }
    for (const MdsId owner : alive_) {
      if (owner == holder) continue;
      if (!node(holder).segment().HasEntry(owner)) {
        return Status::Internal("missing replica in full mesh");
      }
    }
  }
  return Status::Ok();
}

}  // namespace ghba
