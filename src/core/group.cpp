#include "core/group.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ghba {

MdsId Group::LightestMember() const {
  assert(!members.empty());
  // Count loads in one pass rather than calling LoadOf per member.
  std::unordered_map<MdsId, std::size_t> load;
  for (const MdsId m : members) load[m] = 0;
  for (const auto& [owner, holder] : replica_holder) ++load[holder];

  MdsId best = members.front();
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (const MdsId m : members) {
    if (load[m] < best_load || (load[m] == best_load && m < best)) {
      best = m;
      best_load = load[m];
    }
  }
  return best;
}

std::vector<MdsId> Group::ReplicasHeldBy(MdsId member) const {
  std::vector<MdsId> owners;
  for (const auto& [owner, holder] : replica_holder) {
    if (holder == member) owners.push_back(owner);
  }
  std::sort(owners.begin(), owners.end());
  return owners;
}

}  // namespace ghba
