#include "core/adaptivity.hpp"

#include <algorithm>

namespace ghba {

std::uint32_t AdaptivityController::RecommendedGroupSize(
    const AdaptivitySignals& signals) const {
  if (signals.num_mds == 0 || signals.max_group_size == 0) return 1;
  return OptimalGroupSize(signals.latency, signals.num_mds,
                          signals.max_group_size);
}

AdaptiveDecision AdaptivityController::Evaluate(
    const AdaptivitySignals& signals) {
  if (!options_.enabled) return {AdaptiveAction::kNone, "adaptivity disabled"};
  if (cooldown_ > 0) {
    --cooldown_;
    return {AdaptiveAction::kNone, "cooling down"};
  }
  if (signals.num_mds == 0) return {AdaptiveAction::kNone, "no servers"};

  // A group past the configured ceiling M always splits: the ceiling is a
  // hard invariant, not a measured optimum, so it needs no sample count.
  if (signals.largest_group > signals.max_group_size) {
    cooldown_ = options_.cooldown_ticks;
    return {AdaptiveAction::kSplitGroup, "group exceeds configured M"};
  }

  // Memory pressure beats everything measured: past the budget, replicas
  // spill to disk and every L2 probe can pay a disk read (Fig. 14).
  if (signals.memory_budget_bytes > 0) {
    const double fill = static_cast<double>(signals.lookup_state_bytes) /
                        static_cast<double>(signals.memory_budget_bytes);
    if (fill > options_.overload_fraction) {
      cooldown_ = options_.cooldown_ticks;
      return {AdaptiveAction::kAddServer,
              "lookup state fills " + std::to_string(fill) +
                  " of the memory budget"};
    }
  }

  // The measured signals (hit ratios, latencies) are noise until enough
  // lookups have finished; act only on warm counters.
  if (signals.lookups_total < options_.min_lookup_samples) {
    return {AdaptiveAction::kNone, "too few lookup samples"};
  }

  // Eq. 2-4 with the measured components: if the fullest group is larger
  // than the optimum, splitting buys back Gamma (the multicast term of
  // Eq. 4 dominates the storage saving of Eq. 3).
  const std::uint32_t optimal = RecommendedGroupSize(signals);
  if (signals.largest_group > optimal && signals.num_groups > 0) {
    cooldown_ = options_.cooldown_ticks;
    return {AdaptiveAction::kSplitGroup,
            "fullest group " + std::to_string(signals.largest_group) +
                " exceeds Eq. 2-4 optimum " + std::to_string(optimal)};
  }

  // Shrink only a healthy, over-provisioned cluster: dead peers mean a
  // fail-over is (or was just) in flight and capacity judgments are stale.
  if (signals.dead_peers == 0 && signals.num_mds > options_.min_servers &&
      signals.memory_budget_bytes > 0) {
    const double fill = static_cast<double>(signals.lookup_state_bytes) /
                        static_cast<double>(signals.memory_budget_bytes);
    if (fill < options_.underload_fraction) {
      cooldown_ = options_.cooldown_ticks;
      return {AdaptiveAction::kRemoveServer,
              "lookup state fills only " + std::to_string(fill) +
                  " of the memory budget"};
    }
  }

  return {AdaptiveAction::kNone, "within thresholds"};
}

}  // namespace ghba
