// HBA and pure-BFA baselines (Zhu et al., the scheme G-HBA extends).
//
// Every MDS stores the Bloom-filter replicas of *all* other MDSs — a full
// global image per node. HBA adds the L1 LRU array on top; the pure Bloom
// Filter Array (BFA) baseline of Table 5 omits it. Queries resolve locally
// on a unique hit and otherwise fall back to a global multicast; there is no
// group level. Replica updates broadcast to every MDS, and an MDS insertion
// exchanges filters with every existing MDS — the costs Figs. 11, 12 and 15
// compare against.
#pragma once

#include "core/cluster.hpp"
#include "hash/query_digest.hpp"

namespace ghba {

class HbaCluster final : public ClusterBase {
 public:
  /// `use_lru == false` gives the pure BFA baseline (bit ratio comes from
  /// config.bits_per_file: 8 for BFA8, 16 for BFA16).
  explicit HbaCluster(ClusterConfig config, bool use_lru = true);

  std::string SchemeName() const override;

  LookupOutcome Lookup(const std::string& path, double now_ms) override;
  Status CreateFile(const std::string& path, FileMetadata metadata,
                    double now_ms) override;
  Status UnlinkFile(const std::string& path, double now_ms) override;
  Result<std::uint64_t> RenamePrefix(const std::string& old_prefix,
                                     const std::string& new_prefix,
                                     double now_ms,
                                     ReconfigReport* report) override;

  Result<MdsId> AddMds(ReconfigReport* report) override;
  Status RemoveMds(MdsId id, ReconfigReport* report) override;

  std::uint64_t LookupStateBytes(MdsId id) const override;

  void FlushReplicas(double now_ms) override;
  void PublishReplica(MdsId owner, double now_ms);

  /// Structural invariants: every node holds a replica of every other node.
  Status CheckInvariants() const;

 private:
  struct VerifyOutcome {
    bool found = false;
    double cost_ms = 0;
  };
  VerifyOutcome VerifyAt(MdsId candidate, const std::string& path);
  void MaybePublish(MdsId owner, double now_ms);
  void RechargeHolder(MdsId holder);

  /// Reused per-lookup buffers (Lookup is single-threaded); same rationale
  /// as GhbaCluster::LookupScratch.
  struct LookupScratch {
    ArrayQueryResult l1;
    std::vector<MdsId> hits;
    std::vector<MdsId> already_verified;
    std::vector<MdsId> contacted;  ///< distinct peers messaged (trace)
  };

  bool use_lru_;
  LookupScratch scratch_;
};

}  // namespace ghba
