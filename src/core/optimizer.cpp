#include "core/optimizer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ghba {

LatencyComponents MeasureComponents(const ClusterMetrics& metrics) {
  LatencyComponents c;
  const auto total = metrics.levels.total();
  if (total == 0) return c;
  c.p_lru = metrics.levels.Fraction(metrics.levels.l1);
  // P_L2 is the unique-hit rate at L2 *given* the query reached L2.
  const auto past_l1 = total - metrics.levels.l1;
  c.p_l2 = past_l1 ? static_cast<double>(metrics.levels.l2) /
                         static_cast<double>(past_l1)
                   : 0.0;
  c.d_lru = metrics.l1_latency_ms.mean();
  c.d_l2 = metrics.l2_latency_ms.mean();
  c.d_group = metrics.group_latency_ms.mean();
  c.d_net = metrics.global_latency_ms.mean();
  return c;
}

double OperationLatency(const LatencyComponents& c, std::uint32_t m) {
  assert(m >= 1);
  const double miss1 = 1.0 - c.p_lru;
  const double l2_term = 1.0 - c.p_l2 / static_cast<double>(m);
  // Paper Eq. 4, as printed: the network term carries an extra factor of M
  // — escaping the group costs a global multicast whose effective penalty
  // the paper scales with the group size (more/larger groups to touch).
  // This weighting is what gives Gamma its interior optimum in Fig. 6.
  return c.d_lru + miss1 * c.d_l2 + miss1 * l2_term * c.d_group +
         miss1 * l2_term * static_cast<double>(m) * c.d_net;
}

double StorageOverhead(std::uint32_t n, std::uint32_t m) {
  assert(m >= 1 && m <= n);
  // (N - M) / M replicas per MDS; add the node's own filter so the measure
  // stays positive at M == N (a single all-encompassing group).
  return (static_cast<double>(n) - static_cast<double>(m)) /
             static_cast<double>(m) +
         1.0;
}

double NormalizedThroughput(const LatencyComponents& c, std::uint32_t n,
                            std::uint32_t m) {
  const double latency = OperationLatency(c, m);
  const double space = StorageOverhead(n, m);
  if (latency <= 0 || space <= 0) return 0.0;
  return 1.0 / (latency * space);
}

std::uint32_t OptimalGroupSize(const LatencyComponents& c, std::uint32_t n,
                               std::uint32_t m_max) {
  return OptimalGroupSize([&c](std::uint32_t) { return c; }, n, m_max);
}

std::uint32_t OptimalGroupSize(
    const std::function<LatencyComponents(std::uint32_t)>& components_at,
    std::uint32_t n, std::uint32_t m_max) {
  std::uint32_t best = 1;
  double best_gamma = -1;
  const std::uint32_t upper = std::min(m_max, n);
  for (std::uint32_t m = 1; m <= upper; ++m) {
    const double gamma = NormalizedThroughput(components_at(m), n, m);
    if (gamma > best_gamma) {
      best_gamma = gamma;
      best = m;
    }
  }
  return best;
}

}  // namespace ghba
