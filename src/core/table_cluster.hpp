// Table-based mapping baseline (xFS / zFS style).
//
// Every MDS holds a full explicit map path -> home MDS, so lookups are
// exact with one table probe and one unicast, and nothing migrates when the
// server count changes. Table 1's verdict: the O(n) per-MDS memory for the
// table — plus the broadcast needed to keep N copies coherent on every
// create/unlink — is what kills it at ultra large scale, which is exactly
// the overhead G-HBA's O(n/m) probabilistic replicas remove.
#pragma once

#include "core/cluster.hpp"

namespace ghba {

class TableMappingCluster final : public ClusterBase {
 public:
  explicit TableMappingCluster(ClusterConfig config);

  std::string SchemeName() const override { return "TableMapping"; }

  LookupOutcome Lookup(const std::string& path, double now_ms) override;
  Status CreateFile(const std::string& path, FileMetadata metadata,
                    double now_ms) override;
  Status UnlinkFile(const std::string& path, double now_ms) override;
  Result<std::uint64_t> RenamePrefix(const std::string& old_prefix,
                                     const std::string& new_prefix,
                                     double now_ms,
                                     ReconfigReport* report) override;

  /// No migration; the newcomer downloads one full table copy.
  Result<MdsId> AddMds(ReconfigReport* report) override;
  Status RemoveMds(MdsId id, ReconfigReport* report) override;

  /// O(n): the full table, on every MDS.
  std::uint64_t LookupStateBytes(MdsId id) const override;

  Status CheckInvariants() const;

 private:
  /// Average bytes of one table entry (path + id + node overhead).
  std::uint64_t TableBytes() const;
};

}  // namespace ghba
