// Static subtree-partition baseline (NFS / AFS / Coda / Sprite style).
//
// The namespace tree is divided into non-overlapping subtrees assigned
// statically to MDSs: here, by the path's top-level directory, pinned to an
// MDS when first seen (round-robin — an administrator's static layout).
// Lookups are deterministic (tiny directory table, one unicast) and
// directory operations are fast, but — Table 1's verdict — there is no load
// balancing: when access traffic is skewed toward a few subtrees, the MDSs
// owning them saturate, and reconfiguration cannot help because existing
// subtrees never move.
#pragma once

#include <map>

#include "core/cluster.hpp"

namespace ghba {

class StaticSubtreeCluster final : public ClusterBase {
 public:
  explicit StaticSubtreeCluster(ClusterConfig config);

  std::string SchemeName() const override { return "StaticSubtree"; }

  LookupOutcome Lookup(const std::string& path, double now_ms) override;
  Status CreateFile(const std::string& path, FileMetadata metadata,
                    double now_ms) override;
  Status UnlinkFile(const std::string& path, double now_ms) override;
  Result<std::uint64_t> RenamePrefix(const std::string& old_prefix,
                                     const std::string& new_prefix,
                                     double now_ms,
                                     ReconfigReport* report) override;

  /// New MDSs only ever receive *new* subtrees: zero migration (Table 1).
  Result<MdsId> AddMds(ReconfigReport* report) override;
  Status RemoveMds(MdsId id, ReconfigReport* report) override;

  /// Lookup state is the subtree table: O(#top-level dirs).
  std::uint64_t LookupStateBytes(MdsId id) const override;

  /// The MDS owning `path`'s subtree (assigns it if unseen).
  MdsId SubtreeOwner(const std::string& path);

  /// Number of distinct subtrees assigned so far.
  std::size_t SubtreeCount() const { return subtree_owner_.size(); }

  Status CheckInvariants() const;

 private:
  /// Top-level component of an absolute path ("/a/b/c" -> "a").
  static Result<std::string> TopLevelOf(const std::string& path);

  std::map<std::string, MdsId> subtree_owner_;
  std::size_t next_assignment_ = 0;  // round-robin cursor
};

}  // namespace ghba
