// Group bookkeeping for G-HBA.
//
// A group of at most M MDSs collectively mirrors the whole system: for every
// MDS outside the group, exactly one member holds that MDS's Bloom-filter
// replica. Two views of the replica->holder relation coexist:
//   * `replica_holder` — the exact assignment, used to *perform* migrations
//     and rebuilds (in a real deployment each member derives this from its
//     own bookkeeping; the simulator centralizes it),
//   * `idbfa`          — the ID Bloom-filter array the *protocols* consult
//     (update routing, Section 2.4), kept faithfully in sync and carrying
//     the paper's probabilistic semantics (multi-hits cost extra messages).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bloom/bloom_filter_array.hpp"
#include "bloom/id_bloom_array.hpp"

namespace ghba {

using GroupId = std::uint32_t;

struct Group {
  GroupId id = 0;
  std::vector<MdsId> members;
  std::unordered_map<MdsId, MdsId> replica_holder;  // owner -> holder
  IdBloomArray idbfa;

  bool HasMember(MdsId id) const {
    for (const MdsId m : members) {
      if (m == id) return true;
    }
    return false;
  }

  std::size_t size() const { return members.size(); }

  /// Number of replicas currently held by `member`.
  std::size_t LoadOf(MdsId member) const {
    std::size_t load = 0;
    for (const auto& [owner, holder] : replica_holder) {
      if (holder == member) ++load;
    }
    return load;
  }

  /// Member holding the fewest replicas (ties: lowest id).
  MdsId LightestMember() const;

  /// Owners of replicas held by `member`.
  std::vector<MdsId> ReplicasHeldBy(MdsId member) const;
};

}  // namespace ghba
