#include "core/hash_cluster.hpp"

#include <cassert>

#include "hash/xx64.hpp"

namespace ghba {

HashPlacementCluster::HashPlacementCluster(ClusterConfig config)
    : ClusterBase(config) {
  for (std::uint32_t i = 0; i < config_.num_mds; ++i) NewNode();
  metrics_.Reset();
}

MdsId HashPlacementCluster::HomeOf(const std::string& path) const {
  assert(!alive_.empty());
  return alive_[Xx64(path, config_.seed) % alive_.size()];
}

LookupOutcome HashPlacementCluster::Lookup(const std::string& path,
                                          double now_ms) {
  (void)now_ms;
  LookupOutcome res;
  const MdsId home = HomeOf(path);
  double lat = config_.latency.local_proc_ms + config_.latency.Unicast();
  std::uint64_t msgs = 2;

  res.found = node(home).store().Contains(path);
  lat += config_.latency.MetadataRead(MetadataCacheHitProb(home));

  res.home = res.found ? home : kInvalidMds;
  res.latency_ms = lat;
  res.served_level = 2;  // single deterministic hop
  res.messages = msgs;
  res.trace.level = 2;
  res.trace.level_elapsed_ns[1] = static_cast<std::uint64_t>(lat * 1e6);
  res.trace.peers_contacted = 1;
  metrics_.lookup_latency_ms.Add(lat);
  metrics_.l2_latency_ms.Add(lat);
  if (res.found) {
    ++metrics_.levels.l2;
  } else {
    ++metrics_.levels.miss;
  }
  metrics_.lookup_messages += msgs;
  metrics_.messages += msgs;
  return res;
}

Status HashPlacementCluster::CreateFile(const std::string& path,
                                        FileMetadata metadata, double now_ms) {
  if (OracleHome(path) != kInvalidMds) return Status::AlreadyExists(path);
  const MdsId home = HomeOf(path);
  if (Status s = node(home).AddLocalFile(path, std::move(metadata)); !s.ok()) {
    return s;
  }
  const Status oracle = OracleInsert(path, home);
  assert(oracle.ok());
  (void)oracle;
  metrics_.messages += 2;
  (void)ChargeMutation(home, now_ms);
  return Status::Ok();
}

Status HashPlacementCluster::UnlinkFile(const std::string& path,
                                        double now_ms) {
  const MdsId home = OracleHome(path);
  if (home == kInvalidMds) return Status::NotFound(path);
  if (Status s = node(home).RemoveLocalFile(path); !s.ok()) return s;
  const Status oracle = OracleErase(path);
  assert(oracle.ok());
  (void)oracle;
  metrics_.messages += 2;
  (void)ChargeMutation(home, now_ms);
  return Status::Ok();
}

Result<std::uint64_t> HashPlacementCluster::RenamePrefix(
    const std::string& old_prefix, const std::string& new_prefix,
    double now_ms, ReconfigReport* report) {
  (void)now_ms;
  if (old_prefix.empty() || new_prefix.empty()) {
    return Status::InvalidArgument("empty rename prefix");
  }
  const auto paths = OraclePathsWithPrefix(old_prefix);
  for (const auto& path : paths) {
    const std::string renamed = new_prefix + path.substr(old_prefix.size());
    if (oracle_.contains(renamed)) return Status::AlreadyExists(renamed);
  }
  for (const auto& path : paths) {
    const std::string renamed = new_prefix + path.substr(old_prefix.size());
    const MdsId old_home = oracle_.at(path);
    const MdsId new_home = HomeOf(renamed);
    auto md = node(old_home).store().Lookup(path);
    assert(md.ok());
    const Status removed = node(old_home).RemoveLocalFile(path);
    assert(removed.ok());
    (void)removed;
    const Status added = node(new_home).AddLocalFile(renamed, std::move(*md));
    assert(added.ok());
    (void)added;
    oracle_.erase(path);
    oracle_.emplace(renamed, new_home);
    if (new_home != old_home) {
      // The re-hashed name lands on a different server: the metadata (and,
      // in a real deployment, the client redirection) must move.
      if (report != nullptr) {
        ++report->files_migrated;
        ++report->messages;
      }
      ++metrics_.messages;
      ++metrics_.reconfig_messages;
    }
  }
  return static_cast<std::uint64_t>(paths.size());
}

std::uint64_t HashPlacementCluster::Rebalance(ReconfigReport* report) {
  // Collect misplaced files first: moving while iterating a node's store
  // would invalidate its iteration.
  std::vector<std::pair<std::string, MdsId>> moves;  // path, old home
  for (const auto& [path, home] : oracle_) {
    if (HomeOf(path) != home) moves.emplace_back(path, home);
  }
  for (const auto& [path, old_home] : moves) {
    auto md = node(old_home).store().Lookup(path);
    assert(md.ok());
    const Status removed = node(old_home).RemoveLocalFile(path);
    assert(removed.ok());
    (void)removed;
    const MdsId new_home = HomeOf(path);
    const Status added = node(new_home).AddLocalFile(path, std::move(*md));
    assert(added.ok());
    (void)added;
    oracle_[path] = new_home;
  }
  if (report != nullptr) {
    report->files_migrated += moves.size();
    report->messages += moves.size();
  }
  metrics_.messages += moves.size();
  metrics_.reconfig_messages += moves.size();
  return moves.size();
}

Result<MdsId> HashPlacementCluster::AddMds(ReconfigReport* report) {
  const MdsId nid = NewNode();
  Rebalance(report);
  return nid;
}

Status HashPlacementCluster::RemoveMds(MdsId id, ReconfigReport* report) {
  if (!IsAlive(id)) return Status::NotFound("no such MDS");
  if (alive_.size() == 1) {
    return Status::InvalidArgument("cannot remove the last MDS");
  }
  // Drain the departing node first, then rebalance under the new modulus.
  auto files = node(id).store().ExtractAll();
  RetireNode(id);
  for (auto& [path, md] : files) {
    const MdsId home = HomeOf(path);
    const Status s = node(home).AddLocalFile(path, std::move(md));
    assert(s.ok());
    (void)s;
    oracle_[path] = home;
    if (report != nullptr) {
      ++report->files_migrated;
      ++report->messages;
    }
  }
  Rebalance(report);
  return Status::Ok();
}

Status HashPlacementCluster::CheckInvariants() const {
  for (const auto& [path, home] : oracle_) {
    if (HomeOf(path) != home) {
      return Status::Internal("file not on its hash-computed home");
    }
    if (!node(home).store().Contains(path)) {
      return Status::Internal("oracle out of sync with store");
    }
  }
  return Status::Ok();
}

}  // namespace ghba
