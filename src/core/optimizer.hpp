// Optimal group size M (Section 3.3, Equations 2-4).
//
// G-HBA trades storage for latency through M: larger groups store fewer
// replicas per MDS ((N-M)/M) but resolve fewer queries locally, multicasting
// more. The paper optimizes the *normalized throughput*
//     Gamma = 1 / (U_laten * U_space)                          (Eq. 2)
// with
//     U_space = (N - M) / M                                    (Eq. 3)
//     U_laten = D_LRU + (1-P_LRU) D_L2
//             + (1-P_LRU)(1 - P_L2/M) D_group
//             + (1-P_LRU)(1 - P_L2/M)^M D_net                  (Eq. 4)
// where P_* are unique-hit rates and D_* level latencies, measured from a
// simulation run (or supplied analytically).
#pragma once

#include <cstdint>
#include <functional>

#include "core/metrics.hpp"

namespace ghba {

struct LatencyComponents {
  double p_lru = 0;    ///< unique-hit rate of the L1 LRU array
  double p_l2 = 0;     ///< unique-hit rate of the L2 segment array
  double d_lru = 0;    ///< latency of L1-resolved operations (ms)
  double d_l2 = 0;     ///< latency of L2-resolved operations (ms)
  double d_group = 0;  ///< latency of L3-resolved operations (ms)
  double d_net = 0;    ///< latency of L4-resolved operations (ms)
};

/// Extract the components from replay metrics.
LatencyComponents MeasureComponents(const ClusterMetrics& metrics);

/// Eq. 4. M >= 1.
double OperationLatency(const LatencyComponents& c, std::uint32_t m);

/// Eq. 3. Requires 1 <= M <= N.
double StorageOverhead(std::uint32_t n, std::uint32_t m);

/// Eq. 2. Higher is better.
double NormalizedThroughput(const LatencyComponents& c, std::uint32_t n,
                            std::uint32_t m);

/// argmax over M in [1, m_max] of Eq. 2 with *fixed* components. Note the
/// paper evaluates Eq. 2 with components measured at each M (hit rates and
/// level latencies depend on the group size); with fixed components the
/// optimum often sits at a boundary. Prefer the callback overload.
std::uint32_t OptimalGroupSize(const LatencyComponents& c, std::uint32_t n,
                               std::uint32_t m_max);

/// argmax over M in [1, m_max] of Eq. 2, with the components measured (or
/// modeled) per candidate M — this is how Section 4.1 identifies the
/// optimal group size from per-M simulation runs.
std::uint32_t OptimalGroupSize(
    const std::function<LatencyComponents(std::uint32_t)>& components_at,
    std::uint32_t n, std::uint32_t m_max);

}  // namespace ghba
