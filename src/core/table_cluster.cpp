#include "core/table_cluster.hpp"

#include <cassert>

namespace ghba {

// The oracle map *is* the table: under table-based mapping the exact
// path->home relation is legitimately replicated to every MDS, so the
// simulation bookkeeping and the scheme's data structure coincide. The
// costs modeled: per-MDS memory = full table, plus a system-wide broadcast
// to keep the N copies coherent on every mutation.

TableMappingCluster::TableMappingCluster(ClusterConfig config)
    : ClusterBase(config) {
  for (std::uint32_t i = 0; i < config_.num_mds; ++i) NewNode();
  metrics_.Reset();
}

std::uint64_t TableMappingCluster::TableBytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [path, home] : oracle_) {
    bytes += path.size() + sizeof(MdsId) + 48;  // hash-map node overhead
  }
  return bytes;
}

LookupOutcome TableMappingCluster::Lookup(const std::string& path,
                                         double now_ms) {
  LookupOutcome res;
  // Entry MDS consults its local table copy (exact), then one unicast.
  double lat = config_.latency.local_proc_ms + config_.latency.mem_metadata_ms;
  std::uint64_t msgs = 0;

  const MdsId home = OracleHome(path);
  if (home != kInvalidMds) {
    lat += config_.latency.Unicast();
    msgs += 2;
    res.found = node(home).store().Contains(path);
    lat += ServeAt(home, now_ms,
                   config_.latency.MetadataRead(MetadataCacheHitProb(home)));
    res.home = res.found ? home : kInvalidMds;
  }
  // Absent from the table: answered locally, no network at all.

  res.latency_ms = lat;
  res.served_level = 2;
  res.messages = msgs;
  res.trace.level = 2;
  res.trace.level_elapsed_ns[1] = static_cast<std::uint64_t>(lat * 1e6);
  res.trace.peers_contacted = msgs ? 1 : 0;
  metrics_.lookup_latency_ms.Add(lat);
  metrics_.l2_latency_ms.Add(lat);
  if (res.found) {
    ++metrics_.levels.l2;
  } else {
    ++metrics_.levels.miss;
  }
  metrics_.lookup_messages += msgs;
  metrics_.messages += msgs;
  return res;
}

Status TableMappingCluster::CreateFile(const std::string& path,
                                       FileMetadata metadata, double now_ms) {
  if (OracleHome(path) != kInvalidMds) return Status::AlreadyExists(path);
  const MdsId home = RandomMds();
  if (Status s = node(home).AddLocalFile(path, std::move(metadata)); !s.ok()) {
    return s;
  }
  const Status oracle = OracleInsert(path, home);
  assert(oracle.ok());
  (void)oracle;
  // Table coherence: the new entry is broadcast to all N-1 other copies.
  metrics_.messages += 2 + (alive_.size() - 1);
  metrics_.update_messages += alive_.size() - 1;
  (void)ChargeMutation(home, now_ms);
  return Status::Ok();
}

Status TableMappingCluster::UnlinkFile(const std::string& path,
                                       double now_ms) {
  const MdsId home = OracleHome(path);
  if (home == kInvalidMds) return Status::NotFound(path);
  if (Status s = node(home).RemoveLocalFile(path); !s.ok()) return s;
  const Status oracle = OracleErase(path);
  assert(oracle.ok());
  (void)oracle;
  metrics_.messages += 2 + (alive_.size() - 1);
  metrics_.update_messages += alive_.size() - 1;
  (void)ChargeMutation(home, now_ms);
  return Status::Ok();
}

Result<std::uint64_t> TableMappingCluster::RenamePrefix(
    const std::string& old_prefix, const std::string& new_prefix,
    double now_ms, ReconfigReport* report) {
  // Homes don't change (placement is table-driven, not name-driven), but
  // every renamed entry must be broadcast to all table copies.
  auto renamed = RenameKeysKeepingHomes(old_prefix, new_prefix, now_ms,
                                        [](MdsId, double) {});
  if (renamed.ok()) {
    const std::uint64_t broadcast = *renamed * (alive_.size() - 1);
    metrics_.messages += broadcast;
    metrics_.update_messages += broadcast;
    if (report != nullptr) report->messages += broadcast;
  }
  return renamed;
}

Result<MdsId> TableMappingCluster::AddMds(ReconfigReport* report) {
  const MdsId nid = NewNode();
  // The newcomer bootstraps by downloading one full table copy; count one
  // bulk message per existing entry to expose the O(n) transfer.
  if (report != nullptr) report->messages += 1 + oracle_.size();
  metrics_.reconfig_messages += 1 + oracle_.size();
  metrics_.messages += 1 + oracle_.size();
  return nid;
}

Status TableMappingCluster::RemoveMds(MdsId id, ReconfigReport* report) {
  if (!IsAlive(id)) return Status::NotFound("no such MDS");
  if (alive_.size() == 1) {
    return Status::InvalidArgument("cannot remove the last MDS");
  }
  ReconfigReport local;
  ReconfigReport& rep = report != nullptr ? *report : local;

  auto files = node(id).store().ExtractAll();
  std::vector<MdsId> targets;
  for (const MdsId a : alive_) {
    if (a != id) targets.push_back(a);
  }
  std::size_t rr = 0;
  for (auto& [path, md] : files) {
    const MdsId tgt = targets[rr++ % targets.size()];
    const Status s = node(tgt).AddLocalFile(path, std::move(md));
    assert(s.ok());
    (void)s;
    oracle_[path] = tgt;
  }
  rep.files_migrated += files.size();
  // Each re-homed entry is broadcast to keep the table copies coherent.
  rep.messages += files.size() * targets.size();
  RetireNode(id);
  metrics_.reconfig_messages += rep.messages;
  metrics_.messages += rep.messages;
  return Status::Ok();
}

std::uint64_t TableMappingCluster::LookupStateBytes(MdsId id) const {
  (void)id;
  return TableBytes();
}

Status TableMappingCluster::CheckInvariants() const {
  for (const auto& [path, home] : oracle_) {
    if (!IsAlive(home)) return Status::Internal("table points at dead MDS");
    if (!node(home).store().Contains(path)) {
      return Status::Internal("table out of sync with store: " + path);
    }
  }
  return Status::Ok();
}

}  // namespace ghba
