#include "core/simulator.hpp"

namespace ghba {

void ReplaySimulator::Populate(IntensifiedTrace& trace) {
  trace.ForEachInitialFile([&](const std::string& path) {
    FileMetadata md;
    md.inode = inode_seq_++;
    const Status s = cluster_.CreateFile(path, std::move(md), /*now_ms=*/0);
    (void)s;  // duplicates impossible by construction
  });
  cluster_.FlushReplicas(0);
  cluster_.metrics().Reset();  // population traffic is setup, not workload
}

void ReplaySimulator::Apply(const TraceRecord& rec, ReplayResult& result) {
  const double now_ms = rec.timestamp * 1000.0;
  switch (rec.op) {
    case OpType::kClose: {
      // close() writes attributes at the home after the same routing walk.
      const auto r = cluster_.CloseFile(rec.path, now_ms, /*size=*/4096);
      ++result.lookups;
      if (!r.found) ++result.not_found;
      window_latency_sum_ += r.latency_ms;
      ++window_lookups_;
      break;
    }
    case OpType::kOpen:
    case OpType::kStat: {
      const auto r = cluster_.Lookup(rec.path, now_ms);
      ++result.lookups;
      if (!r.found) ++result.not_found;
      window_latency_sum_ += r.latency_ms;
      ++window_lookups_;
      break;
    }
    case OpType::kCreate: {
      FileMetadata md;
      md.inode = inode_seq_++;
      md.uid = rec.user;
      md.ctime = md.mtime = md.atime = rec.timestamp;
      const Status s = cluster_.CreateFile(rec.path, std::move(md), now_ms);
      (void)s;
      ++result.creates;
      break;
    }
    case OpType::kUnlink: {
      const Status s = cluster_.UnlinkFile(rec.path, now_ms);
      (void)s;  // racing unlinks of never-created files are fine
      ++result.unlinks;
      break;
    }
  }
}

ReplayCheckpoint ReplaySimulator::Snapshot(std::uint64_t ops) const {
  const ClusterMetrics& m = cluster_.metrics();
  ReplayCheckpoint cp;
  cp.ops = ops;
  cp.avg_latency_ms = m.lookup_latency_ms.mean();
  cp.p99_latency_ms = m.lookup_latency_ms.Quantile(0.99);
  cp.window_latency_ms =
      window_lookups_ ? window_latency_sum_ / static_cast<double>(window_lookups_)
                      : 0.0;
  cp.levels = m.levels.Values();
  cp.messages = m.messages;
  cp.disk_probes = m.disk_probes;
  return cp;
}

ReplayResult ReplaySimulator::Replay(TraceStream& trace, std::uint64_t max_ops,
                                     std::uint64_t checkpoint_every) {
  ReplayResult result;
  while (max_ops == 0 || result.ops_replayed < max_ops) {
    auto rec = trace.Next();
    if (!rec) break;
    Apply(*rec, result);
    ++result.ops_replayed;
    if (checkpoint_every != 0 && result.ops_replayed % checkpoint_every == 0) {
      result.checkpoints.push_back(Snapshot(result.ops_replayed));
      window_latency_sum_ = 0;
      window_lookups_ = 0;
    }
  }
  // Final snapshot, unless the cadence just produced an identical one.
  if (result.checkpoints.empty() ||
      result.checkpoints.back().ops != result.ops_replayed) {
    result.checkpoints.push_back(Snapshot(result.ops_replayed));
  }
  return result;
}

}  // namespace ghba
