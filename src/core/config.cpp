#include "core/config.hpp"

#include "bloom/bloom_math.hpp"
#include "hash/hash_family.hpp"

namespace ghba {

Status ValidateClusterConfig(const ClusterConfig& config) {
  if (config.num_mds == 0) {
    return Status::InvalidArgument("num_mds must be >= 1");
  }
  if (config.max_group_size == 0) {
    return Status::InvalidArgument("max_group_size must be >= 1");
  }
  if (config.initial_group_size > config.max_group_size) {
    return Status::InvalidArgument(
        "initial_group_size cannot exceed max_group_size");
  }
  if (config.bits_per_file <= 0) {
    return Status::InvalidArgument("bits_per_file must be positive");
  }
  // The probe generator caps k; an extreme bit ratio would silently lose
  // accuracy, so reject it loudly instead.
  if (OptimalK(config.bits_per_file, 1.0) >= ProbeSet::kMaxK) {
    return Status::InvalidArgument(
        "bits_per_file too large: optimal k exceeds the probe cap");
  }
  if (config.expected_files_per_mds == 0) {
    return Status::InvalidArgument("expected_files_per_mds must be >= 1");
  }
  if (config.lru_capacity == 0) {
    return Status::InvalidArgument("lru_capacity must be >= 1");
  }
  if (config.publish_after_mutations == 0) {
    return Status::InvalidArgument(
        "publish_after_mutations must be >= 1 (1 = publish on every "
        "mutation)");
  }
  const LatencyModel& lat = config.latency;
  if (lat.bf_probe_ms < 0 || lat.lan_rtt_ms < 0 || lat.disk_access_ms < 0 ||
      lat.spilled_probe_ms < 0 || lat.local_proc_ms < 0 ||
      lat.mem_metadata_ms < 0 || lat.multicast_extra_hop_ms < 0) {
    return Status::InvalidArgument("latency constants must be non-negative");
  }
  if (lat.metadata_cache_hit < 0 || lat.metadata_cache_hit > 1) {
    return Status::InvalidArgument("metadata_cache_hit must be in [0, 1]");
  }
  const RpcOptions& rpc = config.rpc;
  if (rpc.connect_timeout_ms == 0 || rpc.attempt_timeout_ms == 0 ||
      rpc.ping_timeout_ms == 0 || rpc.server_io_timeout_ms == 0) {
    return Status::InvalidArgument("rpc timeouts must be >= 1 ms");
  }
  if (rpc.call_budget_ms < rpc.attempt_timeout_ms) {
    return Status::InvalidArgument(
        "rpc.call_budget_ms must cover at least one attempt");
  }
  if (rpc.max_attempts == 0 || rpc.ping_attempts == 0 ||
      rpc.suspect_after == 0) {
    return Status::InvalidArgument(
        "rpc attempt/ping/suspect counts must be >= 1");
  }
  // Each shard is a worker thread owning a state slice; beyond a small
  // multiple of the core count extra shards only cost memory and context
  // switches, so an absurd value is a misconfiguration, not ambition.
  if (rpc.server_shards == 0 || rpc.server_shards > 64) {
    return Status::InvalidArgument("rpc.server_shards must be in [1, 64]");
  }
  if (lat.wal_fsync_ms < 0) {
    return Status::InvalidArgument("wal_fsync_ms must be non-negative");
  }
  const StorageOptions& storage = config.storage;
  if (storage.fsync == FsyncPolicy::kInterval &&
      storage.fsync_interval_appends == 0) {
    return Status::InvalidArgument(
        "storage.fsync_interval_appends must be >= 1");
  }
  // A checkpoint threshold below one WAL frame would checkpoint after
  // every mutation; treat it as a misconfiguration.
  if (!storage.data_dir.empty() && storage.checkpoint_wal_bytes < 4096) {
    return Status::InvalidArgument(
        "storage.checkpoint_wal_bytes must be >= 4096");
  }
  if (storage.keep_checkpoints == 0) {
    return Status::InvalidArgument("storage.keep_checkpoints must be >= 1");
  }
  const HotSpotOptions& hot = config.hotspot;
  if (hot.sketch_width == 0 || hot.sketch_depth == 0) {
    return Status::InvalidArgument(
        "hotspot sketch geometry must be >= 1 in both dimensions");
  }
  if (hot.hot_threshold == 0) {
    return Status::InvalidArgument("hotspot.hot_threshold must be >= 1");
  }
  if (hot.shed_enabled && hot.shed_queue_depth == 0) {
    return Status::InvalidArgument(
        "hotspot.shed_queue_depth must be >= 1 when shedding is enabled");
  }
  return Status::Ok();
}

}  // namespace ghba
