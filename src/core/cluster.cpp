#include "core/cluster.hpp"

#include <algorithm>
#include <cassert>

namespace ghba {

ClusterBase::ClusterBase(ClusterConfig config)
    : config_(config), rng_(config.seed) {}

std::uint64_t ClusterBase::TotalFiles() const {
  std::uint64_t total = 0;
  for (const MdsId id : alive_) total += nodes_[id]->file_count();
  return total;
}

MdsId ClusterBase::OracleHome(const std::string& path) const {
  const auto it = oracle_.find(path);
  return it == oracle_.end() ? kInvalidMds : it->second;
}

bool ClusterBase::IsAlive(MdsId id) const {
  return std::binary_search(alive_.begin(), alive_.end(), id);
}

MdsId ClusterBase::RandomMds() {
  assert(!alive_.empty());
  return alive_[rng_.NextBounded(alive_.size())];
}

MdsId ClusterBase::NewNode() {
  const auto id = static_cast<MdsId>(nodes_.size());
  nodes_.push_back(std::make_unique<MdsNode>(id, config_));
  published_files_.push_back(0);
  alive_.push_back(id);  // ids are monotonically increasing: stays sorted
  return id;
}

void ClusterBase::RetireNode(MdsId id) {
  const auto it = std::find(alive_.begin(), alive_.end(), id);
  assert(it != alive_.end());
  alive_.erase(it);
  nodes_[id].reset();  // free its memory; slot stays to keep ids stable
}

Status ClusterBase::OracleInsert(const std::string& path, MdsId home) {
  const auto [it, inserted] = oracle_.emplace(path, home);
  if (!inserted) return Status::AlreadyExists(path);
  return Status::Ok();
}

Status ClusterBase::OracleErase(const std::string& path) {
  if (oracle_.erase(path) == 0) return Status::NotFound(path);
  return Status::Ok();
}

std::vector<std::string> ClusterBase::OraclePathsWithPrefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, home] : oracle_) {
    if (path.size() >= prefix.size() &&
        path.compare(0, prefix.size(), prefix) == 0) {
      out.push_back(path);
    }
  }
  return out;
}

LookupOutcome ClusterBase::CloseFile(const std::string& path, double now_ms,
                                    std::uint64_t new_size_bytes) {
  LookupOutcome res = Lookup(path, now_ms);
  if (!res.found) return res;
  MdsNode& home = *nodes_[res.home];
  const Status s = home.store().Update(path, [&](FileMetadata& md) {
    md.size_bytes = new_size_bytes;
    md.mtime = now_ms / 1000.0;
    md.atime = md.mtime;
  });
  assert(s.ok());
  (void)s;
  // The attribute write costs a store mutation at the home (plus its WAL
  // fsync share when durability is modeled); filters are untouched (same
  // path set), so no publish pressure.
  res.latency_ms +=
      ServeAt(res.home, now_ms + res.latency_ms,
              config_.latency.mem_metadata_ms + DurabilityCost());
  return res;
}

double ClusterBase::DurabilityCost() const {
  if (!config_.model_durability) return 0.0;
  switch (config_.storage.fsync) {
    case FsyncPolicy::kAlways:
      return config_.latency.wal_fsync_ms;
    case FsyncPolicy::kInterval:
      return config_.latency.wal_fsync_ms /
             static_cast<double>(
                 std::max<std::uint32_t>(config_.storage.fsync_interval_appends, 1));
    case FsyncPolicy::kNever:
      return 0.0;
  }
  return 0.0;
}

double ClusterBase::ChargeMutation(MdsId home, double now_ms) {
  return ServeAt(home, now_ms, config_.latency.mem_metadata_ms +
                                   DurabilityCost());
}

Result<std::uint64_t> ClusterBase::RenameKeysKeepingHomes(
    const std::string& old_prefix, const std::string& new_prefix,
    double now_ms,
    const std::function<void(MdsId, double)>& maybe_publish) {
  if (old_prefix.empty() || new_prefix.empty()) {
    return Status::InvalidArgument("empty rename prefix");
  }
  const auto paths = OraclePathsWithPrefix(old_prefix);
  // Validate first: none of the destination names may exist.
  for (const auto& path : paths) {
    const std::string renamed = new_prefix + path.substr(old_prefix.size());
    if (oracle_.contains(renamed)) {
      return Status::AlreadyExists(renamed);
    }
  }
  std::vector<MdsId> touched;
  for (const auto& path : paths) {
    const std::string renamed = new_prefix + path.substr(old_prefix.size());
    const MdsId home = oracle_.at(path);
    MdsNode& n = *nodes_[home];
    auto md = n.store().Lookup(path);
    assert(md.ok());
    const Status removed = n.RemoveLocalFile(path);
    assert(removed.ok());
    (void)removed;
    const Status added = n.AddLocalFile(renamed, std::move(*md));
    assert(added.ok());
    (void)added;
    oracle_.erase(path);
    oracle_.emplace(renamed, home);
    // The old name must stop resolving through L1 caches eventually; the
    // entry MDSes invalidate lazily on their next failed verify.
    touched.push_back(home);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const MdsId home : touched) maybe_publish(home, now_ms);
  return static_cast<std::uint64_t>(paths.size());
}

std::uint64_t ClusterBase::PublishedReplicaBytes(MdsId owner) const {
  // Analytic replica size: the paper reasons in bits-per-file (m/n), so a
  // replica of an MDS homing F files costs F * (m/n) / 8 bytes.
  return static_cast<std::uint64_t>(
      static_cast<double>(published_files_[owner]) * config_.bits_per_file /
      8.0);
}

void ClusterBase::SetPublishedFileCount(MdsId owner, std::uint64_t files) {
  published_files_[owner] = files;
}

double ClusterBase::ReplicaOverflowFraction(MdsId holder) const {
  return nodes_[holder]->memory().OverflowFraction("replicas");
}

void ClusterBase::ChargeMemory(MdsId holder, std::uint64_t replica_bytes) {
  // The budget governs the *replica* working set: that is the quantity the
  // schemes differ on and the quantity the paper's memory sweeps vary. The
  // LRU array and the local filter are "hot data ... small in size"
  // (Sec. 2.1) at production scale and are accounted separately in
  // LookupStateBytes (Table 5); charging their absolute bytes here would
  // distort the scaled-down benchmarks where they rival the whole budget.
  MdsNode& n = *nodes_[holder];
  n.memory().SetUsage("replicas", replica_bytes);
}

double ClusterBase::MetadataCacheHitProb(MdsId id) const {
  // The authoritative metadata working set is disk-backed with a page
  // cache; its hit rate is a workload property, not a function of the
  // replica budget (the experiments vary the latter). A fixed probability
  // keeps the verify cost identical across schemes so the figures isolate
  // the replica-placement effect, exactly as the paper's setup does.
  (void)id;
  return config_.latency.metadata_cache_hit;
}

double ClusterBase::ServeAt(MdsId id, double arrival_ms, double service_ms) {
  if (!config_.model_queueing) return service_ms;
  const auto completion = nodes_[id]->queue().Serve(arrival_ms, service_ms);
  return completion.finish - arrival_ms;
}

double ClusterBase::ProbeCost(MdsId holder, std::uint64_t filters) {
  if (filters == 0) return 0.0;
  const double overflow = ReplicaOverflowFraction(holder);
  const double disk_filters = static_cast<double>(filters) * overflow;
  metrics_.disk_probes += static_cast<std::uint64_t>(disk_filters);
  return config_.latency.ArrayProbe(filters) +
         disk_filters * config_.latency.spilled_probe_ms;
}

}  // namespace ghba
