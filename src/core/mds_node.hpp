// One metadata server (MDS) as modeled by the simulator.
//
// An MdsNode owns:
//   * the authoritative MetadataStore for files homed here,
//   * a counting local filter over those files (counting so unlink works),
//     plus the last *published* snapshot of it — the XOR distance between
//     the two is the staleness that triggers replica updates (Sec. 3.4),
//   * the L1 LRU Bloom-filter array,
//   * the L2 segment array of replicas from other MDSs (G-HBA: theta of
//     them; HBA/BFA: all N-1),
//   * a FIFO service queue and memory accounting for the latency model.
// The IDBFA replica directory is group-level state and lives in core/group
// (conceptually replicated on every member; memory is charged per member).
#pragma once

#include <cstdint>
#include <string>

#include "bloom/bloom_filter_array.hpp"
#include "bloom/counting_bloom_filter.hpp"
#include "bloom/lru_bloom_array.hpp"
#include "core/config.hpp"
#include "hash/query_digest.hpp"
#include "mds/memory_budget.hpp"
#include "mds/store.hpp"
#include "sim/fifo_server.hpp"

namespace ghba {

class MdsNode {
 public:
  MdsNode(MdsId id, const ClusterConfig& config);

  MdsId id() const { return id_; }

  // --- authoritative local state ---
  MetadataStore& store() { return store_; }
  const MetadataStore& store() const { return store_; }

  /// Insert a file homed here: updates the store and the local filter.
  Status AddLocalFile(const std::string& path, FileMetadata metadata);

  /// Remove a locally-homed file from store and filter.
  Status RemoveLocalFile(const std::string& path);

  /// Membership in the authoritative local filter (no false negatives).
  bool LocalFilterContains(const std::string& path) const;
  /// Digest-once form: all local filters share one seed, so an L4 sweep
  /// over N nodes costs one digest total, not one per node.
  bool LocalFilterContains(QueryDigest& digest) const;

  /// Snapshot of the local filter as shipped to replica holders.
  BloomFilter SnapshotLocalFilter() const;

  /// Number of local mutations since the last publish.
  std::uint32_t mutations_since_publish() const {
    return mutations_since_publish_;
  }
  void MarkPublished() { mutations_since_publish_ = 0; }

  /// XOR (Hamming) distance between the current local filter and the last
  /// published snapshot — the staleness metric of Section 3.4.
  std::uint64_t StalenessBits() const;

  /// Record the bits that were just published (for staleness tracking).
  void SetPublishedSnapshot(BloomFilter snapshot);
  const BloomFilter* published_snapshot() const {
    return has_published_ ? &published_ : nullptr;
  }

  // --- query structures ---
  LruBloomArray& lru() { return lru_; }
  const LruBloomArray& lru() const { return lru_; }
  BloomFilterArray& segment() { return segment_; }
  const BloomFilterArray& segment() const { return segment_; }

  // --- simulation accounting ---
  FifoServer& queue() { return queue_; }
  MemoryBudget& memory() { return memory_; }
  const MemoryBudget& memory() const { return memory_; }

  /// Files homed on this MDS.
  std::uint64_t file_count() const { return store_.size(); }

 private:
  MdsId id_;
  MetadataStore store_;
  CountingBloomFilter local_filter_;
  BloomFilter published_;
  bool has_published_ = false;
  std::uint32_t mutations_since_publish_ = 0;

  LruBloomArray lru_;
  BloomFilterArray segment_;

  FifoServer queue_;
  MemoryBudget memory_;
};

}  // namespace ghba
