// G-HBA: Group-based Hierarchical Bloom filter Array cluster.
//
// The paper's primary contribution. MDSs are partitioned into groups of at
// most M members. Lookups walk the four-level hierarchy (L1 local LRU array,
// L2 local segment array, L3 group multicast, L4 global multicast). Replica
// placement inside a group goes through the IDBFA; reconfiguration uses the
// light-weight migration of Section 3.1 with group split/merge (Section
// 3.2). Replica updates are staleness-bounded (Section 3.4's XOR criterion,
// operationalized as a mutation budget) and touch only one MDS per group.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/cluster.hpp"
#include "core/group.hpp"
#include "hash/query_digest.hpp"

namespace ghba {

/// How replicas are assigned to members inside a group. kLeastLoaded is
/// G-HBA's IDBFA-backed policy; kModularHash reproduces the "hash-based
/// placement" strawman of Section 2.4 (Fig. 11's comparison), which must
/// re-place replicas whenever the member count changes.
enum class ReplicaPlacement { kLeastLoaded, kModularHash };

class GhbaCluster final : public ClusterBase {
 public:
  explicit GhbaCluster(ClusterConfig config,
                       ReplicaPlacement placement = ReplicaPlacement::kLeastLoaded);

  std::string SchemeName() const override;

  LookupOutcome Lookup(const std::string& path, double now_ms) override;
  Status CreateFile(const std::string& path, FileMetadata metadata,
                    double now_ms) override;
  Status UnlinkFile(const std::string& path, double now_ms) override;
  Result<std::uint64_t> RenamePrefix(const std::string& old_prefix,
                                     const std::string& new_prefix,
                                     double now_ms,
                                     ReconfigReport* report) override;

  Result<MdsId> AddMds(ReconfigReport* report) override;
  Status RemoveMds(MdsId id, ReconfigReport* report) override;

  /// Abrupt failure (Section 4.5's heart-beat detected crash): unlike a
  /// graceful RemoveMds, the node's metadata is NOT migrated — it becomes
  /// unreachable until re-inserted by higher-level recovery. The fail-over
  /// protocol removes the dead node's filters everywhere (to stop false
  /// positives), migrates the *replicas it held* only if other members can
  /// reconstruct them from the owners, and keeps the service functional
  /// "albeit at a degraded performance and coverage level".
  Status FailMds(MdsId id, ReconfigReport* report);

  /// Files whose metadata was lost to failures (simulation bookkeeping).
  std::uint64_t lost_files() const { return lost_files_; }

  std::uint64_t LookupStateBytes(MdsId id) const override;

  /// Force-publish every MDS's filter to its replica holders (used after
  /// bulk population and by benchmarks that need a clean baseline).
  void FlushReplicas(double now_ms) override;

  /// Publish one MDS's filter now, regardless of the mutation budget.
  void PublishReplica(MdsId owner, double now_ms);

  // --- introspection for tests / benches ---
  std::size_t NumGroups() const { return groups_.size(); }
  GroupId GroupOf(MdsId id) const { return group_of_.at(id); }
  const Group& GetGroup(GroupId g) const { return groups_.at(g); }

  /// Replicas held by `id` (theta in the paper's notation).
  std::size_t ThetaOf(MdsId id) const { return node(id).segment().size(); }

  /// Verify structural invariants (each group mirrors the global system,
  /// IDBFA consistent with holders, segment arrays match bookkeeping).
  /// Returns OK or an Internal status describing the violation.
  Status CheckInvariants() const;

 private:
  // --- lookup helpers ---
  struct VerifyOutcome {
    bool found = false;
    double cost_ms = 0;
  };
  /// Authoritatively check `path` on `candidate` (store lookup with the
  /// cache model). Does not include network cost.
  VerifyOutcome VerifyAt(MdsId candidate, const std::string& path);

  /// Append membership hits on `holder`'s segment array + own filter to
  /// `hits` (not cleared). Digest-once: probes reuse `digest`'s per-seed
  /// cache instead of re-hashing the path per filter.
  void LocalHitsInto(MdsId holder, QueryDigest& digest,
                     std::vector<MdsId>& hits) const;

  /// Scratch buffers reused across Lookup calls so the hot path performs no
  /// transient allocations. Lookup is not re-entrant (single simulation
  /// thread), which makes member-owned scratch safe.
  struct LookupScratch {
    ArrayQueryResult l1;
    std::vector<MdsId> l2_hits;
    std::vector<MdsId> candidates;
    std::vector<MdsId> already_verified;
    std::vector<MdsId> contacted;  ///< distinct peers messaged (trace)
  };

  // --- replica management ---
  void InstallReplica(Group& g, MdsId owner, MdsId holder,
                      std::uint64_t* messages);
  void DropReplica(Group& g, MdsId owner, std::uint64_t* messages);
  void MoveReplicaWithinGroup(Group& g, MdsId owner, MdsId from, MdsId to);
  MdsId PlacementTarget(const Group& g, MdsId owner) const;

  /// Make `g` hold exactly one replica for every alive non-member owner.
  void EnsureGroupCoverage(Group& g, ReconfigReport* report);

  /// Recompute a holder's analytic replica bytes and recharge its memory.
  void RechargeHolder(MdsId holder);

  void MaybePublish(MdsId owner, double now_ms);

  // --- group lifecycle ---
  Group& GroupOfMut(MdsId id) { return groups_.at(group_of_.at(id)); }
  GroupId NewGroup();
  /// Split `g` (which has M members and a pending join) per Section 3.2.
  void SplitGroup(GroupId gid, ReconfigReport* report);
  /// Merge `src` into `dst` when their total size fits M.
  void MergeGroups(GroupId dst, GroupId src, ReconfigReport* report);
  void TryMergeAfterDeparture(GroupId gid, ReconfigReport* report);

  ReplicaPlacement placement_;
  std::map<GroupId, Group> groups_;
  std::unordered_map<MdsId, GroupId> group_of_;
  GroupId next_group_id_ = 0;
  std::uint64_t lost_files_ = 0;
  LookupScratch scratch_;
};

}  // namespace ghba
