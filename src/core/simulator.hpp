// Trace-driven replay simulator.
//
// Wires a TraceStream to a MetadataCluster: populates the initial
// namespace, replays metadata operations, and snapshots metrics at
// checkpoints so benchmarks can plot series over operation count (the
// x-axis of Figs. 8-10 and 14).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/metrics.hpp"
#include "trace/generator.hpp"

namespace ghba {

struct ReplayCheckpoint {
  std::uint64_t ops = 0;              ///< operations replayed so far
  double avg_latency_ms = 0;          ///< cumulative mean lookup latency
  double p99_latency_ms = 0;          ///< cumulative tail latency
  double window_latency_ms = 0;       ///< mean over the last window
  QueryLevelValues levels;            ///< cumulative level counters
  std::uint64_t messages = 0;
  std::uint64_t disk_probes = 0;
};

struct ReplayResult {
  std::vector<ReplayCheckpoint> checkpoints;
  std::uint64_t ops_replayed = 0;
  std::uint64_t lookups = 0;
  std::uint64_t creates = 0;
  std::uint64_t unlinks = 0;
  std::uint64_t not_found = 0;  ///< lookups for files that do not exist
};

class ReplaySimulator {
 public:
  explicit ReplaySimulator(MetadataCluster& cluster) : cluster_(cluster) {}

  /// Create the trace's initial namespace in the cluster, then flush all
  /// replicas so every scheme starts from a consistent global image.
  void Populate(IntensifiedTrace& trace);

  /// Replay up to `max_ops` records (0 = until the stream ends), snapshotting
  /// a checkpoint every `checkpoint_every` ops (0 = only at the end).
  ReplayResult Replay(TraceStream& trace, std::uint64_t max_ops,
                      std::uint64_t checkpoint_every = 0);

 private:
  void Apply(const TraceRecord& rec, ReplayResult& result);
  ReplayCheckpoint Snapshot(std::uint64_t ops) const;

  MetadataCluster& cluster_;
  std::uint64_t inode_seq_ = 1;
  // Rolling window for window_latency_ms.
  double window_latency_sum_ = 0;
  std::uint64_t window_lookups_ = 0;
};

}  // namespace ghba
