#include "core/ghba_cluster.hpp"

#include <algorithm>
#include <cassert>
#include <iterator>

#include "common/logging.hpp"

namespace ghba {

GhbaCluster::GhbaCluster(ClusterConfig config, ReplicaPlacement placement)
    : ClusterBase(config), placement_(placement) {
  for (std::uint32_t i = 0; i < config_.num_mds; ++i) NewNode();

  // Partition into balanced groups of at most `target` members (sizes
  // differ by at most one).
  const std::uint32_t m = std::max<std::uint32_t>(config_.max_group_size, 1);
  const std::uint32_t target =
      config_.initial_group_size == 0
          ? m
          : std::min(config_.initial_group_size, m);
  const std::size_t ngroups = (alive_.size() + target - 1) / target;
  const std::size_t base = alive_.size() / ngroups;
  const std::size_t remainder = alive_.size() % ngroups;
  std::size_t pos = 0;
  for (std::size_t gi = 0; gi < ngroups; ++gi) {
    const std::size_t size = base + (gi < remainder ? 1 : 0);
    const GroupId gid = NewGroup();
    Group& g = groups_.at(gid);
    for (std::size_t i = pos; i < pos + size; ++i) {
      g.members.push_back(alive_[i]);
      g.idbfa.AddMember(alive_[i]);
      group_of_[alive_[i]] = gid;
    }
    pos += size;
  }
  for (auto& [gid, g] : groups_) EnsureGroupCoverage(g, nullptr);
  for (const MdsId id : alive_) RechargeHolder(id);
  metrics_.Reset();  // construction traffic is not part of any experiment
}

std::string GhbaCluster::SchemeName() const {
  return placement_ == ReplicaPlacement::kLeastLoaded ? "G-HBA"
                                                      : "G-HBA/hash-placement";
}

GroupId GhbaCluster::NewGroup() {
  const GroupId gid = next_group_id_++;
  Group g;
  g.id = gid;
  groups_.emplace(gid, std::move(g));
  return gid;
}

// ---------------------------------------------------------------------------
// Replica management
// ---------------------------------------------------------------------------

MdsId GhbaCluster::PlacementTarget(const Group& g, MdsId owner) const {
  assert(!g.members.empty());
  if (placement_ == ReplicaPlacement::kModularHash) {
    // Section 2.4's strawman: holder index = owner mod M'. Deterministic in
    // the member count, hence the re-placement storm when M' changes.
    return g.members[owner % g.members.size()];
  }
  return g.LightestMember();
}

void GhbaCluster::InstallReplica(Group& g, MdsId owner, MdsId holder,
                                 std::uint64_t* messages) {
  assert(!g.replica_holder.contains(owner));
  const MdsNode& owner_node = node(owner);
  const BloomFilter* published = owner_node.published_snapshot();
  BloomFilter snapshot =
      published != nullptr ? *published : owner_node.SnapshotLocalFilter();
  const Status s = node(holder).segment().AddEntry(owner, std::move(snapshot));
  assert(s.ok());
  (void)s;
  g.replica_holder[owner] = holder;
  g.idbfa.AddMember(holder);  // idempotent
  const Status id_status = g.idbfa.AddReplica(holder, owner);
  assert(id_status.ok());
  (void)id_status;
  if (messages != nullptr) *messages += 1;  // replica shipped to holder
  RechargeHolder(holder);
}

void GhbaCluster::DropReplica(Group& g, MdsId owner, std::uint64_t* messages) {
  const auto it = g.replica_holder.find(owner);
  assert(it != g.replica_holder.end());
  const MdsId holder = it->second;
  auto removed = node(holder).segment().RemoveEntry(owner);
  assert(removed.ok());
  (void)removed;
  const Status id_status = g.idbfa.RemoveReplica(holder, owner);
  assert(id_status.ok());
  (void)id_status;
  g.replica_holder.erase(it);
  if (messages != nullptr) *messages += 1;  // delete notification
  RechargeHolder(holder);
}

void GhbaCluster::MoveReplicaWithinGroup(Group& g, MdsId owner, MdsId from,
                                         MdsId to) {
  assert(g.replica_holder.at(owner) == from);
  auto filter = node(from).segment().RemoveEntry(owner);
  assert(filter.ok());
  const Status s = node(to).segment().AddEntry(owner, std::move(*filter));
  assert(s.ok());
  (void)s;
  const Status id_status = g.idbfa.MoveReplica(from, to, owner);
  assert(id_status.ok());
  (void)id_status;
  g.replica_holder[owner] = to;
  RechargeHolder(from);
  RechargeHolder(to);
}

void GhbaCluster::EnsureGroupCoverage(Group& g, ReconfigReport* report) {
  std::uint64_t messages = 0;
  std::uint64_t migrated = 0;

  // Drop replicas that should no longer be in this group: owners that became
  // members (their own local filter covers them) or died.
  std::vector<MdsId> to_drop;
  for (const auto& [owner, holder] : g.replica_holder) {
    if (g.HasMember(owner) || !IsAlive(owner)) to_drop.push_back(owner);
  }
  for (const MdsId owner : to_drop) DropReplica(g, owner, &messages);

  // Install missing replicas for every alive outsider.
  for (const MdsId owner : alive_) {
    if (g.HasMember(owner) || g.replica_holder.contains(owner)) continue;
    InstallReplica(g, owner, PlacementTarget(g, owner), &messages);
    ++migrated;  // a copy crossed the network into this group
  }

  // Modular-hash placement re-pins every replica to its computed member.
  if (placement_ == ReplicaPlacement::kModularHash) {
    std::vector<std::pair<MdsId, MdsId>> moves;  // owner, current holder
    for (const auto& [owner, holder] : g.replica_holder) {
      const MdsId want = PlacementTarget(g, owner);
      if (want != holder) moves.emplace_back(owner, holder);
    }
    for (const auto& [owner, holder] : moves) {
      MoveReplicaWithinGroup(g, owner, holder, PlacementTarget(g, owner));
      ++migrated;
      ++messages;
    }
  }

  if (report != nullptr) {
    report->messages += messages;
    report->replicas_migrated += migrated;
  }
  metrics_.messages += messages;
  metrics_.reconfig_messages += messages;
  metrics_.replicas_migrated += migrated;
}

void GhbaCluster::RechargeHolder(MdsId holder) {
  if (!IsAlive(holder)) return;
  MdsNode& n = node(holder);
  std::uint64_t replica_bytes = 0;
  for (const auto& entry : n.segment().entries()) {
    replica_bytes += PublishedReplicaBytes(entry.owner);
  }
  ChargeMemory(holder, replica_bytes);
}

// ---------------------------------------------------------------------------
// Publish (replica update) path
// ---------------------------------------------------------------------------

void GhbaCluster::MaybePublish(MdsId owner, double now_ms) {
  if (node(owner).mutations_since_publish() >= config_.publish_after_mutations) {
    PublishReplica(owner, now_ms);
  }
}

void GhbaCluster::PublishReplica(MdsId owner, double now_ms) {
  (void)now_ms;
  MdsNode& n = node(owner);
  BloomFilter snapshot = n.SnapshotLocalFilter();
  n.SetPublishedSnapshot(snapshot);
  n.MarkPublished();
  SetPublishedFileCount(owner, n.file_count());

  std::uint64_t messages = 0;
  std::uint64_t targets = 0;
  double apply_cost = 0;
  const GroupId own_group = group_of_.at(owner);

  for (auto& [gid, g] : groups_) {
    if (gid == own_group) continue;
    const auto it = g.replica_holder.find(owner);
    if (it == g.replica_holder.end()) continue;  // group has no coverage yet
    const MdsId holder = it->second;

    // Protocol fidelity: the updater locates the holder through the group's
    // IDBFA. A multi-hit sends the update to every candidate; wrong ones
    // simply drop it (Section 2.4), costing one wasted message each.
    const auto loc = g.idbfa.Locate(owner);
    if (loc.kind == ArrayQueryResult::Kind::kMultiHit) {
      messages += loc.all_hits.size() - 1;
    }

    const Status s = node(holder).segment().RefreshEntry(owner, snapshot);
    assert(s.ok());
    (void)s;
    messages += 2;  // update + ack
    ++targets;
    // Applying the update to a disk-resident replica costs a page write.
    apply_cost = std::max(apply_cost, ReplicaOverflowFraction(holder) *
                                          config_.latency.spilled_probe_ms);
    RechargeHolder(holder);
  }
  RechargeHolder(owner);  // own published size may have changed

  metrics_.update_latency_ms.Add(config_.latency.Multicast(targets) +
                                 apply_cost);
  metrics_.update_messages += messages;
  metrics_.messages += messages;
  ++metrics_.publishes;
}

void GhbaCluster::FlushReplicas(double now_ms) {
  for (const MdsId id : alive_) PublishReplica(id, now_ms);
}

// ---------------------------------------------------------------------------
// Lookup: the four-level critical path (Section 2.3)
// ---------------------------------------------------------------------------

GhbaCluster::VerifyOutcome GhbaCluster::VerifyAt(MdsId candidate,
                                                 const std::string& path) {
  VerifyOutcome out;
  out.found = node(candidate).store().Contains(path);
  out.cost_ms = config_.latency.MetadataRead(MetadataCacheHitProb(candidate));
  return out;
}

void GhbaCluster::LocalHitsInto(MdsId holder, QueryDigest& digest,
                                std::vector<MdsId>& hits) const {
  const MdsNode& n = node(holder);
  // All replicas share one geometry/seed: one digest serves every probe.
  n.segment().QuerySharedInto(digest, hits);
  if (n.LocalFilterContains(digest)) hits.push_back(holder);
}

LookupOutcome GhbaCluster::Lookup(const std::string& path, double now_ms) {
  LookupOutcome res;
  const MdsId entry = RandomMds();
  MdsNode& e = node(entry);
  double lat = 0;
  std::uint64_t msgs = 0;
  // Digest-once: one QueryDigest per operation serves every filter probe in
  // the four-level walk (and the Touch/Invalidate maintenance afterwards).
  QueryDigest digest(path);
  std::vector<MdsId>& already_verified = scratch_.already_verified;
  already_verified.clear();
  std::vector<MdsId>& contacted = scratch_.contacted;
  contacted.clear();

  // Trace bookkeeping: simulated time is attributed to the level that was
  // active when it accrued; `level_mark` is the latency already attributed.
  double level_mark = 0;
  std::array<double, 4> level_ms{};
  const auto close_level = [&](int level) {
    level_ms[static_cast<std::size_t>(level - 1)] += lat - level_mark;
    level_mark = lat;
  };
  const auto contact = [&](MdsId peer) {
    if (peer == entry) return;
    if (std::find(contacted.begin(), contacted.end(), peer) ==
        contacted.end()) {
      contacted.push_back(peer);
    }
  };

  const auto finish = [&](int level, bool found, MdsId home) {
    // Cooperative caching: an expensive (L3/L4) discovery is worth sharing
    // with the group so peers resolve the file at L1 next time.
    if (found && level >= 3 && config_.cooperative_lru) {
      const Group& g = groups_.at(group_of_.at(entry));
      for (const MdsId m : g.members) {
        if (m == entry) continue;
        node(m).lru().Touch(digest, home);
        ++msgs;  // one-way hint
        contact(m);
      }
    }
    close_level(level);
    res.trace.level = static_cast<std::uint8_t>(level);
    for (std::size_t i = 0; i < level_ms.size(); ++i) {
      res.trace.level_elapsed_ns[i] =
          static_cast<std::uint64_t>(level_ms[i] * 1e6);
    }
    res.trace.peers_contacted = static_cast<std::uint32_t>(contacted.size());
    res.found = found;
    res.home = home;
    res.latency_ms = lat;
    res.served_level = level;
    res.messages = msgs;
    metrics_.lookup_latency_ms.Add(lat);
    metrics_.lookup_messages += msgs;
    metrics_.messages += msgs;
    switch (level) {
      case 1:
        ++metrics_.levels.l1;
        metrics_.l1_latency_ms.Add(lat);
        break;
      case 2:
        ++metrics_.levels.l2;
        metrics_.l2_latency_ms.Add(lat);
        break;
      case 3:
        ++metrics_.levels.l3;
        metrics_.group_latency_ms.Add(lat);
        break;
      default:
        if (found) {
          ++metrics_.levels.l4;
        } else {
          ++metrics_.levels.miss;
        }
        metrics_.global_latency_ms.Add(lat);
        break;
    }
    return res;
  };

  const auto verify_candidate = [&](MdsId candidate) {
    if (candidate != entry) {
      lat += config_.latency.Unicast();
      msgs += 2;
      contact(candidate);
    }
    const auto v = VerifyAt(candidate, path);
    lat += ServeAt(candidate, now_ms + lat, v.cost_ms);
    already_verified.push_back(candidate);
    if (!v.found) {
      ++metrics_.false_routes;
      res.trace.false_route = true;
    }
    return v.found;
  };

  // --- L1: local LRU Bloom-filter array ---
  lat += ServeAt(entry, now_ms,
                 config_.latency.local_proc_ms +
                     config_.latency.ArrayProbe(
                         std::max<std::uint64_t>(e.lru().home_count(), 1)));
  ArrayQueryResult& l1 = scratch_.l1;
  e.lru().Query(digest, l1);
  if (l1.unique() && IsAlive(l1.owner)) {
    if (verify_candidate(l1.owner)) {
      e.lru().Touch(digest, l1.owner);
      return finish(1, true, l1.owner);
    }
    e.lru().Invalidate(digest);  // stale cache entry
  }
  close_level(1);

  // --- L2: local segment array (theta replicas + own filter) ---
  lat += ServeAt(entry, now_ms + lat, ProbeCost(entry, e.segment().size() + 1));
  std::vector<MdsId>& l2_hits = scratch_.l2_hits;
  l2_hits.clear();
  LocalHitsInto(entry, digest, l2_hits);
  if (l2_hits.size() == 1) {
    const MdsId candidate = l2_hits.front();
    const bool fresh = std::find(already_verified.begin(),
                                 already_verified.end(),
                                 candidate) == already_verified.end();
    if (fresh && verify_candidate(candidate)) {
      e.lru().Touch(digest, candidate);
      return finish(2, true, candidate);
    }
  }
  close_level(2);

  // --- L3: multicast within the group ---
  Group& g = GroupOfMut(entry);
  if (g.size() > 1) {
    const std::uint64_t peers = g.size() - 1;
    msgs += 2 * peers;
    for (const MdsId m : g.members) contact(m);
    const double mcast = config_.latency.Multicast(peers);

    double slowest_peer = 0;
    std::vector<MdsId>& candidates = scratch_.candidates;
    candidates.assign(l2_hits.begin(), l2_hits.end());  // entry's own hits
    for (const MdsId m : g.members) {
      if (m == entry) continue;
      const double work =
          config_.latency.local_proc_ms +
          ProbeCost(m, node(m).segment().size() + 1);
      slowest_peer =
          std::max(slowest_peer, ServeAt(m, now_ms + lat + mcast, work));
      LocalHitsInto(m, digest, candidates);
    }
    lat += mcast + slowest_peer;

    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (const MdsId c : candidates) {
      if (std::find(already_verified.begin(), already_verified.end(), c) !=
          already_verified.end()) {
        continue;
      }
      if (verify_candidate(c)) {
        e.lru().Touch(digest, c);
        return finish(3, true, c);
      }
    }
  }
  close_level(3);

  // --- L4: global multicast; exact (local filters have no false negatives,
  // positives are verified against the on-disk store) ---
  const std::uint64_t others = NumMds() - 1;
  msgs += 2 * others;
  for (const MdsId m : alive_) contact(m);
  const double gcast = config_.latency.Multicast(others);
  double slowest_verify = 0;
  MdsId found_home = kInvalidMds;
  for (const MdsId m : alive_) {
    double work = config_.latency.local_proc_ms + config_.latency.ArrayProbe(1);
    bool positive = node(m).LocalFilterContains(digest);
    bool found_here = false;
    if (positive) {
      const auto v = VerifyAt(m, path);
      work += v.cost_ms;
      found_here = v.found;
    }
    slowest_verify =
        std::max(slowest_verify, ServeAt(m, now_ms + lat + gcast, work));
    if (found_here) found_home = m;
  }
  lat += gcast + slowest_verify;
  if (found_home != kInvalidMds) {
    e.lru().Touch(digest, found_home);
    return finish(4, true, found_home);
  }
  return finish(4, false, kInvalidMds);
}

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

Status GhbaCluster::CreateFile(const std::string& path, FileMetadata metadata,
                               double now_ms) {
  if (OracleHome(path) != kInvalidMds) return Status::AlreadyExists(path);
  const MdsId home = RandomMds();
  if (Status s = node(home).AddLocalFile(path, std::move(metadata)); !s.ok()) {
    return s;
  }
  const Status oracle = OracleInsert(path, home);
  assert(oracle.ok());
  (void)oracle;
  metrics_.messages += 2;  // client -> home request + ack
  // Occupy the home for the store write plus its WAL-fsync share.
  (void)ChargeMutation(home, now_ms);
  MaybePublish(home, now_ms);
  return Status::Ok();
}

Status GhbaCluster::UnlinkFile(const std::string& path, double now_ms) {
  const MdsId home = OracleHome(path);
  if (home == kInvalidMds) return Status::NotFound(path);
  if (Status s = node(home).RemoveLocalFile(path); !s.ok()) return s;
  const Status oracle = OracleErase(path);
  assert(oracle.ok());
  (void)oracle;
  metrics_.messages += 2;
  (void)ChargeMutation(home, now_ms);
  MaybePublish(home, now_ms);
  return Status::Ok();
}

Result<std::uint64_t> GhbaCluster::RenamePrefix(const std::string& old_prefix,
                                                const std::string& new_prefix,
                                                double now_ms,
                                                ReconfigReport* report) {
  // Placement does not depend on pathnames: renames are home-local filter
  // updates, zero migration (the Table 1 advantage over pathname hashing).
  (void)report;  // nothing migrates, nothing to report
  return RenameKeysKeepingHomes(
      old_prefix, new_prefix, now_ms,
      [this](MdsId home, double now) { MaybePublish(home, now); });
}

// ---------------------------------------------------------------------------
// Reconfiguration (Sections 3.1 and 3.2)
// ---------------------------------------------------------------------------

Result<MdsId> GhbaCluster::AddMds(ReconfigReport* report) {
  ReconfigReport local;
  ReconfigReport& rep = report != nullptr ? *report : local;

  const MdsId nid = NewNode();

  // Pick the smallest group with room; if every group is full, split one.
  GroupId target = 0;
  std::size_t best = static_cast<std::size_t>(-1);
  bool found_room = false;
  for (const auto& [gid, g] : groups_) {
    if (g.size() < config_.max_group_size && g.size() < best) {
      best = g.size();
      target = gid;
      found_room = true;
    }
  }
  if (!found_room) {
    // Split a random full group; the new MDS then joins the smaller half.
    auto it = groups_.begin();
    std::advance(it, rng_.NextBounded(groups_.size()));
    SplitGroup(it->first, &rep);
    rep.group_split = true;
    best = static_cast<std::size_t>(-1);
    for (const auto& [gid, g] : groups_) {
      if (g.size() < config_.max_group_size && g.size() < best) {
        best = g.size();
        target = gid;
      }
    }
  }

  Group& g = groups_.at(target);
  g.members.push_back(nid);
  g.idbfa.AddMember(nid);
  group_of_[nid] = target;
  // A split that ran above already covered the (then group-less) newcomer
  // as an outsider; it is a member now, so that replica must go.
  if (g.replica_holder.contains(nid)) DropReplica(g, nid, &rep.messages);

  // The new member must also stop being covered as an outsider (it never
  // was) and the group's outsider set is unchanged, so only intra-group
  // rebalancing happens: each overloaded member offloads replicas to the
  // new MDS (Section 3.1's light-weight migration).
  // Floor division: every existing member sheds down to the new average so
  // the newcomer actually receives ~(N - M')/(M' + 1) replicas.
  const std::size_t outsiders = alive_.size() - g.size();
  const std::size_t target_load = g.size() == 0 ? 0 : outsiders / g.size();
  if (placement_ == ReplicaPlacement::kModularHash) {
    // Strawman: every replica re-places under the new modulus.
    std::vector<std::pair<MdsId, MdsId>> moves;
    for (const auto& [owner, holder] : g.replica_holder) {
      const MdsId want = PlacementTarget(g, owner);
      if (want != holder) moves.emplace_back(owner, holder);
    }
    for (const auto& [owner, holder] : moves) {
      MoveReplicaWithinGroup(g, owner, holder, PlacementTarget(g, owner));
      ++rep.replicas_migrated;
      ++rep.messages;
    }
  } else {
    for (const MdsId m : g.members) {
      if (m == nid) continue;
      auto held = node(m).segment().Owners();
      while (held.size() > target_load) {
        const MdsId owner = held.back();
        held.pop_back();
        MoveReplicaWithinGroup(g, owner, m, nid);
        ++rep.replicas_migrated;
        ++rep.messages;
      }
    }
  }

  // Updated IDBFA multicast within the group.
  rep.messages += g.size() - 1;

  // Announce the new MDS's (empty) filter to one holder in each other group
  // (a split may already have covered it there).
  for (auto& [gid, other] : groups_) {
    if (gid == target || other.replica_holder.contains(nid)) continue;
    InstallReplica(other, nid, PlacementTarget(other, nid), &rep.messages);
  }

  for (const MdsId m : g.members) RechargeHolder(m);

  metrics_.replicas_migrated += rep.replicas_migrated;
  metrics_.reconfig_messages += rep.messages;
  metrics_.messages += rep.messages;
  return nid;
}

Status GhbaCluster::RemoveMds(MdsId id, ReconfigReport* report) {
  if (!IsAlive(id)) return Status::NotFound("no such MDS");
  if (alive_.size() == 1) {
    return Status::InvalidArgument("cannot remove the last MDS");
  }
  ReconfigReport local;
  ReconfigReport& rep = report != nullptr ? *report : local;

  const GroupId gid = group_of_.at(id);
  Group& g = groups_.at(gid);

  // (1) Migrate the replicas this MDS held to the remaining group members.
  const auto held = g.ReplicasHeldBy(id);
  if (g.size() > 1) {
    for (const MdsId owner : held) {
      // Lightest member other than the departing one.
      MdsId best = kInvalidMds;
      std::size_t best_load = static_cast<std::size_t>(-1);
      for (const MdsId m : g.members) {
        if (m == id) continue;
        const auto load = g.LoadOf(m);
        if (load < best_load) {
          best_load = load;
          best = m;
        }
      }
      MoveReplicaWithinGroup(g, owner, id, best);
      ++rep.replicas_migrated;
      ++rep.messages;
    }
  } else {
    for (const MdsId owner : held) DropReplica(g, owner, &rep.messages);
  }

  // (2) Remove its ID filter from the group's IDBFA and tell the members.
  g.members.erase(std::find(g.members.begin(), g.members.end(), id));
  const Status id_status = g.idbfa.RemoveMember(id);
  assert(id_status.ok());
  (void)id_status;
  rep.messages += g.size();
  group_of_.erase(id);

  // (3) Tell the other groups to delete this MDS's replica.
  for (auto& [ogid, other] : groups_) {
    if (ogid == gid) continue;
    if (other.replica_holder.contains(id)) DropReplica(other, id, &rep.messages);
  }

  // (4) Re-home the departing MDS's files to the remaining group members
  // (round-robin), falling back to any alive MDS if the group emptied.
  auto files = node(id).store().ExtractAll();
  std::vector<MdsId> targets = g.members;
  if (targets.empty()) {
    for (const MdsId a : alive_) {
      if (a != id) targets.push_back(a);
    }
  }
  std::size_t rr = 0;
  for (auto& [path, md] : files) {
    const MdsId tgt = targets[rr++ % targets.size()];
    const Status s = node(tgt).AddLocalFile(path, std::move(md));
    assert(s.ok());
    (void)s;
    oracle_[path] = tgt;
  }
  rep.files_migrated += files.size();
  rep.messages += files.size();

  RetireNode(id);

  // Receivers' filters changed substantially: publish them immediately.
  for (const MdsId tgt : targets) PublishReplica(tgt, 0.0);

  if (g.members.empty()) {
    groups_.erase(gid);
  } else {
    TryMergeAfterDeparture(gid, &rep);
  }

  metrics_.replicas_migrated += rep.replicas_migrated;
  metrics_.reconfig_messages += rep.messages;
  metrics_.messages += rep.messages;
  return Status::Ok();
}

Status GhbaCluster::FailMds(MdsId id, ReconfigReport* report) {
  if (!IsAlive(id)) return Status::NotFound("no such MDS");
  if (alive_.size() == 1) {
    return Status::InvalidArgument("cannot fail the last MDS");
  }
  ReconfigReport local;
  ReconfigReport& rep = report != nullptr ? *report : local;

  const GroupId gid = group_of_.at(id);
  Group& g = groups_.at(gid);

  // Heart-beats detected the crash. The files homed there are gone with the
  // node (data-loss handling is a higher layer's job); count them.
  lost_files_ += node(id).file_count();
  std::vector<std::string> dead_paths;
  node(id).store().ForEach(
      [&](const std::string& path, const FileMetadata&) {
        dead_paths.push_back(path);
      });
  for (const auto& path : dead_paths) oracle_.erase(path);

  // Replicas the dead node *held* for outside owners are re-fetched from
  // their (alive) owners by the group's remaining members.
  const auto held = g.ReplicasHeldBy(id);
  for (const MdsId owner : held) {
    DropReplica(g, owner, &rep.messages);
  }
  g.members.erase(std::find(g.members.begin(), g.members.end(), id));
  const Status id_status = g.idbfa.RemoveMember(id);
  assert(id_status.ok());
  (void)id_status;
  rep.messages += g.size();  // IDBFA update multicast
  group_of_.erase(id);

  // "Once an MDS failure is detected, the corresponding Bloom filters are
  // removed from the other MDSs to reduce the number of false positives."
  for (auto& [ogid, other] : groups_) {
    if (other.replica_holder.contains(id)) {
      DropReplica(other, id, &rep.messages);
    }
  }
  // Evict stale L1 entries pointing at the dead node.
  for (const MdsId a : alive_) {
    if (a != id) node(a).lru().DropHome(id);
  }

  RetireNode(id);

  if (g.members.empty()) {
    groups_.erase(gid);
  } else {
    // Restore full coverage (re-fetch dropped replicas from their owners).
    EnsureGroupCoverage(groups_.at(gid), &rep);
    TryMergeAfterDeparture(gid, &rep);
  }

  metrics_.replicas_migrated += rep.replicas_migrated;
  metrics_.reconfig_messages += rep.messages;
  metrics_.messages += rep.messages;
  return Status::Ok();
}

void GhbaCluster::SplitGroup(GroupId gid, ReconfigReport* report) {
  Group& a = groups_.at(gid);
  const std::size_t move_count = a.members.size() / 2;  // floor(M/2)
  if (move_count == 0) return;

  const GroupId bid = NewGroup();
  Group& b = groups_.at(bid);

  // Move the tail members of A into B.
  std::vector<MdsId> moved(a.members.end() - static_cast<std::ptrdiff_t>(move_count),
                           a.members.end());
  a.members.resize(a.members.size() - move_count);
  for (const MdsId m : moved) {
    b.members.push_back(m);
    b.idbfa.AddMember(m);
    const Status s = a.idbfa.RemoveMember(m);
    assert(s.ok());
    (void)s;
    group_of_[m] = bid;
  }

  // Re-split the replica bookkeeping: each replica stays physically where it
  // is; it now belongs to whichever group its holder landed in.
  std::unordered_map<MdsId, MdsId> old_assignment = std::move(a.replica_holder);
  a.replica_holder.clear();
  for (const auto& [owner, holder] : old_assignment) {
    Group& dst = b.HasMember(holder) ? b : a;
    dst.replica_holder[owner] = holder;
    if (&dst == &b) {
      // Transfer IDBFA bookkeeping from A to B.
      const Status s = b.idbfa.AddReplica(holder, owner);
      assert(s.ok());
      (void)s;
    } else {
      // Already tracked in A's IDBFA (holder stayed).
    }
  }
  // Rebuild A's IDBFA cleanly: entries for moved holders are gone with the
  // member removal; survivors keep theirs. Simplest correct approach:
  // reconstruct from the assignment.
  a.idbfa = IdBloomArray(IdBloomArrayOptions{});
  for (const MdsId m : a.members) a.idbfa.AddMember(m);
  for (const auto& [owner, holder] : a.replica_holder) {
    const Status s = a.idbfa.AddReplica(holder, owner);
    assert(s.ok());
    (void)s;
  }

  // Both halves must mirror the whole system again: A now needs replicas of
  // B's members (and of any owner whose replica moved to B), and vice versa.
  // These are the "migrate copies" arrows of Fig. 5(a).
  EnsureGroupCoverage(a, report);
  EnsureGroupCoverage(b, report);
  if (report != nullptr) {
    report->messages += a.size() + b.size();  // new IDBFAs multicast
  }
  for (const MdsId m : a.members) RechargeHolder(m);
  for (const MdsId m : b.members) RechargeHolder(m);
}

void GhbaCluster::MergeGroups(GroupId dst_id, GroupId src_id,
                              ReconfigReport* report) {
  Group& dst = groups_.at(dst_id);
  Group src = std::move(groups_.at(src_id));
  groups_.erase(src_id);

  for (const MdsId m : src.members) {
    dst.members.push_back(m);
    dst.idbfa.AddMember(m);
    group_of_[m] = dst_id;
  }
  // Adopt src's replicas unless dst already covers the owner (then src's
  // copy is redundant and dropped) or the owner became a member.
  for (const auto& [owner, holder] : src.replica_holder) {
    if (dst.HasMember(owner) || dst.replica_holder.contains(owner) ||
        !IsAlive(owner)) {
      auto removed = node(holder).segment().RemoveEntry(owner);
      assert(removed.ok());
      (void)removed;
      if (report != nullptr) ++report->messages;
      RechargeHolder(holder);
      continue;
    }
    dst.replica_holder[owner] = holder;
    const Status s = dst.idbfa.AddReplica(holder, owner);
    assert(s.ok());
    (void)s;
  }
  // dst may have held replicas of src members; coverage fixes that.
  EnsureGroupCoverage(dst, report);
  if (report != nullptr) {
    report->messages += dst.size();  // merged IDBFA multicast
    report->group_merged = true;
  }
  for (const MdsId m : dst.members) RechargeHolder(m);
}

void GhbaCluster::TryMergeAfterDeparture(GroupId gid, ReconfigReport* report) {
  // Merge while some pair of groups fits within M (paper: "this process
  // repeats until no merging can be performed").
  bool merged = true;
  while (merged && groups_.size() > 1) {
    merged = false;
    for (auto it1 = groups_.begin(); it1 != groups_.end() && !merged; ++it1) {
      for (auto it2 = std::next(it1); it2 != groups_.end(); ++it2) {
        if (it1->second.size() + it2->second.size() <=
            config_.max_group_size) {
          MergeGroups(it1->first, it2->first, report);
          merged = true;
          break;
        }
      }
    }
  }
  (void)gid;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::uint64_t GhbaCluster::LookupStateBytes(MdsId id) const {
  const MdsNode& n = node(id);
  std::uint64_t bytes = PublishedReplicaBytes(id);  // own filter
  for (const auto& entry : n.segment().entries()) {
    bytes += PublishedReplicaBytes(entry.owner);
  }
  bytes += n.lru().MemoryBytes();
  const auto git = group_of_.find(id);
  if (git != group_of_.end()) {
    bytes += groups_.at(git->second).idbfa.MemoryBytes();
  }
  return bytes;
}

Status GhbaCluster::CheckInvariants() const {
  // Every alive MDS belongs to exactly one group.
  for (const MdsId id : alive_) {
    const auto it = group_of_.find(id);
    if (it == group_of_.end()) {
      return Status::Internal("MDS not in any group");
    }
    if (!groups_.at(it->second).HasMember(id)) {
      return Status::Internal("group_of points to a group without the MDS");
    }
  }
  std::size_t member_total = 0;
  for (const auto& [gid, g] : groups_) {
    member_total += g.size();
    if (g.size() > config_.max_group_size) {
      return Status::Internal("group exceeds M");
    }
    // Each group mirrors the entire system: exactly one replica per alive
    // outsider, held by a member, present in that member's segment array
    // and locatable through the IDBFA.
    for (const MdsId owner : alive_) {
      if (g.HasMember(owner)) {
        if (g.replica_holder.contains(owner)) {
          return Status::Internal("replica of a co-member present");
        }
        continue;
      }
      const auto it = g.replica_holder.find(owner);
      if (it == g.replica_holder.end()) {
        return Status::Internal("missing replica coverage for an outsider");
      }
      const MdsId holder = it->second;
      if (!g.HasMember(holder)) {
        return Status::Internal("replica holder is not a group member");
      }
      if (!node(holder).segment().HasEntry(owner)) {
        return Status::Internal("segment array missing a held replica");
      }
      const auto loc = g.idbfa.Locate(owner);
      bool holder_hit = false;
      for (const MdsId h : loc.all_hits) holder_hit |= (h == holder);
      if (!holder_hit) {
        return Status::Internal("IDBFA cannot locate a held replica");
      }
    }
    // No stale replicas of dead MDSs.
    for (const auto& [owner, holder] : g.replica_holder) {
      if (!IsAlive(owner)) return Status::Internal("replica of a dead MDS");
    }
  }
  if (member_total != alive_.size()) {
    return Status::Internal("group membership does not partition the MDSs");
  }
  return Status::Ok();
}

}  // namespace ghba
