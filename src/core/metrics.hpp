// Metrics collected during trace replay and reconfiguration.
//
// These are exactly the quantities the paper's evaluation plots: per-level
// hit counts (Fig. 13), operation latency (Figs. 8-10, 14), replica
// migrations (Fig. 11), update latency (Fig. 12) and message counts
// (Fig. 15).
//
// ClusterMetrics is a thin view over a MetricsRegistry: every field is a
// handle to a *named* counter or histogram, so `++metrics_.levels.l1` and
// the prototype's registry-side increments share one accounting path and
// one naming schema (metrics_names below). Snapshot() exports the whole
// registry — the same shape the kStatsSnapshot RPC serializes — and
// Reset() keeps its old semantics (all values zeroed, handles stay valid).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics_registry.hpp"

namespace ghba {

/// Canonical metric names shared by the simulator's ClusterMetrics, the
/// MdsServer registries and the ghba_stats renderer. Keep PROTOCOL.md's
/// kStatsSnapshot section in sync when adding names.
namespace metrics_names {
inline constexpr char kLookupsL1[] = "lookups.l1";
inline constexpr char kLookupsL2[] = "lookups.l2";
inline constexpr char kLookupsL3[] = "lookups.l3";
inline constexpr char kLookupsL4[] = "lookups.l4";
inline constexpr char kLookupsMiss[] = "lookups.miss";
inline constexpr char kMessagesTotal[] = "messages.total";
inline constexpr char kMessagesLookup[] = "messages.lookup";
inline constexpr char kMessagesUpdate[] = "messages.update";
inline constexpr char kMessagesReconfig[] = "messages.reconfig";
inline constexpr char kReplicasMigrated[] = "replicas.migrated";
inline constexpr char kFalseRoutes[] = "false_routes";
inline constexpr char kDiskProbes[] = "disk_probes";
inline constexpr char kPublishes[] = "publishes";
inline constexpr char kLatencyLookupMs[] = "latency.lookup_ms";
inline constexpr char kLatencyL1Ms[] = "latency.l1_ms";
inline constexpr char kLatencyL2Ms[] = "latency.l2_ms";
inline constexpr char kLatencyL3Ms[] = "latency.l3_ms";
inline constexpr char kLatencyL4Ms[] = "latency.l4_ms";
inline constexpr char kLatencyUpdateMs[] = "latency.update_ms";
// Client-side RPC failure handling (PeerHealthTracker::CumulativeCounts).
inline constexpr char kRpcRetries[] = "rpc.retries";
inline constexpr char kRpcTimeouts[] = "rpc.timeouts";
inline constexpr char kRpcFailures[] = "rpc.failures";
inline constexpr char kRpcSuspected[] = "rpc.suspected";
inline constexpr char kRpcFailovers[] = "rpc.failovers";
// Server-side request counts (per-MdsServer registries only).
inline constexpr char kServeLocalLookups[] = "serve.local_lookups";
inline constexpr char kServeGroupProbes[] = "serve.group_probes";
inline constexpr char kServeGlobalProbes[] = "serve.global_probes";
inline constexpr char kServeVerifies[] = "serve.verifies";
// Durable storage engine (per-MdsServer registries, --data-dir mode only).
inline constexpr char kStorageWalAppends[] = "storage.wal_appends";
inline constexpr char kStorageWalFsyncs[] = "storage.wal_fsyncs";
inline constexpr char kStorageWalBytes[] = "storage.wal_bytes";
inline constexpr char kStorageCheckpoints[] = "storage.checkpoints";
inline constexpr char kStorageCheckpointDurationNs[] =
    "storage.checkpoint_duration_ns";
inline constexpr char kStorageRecoveryReplayRecords[] =
    "storage.recovery_replay_records";
inline constexpr char kStorageRecoveryTornTail[] =
    "storage.recovery_torn_tail";
inline constexpr char kStorageRecoveryFilterRebuilt[] =
    "storage.recovery_filter_rebuilt";
inline constexpr char kStorageRecoveryFilterMismatch[] =
    "storage.recovery_filter_mismatch";
// Front tier: server-side lease bookkeeping and hot-spot handling.
inline constexpr char kServeLeaseGrants[] = "serve.lease_grants";
inline constexpr char kServeLeaseRefusals[] = "serve.lease_refusals";
inline constexpr char kServeInvalidations[] = "serve.invalidations";
inline constexpr char kServeHotKeys[] = "serve.hot_keys";
inline constexpr char kServeShedRequests[] = "serve.shed_requests";
// Distributed transactions (2PC): server-side message counts.
inline constexpr char kServeTxnBegins[] = "serve.txn_begins";
inline constexpr char kServeTxnPrepares[] = "serve.txn_prepares";
inline constexpr char kServeTxnCommits[] = "serve.txn_commits";
inline constexpr char kServeTxnAborts[] = "serve.txn_aborts";
inline constexpr char kServeTxnResolves[] = "serve.txn_resolves";
// Front tier: client-side lookup cache (ghba::Client registries only).
inline constexpr char kCacheHits[] = "cache.hits";
inline constexpr char kCacheMisses[] = "cache.misses";
inline constexpr char kCacheExpiredLease[] = "cache.expired_lease";
inline constexpr char kCacheStaleEpoch[] = "cache.stale_epoch";
inline constexpr char kCacheInvalidations[] = "cache.invalidations";
inline constexpr char kCacheHotPromotions[] = "cache.hot_promotions";
}  // namespace metrics_names

/// Plain-value copy of the per-level counters, for frozen samples
/// (checkpoints, reports) that must not track the live registry.
struct QueryLevelValues {
  std::uint64_t l1 = 0;
  std::uint64_t l2 = 0;
  std::uint64_t l3 = 0;
  std::uint64_t l4 = 0;
  std::uint64_t miss = 0;

  std::uint64_t total() const { return l1 + l2 + l3 + l4 + miss; }

  double Fraction(std::uint64_t level_count) const {
    const auto t = total();
    return t ? static_cast<double>(level_count) / static_cast<double>(t) : 0.0;
  }
};

struct QueryLevelCounters {
  MetricsRegistry::Counter l1;  ///< served by the local LRU array
  MetricsRegistry::Counter l2;  ///< served by the local segment array
  MetricsRegistry::Counter l3;  ///< served by group multicast
  MetricsRegistry::Counter l4;  ///< served by (or concluded at) global mcast
  MetricsRegistry::Counter miss;  ///< file does not exist anywhere

  std::uint64_t total() const { return l1 + l2 + l3 + l4 + miss; }

  double Fraction(std::uint64_t level_count) const {
    const auto t = total();
    return t ? static_cast<double>(level_count) / static_cast<double>(t) : 0.0;
  }

  /// Frozen copy of the current values.
  QueryLevelValues Values() const { return {l1, l2, l3, l4, miss}; }
};

class ClusterMetrics {
  // Declared first: the handle members below are initialized from it, and
  // members initialize in declaration order.
  std::shared_ptr<MetricsRegistry> registry_;

 public:
  /// Owns a fresh registry (each simulated cluster accounts independently).
  ClusterMetrics() : ClusterMetrics(std::make_shared<MetricsRegistry>()) {}

  /// View over a shared registry (the prototype client shares its registry
  /// with the stats exporter).
  explicit ClusterMetrics(std::shared_ptr<MetricsRegistry> registry)
      : registry_(std::move(registry)),
        levels{registry_->counter(metrics_names::kLookupsL1),
               registry_->counter(metrics_names::kLookupsL2),
               registry_->counter(metrics_names::kLookupsL3),
               registry_->counter(metrics_names::kLookupsL4),
               registry_->counter(metrics_names::kLookupsMiss)},
        lookup_latency_ms(
            registry_->histogram(metrics_names::kLatencyLookupMs)),
        l1_latency_ms(registry_->histogram(metrics_names::kLatencyL1Ms)),
        l2_latency_ms(registry_->histogram(metrics_names::kLatencyL2Ms)),
        group_latency_ms(registry_->histogram(metrics_names::kLatencyL3Ms)),
        global_latency_ms(registry_->histogram(metrics_names::kLatencyL4Ms)),
        update_latency_ms(
            registry_->histogram(metrics_names::kLatencyUpdateMs)),
        messages(registry_->counter(metrics_names::kMessagesTotal)),
        lookup_messages(registry_->counter(metrics_names::kMessagesLookup)),
        update_messages(registry_->counter(metrics_names::kMessagesUpdate)),
        reconfig_messages(
            registry_->counter(metrics_names::kMessagesReconfig)),
        replicas_migrated(
            registry_->counter(metrics_names::kReplicasMigrated)),
        false_routes(registry_->counter(metrics_names::kFalseRoutes)),
        disk_probes(registry_->counter(metrics_names::kDiskProbes)),
        publishes(registry_->counter(metrics_names::kPublishes)) {}

  // Handles alias the registry; copying the view would silently share
  // counters between clusters, so forbid it.
  ClusterMetrics(const ClusterMetrics&) = delete;
  ClusterMetrics& operator=(const ClusterMetrics&) = delete;

  QueryLevelCounters levels;

  MetricsRegistry::LatencyHistogram lookup_latency_ms;
  MetricsRegistry::LatencyHistogram l1_latency_ms;  ///< resolved at L1
  MetricsRegistry::LatencyHistogram l2_latency_ms;  ///< resolved at L2
  MetricsRegistry::LatencyHistogram group_latency_ms;   ///< resolved at L3
  MetricsRegistry::LatencyHistogram global_latency_ms;  ///< resolved at L4
  MetricsRegistry::LatencyHistogram update_latency_ms;  ///< replica updates

  MetricsRegistry::Counter messages;         ///< network messages (all)
  MetricsRegistry::Counter lookup_messages;  ///< messages due to lookups
  MetricsRegistry::Counter update_messages;  ///< replica-update messages
  MetricsRegistry::Counter reconfig_messages;  ///< join/leave/split msgs
  MetricsRegistry::Counter replicas_migrated;  ///< replica moves (Fig. 11)
  MetricsRegistry::Counter false_routes;  ///< unique hits verified wrong
  MetricsRegistry::Counter disk_probes;   ///< filter probes from disk
  MetricsRegistry::Counter publishes;     ///< replica refresh rounds

  /// Zero every value; handles (and the registry) stay valid.
  void Reset() { registry_->Reset(); }

  /// Point-in-time export of every named metric.
  MetricsSnapshot Snapshot() const { return registry_->Snapshot(); }

  MetricsRegistry& registry() { return *registry_; }
  const std::shared_ptr<MetricsRegistry>& shared_registry() const {
    return registry_;
  }
};

}  // namespace ghba
