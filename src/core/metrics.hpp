// Metrics collected during trace replay and reconfiguration.
//
// These are exactly the quantities the paper's evaluation plots: per-level
// hit counts (Fig. 13), operation latency (Figs. 8-10, 14), replica
// migrations (Fig. 11), update latency (Fig. 12) and message counts
// (Fig. 15).
#pragma once

#include <cstdint>
#include <string>

#include "common/histogram.hpp"

namespace ghba {

struct QueryLevelCounters {
  std::uint64_t l1 = 0;  ///< served by the local LRU array
  std::uint64_t l2 = 0;  ///< served by the local segment array
  std::uint64_t l3 = 0;  ///< served by group multicast
  std::uint64_t l4 = 0;  ///< served by (or concluded at) global multicast
  std::uint64_t miss = 0;  ///< file does not exist anywhere

  std::uint64_t total() const { return l1 + l2 + l3 + l4 + miss; }

  double Fraction(std::uint64_t level_count) const {
    const auto t = total();
    return t ? static_cast<double>(level_count) / static_cast<double>(t) : 0.0;
  }
};

struct ClusterMetrics {
  QueryLevelCounters levels;

  Histogram lookup_latency_ms;
  Histogram l1_latency_ms;   ///< latency of ops resolved at L1
  Histogram l2_latency_ms;   ///< latency of ops resolved at L2
  Histogram group_latency_ms;  ///< latency of ops resolved at L3
  Histogram global_latency_ms; ///< latency of ops resolved at L4
  Histogram update_latency_ms; ///< stale-replica update propagation

  std::uint64_t messages = 0;           ///< network messages (all causes)
  std::uint64_t lookup_messages = 0;    ///< messages due to lookups
  std::uint64_t update_messages = 0;    ///< messages due to replica updates
  std::uint64_t reconfig_messages = 0;  ///< messages due to join/leave/split
  std::uint64_t replicas_migrated = 0;  ///< replica movements (Fig. 11)
  std::uint64_t false_routes = 0;       ///< unique hits that verified wrong
  std::uint64_t disk_probes = 0;        ///< filter probes served from disk
  std::uint64_t publishes = 0;          ///< replica refresh rounds

  void Reset() { *this = ClusterMetrics{}; }
};

}  // namespace ghba
