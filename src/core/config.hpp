// Cluster-wide configuration shared by G-HBA and the baseline schemes.
#pragma once

#include <cstdint>

#include "bloom/lru_bloom_array.hpp"
#include "common/status.hpp"
#include "sim/latency_model.hpp"
#include "storage/options.hpp"

namespace ghba {

/// Timeout / retry / failure-detection knobs for the TCP prototype
/// (src/rpc). All durations in milliseconds. Defaults are deliberately
/// generous: prototype operations complete in microseconds, and the
/// simulated disk-spill sleeps (Fig. 14) reach hundreds of milliseconds,
/// so these bound genuine hangs without distorting healthy traffic. The
/// chaos tests tighten them to exercise the timeout paths.
struct RpcOptions {
  /// Bound on opening one TCP connection to a peer.
  std::uint32_t connect_timeout_ms = 500;
  /// Bound on one send+recv exchange (a single attempt of a call).
  std::uint32_t attempt_timeout_ms = 2000;
  /// Total per-call budget, covering all attempts, reconnects and backoff.
  std::uint32_t call_budget_ms = 8000;
  /// Attempts per call (1 = no retries).
  std::uint32_t max_attempts = 3;
  /// Base backoff between attempts; doubles per retry with +/-50% jitter.
  std::uint32_t retry_backoff_ms = 5;
  /// Server-side bound on reading or writing one frame: a client that
  /// stalls mid-frame is disconnected instead of wedging the event loop.
  std::uint32_t server_io_timeout_ms = 2000;
  /// Consecutive call failures before a peer is suspected.
  std::uint32_t suspect_after = 2;
  /// Heart-beat confirmation: a suspected peer is pinged this many times
  /// (each bounded by ping_timeout_ms) and declared dead only if all fail.
  std::uint32_t ping_attempts = 3;
  std::uint32_t ping_timeout_ms = 500;
  /// Worker shards per MdsServer: requests hash to a shard by path, each
  /// shard owns its slice of the metadata state, and blocking work (WAL
  /// fsync, simulated disk probes) only ever stalls its own shard. 1 keeps
  /// the old single-owner behaviour on one worker thread.
  std::uint32_t server_shards = 2;
};

/// Knobs of the online adaptivity control loop (AdaptivityController).
/// The controller is pure policy: these thresholds decide when the live
/// signals (per-level hit ratios, lookup_state_bytes, peer health) justify
/// a reconfiguration, and the cooldown stops one burst of bad samples from
/// thrashing the topology.
struct AdaptivityOptions {
  bool enabled = false;
  /// Evaluate() returns kNone for this many ticks after any action, so the
  /// cluster observes the effect of one change before making the next.
  std::uint32_t cooldown_ticks = 3;
  /// lookup_state_bytes / memory budget above which an MDS join is asked
  /// for (replicas start spilling to disk past 1.0).
  double overload_fraction = 0.9;
  /// ...and below which a graceful leave is asked for, shrinking the
  /// cluster back when the state fits comfortably.
  double underload_fraction = 0.2;
  /// Never shrink below this many servers, whatever the signals say.
  std::uint32_t min_servers = 2;
  /// Evaluate() needs at least this many finished lookups before trusting
  /// the measured hit ratios / latencies (cold counters optimize noise).
  std::uint64_t min_lookup_samples = 64;
};

/// Server-side hot-spot handling (the front tier's shed/replicate loop).
/// The per-shard verify stream feeds a count-min sketch; a path whose
/// estimate crosses `hot_threshold` within one decay period is "hot".
struct HotSpotOptions {
  /// Lease TTL granted to clients on kLeaseGrant. 0 disables granting
  /// (clients fall back to uncached lookups).
  std::uint32_t lease_ttl_ms = 2000;
  /// Verify hits per decay period after which a path counts as hot.
  std::uint32_t hot_threshold = 64;
  /// Sketch geometry for the server-side detector (per shard).
  std::uint32_t sketch_width = 1024;
  std::uint32_t sketch_depth = 4;
  /// When true, a server over `shed_queue_depth` queued requests answers
  /// hot-path verifies with kRetryAfter instead of serving them. Off by
  /// default: shedding trades latency for throughput and the coherence
  /// audits want every request answered.
  bool shed_enabled = false;
  std::uint32_t shed_queue_depth = 256;
};

struct ClusterConfig {
  /// Initial number of metadata servers (N).
  std::uint32_t num_mds = 30;

  /// Maximum group size (M). Groups split when they would exceed this.
  std::uint32_t max_group_size = 6;

  /// Target size of the initial partition (0 = use max_group_size). Setting
  /// this to M-1 builds a "mature" configuration where every group still
  /// has room — the regime reconfiguration experiments average over.
  std::uint32_t initial_group_size = 0;

  /// Bloom-filter bit ratio (m/n). G-HBA's space savings let it afford a
  /// high ratio (the paper's Eq. 1 argument); the BFA8/BFA16 baselines use
  /// 8 and 16.
  double bits_per_file = 16.0;

  /// Expected files per MDS — sizes each local filter.
  std::uint64_t expected_files_per_mds = 50000;

  /// L1 LRU cache entries per MDS.
  std::uint32_t lru_capacity = 4096;

  /// L1 replacement policy. kLru is the paper's design; kSlru implements
  /// the "replacement efficiency" improvement its future-work section
  /// suggests (scan-resistant segmented LRU).
  LruPolicy lru_policy = LruPolicy::kLru;

  /// Per-MDS RAM budget. Replicas that do not fit are disk-resident.
  std::uint64_t memory_budget_bytes = 64ULL << 20;

  /// Replica-staleness bound: a home MDS republishes its filter after this
  /// many local mutations (create/unlink) since the last publish. This is
  /// the operational form of the XOR-distance threshold of Section 3.4.
  std::uint32_t publish_after_mutations = 256;

  /// Model per-MDS queueing delays (G/G/1 Lindley recursion driven by the
  /// trace's arrival times). Off by default: unit tests pass now_ms = 0 and
  /// would otherwise all queue behind each other. The paper's latency
  /// numbers include queueing ("all delays of actual operations, such as
  /// queuing, routing and memory retrieval", Sec. 3.3), and Fig. 6's
  /// interior optimum needs it: large groups amplify multicast load until
  /// servers saturate.
  bool model_queueing = false;

  /// Cooperative L1 caching (the paper's "future work": "consider the
  /// distributed and cooperative caching"): when a lookup had to escalate
  /// to the group or global level, the entry MDS pushes the discovered
  /// (file -> home) mapping to its group members' LRU arrays, so one
  /// expensive discovery seeds the whole group's L1. Costs one one-way
  /// message per member per shared discovery.
  bool cooperative_lru = false;

  /// Deterministic seed for all randomized decisions.
  std::uint64_t seed = 42;

  LatencyModel latency;

  /// Deadlines, retries and failure detection for the TCP prototype.
  RpcOptions rpc;

  /// Durable storage engine (WAL + checkpoints). data_dir empty = metadata
  /// lives in memory only, as in the paper's testbed. The prototype's
  /// MdsServer opens an engine under data_dir/mds-<id> when set.
  StorageOptions storage;

  /// Charge mutations the fsync cost of the configured storage.fsync policy
  /// in the simulator, so Fig. 6's Γ optimizer sees durability cost. Off by
  /// default (the paper's model is memory-only).
  bool model_durability = false;

  /// Online adaptivity (group split / MDS join / leave under live load).
  AdaptivityOptions adaptivity;

  /// Hot-spot detection, lease TTLs and load shedding (front tier).
  HotSpotOptions hotspot;
};

/// Check a configuration before constructing a cluster with it: positive
/// populations, sane group bounds, a usable bit ratio. Returns the first
/// violation found.
Status ValidateClusterConfig(const ClusterConfig& config);

}  // namespace ghba
