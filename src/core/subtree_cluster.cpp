#include "core/subtree_cluster.hpp"

#include <cassert>

namespace ghba {

StaticSubtreeCluster::StaticSubtreeCluster(ClusterConfig config)
    : ClusterBase(config) {
  for (std::uint32_t i = 0; i < config_.num_mds; ++i) NewNode();
  metrics_.Reset();
}

Result<std::string> StaticSubtreeCluster::TopLevelOf(const std::string& path) {
  if (path.empty() || path.front() != '/') {
    return Status::InvalidArgument("path must be absolute: " + path);
  }
  const auto second_slash = path.find('/', 1);
  const auto end = second_slash == std::string::npos ? path.size() : second_slash;
  if (end <= 1) return Status::InvalidArgument("no top-level dir: " + path);
  return path.substr(1, end - 1);
}

MdsId StaticSubtreeCluster::SubtreeOwner(const std::string& path) {
  auto top = TopLevelOf(path);
  assert(top.ok());
  const auto it = subtree_owner_.find(*top);
  if (it != subtree_owner_.end()) return it->second;
  // First sighting: static assignment, round-robin over the current MDSs.
  const MdsId owner = alive_[next_assignment_++ % alive_.size()];
  subtree_owner_.emplace(*top, owner);
  return owner;
}

LookupOutcome StaticSubtreeCluster::Lookup(const std::string& path,
                                          double now_ms) {
  LookupOutcome res;
  double lat = config_.latency.local_proc_ms + config_.latency.Unicast();
  std::uint64_t msgs = 2;

  auto top = TopLevelOf(path);
  if (top.ok() && subtree_owner_.contains(*top)) {
    const MdsId owner = subtree_owner_.at(*top);
    res.found = node(owner).store().Contains(path);
    lat += ServeAt(owner, now_ms,
                   config_.latency.MetadataRead(MetadataCacheHitProb(owner)));
    res.home = res.found ? owner : kInvalidMds;
  }

  res.latency_ms = lat;
  res.served_level = 2;  // one deterministic hop, like hash placement
  res.messages = msgs;
  res.trace.level = 2;
  res.trace.level_elapsed_ns[1] = static_cast<std::uint64_t>(lat * 1e6);
  res.trace.peers_contacted = 1;
  metrics_.lookup_latency_ms.Add(lat);
  metrics_.l2_latency_ms.Add(lat);
  if (res.found) {
    ++metrics_.levels.l2;
  } else {
    ++metrics_.levels.miss;
  }
  metrics_.lookup_messages += msgs;
  metrics_.messages += msgs;
  return res;
}

Status StaticSubtreeCluster::CreateFile(const std::string& path,
                                        FileMetadata metadata, double now_ms) {
  if (OracleHome(path) != kInvalidMds) return Status::AlreadyExists(path);
  auto top = TopLevelOf(path);
  if (!top.ok()) return top.status();
  const MdsId home = SubtreeOwner(path);
  if (Status s = node(home).AddLocalFile(path, std::move(metadata)); !s.ok()) {
    return s;
  }
  const Status oracle = OracleInsert(path, home);
  assert(oracle.ok());
  (void)oracle;
  metrics_.messages += 2;
  (void)ChargeMutation(home, now_ms);
  return Status::Ok();
}

Status StaticSubtreeCluster::UnlinkFile(const std::string& path,
                                        double now_ms) {
  const MdsId home = OracleHome(path);
  if (home == kInvalidMds) return Status::NotFound(path);
  if (Status s = node(home).RemoveLocalFile(path); !s.ok()) return s;
  const Status oracle = OracleErase(path);
  assert(oracle.ok());
  (void)oracle;
  metrics_.messages += 2;
  (void)ChargeMutation(home, now_ms);
  return Status::Ok();
}

Result<std::uint64_t> StaticSubtreeCluster::RenamePrefix(
    const std::string& old_prefix, const std::string& new_prefix,
    double now_ms, ReconfigReport* report) {
  // Renames inside a subtree stay on the owner: home-local, zero migration
  // (the "fast directory operations" of Table 1). A rename that would move
  // files ACROSS top-level subtrees changes ownership; for the static
  // scheme we pin the destination's subtree to the same owner if unseen,
  // preserving zero migration.
  auto old_top = TopLevelOf(old_prefix);
  if (old_top.ok()) {
    auto new_top = TopLevelOf(new_prefix);
    if (new_top.ok() && subtree_owner_.contains(*old_top) &&
        !subtree_owner_.contains(*new_top)) {
      subtree_owner_.emplace(*new_top, subtree_owner_.at(*old_top));
    }
  }
  (void)report;
  return RenameKeysKeepingHomes(old_prefix, new_prefix, now_ms,
                                [](MdsId, double) {});
}

Result<MdsId> StaticSubtreeCluster::AddMds(ReconfigReport* report) {
  // Static partition: the newcomer serves only subtrees created after it
  // joined. Zero migration, zero messages beyond the join announcement.
  const MdsId nid = NewNode();
  if (report != nullptr) report->messages += alive_.size() - 1;
  metrics_.reconfig_messages += alive_.size() - 1;
  metrics_.messages += alive_.size() - 1;
  return nid;
}

Status StaticSubtreeCluster::RemoveMds(MdsId id, ReconfigReport* report) {
  if (!IsAlive(id)) return Status::NotFound("no such MDS");
  if (alive_.size() == 1) {
    return Status::InvalidArgument("cannot remove the last MDS");
  }
  ReconfigReport local;
  ReconfigReport& rep = report != nullptr ? *report : local;

  // The departing MDS's subtrees (and their files) move wholesale to a
  // successor — subtree granularity is all the static scheme can do.
  const MdsId successor = alive_.front() != id ? alive_.front() : alive_.back();
  for (auto& [top, owner] : subtree_owner_) {
    if (owner == id) owner = successor;
  }
  auto files = node(id).store().ExtractAll();
  for (auto& [path, md] : files) {
    const Status s = node(successor).AddLocalFile(path, std::move(md));
    assert(s.ok());
    (void)s;
    oracle_[path] = successor;
  }
  rep.files_migrated += files.size();
  rep.messages += files.size();
  RetireNode(id);
  metrics_.reconfig_messages += rep.messages;
  metrics_.messages += rep.messages;
  return Status::Ok();
}

std::uint64_t StaticSubtreeCluster::LookupStateBytes(MdsId id) const {
  (void)id;
  // Every node keeps the (tiny) subtree table: name bytes + owner id.
  std::uint64_t bytes = 0;
  for (const auto& [top, owner] : subtree_owner_) {
    bytes += top.size() + sizeof(MdsId) + 32;  // map node overhead
  }
  return bytes;
}

Status StaticSubtreeCluster::CheckInvariants() const {
  for (const auto& [path, home] : oracle_) {
    const auto top = TopLevelOf(path);
    if (!top.ok()) return Status::Internal("oracle path not absolute");
    const auto it = subtree_owner_.find(*top);
    if (it == subtree_owner_.end()) {
      return Status::Internal("file in unassigned subtree: " + path);
    }
    if (it->second != home) {
      return Status::Internal("file not on its subtree owner: " + path);
    }
    if (!node(home).store().Contains(path)) {
      return Status::Internal("oracle out of sync with store");
    }
  }
  return Status::Ok();
}

}  // namespace ghba
