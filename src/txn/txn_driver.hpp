// Client-side two-phase-commit driver over an abstract transport.
//
// The driver owns the message choreography of a namespace transaction —
// who gets begun, prepared, decided, committed, in what order — while the
// transport owns how a message reaches a server. Two transports exist:
// PrototypeCluster (loopback sockets, in-process servers) and the txn_chaos
// tool (DaemonClient connections to real mds_daemon processes it can
// kill -9 between phases). Both reuse this file verbatim, which is the
// point: the protocol proven crash-safe in-process is byte-for-byte the one
// the daemons speak.
//
// Protocol (presumed abort, client-driven — servers never dial out):
//
//   Begin(C)          coordinator C journals kTxnBegin
//   Prepare(P_i)      each participant validates, journals kTxnPrepare and
//                     takes an intent lock; a remove-prepare's vote carries
//                     the file's metadata so a rename needs no read RPC
//   Decide(C, commit) THE commit point: C journals kTxnDecision. Only
//                     after this returns is the operation acked.
//   Commit(P_i)       each participant applies + closes in one WAL frame
//
// Any prepare refusal flips the txn to Decide(C, abort) + best-effort
// Abort(P_i). A crash after Decide leaves participants in doubt; recovery
// resolution (ResolveInDoubt) re-drives the closing messages from the
// coordinator's durable decision table, or presumes abort once the
// coordinator is confirmed dead and reports no decision.
//
// Crash/halt instrumentation: after every message the driver calls the
// `after_step` hook with the phase and the server that just processed it.
// A false return halts the driver mid-protocol — exactly a client dying at
// that boundary — and the hook itself may crash the target server first.
// Both faults at every boundary are what the phase-matrix tests sweep.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/lookup_outcome.hpp"
#include "common/status.hpp"
#include "mds/metadata.hpp"
#include "storage/txn_state.hpp"

namespace ghba {

/// Which protocol message just completed (hook tag; ArmCrashPoint tags are
/// built from these names — see TxnPhaseName).
enum class TxnPhase : std::uint8_t {
  kBegin = 0,
  kPrepare = 1,
  kDecide = 2,
  kCommit = 3,
  kAbort = 4,
};

constexpr const char* TxnPhaseName(TxnPhase phase) {
  switch (phase) {
    case TxnPhase::kBegin: return "begin";
    case TxnPhase::kPrepare: return "prepare";
    case TxnPhase::kDecide: return "decide";
    case TxnPhase::kCommit: return "commit";
    case TxnPhase::kAbort: return "abort";
  }
  return "unknown";
}

/// Coordinator verdicts as a resolver sees them (the wire's
/// TxnDecisionState mirrors this; the txn library stays below the rpc
/// layer so it cannot use the wire enum directly).
enum class TxnResolution : std::uint8_t {
  kUnknown = 0,   ///< no table entry: presumed abort
  kPending = 1,   ///< begun, undecided: resolver force-aborts
  kCommitted = 2,
  kAborted = 3,
};

/// How a transaction message reaches a server. Implementations return
/// kUnavailable-style errors for dead/unreachable targets; the driver
/// translates those into abort or in-doubt per phase.
class TxnTransport {
 public:
  virtual ~TxnTransport() = default;

  virtual Status TxnBegin(MdsId coordinator, std::uint64_t txn_id,
                          const std::vector<MdsId>& participants) = 0;
  /// Returns the prepared file's prior metadata for kRemove sub-ops
  /// (nullopt for kInsert). A non-OK status is a NO vote or a transport
  /// failure; either way the driver aborts.
  virtual Result<std::optional<FileMetadata>> TxnPrepare(
      MdsId participant, const TxnPendingOp& op) = 0;
  virtual Status TxnDecide(MdsId coordinator, std::uint64_t txn_id,
                           bool commit) = 0;
  virtual Status TxnCommit(MdsId participant, std::uint64_t txn_id,
                           const std::string& path) = 0;
  virtual Status TxnAbort(MdsId participant, std::uint64_t txn_id,
                          const std::string& path) = 0;

  // --- recovery resolution ---
  /// Every in-doubt prepare on `server` (its kTxnList).
  virtual Result<std::vector<TxnPendingOp>> TxnList(MdsId server) = 0;
  /// Ask `coordinator` for its verdict on `txn_id` (its kTxnResolve).
  virtual Result<TxnResolution> TxnQueryDecision(MdsId coordinator,
                                                 std::uint64_t txn_id) = 0;
  /// Is `server` confirmed dead (crashed / removed), as opposed to merely
  /// unreachable right now? Resolution only presumes abort on confirmed
  /// death; a transient partition leaves the op in doubt.
  virtual bool TxnServerConfirmedDead(MdsId server) = 0;
};

/// Outcome of one Rename/CreateExclusive drive, beyond the Status: which
/// closing messages could not be delivered (they stay in doubt on their
/// participants until ResolveInDoubt runs).
struct TxnDriveStats {
  std::uint32_t messages = 0;        ///< RPCs issued by this drive
  std::uint32_t commits_pending = 0; ///< acked commit left undelivered
  bool halted = false;               ///< hook stopped the driver mid-flight
};

class TxnDriver {
 public:
  /// `after_step` may be null (no instrumentation). It runs after every
  /// successful message; returning false halts the drive at that boundary.
  using StepHook = std::function<bool(TxnPhase, MdsId target)>;

  explicit TxnDriver(TxnTransport* transport, StepHook after_step = nullptr)
      : transport_(transport), after_step_(std::move(after_step)) {}

  /// Atomically move `src` (homed on `src_home`) to `dst` (homed on
  /// `dst_home`), coordinated by `src_home`. Returns Ok once the commit
  /// decision is durable on the coordinator — even if a closing commit
  /// could not be delivered (see `stats->commits_pending`). NotFound when
  /// src is absent, AlreadyExists when dst is taken; both abort cleanly.
  Status Rename(std::uint64_t txn_id, const std::string& src, MdsId src_home,
                const std::string& dst, MdsId dst_home,
                TxnDriveStats* stats = nullptr);

  /// Atomically create `path` on `home` (also the coordinator) with
  /// `metadata`, failing with AlreadyExists if present. Single-participant
  /// 2PC: same journal trail, same crash matrix, one server.
  Status CreateExclusive(std::uint64_t txn_id, const std::string& path,
                         MdsId home, const FileMetadata& metadata,
                         TxnDriveStats* stats = nullptr);

  /// Resolve every in-doubt prepare on `server` by consulting each op's
  /// coordinator: committed rolls forward, aborted/unknown rolls back, an
  /// undecided txn is first force-aborted on the coordinator. Returns the
  /// number of ops still in doubt (coordinator unreachable and not
  /// confirmed dead); 0 means the server is clean.
  Result<std::uint64_t> ResolveInDoubt(MdsId server);

 private:
  /// Run the hook; false means halt.
  bool Step(TxnPhase phase, MdsId target, TxnDriveStats* stats);

  /// Decide(abort) + best-effort aborts to every prepared participant,
  /// then return `cause` (the original failure).
  Status AbortAll(std::uint64_t txn_id, MdsId coordinator,
                  const std::vector<std::pair<MdsId, std::string>>& prepared,
                  Status cause, TxnDriveStats* stats);

  TxnTransport* transport_;
  StepHook after_step_;
};

}  // namespace ghba
