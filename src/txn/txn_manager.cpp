#include "txn/txn_manager.hpp"

#include <algorithm>

namespace ghba {

void TxnManager::Seed(std::vector<TxnPendingOp> pending,
                      std::vector<TxnCoordEntry> decisions,
                      const std::vector<std::pair<std::uint64_t, bool>>& closed) {
  MutexLock lock(&mu_);
  pending_.clear();
  locks_.clear();
  for (TxnPendingOp& op : pending) AddPendingLocked(std::move(op));
  decisions_.assign(decisions.begin(), decisions.end());
  closed_.clear();
  closed_order_.clear();
  for (const auto& [txn_id, committed] : closed) {
    RecordClosedLocked(txn_id, committed);
  }
}

bool TxnManager::IsLockedByOtherLocked(const std::string& path,
                                       std::uint64_t txn_id) const {
  auto it = locks_.find(path);
  return it != locks_.end() && it->second != txn_id;
}

void TxnManager::AddPendingLocked(TxnPendingOp op) {
  std::erase_if(pending_, [&op](const TxnPendingOp& p) {
    return p.txn_id == op.txn_id && p.path == op.path;
  });
  locks_[op.path] = op.txn_id;
  pending_.push_back(std::move(op));
}

const TxnPendingOp* TxnManager::FindPendingLocked(
    std::uint64_t txn_id, const std::string& path) const {
  for (const TxnPendingOp& op : pending_) {
    if (op.txn_id == txn_id && op.path == path) return &op;
  }
  return nullptr;
}

void TxnManager::ClosePendingLocked(std::uint64_t txn_id,
                                    const std::string& path, bool committed) {
  const auto removed = std::erase_if(pending_, [&](const TxnPendingOp& p) {
    return p.txn_id == txn_id && p.path == path;
  });
  if (removed > 0) {
    auto it = locks_.find(path);
    if (it != locks_.end() && it->second == txn_id) locks_.erase(it);
  }
  RecordClosedLocked(txn_id, committed);
}

std::optional<bool> TxnManager::ClosedOutcomeLocked(
    std::uint64_t txn_id) const {
  auto it = closed_.find(txn_id);
  if (it == closed_.end()) return std::nullopt;
  return it->second;
}

std::vector<TxnPendingOp> TxnManager::PendingLocked() const {
  return pending_;
}

void TxnManager::BeginLocked(std::uint64_t txn_id) {
  for (const TxnCoordEntry& d : decisions_) {
    if (d.txn_id == txn_id) return;
  }
  decisions_.push_back(TxnCoordEntry{txn_id, TxnCoordState::kBegun});
  if (decisions_.size() > kMaxTxnCoordEntries) decisions_.pop_front();
}

void TxnManager::DecideLocked(std::uint64_t txn_id, bool commit) {
  const TxnCoordState state =
      commit ? TxnCoordState::kCommitted : TxnCoordState::kAborted;
  for (TxnCoordEntry& d : decisions_) {
    if (d.txn_id == txn_id) {
      d.state = state;
      return;
    }
  }
  decisions_.push_back(TxnCoordEntry{txn_id, state});
  if (decisions_.size() > kMaxTxnCoordEntries) decisions_.pop_front();
}

std::optional<TxnCoordState> TxnManager::QueryLocked(
    std::uint64_t txn_id) const {
  for (const TxnCoordEntry& d : decisions_) {
    if (d.txn_id == txn_id) return d.state;
  }
  return std::nullopt;
}

void TxnManager::RecordClosedLocked(std::uint64_t txn_id, bool committed) {
  auto [it, inserted] = closed_.try_emplace(txn_id, committed);
  if (!inserted) {
    // A rename closes two ops under one txn id; outcomes always agree
    // (both sides follow the same coordinator verdict), so keep the value.
    it->second = committed;
    return;
  }
  closed_order_.push_back(txn_id);
  if (closed_order_.size() > kMaxTxnClosedEntries) {
    closed_.erase(closed_order_.front());
    closed_order_.pop_front();
  }
}

}  // namespace ghba
