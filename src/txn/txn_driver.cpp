#include "txn/txn_driver.hpp"

#include <utility>

namespace ghba {

namespace {

void CountMessage(TxnDriveStats* stats) {
  if (stats != nullptr) ++stats->messages;
}

}  // namespace

bool TxnDriver::Step(TxnPhase phase, MdsId target, TxnDriveStats* stats) {
  if (!after_step_) return true;
  if (after_step_(phase, target)) return true;
  if (stats != nullptr) stats->halted = true;
  return false;
}

Status TxnDriver::AbortAll(
    std::uint64_t txn_id, MdsId coordinator,
    const std::vector<std::pair<MdsId, std::string>>& prepared, Status cause,
    TxnDriveStats* stats) {
  // The abort decision makes the outcome durable; the per-participant
  // aborts merely release intent locks early. Failures are fine — a
  // participant that misses its abort resolves via presumed abort.
  CountMessage(stats);
  Status decide = transport_->TxnDecide(coordinator, txn_id, false);
  if (decide.ok() && !Step(TxnPhase::kDecide, coordinator, stats)) {
    return cause;
  }
  for (const auto& [participant, path] : prepared) {
    CountMessage(stats);
    // Best-effort: the op aborts anyway once the participant resolves.
    (void)transport_->TxnAbort(participant, txn_id, path);
    if (!Step(TxnPhase::kAbort, participant, stats)) return cause;
  }
  return cause;
}

Status TxnDriver::Rename(std::uint64_t txn_id, const std::string& src,
                         MdsId src_home, const std::string& dst,
                         MdsId dst_home, TxnDriveStats* stats) {
  if (txn_id == 0) return Status::InvalidArgument("txn id 0 is reserved");
  if (src == dst) return Status::InvalidArgument("rename onto itself");
  const MdsId coordinator = src_home;
  std::vector<MdsId> participants{src_home};
  if (dst_home != src_home) participants.push_back(dst_home);

  CountMessage(stats);
  if (Status s = transport_->TxnBegin(coordinator, txn_id, participants);
      !s.ok()) {
    return s;
  }
  if (!Step(TxnPhase::kBegin, coordinator, stats)) {
    return Status::Unavailable("txn halted after begin");
  }

  std::vector<std::pair<MdsId, std::string>> prepared;

  // Prepare the remove first: its vote carries src's metadata, which the
  // insert prepare needs. NotFound here IS the rename's NotFound.
  TxnPendingOp remove_op;
  remove_op.txn_id = txn_id;
  remove_op.subop = TxnSubOp::kRemove;
  remove_op.path = src;
  remove_op.coordinator = coordinator;
  remove_op.participants = participants;
  CountMessage(stats);
  auto vote = transport_->TxnPrepare(src_home, remove_op);
  if (!vote.ok()) {
    return AbortAll(txn_id, coordinator, prepared, vote.status(), stats);
  }
  if (!vote->has_value()) {
    return AbortAll(txn_id, coordinator, prepared,
                    Status::Internal("remove vote carried no metadata"),
                    stats);
  }
  prepared.emplace_back(src_home, src);
  if (!Step(TxnPhase::kPrepare, src_home, stats)) {
    return Status::Unavailable("txn halted after src prepare");
  }

  TxnPendingOp insert_op;
  insert_op.txn_id = txn_id;
  insert_op.subop = TxnSubOp::kInsert;
  insert_op.path = dst;
  insert_op.metadata = **vote;
  insert_op.coordinator = coordinator;
  insert_op.participants = participants;
  CountMessage(stats);
  if (auto ins = transport_->TxnPrepare(dst_home, insert_op); !ins.ok()) {
    return AbortAll(txn_id, coordinator, prepared, ins.status(), stats);
  }
  prepared.emplace_back(dst_home, dst);
  if (!Step(TxnPhase::kPrepare, dst_home, stats)) {
    return Status::Unavailable("txn halted after dst prepare");
  }

  // THE commit point. Failure to make the decision durable aborts; after
  // it returns, the rename is committed no matter what happens next.
  CountMessage(stats);
  if (Status s = transport_->TxnDecide(coordinator, txn_id, true); !s.ok()) {
    return AbortAll(txn_id, coordinator, prepared, std::move(s), stats);
  }
  if (!Step(TxnPhase::kDecide, coordinator, stats)) {
    if (stats != nullptr) stats->commits_pending += 2;
    return Status::Ok();  // committed; closing messages owed to resolution
  }

  // Insert before remove: the transient double-presence window is benign
  // (both lookups succeed), a neither-present window would not be.
  for (const auto& [participant, path] :
       {std::pair{dst_home, dst}, std::pair{src_home, src}}) {
    CountMessage(stats);
    if (Status s = transport_->TxnCommit(participant, txn_id, path);
        !s.ok()) {
      if (stats != nullptr) ++stats->commits_pending;
      continue;  // already committed; resolution will close this op
    }
    if (!Step(TxnPhase::kCommit, participant, stats)) {
      if (stats != nullptr && participant == dst_home) {
        ++stats->commits_pending;  // src commit never sent
      }
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Status TxnDriver::CreateExclusive(std::uint64_t txn_id,
                                  const std::string& path, MdsId home,
                                  const FileMetadata& metadata,
                                  TxnDriveStats* stats) {
  if (txn_id == 0) return Status::InvalidArgument("txn id 0 is reserved");
  CountMessage(stats);
  if (Status s = transport_->TxnBegin(home, txn_id, {home}); !s.ok()) {
    return s;
  }
  if (!Step(TxnPhase::kBegin, home, stats)) {
    return Status::Unavailable("txn halted after begin");
  }

  TxnPendingOp op;
  op.txn_id = txn_id;
  op.subop = TxnSubOp::kInsert;
  op.path = path;
  op.metadata = metadata;
  op.coordinator = home;
  op.participants = {home};
  CountMessage(stats);
  if (auto vote = transport_->TxnPrepare(home, op); !vote.ok()) {
    return AbortAll(txn_id, home, {}, vote.status(), stats);
  }
  if (!Step(TxnPhase::kPrepare, home, stats)) {
    return Status::Unavailable("txn halted after prepare");
  }

  CountMessage(stats);
  if (Status s = transport_->TxnDecide(home, txn_id, true); !s.ok()) {
    return AbortAll(txn_id, home, {{home, path}}, std::move(s), stats);
  }
  if (!Step(TxnPhase::kDecide, home, stats)) {
    if (stats != nullptr) ++stats->commits_pending;
    return Status::Ok();
  }

  CountMessage(stats);
  if (Status s = transport_->TxnCommit(home, txn_id, path); !s.ok()) {
    if (stats != nullptr) ++stats->commits_pending;
    return Status::Ok();  // committed; resolution closes it
  }
  (void)Step(TxnPhase::kCommit, home, stats);  // drive is complete either way
  return Status::Ok();
}

Result<std::uint64_t> TxnDriver::ResolveInDoubt(MdsId server) {
  auto pending = transport_->TxnList(server);
  if (!pending.ok()) return pending.status();

  std::uint64_t unresolved = 0;
  for (const TxnPendingOp& op : *pending) {
    TxnResolution verdict = TxnResolution::kUnknown;
    if (op.coordinator == server) {
      // Self-coordinated op: the server's own recovered decision table is
      // authoritative; ask it directly.
      auto res = transport_->TxnQueryDecision(server, op.txn_id);
      if (!res.ok()) return res.status();
      verdict = *res;
    } else {
      auto res = transport_->TxnQueryDecision(op.coordinator, op.txn_id);
      if (res.ok()) {
        verdict = *res;
      } else if (transport_->TxnServerConfirmedDead(op.coordinator)) {
        // Presumed abort: a dead coordinator that never reported a commit
        // decision cannot have committed (it journals the decision before
        // anyone acks), so rolling back is safe.
        verdict = TxnResolution::kAborted;
      } else {
        ++unresolved;  // merely unreachable: stay in doubt, retry later
        continue;
      }
    }

    if (verdict == TxnResolution::kPending) {
      // Begun but undecided: no client is still driving this txn (we are
      // the recovery path), so fix the verdict to abort first.
      if (Status s = transport_->TxnDecide(op.coordinator, op.txn_id, false);
          !s.ok()) {
        ++unresolved;
        continue;
      }
      verdict = TxnResolution::kAborted;
    }

    Status close = verdict == TxnResolution::kCommitted
                       ? transport_->TxnCommit(server, op.txn_id, op.path)
                       : transport_->TxnAbort(server, op.txn_id, op.path);
    if (!close.ok()) ++unresolved;
  }
  return unresolved;
}

}  // namespace ghba
