// Server-side two-phase-commit state: intent locks, pending prepares,
// the coordinator decision table and the closed-outcome history.
//
// One TxnManager lives in each MdsServer, shared by every worker shard
// (txn requests are path-routed like plain mutations, but the txn tables
// are whole-server: a cross-MDS rename locks one path here and another on
// a different server entirely). All state sits under a single mutex at
// rank kServerTxn — deliberately ABOVE kServerWal, so a handler can check
// and mutate txn state and journal the transition through the storage
// engine inside one critical section:
//
//     MutexLock txn(&manager.mu());       // decide under the intent lock
//     ... manager.*Locked() checks ...
//     { MutexLock wal(&wal_mu_); engine->LogTxnPrepare(op); }  // 13 -> 12
//     manager.AddPendingLocked(op);       // state matches the journal
//
// The manager itself never journals: the server owns the apply->log->ack
// discipline (and its rollback), the manager owns only the tables. The
// split keeps the manager testable without a WAL and keeps exactly one
// component (StorageEngine) responsible for durability.
//
// Concurrency model (why a lock and not shard ownership): prepares for
// different paths land on different shard workers, but a single txn spans
// paths — and the "is this path intent-locked" check must be visible to
// every shard's plain-mutation handlers. A whole-server mutex is the
// simplest structure that makes prepare-vs-prepare and prepare-vs-mutation
// races impossible; txn traffic is rare next to lookups (which never take
// this lock), so contention is a non-issue.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "storage/txn_state.hpp"

namespace ghba {

/// Closed-outcome history cap. Old entries age out FIFO; a commit/abort
/// retried after its entry aged out is indistinguishable from a brand-new
/// txn, which is safe: commit re-apply is idempotent (insert overwrites,
/// remove of a missing path is a no-op) and abort of nothing is Ok.
inline constexpr std::size_t kMaxTxnClosedEntries = 4096;

class TxnManager {
 public:
  TxnManager() = default;
  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// The manager's lock, exposed so the server can hold it across the
  /// check-journal-mutate sequence (see file comment). Rank kServerTxn.
  Mutex& mu() GHBA_RETURN_CAPABILITY(mu_) { return mu_; }

  /// Seed from recovery: re-take the intent lock of every in-doubt prepare,
  /// restore the decision table, and replay the closed outcomes (in log
  /// order) into the idempotency history.
  void Seed(std::vector<TxnPendingOp> pending,
            std::vector<TxnCoordEntry> decisions,
            const std::vector<std::pair<std::uint64_t, bool>>& closed)
      GHBA_EXCLUDES(mu_);

  // --- participant side -------------------------------------------------

  /// Does `path` carry an intent lock from any txn other than `txn_id`?
  /// Plain mutation handlers call this with txn_id 0 (matches no txn).
  bool IsLockedByOtherLocked(const std::string& path,
                             std::uint64_t txn_id) const GHBA_REQUIRES(mu_);

  /// Record a journaled prepare: index the op and take the path's intent
  /// lock. A re-prepare of the same (txn, path) replaces the old op.
  void AddPendingLocked(TxnPendingOp op) GHBA_REQUIRES(mu_);

  /// The pending op for (txn_id, path), if any.
  const TxnPendingOp* FindPendingLocked(std::uint64_t txn_id,
                                        const std::string& path) const
      GHBA_REQUIRES(mu_);

  /// Drop the pending op and release its intent lock, recording the closed
  /// outcome for idempotent retries. No-op if nothing is pending.
  void ClosePendingLocked(std::uint64_t txn_id, const std::string& path,
                          bool committed) GHBA_REQUIRES(mu_);

  /// The recorded outcome of a closed txn, if still in the history.
  std::optional<bool> ClosedOutcomeLocked(std::uint64_t txn_id) const
      GHBA_REQUIRES(mu_);

  /// Every pending (in-doubt) op, for kTxnList / recovery resolution.
  std::vector<TxnPendingOp> PendingLocked() const GHBA_REQUIRES(mu_);

  /// Convenience for callers outside a txn critical section.
  bool IsLocked(const std::string& path) GHBA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return IsLockedByOtherLocked(path, 0);
  }
  std::vector<TxnPendingOp> Pending() GHBA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return PendingLocked();
  }
  std::uint64_t InDoubt() GHBA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pending_.size();
  }

  // --- coordinator side -------------------------------------------------

  /// Record a journaled begin. Idempotent: re-begin of a decided txn keeps
  /// the decision.
  void BeginLocked(std::uint64_t txn_id) GHBA_REQUIRES(mu_);

  /// Record a journaled decision (idempotent; a repeat must agree — the
  /// caller rejects flips before journaling).
  void DecideLocked(std::uint64_t txn_id, bool commit) GHBA_REQUIRES(mu_);

  /// The decision-table state for `txn_id`; nullopt when unknown (which a
  /// resolver must read as aborted, per presumed abort).
  std::optional<TxnCoordState> QueryLocked(std::uint64_t txn_id) const
      GHBA_REQUIRES(mu_);

 private:
  void RecordClosedLocked(std::uint64_t txn_id, bool committed)
      GHBA_REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kServerTxn};
  /// Pending prepares in arrival order (kTxnList reports them in order; the
  /// list is tiny — one per in-flight txn op on this server).
  std::vector<TxnPendingOp> pending_ GHBA_GUARDED_BY(mu_);
  /// path -> txn_id holding its intent lock. Derived from pending_, kept
  /// alongside so the hot "is this path locked" check is one hash probe.
  std::unordered_map<std::string, std::uint64_t> locks_ GHBA_GUARDED_BY(mu_);
  /// Coordinator decision table, pruned FIFO at kMaxTxnCoordEntries
  /// (presumed abort makes dropping old entries safe; see txn_state.hpp).
  std::deque<TxnCoordEntry> decisions_ GHBA_GUARDED_BY(mu_);
  /// Closed participant outcomes (txn_id -> committed) with FIFO aging.
  std::unordered_map<std::uint64_t, bool> closed_ GHBA_GUARDED_BY(mu_);
  std::deque<std::uint64_t> closed_order_ GHBA_GUARDED_BY(mu_);
};

}  // namespace ghba
