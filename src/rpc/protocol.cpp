#include "rpc/protocol.hpp"

#include "bloom/compressed.hpp"

namespace ghba {

namespace {
ByteWriter WriterFor(MsgType type) {
  ByteWriter w;
  w.PutU16(static_cast<std::uint16_t>(type));
  return w;
}
}  // namespace

std::vector<std::uint8_t> EncodeHeader(MsgType type) {
  return WriterFor(type).Take();
}

std::vector<std::uint8_t> EncodePathRequest(MsgType type,
                                            const std::string& path) {
  auto w = WriterFor(type);
  w.PutString(path);
  return w.Take();
}

std::vector<std::uint8_t> EncodeTouch(const std::string& path, MdsId home) {
  auto w = WriterFor(MsgType::kTouchLru);
  w.PutString(path);
  w.PutU32(home);
  return w.Take();
}

std::vector<std::uint8_t> EncodeInsert(const std::string& path,
                                       const FileMetadata& metadata) {
  auto w = WriterFor(MsgType::kInsert);
  w.PutString(path);
  metadata.Serialize(w);
  return w.Take();
}

std::vector<std::uint8_t> EncodeReplicaInstall(MdsId owner,
                                               const BloomFilter& filter) {
  auto w = WriterFor(MsgType::kReplicaInstall);
  w.PutU32(owner);
  // Replicas ship compressed: sparse filters (fresh MDSs, post-split
  // installs) gap-code to a fraction of their raw size.
  w.PutBytes(CompressFilter(filter));
  return w.Take();
}

std::vector<std::uint8_t> EncodeReplicaDrop(MdsId owner) {
  auto w = WriterFor(MsgType::kReplicaDrop);
  w.PutU32(owner);
  return w.Take();
}

std::vector<std::uint8_t> EncodeReplicaFetch(MdsId owner) {
  auto w = WriterFor(MsgType::kReplicaFetch);
  w.PutU32(owner);
  return w.Take();
}

std::vector<std::uint8_t> EncodeStatusResp(const Status& status) {
  ByteWriter w;
  w.PutU8(0);  // envelope: 0 = Status follows
  w.PutU8(static_cast<std::uint8_t>(status.code()));
  w.PutString(status.message());
  return w.Take();
}

std::vector<std::uint8_t> EncodeBoolResp(bool value) {
  ByteWriter w;
  w.PutU8(1);  // envelope: 1 = payload follows
  w.PutU8(value ? 1 : 0);
  return w.Take();
}

std::vector<std::uint8_t> EncodeLocalLookupResp(const LocalLookupResp& resp) {
  ByteWriter w;
  w.PutU8(1);  // envelope
  w.PutU8(resp.lru_unique ? 1 : 0);
  w.PutU32(resp.lru_home);
  w.PutVarint(resp.hits.size());
  for (const MdsId h : resp.hits) w.PutU32(h);
  return w.Take();
}

std::vector<std::uint8_t> EncodeFilterResp(const BloomFilter& filter) {
  ByteWriter w;
  w.PutU8(1);  // envelope
  w.PutBytes(CompressFilter(filter));
  return w.Take();
}

std::vector<std::uint8_t> EncodeStatsResp(const StatsResp& stats) {
  ByteWriter w;
  w.PutU8(1);  // envelope
  w.PutU64(stats.frames_in);
  w.PutU64(stats.frames_out);
  w.PutU64(stats.files);
  w.PutU64(stats.replicas);
  return w.Take();
}

std::vector<std::uint8_t> EncodeFileListResp(const FileListResp& resp) {
  ByteWriter w;
  w.PutU8(1);  // envelope
  w.PutVarint(resp.files.size());
  for (const auto& [path, md] : resp.files) {
    w.PutString(path);
    md.Serialize(w);
  }
  return w.Take();
}

Result<FileListResp> DecodeFileListResp(ByteReader& in) {
  auto count = in.GetVarint();
  if (!count.ok()) return count.status();
  // Each entry costs at least one byte on the wire, so a count beyond the
  // remaining frame bytes can only come from a mangled length field.
  if (*count > in.remaining()) return Status::Corruption("absurd file count");
  FileListResp resp;
  resp.files.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto path = in.GetString();
    if (!path.ok()) return path.status();
    auto md = FileMetadata::Deserialize(in);
    if (!md.ok()) return md.status();
    resp.files.emplace_back(std::move(*path), std::move(*md));
  }
  return resp;
}

Result<Envelope> OpenEnvelope(ByteReader& in) {
  auto kind = in.GetU8();
  if (!kind.ok()) return kind.status();
  Envelope env;
  if (*kind == 1) {
    env.has_payload = true;
    return env;
  }
  if (*kind != 0) return Status::Corruption("bad envelope byte");
  auto status = DecodeStatusResp(in);
  if (!status.ok()) return status.status();
  env.status = status->status;
  return env;
}

Result<MsgType> DecodeType(ByteReader& in) {
  auto t = in.GetU16();
  if (!t.ok()) return t.status();
  if (*t < 1 || *t > static_cast<std::uint16_t>(MsgType::kExportFiles)) {
    return Status::Corruption("unknown message type");
  }
  return static_cast<MsgType>(*t);
}

Result<RemoteStatus> DecodeStatusResp(ByteReader& in) {
  auto code = in.GetU8();
  if (!code.ok()) return code.status();
  auto msg = in.GetString();
  if (!msg.ok()) return msg.status();
  if (*code > static_cast<std::uint8_t>(StatusCode::kTimedOut)) {
    return Status::Corruption("bad status code");
  }
  return RemoteStatus{Status(static_cast<StatusCode>(*code), std::move(*msg))};
}

Result<bool> DecodeBoolResp(ByteReader& in) {
  auto v = in.GetU8();
  if (!v.ok()) return v.status();
  // Strict: the encoder only ever emits 0 or 1, so anything else is a
  // mangled frame, not a truthy value.
  if (*v > 1) return Status::Corruption("bad bool byte");
  return *v != 0;
}

Result<LocalLookupResp> DecodeLocalLookupResp(ByteReader& in) {
  LocalLookupResp resp;
  auto unique = in.GetU8();
  if (!unique.ok()) return unique.status();
  resp.lru_unique = (*unique != 0);
  auto home = in.GetU32();
  if (!home.ok()) return home.status();
  resp.lru_home = *home;
  auto n = in.GetVarint();
  if (!n.ok()) return n.status();
  // The claimed count must fit in what is actually left on the wire
  // (4 bytes per hit) — otherwise a corrupted length field would make us
  // reserve and loop far past the frame.
  if (*n > in.remaining() / 4) return Status::Corruption("too many hits");
  resp.hits.reserve(*n);
  for (std::uint64_t i = 0; i < *n; ++i) {
    auto h = in.GetU32();
    if (!h.ok()) return h.status();
    resp.hits.push_back(*h);
  }
  return resp;
}

Result<StatsResp> DecodeStatsResp(ByteReader& in) {
  StatsResp stats;
  auto a = in.GetU64();
  if (!a.ok()) return a.status();
  stats.frames_in = *a;
  auto b = in.GetU64();
  if (!b.ok()) return b.status();
  stats.frames_out = *b;
  auto c = in.GetU64();
  if (!c.ok()) return c.status();
  stats.files = *c;
  auto d = in.GetU64();
  if (!d.ok()) return d.status();
  stats.replicas = *d;
  return stats;
}

}  // namespace ghba
